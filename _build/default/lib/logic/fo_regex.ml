(* Translation of star-free regular expressions into first-order logic
   (Section 4.3's declarative view of node extraction).

   The paper compiles r = ?person/rides/?bus/rides⁻/?infected into

     φ(x) = person(x) ∧ ∃y∃z (rides(x,y) ∧ bus(y) ∧ rides(z,y) ∧ infected(z))

   and then into the 2-variable ψ(x) by *reusing* variable names once
   their values can be forgotten.  We implement both styles:

   - [to_fo_fresh]: one fresh variable per intermediate node (width grows
     with the length of the expression);
   - [to_fo_reused]: the bounded-variable rewriting — a chain of steps
     alternates between two variable names, re-binding the one whose
     value is no longer needed, exactly the ψ(x) trick.

   Only the star-free, label-test fragment is translatable (stars need
   transitive closure, property tests need a richer vocabulary); both
   functions return [None] outside the fragment. *)

open Gqkg_automata

(* One navigation step: an edge traversal (with direction) or a node
   test.  A "chain" is the purely sequential normal form the rewriting
   needs. *)
type step = Check of Gqkg_graph.Const.t | Step_fwd of Gqkg_graph.Const.t | Step_bwd of Gqkg_graph.Const.t

let chain_of_regex regex =
  let rec flatten = function
    | Regex.Node_test (Regex.Atom (Gqkg_graph.Atom.Label l)) -> Some [ Check l ]
    | Regex.Fwd (Regex.Atom (Gqkg_graph.Atom.Label l)) -> Some [ Step_fwd l ]
    | Regex.Bwd (Regex.Atom (Gqkg_graph.Atom.Label l)) -> Some [ Step_bwd l ]
    | Regex.Seq (r1, r2) -> (
        match (flatten r1, flatten r2) with Some a, Some b -> Some (a @ b) | _ -> None)
    | Regex.Node_test _ | Regex.Fwd _ | Regex.Bwd _ | Regex.Alt _ | Regex.Star _ -> None
  in
  flatten regex

(* Fresh-variable translation: variables x0 (the free one), x1, x2, ... *)
let to_fo_fresh regex =
  match chain_of_regex regex with
  | None -> None
  | Some steps ->
      let var i = Printf.sprintf "x%d" i in
      (* Collect conjuncts over the node variables of the chain. *)
      let rec conjuncts i = function
        | [] -> ([], i)
        | Check l :: rest ->
            let cs, last = conjuncts i rest in
            (Fo.Node_pred (l, var i) :: cs, last)
        | Step_fwd l :: rest ->
            let cs, last = conjuncts (i + 1) rest in
            (Fo.Edge_pred (l, var i, var (i + 1)) :: cs, last)
        | Step_bwd l :: rest ->
            let cs, last = conjuncts (i + 1) rest in
            (Fo.Edge_pred (l, var (i + 1), var i) :: cs, last)
      in
      let cs, last = conjuncts 0 steps in
      let body = match cs with [] -> Fo.Eq (var 0, var 0) | _ -> Fo.and_of cs in
      (* Existentially close every variable except x0. *)
      let rec close i f = if i > last then f else close (i + 1) (Fo.Exists (var i, f)) in
      Some (close 1 body)

(* Bounded-variable translation: fold the chain from the right, at each
   edge step introducing ∃ over the *other* of two alternating names and
   re-binding, so the result uses only variables "x" and "y" — the ψ(x)
   construction. *)
let to_fo_reused regex =
  match chain_of_regex regex with
  | None -> None
  | Some steps ->
      (* current = name of the variable denoting the current node. *)
      let other = function "x" -> "y" | _ -> "x" in
      let rec build current = function
        | [] -> None
        | [ Check l ] -> Some (Fo.Node_pred (l, current))
        | Check l :: rest -> (
            match build current rest with
            | Some f -> Some (Fo.And (Fo.Node_pred (l, current), f))
            | None -> Some (Fo.Node_pred (l, current)))
        | Step_fwd l :: rest ->
            let next = other current in
            let edge = Fo.Edge_pred (l, current, next) in
            Some
              (Fo.Exists
                 ( next,
                   match build next rest with Some f -> Fo.And (edge, f) | None -> edge ))
        | Step_bwd l :: rest ->
            let next = other current in
            let edge = Fo.Edge_pred (l, next, current) in
            Some
              (Fo.Exists
                 ( next,
                   match build next rest with Some f -> Fo.And (edge, f) | None -> edge ))
      in
      (match build "x" steps with
      | Some f -> Some f
      | None -> Some (Fo.Eq ("x", "x")) (* empty chain: always true *))

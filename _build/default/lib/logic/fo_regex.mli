(** Translation of star-free, label-test regular expressions to
    first-order logic (the declarative view of Section 4.3). Both return
    [None] outside the chain fragment (stars, alternations, property
    tests are untranslatable). *)

(** One fresh variable per intermediate node; free variable ["x0"]. The
    φ(x)-style formula. *)
val to_fo_fresh : Gqkg_automata.Regex.t -> Fo.formula option

(** The bounded-variable rewriting: alternates two names, re-binding the
    one whose value can be forgotten; free variable ["x"]. The
    ψ(x)-style formula (width 2). *)
val to_fo_reused : Gqkg_automata.Regex.t -> Fo.formula option

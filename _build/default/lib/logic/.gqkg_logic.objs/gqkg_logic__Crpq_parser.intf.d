lib/logic/crpq_parser.mli: Crpq

lib/logic/fo_tc.mli: Fo Gqkg_automata Gqkg_graph Regex Set

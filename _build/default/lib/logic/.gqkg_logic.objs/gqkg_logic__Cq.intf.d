lib/logic/cq.mli: Const Gqkg_graph Instance

lib/logic/fo.mli: Const Format Gqkg_graph Instance Set

lib/logic/fo.ml: Atom Const Fmt Gqkg_graph Hashtbl Instance List Option Printf Set String

lib/logic/gml.ml: Array Atom Fmt Gqkg_graph Hashtbl Instance List Printf

lib/logic/c2.ml: Atom Const Fo Gml Gqkg_graph Hashtbl Instance List Printf Set String

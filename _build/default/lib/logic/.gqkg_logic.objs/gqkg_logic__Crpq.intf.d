lib/logic/crpq.mli: Gqkg_automata Gqkg_core Gqkg_graph Instance Regex

lib/logic/fo_tc.ml: Array Fo Gqkg_automata Gqkg_core Gqkg_graph Hashtbl Instance List Queue Regex

lib/logic/gml.mli: Atom Const Format Gqkg_graph Instance

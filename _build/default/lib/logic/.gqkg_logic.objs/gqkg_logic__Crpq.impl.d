lib/logic/crpq.ml: Buffer Gqkg_automata Gqkg_core Gqkg_graph Hashtbl Instance List Option Printf Regex Set String

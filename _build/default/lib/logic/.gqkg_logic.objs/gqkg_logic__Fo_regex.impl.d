lib/logic/fo_regex.ml: Fo Gqkg_automata Gqkg_graph Printf Regex

lib/logic/fo_regex.mli: Fo Gqkg_automata

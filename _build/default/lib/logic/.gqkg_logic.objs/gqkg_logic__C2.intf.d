lib/logic/c2.mli: Const Gml Gqkg_graph Instance Set

lib/logic/cq.ml: Array Atom Const Gqkg_graph Hashtbl Instance List Option Printf Set String

lib/logic/crpq_parser.ml: Crpq Gqkg_automata List Printf Regex Regex_parser String

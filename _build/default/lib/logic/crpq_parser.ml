(* Concrete syntax for CRPQs — a Cypher-flavored surface over the
   Section 4 regular expressions:

     SELECT x, z
     WHERE (x:person)-[rides/?bus]->(y),
           (z:company)-[owns]->(y)

   Grammar:

     query   := SELECT vars WHERE clause (',' clause)* (LIMIT n)?
     vars    := ident (',' ident)*
     clause  := node (edge node)*
     node    := '(' ident (':' ident)? ')'
     edge    := '-[' regex ']->' | '<-[' regex ']-'

   A ':label' on a node is sugar for a ?label node test attached to the
   adjacent path atoms; '<-[r]-' reverses the atom.  The regex between
   brackets is the full concrete syntax of {!Gqkg_automata.Regex_parser}. *)

open Gqkg_automata

exception Error of { position : int; message : string }

let fail position fmt = Printf.ksprintf (fun message -> raise (Error { position; message })) fmt

type state = { input : string; mutable pos : int }

let skip_ws st =
  while
    st.pos < String.length st.input
    && (match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let looking_at st text =
  let n = String.length text in
  st.pos + n <= String.length st.input
  && String.lowercase_ascii (String.sub st.input st.pos n) = String.lowercase_ascii text

let expect st text =
  skip_ws st;
  if looking_at st text then st.pos <- st.pos + String.length text
  else fail st.pos "expected %S" text

let try_consume st text =
  skip_ws st;
  if looking_at st text then begin
    st.pos <- st.pos + String.length text;
    true
  end
  else false

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let ident st =
  skip_ws st;
  let start = st.pos in
  while st.pos < String.length st.input && is_ident_char st.input.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail start "expected an identifier";
  String.sub st.input start (st.pos - start)

(* '(' var (':' label)? ')' *)
let node st =
  expect st "(";
  let var = ident st in
  let label = if try_consume st ":" then Some (ident st) else None in
  expect st ")";
  (var, label)

(* The bracketed regex: everything up to the matching ']'. *)
let bracket_regex st =
  let close =
    match String.index_from_opt st.input st.pos ']' with
    | Some i -> i
    | None -> fail st.pos "unterminated '[' in edge pattern"
  in
  let text = String.sub st.input st.pos (close - st.pos) in
  st.pos <- close;
  match Regex_parser.parse text with
  | r -> r
  | exception Regex_parser.Error { position; message } ->
      fail (st.pos - String.length text + position) "in path expression: %s" message

(* Attach a node-label test to the appropriate end of a path regex. *)
let with_label_prefix label r =
  match label with None -> r | Some l -> Regex.Seq (Regex.node_label l, r)

let with_label_suffix label r =
  match label with None -> r | Some l -> Regex.Seq (r, Regex.node_label l)

let parse input =
  let st = { input; pos = 0 } in
  expect st "select";
  let head = ref [ ident st ] in
  while try_consume st "," do
    head := ident st :: !head
  done;
  expect st "where";
  let atoms = ref [] in
  let clause () =
    let current = ref (node st) in
    let continue = ref true in
    let chained = ref false in
    while !continue do
      skip_ws st;
      if try_consume st "-[" then begin
        let r = bracket_regex st in
        expect st "]->";
        let target = node st in
        let sv, sl = !current and tv, tl = target in
        atoms := { Crpq.src = sv; regex = with_label_suffix tl (with_label_prefix sl r); dst = tv } :: !atoms;
        current := target;
        chained := true
      end
      else if try_consume st "<-[" then begin
        let r = bracket_regex st in
        expect st "]-";
        let target = node st in
        let sv, sl = !current and tv, tl = target in
        (* (a)<-[r]-(b) means a path from b to a. *)
        atoms := { Crpq.src = tv; regex = with_label_suffix sl (with_label_prefix tl r); dst = sv } :: !atoms;
        current := target;
        chained := true
      end
      else continue := false
    done;
    if not !chained then begin
      (* A bare node clause: assert the label as a zero-step atom. *)
      let sv, sl = !current in
      match sl with
      | Some l -> atoms := { Crpq.src = sv; regex = Regex.node_label l; dst = sv } :: !atoms
      | None -> fail st.pos "a clause needs at least one edge or a node label"
    end
  in
  clause ();
  while try_consume st "," do
    clause ()
  done;
  let limit =
    if try_consume st "limit" then begin
      skip_ws st;
      let start = st.pos in
      while st.pos < String.length st.input && st.input.[st.pos] >= '0' && st.input.[st.pos] <= '9' do
        st.pos <- st.pos + 1
      done;
      if st.pos = start then fail start "expected a number after LIMIT";
      Some (int_of_string (String.sub st.input start (st.pos - start)))
    end
    else None
  in
  skip_ws st;
  if st.pos <> String.length st.input then fail st.pos "trailing input";
  Crpq.query ?limit ~head:(List.rev !head) ~body:(List.rev !atoms) ()

let parse_opt input = match parse input with q -> Some q | exception Error _ -> None

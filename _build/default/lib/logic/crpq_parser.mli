(** Cypher-flavored concrete syntax for CRPQs:

    {v
    SELECT x, z
    WHERE (x:person)-[rides]->(y:bus),
          (z:company)-[owns]->(y)
    v}

    [:label] on a node is sugar for a [?label] node test on the adjacent
    path atoms; [<-\[r\]-] reverses an atom; the bracketed expression is
    the full {!Gqkg_automata.Regex_parser} syntax. Keywords are
    case-insensitive. *)

exception Error of { position : int; message : string }

(** Raises {!Error} with a 0-based character position. *)
val parse : string -> Crpq.t

val parse_opt : string -> Crpq.t option

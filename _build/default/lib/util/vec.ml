(* Small dense float vector / matrix operations for the GNN layer algebra.
   Matrices are stored row-major as flat arrays; nothing here is meant to
   compete with BLAS, sizes are tens of features. *)

type vec = float array
type mat = { rows : int; cols : int; data : float array }

let vec_zero n : vec = Array.make n 0.0

let vec_add a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.vec_add: dim mismatch";
  Array.mapi (fun i x -> x +. b.(i)) a

let vec_add_in_place ~into b =
  if Array.length into <> Array.length b then invalid_arg "Vec.vec_add_in_place: dim mismatch";
  Array.iteri (fun i x -> into.(i) <- into.(i) +. x) b

let vec_scale c a = Array.map (fun x -> c *. x) a

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot: dim mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let mat_create ~rows ~cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let mat_of_rows rows_list =
  match rows_list with
  | [] -> invalid_arg "Vec.mat_of_rows: empty"
  | first :: _ ->
      let cols = Array.length first in
      let rows = List.length rows_list in
      let data = Array.make (rows * cols) 0.0 in
      List.iteri
        (fun r row ->
          if Array.length row <> cols then invalid_arg "Vec.mat_of_rows: ragged rows";
          Array.blit row 0 data (r * cols) cols)
        rows_list;
      { rows; cols; data }

let mat_identity n =
  let m = mat_create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let get m r c =
  if r < 0 || r >= m.rows || c < 0 || c >= m.cols then invalid_arg "Vec.get: out of bounds";
  m.data.((r * m.cols) + c)

let set m r c v =
  if r < 0 || r >= m.rows || c < 0 || c >= m.cols then invalid_arg "Vec.set: out of bounds";
  m.data.((r * m.cols) + c) <- v

(* y = x * M (row vector times matrix), the layer convention of the GNN. *)
let vec_mat x m =
  if Array.length x <> m.rows then invalid_arg "Vec.vec_mat: dim mismatch";
  let y = Array.make m.cols 0.0 in
  for r = 0 to m.rows - 1 do
    let xr = x.(r) in
    if xr <> 0.0 then
      for c = 0 to m.cols - 1 do
        y.(c) <- y.(c) +. (xr *. m.data.((r * m.cols) + c))
      done
  done;
  y

let mat_mul a b =
  if a.cols <> b.rows then invalid_arg "Vec.mat_mul: dim mismatch";
  let out = mat_create ~rows:a.rows ~cols:b.cols in
  for r = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let v = a.data.((r * a.cols) + k) in
      if v <> 0.0 then
        for c = 0 to b.cols - 1 do
          out.data.((r * b.cols) + c) <- out.data.((r * b.cols) + c) +. (v *. b.data.((k * b.cols) + c))
        done
    done
  done;
  out

(* Truncated ReLU, the activation of Barcelo et al.'s logic-capturing
   AC-GNNs: clamps to [0, 1] so boolean values are fixed points. *)
let truncated_relu x = Float.min 1.0 (Float.max 0.0 x)

let relu x = Float.max 0.0 x

let map_vec f (v : vec) : vec = Array.map f v

let vec_equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> if Float.abs (x -. b.(i)) > eps then ok := false) a;
       !ok
     end

let pp_vec ppf v =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(Fmt.any "; ") (fmt "%.3g")) v

(* Walker's alias method: O(n) preprocessing, O(1) sampling from an
   arbitrary discrete distribution.  Used by the uniform path generator
   (sampling the next product edge proportional to downstream path counts)
   and by the workload generators. *)

type t = { prob : float array; alias : int array }

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Alias.create: empty distribution";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Alias.create: weights must have positive sum";
  Array.iter (fun w -> if w < 0.0 then invalid_arg "Alias.create: negative weight") weights;
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let prob = Array.make n 0.0 and alias = Array.init n (fun i -> i) in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large) scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  let flush stack = Stack.iter (fun i -> prob.(i) <- 1.0) stack in
  flush small;
  flush large;
  { prob; alias }

let sample t rng =
  let n = Array.length t.prob in
  let i = Splitmix.int rng n in
  if Splitmix.unit_float rng < t.prob.(i) then i else t.alias.(i)

(* Direct inverse-CDF sampling, O(n) per draw; used where distributions are
   built once and sampled once (no alias table worth building). *)
let sample_weights weights rng =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Alias.sample_weights: weights must have positive sum";
  let target = Splitmix.float rng total in
  let n = Array.length weights in
  let rec loop i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if target < acc then i else loop (i + 1) acc
    end
  in
  loop 0 0.0

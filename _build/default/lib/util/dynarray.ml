(* Minimal growable array (OCaml 5.1 predates Stdlib.Dynarray).  Used by
   the lazy product construction, where states are discovered on demand
   and addressed by dense ids. *)

type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) dummy = { data = Array.make (max capacity 1) dummy; size = 0; dummy }

let length t = t.size

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Dynarray.get: out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.size then invalid_arg "Dynarray.set: out of bounds";
  t.data.(i) <- v

let push t v =
  if t.size = Array.length t.data then begin
    let bigger = Array.make (2 * t.size) t.dummy in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  t.size - 1

let iteri t f =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let to_array t = Array.sub t.data 0 t.size

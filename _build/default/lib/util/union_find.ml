(* Disjoint-set forest with union by rank and path halving. *)

type t = { parent : int array; rank : int array; mutable components : int }

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; components = n }

let size t = Array.length t.parent

let components t = t.components

let find t x =
  let parent = t.parent in
  let rec loop x =
    let p = parent.(x) in
    if p = x then x
    else begin
      (* Path halving: point x at its grandparent as we walk up. *)
      let gp = parent.(p) in
      parent.(x) <- gp;
      loop gp
    end
  in
  loop x

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rank = t.rank in
    let big, small = if rank.(rx) >= rank.(ry) then (rx, ry) else (ry, rx) in
    t.parent.(small) <- big;
    if rank.(big) = rank.(small) then rank.(big) <- rank.(big) + 1;
    t.components <- t.components - 1;
    true
  end

let same t x y = find t x = find t y

(* Map every element to a dense component id in [0, components). *)
let labeling t =
  let n = size t in
  let ids = Hashtbl.create 16 in
  let out = Array.make n 0 in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let root = find t i in
    let id =
      match Hashtbl.find_opt ids root with
      | Some id -> id
      | None ->
          let id = !next in
          incr next;
          Hashtbl.add ids root id;
          id
    in
    out.(i) <- id
  done;
  out

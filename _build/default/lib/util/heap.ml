(* Binary min-heap of (priority, payload) pairs with float priorities.
   Used by Dijkstra, Brandes (weighted variant) and the densest-subgraph
   peeling loop.  Stale-entry deletion is the caller's business (decrease-
   key is emulated by reinsertion, the standard lazy approach). *)

type 'a t = {
  mutable keys : float array;
  mutable values : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { keys = Array.make capacity 0.0; values = Array.make capacity dummy; size = 0; dummy }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let capacity = 2 * Array.length t.keys in
  let keys = Array.make capacity 0.0 in
  let values = Array.make capacity t.dummy in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.keys <- keys;
  t.values <- values

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let v = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(i) < t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.keys.(left) < t.keys.(!smallest) then smallest := left;
  if right < t.size && t.keys.(right) < t.keys.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~key value =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.values.(t.size) <- value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.values.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and value = t.values.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.values.(0) <- t.values.(t.size);
      sift_down t 0
    end;
    t.values.(t.size) <- t.dummy;
    Some (key, value)
  end

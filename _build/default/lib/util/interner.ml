(* Bidirectional string <-> dense-int interning.  Graph labels, property
   names and RDF terms are interned once so the hot query paths compare
   ints instead of strings. *)

type t = { by_string : (string, int) Hashtbl.t; mutable by_id : string array; mutable size : int }

let create ?(capacity = 64) () =
  { by_string = Hashtbl.create capacity; by_id = Array.make (max capacity 1) ""; size = 0 }

let length t = t.size

let intern t s =
  match Hashtbl.find_opt t.by_string s with
  | Some id -> id
  | None ->
      let id = t.size in
      if id = Array.length t.by_id then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.by_id 0 bigger 0 id;
        t.by_id <- bigger
      end;
      t.by_id.(id) <- s;
      Hashtbl.add t.by_string s id;
      t.size <- id + 1;
      id

let find_opt t s = Hashtbl.find_opt t.by_string s

let to_string t id =
  if id < 0 || id >= t.size then invalid_arg "Interner.to_string: unknown id";
  t.by_id.(id)

let iter t f =
  for id = 0 to t.size - 1 do
    f id t.by_id.(id)
  done

lib/util/dynarray.mli:

lib/util/alias.ml: Array Splitmix Stack

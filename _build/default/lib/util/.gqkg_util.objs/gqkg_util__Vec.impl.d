lib/util/vec.ml: Array Float Fmt List

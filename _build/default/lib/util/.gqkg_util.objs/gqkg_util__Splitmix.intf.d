lib/util/splitmix.mli:

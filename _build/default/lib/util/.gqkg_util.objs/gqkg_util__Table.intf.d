lib/util/table.mli:

lib/util/alias.mli: Splitmix

lib/util/interner.mli:

lib/util/heap.mli:

(** Binary min-heap keyed by float priorities.

    Decrease-key is emulated by reinsertion; callers skip stale pops. *)

type 'a t

(** [create dummy] makes an empty heap; [dummy] fills unused slots. *)
val create : ?capacity:int -> 'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> key:float -> 'a -> unit

(** Smallest key with its payload, without removing it. *)
val peek : 'a t -> (float * 'a) option

(** Remove and return the smallest key with its payload. *)
val pop : 'a t -> (float * 'a) option

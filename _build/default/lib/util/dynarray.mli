(** Growable array with dense integer addressing. *)

type 'a t

(** [create dummy] makes an empty array; [dummy] fills unused capacity. *)
val create : ?capacity:int -> 'a -> 'a t

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

(** Append and return the new element's index. *)
val push : 'a t -> 'a -> int

val iteri : 'a t -> (int -> 'a -> unit) -> unit
val to_array : 'a t -> 'a array

(** Bidirectional string interning with dense integer ids. *)

type t

val create : ?capacity:int -> unit -> t

(** Number of distinct interned strings. *)
val length : t -> int

(** Id of the string, allocating a fresh id on first sight. *)
val intern : t -> string -> int

(** Id of the string if already interned. *)
val find_opt : t -> string -> int option

(** Inverse of {!intern}. Raises on unknown ids. *)
val to_string : t -> int -> string

(** Iterate over all (id, string) pairs in id order. *)
val iter : t -> (int -> string -> unit) -> unit

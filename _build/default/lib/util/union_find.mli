(** Disjoint-set forest over the elements [0 .. n-1]. *)

type t

val create : int -> t
val size : t -> int

(** Current number of disjoint components. *)
val components : t -> int

(** Canonical representative of the element's component. *)
val find : t -> int -> int

(** Merge the two components; returns [false] if already merged. *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool

(** Dense component id per element, ids in [\[0, components)]. *)
val labeling : t -> int array

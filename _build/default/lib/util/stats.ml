(* Descriptive statistics and simple hypothesis-test helpers used by the
   benchmark harness and by the uniformity tests for the path sampler. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.min_max: empty";
  let lo = ref xs.(0) and hi = ref xs.(0) in
  for i = 1 to n - 1 do
    if xs.(i) < !lo then lo := xs.(i);
    if xs.(i) > !hi then hi := xs.(i)
  done;
  (!lo, !hi)

(* Quantile by linear interpolation on the sorted sample (type-7, the
   default of R and NumPy). *)
let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = quantile xs 0.5

(* Chi-square statistic of observed counts against expected counts.
   Categories with zero expectation must have zero observation. *)
let chi_square ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Stats.chi_square: length mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i obs ->
      let exp = expected.(i) in
      if exp <= 0.0 then begin
        if obs <> 0 then invalid_arg "Stats.chi_square: observation in zero-probability cell"
      end
      else begin
        let d = float_of_int obs -. exp in
        acc := !acc +. (d *. d /. exp)
      end)
    observed;
  !acc

(* Upper bound on the chi-square critical value at significance ~0.001 via
   the Wilson-Hilferty cube approximation.  Accurate enough for the
   goodness-of-fit gates in our tests (dozens to thousands of categories). *)
let chi_square_critical ~df =
  if df <= 0 then invalid_arg "Stats.chi_square_critical: df must be positive";
  let z = 3.09 (* one-sided 0.001 normal quantile *) in
  let k = float_of_int df in
  let t = 1.0 -. (2.0 /. (9.0 *. k)) +. (z *. sqrt (2.0 /. (9.0 *. k))) in
  k *. t *. t *. t

let relative_error ~truth ~estimate =
  if truth = 0.0 then (if estimate = 0.0 then 0.0 else infinity)
  else Float.abs ((truth -. estimate) /. truth)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summarize xs =
  let lo, hi = min_max xs in
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = lo;
    max = hi;
    p50 = quantile xs 0.5;
    p95 = quantile xs 0.95;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g" s.count s.mean s.stddev
    s.min s.p50 s.p95 s.max

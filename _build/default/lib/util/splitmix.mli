(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomized algorithms in the library take an explicit generator so
    experiments are reproducible bit-for-bit given a seed. *)

type t

(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** Independent copy sharing the current state. *)
val copy : t -> t

(** Split off a generator whose stream is independent of the parent's. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in the inclusive range [\[lo, hi\]]. *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t b] is uniform in [\[0, b)]. *)
val float : t -> float -> float

(** Uniform in [\[0, 1)]. *)
val unit_float : t -> float

val bool : t -> bool

(** [bernoulli t p] is true with probability [p]. *)
val bernoulli : t -> float -> bool

(** Normal deviate with the given mean and standard deviation. *)
val gaussian : t -> mu:float -> sigma:float -> float

(** Poisson deviate with the given rate. *)
val poisson : t -> float -> int

val shuffle_in_place : t -> 'a array -> unit

(** Shuffled copy; the argument is untouched. *)
val shuffle : t -> 'a array -> 'a array

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** [k] distinct uniform indices from [\[0, n)]. *)
val sample_without_replacement : t -> n:int -> k:int -> int array

(* Plain-text table rendering for the benchmark harness: the bench binary
   prints every reproduced figure/table as an aligned ASCII table. *)

type align = Left | Right

type t = { headers : string array; aligns : align array; mutable rows : string array list }

let create ?aligns headers =
  let headers = Array.of_list headers in
  let aligns =
    match aligns with
    | Some a ->
        let a = Array.of_list a in
        if Array.length a <> Array.length headers then invalid_arg "Table.create: aligns length";
        a
    | None -> Array.make (Array.length headers) Right
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  let cells = Array.of_list cells in
  if Array.length cells <> Array.length t.headers then invalid_arg "Table.add_row: width mismatch";
  t.rows <- cells :: t.rows

let add_rowf t fmts = add_row t fmts

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let columns = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter (fun row -> Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row) rows;
  let buf = Buffer.create 256 in
  let emit_row cells =
    for i = 0 to columns - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cells.(i))
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  for i = 0 to columns - 1 do
    if i > 0 then Buffer.add_string buf "  ";
    Buffer.add_string buf (String.make widths.(i) '-')
  done;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

(* Minimal ASCII line charts: the benchmark harness renders reproduced
   figures as rows of scaled bars, one series per row group. *)
let bar_chart ?(width = 50) series =
  let buf = Buffer.create 512 in
  let peak =
    List.fold_left
      (fun acc (_, points) -> List.fold_left (fun acc (_, v) -> Float.max acc v) acc points)
      0.0 series
  in
  if peak <= 0.0 then Buffer.add_string buf "(no data)\n"
  else
    List.iter
      (fun (name, points) ->
        Buffer.add_string buf (Printf.sprintf "%s\n" name);
        List.iter
          (fun (x, v) ->
            let bar = int_of_float (Float.round (v /. peak *. float_of_int width)) in
            Buffer.add_string buf
              (Printf.sprintf "  %-6s %s %g\n" x (String.make (max bar 0) '#') v))
          points)
      series;
  Buffer.contents buf

(** Walker's alias method for O(1) discrete sampling. *)

type t

(** Build from non-negative weights with positive sum. *)
val create : float array -> t

(** Index drawn proportionally to the construction weights. *)
val sample : t -> Splitmix.t -> int

(** One-shot inverse-CDF draw directly from a weight array. *)
val sample_weights : float array -> Splitmix.t -> int

(* SplitMix64: a fast, splittable pseudo-random number generator.

   We implement our own PRNG (rather than using [Stdlib.Random]) so that
   every randomized algorithm in the library is deterministic given a seed,
   independently of the OCaml version, and so that independent streams can
   be split off for parallel or hierarchical experiments.  The algorithm is
   the finalizer of Steele, Lea & Flood, "Fast Splittable Pseudorandom
   Number Generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* A fresh generator whose stream is independent of the parent's future
   output: standard SplitMix practice of seeding from the next output. *)
let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Uniform integer in [0, bound) by rejection, avoiding modulo bias. *)
let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  let rec loop () =
    let r = bits62 t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Splitmix.int_in_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound <= 0.0 then invalid_arg "Splitmix.float: bound must be positive";
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let unit_float t = float t 1.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = unit_float t < p

(* Box-Muller transform. *)
let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* Inverse-transform sampling via repeated Bernoulli thinning would be slow
   for large lambda; the multiplication method is fine at our scales. *)
let poisson t lambda =
  if lambda < 0.0 then invalid_arg "Splitmix.poisson: negative rate";
  if lambda = 0.0 then 0
  else begin
    let limit = exp (-.lambda) in
    let rec loop k prod = if prod <= limit then k - 1 else loop (k + 1) (prod *. unit_float t) in
    loop 1 (unit_float t)
  end

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t arr =
  let copy = Array.copy arr in
  shuffle_in_place t copy;
  copy

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Splitmix.choose: empty array";
  arr.(int t (Array.length arr))

(* Sample [k] distinct indices from [0, n) without replacement.  Uses a
   partial Fisher-Yates over a scratch array when k is a large fraction of
   n, and rejection via a hash set otherwise. *)
let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Splitmix.sample_without_replacement";
  if 4 * k >= n then begin
    let scratch = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in_range t ~lo:i ~hi:(n - 1) in
      let tmp = scratch.(i) in
      scratch.(i) <- scratch.(j);
      scratch.(j) <- tmp
    done;
    Array.sub scratch 0 k
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let candidate = int t n in
      if not (Hashtbl.mem seen candidate) then begin
        Hashtbl.add seen candidate ();
        out.(!filled) <- candidate;
        incr filled
      end
    done;
    out
  end

(** Aligned ASCII table rendering for the benchmark harness. *)

type align = Left | Right
type t

(** [create headers] starts a table; default alignment is [Right]. *)
val create : ?aligns:align list -> string list -> t

(** Append a row; must match the header width. *)
val add_row : t -> string list -> unit

val add_rowf : t -> string list -> unit
val render : t -> string
val print : t -> unit

(** Print a banner introducing a bench/experiment section. *)
val section : string -> unit

(** ASCII bar chart: one group per (series name, (x-label, value) list),
    bars scaled to the global maximum. *)
val bar_chart : ?width:int -> (string * (string * float) list) list -> string

(** Small dense float vectors and row-major matrices for the GNN layer
    algebra. Sizes are tens of features; simplicity over BLAS. *)

type vec = float array
type mat = { rows : int; cols : int; data : float array }

val vec_zero : int -> vec
val vec_add : vec -> vec -> vec
val vec_add_in_place : into:vec -> vec -> unit
val vec_scale : float -> vec -> vec
val dot : vec -> vec -> float
val mat_create : rows:int -> cols:int -> mat

(** Build from equal-width rows; raises on ragged input. *)
val mat_of_rows : vec list -> mat

val mat_identity : int -> mat
val get : mat -> int -> int -> float
val set : mat -> int -> int -> float -> unit

(** Row vector times matrix: the layer convention. *)
val vec_mat : vec -> mat -> vec

val mat_mul : mat -> mat -> mat

(** min(max(x, 0), 1) — the activation of the logic-capturing AC-GNNs. *)
val truncated_relu : float -> float

val relu : float -> float
val map_vec : (float -> float) -> vec -> vec
val vec_equal : ?eps:float -> vec -> vec -> bool
val pp_vec : Format.formatter -> vec -> unit

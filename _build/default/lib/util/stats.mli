(** Descriptive statistics and goodness-of-fit helpers. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val min_max : float array -> float * float

(** Type-7 interpolated quantile of the sample; [q] in [\[0, 1\]]. *)
val quantile : float array -> float -> float

val median : float array -> float

(** Pearson chi-square statistic of integer counts against expectations. *)
val chi_square : observed:int array -> expected:float array -> float

(** Approximate critical value at significance 0.001 (Wilson-Hilferty). *)
val chi_square_critical : df:int -> float

(** |truth - estimate| / |truth|; 0 when both are 0, infinite otherwise. *)
val relative_error : truth:float -> estimate:float -> float

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

lib/gnn/wl_kernel.mli: Gqkg_graph Hashtbl Instance

lib/gnn/transe.mli: Gqkg_kg Term Triple_store

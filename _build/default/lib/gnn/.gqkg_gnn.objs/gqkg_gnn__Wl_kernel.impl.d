lib/gnn/wl_kernel.ml: Array Gqkg_graph Hashtbl Instance List Option

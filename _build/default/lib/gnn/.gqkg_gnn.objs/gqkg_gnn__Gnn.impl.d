lib/gnn/gnn.ml: Array Gqkg_graph Gqkg_util Hashtbl Instance List Splitmix Vec Vector_graph

lib/gnn/logic_gnn.ml: Array Gml Gnn Gqkg_graph Gqkg_logic Gqkg_util Hashtbl Instance List Vec

lib/gnn/logic_gnn.mli: Gml Gnn Gqkg_graph Gqkg_logic Instance

lib/gnn/wl.ml: Array Gqkg_graph Hashtbl Instance List Option Vector_graph

lib/gnn/transe.ml: Array Float Gqkg_kg Gqkg_util Hashtbl List Splitmix Term Triple_store

lib/gnn/gnn.mli: Gqkg_graph Gqkg_util Instance Splitmix Vec Vector_graph

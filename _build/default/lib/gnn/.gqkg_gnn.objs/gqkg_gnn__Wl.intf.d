lib/gnn/wl.mli: Gqkg_graph Instance Vector_graph

(* TransE knowledge-graph embeddings [Bordes et al. 2013] — the paper's
   Section 2.3 names embedding-based refinement and completion as the
   flagship way knowledge graphs "produce" new knowledge by learning.

   Entities and relations live in R^d; a true triple (h, r, t) should
   satisfy e_h + e_r ≈ e_t.  Training minimizes the margin ranking loss

     max(0, margin + d(h + r, t) - d(h' + r, t'))

   over corrupted triples (h', r, t') with either endpoint replaced by a
   random entity, by SGD with per-step entity renormalization (the
   original recipe).  Distances are L1.  Everything is deterministic in
   the PRNG.

   The standard evaluation is link prediction: rank every entity as a
   candidate tail (head) for a held-out triple, filtered to ignore other
   true triples; report mean rank and hits@k. *)

open Gqkg_kg
open Gqkg_util

type t = {
  dimension : int;
  entities : Term.t array;
  relations : Term.t array;
  entity_index : (Term.t, int) Hashtbl.t;
  relation_index : (Term.t, int) Hashtbl.t;
  entity_vectors : float array array;
  relation_vectors : float array array;
}

type triple_ids = { h : int; r : int; t : int }

let entity_id model term = Hashtbl.find_opt model.entity_index term
let relation_id model term = Hashtbl.find_opt model.relation_index term

(* d(h + r, t): lower is more plausible. *)
let score model { h; r; t } =
  let eh = model.entity_vectors.(h) and er = model.relation_vectors.(r) in
  let et = model.entity_vectors.(t) in
  let acc = ref 0.0 in
  for i = 0 to model.dimension - 1 do
    acc := !acc +. Float.abs (eh.(i) +. er.(i) -. et.(i))
  done;
  !acc

let normalize v =
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
  if norm > 0.0 then Array.iteri (fun i x -> v.(i) <- x /. norm) v

(* Collect the vocabulary and the id-triples of a store. *)
let vocabulary store =
  let entities = Hashtbl.create 64 and relations = Hashtbl.create 16 in
  let entity term =
    match Hashtbl.find_opt entities term with
    | Some id -> id
    | None ->
        let id = Hashtbl.length entities in
        Hashtbl.add entities term id;
        id
  in
  let relation term =
    match Hashtbl.find_opt relations term with
    | Some id -> id
    | None ->
        let id = Hashtbl.length relations in
        Hashtbl.add relations term id;
        id
  in
  let triples = ref [] in
  Triple_store.iter store (fun { Triple_store.s; p; o } ->
      triples := { h = entity s; r = relation p; t = entity o } :: !triples);
  (entities, relations, List.rev !triples)

let init rng ~dimension entities relations =
  let fresh () =
    Array.init dimension (fun _ ->
        Splitmix.float rng (2.0 /. sqrt (float_of_int dimension))
        -. (1.0 /. sqrt (float_of_int dimension)))
  in
  let by_id table =
    let arr = Array.make (Hashtbl.length table) (Term.Iri "") in
    Hashtbl.iter (fun term id -> arr.(id) <- term) table;
    arr
  in
  let entity_terms = by_id entities and relation_terms = by_id relations in
  let model =
    {
      dimension;
      entities = entity_terms;
      relations = relation_terms;
      entity_index = entities;
      relation_index = relations;
      entity_vectors = Array.init (Array.length entity_terms) (fun _ -> fresh ());
      relation_vectors = Array.init (Array.length relation_terms) (fun _ -> fresh ());
    }
  in
  Array.iter normalize model.relation_vectors;
  model

(* One SGD step on a (positive, corrupted) pair. *)
let sgd_step model ~learning_rate ~margin positive negative =
  let loss = margin +. score model positive -. score model negative in
  if loss > 0.0 then begin
    let update ids sign =
      (* Gradient of the L1 distance: the sign vector, pushed onto h and
         r (towards t) and pulled off t; [sign] flips for the corrupted
         triple. *)
      let eh = model.entity_vectors.(ids.h) in
      let er = model.relation_vectors.(ids.r) in
      let et = model.entity_vectors.(ids.t) in
      for i = 0 to model.dimension - 1 do
        let g = sign *. learning_rate *. Float.of_int (compare (eh.(i) +. er.(i) -. et.(i)) 0.0) in
        eh.(i) <- eh.(i) -. g;
        er.(i) <- er.(i) -. g;
        et.(i) <- et.(i) +. g
      done
    in
    update positive 1.0;
    update negative (-1.0);
    normalize model.entity_vectors.(positive.h);
    normalize model.entity_vectors.(positive.t);
    normalize model.entity_vectors.(negative.h);
    normalize model.entity_vectors.(negative.t)
  end;
  Float.max 0.0 loss

type config = { dimension : int; epochs : int; learning_rate : float; margin : float; seed : int }

let default_config = { dimension = 24; epochs = 200; learning_rate = 0.02; margin = 1.0; seed = 17 }

(* Train on the triples of a store.  Returns the model and the per-epoch
   mean loss trace (diagnostics for tests and the bench). *)
let train ?(config = default_config) store =
  let rng = Splitmix.create config.seed in
  let entities, relations, triples = vocabulary store in
  let model = init rng ~dimension:config.dimension entities relations in
  let triples = Array.of_list triples in
  let num_entities = Array.length model.entities in
  let losses = ref [] in
  if Array.length triples > 0 && num_entities > 1 then
    for _ = 1 to config.epochs do
      Splitmix.shuffle_in_place rng triples;
      let total = ref 0.0 in
      Array.iter
        (fun positive ->
          (* Corrupt head or tail uniformly. *)
          let corrupt_head = Splitmix.bool rng in
          let replacement = Splitmix.int rng num_entities in
          let negative =
            if corrupt_head then { positive with h = replacement } else { positive with t = replacement }
          in
          total :=
            !total
            +. sgd_step model ~learning_rate:config.learning_rate ~margin:config.margin positive
                 negative)
        triples;
      losses := (!total /. float_of_int (Array.length triples)) :: !losses
    done;
  (model, List.rev !losses)

(* Plausibility of a concrete triple under the model (lower = better);
   None when a term is out of vocabulary. *)
let triple_score model ~h ~r ~t =
  match (entity_id model h, relation_id model r, entity_id model t) with
  | Some h, Some r, Some t -> Some (score model { h; r; t })
  | _ -> None

(* Rank of the true tail among all entities as tail candidates,
   filtering the other true triples ([known] decides). 1 = best. *)
let tail_rank model ~known { h; r; t } =
  let true_score = score model { h; r; t } in
  let better = ref 0 in
  for candidate = 0 to Array.length model.entities - 1 do
    if candidate <> t && not (known { h; r; t = candidate }) then
      if score model { h; r; t = candidate } < true_score then incr better
  done;
  !better + 1

(* Filtered link-prediction evaluation on a triple list: (mean rank,
   hits@k). *)
let evaluate model ~known ~k triples =
  match triples with
  | [] -> (0.0, 0.0)
  | _ ->
      let n = List.length triples in
      let total_rank = ref 0 and hits = ref 0 in
      List.iter
        (fun triple ->
          let rank = tail_rank model ~known triple in
          total_rank := !total_rank + rank;
          if rank <= k then incr hits)
        triples;
      (float_of_int !total_rank /. float_of_int n, float_of_int !hits /. float_of_int n)

(* Convenience: ids of a term triple, when all in vocabulary. *)
let ids_of model ~h ~r ~t =
  match (entity_id model h, relation_id model r, entity_id model t) with
  | Some h, Some r, Some t -> Some { h; r; t }
  | _ -> None

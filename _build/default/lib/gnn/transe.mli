(** TransE knowledge-graph embeddings [Bordes et al. 2013]: the
    Section 2.3 "produce knowledge by learning" capability. Entities and
    relations embed in R^d with e_h + e_r ≈ e_t for true triples;
    trained by margin-ranking SGD with negative sampling; evaluated by
    filtered link prediction. Deterministic in the seed. *)

open Gqkg_kg

type t

(** Id-triple over the model's dense vocabulary. *)
type triple_ids = { h : int; r : int; t : int }

val entity_id : t -> Term.t -> int option
val relation_id : t -> Term.t -> int option

(** d(e_h + e_r, e_t), L1: lower = more plausible. *)
val score : t -> triple_ids -> float

type config = { dimension : int; epochs : int; learning_rate : float; margin : float; seed : int }

val default_config : config

(** Train on a store's triples; returns the model and the per-epoch mean
    loss trace. *)
val train : ?config:config -> Triple_store.t -> t * float list

(** Plausibility of a term triple; [None] when out of vocabulary. *)
val triple_score : t -> h:Term.t -> r:Term.t -> t:Term.t -> float option

(** Rank (1 = best) of the true tail among all entities, skipping
    candidates [known] flags as true triples (the "filtered" protocol). *)
val tail_rank : t -> known:(triple_ids -> bool) -> triple_ids -> int

(** Filtered link prediction on a test set: (mean rank, hits\@k). *)
val evaluate : t -> known:(triple_ids -> bool) -> k:int -> triple_ids list -> float * float

(** Ids of a term triple when fully in vocabulary. *)
val ids_of : t -> h:Term.t -> r:Term.t -> t:Term.t -> triple_ids option

(** RDFS forward-chaining inference — the deduction capability of
    knowledge graphs (Section 2.3). Materializes rdfs2/3/5/7/9/11
    (domain, range, subPropertyOf and subClassOf transitivity, property
    and type inheritance) to a fixpoint. *)

val rdf_type : Term.t
val rdfs_sub_class_of : Term.t
val rdfs_sub_property_of : Term.t
val rdfs_domain : Term.t
val rdfs_range : Term.t

(** One pass; returns the number of new triples. *)
val pass : Triple_store.t -> int

(** To fixpoint; returns the total number of inferred triples.
    Idempotent: a second call returns 0. *)
val materialize : Triple_store.t -> int

(* An indexed RDF triple store: the storage layer of the knowledge-graph
   model.  Terms are interned to dense ids; three hash indexes (SPO, POS,
   OSP) make every triple-pattern shape answerable by direct lookup —
   the textbook design of RDF stores, scaled to our in-memory needs.

   The store is mutable (knowledge graphs grow — Section 2.1 stresses the
   flexibility of adding nodes/edges); query layers take a snapshot view
   through the read API only. *)

type triple = { s : Term.t; p : Term.t; o : Term.t }

let triple s p o = { s; p; o }

module Term_table = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  ids : int Term_table.t;
  mutable terms : Term.t array;
  mutable term_count : int;
  (* Index maps: first component -> second -> third list (dedup via set
     semantics enforced on insert through [mem]). *)
  spo : (int, (int, int list ref) Hashtbl.t) Hashtbl.t;
  pos : (int, (int, int list ref) Hashtbl.t) Hashtbl.t;
  osp : (int, (int, int list ref) Hashtbl.t) Hashtbl.t;
  mutable size : int;
}

let create () =
  {
    ids = Term_table.create 256;
    terms = Array.make 256 (Term.Iri "");
    term_count = 0;
    spo = Hashtbl.create 256;
    pos = Hashtbl.create 256;
    osp = Hashtbl.create 256;
    size = 0;
  }

let size t = t.size
let num_terms t = t.term_count

let intern t term =
  match Term_table.find_opt t.ids term with
  | Some id -> id
  | None ->
      let id = t.term_count in
      if id = Array.length t.terms then begin
        let bigger = Array.make (2 * id) (Term.Iri "") in
        Array.blit t.terms 0 bigger 0 id;
        t.terms <- bigger
      end;
      t.terms.(id) <- term;
      Term_table.add t.ids term id;
      t.term_count <- id + 1;
      id

let term_of t id =
  if id < 0 || id >= t.term_count then invalid_arg "Triple_store.term_of: unknown id";
  t.terms.(id)

let id_of t term = Term_table.find_opt t.ids term

let index_add index a b c =
  let second =
    match Hashtbl.find_opt index a with
    | Some m -> m
    | None ->
        let m = Hashtbl.create 4 in
        Hashtbl.add index a m;
        m
  in
  match Hashtbl.find_opt second b with
  | Some thirds -> thirds := c :: !thirds
  | None -> Hashtbl.add second b (ref [ c ])

let index_mem index a b c =
  match Hashtbl.find_opt index a with
  | None -> false
  | Some second -> (
      match Hashtbl.find_opt second b with None -> false | Some thirds -> List.mem c !thirds)

let mem_ids t ~s ~p ~o = index_mem t.spo s p o

let mem t { s; p; o } =
  match (id_of t s, id_of t p, id_of t o) with
  | Some s, Some p, Some o -> mem_ids t ~s ~p ~o
  | _ -> false

(* Set semantics: re-adding an existing triple is a no-op. Returns whether
   the triple was new. *)
let add t { s; p; o } =
  let si = intern t s and pi = intern t p and oi = intern t o in
  if mem_ids t ~s:si ~p:pi ~o:oi then false
  else begin
    index_add t.spo si pi oi;
    index_add t.pos pi oi si;
    index_add t.osp oi si pi;
    t.size <- t.size + 1;
    true
  end

let add_all t triples = List.iter (fun tr -> ignore (add t tr)) triples

(* Iterate all triples as id triples (s, p, o). *)
let iter_ids t f =
  Hashtbl.iter
    (fun s second -> Hashtbl.iter (fun p thirds -> List.iter (fun o -> f s p o) !thirds) second)
    t.spo

let iter t f = iter_ids t (fun s p o -> f { s = t.terms.(s); p = t.terms.(p); o = t.terms.(o) })

let to_list t =
  let acc = ref [] in
  iter t (fun tr -> acc := tr :: !acc);
  !acc

(* Pattern matching: [None] components are wildcards.  The index is
   chosen by the bound components; every shape is a lookup, never a scan
   of unrelated triples (full scan only for the all-wildcard pattern). *)
let iter_matching_ids t ~s ~p ~o f =
  let second_all index a g =
    match Hashtbl.find_opt index a with
    | None -> ()
    | Some second -> Hashtbl.iter (fun b thirds -> List.iter (fun c -> g b c) !thirds) second
  in
  let thirds_of index a b g =
    match Hashtbl.find_opt index a with
    | None -> ()
    | Some second -> (
        match Hashtbl.find_opt second b with None -> () | Some thirds -> List.iter g !thirds)
  in
  match (s, p, o) with
  | Some s, Some p, Some o -> if mem_ids t ~s ~p ~o then f s p o
  | Some s, Some p, None -> thirds_of t.spo s p (fun o -> f s p o)
  | Some s, None, Some o -> thirds_of t.osp o s (fun p -> f s p o)
  | None, Some p, Some o -> thirds_of t.pos p o (fun s -> f s p o)
  | Some s, None, None -> second_all t.spo s (fun p o -> f s p o)
  | None, Some p, None -> second_all t.pos p (fun o s -> f s p o)
  | None, None, Some o -> second_all t.osp o (fun s p -> f s p o)
  | None, None, None -> iter_ids t f

(* Count without materializing. *)
let count_matching_ids t ~s ~p ~o =
  let n = ref 0 in
  iter_matching_ids t ~s ~p ~o (fun _ _ _ -> incr n);
  !n

let iter_matching t ~s ~p ~o f =
  let resolve = function
    | None -> Some None
    | Some term -> ( match id_of t term with Some id -> Some (Some id) | None -> None)
  in
  match (resolve s, resolve p, resolve o) with
  | Some s, Some p, Some o ->
      iter_matching_ids t ~s ~p ~o (fun s p o ->
          f { s = t.terms.(s); p = t.terms.(p); o = t.terms.(o) })
  | _ -> () (* a constant term absent from the store matches nothing *)

let matching t ~s ~p ~o =
  let acc = ref [] in
  iter_matching t ~s ~p ~o (fun tr -> acc := tr :: !acc);
  !acc

(* Knowledge-graph integration: the RDF promise that shared IRIs denote
   shared entities makes merging a union of triple sets. *)
let merge ~into source = iter source (fun tr -> ignore (add into tr))

let copy t =
  let fresh = create () in
  merge ~into:fresh t;
  fresh

(* Distinct predicate ids in use. *)
let predicate_ids t = Hashtbl.fold (fun p _ acc -> p :: acc) t.pos [] |> List.sort compare

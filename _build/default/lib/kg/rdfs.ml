(* RDFS forward-chaining inference: the "producing new knowledge by
   deduction" capability of knowledge graphs (Section 2.3).  We
   materialize the core entailment rules to a fixpoint:

     rdfs5  (subPropertyOf transitivity)
     rdfs7  (property inheritance: p ⊑ q, x p y ⊢ x q y)
     rdfs9  (type inheritance through subClassOf)
     rdfs11 (subClassOf transitivity)
     rdfs2  (domain typing)
     rdfs3  (range typing)

   Each pass scans the store and adds the entailed triples; set semantics
   in the store makes the fixpoint detection a plain "no new triple". *)

let rdf_type = Term.Iri "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
let rdfs_sub_class_of = Term.Iri "http://www.w3.org/2000/01/rdf-schema#subClassOf"
let rdfs_sub_property_of = Term.Iri "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
let rdfs_domain = Term.Iri "http://www.w3.org/2000/01/rdf-schema#domain"
let rdfs_range = Term.Iri "http://www.w3.org/2000/01/rdf-schema#range"

(* One materialization pass; returns the number of new triples. *)
let pass store =
  let additions = ref [] in
  let derive s p o = additions := Triple_store.triple s p o :: !additions in
  (* rdfs11: subClassOf transitivity. *)
  Triple_store.iter_matching store ~s:None ~p:(Some rdfs_sub_class_of) ~o:None (fun t1 ->
      Triple_store.iter_matching store ~s:(Some t1.o) ~p:(Some rdfs_sub_class_of) ~o:None (fun t2 ->
          derive t1.s rdfs_sub_class_of t2.o));
  (* rdfs5: subPropertyOf transitivity. *)
  Triple_store.iter_matching store ~s:None ~p:(Some rdfs_sub_property_of) ~o:None (fun t1 ->
      Triple_store.iter_matching store ~s:(Some t1.o) ~p:(Some rdfs_sub_property_of) ~o:None
        (fun t2 -> derive t1.s rdfs_sub_property_of t2.o));
  (* rdfs9: type inheritance. *)
  Triple_store.iter_matching store ~s:None ~p:(Some rdfs_sub_class_of) ~o:None (fun sub ->
      Triple_store.iter_matching store ~s:None ~p:(Some rdf_type) ~o:(Some sub.s) (fun inst ->
          derive inst.s rdf_type sub.o));
  (* rdfs7: property inheritance. *)
  Triple_store.iter_matching store ~s:None ~p:(Some rdfs_sub_property_of) ~o:None (fun sub ->
      match sub.o with
      | Term.Iri _ ->
          Triple_store.iter_matching store ~s:None ~p:(Some sub.s) ~o:None (fun use ->
              derive use.s sub.o use.o)
      | Term.Literal _ | Term.Bnode _ -> ());
  (* rdfs2: domain. *)
  Triple_store.iter_matching store ~s:None ~p:(Some rdfs_domain) ~o:None (fun dom ->
      Triple_store.iter_matching store ~s:None ~p:(Some dom.s) ~o:None (fun use ->
          derive use.s rdf_type dom.o));
  (* rdfs3: range. *)
  Triple_store.iter_matching store ~s:None ~p:(Some rdfs_range) ~o:None (fun rng ->
      Triple_store.iter_matching store ~s:None ~p:(Some rng.s) ~o:None (fun use ->
          match use.o with
          | Term.Iri _ | Term.Bnode _ -> derive use.o rdf_type rng.o
          | Term.Literal _ -> ()));
  List.fold_left (fun acc tr -> if Triple_store.add store tr then acc + 1 else acc) 0 !additions

(* Materialize to fixpoint; returns the total number of inferred triples. *)
let materialize store =
  let rec loop total =
    let added = pass store in
    if added = 0 then total else loop (total + added)
  in
  loop 0

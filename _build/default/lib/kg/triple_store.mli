(** Indexed in-memory RDF triple store: interned terms and SPO/POS/OSP
    hash indexes, so every triple-pattern shape is a lookup. Mutable
    (knowledge graphs grow); set semantics. *)

type triple = { s : Term.t; p : Term.t; o : Term.t }

val triple : Term.t -> Term.t -> Term.t -> triple

type t

val create : unit -> t

(** Number of distinct triples. *)
val size : t -> int

(** Number of interned terms. *)
val num_terms : t -> int

(** Dense id of a term, interning on first sight. *)
val intern : t -> Term.t -> int

val term_of : t -> int -> Term.t
val id_of : t -> Term.t -> int option
val mem : t -> triple -> bool
val mem_ids : t -> s:int -> p:int -> o:int -> bool

(** Returns whether the triple was new (set semantics). *)
val add : t -> triple -> bool

val add_all : t -> triple list -> unit
val iter : t -> (triple -> unit) -> unit
val iter_ids : t -> (int -> int -> int -> unit) -> unit
val to_list : t -> triple list

(** Pattern matching: [None] components are wildcards; the right index
    is chosen per shape. A constant term absent from the store matches
    nothing. *)
val iter_matching :
  t -> s:Term.t option -> p:Term.t option -> o:Term.t option -> (triple -> unit) -> unit

val matching : t -> s:Term.t option -> p:Term.t option -> o:Term.t option -> triple list

val iter_matching_ids :
  t -> s:int option -> p:int option -> o:int option -> (int -> int -> int -> unit) -> unit

(** Count without materializing. *)
val count_matching_ids : t -> s:int option -> p:int option -> o:int option -> int

(** Knowledge-graph integration: set union (shared IRIs deduplicate). *)
val merge : into:t -> t -> unit

val copy : t -> t

(** Distinct predicate ids in use, ascending. *)
val predicate_ids : t -> int list

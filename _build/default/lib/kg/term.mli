(** RDF terms (the RDF model of Section 3): IRIs, literals, blank nodes.
    Shared IRIs denote shared entities — the "universal interpretation"
    that makes knowledge-graph merging a set union. *)

type t =
  | Iri of string
  | Literal of { value : string; datatype : string option; lang : string option }
  | Bnode of string

val iri : string -> t

(** Raises if both [datatype] and [lang] are given. *)
val literal : ?datatype:string -> ?lang:string -> string -> t

val bnode : string -> t
val xsd_integer : string
val xsd_decimal : string

(** xsd:integer literal. *)
val of_int : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_iri : t -> bool
val is_literal : t -> bool

(** Fragment / last path segment / last [:]-segment of an IRI (value of
    a literal, label of a bnode): how user-facing labels match IRIs. *)
val local_name : t -> string

(** N-Triples lexical form. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(* Mapping between property graphs and RDF — the model interoperability
   at the heart of Section 3's "unified view".  Because RDF edges are
   bare triples (no identity, no properties), a property-graph edge is
   *reified*: it becomes a resource with source, target, label and its
   properties, alongside a direct (source, label, target) triple that
   keeps plain path queries natural.

   Vocabulary (all under the urn:gqkg: namespace):
     urn:gqkg:node/<id>     node resource      urn:gqkg:edge/<id>  edge resource
     urn:gqkg:label/<l>     class of nodes/edges labeled l (via rdf:type)
     urn:gqkg:prop/<p>      property p (object is a literal)
     urn:gqkg:rel/<l>       direct edge triple predicate for label l
     urn:gqkg:source/target reification wiring

   [to_property_graph] inverts [of_property_graph] exactly on its image
   (round-trip checked by property tests, E11). *)

open Gqkg_graph

let ns = "urn:gqkg:"
let node_iri id = Term.Iri (ns ^ "node/" ^ Const.to_string id)
let edge_iri id = Term.Iri (ns ^ "edge/" ^ Const.to_string id)
let label_iri l = Term.Iri (ns ^ "label/" ^ Const.to_string l)
let prop_iri p = Term.Iri (ns ^ "prop/" ^ Const.to_string p)
let rel_iri l = Term.Iri (ns ^ "rel/" ^ Const.to_string l)
let source_iri = Term.Iri (ns ^ "source")
let target_iri = Term.Iri (ns ^ "target")

let value_literal v = Term.literal (Const.to_string v)

let of_property_graph pg =
  let store = Triple_store.create () in
  let add s p o = ignore (Triple_store.add store (Triple_store.triple s p o)) in
  for n = 0 to Property_graph.num_nodes pg - 1 do
    let subject = node_iri (Property_graph.node_id pg n) in
    add subject Rdfs.rdf_type (label_iri (Property_graph.node_label pg n));
    Array.iter
      (fun (p, v) -> add subject (prop_iri p) (value_literal v))
      (Property_graph.node_properties pg n)
  done;
  for e = 0 to Property_graph.num_edges pg - 1 do
    let s, d = Property_graph.endpoints pg e in
    let s_iri = node_iri (Property_graph.node_id pg s) in
    let d_iri = node_iri (Property_graph.node_id pg d) in
    let label = Property_graph.edge_label pg e in
    (* Direct triple for natural path querying... *)
    add s_iri (rel_iri label) d_iri;
    (* ...and the reified resource carrying identity and properties. *)
    let e_iri = edge_iri (Property_graph.edge_id pg e) in
    add e_iri Rdfs.rdf_type (label_iri label);
    add e_iri source_iri s_iri;
    add e_iri target_iri d_iri;
    Array.iter (fun (p, v) -> add e_iri (prop_iri p) (value_literal v)) (Property_graph.edge_properties pg e)
  done;
  store

(* Strip a namespace prefix, or None if it does not apply. *)
let strip prefix term =
  match term with
  | Term.Iri s when String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix
    -> Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  | _ -> None

let to_property_graph store =
  let b = Property_graph.Builder.create () in
  (* Nodes: resources typed with a label IRI under urn:gqkg:node/, added
     in identifier order so the reconstruction is deterministic. *)
  let node_decls = ref [] in
  Triple_store.iter_matching store ~s:None ~p:(Some Rdfs.rdf_type) ~o:None (fun tr ->
      match (strip (ns ^ "node/") tr.Triple_store.s, strip (ns ^ "label/") tr.o) with
      | Some id, Some label -> node_decls := (id, label) :: !node_decls
      | _ -> ());
  List.iter
    (fun (id, label) ->
      ignore (Property_graph.Builder.add_node b (Const.of_string id) ~label:(Const.of_string label)))
    (List.sort compare !node_decls);
  (* Edges: reified resources with source and target. *)
  let edge_info = Hashtbl.create 64 in
  let note id field value =
    let s, t, l = Option.value (Hashtbl.find_opt edge_info id) ~default:(None, None, None) in
    Hashtbl.replace edge_info id
      (match field with
      | `Source -> (Some value, t, l)
      | `Target -> (s, Some value, l)
      | `Label -> (s, t, Some value))
  in
  Triple_store.iter store (fun tr ->
      match strip (ns ^ "edge/") tr.Triple_store.s with
      | None -> ()
      | Some id -> begin
          if Term.equal tr.p source_iri then
            Option.iter (fun s -> note id `Source s) (strip (ns ^ "node/") tr.o)
          else if Term.equal tr.p target_iri then
            Option.iter (fun t -> note id `Target t) (strip (ns ^ "node/") tr.o)
          else if Term.equal tr.p Rdfs.rdf_type then
            Option.iter (fun l -> note id `Label l) (strip (ns ^ "label/") tr.o)
        end);
  let edge_index = Hashtbl.create 64 in
  (* Deterministic edge order: sort by identifier. *)
  let infos = Hashtbl.fold (fun id info acc -> (id, info) :: acc) edge_info [] |> List.sort compare in
  List.iter
    (fun (id, info) ->
      match info with
      | Some s, Some t, Some l -> begin
          match
            ( Property_graph.Builder.find_node b (Const.of_string s),
              Property_graph.Builder.find_node b (Const.of_string t) )
          with
          | Some s, Some t ->
              let e =
                Property_graph.Builder.add_edge b (Const.of_string id) ~src:s ~dst:t
                  ~label:(Const.of_string l)
              in
              Hashtbl.replace edge_index id e
          | _ -> ()
        end
      | _ -> ())
    infos;
  (* Properties of nodes and edges. *)
  Triple_store.iter store (fun tr ->
      match tr.Triple_store.p with
      | Term.Iri _ -> begin
          match strip (ns ^ "prop/") tr.p with
          | None -> ()
          | Some pname -> begin
              let value =
                match tr.o with Term.Literal { value; _ } -> Some (Const.of_string value) | _ -> None
              in
              match value with
              | None -> ()
              | Some value -> begin
                  match strip (ns ^ "node/") tr.s with
                  | Some id -> begin
                      match Property_graph.Builder.find_node b (Const.of_string id) with
                      | Some n ->
                          Property_graph.Builder.set_node_property b n ~prop:(Const.of_string pname) ~value
                      | None -> ()
                    end
                  | None -> (
                      match strip (ns ^ "edge/") tr.s with
                      | Some id -> (
                          match Hashtbl.find_opt edge_index id with
                          | Some e ->
                              Property_graph.Builder.set_edge_property b e ~prop:(Const.of_string pname)
                                ~value
                          | None -> ())
                      | None -> ())
                end
            end
        end
      | Term.Literal _ | Term.Bnode _ -> ());
  Property_graph.Builder.freeze b

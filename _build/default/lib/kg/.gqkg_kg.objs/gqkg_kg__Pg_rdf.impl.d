lib/kg/pg_rdf.ml: Array Const Gqkg_graph Hashtbl List Option Property_graph Rdfs String Term Triple_store

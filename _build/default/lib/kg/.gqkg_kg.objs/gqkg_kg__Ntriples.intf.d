lib/kg/ntriples.mli: Term Triple_store

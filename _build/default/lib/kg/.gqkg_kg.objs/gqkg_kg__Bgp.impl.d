lib/kg/bgp.ml: Gqkg_automata Gqkg_core Hashtbl List Option Printf Rdf_graph Term Triple_store

lib/kg/pg_rdf.mli: Const Gqkg_graph Property_graph Term Triple_store

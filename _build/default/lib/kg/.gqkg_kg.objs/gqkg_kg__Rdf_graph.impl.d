lib/kg/rdf_graph.ml: Array Atom Const Gqkg_graph Hashtbl Instance List Option Rdfs String Term Triple_store

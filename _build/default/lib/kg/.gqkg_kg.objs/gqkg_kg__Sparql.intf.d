lib/kg/sparql.mli: Bgp Term Triple_store

lib/kg/ntriples.ml: Buffer List Printf String Term Triple_store

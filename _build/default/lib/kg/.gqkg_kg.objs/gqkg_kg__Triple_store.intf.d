lib/kg/triple_store.mli: Term

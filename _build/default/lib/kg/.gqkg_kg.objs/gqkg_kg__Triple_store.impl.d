lib/kg/triple_store.ml: Array Hashtbl List Term

lib/kg/term.mli: Format

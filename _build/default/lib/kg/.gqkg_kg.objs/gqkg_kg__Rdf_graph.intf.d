lib/kg/rdf_graph.mli: Gqkg_graph Term Triple_store

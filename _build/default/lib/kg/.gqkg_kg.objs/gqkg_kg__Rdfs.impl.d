lib/kg/rdfs.ml: List Term Triple_store

lib/kg/term.ml: Buffer Fmt Hashtbl Int Printf Stdlib String

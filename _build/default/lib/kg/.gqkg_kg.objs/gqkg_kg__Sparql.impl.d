lib/kg/sparql.ml: Bgp Gqkg_automata List Ntriples Printf Rdfs String Term

lib/kg/bgp.mli: Gqkg_automata Term Triple_store

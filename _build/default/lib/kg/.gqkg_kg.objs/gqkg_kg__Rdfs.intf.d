lib/kg/rdfs.mli: Term Triple_store

(* RDF terms (Section 3's RDF model): IRIs, literals and blank nodes.
   Because Const is a set of URIs in the RDF reading, a constant used in
   two different graphs denotes the same element — the "universal
   interpretation" that makes knowledge-graph integration a plain set
   union ({!Triple_store.merge}). *)

type t =
  | Iri of string
  | Literal of { value : string; datatype : string option; lang : string option }
  | Bnode of string

let iri s = Iri s
let literal ?datatype ?lang value =
  (match (datatype, lang) with
  | Some _, Some _ -> invalid_arg "Term.literal: datatype and language tag are exclusive"
  | _ -> ());
  Literal { value; datatype; lang }

let bnode s = Bnode s

let xsd_integer = "http://www.w3.org/2001/XMLSchema#integer"
let xsd_decimal = "http://www.w3.org/2001/XMLSchema#decimal"

let of_int n = Literal { value = string_of_int n; datatype = Some xsd_integer; lang = None }

let equal a b =
  match (a, b) with
  | Iri x, Iri y -> String.equal x y
  | Bnode x, Bnode y -> String.equal x y
  | Literal x, Literal y -> x.value = y.value && x.datatype = y.datatype && x.lang = y.lang
  | (Iri _ | Literal _ | Bnode _), _ -> false

let compare a b =
  let tag = function Iri _ -> 0 | Bnode _ -> 1 | Literal _ -> 2 in
  match (a, b) with
  | Iri x, Iri y | Bnode x, Bnode y -> String.compare x y
  | Literal x, Literal y ->
      Stdlib.compare (x.value, x.datatype, x.lang) (y.value, y.datatype, y.lang)
  | _ -> Int.compare (tag a) (tag b)

let hash = Hashtbl.hash

let is_iri = function Iri _ -> true | Literal _ | Bnode _ -> false
let is_literal = function Literal _ -> true | Iri _ | Bnode _ -> false

(* The fragment / last path segment of an IRI: "http://ex.org/ns#person",
   "urn:label/person" and "urn:bib:person" all have local name "person"
   (separator precedence # then / then :).  Used to match user-friendly
   labels against IRIs. *)
let local_name = function
  | Iri s -> begin
      let after i = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt s '#' with
      | Some i -> after i
      | None -> (
          match String.rindex_opt s '/' with
          | Some i -> after i
          | None -> ( match String.rindex_opt s ':' with Some i -> after i | None -> s))
    end
  | Literal { value; _ } -> value
  | Bnode b -> b

let escape_literal value =
  let buf = Buffer.create (String.length value + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    value;
  Buffer.contents buf

(* N-Triples lexical form. *)
let to_string = function
  | Iri s -> Printf.sprintf "<%s>" s
  | Bnode b -> Printf.sprintf "_:%s" b
  | Literal { value; datatype; lang } -> begin
      let quoted = Printf.sprintf "\"%s\"" (escape_literal value) in
      match (datatype, lang) with
      | Some dt, _ -> Printf.sprintf "%s^^<%s>" quoted dt
      | None, Some l -> Printf.sprintf "%s@%s" quoted l
      | None, None -> quoted
    end

let pp ppf t = Fmt.string ppf (to_string t)

(** Basic graph pattern matching — the conjunctive core of SPARQL — with
    SPARQL-1.1-style property-path patterns (Section 4's declarative
    face of pattern extraction over RDF). Evaluation is greedy
    index-backed backtracking over the SPO/POS/OSP indexes; path
    patterns are materialized once each by the RPQ product engine. *)

type component = Const of Term.t | Var of string

type triple_pattern = { ps : component; pp : component; po : component }

type pattern =
  | Triple of triple_pattern
  | Path of { src : component; path : Gqkg_automata.Regex.t; dst : component }

(** A plain triple pattern. *)
val pattern : component -> component -> component -> pattern

(** A property-path pattern: endpoints joined by a regular expression
    over predicates. *)
val path_pattern : component -> Gqkg_automata.Regex.t -> component -> pattern

val v : string -> component
val c : Term.t -> component
val iri : string -> component

type query = { select : string list; where : pattern list }
type binding = (string * Term.t) list

val pattern_vars : pattern -> string list

(** Call [yield] once per solution mapping (not deduplicated). *)
val iter_solutions : Triple_store.t -> query -> yield:(binding -> unit) -> unit

(** Distinct projections onto the selected variables, sorted. Raises if
    a selected variable is unused. *)
val select : Triple_store.t -> query -> Term.t list list

(** Number of solution mappings (no projection or dedup). *)
val count_solutions : Triple_store.t -> query -> int

val ask : Triple_store.t -> query -> bool

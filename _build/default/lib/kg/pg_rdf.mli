(** Property-graph ↔ RDF mapping (the Section 3 model interoperability).
    Edges are reified (source/target/type plus properties) alongside a
    direct (source, rel-label, target) triple for natural path querying;
    [to_property_graph] inverts [of_property_graph] exactly on its image
    (up to declaration order). *)

open Gqkg_graph

(** Vocabulary (all under urn:gqkg:). *)
val node_iri : Const.t -> Term.t

val edge_iri : Const.t -> Term.t
val label_iri : Const.t -> Term.t
val prop_iri : Const.t -> Term.t
val rel_iri : Const.t -> Term.t
val source_iri : Term.t
val target_iri : Term.t

val of_property_graph : Property_graph.t -> Triple_store.t
val to_property_graph : Triple_store.t -> Property_graph.t

(** Lazy deterministic product of a graph instance and a regex automaton.

    A product state pairs a graph node with a closed {e set} of NFA
    states, so every matching path has exactly one run — the property the
    Section 4.1 algorithms (counting, uniform generation, enumeration)
    rely on. States are discovered on demand and given dense ids. *)

type t

(** A product state: the node plus the sorted, ε/node-check-closed NFA
    state set. *)
type state = { node : int; nfa_states : int array }

val create : Gqkg_graph.Instance.t -> Gqkg_automata.Regex.t -> t
val instance : t -> Gqkg_graph.Instance.t
val nfa : t -> Gqkg_automata.Nfa.t

(** Number of states materialized so far (grows as the product is
    explored). *)
val num_states : t -> int

val state : t -> int -> state

(** Graph node of a product state. *)
val node_of : t -> int -> int

(** Does the state set contain the accept state (after closure)? *)
val is_accepting : t -> int -> bool

(** The unique start state at a node: the closure of the NFA start there.
    [None] only for degenerate automata with an empty closure. *)
val start_state : t -> int -> int option

(** Memoized successor moves [(edge, successor-id)] of a state, in a
    deterministic order. One entry per (edge, destination) move — a
    self-loop matched in both directions yields a single move. *)
val successors : t -> int -> (int * int) array

(** [levels p ~depth] materializes every state reachable from any node's
    start state within [depth] moves; [result.(i)] lists (sorted) the ids
    reachable by paths of length exactly [i]. *)
val levels : t -> depth:int -> int list array

(* Lazy deterministic product of a graph instance with the guarded NFA of
   a regular expression.

   A product state is a pair (graph node, set of NFA states) where the set
   is closed under ε and satisfied node-checks.  Because the second
   component is a *set*, the product is deterministic as a transducer of
   paths: a path n0 e1 n1 ... ek nk has exactly one run.  This is the key
   property behind the Section 4.1 algorithms — counting runs then *is*
   counting paths, sampling runs uniformly samples paths uniformly, and
   depth-first enumeration emits each path once.

   States are discovered on demand and given dense ids; successor lists
   are memoized.  A move of the product is "(edge e, destination node w)":
   for an edge that can be traversed both ways between the same pair of
   incident nodes (a self-loop), forward and backward NFA transitions feed
   the same move, so the path is still counted once. *)

open Gqkg_graph
open Gqkg_automata

type state = { node : int; nfa_states : int array (* sorted, closed *) }

module Key = struct
  type t = int * int array

  let equal (n1, s1) (n2, s2) = n1 = n2 && s1 = s2
  let hash = Hashtbl.hash
end

module Key_table = Hashtbl.Make (Key)

type t = {
  inst : Instance.t;
  nfa : Nfa.t;
  ids : int Key_table.t;
  states : state Gqkg_util.Dynarray.t;
  mutable successors : (int * int) array option array; (* id -> [(edge, succ id)] *)
  accepting : bool Gqkg_util.Dynarray.t;
  start_cache : int option array; (* node -> start state id, -1 = unknown *)
  mutable start_known : bool array;
}

let create inst regex =
  let nfa = Nfa.of_regex regex in
  {
    inst;
    nfa;
    ids = Key_table.create 256;
    states = Gqkg_util.Dynarray.create { node = -1; nfa_states = [||] };
    successors = Array.make 16 None;
    accepting = Gqkg_util.Dynarray.create false;
    start_cache = Array.make (max inst.Instance.num_nodes 1) None;
    start_known = Array.make (max inst.Instance.num_nodes 1) false;
  }

let instance p = p.inst
let nfa p = p.nfa
let num_states p = Gqkg_util.Dynarray.length p.states
let state p id = Gqkg_util.Dynarray.get p.states id
let node_of p id = (state p id).node
let is_accepting p id = Gqkg_util.Dynarray.get p.accepting id

(* Intern a (node, closed state set) pair. *)
let intern p node nfa_states =
  let key = (node, nfa_states) in
  match Key_table.find_opt p.ids key with
  | Some id -> id
  | None ->
      let id = Gqkg_util.Dynarray.push p.states { node; nfa_states } in
      let _ = Gqkg_util.Dynarray.push p.accepting (Nfa.is_accepting p.nfa nfa_states) in
      Key_table.add p.ids key id;
      if id >= Array.length p.successors then begin
        let bigger = Array.make (2 * (id + 1)) None in
        Array.blit p.successors 0 bigger 0 (Array.length p.successors);
        p.successors <- bigger
      end;
      id

(* The unique start state at a node: closure of {q0}; [None] when the
   closure is the empty set of viable states — cannot happen with Thompson
   NFAs (the start state itself is always in its closure), so this always
   yields a state; kept total for robustness. *)
let start_state p node =
  if p.start_known.(node) then p.start_cache.(node)
  else begin
    let node_sat = p.inst.Instance.node_atom node in
    let closed = Nfa.closure p.nfa ~node_sat [| Nfa.start p.nfa |] in
    let result = if Array.length closed = 0 then None else Some (intern p node closed) in
    p.start_cache.(node) <- result;
    p.start_known.(node) <- true;
    result
  end

let successors p id =
  match p.successors.(id) with
  | Some s -> s
  | None ->
      let { node = v; nfa_states } = state p id in
      let fwd_moves, bwd_moves = Nfa.edge_moves p.nfa nfa_states in
      (* Collect NFA targets per product move (edge, destination). *)
      let by_move : (int * int, int list ref) Hashtbl.t = Hashtbl.create 8 in
      let add_targets e w tests edge_sat =
        List.iter
          (fun (test, q') ->
            if Regex.eval_test edge_sat test then begin
              match Hashtbl.find_opt by_move (e, w) with
              | Some acc -> if not (List.mem q' !acc) then acc := q' :: !acc
              | None -> Hashtbl.add by_move (e, w) (ref [ q' ])
            end)
          tests
      in
      if fwd_moves <> [] then
        Array.iter
          (fun (e, w) -> add_targets e w fwd_moves (p.inst.Instance.edge_atom e))
          (p.inst.Instance.out_edges v);
      if bwd_moves <> [] then
        Array.iter
          (fun (e, u) -> add_targets e u bwd_moves (p.inst.Instance.edge_atom e))
          (p.inst.Instance.in_edges v);
      let out = ref [] in
      Hashtbl.iter
        (fun (e, w) targets ->
          let arr = Array.of_list !targets in
          Array.sort compare arr;
          let closed = Nfa.closure p.nfa ~node_sat:(p.inst.Instance.node_atom w) arr in
          if Array.length closed > 0 then out := (e, intern p w closed) :: !out)
        by_move;
      (* Deterministic order: sort by (edge, successor). *)
      let arr = Array.of_list !out in
      Array.sort compare arr;
      p.successors.(id) <- Some arr;
      arr

(* Breadth-first materialization of the states reachable within [depth]
   steps from every node's start state.  Returns the per-level state-id
   sets (level.(i) = ids reachable by paths of length exactly i; a state
   can appear in several levels). *)
let levels p ~depth =
  let all_starts =
    List.filter_map (start_state p) (List.init p.inst.Instance.num_nodes Fun.id)
  in
  let first = List.sort_uniq compare all_starts in
  let levels = Array.make (depth + 1) [] in
  levels.(0) <- first;
  for i = 1 to depth do
    let seen = Hashtbl.create 64 in
    List.iter
      (fun id ->
        Array.iter
          (fun (_edge, succ) -> if not (Hashtbl.mem seen succ) then Hashtbl.add seen succ ())
          (successors p id))
      levels.(i - 1);
    levels.(i) <- Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare
  done;
  levels

lib/core/uniform_gen.ml: Alias Array Count Gqkg_graph Gqkg_util Instance List Path Product

lib/core/path.ml: Array Buffer Fmt Gqkg_graph Hashtbl Instance Printf Stdlib

lib/core/naive.mli: Gqkg_automata Gqkg_graph Path

lib/core/approx_count.mli: Gqkg_automata Gqkg_graph Path

lib/core/product.mli: Gqkg_automata Gqkg_graph

lib/core/rpq.mli: Gqkg_automata Gqkg_graph Path

lib/core/enumerate.ml: Array Count Fun Gqkg_graph Instance List Path Product

lib/core/rpq.ml: Array Gqkg_automata Gqkg_graph Hashtbl Instance List Nfa Path Product Queue Regex

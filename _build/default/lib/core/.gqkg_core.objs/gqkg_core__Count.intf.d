lib/core/count.mli: Gqkg_automata Gqkg_graph Product

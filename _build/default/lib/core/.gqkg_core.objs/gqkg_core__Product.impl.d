lib/core/product.ml: Array Fun Gqkg_automata Gqkg_graph Gqkg_util Hashtbl Instance List Nfa Regex

lib/core/approx_count.ml: Alias Array Gqkg_automata Gqkg_graph Gqkg_util Hashtbl Instance List Nfa Path Regex Splitmix

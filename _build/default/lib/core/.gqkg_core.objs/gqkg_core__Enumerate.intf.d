lib/core/enumerate.mli: Gqkg_automata Gqkg_graph Path

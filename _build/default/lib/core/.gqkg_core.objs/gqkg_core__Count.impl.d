lib/core/count.ml: Array Gqkg_graph Hashtbl List Option Product

lib/core/naive.ml: Gqkg_automata Gqkg_graph Hashtbl Instance List Option Path Regex Set

lib/core/uniform_gen.mli: Gqkg_automata Gqkg_graph Gqkg_util Path

lib/core/path.mli: Format Gqkg_graph

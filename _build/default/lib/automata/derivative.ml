(* Brzozowski derivatives for path regular expressions: a second,
   independent implementation of the Section 4 path semantics, used to
   cross-check the NFA/product engine in the test suite and discussed in
   the ablation section.

   The derivative is taken directly on {!Regex.t}.  The two constants
   derivatives need are encoded as node tests:

     ε (exactly the zero-length path, anywhere) = ?any_test
     ∅ (nothing)                                = ?(any_test ∧ ¬any_test)

   Because ?tests fire at the node where they stand, "does r match the
   empty path HERE" ([nullable_at]) and the derivative of a step taken
   FROM a node both receive that node's atom oracle. *)

open Gqkg_graph

let epsilon = Regex.Node_test Regex.any_test
let empty = Regex.Node_test (Regex.And (Regex.any_test, Regex.Not Regex.any_test))

let is_epsilon r = Regex.equal r epsilon
let is_empty r = Regex.equal r empty

(* Smart constructors: ∅ and ε propagate, keeping derivatives small. *)
let alt a b = if is_empty a then b else if is_empty b then a else if Regex.equal a b then a else Regex.Alt (a, b)

let seq a b =
  if is_empty a || is_empty b then empty
  else if is_epsilon a then b
  else if is_epsilon b then a
  else Regex.Seq (a, b)

let star r = if is_empty r || is_epsilon r then epsilon else match r with Regex.Star _ -> r | r -> Regex.Star r

(* Does r match the zero-length path at a node satisfying [node_sat]? *)
let rec nullable_at ~node_sat = function
  | Regex.Node_test test -> Regex.eval_test node_sat test
  | Regex.Fwd _ | Regex.Bwd _ -> false
  | Regex.Alt (a, b) -> nullable_at ~node_sat a || nullable_at ~node_sat b
  | Regex.Seq (a, b) -> nullable_at ~node_sat a && nullable_at ~node_sat b
  | Regex.Star _ -> true

(* One path step: from a node with oracle [node_sat], consume an edge
   with oracle [edge_sat]; [forward_ok] / [backward_ok] say which
   orientations this concrete step realizes (a self-loop realizes
   both). *)
let rec derive ~node_sat ~edge_sat ~forward_ok ~backward_ok r =
  let d = derive ~node_sat ~edge_sat ~forward_ok ~backward_ok in
  match r with
  | Regex.Node_test _ -> empty
  | Regex.Fwd test -> if forward_ok && Regex.eval_test edge_sat test then epsilon else empty
  | Regex.Bwd test -> if backward_ok && Regex.eval_test edge_sat test then epsilon else empty
  | Regex.Alt (a, b) -> alt (d a) (d b)
  | Regex.Seq (a, b) ->
      let through = seq (d a) b in
      if nullable_at ~node_sat a then alt through (d b) else through
  | Regex.Star inner -> seq (d inner) (star inner)

(* One concrete step of a path, described by oracles so this module
   stays independent of any particular graph representation. *)
type step = {
  edge_sat : Atom.t -> bool;
  forward_ok : bool;  (** the edge points from the current node to the next *)
  backward_ok : bool;  (** the edge points from the next node to the current *)
  dst_sat : Atom.t -> bool;  (** atom oracle of the arrival node *)
}

(* Reference matcher: differentiate along the steps, accept if the final
   residual is nullable at the end node. *)
let matches ~start_sat steps regex =
  let rec loop node_sat r = function
    | [] -> nullable_at ~node_sat r
    | { edge_sat; forward_ok; backward_ok; dst_sat } :: rest ->
        let r' = derive ~node_sat ~edge_sat ~forward_ok ~backward_ok r in
        if is_empty r' then false else loop dst_sat r' rest
  in
  loop start_sat regex steps

(** Brzozowski derivatives on path regular expressions: an independent
    second implementation of the Section 4 semantics (the cross-check
    backend). ε and ∅ are encoded as node tests. *)

open Gqkg_graph

(** The zero-length-path-anywhere expression (ε). *)
val epsilon : Regex.t

(** The match-nothing expression (∅). *)
val empty : Regex.t

val is_epsilon : Regex.t -> bool
val is_empty : Regex.t -> bool

(** Does r match the zero-length path at a node with this oracle? *)
val nullable_at : node_sat:(Atom.t -> bool) -> Regex.t -> bool

(** Derivative with respect to one step taken from a node: which
    orientations the concrete edge realizes is the caller's business
    (a self-loop realizes both). *)
val derive :
  node_sat:(Atom.t -> bool) ->
  edge_sat:(Atom.t -> bool) ->
  forward_ok:bool ->
  backward_ok:bool ->
  Regex.t ->
  Regex.t

(** One concrete path step, as oracles. *)
type step = {
  edge_sat : Atom.t -> bool;
  forward_ok : bool;
  backward_ok : bool;
  dst_sat : Atom.t -> bool;
}

(** Differentiate along the steps from a start node; accept iff the
    residual is nullable at the end. *)
val matches : start_sat:(Atom.t -> bool) -> step list -> Regex.t -> bool

(** Guarded NFAs compiled from Section 4 regular expressions (Thompson's
    construction). Transitions are moves evaluated against a data-model
    oracle rather than letters of a fixed alphabet. *)

type move =
  | Eps  (** spontaneous *)
  | Node_check of Regex.test  (** spontaneous, if the current node passes *)
  | Forward of Regex.test  (** consume an edge along its direction *)
  | Backward of Regex.test  (** consume an edge against its direction *)

type t

(** Linear-size Thompson construction: single start, single accept. *)
val of_regex : Regex.t -> t

val num_states : t -> int
val start : t -> int
val accept : t -> int
val transitions : t -> int -> (move * int) list

(** Closure of a state set under ε and satisfied node-checks; [node_sat]
    answers atomic tests for the current node. Sorted and duplicate-free
    (the canonical key of the subset construction). *)
val closure : t -> node_sat:(Gqkg_graph.Atom.t -> bool) -> int array -> int array

(** Does the (closed) set contain the accept state? *)
val is_accepting : t -> int array -> bool

(** Edge-consuming moves out of a state set: (test, target) pairs,
    (forward, backward). *)
val edge_moves : t -> int array -> (Regex.test * int) list * (Regex.test * int) list

(** Human-readable dump. *)
val to_string : t -> string

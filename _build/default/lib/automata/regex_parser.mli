(** Parser for the ASCII concrete syntax of Section 4 regular
    expressions, e.g.

    {v ?person/(contact & date=3/4/21)/?infected v}
    {v ?infected/rides/?bus/rides^-/(?person/(lives + contact))*/?person v}

    [!], [&], [|] are ¬, ∧, ∨; [+] alternation; [/] concatenation; [*]
    star; [?t] a node test; [t^-] a backward edge; [p=v] a property
    test; [fN=v] the feature test (f_N = v); quoted ['values'] may
    contain spaces; dates like [3/4/21] lex as one token in value
    position. *)

exception Error of { position : int; message : string }

(** Raises {!Error} with a 0-based character position. *)
val parse : string -> Regex.t

val parse_opt : string -> Regex.t option

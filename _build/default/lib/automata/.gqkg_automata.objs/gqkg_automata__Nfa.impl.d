lib/automata/nfa.ml: Array Buffer List Printf Regex Stack

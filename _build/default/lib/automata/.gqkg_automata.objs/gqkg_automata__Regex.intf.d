lib/automata/regex.mli: Atom Format Gqkg_graph

lib/automata/regex_parser.mli: Regex

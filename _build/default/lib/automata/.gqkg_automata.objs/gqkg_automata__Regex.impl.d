lib/automata/regex.ml: Atom Const Fmt Gqkg_graph List

lib/automata/nfa.mli: Gqkg_graph Regex

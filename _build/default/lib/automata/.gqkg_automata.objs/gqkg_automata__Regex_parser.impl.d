lib/automata/regex_parser.ml: Array Atom Const Gqkg_graph List Printf Regex String

lib/automata/derivative.ml: Atom Gqkg_graph Regex

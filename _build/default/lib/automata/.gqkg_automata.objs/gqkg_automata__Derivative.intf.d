lib/automata/derivative.mli: Atom Gqkg_graph Regex

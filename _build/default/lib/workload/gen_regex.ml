(* Random regular-expression generator over a label vocabulary: the
   input distribution for the property tests that cross-check the
   product-based engine against the naive denotational evaluator. *)

open Gqkg_graph
open Gqkg_automata
open Gqkg_util

type params = {
  node_labels : string list;
  edge_labels : string list;
  max_depth : int;
  star_probability : float;
}

let default =
  { node_labels = [ "a"; "b"; "c" ]; edge_labels = [ "x"; "y"; "z" ]; max_depth = 4; star_probability = 0.2 }

let random_test rng labels ~depth =
  let labels = Array.of_list labels in
  let rec go depth =
    if depth = 0 || Splitmix.bernoulli rng 0.6 then
      Regex.Atom (Atom.Label (Const.str (Splitmix.choose rng labels)))
    else begin
      match Splitmix.int rng 3 with
      | 0 -> Regex.Not (go (depth - 1))
      | 1 -> Regex.Or (go (depth - 1), go (depth - 1))
      | _ -> Regex.And (go (depth - 1), go (depth - 1))
    end
  in
  go depth

let generate ?(params = default) rng =
  let rec go depth =
    if depth = 0 then leaf ()
    else begin
      match Splitmix.int rng 10 with
      | 0 | 1 | 2 -> Regex.Seq (go (depth - 1), go (depth - 1))
      | 3 | 4 -> Regex.Alt (go (depth - 1), go (depth - 1))
      | 5 when Splitmix.bernoulli rng params.star_probability -> Regex.Star (go (depth - 1))
      | _ -> leaf ()
    end
  and leaf () =
    match Splitmix.int rng 4 with
    | 0 -> Regex.Node_test (random_test rng params.node_labels ~depth:2)
    | 1 -> Regex.Bwd (random_test rng params.edge_labels ~depth:2)
    | _ -> Regex.Fwd (random_test rng params.edge_labels ~depth:2)
  in
  go params.max_depth

(** Scaled generator for the paper's running example: contact-tracing
    networks of people, buses, addresses and companies (Figure 2 writ
    large), on which every worked query of Section 4 is meaningful. *)

open Gqkg_graph
open Gqkg_util

type params = {
  people : int;
  infected : float;  (** fraction labeled "infected" *)
  buses : int;
  companies : int;
  addresses : int;
  household : int;  (** max people per address *)
  rides_per_person : int;
  contacts : int;
}

val default : params
val generate : ?params:params -> Splitmix.t -> Property_graph.t

(** [default] with every population multiplied. *)
val scaled : Splitmix.t -> scale:int -> Property_graph.t

(** The paper's queries, parse-ready. *)
val query_contact_infected : string

val query_contact_dated : string
val query_shared_bus : string
val query_infection_spread : string
val query_bus_transport : string

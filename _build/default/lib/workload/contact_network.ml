(* Scaled generator for the paper's running example: a contact-tracing
   network of people, buses, addresses and companies (Figure 2 writ
   large).  Every Section 4 experiment that needs "a realistic labeled /
   property graph" draws from here, so the regexes of the paper — (2),
   (3), r, r1 and the bus-centrality query — are meaningful on every
   instance.

   Structure (all sizes parameters):
   - [people] person nodes, a fraction [infected] labeled "infected";
   - [buses] bus nodes, each owned by one of [companies] companies;
   - [addresses] address nodes (with zip properties); people are assigned
     to addresses (households) and get "lives" edges;
   - each person "rides" [rides_per_person] uniformly chosen buses, with
     a date property;
   - [contacts] "contact" edges between random pairs of people, with a
     date property. *)

open Gqkg_graph
open Gqkg_util

type params = {
  people : int;
  infected : float; (* fraction of people labeled infected *)
  buses : int;
  companies : int;
  addresses : int;
  household : int; (* max people per address *)
  rides_per_person : int;
  contacts : int;
}

let default =
  {
    people = 50;
    infected = 0.15;
    buses = 5;
    companies = 2;
    addresses = 20;
    household = 3;
    rides_per_person = 2;
    contacts = 40;
  }

let random_date rng =
  Const.date ~year:2021 ~month:(Splitmix.int_in_range rng ~lo:1 ~hi:4)
    ~day:(Splitmix.int_in_range rng ~lo:1 ~hi:28)

let generate ?(params = default) rng =
  if params.people < 1 || params.buses < 1 || params.addresses < 1 || params.companies < 1 then
    invalid_arg "Contact_network.generate: all populations must be positive";
  let b = Property_graph.Builder.create () in
  let person = Array.make params.people 0 in
  let edge_counter = ref 0 in
  let fresh_edge () =
    let id = Const.str (Printf.sprintf "e%d" !edge_counter) in
    incr edge_counter;
    id
  in
  for i = 0 to params.people - 1 do
    let label = if Splitmix.bernoulli rng params.infected then "infected" else "person" in
    let n = Property_graph.Builder.add_node b (Const.str (Printf.sprintf "p%d" i)) ~label:(Const.str label) in
    Property_graph.Builder.set_node_property b n ~prop:(Const.str "age")
      ~value:(Const.int (Splitmix.int_in_range rng ~lo:5 ~hi:90));
    person.(i) <- n
  done;
  let bus = Array.make params.buses 0 in
  for i = 0 to params.buses - 1 do
    bus.(i) <- Property_graph.Builder.add_node b (Const.str (Printf.sprintf "b%d" i)) ~label:(Const.str "bus")
  done;
  let company = Array.make params.companies 0 in
  for i = 0 to params.companies - 1 do
    company.(i) <-
      Property_graph.Builder.add_node b (Const.str (Printf.sprintf "c%d" i)) ~label:(Const.str "company")
  done;
  Array.iter
    (fun bus_node ->
      ignore
        (Property_graph.Builder.add_edge b (fresh_edge ())
           ~src:(Splitmix.choose rng company)
           ~dst:bus_node ~label:(Const.str "owns")))
    bus;
  let address = Array.make params.addresses 0 in
  for i = 0 to params.addresses - 1 do
    let n =
      Property_graph.Builder.add_node b (Const.str (Printf.sprintf "a%d" i)) ~label:(Const.str "address")
    in
    Property_graph.Builder.set_node_property b n ~prop:(Const.str "zip")
      ~value:(Const.int (10000 + Splitmix.int rng 90000));
    address.(i) <- n
  done;
  (* Households: chunk people into addresses. *)
  Array.iteri
    (fun i p ->
      let home = address.((i / max 1 params.household) mod params.addresses) in
      ignore (Property_graph.Builder.add_edge b (fresh_edge ()) ~src:p ~dst:home ~label:(Const.str "lives")))
    person;
  Array.iter
    (fun p ->
      for _ = 1 to params.rides_per_person do
        let e =
          Property_graph.Builder.add_edge b (fresh_edge ()) ~src:p ~dst:(Splitmix.choose rng bus)
            ~label:(Const.str "rides")
        in
        Property_graph.Builder.set_edge_property b e ~prop:(Const.str "date") ~value:(random_date rng)
      done)
    person;
  for _ = 1 to params.contacts do
    let x = Splitmix.choose rng person and y = Splitmix.choose rng person in
    if x <> y then begin
      let e = Property_graph.Builder.add_edge b (fresh_edge ()) ~src:x ~dst:y ~label:(Const.str "contact") in
      Property_graph.Builder.set_edge_property b e ~prop:(Const.str "date") ~value:(random_date rng)
    end
  done;
  Property_graph.Builder.freeze b

(* A family of instances scaled by a factor, for parameter sweeps. *)
let scaled rng ~scale =
  let p =
    {
      people = 50 * scale;
      infected = 0.15;
      buses = 5 * scale;
      companies = max 2 scale;
      addresses = 20 * scale;
      household = 3;
      rides_per_person = 2;
      contacts = 40 * scale;
    }
  in
  generate ~params:p rng

(* The worked queries of the paper, as parse-ready strings. *)
let query_contact_infected = "?person/contact/?infected"
let query_contact_dated = "?person/(contact & date=3/4/21)/?infected"
let query_shared_bus = "?person/rides/?bus/rides^-/?infected"
let query_infection_spread = "?infected/rides/?bus/rides^-/(?person/(lives + contact))*/?person"
let query_bus_transport = "?person/rides/?bus/rides^-/?person"

lib/workload/bibliometrics.ml: Bgp Float Gqkg_kg Gqkg_util List Printf Rdfs Splitmix Term Triple_store

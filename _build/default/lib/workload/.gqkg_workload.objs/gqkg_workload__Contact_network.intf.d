lib/workload/contact_network.mli: Gqkg_graph Gqkg_util Property_graph Splitmix

lib/workload/gen_graph.ml: Array Const Gqkg_graph Gqkg_util Hashtbl Labeled_graph List Printf Splitmix

lib/workload/bibliometrics.mli: Gqkg_kg Gqkg_util Splitmix Term Triple_store

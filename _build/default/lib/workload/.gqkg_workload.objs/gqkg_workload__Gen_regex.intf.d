lib/workload/gen_regex.mli: Gqkg_automata Gqkg_util Regex Splitmix

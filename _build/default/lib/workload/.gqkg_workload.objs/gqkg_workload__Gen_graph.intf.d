lib/workload/gen_graph.mli: Gqkg_graph Gqkg_util Labeled_graph Splitmix

lib/workload/contact_network.ml: Array Const Gqkg_graph Gqkg_util Printf Property_graph Splitmix

lib/workload/gen_regex.ml: Array Atom Const Gqkg_automata Gqkg_graph Gqkg_util Regex Splitmix

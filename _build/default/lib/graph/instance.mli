(** The uniform query-engine view over all Section 3 data models.

    Every model (labeled, property, vector-labeled, RDF) exposes itself
    as a value of this record: dense node/edge indexes, ρ, adjacency in
    both directions, and an oracle answering atomic tests. The entire
    Section 4 machinery is written once against it. *)

type t = {
  num_nodes : int;
  num_edges : int;
  endpoints : int -> int * int;  (** ρ(e) = (source, target) *)
  out_edges : int -> (int * int) array;  (** node → [(edge, head)] *)
  in_edges : int -> (int * int) array;  (** node → [(edge, tail)] *)
  node_atom : int -> Atom.t -> bool;
  edge_atom : int -> Atom.t -> bool;
  node_name : int -> string;  (** display name *)
  edge_name : int -> string;
}

val src : t -> int -> int
val dst : t -> int -> int

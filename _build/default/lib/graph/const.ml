(* The set Const of the paper (Section 3): constants usable as node and
   edge identifiers, labels, property names and actual values.  We give it
   a little structure (strings, integers, reals, dates) because the worked
   examples use ages and dates; [Bottom] is the ⊥ placeholder of
   vector-labeled graphs (Figure 2(c)). *)

type t =
  | Str of string
  | Int of int
  | Real of float
  | Date of { year : int; month : int; day : int }
  | Bottom

let str s = Str s
let int n = Int n
let real x = Real x

let date ~year ~month ~day =
  if month < 1 || month > 12 || day < 1 || day > 31 then invalid_arg "Const.date: invalid date";
  Date { year; month; day }

let bottom = Bottom

let equal a b =
  match (a, b) with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Date x, Date y -> x.year = y.year && x.month = y.month && x.day = y.day
  | Bottom, Bottom -> true
  | (Str _ | Int _ | Real _ | Date _ | Bottom), _ -> false

let compare a b =
  let tag = function Str _ -> 0 | Int _ -> 1 | Real _ -> 2 | Date _ -> 3 | Bottom -> 4 in
  match (a, b) with
  | Str x, Str y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Date x, Date y -> Stdlib.compare (x.year, x.month, x.day) (y.year, y.month, y.day)
  | Bottom, Bottom -> 0
  | _ -> Int.compare (tag a) (tag b)

let hash = Hashtbl.hash

(* Rendering follows the paper's figures: dates as month/day/two-digit-year
   ("3/4/21"), ⊥ for missing vector entries. *)
let to_string = function
  | Str s -> s
  | Int n -> string_of_int n
  | Real x -> Printf.sprintf "%g" x
  | Date { year; month; day } -> Printf.sprintf "%d/%d/%02d" month day (year mod 100)
  | Bottom -> "_|_"

let pp ppf c = Fmt.string ppf (to_string c)

(* Parse the concrete syntax used by the graph file format and the regex
   parser: dates as m/d/yy or m/d/yyyy, then ints, then floats, ⊥ for
   Bottom, everything else a string. *)
let of_string s =
  if String.equal s "_|_" then Bottom
  else begin
    match String.split_on_char '/' s with
    | [ m; d; y ]
      when String.length y > 0
           && (match (int_of_string_opt m, int_of_string_opt d, int_of_string_opt y) with
              | Some m, Some d, Some _ -> m >= 1 && m <= 12 && d >= 1 && d <= 31
              | _ -> false) ->
        let year = int_of_string y in
        let year = if year < 100 then 2000 + year else year in
        Date { year; month = int_of_string m; day = int_of_string d }
    | _ -> (
        match int_of_string_opt s with
        | Some n -> Int n
        | None -> (
            match float_of_string_opt s with
            | Some x when String.contains s '.' -> Real x
            | _ -> Str s))
  end

(** The running example of the paper: the Figure 2 graph in the three
    data models. The node/edge inventory is reconstructed from the prose
    (see the implementation header); every worked query of Section 4 has
    the answers the text describes on it. *)

(** Figure 2(b): the property graph (people, bus, address, company, with
    names/ages/zip/dates). *)
val property : unit -> Property_graph.t

(** Figure 2(a): the same graph with σ forgotten. *)
val labeled : unit -> Labeled_graph.t

(** Figure 2(c): the flattening of (b) with its feature schema. *)
val vector : unit -> Vector_graph.t * Vector_graph.schema

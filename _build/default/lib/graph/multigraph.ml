(* The base structure of Section 3: a multigraph (N, E, ρ) with
   N, E ⊆ Const and ρ : E → N × N.  Nodes and edges are stored with dense
   integer indexes; the Const identifiers are kept for display and for the
   "universal interpretation" of RDF-style merging.

   The type is immutable once frozen from a {!Builder}; adjacency is
   precomputed in both directions because regular expressions traverse
   edges forwards (ℓ) and backwards (ℓ⁻). *)

type t = {
  node_ids : Const.t array;
  edge_ids : Const.t array;
  rho : (int * int) array;
  out_adj : (int * int) array array; (* node -> [(edge, head)] for edges leaving it *)
  in_adj : (int * int) array array; (* node -> [(edge, tail)] for edges entering it *)
  node_index : (Const.t, int) Hashtbl.t;
  edge_index : (Const.t, int) Hashtbl.t;
}

let num_nodes g = Array.length g.node_ids
let num_edges g = Array.length g.edge_ids

let node_id g n =
  if n < 0 || n >= num_nodes g then invalid_arg "Multigraph.node_id: out of range";
  g.node_ids.(n)

let edge_id g e =
  if e < 0 || e >= num_edges g then invalid_arg "Multigraph.edge_id: out of range";
  g.edge_ids.(e)

let endpoints g e =
  if e < 0 || e >= num_edges g then invalid_arg "Multigraph.endpoints: out of range";
  g.rho.(e)

let src g e = fst (endpoints g e)
let dst g e = snd (endpoints g e)
let out_edges g n = g.out_adj.(n)
let in_edges g n = g.in_adj.(n)
let out_degree g n = Array.length g.out_adj.(n)
let in_degree g n = Array.length g.in_adj.(n)
let find_node g id = Hashtbl.find_opt g.node_index id
let find_edge g id = Hashtbl.find_opt g.edge_index id

let node_of_exn g id =
  match find_node g id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Multigraph: unknown node %s" (Const.to_string id))

let iter_nodes g f =
  for n = 0 to num_nodes g - 1 do
    f n
  done

let iter_edges g f =
  for e = 0 to num_edges g - 1 do
    f e
  done

(* Neighbors reachable ignoring direction; used by undirected analytics. *)
let undirected_neighbors g n =
  let out = g.out_adj.(n) and into = g.in_adj.(n) in
  Array.append (Array.map snd out) (Array.map snd into)

module Builder = struct
  type graph = t

  type t = {
    mutable nodes : Const.t list; (* reversed *)
    mutable node_count : int;
    mutable edges : (Const.t * int * int) list; (* reversed *)
    mutable edge_count : int;
    node_index : (Const.t, int) Hashtbl.t;
    edge_index : (Const.t, int) Hashtbl.t;
  }

  let create () =
    {
      nodes = [];
      node_count = 0;
      edges = [];
      edge_count = 0;
      node_index = Hashtbl.create 64;
      edge_index = Hashtbl.create 64;
    }

  let num_nodes b = b.node_count
  let num_edges b = b.edge_count

  (* Adding an already-present identifier returns the existing index:
     this is what makes merging graphs over shared Const natural. *)
  let add_node b id =
    match Hashtbl.find_opt b.node_index id with
    | Some n -> n
    | None ->
        let n = b.node_count in
        b.nodes <- id :: b.nodes;
        b.node_count <- n + 1;
        Hashtbl.add b.node_index id n;
        n

  let fresh_node b =
    let rec loop i =
      let id = Const.Str (Printf.sprintf "n%d" i) in
      if Hashtbl.mem b.node_index id then loop (i + 1) else add_node b id
    in
    loop b.node_count

  let add_edge b id ~src ~dst =
    if src < 0 || src >= b.node_count || dst < 0 || dst >= b.node_count then
      invalid_arg "Multigraph.Builder.add_edge: endpoint out of range";
    if Hashtbl.mem b.edge_index id then
      invalid_arg (Printf.sprintf "Multigraph.Builder.add_edge: duplicate edge %s" (Const.to_string id));
    let e = b.edge_count in
    b.edges <- (id, src, dst) :: b.edges;
    b.edge_count <- e + 1;
    Hashtbl.add b.edge_index id e;
    e

  let fresh_edge b ~src ~dst =
    let rec loop i =
      let id = Const.Str (Printf.sprintf "e%d" i) in
      if Hashtbl.mem b.edge_index id then loop (i + 1) else add_edge b id ~src ~dst
    in
    loop b.edge_count

  let find_node b id = Hashtbl.find_opt b.node_index id

  let freeze b =
    let node_ids = Array.of_list (List.rev b.nodes) in
    let edges = Array.of_list (List.rev b.edges) in
    let edge_ids = Array.map (fun (id, _, _) -> id) edges in
    let rho = Array.map (fun (_, s, d) -> (s, d)) edges in
    let n = Array.length node_ids in
    let out_count = Array.make n 0 and in_count = Array.make n 0 in
    Array.iter
      (fun (s, d) ->
        out_count.(s) <- out_count.(s) + 1;
        in_count.(d) <- in_count.(d) + 1)
      rho;
    let out_adj = Array.init n (fun v -> Array.make out_count.(v) (0, 0)) in
    let in_adj = Array.init n (fun v -> Array.make in_count.(v) (0, 0)) in
    let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
    Array.iteri
      (fun e (s, d) ->
        out_adj.(s).(out_fill.(s)) <- (e, d);
        out_fill.(s) <- out_fill.(s) + 1;
        in_adj.(d).(in_fill.(d)) <- (e, s);
        in_fill.(d) <- in_fill.(d) + 1)
      rho;
    {
      node_ids;
      edge_ids;
      rho;
      out_adj;
      in_adj;
      node_index = Hashtbl.copy b.node_index;
      edge_index = Hashtbl.copy b.edge_index;
    }
end

(* Convenience: build from explicit lists of identifiers. *)
let of_lists ~nodes ~edges =
  let b = Builder.create () in
  List.iter (fun id -> ignore (Builder.add_node b id)) nodes;
  List.iter
    (fun (id, s, d) ->
      let s = Builder.add_node b s and d = Builder.add_node b d in
      ignore (Builder.add_edge b id ~src:s ~dst:d))
    edges;
  Builder.freeze b

(** The set [Const] of the paper: constants used as identifiers, labels,
    property names and values. [Bottom] is the ⊥ of vector-labeled graphs. *)

type t =
  | Str of string
  | Int of int
  | Real of float
  | Date of { year : int; month : int; day : int }
  | Bottom

val str : string -> t
val int : int -> t
val real : float -> t

(** Raises on out-of-range month/day. *)
val date : year:int -> month:int -> day:int -> t

val bottom : t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Paper-style rendering: dates as ["3/4/21"], ⊥ as ["_|_"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Inverse of {!to_string} on the concrete syntax: date, int, float
    (with a dot), ⊥, otherwise string. *)
val of_string : string -> t

(** Append-only journal (write-ahead log) for property graphs: the
    storage lifecycle of Section 2.1 — durable, growing and shrinking by
    explicit operations, rebuildable by replay. *)

type op =
  | Add_node of { id : Const.t; label : Const.t }
  | Add_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Set_node_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Set_edge_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Del_node of { id : Const.t }  (** deletes incident edges too *)
  | Del_edge of { id : Const.t }

exception Replay_error of { line : int; message : string }

(** One line per op, no trailing newline. *)
val op_to_line : op -> string

(** [None] on blank lines; raises {!Replay_error} on malformed input. *)
val op_of_line : line:int -> string -> op option

(** Replay a history into a graph. Raises {!Replay_error} on invalid
    sequences (duplicate adds, references to missing objects). *)
val replay_ops : op list -> Property_graph.t

(** Parse a journal text; [tolerate_partial] ignores a torn final line
    (crash recovery). *)
val ops_of_string : ?tolerate_partial:bool -> string -> op list

val ops_to_string : op list -> string

(** The minimal history recreating the graph's current state. *)
val ops_of_graph : Property_graph.t -> op list

(** {2 The durable store} *)

type store

(** Open (or create) a journal file, validating it by replay. *)
val open_store : ?tolerate_partial:bool -> string -> store

(** Validate the operation against the current state, append it durably
    (flushed), and invalidate the cached graph. Raises {!Replay_error}
    on invalid operations — nothing is written in that case. *)
val append : store -> op -> unit

(** The materialized current state (cached between mutations). *)
val graph : store -> Property_graph.t

val num_ops : store -> int

(** Rewrite the journal as the minimal history of the current state. *)
val checkpoint : store -> unit

val close_store : store -> unit

(** Plain-text serialization of property graphs and Graphviz DOT export.

    Format (one declaration per line; ['#'] starts a comment):
    {v
    node <id> <label> [<prop>=<value> ...]
    edge <id> <src-id> <dst-id> <label> [<prop>=<value> ...]
    v}
    Tokens are whitespace-separated and parsed with {!Const.of_string};
    edges may reference nodes declared later. *)

exception Parse_error of { line : int; message : string }

(** Raises {!Parse_error} with a 1-based line number. *)
val property_graph_of_string : string -> Property_graph.t

val labeled_graph_of_string : string -> Labeled_graph.t

(** Deterministic rendering in declaration (index) order; a fixed point
    of parse ∘ render. *)
val property_graph_to_string : Property_graph.t -> string

val labeled_graph_to_string : Labeled_graph.t -> string

(** Order-insensitive canonical form (node and edge declarations
    sorted): the right equality after set-based round-trips (RDF). *)
val canonical_string : Property_graph.t -> string

val load_property_graph : string -> Property_graph.t
val save_property_graph : string -> Property_graph.t -> unit

(** Graphviz digraph of the labeled view. *)
val to_dot : ?name:string -> Property_graph.t -> string

(* The uniform query-engine view over all data models of Section 3.

   Every model (labeled, property, vector-labeled, and RDF via gqkg_kg)
   exposes itself as an [Instance.t]: dense node/edge indexes, ρ,
   adjacency in both directions, and an oracle answering atomic tests on
   nodes and edges.  The whole Section 4 machinery (path semantics,
   counting, generation, enumeration, regex-constrained centrality) is
   written once against this record — this is the "unified and simple
   view" the tutorial advocates. *)

type t = {
  num_nodes : int;
  num_edges : int;
  endpoints : int -> int * int;
  out_edges : int -> (int * int) array; (* node -> [(edge, head)] *)
  in_edges : int -> (int * int) array; (* node -> [(edge, tail)] *)
  node_atom : int -> Atom.t -> bool;
  edge_atom : int -> Atom.t -> bool;
  node_name : int -> string;
  edge_name : int -> string;
}

let src t e = fst (t.endpoints e)
let dst t e = snd (t.endpoints e)

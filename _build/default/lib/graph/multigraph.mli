(** Multigraphs (N, E, ρ) with N, E ⊆ Const and ρ : E → N × N (Section 3).

    Nodes and edges carry dense integer indexes ([0 .. num-1]); their Const
    identifiers are preserved for display and identifier-based merging.
    Values are immutable once frozen from a {!Builder}. *)

type t

val num_nodes : t -> int
val num_edges : t -> int

(** Const identifier of a node index. *)
val node_id : t -> int -> Const.t

(** Const identifier of an edge index. *)
val edge_id : t -> int -> Const.t

(** [endpoints g e] is ρ(e) = (source, target). *)
val endpoints : t -> int -> int * int

val src : t -> int -> int
val dst : t -> int -> int

(** Outgoing [(edge, head)] pairs of a node. Do not mutate. *)
val out_edges : t -> int -> (int * int) array

(** Incoming [(edge, tail)] pairs of a node. Do not mutate. *)
val in_edges : t -> int -> (int * int) array

val out_degree : t -> int -> int
val in_degree : t -> int -> int
val find_node : t -> Const.t -> int option
val find_edge : t -> Const.t -> int option

(** Like {!find_node} but raising [Invalid_argument] on unknown ids. *)
val node_of_exn : t -> Const.t -> int

val iter_nodes : t -> (int -> unit) -> unit
val iter_edges : t -> (int -> unit) -> unit

(** All neighbors ignoring edge direction (with multiplicity). *)
val undirected_neighbors : t -> int -> int array

module Builder : sig
  type graph = t
  type t

  val create : unit -> t
  val num_nodes : t -> int
  val num_edges : t -> int

  (** Add (or find) a node by identifier; idempotent. *)
  val add_node : t -> Const.t -> int

  (** Add a node with a generated unused identifier. *)
  val fresh_node : t -> int

  (** Add an edge with a fresh identifier. Raises on duplicates. *)
  val add_edge : t -> Const.t -> src:int -> dst:int -> int

  (** Add an edge with a generated unused identifier. *)
  val fresh_edge : t -> src:int -> dst:int -> int

  val find_node : t -> Const.t -> int option
  val freeze : t -> graph
end

(** Build from identifier lists; edge endpoints are added as needed. *)
val of_lists : nodes:Const.t list -> edges:(Const.t * Const.t * Const.t) list -> t

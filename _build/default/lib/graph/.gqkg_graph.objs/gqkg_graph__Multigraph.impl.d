lib/graph/multigraph.ml: Array Const Hashtbl List Printf

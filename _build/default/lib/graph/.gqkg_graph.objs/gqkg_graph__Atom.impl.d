lib/graph/atom.ml: Const Fmt Int Printf

lib/graph/const.mli: Format

lib/graph/vector_graph.mli: Atom Const Instance Labeled_graph Multigraph Property_graph

lib/graph/property_graph.mli: Atom Const Instance Labeled_graph Multigraph

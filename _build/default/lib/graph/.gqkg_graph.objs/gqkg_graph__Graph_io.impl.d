lib/graph/graph_io.ml: Array Buffer Const List Printf Property_graph String

lib/graph/journal.ml: Array Const Fun Hashtbl List Option Printf Property_graph String Sys

lib/graph/multigraph.mli: Const

lib/graph/figure2.mli: Labeled_graph Property_graph Vector_graph

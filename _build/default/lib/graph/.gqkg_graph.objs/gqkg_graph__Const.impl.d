lib/graph/const.ml: Float Fmt Hashtbl Int Printf Stdlib String

lib/graph/figure2.ml: Const Lazy Property_graph Vector_graph

lib/graph/instance.mli: Atom

lib/graph/property_graph.ml: Array Atom Const Hashtbl Instance Labeled_graph List Multigraph Option Set

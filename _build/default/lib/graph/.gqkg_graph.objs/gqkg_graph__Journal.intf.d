lib/graph/journal.mli: Const Property_graph

lib/graph/labeled_graph.mli: Atom Const Instance Multigraph

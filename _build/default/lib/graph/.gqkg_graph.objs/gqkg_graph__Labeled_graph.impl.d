lib/graph/labeled_graph.ml: Array Atom Const Hashtbl Instance List Multigraph Option

lib/graph/atom.mli: Const Format

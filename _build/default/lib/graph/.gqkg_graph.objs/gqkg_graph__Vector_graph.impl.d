lib/graph/vector_graph.ml: Array Atom Const Instance Labeled_graph Multigraph Printf Property_graph Set

lib/graph/instance.ml: Atom

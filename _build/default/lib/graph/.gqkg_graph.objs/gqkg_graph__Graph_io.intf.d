lib/graph/graph_io.mli: Labeled_graph Property_graph

(* Atomic tests of the regular-expression grammars of Section 4:
   - [Label ℓ]      over labeled graphs (grammar (1));
   - [Prop (p, v)]  the (p = v) extension for property graphs;
   - [Feature (i, v)] the (f_i = v) extension for vector-labeled graphs,
     with the paper's 1-based feature indexing.
   Boolean combinations live in the regex layer; each data model only has
   to say whether a node or an edge satisfies an atom. *)

type t =
  | Label of Const.t
  | Prop of Const.t * Const.t
  | Feature of int * Const.t

let label s = Label (Const.str s)
let prop p v = Prop (Const.str p, v)

let feature i v =
  if i < 1 then invalid_arg "Atom.feature: features are 1-based";
  Feature (i, v)

let equal a b =
  match (a, b) with
  | Label x, Label y -> Const.equal x y
  | Prop (p, v), Prop (q, w) -> Const.equal p q && Const.equal v w
  | Feature (i, v), Feature (j, w) -> i = j && Const.equal v w
  | (Label _ | Prop _ | Feature _), _ -> false

let compare a b =
  let tag = function Label _ -> 0 | Prop _ -> 1 | Feature _ -> 2 in
  match (a, b) with
  | Label x, Label y -> Const.compare x y
  | Prop (p, v), Prop (q, w) ->
      let c = Const.compare p q in
      if c <> 0 then c else Const.compare v w
  | Feature (i, v), Feature (j, w) ->
      let c = Int.compare i j in
      if c <> 0 then c else Const.compare v w
  | _ -> Int.compare (tag a) (tag b)

let to_string = function
  | Label l -> Const.to_string l
  | Prop (p, v) -> Printf.sprintf "%s=%s" (Const.to_string p) (Const.to_string v)
  | Feature (i, v) -> Printf.sprintf "f%d=%s" i (Const.to_string v)

let pp ppf a = Fmt.string ppf (to_string a)

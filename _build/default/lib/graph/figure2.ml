(* The running example of the paper: the graph of Figure 2, rendered in
   the three data models of Section 3.

   The published figure is a drawing; we reconstruct it from the prose:
   "people and their contacts" (Figure 2(a)), extended in Figure 2(b) with
   "the name and age of a person, the zip code of the address for two
   people that live together, the date when someone rides a bus, and the
   date a contact between two people occurs".  The node/edge inventory
   below makes every worked query of Section 4 — (2), (3), r, r1 and the
   bus-centrality example — have the answers the text describes:

     n1 person  (name Julia, age 42)   --e1 contact (date 3/4/21)--> n2
     n2 infected (name John, age 55)
     n3 bus                            n1 --e2 rides (date 3/3/21)--> n3
     n4 address (zip 8320)             n2 --e3 rides (date 3/3/21)--> n3
     n5 company (name TransInc)        n1 --e4 lives--> n4
                                       n2 --e5 lives--> n4
                                       n5 --e6 owns--> n3                *)

let c = Const.str

let property_graph =
  lazy
    begin
      let b = Property_graph.Builder.create () in
      let node id label = Property_graph.Builder.add_node b (c id) ~label:(c label) in
      let n1 = node "n1" "person" in
      let n2 = node "n2" "infected" in
      let n3 = node "n3" "bus" in
      let n4 = node "n4" "address" in
      let n5 = node "n5" "company" in
      let edge id src dst label = Property_graph.Builder.add_edge b (c id) ~src ~dst ~label:(c label) in
      let e1 = edge "e1" n1 n2 "contact" in
      let e2 = edge "e2" n1 n3 "rides" in
      let e3 = edge "e3" n2 n3 "rides" in
      let _e4 = edge "e4" n1 n4 "lives" in
      let _e5 = edge "e5" n2 n4 "lives" in
      let _e6 = edge "e6" n5 n3 "owns" in
      let set_n = Property_graph.Builder.set_node_property b in
      let set_e = Property_graph.Builder.set_edge_property b in
      set_n n1 ~prop:(c "name") ~value:(c "Julia");
      set_n n1 ~prop:(c "age") ~value:(Const.int 42);
      set_n n2 ~prop:(c "name") ~value:(c "John");
      set_n n2 ~prop:(c "age") ~value:(Const.int 55);
      set_n n4 ~prop:(c "zip") ~value:(Const.int 8320);
      set_n n5 ~prop:(c "name") ~value:(c "TransInc");
      set_e e1 ~prop:(c "date") ~value:(Const.date ~year:2021 ~month:3 ~day:4);
      set_e e2 ~prop:(c "date") ~value:(Const.date ~year:2021 ~month:3 ~day:3);
      set_e e3 ~prop:(c "date") ~value:(Const.date ~year:2021 ~month:3 ~day:3);
      Property_graph.Builder.freeze b
    end

(* Figure 2(b). *)
let property () = Lazy.force property_graph

(* Figure 2(a): the same graph with σ forgotten. *)
let labeled () = Property_graph.to_labeled (property ())

(* Figure 2(c): the flattening of Figure 2(b), feature 1 = label, the rest
   the property schema with ⊥ for missing values. *)
let vector () = Vector_graph.of_property (property ())

(** Dinic's maximum flow on an explicit network — the substrate of
    Goldberg's exact densest-subgraph algorithm. Float capacities. *)

type t

val create : int -> t

(** Directed capacity edge (a zero-capacity residual twin is added). *)
val add_edge : t -> src:int -> dst:int -> capacity:float -> unit

(** Maximum flow value; mutates residual capacities. *)
val max_flow : t -> source:int -> sink:int -> float

(** After {!max_flow}: nodes reachable in the residual network (the
    source side of a minimum cut). *)
val min_cut_source_side : t -> source:int -> bool array

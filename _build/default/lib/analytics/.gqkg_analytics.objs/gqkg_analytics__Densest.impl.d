lib/analytics/densest.ml: Array Fun Gqkg_graph Gqkg_util Instance List Maxflow

lib/analytics/walks.ml: Array Gqkg_graph Instance

lib/analytics/regex_centrality.ml: Alias Array Gqkg_core Gqkg_graph Gqkg_util Hashtbl Instance List Option Product Queue Splitmix

lib/analytics/traversal.ml: Array Gqkg_graph Gqkg_util Instance List Queue Stack

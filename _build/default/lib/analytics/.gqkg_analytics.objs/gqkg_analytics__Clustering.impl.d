lib/analytics/clustering.ml: Array Fun Gqkg_graph Gqkg_util Hashtbl Instance List Option Queue Splitmix

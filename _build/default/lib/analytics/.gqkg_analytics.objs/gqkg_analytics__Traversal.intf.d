lib/analytics/traversal.mli: Gqkg_graph Instance

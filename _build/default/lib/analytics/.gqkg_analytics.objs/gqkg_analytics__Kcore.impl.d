lib/analytics/kcore.ml: Array Gqkg_graph Instance List

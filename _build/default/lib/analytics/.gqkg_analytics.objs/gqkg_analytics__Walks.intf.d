lib/analytics/walks.mli: Gqkg_graph Instance

lib/analytics/maxflow.mli:

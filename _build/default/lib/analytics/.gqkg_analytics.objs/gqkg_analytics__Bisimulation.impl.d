lib/analytics/bisimulation.ml: Array Atom Const Gqkg_automata Gqkg_core Gqkg_graph Hashtbl Labeled_graph List Printf

lib/analytics/clustering.mli: Gqkg_graph Instance

lib/analytics/shortest_paths.ml: Array Gqkg_graph Gqkg_util Heap Instance Traversal

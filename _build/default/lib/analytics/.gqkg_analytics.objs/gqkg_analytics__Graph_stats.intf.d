lib/analytics/graph_stats.mli: Format Gqkg_graph Instance

lib/analytics/graph_stats.ml: Array Centrality Clustering Fmt Gqkg_graph Hashtbl Instance List Option Traversal

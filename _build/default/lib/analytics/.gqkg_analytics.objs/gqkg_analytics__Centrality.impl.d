lib/analytics/centrality.ml: Array Domain Float Fun Gqkg_graph Instance Int List Queue Traversal

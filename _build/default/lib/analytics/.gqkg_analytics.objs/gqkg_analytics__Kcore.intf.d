lib/analytics/kcore.mli: Gqkg_graph Instance

lib/analytics/regex_centrality.mli: Gqkg_automata Gqkg_graph Instance

lib/analytics/centrality.mli: Gqkg_graph Instance

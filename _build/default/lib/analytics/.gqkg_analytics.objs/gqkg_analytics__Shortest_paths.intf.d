lib/analytics/shortest_paths.mli: Gqkg_graph Instance

lib/analytics/densest.mli: Gqkg_graph Instance

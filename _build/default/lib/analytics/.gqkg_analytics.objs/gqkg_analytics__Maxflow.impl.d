lib/analytics/maxflow.ml: Array Float Queue

lib/analytics/bisimulation.mli: Gqkg_automata Gqkg_graph Labeled_graph

(* Basic graph traversals over the uniform Instance view: breadth-first
   and depth-first orders, weakly connected components, and Tarjan's
   strongly connected components.  These are the "global properties"
   substrate of Section 2.1(iii) on which the analytics of Section 4.2
   build. *)

open Gqkg_graph

let out_neighbors inst v = Array.map snd (inst.Instance.out_edges v)
let in_neighbors inst v = Array.map snd (inst.Instance.in_edges v)

let all_neighbors inst v = Array.append (out_neighbors inst v) (in_neighbors inst v)

(* BFS order and distances from [source]; [directed] chooses whether to
   respect edge direction (default) or treat edges as symmetric. *)
let bfs ?(directed = true) inst ~source =
  let n = inst.Instance.num_nodes in
  let dist = Array.make n (-1) in
  let order = ref [] in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    let push w =
      if dist.(w) < 0 then begin
        dist.(w) <- dist.(v) + 1;
        Queue.push w queue
      end
    in
    Array.iter push (out_neighbors inst v);
    if not directed then Array.iter push (in_neighbors inst v)
  done;
  (dist, List.rev !order)

let bfs_distances ?directed inst ~source = fst (bfs ?directed inst ~source)

(* Depth-first finishing order (used by SCC variants and as a generic
   traversal); iterative to survive deep graphs. *)
let dfs_finish_order ?(directed = true) inst =
  let n = inst.Instance.num_nodes in
  let visited = Array.make n false in
  let order = ref [] in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      let stack = Stack.create () in
      Stack.push (root, 0) stack;
      visited.(root) <- true;
      while not (Stack.is_empty stack) do
        let v, i = Stack.pop stack in
        let neighbors =
          if directed then out_neighbors inst v else all_neighbors inst v
        in
        if i < Array.length neighbors then begin
          Stack.push (v, i + 1) stack;
          let w = neighbors.(i) in
          if not visited.(w) then begin
            visited.(w) <- true;
            Stack.push (w, 0) stack
          end
        end
        else order := v :: !order
      done
    end
  done;
  !order (* reverse finishing order: last finished first *)

(* Weakly connected components: labels in [0, count). *)
let weakly_connected_components inst =
  let n = inst.Instance.num_nodes in
  let uf = Gqkg_util.Union_find.create n in
  for e = 0 to inst.Instance.num_edges - 1 do
    let s, d = inst.Instance.endpoints e in
    ignore (Gqkg_util.Union_find.union uf s d)
  done;
  (Gqkg_util.Union_find.labeling uf, Gqkg_util.Union_find.components uf)

(* Tarjan's strongly connected components, iterative.  Returns component
   labels (in reverse topological order of the condensation) and count. *)
let strongly_connected_components inst =
  let n = inst.Instance.num_nodes in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let scc_stack = Stack.create () in
  let counter = ref 0 and comp_count = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* Explicit DFS stack of (node, next-neighbor-index). *)
      let call_stack = Stack.create () in
      let start v =
        index.(v) <- !counter;
        lowlink.(v) <- !counter;
        incr counter;
        Stack.push v scc_stack;
        on_stack.(v) <- true;
        Stack.push (v, 0) call_stack
      in
      start root;
      while not (Stack.is_empty call_stack) do
        let v, i = Stack.pop call_stack in
        let neighbors = out_neighbors inst v in
        if i < Array.length neighbors then begin
          Stack.push (v, i + 1) call_stack;
          let w = neighbors.(i) in
          if index.(w) < 0 then start w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          (* v is finished: propagate lowlink to the caller, pop an SCC
             if v is a root. *)
          (match Stack.top_opt call_stack with
          | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | None -> ());
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop scc_stack in
              on_stack.(w) <- false;
              comp.(w) <- !comp_count;
              if w = v then continue := false
            done;
            incr comp_count
          end
        end
      done
    end
  done;
  (comp, !comp_count)

(* Dinic's maximum-flow algorithm on an explicit flow network.  Built as
   substrate for Goldberg's exact densest-subgraph algorithm (Section 4.2
   cites densest-subgraph discovery as a flagship community-detection
   analytic).  Capacities are floats; the algorithm is exact up to
   floating-point tolerance, which suffices for the rational capacities
   Goldberg's reduction produces. *)

type arc = { dst : int; mutable capacity : float; inverse : int (* index of reverse arc *) }

type t = {
  num_nodes : int;
  mutable arcs : arc array;
  mutable arc_count : int;
  adjacency : int list array; (* node -> arc indexes, reversed order *)
}

let create num_nodes =
  if num_nodes <= 0 then invalid_arg "Maxflow.create: need at least one node";
  { num_nodes; arcs = Array.make 16 { dst = -1; capacity = 0.0; inverse = -1 }; arc_count = 0; adjacency = Array.make num_nodes [] }

let push_arc t arc =
  if t.arc_count = Array.length t.arcs then begin
    let bigger = Array.make (2 * t.arc_count) t.arcs.(0) in
    Array.blit t.arcs 0 bigger 0 t.arc_count;
    t.arcs <- bigger
  end;
  t.arcs.(t.arc_count) <- arc;
  t.arc_count <- t.arc_count + 1;
  t.arc_count - 1

(* Add a directed edge with the given capacity (and a zero-capacity
   residual twin). *)
let add_edge t ~src ~dst ~capacity =
  if capacity < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  let fwd_index = t.arc_count in
  let fwd = { dst; capacity; inverse = fwd_index + 1 } in
  let bwd = { dst = src; capacity = 0.0; inverse = fwd_index } in
  ignore (push_arc t fwd);
  ignore (push_arc t bwd);
  t.adjacency.(src) <- fwd_index :: t.adjacency.(src);
  t.adjacency.(dst) <- (fwd_index + 1) :: t.adjacency.(dst)

let eps = 1e-12

(* Dinic: repeat { build level graph by BFS; saturate with blocking flow
   via DFS with arc iterators } until the sink is unreachable. *)
let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source equals sink";
  let level = Array.make t.num_nodes (-1) in
  let adj = Array.map Array.of_list t.adjacency in
  let iter = Array.make t.num_nodes 0 in
  let total = ref 0.0 in
  let build_levels () =
    Array.fill level 0 t.num_nodes (-1);
    let queue = Queue.create () in
    level.(source) <- 0;
    Queue.push source queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun ai ->
          let arc = t.arcs.(ai) in
          if arc.capacity > eps && level.(arc.dst) < 0 then begin
            level.(arc.dst) <- level.(v) + 1;
            Queue.push arc.dst queue
          end)
        adj.(v)
    done;
    level.(sink) >= 0
  in
  let rec augment v pushed =
    if v = sink then pushed
    else begin
      let result = ref 0.0 in
      while !result = 0.0 && iter.(v) < Array.length adj.(v) do
        let ai = adj.(v).(iter.(v)) in
        let arc = t.arcs.(ai) in
        if arc.capacity > eps && level.(arc.dst) = level.(v) + 1 then begin
          let d = augment arc.dst (Float.min pushed arc.capacity) in
          if d > eps then begin
            arc.capacity <- arc.capacity -. d;
            t.arcs.(arc.inverse).capacity <- t.arcs.(arc.inverse).capacity +. d;
            result := d
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !result
    end
  in
  while build_levels () do
    Array.fill iter 0 t.num_nodes 0;
    let continue = ref true in
    while !continue do
      let pushed = augment source infinity in
      if pushed <= eps then continue := false else total := !total +. pushed
    done
  done;
  !total

(* Source side of the minimum cut after {!max_flow}: the nodes reachable
   in the residual network. *)
let min_cut_source_side t ~source =
  let adj = Array.map Array.of_list t.adjacency in
  let seen = Array.make t.num_nodes false in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun ai ->
        let arc = t.arcs.(ai) in
        if arc.capacity > eps && not seen.(arc.dst) then begin
          seen.(arc.dst) <- true;
          Queue.push arc.dst queue
        end)
      adj.(v)
  done;
  seen

(** Forward bisimulation and its quotient over labeled graphs — the
    classic structural index ("1-index") of semi-structured databases.
    Bisimilar nodes have identical forward path languages, so forward
    node-extraction queries can be answered on the quotient and
    expanded. *)

open Gqkg_graph

type t = {
  block_of : int array;  (** node → block *)
  num_blocks : int;
  members : int list array;  (** block → nodes, ascending *)
  quotient : Labeled_graph.t;
      (** one node per block (members' shared label), one edge per
          distinct (block, label, block) *)
}

(** Partition refinement from the by-label partition to the coarsest
    forward bisimulation. *)
val compute : Labeled_graph.t -> t

(** Is the expression in the fragment the index is sound for (label
    tests, forward steps, + / concat / star)? *)
val forward_fragment : Gqkg_automata.Regex.t -> bool

(** Nodes that can start an r-path, answered on the quotient and
    expanded; exact for the forward fragment (raises outside it). *)
val source_nodes_via_quotient : ?max_length:int -> t -> Gqkg_automata.Regex.t -> int list

(* The knowledge-graph lifecycle of Section 2.3 — represent, integrate,
   produce — in one runnable story:

   1. two independently curated RDF graphs (a geography KG and a people
      KG) REPRESENT knowledge, sharing IRIs for common entities;
   2. merging them INTEGRATES the knowledge (set union: the "universal
      interpretation" of constants);
   3. RDFS materialization and path queries PRODUCE knowledge neither
      source contained on its own.

     dune exec examples/knowledge_lifecycle.exe *)

open Gqkg_kg

let iri = Term.iri
let t3 = Triple_store.triple
let ex name = iri ("http://example.org/" ^ name)

let geography () =
  let s = Triple_store.create () in
  Triple_store.add_all s
    [
      (* Ontology: cities are places, capitals are cities. *)
      t3 (ex "Capital") Rdfs.rdfs_sub_class_of (ex "City");
      t3 (ex "City") Rdfs.rdfs_sub_class_of (ex "Place");
      t3 (ex "locatedIn") Rdfs.rdfs_domain (ex "Place");
      t3 (ex "locatedIn") Rdfs.rdfs_range (ex "Place");
      (* Facts. *)
      t3 (ex "santiago") Rdfs.rdf_type (ex "Capital");
      t3 (ex "santiago") (ex "locatedIn") (ex "chile");
      t3 (ex "valparaiso") Rdfs.rdf_type (ex "City");
      t3 (ex "valparaiso") (ex "locatedIn") (ex "chile");
      t3 (ex "chile") (ex "locatedIn") (ex "southAmerica");
    ];
  s

let people () =
  let s = Triple_store.create () in
  Triple_store.add_all s
    [
      t3 (ex "bornIn") Rdfs.rdfs_range (ex "Place");
      t3 (ex "bornIn") Rdfs.rdfs_domain (ex "Person");
      t3 (ex "ada") (ex "bornIn") (ex "santiago");
      t3 (ex "ada") (ex "advisorOf") (ex "ben");
      t3 (ex "ben") (ex "bornIn") (ex "valparaiso");
      t3 (ex "ben") (ex "advisorOf") (ex "carla");
      t3 (ex "carla") (ex "bornIn") (ex "lima");
    ];
  s

let () =
  (* 1. Represent. *)
  let geo = geography () and ppl = people () in
  Printf.printf "geography KG: %d triples; people KG: %d triples\n" (Triple_store.size geo)
    (Triple_store.size ppl);

  (* A question neither source can answer alone: which people were born
     in a Chilean city? (people knows births, geography knows cities) *)
  let question store =
    Bgp.select store
      {
        Bgp.select = [ "p" ];
        where =
          [
            Bgp.pattern (Bgp.v "p") (Bgp.c (ex "bornIn")) (Bgp.v "c");
            Bgp.pattern (Bgp.v "c") (Bgp.c Rdfs.rdf_type) (Bgp.c (ex "City"));
            Bgp.pattern (Bgp.v "c") (Bgp.c (ex "locatedIn")) (Bgp.c (ex "chile"));
          ];
      }
  in
  Printf.printf "born in a Chilean city, asked of each source alone: %d and %d answers\n"
    (List.length (question geo)) (List.length (question ppl));

  (* 2. Integrate: merge is set union because shared IRIs denote shared
     entities. *)
  let kg = Triple_store.copy geo in
  Triple_store.merge ~into:kg ppl;
  Printf.printf "\nmerged KG: %d triples\n" (Triple_store.size kg);
  Printf.printf "after integration (before inference): %d answers\n" (List.length (question kg));

  (* 3. Produce: RDFS deduction adds what was implicit — santiago is a
     Capital, hence a City; domains/ranges type the untyped. *)
  let inferred = Rdfs.materialize kg in
  Printf.printf "RDFS materialization added %d triples\n" inferred;
  let answers = question kg in
  Printf.printf "after inference: %d answers:\n" (List.length answers);
  List.iter
    (fun row -> List.iter (fun t -> Printf.printf "  %s\n" (Term.local_name t)) row)
    answers;

  (* Producing more: reachability questions through property paths — the
     advisor lineage of people born in Chile. *)
  let path = Gqkg_automata.Regex_parser.parse "advisorOf/advisorOf*" in
  let rows =
    Bgp.select kg
      {
        Bgp.select = [ "x"; "y" ];
        where =
          [
            Bgp.pattern (Bgp.v "x") (Bgp.c (ex "bornIn")) (Bgp.v "c");
            Bgp.pattern (Bgp.v "c") (Bgp.c (ex "locatedIn")) (Bgp.c (ex "chile"));
            Bgp.path_pattern (Bgp.v "x") path (Bgp.v "y");
          ];
      }
  in
  Printf.printf "\nacademic descendants of the Chilean-born (advisorOf+):\n";
  List.iter
    (fun row ->
      match row with
      | [ x; y ] -> Printf.printf "  %s -> %s\n" (Term.local_name x) (Term.local_name y)
      | _ -> ())
    rows;

  (* And everything survives a trip through N-Triples. *)
  let text = Ntriples.to_string kg in
  let kg' = Ntriples.parse_string text in
  Printf.printf "\nserialized to %d bytes of N-Triples; reparse preserves all %d triples: %b\n"
    (String.length text) (Triple_store.size kg)
    (Triple_store.size kg' = Triple_store.size kg)

examples/quickstart.mli:

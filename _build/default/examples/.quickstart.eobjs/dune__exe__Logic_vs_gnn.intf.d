examples/logic_vs_gnn.mli:

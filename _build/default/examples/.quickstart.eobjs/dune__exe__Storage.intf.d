examples/storage.mli:

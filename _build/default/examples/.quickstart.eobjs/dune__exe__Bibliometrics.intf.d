examples/bibliometrics.mli:

examples/storage.ml: Const Filename Gqkg_automata Gqkg_core Gqkg_graph Instance Journal List Printf Property_graph Rpq Sys

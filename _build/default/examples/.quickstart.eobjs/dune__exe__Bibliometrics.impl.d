examples/bibliometrics.ml: Bibliometrics Gqkg_automata Gqkg_core Gqkg_kg Gqkg_util Gqkg_workload List Printf Splitmix Table

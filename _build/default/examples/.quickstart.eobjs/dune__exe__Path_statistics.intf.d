examples/path_statistics.mli:

examples/knowledge_lifecycle.ml: Bgp Gqkg_automata Gqkg_kg List Ntriples Printf Rdfs String Term Triple_store

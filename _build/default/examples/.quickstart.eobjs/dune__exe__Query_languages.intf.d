examples/query_languages.mli:

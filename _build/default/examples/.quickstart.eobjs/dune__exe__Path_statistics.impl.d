examples/path_statistics.ml: Approx_count Array Count Enumerate Gqkg_automata Gqkg_core Gqkg_graph Gqkg_util Gqkg_workload Hashtbl List Path Printf Property_graph Splitmix Stats Table Uniform_gen

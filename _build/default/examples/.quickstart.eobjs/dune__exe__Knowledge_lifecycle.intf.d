examples/knowledge_lifecycle.mli:

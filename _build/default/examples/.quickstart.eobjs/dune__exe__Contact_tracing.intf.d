examples/contact_tracing.mli:

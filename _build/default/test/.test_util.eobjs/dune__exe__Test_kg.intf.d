test/test_kg.mli:

test/test_automata.ml: Alcotest Array Atom Const Gqkg_automata Gqkg_core Gqkg_graph Gqkg_util Gqkg_workload List Nfa QCheck2 QCheck_alcotest Regex Regex_parser String

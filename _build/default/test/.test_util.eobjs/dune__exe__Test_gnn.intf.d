test/test_gnn.mli:

test/test_util.ml: Alcotest Alias Array Dynarray Float Fun Gqkg_util Heap Interner List QCheck2 QCheck_alcotest Splitmix Stats String Table Union_find Vec

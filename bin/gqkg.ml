(* gqkg: command-line front end to the library.

   Subcommands:
     generate    write a synthetic graph to a file
     query       evaluate a regular path query (endpoint pairs)
     count       exact and approximate answer counting (Section 4.1)
     sample      uniform generation of matching paths
     enumerate   poly-delay enumeration of matching paths
     centrality  betweenness / bc_r / pagerank rankings
     contain     decide containment / equivalence of two path queries
     save        freeze a graph to a binary snapshot (.gqs), optionally renumbered
     mutate      apply a mutation script via the delta overlay, committing epochs
     serve       multi-tenant query daemon: newline-delimited JSON over TCP
     stats       structural statistics of a graph
     wl          Weisfeiler-Lehman color refinement summary

   Exit-code contract (shared by lint and contain; the table lives in
   DESIGN.md section 5g and is asserted in CI): 0 = clean / holds /
   unknown, 1 = findings (lint: statically empty; contain: refuted),
   2 = usage or parse error (GQ04x), 3 = budget tripped (GQ03x),
   answer printed is a sound partial.

   Anywhere a command loads a graph, a binary snapshot written by
   [gqkg save] is accepted transparently (sniffed by magic / the .gqs
   suffix) — loading is O(read) instead of parse + freeze. *)

open Cmdliner
open Gqkg_graph
open Gqkg_core

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_flag =
  let doc = "Enable debug logging." in
  Term.(const setup_logs $ Arg.(value & flag & info [ "v"; "verbose" ] ~doc))

let graph_arg =
  let doc = "Graph file in the gqkg property-graph format." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let regex_arg position =
  let doc = "Regular path query, e.g. '?person/rides/?bus'." in
  Arg.(required & pos position (some string) None & info [] ~docv:"REGEX" ~doc)

(* Structured user-input failure: one GQ04x JSON diagnostic on stderr
   and exit code 2 — never a raw OCaml backtrace.  Codes: GQ040
   malformed graph file, GQ041 file-system error, GQ042 regex parse
   error, GQ043 CRPQ parse error, GQ044 SPARQL parse error, GQ045
   N-Triples parse error, GQ046 bad argument, GQ047 corrupt binary
   snapshot, GQ048 malformed or invalid mutation journal/script. *)
let fail_user ~code ~subterm ~message =
  prerr_endline
    (Gqkg_analysis.Diagnostic.to_json
       (Gqkg_analysis.Diagnostic.user_error ~code ~subterm ~message));
  exit 2

(* A path names a binary snapshot if it carries the .gqs suffix or
   starts with the snapshot magic — the suffix check first, so a
   corrupt .gqs reports GQ047 rather than a text-parse GQ040. *)
let names_snapshot path =
  Filename.check_suffix path ".gqs" || Snapshot_io.is_snapshot_file path

(* A path names a mutation journal (replayed on load) by suffix. *)
let names_journal path =
  Filename.check_suffix path ".log" || Filename.check_suffix path ".journal"

(* Journal/mutation-script errors surface as GQ048 with file:line
   context — including the torn-final-line case of a crashed append. *)
let fail_journal ~path = function
  | Journal.Replay_error { file; line; message } ->
      fail_user ~code:"GQ048" ~subterm:path
        ~message:
          (Graph_io.error_to_string
             ~file:(Some (Option.value file ~default:path))
             ~line ~message)
  | Sys_error message -> fail_user ~code:"GQ041" ~subterm:path ~message
  | e -> raise e

let load_journal ?tolerate_partial path =
  match Journal.load ?tolerate_partial path with
  | g -> g
  | exception e -> fail_journal ~path e

let load_property path =
  if names_snapshot path then
    fail_user ~code:"GQ046" ~subterm:path
      ~message:"this command needs a text property-graph file, not a binary snapshot (.gqs)"
  else if names_journal path then load_journal path
  else
    match Graph_io.load_property_graph path with
    | pg -> pg
    | exception Graph_io.Parse_error { file; line; message } ->
        fail_user ~code:"GQ040" ~subterm:path ~message:(Graph_io.error_to_string ~file ~line ~message)
    | exception Sys_error message -> fail_user ~code:"GQ041" ~subterm:path ~message

let load_snapshot path =
  match Snapshot_io.load path with
  | s -> s
  | exception Snapshot_io.Corrupt message -> fail_user ~code:"GQ047" ~subterm:path ~message
  | exception Sys_error message -> fail_user ~code:"GQ041" ~subterm:path ~message

(* Every query-side command loads through here, so all of them accept
   the text format (parse + freeze), a binary snapshot (bounds-checked
   decode), or an append-only journal (replay + freeze). *)
let load_instance path =
  if names_snapshot path then load_snapshot path
  else Snapshot.of_property (load_property path)

let load_store path =
  match Gqkg_kg.Ntriples.load path with
  | store -> store
  | exception Gqkg_kg.Ntriples.Parse_error { file; line; message } ->
      fail_user ~code:"GQ045" ~subterm:path ~message:(Graph_io.error_to_string ~file ~line ~message)
  | exception Sys_error message -> fail_user ~code:"GQ041" ~subterm:path ~message

let parse_regex text =
  match Gqkg_automata.Regex_parser.parse text with
  | r -> r
  | exception Gqkg_automata.Regex_parser.Error { position; message } ->
      fail_user ~code:"GQ042" ~subterm:text
        ~message:(Printf.sprintf "parse error at position %d: %s" position message)

(* --timeout-ms / --max-states: the resource governor's CLI face.  The
   budget itself is created inside each command right before evaluation
   so the wall-clock deadline excludes graph loading. *)
let budget_args =
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget for evaluation; on exhaustion a sound partial result is returned.")
  in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Bound on interned product states; on exhaustion a sound partial result is returned.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Bound on traversal/join steps (e.g. variable bindings in the multiway join); on \
             exhaustion a sound partial result is returned.")
  in
  Term.(
    const (fun timeout_ms max_states max_steps -> (timeout_ms, max_states, max_steps))
    $ timeout_ms $ max_states $ max_steps)

let make_budget (timeout_ms, max_states, max_steps) =
  Gqkg_util.Budget.create ?timeout_ms ?max_states ?max_steps ()

(* Exit code 3 with a GQ03x JSON diagnostic on stderr when the budget
   tripped and the printed answer is therefore a sound partial result. *)
let report_budget budget =
  match Gqkg_analysis.Diagnostic.of_budget budget with
  | None -> ()
  | Some d ->
      prerr_endline (Gqkg_analysis.Diagnostic.to_json d);
      exit 3

(* Ctrl-C trips the active budget instead of killing the process
   mid-write: the kernel unwinds cooperatively at its next budget
   check, the sound partial answer is printed, and [report_budget]
   exits 3 with a GQ034 diagnostic — the same degradation ladder a
   timeout takes. *)
let cancel_on_sigint budget f =
  match
    Sys.signal Sys.sigint
      (Sys.Signal_handle (fun _ -> Gqkg_util.Budget.cancel budget))
  with
  | exception Invalid_argument _ -> f () (* platform without signals *)
  | previous -> Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint previous) f

(* ---- generate ---- *)

let generate_cmd =
  let run () kind seed scale output =
    let rng = Gqkg_util.Splitmix.create seed in
    let pg =
      match kind with
      | "contact" -> Gqkg_workload.Contact_network.scaled rng ~scale
      | "er" ->
          Property_graph.of_labeled
            (Gqkg_workload.Gen_graph.erdos_renyi_gnm rng ~nodes:(50 * scale) ~edges:(150 * scale))
      | "ba" ->
          Property_graph.of_labeled
            (Gqkg_workload.Gen_graph.barabasi_albert rng ~nodes:(50 * scale) ~attach:2)
      | "figure2" -> Figure2.property ()
      | other ->
          fail_user ~code:"GQ046" ~subterm:other
            ~message:"unknown graph kind (try contact, er, ba, figure2)"
    in
    Graph_io.save_property_graph output pg;
    Printf.printf "wrote %s: %d nodes, %d edges\n" output (Property_graph.num_nodes pg)
      (Property_graph.num_edges pg)
  in
  let kind =
    Arg.(value & opt string "contact" & info [ "kind" ] ~docv:"KIND" ~doc:"contact | er | ba | figure2")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Size multiplier.") in
  let output = Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTPUT" ~doc:"Output file.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic graph")
    Term.(const run $ verbose_flag $ kind $ seed $ scale $ output)

(* ---- query ---- *)

(* Resolve a --sources selector: comma-separated node names and/or
   [label:<name>] items (all nodes carrying that label, ascending).
   Duplicates are dropped, first occurrence wins, so the output order
   follows the selector. *)
let resolve_sources inst spec =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      out := v :: !out
    end
  in
  List.iter
    (fun item ->
      match String.index_opt item ':' with
      | Some i when String.sub item 0 i = "label" ->
          let label = String.sub item (i + 1) (String.length item - i - 1) in
          let atom = Gqkg_graph.Atom.label label in
          let matched = ref 0 in
          for v = 0 to inst.Snapshot.num_nodes - 1 do
            if inst.Snapshot.node_atom v atom then begin
              incr matched;
              add v
            end
          done;
          if !matched = 0 then Logs.warn (fun m -> m "label %S matches no node" label)
      | _ ->
          let rec find v =
            if v >= inst.Snapshot.num_nodes then
              fail_user ~code:"GQ046" ~subterm:item ~message:"unknown node"
            else if inst.Snapshot.node_name v = item then add v
            else find (v + 1)
          in
          find 0)
    (List.filter (fun s -> s <> "") (String.split_on_char ',' spec));
  Array.of_list (List.rev !out)

let query_cmd =
  let run () path regex max_length sources repeat limits =
    let inst = load_instance path in
    let r = parse_regex regex in
    let budget = make_budget limits in
    cancel_on_sigint budget (fun () ->
    match sources with
    | None ->
        (* Through the Governor, so repeated evaluations of the same
           (or a semantically equivalent) query hit the semantic result
           cache; --repeat N demonstrates and exercises it.  Budgeted
           runs never consult the cache, so each repeat gets a fresh
           budget and really evaluates. *)
        let o = Governor.eval_pairs ~budget ?max_length inst r in
        let pairs = o.Gqkg_util.Budget.value in
        List.iter
          (fun (a, b) ->
            Printf.printf "%s\t%s\n" (inst.Snapshot.node_name a) (inst.Snapshot.node_name b))
          pairs;
        for _ = 2 to repeat do
          ignore (Governor.eval_pairs ~budget:(make_budget limits) ?max_length inst r)
        done;
        if repeat > 1 then begin
          let s = Semcache.stats () in
          Printf.printf "semantic-cache: %d hits / %d lookups (plans: %d hits / %d lookups)\n"
            s.Semcache.result_hits
            (s.Semcache.result_hits + s.Semcache.result_misses)
            s.Semcache.plan_hits
            (s.Semcache.plan_hits + s.Semcache.plan_misses)
        end;
        Logs.info (fun m -> m "%d pairs" (List.length pairs))
    | Some spec ->
        let sources = resolve_sources inst spec in
        let batches0 = Gqkg_core.Frontier.batches_total () in
        let results = Rpq.reachable_many ~budget inst ?max_length r ~sources in
        let total = ref 0 in
        Array.iteri
          (fun i targets ->
            let a = inst.Snapshot.node_name sources.(i) in
            List.iter
              (fun b ->
                incr total;
                Printf.printf "%s\t%s\n" a (inst.Snapshot.node_name b))
              targets)
          results;
        Logs.info (fun m ->
            m "%d pairs from %d sources (%d frontier batches)" !total (Array.length sources)
              (Gqkg_core.Frontier.batches_total () - batches0)));
    report_budget budget
  in
  let max_length =
    Arg.(value & opt (some int) None & info [ "max-length" ] ~doc:"Bound on path length.")
  in
  let sources =
    Arg.(
      value
      & opt (some string) None
      & info [ "sources" ] ~docv:"A,B,label:L"
          ~doc:
            "Evaluate from these sources only (comma-separated node names and/or label:<name> \
             selectors), batched through the multi-source frontier engine.")
  in
  let repeat =
    Arg.(
      value
      & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Evaluate the query N times and report semantic-cache counters (pairs are printed \
             once).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Endpoint pairs of matching paths")
    Term.(
      const run $ verbose_flag $ graph_arg $ regex_arg 1 $ max_length $ sources $ repeat
      $ budget_args)

(* ---- count ---- *)

let count_cmd =
  let run () path regex length epsilon from_node to_node =
    let inst = load_instance path in
    let r = parse_regex regex in
    let resolve name =
      let rec find v =
        if v >= inst.Snapshot.num_nodes then
          fail_user ~code:"GQ046" ~subterm:name ~message:"unknown node"
        else if inst.Snapshot.node_name v = name then v
        else find (v + 1)
      in
      find 0
    in
    (match (from_node, to_node) with
    | Some a, Some b ->
        Printf.printf "exact (%s -> %s): %.0f\n" a b
          (Count.count_between inst r ~source:(resolve a) ~target:(resolve b) ~length)
    | Some a, None ->
        let product = Product.create inst r in
        let table = Count.build product ~depth:length in
        Printf.printf "exact (from %s): %.0f\n" a (Count.count_from table ~source:(resolve a) ~length)
    | None, Some _ -> fail_user ~code:"GQ046" ~subterm:"--to" ~message:"--to requires --from"
    | None, None -> Printf.printf "exact: %.0f\n" (Count.count inst r ~length));
    match epsilon with
    | Some epsilon ->
        Printf.printf "fpras(eps=%.2g): %.1f\n" epsilon (Approx_count.count inst r ~length ~epsilon)
    | None -> ()
  in
  let length = Arg.(value & opt int 3 & info [ "k"; "length" ] ~doc:"Path length.") in
  let epsilon =
    Arg.(value & opt (some float) None & info [ "epsilon" ] ~doc:"Also run the FPRAS at this error.")
  in
  let from_node = Arg.(value & opt (some string) None & info [ "from" ] ~doc:"Restrict to a start node.") in
  let to_node = Arg.(value & opt (some string) None & info [ "to" ] ~doc:"Restrict to an end node (needs --from).") in
  Cmd.v
    (Cmd.info "count" ~doc:"Count matching paths of a given length")
    Term.(const run $ verbose_flag $ graph_arg $ regex_arg 1 $ length $ epsilon $ from_node $ to_node)

(* ---- sample ---- *)

let sample_cmd =
  let run () path regex length n seed =
    let inst = load_instance path in
    let r = parse_regex regex in
    let gen = Uniform_gen.create inst r ~length in
    if Uniform_gen.total_count gen = 0.0 then begin
      Printf.eprintf "no matching paths of length %d\n" length;
      exit 1
    end;
    let rng = Gqkg_util.Splitmix.create seed in
    List.iter (fun p -> print_endline (Path.to_string inst p)) (Uniform_gen.samples gen rng n)
  in
  let length = Arg.(value & opt int 3 & info [ "k"; "length" ] ~doc:"Path length.") in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of samples.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "sample" ~doc:"Uniformly sample matching paths")
    Term.(const run $ verbose_flag $ graph_arg $ regex_arg 1 $ length $ n $ seed)

(* ---- enumerate ---- *)

let enumerate_cmd =
  let run () path regex length limit =
    let inst = load_instance path in
    let r = parse_regex regex in
    let e = Enumerate.create inst r ~length in
    let rec loop remaining =
      if remaining <> 0 then begin
        match Enumerate.next e with
        | Some p ->
            print_endline (Path.to_string inst p);
            loop (remaining - 1)
        | None -> ()
      end
    in
    loop limit;
    Logs.info (fun m -> m "emitted %d, max delay %d" (Enumerate.emitted e) (Enumerate.max_delay e))
  in
  let length = Arg.(value & opt int 3 & info [ "k"; "length" ] ~doc:"Path length.") in
  let limit = Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Stop after this many paths (-1: all).") in
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Enumerate matching paths with bounded delay")
    Term.(const run $ verbose_flag $ graph_arg $ regex_arg 1 $ length $ limit)

(* ---- centrality ---- *)

let centrality_cmd =
  let run () path measure regex top =
    let inst = load_instance path in
    let scores =
      match measure with
      | "betweenness" -> Gqkg_analytics.Centrality.betweenness ~directed:false inst
      | "pagerank" -> Gqkg_analytics.Centrality.pagerank inst
      | "closeness" -> Gqkg_analytics.Centrality.closeness inst
      | "bcr" -> begin
          match regex with
          | Some regex -> Gqkg_analytics.Regex_centrality.exact inst (parse_regex regex)
          | None -> fail_user ~code:"GQ046" ~subterm:"bcr" ~message:"bcr needs --regex"
        end
      | other ->
          fail_user ~code:"GQ046" ~subterm:other
            ~message:"unknown measure (try betweenness, bcr, pagerank, closeness)"
    in
    let order = Gqkg_analytics.Centrality.ranking scores in
    Array.iteri
      (fun rank v ->
        if rank < top then Printf.printf "%2d. %-12s %.4f\n" (rank + 1) (inst.Snapshot.node_name v) scores.(v))
      order
  in
  let measure =
    Arg.(value & opt string "betweenness" & info [ "measure" ] ~doc:"betweenness | bcr | pagerank | closeness")
  in
  let regex = Arg.(value & opt (some string) None & info [ "regex" ] ~doc:"Pattern for bcr.") in
  let top = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Show this many nodes.") in
  Cmd.v
    (Cmd.info "centrality" ~doc:"Node centrality rankings")
    Term.(const run $ verbose_flag $ graph_arg $ measure $ regex $ top)

(* ---- match (CRPQ) ---- *)

let match_cmd =
  let run () path query max_length show_plan limits =
    let inst = load_instance path in
    let q =
      match Gqkg_logic.Crpq_parser.parse query with
      | q -> q
      | exception Gqkg_logic.Crpq_parser.Error { position; message } ->
          fail_user ~code:"GQ043" ~subterm:query
            ~message:(Printf.sprintf "parse error at position %d: %s" position message)
    in
    if show_plan then print_string (Gqkg_logic.Crpq.explain ?max_length inst q)
    else begin
      let budget = make_budget limits in
      cancel_on_sigint budget (fun () ->
          List.iter
            (fun row ->
              print_endline
                (String.concat "\t" (List.map (fun v -> inst.Snapshot.node_name v) row)))
            (Gqkg_logic.Crpq.answers ~budget ?max_length inst q));
      report_budget budget
    end
  in
  let query =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"e.g. 'SELECT x WHERE (x:person)-[rides]->(y:bus)'")
  in
  let max_length =
    Arg.(value & opt (some int) None & info [ "max-length" ] ~doc:"Bound on path length per atom.")
  in
  let show_plan = Arg.(value & flag & info [ "plan" ] ~doc:"Show the evaluation plan instead.") in
  Cmd.v
    (Cmd.info "match" ~doc:"Evaluate a conjunctive regular path query")
    Term.(const run $ verbose_flag $ graph_arg $ query $ max_length $ show_plan $ budget_args)

(* ---- convert ---- *)

let convert_cmd =
  let run () input output =
    let ends_with suffix s =
      let n = String.length s and m = String.length suffix in
      n >= m && String.sub s (n - m) m = suffix
    in
    match (ends_with ".pg" input, ends_with ".nt" output, ends_with ".nt" input, ends_with ".pg" output) with
    | true, true, _, _ ->
        let pg = load_property input in
        Gqkg_kg.Ntriples.save output (Gqkg_kg.Pg_rdf.of_property_graph pg);
        Printf.printf "wrote %s\n" output
    | _, _, true, true ->
        let store = load_store input in
        let pg = Gqkg_kg.Pg_rdf.to_property_graph store in
        Graph_io.save_property_graph output pg;
        Printf.printf "wrote %s: %d nodes, %d edges\n" output (Property_graph.num_nodes pg)
          (Property_graph.num_edges pg)
    | _ ->
        fail_user ~code:"GQ046" ~subterm:(input ^ " -> " ^ output)
          ~message:"supported conversions: .pg -> .nt and .nt -> .pg"
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT" ~doc:"Input file.") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT" ~doc:"Output file.") in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert between property-graph and N-Triples formats")
    Term.(const run $ verbose_flag $ input $ output)

(* ---- materialize (RDFS) ---- *)

let materialize_cmd =
  let run () input output =
    let store = load_store input in
    let before = Gqkg_kg.Triple_store.size store in
    let added = Gqkg_kg.Rdfs.materialize store in
    Gqkg_kg.Ntriples.save output store;
    Printf.printf "%d triples + %d inferred -> %s\n" before added output
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT" ~doc:"N-Triples input.") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT" ~doc:"N-Triples output.") in
  Cmd.v
    (Cmd.info "materialize" ~doc:"Forward-chain RDFS entailments to fixpoint")
    Term.(const run $ verbose_flag $ input $ output)

(* ---- sparql ---- *)

let sparql_cmd =
  let run () path query =
    let store = load_store path in
    match Gqkg_kg.Sparql.run store query with
    | rows ->
        List.iter
          (fun row ->
            print_endline (String.concat "\t" (List.map Gqkg_kg.Term.to_string row)))
          rows
    | exception Gqkg_kg.Sparql.Error { position; message } ->
        fail_user ~code:"GQ044" ~subterm:query
          ~message:(Printf.sprintf "parse error at position %d: %s" position message)
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRIPLES" ~doc:"N-Triples file.")
  in
  let query =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"e.g. 'SELECT ?x WHERE { ?x a <urn:t/Person> }'")
  in
  Cmd.v
    (Cmd.info "sparql" ~doc:"Evaluate a SPARQL-lite query over an N-Triples file")
    Term.(const run $ verbose_flag $ path $ query)

(* ---- explain ---- *)

(* A SELECT-shaped input is a CRPQ: explain shows the multiway-join plan
   (chosen variable order + per-atom estimates) instead of the regex
   compilation pipeline. *)
let explain_crpq query graph =
  let q =
    match Gqkg_logic.Crpq_parser.parse query with
    | q -> q
    | exception Gqkg_logic.Crpq_parser.Error { position; message } ->
        fail_user ~code:"GQ043" ~subterm:query
          ~message:(Printf.sprintf "parse error at position %d: %s" position message)
  in
  match graph with
  | None ->
      fail_user ~code:"GQ046" ~subterm:query
        ~message:"explaining a conjunctive query needs --graph (estimates come from the snapshot)"
  | Some path ->
      let inst = load_instance path in
      print_string (Gqkg_logic.Crpq.explain inst q)

let explain_cmd =
  let run () regex graph limits =
    let is_select =
      String.length regex >= 6 && String.lowercase_ascii (String.sub regex 0 6) = "select"
    in
    if is_select then explain_crpq regex graph
    else begin
    let r = parse_regex regex in
    let budget = make_budget limits in
    Printf.printf "expression : %s\n" (Gqkg_automata.Regex.to_string ~top:true r);
    let simplified = Gqkg_automata.Regex.simplify r in
    if not (Gqkg_automata.Regex.equal simplified r) then
      Printf.printf "simplified : %s\n" (Gqkg_automata.Regex.to_string ~top:true simplified);
    Printf.printf "size       : %d (simplified: %d)\n" (Gqkg_automata.Regex.size r)
      (Gqkg_automata.Regex.size simplified);
    Printf.printf "path length: min %d, max %s\n"
      (Gqkg_automata.Regex.min_path_length r)
      (match Gqkg_automata.Regex.max_path_length r with
      | Some m -> string_of_int m
      | None -> "unbounded");
    let nfa = Gqkg_automata.Nfa.of_regex simplified in
    Printf.printf "\n%s" (Gqkg_automata.Nfa.to_string nfa);
    match graph with
    | None -> ()
    | Some path -> (
        let inst = load_instance path in
        Printf.printf "\nsnapshot (epoch %d): %s" inst.Snapshot.epoch (Snapshot.describe inst);
        let report = Gqkg_analysis.Analyze.plan inst simplified in
        (match report.Gqkg_analysis.Analyze.nfa with
        | None -> Printf.printf "\nanalysis: statically empty on %s\n" path
        | Some trimmed ->
            Printf.printf "\nanalysis: %d -> %d states after trimming; seed cost fwd %.0f / bwd %.0f\n"
              report.Gqkg_analysis.Analyze.states_before
              report.Gqkg_analysis.Analyze.states_after
              report.Gqkg_analysis.Analyze.fwd_cost report.Gqkg_analysis.Analyze.bwd_cost;
            ignore trimmed);
        List.iter
          (fun d -> print_endline (Gqkg_analysis.Diagnostic.to_string d))
          report.Gqkg_analysis.Analyze.diagnostics;
        let plan = Planner.prepare_explained ~budget inst simplified in
        (match plan.Planner.canon with
        | Some c ->
            Printf.printf "canonical: %d -> %d states, hash %s (%s%s)\n"
              report.Gqkg_analysis.Analyze.states_after c.Gqkg_analysis.Decide.states
              (Gqkg_analysis.Decide.hash_hex c.Gqkg_analysis.Decide.hash)
              (if plan.Planner.minimized then "evaluating minimized automaton"
               else "already minimal, kept as-is")
              (if plan.Planner.plan_cache_hit then "; plan cache hit" else "")
        | None -> ());
        (match plan.Planner.prep with
        | Planner.Empty ->
            Printf.printf "on %s: 0 product states materialized, 0 answer pairs\n" path
        | Planner.Ready product ->
            ignore (Product.levels product ~depth:8);
            let batches0 = Gqkg_core.Frontier.batches_total () in
            let td0 = Gqkg_core.Frontier.top_down_levels_total () in
            let bu0 = Gqkg_core.Frontier.bottom_up_levels_total () in
            let pairs = Rpq.eval_pairs ~budget inst ~max_length:8 simplified in
            Printf.printf
              "on %s: %d nodes x %d NFA states -> %d product states materialized, %d answer pairs (paths up to 8)\n"
              path inst.Snapshot.num_nodes
              (Gqkg_automata.Nfa.num_states nfa)
              (Product.num_states product) (List.length pairs);
            let batches = Gqkg_core.Frontier.batches_total () - batches0 in
            let td = Gqkg_core.Frontier.top_down_levels_total () - td0 in
            let bu = Gqkg_core.Frontier.bottom_up_levels_total () - bu0 in
            if batches > 0 then
              Printf.printf
                "frontier: %d batched pass%s (up to %d sources each); %d level%s top-down, %d bottom-up\n"
                batches
                (if batches = 1 then "" else "es")
                Gqkg_core.Frontier.word_bits td
                (if td = 1 then "" else "s")
                bu
            else Printf.printf "frontier: not used (statically answered)\n");
        Printf.printf "budget: %s\n" (Gqkg_util.Budget.describe budget);
        report_budget budget)
    end
  in
  let regex =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REGEX"
          ~doc:"Path expression, or a SELECT ... WHERE conjunctive query (join plan).")
  in
  let graph =
    Arg.(value & opt (some file) None & info [ "graph" ] ~doc:"Also evaluate over this graph file.")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the compilation pipeline of a path expression")
    Term.(const run $ verbose_flag $ regex $ graph $ budget_args)

(* ---- lint ---- *)

let lint_cmd =
  let run () path regex model json limits =
    let r = parse_regex regex in
    (* Lint is static — no product is built — so only the wall-clock
       budget bites, checked around the graph-sized phases (load, schema
       extraction).  A tripped budget marks the report partial. *)
    let budget = make_budget limits in
    let pg = load_property path in
    Gqkg_util.Budget.charge_steps budget (Property_graph.num_nodes pg + Property_graph.num_edges pg);
    ignore (Gqkg_util.Budget.check budget);
    let schema =
      match model with
      | "property" -> Gqkg_analysis.Schema.of_property pg
      | "labeled" -> Gqkg_analysis.Schema.of_labeled (Property_graph.to_labeled pg)
      | "vector" -> Gqkg_analysis.Schema.of_vector (fst (Vector_graph.of_property pg))
      | "multigraph" -> Gqkg_analysis.Schema.of_multigraph (Property_graph.base pg)
      | other ->
          fail_user ~code:"GQ046" ~subterm:other
            ~message:"unknown model (try property, labeled, vector, multigraph)"
    in
    ignore (Gqkg_util.Budget.check budget);
    let report = Gqkg_analysis.Analyze.run ~schema r in
    (* The GQ05x redundancy pass (subsumed branches, dead disjuncts,
       absorbed closures) rides on the same budget: once it trips, the
       remaining containment checks answer Unknown and report nothing. *)
    let redundancy = Gqkg_analysis.Decide.lint ~schema ~budget r in
    let diagnostics =
      report.Gqkg_analysis.Analyze.diagnostics @ redundancy
      @ (match Gqkg_analysis.Diagnostic.of_budget budget with Some d -> [ d ] | None -> [])
    in
    let verdict =
      if Gqkg_analysis.Analyze.is_empty report then "empty" else "possibly-nonempty"
    in
    if json then begin
      let diags = String.concat "," (List.map Gqkg_analysis.Diagnostic.to_json diagnostics) in
      Printf.printf
        "{\"verdict\":\"%s\",\"expression\":\"%s\",\"states_before\":%d,\"states_after\":%d,\
         \"fwd_cost\":%g,\"bwd_cost\":%g,\"diagnostics\":[%s]}\n"
        verdict
        (Gqkg_analysis.Diagnostic.json_escape
           (Gqkg_automata.Regex.to_string ~top:true report.Gqkg_analysis.Analyze.regex))
        report.Gqkg_analysis.Analyze.states_before report.Gqkg_analysis.Analyze.states_after
        report.Gqkg_analysis.Analyze.fwd_cost report.Gqkg_analysis.Analyze.bwd_cost diags
    end
    else begin
      Printf.printf "verdict    : %s\n" verdict;
      Printf.printf "expression : %s\n"
        (Gqkg_automata.Regex.to_string ~top:true report.Gqkg_analysis.Analyze.regex);
      if not (Gqkg_analysis.Analyze.is_empty report) then begin
        Printf.printf "automaton  : %d states (trimmed from %d)\n"
          report.Gqkg_analysis.Analyze.states_after report.Gqkg_analysis.Analyze.states_before;
        Printf.printf "seed cost  : forward %.0f, backward %.0f\n"
          report.Gqkg_analysis.Analyze.fwd_cost report.Gqkg_analysis.Analyze.bwd_cost
      end;
      List.iter (fun d -> print_endline (Gqkg_analysis.Diagnostic.to_string d)) diagnostics;
      Logs.info (fun m -> m "schema:@.%s" (Gqkg_analysis.Schema.to_string schema))
    end;
    report_budget budget;
    if Gqkg_analysis.Analyze.is_empty report then exit 1
  in
  let model =
    Arg.(
      value
      & opt string "property"
      & info [ "model" ] ~docv:"MODEL" ~doc:"property | labeled | vector | multigraph")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.") in
  Cmd.v
    (Cmd.info "lint" ~doc:"Statically analyze a path query against a graph's vocabulary")
    Term.(const run $ verbose_flag $ graph_arg $ regex_arg 1 $ model $ json $ budget_args)

(* ---- contain ---- *)

let contain_cmd =
  let run () r1_text r2_text graph json limits =
    let module D = Gqkg_analysis.Decide in
    let r1 = parse_regex r1_text and r2 = parse_regex r2_text in
    (* With --graph, atoms are interpreted against that graph's schema
       exactly as lint's GQ0xx pass would — an out-of-vocabulary label
       has the empty language there, never a spurious refutation. *)
    let schema =
      Option.map (fun p -> Gqkg_analysis.Schema.of_snapshot (load_instance p)) graph
    in
    let budget = make_budget limits in
    let fwd, witness = D.contains_witness ?schema ~budget r1 r2 in
    let bwd = D.contains ?schema ~budget r2 r1 in
    let name = function D.True -> "holds" | D.False -> "refuted" | D.Unknown _ -> "unknown" in
    let reason = function D.Unknown why -> Some why | D.True | D.False -> None in
    let equivalent =
      match (fwd, bwd) with
      | D.True, D.True -> "yes"
      | D.False, _ | _, D.False -> "no"
      | _ -> "unknown"
    in
    let canon r = D.canonicalize ?schema ~budget r in
    let c1 = canon r1 and c2 = canon r2 in
    if json then begin
      let dir v =
        Printf.sprintf "{\"verdict\":%S%s}" (name v)
          (match reason v with
          | Some why -> Printf.sprintf ",\"reason\":%S" why
          | None -> "")
      in
      let canon_json = function
        | Some c ->
            Printf.sprintf "{\"states\":%d,\"hash\":\"%s\"}" c.D.states (D.hash_hex c.D.hash)
        | None -> "null"
      in
      Printf.printf
        "{\"r1\":\"%s\",\"r2\":\"%s\",\"r1_in_r2\":%s,\"r2_in_r1\":%s,\"equivalent\":%S,\
         \"witness\":%s,\"canonical\":{\"r1\":%s,\"r2\":%s}}\n"
        (Gqkg_analysis.Diagnostic.json_escape (Gqkg_automata.Regex.to_string ~top:true r1))
        (Gqkg_analysis.Diagnostic.json_escape (Gqkg_automata.Regex.to_string ~top:true r2))
        (dir fwd) (dir bwd) equivalent
        (match witness with
        | Some w -> Printf.sprintf "%S" (D.witness_to_string w)
        | None -> "null")
        (canon_json c1) (canon_json c2)
    end
    else begin
      Printf.printf "r1         : %s\n" (Gqkg_automata.Regex.to_string ~top:true r1);
      Printf.printf "r2         : %s\n" (Gqkg_automata.Regex.to_string ~top:true r2);
      let dir label v =
        Printf.printf "%s : %s%s\n" label (name v)
          (match reason v with Some why -> " (" ^ why ^ ")" | None -> "")
      in
      dir "r1 <= r2  " fwd;
      dir "r2 <= r1  " bwd;
      Printf.printf "equivalent : %s\n" equivalent;
      (match witness with
      | Some w -> Printf.printf "witness    : %s\n" (D.witness_to_string w)
      | None -> ());
      let show_canon label = function
        | Some c ->
            Printf.printf "canonical  : %s %d states, hash %s\n" label c.D.states
              (D.hash_hex c.D.hash)
        | None -> ()
      in
      show_canon "r1" c1;
      show_canon "r2" c2
    end;
    (* Same contract as lint: 3 partial beats 1 findings beats 0. *)
    report_budget budget;
    match fwd with D.False -> exit 1 | D.True | D.Unknown _ -> ()
  in
  let r1 = Arg.(required & pos 0 (some string) None & info [] ~docv:"R1" ~doc:"Candidate subquery.") in
  let r2 = Arg.(required & pos 1 (some string) None & info [] ~docv:"R2" ~doc:"Candidate superquery.") in
  let graph =
    Arg.(
      value
      & opt (some file) None
      & info [ "graph" ]
          ~doc:"Interpret label atoms against this graph's schema vocabulary (as lint does).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.") in
  Cmd.v
    (Cmd.info "contain"
       ~doc:"Decide whether every path matching R1 also matches R2 (exit 1 when refuted)")
    Term.(const run $ verbose_flag $ r1 $ r2 $ graph $ json $ budget_args)

(* ---- save (binary snapshot) ---- *)

let save_cmd =
  let run () input output order names verify =
    let order =
      match Renumber.order_of_string order with
      | Some o -> o
      | None ->
          fail_user ~code:"GQ046" ~subterm:order
            ~message:"unknown order (try degree, bfs, none)"
    in
    let names =
      match names with
      | "auto" -> `Auto
      | "keep" -> `Keep
      | "drop" -> `Drop
      | other ->
          fail_user ~code:"GQ046" ~subterm:other
            ~message:"unknown names policy (try auto, keep, drop)"
    in
    let inst = load_instance input in
    let t0 = Unix.gettimeofday () in
    let renumbered, perm = Renumber.renumber order inst in
    let perm = if Renumber.is_identity perm then None else Some perm in
    let report = Snapshot_io.save ~names ?perm ~path:output renumbered in
    let save_s = Unix.gettimeofday () -. t0 in
    Printf.printf
      "wrote %s: %d nodes, %d edges, %d sections, %d bytes (%.1f B/edge)\n"
      output inst.Snapshot.num_nodes inst.Snapshot.num_edges
      report.Snapshot_io.sections report.Snapshot_io.file_bytes
      report.Snapshot_io.bytes_per_edge;
    Printf.printf "order: %s%s, names: %s, checksum: %016x, %.3fs\n"
      (Renumber.order_to_string order)
      (if report.Snapshot_io.renumbered then " (permutation stored)" else "")
      (if report.Snapshot_io.names_kept then "kept" else "synthetic")
      report.Snapshot_io.checksum save_s;
    if verify then begin
      let t1 = Unix.gettimeofday () in
      let reloaded = load_snapshot output in
      Printf.printf "verify: reloaded %d nodes, %d edges in %.3fs\n"
        reloaded.Snapshot.num_nodes reloaded.Snapshot.num_edges
        (Unix.gettimeofday () -. t1)
    end
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT" ~doc:"Graph to freeze (.pg text or .gqs snapshot).") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT" ~doc:"Snapshot file to write (.gqs).") in
  let order =
    Arg.(value & opt string "degree" & info [ "order" ] ~doc:"Node renumbering: degree | bfs | none.")
  in
  let names =
    Arg.(
      value
      & opt string "auto"
      & info [ "names" ]
          ~doc:"Name tables: auto (drop when synthetic) | keep | drop.")
  in
  let verify = Arg.(value & flag & info [ "verify" ] ~doc:"Reload the file after writing (checksum + bounds check).") in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Freeze a graph to a binary snapshot, optionally renumbered for cache locality")
    Term.(const run $ verbose_flag $ input $ output $ order $ names $ verify)

(* ---- mutate (write path + MVCC snapshot epochs) ---- *)

let mutate_cmd =
  let run () input ops_file journal_out save_out query commit_every tolerate =
    let base =
      try
        if names_snapshot input then Overlay.base_of_snapshot (load_snapshot input)
        else Overlay.base_of_property (load_property input)
      with Invalid_argument message -> fail_user ~code:"GQ046" ~subterm:input ~message
    in
    let mgr = Epochs.create base in
    let epoch0 = (Epochs.snapshot mgr).Snapshot.epoch in
    (* Parse the script keeping file line numbers, so parse and apply
       errors alike point at the offending line (GQ048). *)
    let ops =
      let text =
        match
          let ic = open_in_bin ops_file in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | text -> text
        | exception Sys_error message -> fail_user ~code:"GQ041" ~subterm:ops_file ~message
      in
      let lines = String.split_on_char '\n' text in
      let total = List.length lines in
      let ops = ref [] in
      List.iteri
        (fun i line ->
          match Journal.op_of_line ~file:ops_file ~line:(i + 1) line with
          | Some op -> ops := (i + 1, op) :: !ops
          | None -> ()
          | exception (Journal.Replay_error _ as e) ->
              if not (tolerate && i = total - 1) then fail_journal ~path:ops_file e)
        lines;
      List.rev !ops
    in
    (* Mutations accumulate in a delta overlay; each commit re-freezes
       incrementally through the Governor (epoch swing + semantic-cache
       retention accounting). *)
    let overlay = ref (Overlay.create (Epochs.base mgr)) in
    let commits = ref 0 and reused = ref 0 and rebuilt = ref 0 in
    let flush_commit () =
      if Overlay.size !overlay > 0 then begin
        let _, reuse = Governor.commit mgr !overlay in
        incr commits;
        reused := !reused + List.length reuse.Overlay.reused;
        rebuilt := !rebuilt + List.length reuse.Overlay.rebuilt;
        overlay := Overlay.create (Epochs.base mgr)
      end
    in
    (* Ctrl-C must not kill the process mid-commit: the handler only
       raises a flag, the apply loop stops at the next op boundary, the
       pending overlay is flushed as a final (consistent) commit, and
       any --journal/--save outputs are still written.  Exit is then 3
       with a GQ034 diagnostic naming how far the script got. *)
    let interrupted = ref false in
    let previous_sigint =
      try Some (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> interrupted := true)))
      with Invalid_argument _ -> None
    in
    let applied = ref 0 in
    (try
       List.iteri
         (fun i (line, op) ->
           if !interrupted then raise Exit;
           (try Overlay.apply ~file:ops_file ~line !overlay op
            with Journal.Replay_error _ as e -> fail_journal ~path:ops_file e);
           incr applied;
           match commit_every with
           | Some n when n > 0 && (i + 1) mod n = 0 -> flush_commit ()
           | _ -> ())
         ops
     with Exit -> ());
    flush_commit ();
    (match previous_sigint with
    | Some h -> Sys.set_signal Sys.sigint h
    | None -> ());
    let snap = Epochs.snapshot mgr in
    Printf.printf "applied %d ops in %d commit(s): %d nodes, %d edges (epoch %d -> %d)\n"
      !applied !commits snap.Snapshot.num_nodes snap.Snapshot.num_edges epoch0
      snap.Snapshot.epoch;
    if !commits > 0 then
      Printf.printf "columns: %d reused, %d rebuilt across commits (reuse ratio %.2f)\n" !reused
        !rebuilt
        (float_of_int !reused /. float_of_int (max 1 (!reused + !rebuilt)));
    let s = Semcache.stats () in
    Printf.printf "semantic cache: %d commits noted, %d entries invalidated, %d + %d entries live\n"
      s.Semcache.commits s.Semcache.invalidated s.Semcache.plan_entries s.Semcache.result_entries;
    (match journal_out with
    | Some path ->
        let ops = Overlay.history (Epochs.base mgr) in
        let oc = open_out path in
        output_string oc (Journal.ops_to_string ops);
        close_out oc;
        Printf.printf "journal: wrote %s (%d ops, replayable minimal history)\n" path
          (List.length ops)
    | None -> ());
    (match save_out with
    | Some path ->
        let report = Snapshot_io.save ~path snap in
        Printf.printf "snapshot: wrote %s (%d bytes)\n" path report.Snapshot_io.file_bytes
    | None -> ());
    (match query with
    | Some regex ->
        let r = parse_regex regex in
        let o = Governor.eval_pairs ~budget:(Gqkg_util.Budget.create ()) snap r in
        List.iter
          (fun (a, b) ->
            Printf.printf "%s\t%s\n" (snap.Snapshot.node_name a) (snap.Snapshot.node_name b))
          o.Gqkg_util.Budget.value
    | None -> ());
    if !interrupted then begin
      prerr_endline
        (Gqkg_analysis.Diagnostic.to_json
           (Gqkg_analysis.Diagnostic.make ~code:"GQ034"
              ~severity:Gqkg_analysis.Diagnostic.Error ~subterm:ops_file
              ~message:
                (Printf.sprintf
                   "interrupted: applied %d of %d ops; committed epochs and outputs are consistent"
                   !applied (List.length ops))));
      exit 3
    end
  in
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"Input graph: .pg text, .gqs snapshot, or .log/.journal journal.")
  in
  let ops_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "ops" ] ~docv:"FILE"
          ~doc:"Mutation script, one op per line (node/mergenode/edge/mergeedge/nprop/eprop/delnprop/deleprop/delnode/deledge).")
  in
  let journal_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"OUT.log"
          ~doc:"Write the final state as a replayable journal (minimal history).")
  in
  let save_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"OUT.gqs" ~doc:"Also freeze the final state to a binary snapshot.")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "query" ] ~docv:"REGEX"
          ~doc:"After committing, print the endpoint pairs of this path query on the final epoch.")
  in
  let commit_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "commit-every" ] ~docv:"N"
          ~doc:"Commit an epoch every N ops (default: one commit at the end).")
  in
  let tolerate =
    Arg.(
      value
      & flag
      & info [ "tolerate-partial" ]
          ~doc:"Ignore a torn final line in the ops file (crash recovery).")
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:"Apply a mutation script through the delta overlay and commit new snapshot epochs")
    Term.(
      const run $ verbose_flag $ input $ ops_file $ journal_out $ save_out $ query $ commit_every
      $ tolerate)

(* ---- serve (fault-tolerant multi-tenant query daemon) ---- *)

let serve_cmd =
  let run () path port max_clients workers queue_depth per_client default_timeout_ms
      default_max_states idle_timeout_ms fault_trip fault_drop =
    let base =
      try
        if names_snapshot path then Overlay.base_of_snapshot (load_snapshot path)
        else Overlay.base_of_property (load_property path)
      with Invalid_argument message -> fail_user ~code:"GQ046" ~subterm:path ~message
    in
    let mgr = Epochs.create base in
    let config =
      {
        Gqkg_server.Server.default_config with
        max_clients;
        workers;
        queue_depth;
        per_client_depth = per_client;
        default_timeout_ms = Some default_timeout_ms;
        default_max_states;
        idle_timeout_ms;
        fault_trip_after_checks = fault_trip;
        fault_drop_after = fault_drop;
      }
    in
    let server =
      match Gqkg_server.Server.start ~port ~config mgr with
      | s -> s
      | exception Unix.Unix_error (e, _, _) ->
          fail_user ~code:"GQ046" ~subterm:(string_of_int port)
            ~message:(Printf.sprintf "cannot listen on port %d: %s" port (Unix.error_message e))
    in
    let snap = Epochs.snapshot mgr in
    Printf.printf "gqkg serve: listening on 127.0.0.1:%d (epoch %d, %d nodes, %d edges)\n%!"
      (Gqkg_server.Server.port server)
      snap.Snapshot.epoch snap.Snapshot.num_nodes snap.Snapshot.num_edges;
    (* SIGTERM/SIGINT request a graceful drain: stop accepting, finish
       or trip in-flight work, flush every response, then exit 0. *)
    let stop_requested = ref false in
    let request_stop _ = stop_requested := true in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
     with Invalid_argument _ -> ());
    while not !stop_requested do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    prerr_endline "gqkg serve: draining...";
    Gqkg_server.Server.stop server;
    print_endline (Gqkg_server.Jsonx.to_string (Gqkg_server.Server.metrics server))
  in
  let port =
    Arg.(
      value & opt int 7687
      & info [ "port" ] ~docv:"P" ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let max_clients =
    Arg.(
      value & opt int 32
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Concurrent connections; beyond this, new connections get GQ061 and are closed.")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Request-execution threads.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission-queue capacity; beyond this, requests are shed with GQ060.")
  in
  let per_client =
    Arg.(
      value & opt int 8
      & info [ "per-client-depth" ] ~docv:"N"
          ~doc:"One client's share of the queue (fairness bound).")
  in
  let default_timeout_ms =
    Arg.(
      value & opt int 10_000
      & info [ "default-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline when the request carries no timeout_ms field; exhaustion \
             degrades to a sound partial answer.")
  in
  let default_max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "default-max-states" ] ~docv:"N"
          ~doc:"Default per-request bound on interned product states.")
  in
  let idle_timeout_ms =
    Arg.(
      value & opt int 30_000
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:"Close connections silent for this long (GQ064 notice first).")
  in
  let fault_trip =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-trip-after-checks" ] ~docv:"N"
          ~doc:"Fault injector: arm every request budget to trip after N checks (soak testing).")
  in
  let fault_drop =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-drop-after" ] ~docv:"N"
          ~doc:"Fault injector: hard-drop each connection after every N responses (soak testing).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a graph to concurrent clients over newline-delimited JSON with admission \
          control, MVCC epochs and graceful degradation")
    Term.(
      const run $ verbose_flag $ graph_arg $ port $ max_clients $ workers $ queue_depth
      $ per_client $ default_timeout_ms $ default_max_states $ idle_timeout_ms $ fault_trip
      $ fault_drop)

(* ---- stats ---- *)

let stats_cmd =
  let run () path =
    let inst = load_instance path in
    Printf.printf "epoch: %d\n" inst.Snapshot.epoch;
    print_string (Snapshot.describe inst);
    (* The cardinality estimates the multiway-join planner consumes. *)
    print_string (Gqkg_core.Join.Index.describe (Gqkg_core.Join.Index.get inst));
    print_endline (Partition.describe (Partition.build inst));
    Fmt.pr "%a@." Gqkg_analytics.Graph_stats.pp_summary (Gqkg_analytics.Graph_stats.summarize inst);
    let _, scc = Gqkg_analytics.Traversal.strongly_connected_components inst in
    Printf.printf "strongly connected components: %d\n" scc;
    (match Gqkg_analytics.Shortest_paths.diameter_double_sweep ~directed:false inst with
    | Some d -> Printf.printf "diameter (double sweep lower bound): %d\n" d
    | None -> ());
    Printf.printf "average clustering: %.4f\n" (Gqkg_analytics.Clustering.average_clustering inst);
    let members, density = Gqkg_analytics.Densest.charikar inst in
    Printf.printf "densest subgraph (charikar): %d nodes, density %.3f\n" (List.length members) density;
    Printf.printf "degeneracy (max k-core): %d\n" (Gqkg_analytics.Kcore.degeneracy inst);
    let s = Semcache.stats () in
    Printf.printf
      "semantic cache (this process): plans %d hits / %d lookups, results %d hits / %d lookups, \
       %d + %d entries\n"
      s.Semcache.plan_hits
      (s.Semcache.plan_hits + s.Semcache.plan_misses)
      s.Semcache.result_hits
      (s.Semcache.result_hits + s.Semcache.result_misses)
      s.Semcache.plan_entries s.Semcache.result_entries;
    Printf.printf "semantic cache retention: %d epoch commits, %d entries invalidated, %d live\n"
      s.Semcache.commits s.Semcache.invalidated
      (s.Semcache.plan_entries + s.Semcache.result_entries)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Structural statistics") Term.(const run $ verbose_flag $ graph_arg)

(* ---- wl ---- *)

let wl_cmd =
  let run () path =
    let pg = load_property path in
    let inst = Snapshot.of_property pg in
    let coloring =
      Gqkg_gnn.Wl.refine inst ~init:(fun v -> Hashtbl.hash (inst.Snapshot.node_name v = "" (* uniform *)))
    in
    ignore coloring;
    let labeled =
      Gqkg_gnn.Wl.refine inst ~init:(fun v ->
          Const.hash (Property_graph.node_label pg v))
    in
    Printf.printf "WL refinement (label-aware init): %d classes after %d rounds over %d nodes\n"
      labeled.Gqkg_gnn.Wl.num_colors labeled.Gqkg_gnn.Wl.rounds inst.Snapshot.num_nodes;
    let hist = Gqkg_gnn.Wl.color_histogram labeled in
    List.iter (fun (c, n) -> Printf.printf "  class %d: %d nodes\n" c n) hist
  in
  Cmd.v (Cmd.info "wl" ~doc:"Weisfeiler-Lehman refinement summary") Term.(const run $ verbose_flag $ graph_arg)

let known_subcommands =
  [
    "generate"; "query"; "match"; "count"; "sample"; "enumerate"; "centrality"; "contain";
    "convert"; "materialize"; "mutate"; "serve"; "sparql"; "explain"; "lint"; "save"; "stats";
    "wl";
  ]

let () =
  (* Friendlier failure than the parser's default on an unknown
     subcommand: name the offending token, print usage, exit 2.  Valid
     unambiguous prefixes (e.g. "enum") still go through. *)
  (match Array.to_list Sys.argv with
  | _ :: first :: _
    when String.length first > 0
         && first.[0] <> '-'
         && not
              (List.exists
                 (fun c ->
                   String.length first <= String.length c
                   && String.sub c 0 (String.length first) = first)
                 known_subcommands) ->
      Printf.eprintf "gqkg: unknown subcommand %S\nusage: gqkg <%s> ...\n" first
        (String.concat "|" known_subcommands);
      exit 2
  | _ -> ());
  let default = Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ())) in
  let info = Cmd.info "gqkg" ~version:"1.0.0" ~doc:"Graph databases and knowledge graphs toolbox" in
  (* [~catch:false] so file-system errors raised mid-command (unreadable
     input, unwritable output) surface as a structured GQ041 diagnostic
     instead of cmdliner's internal-error backtrace. *)
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group ~default info
          [
            generate_cmd;
            query_cmd;
            match_cmd;
            count_cmd;
            sample_cmd;
            enumerate_cmd;
            centrality_cmd;
            convert_cmd;
            materialize_cmd;
            sparql_cmd;
            explain_cmd;
            lint_cmd;
            contain_cmd;
            save_cmd;
            mutate_cmd;
            serve_cmd;
            stats_cmd;
            wl_cmd;
          ])
     with Sys_error message -> fail_user ~code:"GQ041" ~subterm:"" ~message)

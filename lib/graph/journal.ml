(* Append-only journal for property graphs: the storage-engine substrate
   of the "databases" side of the paper (Section 2.1: store data in a
   permanent form; graphs grow and shrink by adding/deleting nodes and
   edges).

   The op vocabulary and line format live in {!Mutation}; this module
   owns replay (ops -> property graph), the durable store, and the
   file-context error discipline: every error raised while reading a
   journal from disk carries the path, so callers can surface
   "file:line: message" diagnostics without re-deriving context.

   Replaying a journal rebuilds the graph; writing is append-only, so a
   crash can lose at most a partial trailing line, which
   [~tolerate_partial:true] skips.  [checkpoint] rewrites the journal as
   the minimal history of the current state. *)

type op = Mutation.t =
  | Add_node of { id : Const.t; label : Const.t }
  | Merge_node of { id : Const.t; label : Const.t }
  | Add_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Merge_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Set_node_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Set_edge_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Del_node_prop of { id : Const.t; prop : Const.t }
  | Del_edge_prop of { id : Const.t; prop : Const.t }
  | Del_node of { id : Const.t }
  | Del_edge of { id : Const.t }

exception Replay_error of { file : string option; line : int; message : string }

let fail ?file line fmt =
  Printf.ksprintf (fun message -> raise (Replay_error { file; line; message })) fmt

let op_to_line = Mutation.to_line

let op_of_line ?file ~line text =
  match Mutation.of_line ~line text with
  | op -> op
  | exception Mutation.Op_error { line; message } -> raise (Replay_error { file; line; message })

(* ---------------- Replay: ops -> property graph ---------------------- *)

(* Mutable draft with insertion-ordered identifiers; deletions leave the
   order of survivors intact.  This is the from-scratch reference
   semantics the incremental overlay/commit path is property-tested
   against (test_epoch). *)
type draft = {
  node_labels : (Const.t, Const.t) Hashtbl.t;
  node_props : (Const.t, (Const.t * Const.t) list) Hashtbl.t;
  edges : (Const.t, Const.t * Const.t * Const.t) Hashtbl.t; (* id -> (src, dst, label) *)
  edge_props : (Const.t, (Const.t * Const.t) list) Hashtbl.t;
  mutable node_order : Const.t list; (* reversed *)
  mutable edge_order : Const.t list; (* reversed *)
}

let draft_create () =
  {
    node_labels = Hashtbl.create 64;
    node_props = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    edge_props = Hashtbl.create 64;
    node_order = [];
    edge_order = [];
  }

let set_prop tbl id prop value =
  let existing = Option.value (Hashtbl.find_opt tbl id) ~default:[] in
  Hashtbl.replace tbl id ((prop, value) :: List.filter (fun (p, _) -> not (Const.equal p prop)) existing)

let remove_prop tbl id prop =
  match Hashtbl.find_opt tbl id with
  | None -> ()
  | Some existing -> Hashtbl.replace tbl id (List.filter (fun (p, _) -> not (Const.equal p prop)) existing)

let add_node ?file ~line draft id label =
  if Hashtbl.mem draft.node_labels id then fail ?file line "node %s already exists" (Const.to_string id);
  Hashtbl.replace draft.node_labels id label;
  draft.node_order <- id :: draft.node_order

let add_edge ?file ~line draft id src dst label =
  if Hashtbl.mem draft.edges id then fail ?file line "edge %s already exists" (Const.to_string id);
  if not (Hashtbl.mem draft.node_labels src) then
    fail ?file line "edge %s references missing node %s" (Const.to_string id) (Const.to_string src);
  if not (Hashtbl.mem draft.node_labels dst) then
    fail ?file line "edge %s references missing node %s" (Const.to_string id) (Const.to_string dst);
  Hashtbl.replace draft.edges id (src, dst, label);
  draft.edge_order <- id :: draft.edge_order

let apply ?file ~line draft op =
  match op with
  | Add_node { id; label } -> add_node ?file ~line draft id label
  | Merge_node { id; label } ->
      if not (Hashtbl.mem draft.node_labels id) then add_node ?file ~line draft id label
  | Add_edge { id; src; dst; label } -> add_edge ?file ~line draft id src dst label
  | Merge_edge { id; src; dst; label } ->
      if not (Hashtbl.mem draft.edges id) then add_edge ?file ~line draft id src dst label
  | Set_node_prop { id; prop; value } ->
      if not (Hashtbl.mem draft.node_labels id) then fail ?file line "no node %s" (Const.to_string id);
      set_prop draft.node_props id prop value
  | Set_edge_prop { id; prop; value } ->
      if not (Hashtbl.mem draft.edges id) then fail ?file line "no edge %s" (Const.to_string id);
      set_prop draft.edge_props id prop value
  | Del_node_prop { id; prop } ->
      if not (Hashtbl.mem draft.node_labels id) then fail ?file line "no node %s" (Const.to_string id);
      remove_prop draft.node_props id prop
  | Del_edge_prop { id; prop } ->
      if not (Hashtbl.mem draft.edges id) then fail ?file line "no edge %s" (Const.to_string id);
      remove_prop draft.edge_props id prop
  | Del_node { id } ->
      if not (Hashtbl.mem draft.node_labels id) then fail ?file line "no node %s" (Const.to_string id);
      Hashtbl.remove draft.node_labels id;
      Hashtbl.remove draft.node_props id;
      draft.node_order <- List.filter (fun n -> not (Const.equal n id)) draft.node_order;
      (* Incident edges go with the node. *)
      let doomed =
        Hashtbl.fold
          (fun eid (s, d, _) acc -> if Const.equal s id || Const.equal d id then eid :: acc else acc)
          draft.edges []
      in
      List.iter
        (fun eid ->
          Hashtbl.remove draft.edges eid;
          Hashtbl.remove draft.edge_props eid)
        doomed;
      if doomed <> [] then
        draft.edge_order <-
          List.filter (fun e -> not (List.exists (Const.equal e) doomed)) draft.edge_order
  | Del_edge { id } ->
      if not (Hashtbl.mem draft.edges id) then fail ?file line "no edge %s" (Const.to_string id);
      Hashtbl.remove draft.edges id;
      Hashtbl.remove draft.edge_props id;
      draft.edge_order <- List.filter (fun e -> not (Const.equal e id)) draft.edge_order

let freeze_draft draft =
  let b = Property_graph.Builder.create () in
  List.iter
    (fun id ->
      let n = Property_graph.Builder.add_node b id ~label:(Hashtbl.find draft.node_labels id) in
      List.iter
        (fun (prop, value) -> Property_graph.Builder.set_node_property b n ~prop ~value)
        (List.rev (Option.value (Hashtbl.find_opt draft.node_props id) ~default:[])))
    (List.rev draft.node_order);
  List.iter
    (fun id ->
      let src, dst, label = Hashtbl.find draft.edges id in
      let src = Option.get (Property_graph.Builder.find_node b src) in
      let dst = Option.get (Property_graph.Builder.find_node b dst) in
      let e = Property_graph.Builder.add_edge b id ~src ~dst ~label in
      List.iter
        (fun (prop, value) -> Property_graph.Builder.set_edge_property b e ~prop ~value)
        (List.rev (Option.value (Hashtbl.find_opt draft.edge_props id) ~default:[])))
    (List.rev draft.edge_order);
  Property_graph.Builder.freeze b

let replay_ops ?file ops =
  let draft = draft_create () in
  List.iteri (fun i op -> apply ?file ~line:(i + 1) draft op) ops;
  freeze_draft draft

let ops_of_string ?file ?(tolerate_partial = false) text =
  let lines = String.split_on_char '\n' text in
  let total = List.length lines in
  let ops = ref [] in
  List.iteri
    (fun i line ->
      let is_last = i = total - 1 in
      match op_of_line ?file ~line:(i + 1) line with
      | Some op -> ops := op :: !ops
      | None -> ()
      | exception Replay_error _ when tolerate_partial && is_last ->
          () (* a torn final write: ignore *))
    lines;
  List.rev !ops

let ops_to_string ops = String.concat "" (List.map (fun op -> op_to_line op ^ "\n") ops)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_ops ?(tolerate_partial = false) path =
  ops_of_string ~file:path ~tolerate_partial (read_file path)

let load ?tolerate_partial path =
  let ops = load_ops ?tolerate_partial path in
  replay_ops ~file:path ops

(* The minimal history recreating a graph: its current state as adds. *)
let ops_of_graph g =
  let ops = ref [] in
  for n = Property_graph.num_nodes g - 1 downto 0 do
    let id = Property_graph.node_id g n in
    Array.iter
      (fun (prop, value) -> ops := Set_node_prop { id; prop; value } :: !ops)
      (Property_graph.node_properties g n)
  done;
  for e = Property_graph.num_edges g - 1 downto 0 do
    let id = Property_graph.edge_id g e in
    Array.iter
      (fun (prop, value) -> ops := Set_edge_prop { id; prop; value } :: !ops)
      (Property_graph.edge_properties g e)
  done;
  for e = Property_graph.num_edges g - 1 downto 0 do
    let s, d = Property_graph.endpoints g e in
    ops :=
      Add_edge
        {
          id = Property_graph.edge_id g e;
          src = Property_graph.node_id g s;
          dst = Property_graph.node_id g d;
          label = Property_graph.edge_label g e;
        }
      :: !ops
  done;
  for n = Property_graph.num_nodes g - 1 downto 0 do
    ops := Add_node { id = Property_graph.node_id g n; label = Property_graph.node_label g n } :: !ops
  done;
  !ops

(* ---------------- The durable store ----------------------------------- *)

(* An open journal-backed store: appends go straight to disk; the
   materialized graph is rebuilt lazily after mutations. *)
type store = {
  path : string;
  mutable channel : out_channel;
  mutable ops : op list; (* reversed *)
  mutable cache : Property_graph.t option;
}

let open_store ?(tolerate_partial = false) path =
  let ops = if Sys.file_exists path then load_ops ~tolerate_partial path else [] in
  (* Validate by replaying before accepting the store. *)
  ignore (replay_ops ~file:path ops);
  let channel = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { path; channel; ops = List.rev ops; cache = None }

let append store op =
  (* Validate against the current state before making it durable. *)
  let draft = draft_create () in
  List.iteri (fun i op -> apply ~file:store.path ~line:(i + 1) draft op) (List.rev store.ops);
  apply ~file:store.path ~line:(List.length store.ops + 1) draft op;
  output_string store.channel (op_to_line op ^ "\n");
  flush store.channel;
  store.ops <- op :: store.ops;
  store.cache <- None

let graph store =
  match store.cache with
  | Some g -> g
  | None ->
      let g = replay_ops ~file:store.path (List.rev store.ops) in
      store.cache <- Some g;
      g

let num_ops store = List.length store.ops

(* Rewrite the journal as the minimal history of the current state. *)
let checkpoint store =
  let g = graph store in
  let ops = ops_of_graph g in
  close_out store.channel;
  let oc = open_out store.path in
  output_string oc (ops_to_string ops);
  close_out oc;
  store.channel <- open_out_gen [ Open_append ] 0o644 store.path;
  store.ops <- List.rev ops

let close_store store = close_out store.channel

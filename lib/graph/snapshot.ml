(* The frozen columnar view shared by all four Section 3 data models.

   Freezing compiles a model to one physical layout — flat endpoint
   columns, CSR adjacency in both directions, interned edge labels,
   node-label membership bitmaps and degree/label statistics — so the
   Section 4 engines touch plain int arrays instead of per-model
   closures.  The adapters that used to live in each model
   (Labeled_graph.to_instance and friends) collapse into the [of_*]
   constructors below plus [Rdf_graph.to_snapshot] in gqkg_kg; the
   legacy record survives only behind {!to_instance}.

   Everything in the record is immutable after [make] returns, and the
   hot fields are plain int arrays, so snapshots are shared freely
   across OCaml 5 domains (Product.levels, betweenness_parallel). *)

module B = Gqkg_util.Bitset

type stats = {
  out_degree_p50 : int;
  out_degree_p99 : int;
  out_degree_max : int;
  in_degree_p50 : int;
  in_degree_p99 : int;
  in_degree_max : int;
  degree_p50 : int;
  degree_p99 : int;
  degree_max : int;
  edge_label_counts : int array;
  node_label_counts : int array;
}

type t = {
  num_nodes : int;
  num_edges : int;
  esrc : int array;
  edst : int array;
  out_off : int array;
  out_eid : int array;
  out_nbr : int array;
  in_off : int array;
  in_eid : int array;
  in_nbr : int array;
  num_labels : int;
  elabel : int array;
  label_names : string array;
  label_sat : int -> Atom.t -> bool;
  num_node_labels : int;
  node_label_names : string array;
  node_label_sat : int -> Atom.t -> bool;
  node_label_bits : int array array;
  node_atom : int -> Atom.t -> bool;
  edge_atom : int -> Atom.t -> bool;
  node_name : int -> string;
  edge_name : int -> string;
  stats : stats;
  epoch : int;
}

(* Process-wide epoch counter: every snapshot constructed in this
   process (via [make] or the loader's literal record) gets a distinct
   stamp; the Governor's semantic cache keys on it. *)
let epoch_counter = Atomic.make 0
let fresh_epoch () = Atomic.fetch_and_add epoch_counter 1

(* Percentile of a degree distribution given as a counting histogram
   over 0 .. max_degree (nearest-rank on the n node observations). *)
let percentile_of_hist hist n p =
  if n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
    let acc = ref 0 and result = ref 0 and d = ref 0 in
    let len = Array.length hist in
    while !acc < rank && !d < len do
      acc := !acc + hist.(!d);
      if !acc >= rank then result := !d;
      incr d
    done;
    !result
  end

let degree_stats n off =
  let maxd = ref 0 in
  for v = 0 to n - 1 do
    let d = off.(v + 1) - off.(v) in
    if d > !maxd then maxd := d
  done;
  let hist = Array.make (!maxd + 1) 0 in
  for v = 0 to n - 1 do
    let d = off.(v + 1) - off.(v) in
    hist.(d) <- hist.(d) + 1
  done;
  (percentile_of_hist hist n 0.50, percentile_of_hist hist n 0.99, !maxd)

(* CSR from endpoint columns by counting sort; iterating edges in
   ascending id keeps each node's adjacency in ascending edge order —
   the deterministic order the product kernel's move contract relies
   on. *)
let pack_csr n esrc edst =
  let m = Array.length esrc in
  let out_off = Array.make (n + 1) 0 and in_off = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    out_off.(esrc.(e)) <- out_off.(esrc.(e)) + 1;
    in_off.(edst.(e)) <- in_off.(edst.(e)) + 1
  done;
  let acc_out = ref 0 and acc_in = ref 0 in
  for v = 0 to n do
    let o = out_off.(v) and i = in_off.(v) in
    out_off.(v) <- !acc_out;
    in_off.(v) <- !acc_in;
    acc_out := !acc_out + o;
    acc_in := !acc_in + i
  done;
  let out_eid = Array.make m 0 and out_nbr = Array.make m 0 in
  let in_eid = Array.make m 0 and in_nbr = Array.make m 0 in
  let out_fill = Array.make (max n 1) 0 and in_fill = Array.make (max n 1) 0 in
  for e = 0 to m - 1 do
    let s = esrc.(e) and d = edst.(e) in
    let oi = out_off.(s) + out_fill.(s) in
    out_eid.(oi) <- e;
    out_nbr.(oi) <- d;
    out_fill.(s) <- out_fill.(s) + 1;
    let ii = in_off.(d) + in_fill.(d) in
    in_eid.(ii) <- e;
    in_nbr.(ii) <- s;
    in_fill.(d) <- in_fill.(d) + 1
  done;
  (out_off, out_eid, out_nbr, in_off, in_eid, in_nbr)

(* Full stats record from packed offsets and label counts — shared by
   [make] and the incremental re-freeze (Overlay.commit), which reuses
   unchanged label-count columns instead of recounting. *)
let stats_of_columns ~num_nodes ~out_off ~in_off ~edge_label_counts ~node_label_counts =
  let out_degree_p50, out_degree_p99, out_degree_max = degree_stats num_nodes out_off in
  let in_degree_p50, in_degree_p99, in_degree_max = degree_stats num_nodes in_off in
  let degree_p50, degree_p99, degree_max =
    let maxd = ref 0 in
    for v = 0 to num_nodes - 1 do
      let d = out_off.(v + 1) - out_off.(v) + in_off.(v + 1) - in_off.(v) in
      if d > !maxd then maxd := d
    done;
    let hist = Array.make (!maxd + 1) 0 in
    for v = 0 to num_nodes - 1 do
      let d = out_off.(v + 1) - out_off.(v) + in_off.(v + 1) - in_off.(v) in
      hist.(d) <- hist.(d) + 1
    done;
    ( percentile_of_hist hist num_nodes 0.50,
      percentile_of_hist hist num_nodes 0.99,
      !maxd )
  in
  {
    out_degree_p50;
    out_degree_p99;
    out_degree_max;
    in_degree_p50;
    in_degree_p99;
    in_degree_max;
    degree_p50;
    degree_p99;
    degree_max;
    edge_label_counts;
    node_label_counts;
  }

let make ~num_nodes ~esrc ~edst ~num_labels ~elabel ~label_names ~label_sat ~num_node_labels
    ~node_labels ~node_label_names ~node_label_sat ~node_atom ~edge_atom ~node_name ~edge_name =
  let num_edges = Array.length esrc in
  if Array.length edst <> num_edges || Array.length elabel <> num_edges then
    invalid_arg "Snapshot.make: esrc/edst/elabel lengths differ";
  if Array.length node_labels <> num_nodes then
    invalid_arg "Snapshot.make: node_labels length";
  let out_off, out_eid, out_nbr, in_off, in_eid, in_nbr = pack_csr num_nodes esrc edst in
  let node_label_bits =
    Array.init num_node_labels (fun _ -> B.raw_create (max num_nodes 1))
  in
  let node_label_counts = Array.make num_node_labels 0 in
  Array.iteri
    (fun v ls ->
      List.iter
        (fun l ->
          B.raw_add node_label_bits.(l) v;
          node_label_counts.(l) <- node_label_counts.(l) + 1)
        ls)
    node_labels;
  let edge_label_counts = Array.make num_labels 0 in
  if num_labels > 0 then
    Array.iter (fun l -> edge_label_counts.(l) <- edge_label_counts.(l) + 1) elabel;
  {
    num_nodes;
    num_edges;
    esrc;
    edst;
    out_off;
    out_eid;
    out_nbr;
    in_off;
    in_eid;
    in_nbr;
    num_labels;
    elabel;
    label_names;
    label_sat;
    num_node_labels;
    node_label_names;
    node_label_sat;
    node_label_bits;
    node_atom;
    edge_atom;
    node_name;
    edge_name;
    stats = stats_of_columns ~num_nodes ~out_off ~in_off ~edge_label_counts ~node_label_counts;
    epoch = fresh_epoch ();
  }

let intern ~n ~get =
  let ids = Hashtbl.create 16 in
  let distinct = ref [] in
  let table =
    Array.init n (fun i ->
        let x = get i in
        match Hashtbl.find_opt ids x with
        | Some id -> id
        | None ->
            let id = Hashtbl.length ids in
            Hashtbl.add ids x id;
            distinct := x :: !distinct;
            id)
  in
  (table, Array.of_list (List.rev !distinct))

(* ---- The Section 3 models --------------------------------------------- *)

(* Label satisfaction by Const equality against the interned universe —
   the rule shared by the labeled, property and vector models (RDF
   substitutes its IRI/local-name rule in Rdf_graph.to_snapshot). *)
let const_label_sat universe id = function
  | Atom.Label c -> Const.equal universe.(id) c
  | Atom.Prop _ | Atom.Feature _ -> false

let endpoint_columns num_edges endpoints =
  let esrc = Array.make (max num_edges 1) 0 and edst = Array.make (max num_edges 1) 0 in
  for e = 0 to num_edges - 1 do
    let s, d = endpoints e in
    esrc.(e) <- s;
    edst.(e) <- d
  done;
  (Array.sub esrc 0 num_edges, Array.sub edst 0 num_edges)

(* Shared freeze for the three Const-labeled models: one label per node,
   one per edge, Const-equality label tests. *)
let of_const_labeled ~num_nodes ~num_edges ~endpoints ~node_label ~edge_label ~node_atom
    ~edge_atom ~node_name ~edge_name =
  let esrc, edst = endpoint_columns num_edges endpoints in
  let elabel, edge_universe = intern ~n:num_edges ~get:edge_label in
  let nlabel, node_universe = intern ~n:num_nodes ~get:node_label in
  make ~num_nodes ~esrc ~edst ~num_labels:(Array.length edge_universe) ~elabel
    ~label_names:(Array.map Const.to_string edge_universe)
    ~label_sat:(const_label_sat edge_universe)
    ~num_node_labels:(Array.length node_universe)
    ~node_labels:(Array.map (fun l -> [ l ]) nlabel)
    ~node_label_names:(Array.map Const.to_string node_universe)
    ~node_label_sat:(const_label_sat node_universe)
    ~node_atom ~edge_atom ~node_name ~edge_name

let of_labeled g =
  of_const_labeled ~num_nodes:(Labeled_graph.num_nodes g) ~num_edges:(Labeled_graph.num_edges g)
    ~endpoints:(Labeled_graph.endpoints g) ~node_label:(Labeled_graph.node_label g)
    ~edge_label:(Labeled_graph.edge_label g)
    ~node_atom:(Labeled_graph.node_satisfies_atom g)
    ~edge_atom:(Labeled_graph.edge_satisfies_atom g)
    ~node_name:(fun n -> Const.to_string (Labeled_graph.node_id g n))
    ~edge_name:(fun e -> Const.to_string (Labeled_graph.edge_id g e))

(* λ(e) comes from the underlying labeled graph, so Label atoms are
   label-determined even though Prop atoms are not. *)
let of_property g =
  of_const_labeled ~num_nodes:(Property_graph.num_nodes g)
    ~num_edges:(Property_graph.num_edges g) ~endpoints:(Property_graph.endpoints g)
    ~node_label:(Property_graph.node_label g) ~edge_label:(Property_graph.edge_label g)
    ~node_atom:(Property_graph.node_satisfies_atom g)
    ~edge_atom:(Property_graph.edge_satisfies_atom g)
    ~node_name:(fun n -> Const.to_string (Property_graph.node_id g n))
    ~edge_name:(fun e -> Const.to_string (Property_graph.edge_id g e))

(* The label survives flattening as feature 1 (index 0), so Label atoms
   are determined by that feature alone. *)
let of_vector g =
  of_const_labeled ~num_nodes:(Vector_graph.num_nodes g) ~num_edges:(Vector_graph.num_edges g)
    ~endpoints:(Vector_graph.endpoints g)
    ~node_label:(fun n -> (Vector_graph.node_vector g n).(0))
    ~edge_label:(fun e -> (Vector_graph.edge_vector g e).(0))
    ~node_atom:(Vector_graph.node_satisfies_atom g)
    ~edge_atom:(Vector_graph.edge_satisfies_atom g)
    ~node_name:(fun n -> Const.to_string (Vector_graph.node_id g n))
    ~edge_name:(fun e -> Const.to_string (Vector_graph.edge_id g e))

(* ---- Accessors --------------------------------------------------------- *)

let endpoints s e = (s.esrc.(e), s.edst.(e))
let src s e = s.esrc.(e)
let dst s e = s.edst.(e)
let out_degree s v = s.out_off.(v + 1) - s.out_off.(v)
let in_degree s v = s.in_off.(v + 1) - s.in_off.(v)

let iter_out s v f =
  for i = s.out_off.(v) to s.out_off.(v + 1) - 1 do
    f s.out_eid.(i) s.out_nbr.(i)
  done

let iter_in s v f =
  for i = s.in_off.(v) to s.in_off.(v + 1) - 1 do
    f s.in_eid.(i) s.in_nbr.(i)
  done

let out_pairs s v =
  let off = s.out_off.(v) in
  Array.init (out_degree s v) (fun i -> (s.out_eid.(off + i), s.out_nbr.(off + i)))

let in_pairs s v =
  let off = s.in_off.(v) in
  Array.init (in_degree s v) (fun i -> (s.in_eid.(off + i), s.in_nbr.(off + i)))

let nodes_with_label s l = B.raw_to_array s.node_label_bits.(l)

(* Side-by-side disjoint union (nodes and edges of [b] shifted past
   [a]'s), used by the WL isomorphism test and kernel: joint color
   refinement needs one graph whose palette spans both sides.  Labels
   are dropped — refinement only reads structure; atoms and names
   delegate to the matching side. *)
let disjoint_union a b =
  let n1 = a.num_nodes and m1 = a.num_edges in
  let n = n1 + b.num_nodes and m = m1 + b.num_edges in
  let shift off arr1 arr2 =
    Array.init m (fun e -> if e < m1 then arr1.(e) else arr2.(e - m1) + off)
  in
  make ~num_nodes:n ~esrc:(shift n1 a.esrc b.esrc) ~edst:(shift n1 a.edst b.edst) ~num_labels:0
    ~elabel:(Array.make m 0) ~label_names:[||]
    ~label_sat:(fun _ _ -> false)
    ~num_node_labels:0 ~node_labels:(Array.make n []) ~node_label_names:[||]
    ~node_label_sat:(fun _ _ -> false)
    ~node_atom:(fun v at -> if v < n1 then a.node_atom v at else b.node_atom (v - n1) at)
    ~edge_atom:(fun e at -> if e < m1 then a.edge_atom e at else b.edge_atom (e - m1) at)
    ~node_name:(fun v -> if v < n1 then a.node_name v else b.node_name (v - n1))
    ~edge_name:(fun e -> if e < m1 then a.edge_name e else b.edge_name (e - m1))

let describe s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d nodes, %d edges\n" s.num_nodes s.num_edges);
  let universe names counts what =
    if Array.length names = 0 then Buffer.add_string buf (Printf.sprintf "%s: (none)\n" what)
    else begin
      let entries =
        Array.to_list (Array.mapi (fun i name -> Printf.sprintf "%s (%d)" name counts.(i)) names)
      in
      Buffer.add_string buf (Printf.sprintf "%s: %s\n" what (String.concat ", " entries))
    end
  in
  universe s.node_label_names s.stats.node_label_counts "node labels";
  universe s.label_names s.stats.edge_label_counts "edge labels";
  Buffer.add_string buf
    (Printf.sprintf "degree p50/p99/max: %d/%d/%d (out %d/%d/%d, in %d/%d/%d)\n"
       s.stats.degree_p50 s.stats.degree_p99 s.stats.degree_max s.stats.out_degree_p50
       s.stats.out_degree_p99 s.stats.out_degree_max s.stats.in_degree_p50 s.stats.in_degree_p99
       s.stats.in_degree_max);
  Buffer.contents buf

let to_instance s =
  {
    Instance.num_nodes = s.num_nodes;
    num_edges = s.num_edges;
    endpoints = endpoints s;
    out_edges = out_pairs s;
    in_edges = in_pairs s;
    node_atom = s.node_atom;
    edge_atom = s.edge_atom;
    node_name = s.node_name;
    edge_name = s.edge_name;
    labels =
      (if s.num_labels > 0 then
         Some
           {
             Instance.num_labels = s.num_labels;
             edge_label_id = (fun e -> s.elabel.(e));
             label_sat = s.label_sat;
           }
       else None);
  }

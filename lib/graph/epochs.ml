(* Epoch manager: current-pointer + pin-count MVCC.

   The mutable state is tiny — the current base and a list of live
   entries (epoch stamp, snapshot, pin count) — and every touch of it
   holds [lock] for O(live epochs) work, so readers and the writer
   never contend for more than a pointer swing.  Query execution itself
   runs on the pinned snapshot with no lock at all: snapshots are
   immutable, and a commit installs a brand-new one rather than
   mutating the old. *)

type entry = { snap : Snapshot.t; mutable pins : int }

type t = {
  lock : Mutex.t;
  mutable current : Overlay.base;
  mutable live : entry list; (* newest first; head is the current epoch *)
  mutable n_commits : int;
  mutable n_retired : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create base =
  {
    lock = Mutex.create ();
    current = base;
    live = [ { snap = Overlay.snapshot base; pins = 0 } ];
    n_commits = 0;
    n_retired = 0;
  }

let base t = locked t (fun () -> t.current)
let snapshot t = locked t (fun () -> Overlay.snapshot t.current)

let pin t =
  locked t (fun () ->
      match t.live with
      | cur :: _ ->
          cur.pins <- cur.pins + 1;
          cur.snap
      | [] -> assert false)

(* Drop live entries that are neither current nor pinned. *)
let sweep t =
  match t.live with
  | cur :: olds ->
      let survivors = List.filter (fun e -> e.pins > 0) olds in
      t.n_retired <- t.n_retired + (List.length olds - List.length survivors);
      t.live <- cur :: survivors
  | [] -> assert false

let unpin t (snap : Snapshot.t) =
  locked t (fun () ->
      List.iter
        (fun e ->
          if e.snap == snap && e.pins > 0 then e.pins <- e.pins - 1)
        t.live;
      sweep t)

let with_pinned t f =
  let snap = pin t in
  Fun.protect ~finally:(fun () -> unpin t snap) (fun () -> f snap)

let commit t overlay =
  if Overlay.base overlay != base t then
    invalid_arg "Epochs.commit: overlay was not built on the current epoch";
  if Overlay.size overlay = 0 then (base t, snd (Overlay.commit overlay))
  else begin
    (* The re-freeze runs outside the lock: readers keep pinning the old
       epoch meanwhile; single-writer means nobody else can commit. *)
    let base', reuse = Overlay.commit overlay in
    locked t (fun () ->
        t.current <- base';
        t.live <- { snap = Overlay.snapshot base'; pins = 0 } :: t.live;
        t.n_commits <- t.n_commits + 1;
        sweep t);
    (base', reuse)
  end

let live_epochs t =
  locked t (fun () -> List.map (fun e -> e.snap.Snapshot.epoch) t.live)

let commits t = locked t (fun () -> t.n_commits)
let retired t = locked t (fun () -> t.n_retired)

let pins t =
  locked t (fun () -> List.fold_left (fun acc e -> acc + e.pins) 0 t.live)

(** Property graphs P = (N, E, ρ, λ, σ): labeled graphs with a partial
    function σ giving property values to nodes and edges (Section 3;
    Figure 2(b)). *)

(** Sorted (property, value) pairs of one object. *)
type properties = (Const.t * Const.t) array

type t

(** Projection to the labeled model (forget σ). *)
val labeled : t -> Labeled_graph.t

val base : t -> Multigraph.t
val num_nodes : t -> int
val num_edges : t -> int
val node_label : t -> int -> Const.t
val edge_label : t -> int -> Const.t
val node_id : t -> int -> Const.t
val edge_id : t -> int -> Const.t
val endpoints : t -> int -> int * int
val out_edges : t -> int -> (int * int) array
val in_edges : t -> int -> (int * int) array
val find_node : t -> Const.t -> int option
val node_of_exn : t -> Const.t -> int

(** Linear scan of a sorted property array. *)
val lookup : properties -> Const.t -> Const.t option

(** σ(node, p). *)
val node_property : t -> int -> Const.t -> Const.t option

(** σ(edge, p). *)
val edge_property : t -> int -> Const.t -> Const.t option

val node_properties : t -> int -> properties
val edge_properties : t -> int -> properties

(** Atomic-test oracle: [Label] and [Prop] atoms can hold here. *)
val node_satisfies_atom : t -> int -> Atom.t -> bool

val edge_satisfies_atom : t -> int -> Atom.t -> bool

(** Distinct property names on nodes and on edges, in canonical order —
    the flattening schema used by {!Vector_graph.of_property}. *)
val property_schema : t -> Const.t list * Const.t list

module Builder : sig
  type graph = t
  type t

  val create : unit -> t
  val add_node : t -> Const.t -> label:Const.t -> int
  val add_edge : t -> Const.t -> src:int -> dst:int -> label:Const.t -> int
  val fresh_edge : t -> src:int -> dst:int -> label:Const.t -> int
  val find_node : t -> Const.t -> int option

  (** Last write per (object, property) wins. *)
  val set_node_property : t -> int -> prop:Const.t -> value:Const.t -> unit

  val set_edge_property : t -> int -> prop:Const.t -> value:Const.t -> unit
  val freeze : t -> graph
end

(** A labeled graph is a property graph with empty σ (the hierarchy of
    Section 3). *)
val of_labeled : Labeled_graph.t -> t

val to_labeled : t -> Labeled_graph.t

(* Delta overlay over a frozen snapshot: the write path of the MVCC
   epoch design.  Mutations accumulate in cheap delta structures (dead
   flags over the base, appended new objects, property-override tables,
   a live name index); reads answer base ∪ adds ∖ deletes; [commit]
   re-freezes incrementally, physically sharing every column the delta
   did not touch.

   Numbering invariant: base survivors keep base order, new objects
   append in insertion order — the same order [Journal.replay_ops]
   yields, so incremental commits and from-scratch replays of one
   history agree on node and edge numbering (test_epoch checks answers
   as int pairs).  Interned label universes are append-only across
   commits: deleting the last edge with label ℓ keeps ℓ's id at count 0
   where a scratch freeze would forget it — query answers are
   unaffected ([label_sat] is Const equality per id) and survivors keep
   their label ids, which is what lets [elabel] be reused verbatim. *)

module B = Gqkg_util.Bitset

type base = {
  snap : Snapshot.t;
  node_ids : Const.t array;
  node_labels : Const.t array;
  node_props : Property_graph.properties array;
  edge_ids : Const.t array;
  edge_labels : Const.t array;
  edge_props : Property_graph.properties array;
  edge_label_univ : Const.t array; (* interned universe in label-id order *)
  node_label_univ : Const.t array;
}

let snapshot b = b.snap

(* Minimal replayable history of a committed base (mirrors
   [Journal.ops_of_graph]: node adds, edge adds, edge props, node
   props) — what [gqkg mutate --journal] writes so the file reloads to
   exactly this state. *)
let history b =
  let s = b.snap in
  let ops = ref [] in
  for v = s.Snapshot.num_nodes - 1 downto 0 do
    Array.iter
      (fun (prop, value) ->
        ops := Mutation.Set_node_prop { id = b.node_ids.(v); prop; value } :: !ops)
      b.node_props.(v)
  done;
  for e = s.Snapshot.num_edges - 1 downto 0 do
    Array.iter
      (fun (prop, value) ->
        ops := Mutation.Set_edge_prop { id = b.edge_ids.(e); prop; value } :: !ops)
      b.edge_props.(e)
  done;
  for e = s.Snapshot.num_edges - 1 downto 0 do
    ops :=
      Mutation.Add_edge
        {
          id = b.edge_ids.(e);
          src = b.node_ids.(s.Snapshot.esrc.(e));
          dst = b.node_ids.(s.Snapshot.edst.(e));
          label = b.edge_labels.(e);
        }
      :: !ops
  done;
  for v = s.Snapshot.num_nodes - 1 downto 0 do
    ops := Mutation.Add_node { id = b.node_ids.(v); label = b.node_labels.(v) } :: !ops
  done;
  !ops

let base_of_property g =
  let snap = Snapshot.of_property g in
  let n = Property_graph.num_nodes g and m = Property_graph.num_edges g in
  (* Re-interning with the same first-occurrence rule reproduces exactly
     the universes [Snapshot.of_property] interned. *)
  let _, edge_label_univ = Snapshot.intern ~n:m ~get:(Property_graph.edge_label g) in
  let _, node_label_univ = Snapshot.intern ~n ~get:(Property_graph.node_label g) in
  {
    snap;
    node_ids = Array.init n (Property_graph.node_id g);
    node_labels = Array.init n (Property_graph.node_label g);
    node_props = Array.init n (Property_graph.node_properties g);
    edge_ids = Array.init m (Property_graph.edge_id g);
    edge_labels = Array.init m (Property_graph.edge_label g);
    edge_props = Array.init m (Property_graph.edge_properties g);
    edge_label_univ;
    node_label_univ;
  }

let base_of_snapshot (s : Snapshot.t) =
  let n = s.Snapshot.num_nodes and m = s.Snapshot.num_edges in
  let node_label_univ = Array.map Const.of_string s.Snapshot.node_label_names in
  let edge_label_univ = Array.map Const.of_string s.Snapshot.label_names in
  (* Recover the one-label-per-node column from the membership bitmaps;
     refuse snapshots with non-exclusive membership (RDF multi-types)
     — the overlay's write semantics are property-model. *)
  let node_labels = Array.make n Const.Bottom in
  let seen = Array.make (max n 1) false in
  Array.iteri
    (fun l bits ->
      B.raw_iter bits (fun v ->
          if seen.(v) then
            invalid_arg "Overlay.base_of_snapshot: node labels are not exclusive";
          seen.(v) <- true;
          node_labels.(v) <- node_label_univ.(l)))
    s.Snapshot.node_label_bits;
  for v = 0 to n - 1 do
    if not seen.(v) then invalid_arg "Overlay.base_of_snapshot: unlabeled node"
  done;
  if s.Snapshot.num_labels = 0 && m > 0 then
    invalid_arg "Overlay.base_of_snapshot: snapshot has no edge-label index";
  {
    snap = s;
    node_ids = Array.init n (fun v -> Const.of_string (s.Snapshot.node_name v));
    node_labels;
    node_props = Array.make n [||];
    edge_ids = Array.init m (fun e -> Const.of_string (s.Snapshot.edge_name e));
    edge_labels = Array.init m (fun e -> edge_label_univ.(s.Snapshot.elabel.(e)));
    edge_props = Array.make m [||];
    edge_label_univ;
    node_label_univ;
  }

(* ---------------- The delta ------------------------------------------- *)

type new_node = {
  n_id : Const.t;
  n_label : Const.t;
  mutable n_props : (Const.t * Const.t) list;
  mutable n_final : int; (* final index, assigned during commit *)
}

type new_edge = {
  e_id : Const.t;
  e_src : Const.t;
  e_dst : Const.t;
  e_label : Const.t;
  mutable e_props : (Const.t * Const.t) list;
}

type node_handle = Bnode of int | Nnode of new_node
type edge_handle = Bedge of int | Nedge of new_edge

type t = {
  base : base;
  dead_node : bool array; (* over base node indices *)
  dead_edge : bool array;
  mutable n_dead_nodes : int;
  mutable n_dead_edges : int;
  mutable new_nodes : new_node list; (* reversed insertion order *)
  mutable new_edges : new_edge list; (* reversed *)
  bprops_n : (int, (Const.t * Const.t) list) Hashtbl.t; (* touched base nodes: full current assoc *)
  bprops_e : (int, (Const.t * Const.t) list) Hashtbl.t;
  nodes_by_id : (Const.t, node_handle) Hashtbl.t; (* live objects only *)
  edges_by_id : (Const.t, edge_handle) Hashtbl.t;
  mutable ops : int;
}

let create base =
  let s = base.snap in
  let n = s.Snapshot.num_nodes and m = s.Snapshot.num_edges in
  let nodes_by_id = Hashtbl.create (n + 16) in
  Array.iteri (fun v id -> Hashtbl.replace nodes_by_id id (Bnode v)) base.node_ids;
  let edges_by_id = Hashtbl.create (m + 16) in
  Array.iteri (fun e id -> Hashtbl.replace edges_by_id id (Bedge e)) base.edge_ids;
  {
    base;
    dead_node = Array.make (max n 1) false;
    dead_edge = Array.make (max m 1) false;
    n_dead_nodes = 0;
    n_dead_edges = 0;
    new_nodes = [];
    new_edges = [];
    bprops_n = Hashtbl.create 16;
    bprops_e = Hashtbl.create 16;
    nodes_by_id;
    edges_by_id;
    ops = 0;
  }

let base t = t.base
let size t = t.ops

let live_nodes t =
  t.base.snap.Snapshot.num_nodes - t.n_dead_nodes + List.length t.new_nodes

let live_edges t =
  t.base.snap.Snapshot.num_edges - t.n_dead_edges + List.length t.new_edges

let fail ?file line fmt =
  Printf.ksprintf (fun message -> raise (Journal.Replay_error { file; line; message })) fmt

let assoc_set assoc prop value =
  (prop, value) :: List.filter (fun (p, _) -> not (Const.equal p prop)) assoc

let assoc_del assoc prop = List.filter (fun (p, _) -> not (Const.equal p prop)) assoc
let assoc_find assoc prop = List.find_map (fun (p, v) -> if Const.equal p prop then Some v else None) assoc

(* Current props of a live base object as an assoc (override table first,
   base column otherwise). *)
let base_props_assoc over props i =
  match Hashtbl.find_opt over i with
  | Some assoc -> assoc
  | None -> Array.to_list props.(i)

let kill_base_edge t e =
  t.dead_edge.(e) <- true;
  t.n_dead_edges <- t.n_dead_edges + 1;
  Hashtbl.remove t.bprops_e e;
  Hashtbl.remove t.edges_by_id t.base.edge_ids.(e)

let kill_new_edge t (r : new_edge) =
  t.new_edges <- List.filter (fun x -> x != r) t.new_edges;
  Hashtbl.remove t.edges_by_id r.e_id

let apply ?file ?(line = 0) t op =
  let add_node id label =
    if Hashtbl.mem t.nodes_by_id id then fail ?file line "node %s already exists" (Const.to_string id);
    let r = { n_id = id; n_label = label; n_props = []; n_final = -1 } in
    t.new_nodes <- r :: t.new_nodes;
    Hashtbl.replace t.nodes_by_id id (Nnode r)
  in
  let add_edge id src dst label =
    if Hashtbl.mem t.edges_by_id id then fail ?file line "edge %s already exists" (Const.to_string id);
    if not (Hashtbl.mem t.nodes_by_id src) then
      fail ?file line "edge %s references missing node %s" (Const.to_string id) (Const.to_string src);
    if not (Hashtbl.mem t.nodes_by_id dst) then
      fail ?file line "edge %s references missing node %s" (Const.to_string id) (Const.to_string dst);
    let r = { e_id = id; e_src = src; e_dst = dst; e_label = label; e_props = [] } in
    t.new_edges <- r :: t.new_edges;
    Hashtbl.replace t.edges_by_id id (Nedge r)
  in
  let node_of id =
    match Hashtbl.find_opt t.nodes_by_id id with
    | Some h -> h
    | None -> fail ?file line "no node %s" (Const.to_string id)
  in
  let edge_of id =
    match Hashtbl.find_opt t.edges_by_id id with
    | Some h -> h
    | None -> fail ?file line "no edge %s" (Const.to_string id)
  in
  (match op with
  | Mutation.Add_node { id; label } -> add_node id label
  | Merge_node { id; label } -> if not (Hashtbl.mem t.nodes_by_id id) then add_node id label
  | Add_edge { id; src; dst; label } -> add_edge id src dst label
  | Merge_edge { id; src; dst; label } ->
      if not (Hashtbl.mem t.edges_by_id id) then add_edge id src dst label
  | Set_node_prop { id; prop; value } -> (
      match node_of id with
      | Bnode i ->
          Hashtbl.replace t.bprops_n i
            (assoc_set (base_props_assoc t.bprops_n t.base.node_props i) prop value)
      | Nnode r -> r.n_props <- assoc_set r.n_props prop value)
  | Set_edge_prop { id; prop; value } -> (
      match edge_of id with
      | Bedge e ->
          Hashtbl.replace t.bprops_e e
            (assoc_set (base_props_assoc t.bprops_e t.base.edge_props e) prop value)
      | Nedge r -> r.e_props <- assoc_set r.e_props prop value)
  | Del_node_prop { id; prop } -> (
      match node_of id with
      | Bnode i ->
          Hashtbl.replace t.bprops_n i
            (assoc_del (base_props_assoc t.bprops_n t.base.node_props i) prop)
      | Nnode r -> r.n_props <- assoc_del r.n_props prop)
  | Del_edge_prop { id; prop } -> (
      match edge_of id with
      | Bedge e ->
          Hashtbl.replace t.bprops_e e
            (assoc_del (base_props_assoc t.bprops_e t.base.edge_props e) prop)
      | Nedge r -> r.e_props <- assoc_del r.e_props prop)
  | Del_node { id } -> (
      let h = node_of id in
      Hashtbl.remove t.nodes_by_id id;
      (* Cascade over incident live edges: base edges via the CSR
         adjacency of a base node, new edges by endpoint id (they are
         the only edges that can reference a new node). *)
      let s = t.base.snap in
      (match h with
      | Bnode i ->
          t.dead_node.(i) <- true;
          t.n_dead_nodes <- t.n_dead_nodes + 1;
          Hashtbl.remove t.bprops_n i;
          Snapshot.iter_out s i (fun e _ -> if not t.dead_edge.(e) then kill_base_edge t e);
          Snapshot.iter_in s i (fun e _ -> if not t.dead_edge.(e) then kill_base_edge t e)
      | Nnode r -> t.new_nodes <- List.filter (fun x -> x != r) t.new_nodes);
      let doomed =
        List.filter (fun r -> Const.equal r.e_src id || Const.equal r.e_dst id) t.new_edges
      in
      List.iter (kill_new_edge t) doomed)
  | Del_edge { id } -> (
      match edge_of id with
      | Bedge e -> kill_base_edge t e
      | Nedge r -> kill_new_edge t r));
  t.ops <- t.ops + 1

(* ---------------- Reads through the overlay --------------------------- *)

let mem_node t id = Hashtbl.mem t.nodes_by_id id
let mem_edge t id = Hashtbl.mem t.edges_by_id id

let node_label t id =
  match Hashtbl.find_opt t.nodes_by_id id with
  | Some (Bnode i) -> Some t.base.node_labels.(i)
  | Some (Nnode r) -> Some r.n_label
  | None -> None

let node_prop t id prop =
  match Hashtbl.find_opt t.nodes_by_id id with
  | Some (Bnode i) -> assoc_find (base_props_assoc t.bprops_n t.base.node_props i) prop
  | Some (Nnode r) -> assoc_find r.n_props prop
  | None -> None

let edge_prop t id prop =
  match Hashtbl.find_opt t.edges_by_id id with
  | Some (Bedge e) -> assoc_find (base_props_assoc t.bprops_e t.base.edge_props e) prop
  | Some (Nedge r) -> assoc_find r.e_props prop
  | None -> None

let adjacency t id ~out =
  match Hashtbl.find_opt t.nodes_by_id id with
  | None -> None
  | Some h ->
      let b = t.base and s = t.base.snap in
      let from_base = ref [] in
      (match h with
      | Nnode _ -> ()
      | Bnode i ->
          let visit e other =
            if not t.dead_edge.(e) then
              from_base := (b.edge_ids.(e), b.edge_labels.(e), b.node_ids.(other)) :: !from_base
          in
          if out then Snapshot.iter_out s i visit else Snapshot.iter_in s i visit);
      let mine r = Const.equal (if out then r.e_src else r.e_dst) id in
      let from_new =
        List.rev t.new_edges
        |> List.filter_map (fun r ->
               if mine r then Some (r.e_id, r.e_label, if out then r.e_dst else r.e_src) else None)
      in
      Some (List.rev !from_base @ from_new)

let out_edges t id = adjacency t id ~out:true
let in_edges t id = adjacency t id ~out:false

(* ---------------- Commit: incremental re-freeze ----------------------- *)

type reuse = { reused : string list; rebuilt : string list }

let reuse_ratio r =
  let k = List.length r.reused and n = List.length r.reused + List.length r.rebuilt in
  if n = 0 then 1.0 else float_of_int k /. float_of_int n

let all_columns =
  [
    "node_ids"; "node_labels"; "node_props"; "node_label_universe"; "node_label_bits";
    "edge_ids"; "edge_labels"; "edge_props"; "edge_label_universe"; "esrc"; "edst"; "elabel";
    "out_off"; "out_adj"; "in_off"; "in_adj"; "stats";
  ]

let sorted_props assoc =
  let a = Array.of_list assoc in
  Array.sort (fun (p, _) (q, _) -> Const.compare p q) a;
  a

(* Universe extension: the base id table plus fresh ids for labels the
   delta introduced, append-only so surviving interned columns stay
   valid. *)
let extend_universe univ fresh_labels =
  let tbl = Hashtbl.create (Array.length univ * 2 + 16) in
  Array.iteri (fun i c -> Hashtbl.replace tbl c i) univ;
  let extras = ref [] in
  List.iter
    (fun c ->
      if not (Hashtbl.mem tbl c) then begin
        Hashtbl.replace tbl c (Hashtbl.length tbl);
        extras := c :: !extras
      end)
    fresh_labels;
  let univ' =
    if !extras = [] then univ else Array.append univ (Array.of_list (List.rev !extras))
  in
  (univ', tbl)

let commit t =
  if t.ops = 0 then (t.base, { reused = all_columns; rebuilt = [] })
  else begin
    let b = t.base in
    let s = b.snap in
    let n0 = s.Snapshot.num_nodes and m0 = s.Snapshot.num_edges in
    let new_nodes = List.rev t.new_nodes and new_edges = List.rev t.new_edges in
    let nodes_deleted = t.n_dead_nodes > 0 in
    let nodes_added = new_nodes <> [] in
    let edges_deleted = t.n_dead_edges > 0 in
    let edges_added = new_edges <> [] in
    let node_struct = nodes_deleted || nodes_added in
    let edge_struct = edges_deleted || edges_added in
    let renumber = nodes_deleted in
    let reused = ref [] and rebuilt = ref [] in
    let col name shared = if shared then reused := name :: !reused else rebuilt := name :: !rebuilt in
    (* Survivor renumbering: base node v keeps v, or compacts past the
       dead; new nodes append after the survivors. *)
    let survivors_n = n0 - t.n_dead_nodes in
    let remap =
      if renumber then begin
        let r = Array.make n0 (-1) in
        let k = ref 0 in
        for v = 0 to n0 - 1 do
          if not t.dead_node.(v) then begin
            r.(v) <- !k;
            incr k
          end
        done;
        r
      end
      else [||]
    in
    let final_of_base v = if renumber then remap.(v) else v in
    let n1 = survivors_n + List.length new_nodes in
    let node_ids, node_labels =
      if not node_struct then begin
        col "node_ids" true;
        col "node_labels" true;
        (b.node_ids, b.node_labels)
      end
      else begin
        col "node_ids" false;
        col "node_labels" false;
        let ids = Array.make (max n1 1) Const.Bottom in
        let labs = Array.make (max n1 1) Const.Bottom in
        for v = 0 to n0 - 1 do
          if not t.dead_node.(v) then begin
            let k = final_of_base v in
            ids.(k) <- b.node_ids.(v);
            labs.(k) <- b.node_labels.(v)
          end
        done;
        List.iteri
          (fun i r ->
            let k = survivors_n + i in
            r.n_final <- k;
            ids.(k) <- r.n_id;
            labs.(k) <- r.n_label)
          new_nodes;
        (Array.sub ids 0 n1, Array.sub labs 0 n1)
      end
    in
    (* Assign finals even when node columns were reused (no adds, no
       deletes means every base index is its own final; nothing to do). *)
    let node_props =
      if (not node_struct) && Hashtbl.length t.bprops_n = 0 then begin
        col "node_props" true;
        b.node_props
      end
      else begin
        col "node_props" false;
        let props = Array.make (max n1 1) [||] in
        for v = 0 to n0 - 1 do
          if not t.dead_node.(v) then
            props.(final_of_base v) <-
              (match Hashtbl.find_opt t.bprops_n v with
              | Some assoc -> sorted_props assoc
              | None -> b.node_props.(v))
        done;
        List.iter (fun r -> props.(r.n_final) <- sorted_props r.n_props) new_nodes;
        Array.sub props 0 n1
      end
    in
    let node_label_univ, ntbl =
      extend_universe b.node_label_univ (List.map (fun r -> r.n_label) new_nodes)
    in
    col "node_label_universe" (node_label_univ == b.node_label_univ);
    let num_node_labels = Array.length node_label_univ in
    let node_label_counts =
      if not node_struct then s.Snapshot.stats.Snapshot.node_label_counts
      else begin
        let counts = Array.make num_node_labels 0 in
        Array.blit s.Snapshot.stats.Snapshot.node_label_counts 0 counts 0
          (Array.length s.Snapshot.stats.Snapshot.node_label_counts);
        for v = 0 to n0 - 1 do
          if t.dead_node.(v) then begin
            let l = Hashtbl.find ntbl b.node_labels.(v) in
            counts.(l) <- counts.(l) - 1
          end
        done;
        List.iter
          (fun r ->
            let l = Hashtbl.find ntbl r.n_label in
            counts.(l) <- counts.(l) + 1)
          new_nodes;
        counts
      end
    in
    let node_label_bits =
      if not node_struct then begin
        col "node_label_bits" true;
        s.Snapshot.node_label_bits
      end
      else begin
        col "node_label_bits" false;
        let bits = Array.init num_node_labels (fun _ -> B.raw_create (max n1 1)) in
        Array.iteri (fun v l -> B.raw_add bits.(Hashtbl.find ntbl l) v) node_labels;
        bits
      end
    in
    (* Edge columns: any membership change or node renumbering forces a
       rebuild (endpoint indices shift); otherwise everything is shared
       and label ids stay valid because universes only append. *)
    let edge_cols_fresh = edge_struct || renumber in
    let edge_label_univ, etbl =
      extend_universe b.edge_label_univ (List.map (fun r -> r.e_label) new_edges)
    in
    col "edge_label_universe" (edge_label_univ == b.edge_label_univ);
    let num_labels = Array.length edge_label_univ in
    let m1 = m0 - t.n_dead_edges + List.length new_edges in
    let final_of_node_id id =
      match Hashtbl.find t.nodes_by_id id with
      | Bnode v -> final_of_base v
      | Nnode r -> r.n_final
    in
    let esrc, edst, elabel, edge_ids, edge_labels =
      if not edge_cols_fresh then begin
        List.iter (fun c -> col c true) [ "esrc"; "edst"; "elabel"; "edge_ids"; "edge_labels" ];
        (s.Snapshot.esrc, s.Snapshot.edst, s.Snapshot.elabel, b.edge_ids, b.edge_labels)
      end
      else begin
        List.iter (fun c -> col c false) [ "esrc"; "edst"; "elabel"; "edge_ids"; "edge_labels" ];
        let esrc = Array.make (max m1 1) 0 and edst = Array.make (max m1 1) 0 in
        let elabel = Array.make (max m1 1) 0 in
        let ids = Array.make (max m1 1) Const.Bottom in
        let labs = Array.make (max m1 1) Const.Bottom in
        let k = ref 0 in
        for e = 0 to m0 - 1 do
          if not t.dead_edge.(e) then begin
            esrc.(!k) <- final_of_base s.Snapshot.esrc.(e);
            edst.(!k) <- final_of_base s.Snapshot.edst.(e);
            elabel.(!k) <- s.Snapshot.elabel.(e);
            ids.(!k) <- b.edge_ids.(e);
            labs.(!k) <- b.edge_labels.(e);
            incr k
          end
        done;
        List.iter
          (fun r ->
            esrc.(!k) <- final_of_node_id r.e_src;
            edst.(!k) <- final_of_node_id r.e_dst;
            elabel.(!k) <- Hashtbl.find etbl r.e_label;
            ids.(!k) <- r.e_id;
            labs.(!k) <- r.e_label;
            incr k)
          new_edges;
        ( Array.sub esrc 0 m1,
          Array.sub edst 0 m1,
          Array.sub elabel 0 m1,
          Array.sub ids 0 m1,
          Array.sub labs 0 m1 )
      end
    in
    let edge_props =
      if (not edge_cols_fresh) && Hashtbl.length t.bprops_e = 0 then begin
        col "edge_props" true;
        b.edge_props
      end
      else begin
        col "edge_props" false;
        let props = Array.make (max m1 1) [||] in
        let k = ref 0 in
        for e = 0 to m0 - 1 do
          if not t.dead_edge.(e) then begin
            props.(!k) <-
              (match Hashtbl.find_opt t.bprops_e e with
              | Some assoc -> sorted_props assoc
              | None -> b.edge_props.(e));
            incr k
          end
        done;
        List.iter
          (fun r ->
            props.(!k) <- sorted_props r.e_props;
            incr k)
          new_edges;
        Array.sub props 0 m1
      end
    in
    let edge_label_counts =
      if not edge_struct then s.Snapshot.stats.Snapshot.edge_label_counts
      else begin
        let counts = Array.make num_labels 0 in
        Array.blit s.Snapshot.stats.Snapshot.edge_label_counts 0 counts 0
          (Array.length s.Snapshot.stats.Snapshot.edge_label_counts);
        for e = 0 to m0 - 1 do
          if t.dead_edge.(e) then begin
            let l = s.Snapshot.elabel.(e) in
            counts.(l) <- counts.(l) - 1
          end
        done;
        List.iter
          (fun r ->
            let l = Hashtbl.find etbl r.e_label in
            counts.(l) <- counts.(l) + 1)
          new_edges;
        counts
      end
    in
    (* CSR: untouched edges with stable numbering reuse everything; node
       appends only extend the offset arrays (new nodes have degree 0)
       while sharing the packed adjacency; anything else re-packs. *)
    let out_off, out_eid, out_nbr, in_off, in_eid, in_nbr =
      if (not edge_struct) && not renumber then
        if not nodes_added then begin
          List.iter (fun c -> col c true) [ "out_off"; "out_adj"; "in_off"; "in_adj" ];
          ( s.Snapshot.out_off, s.Snapshot.out_eid, s.Snapshot.out_nbr,
            s.Snapshot.in_off, s.Snapshot.in_eid, s.Snapshot.in_nbr )
        end
        else begin
          List.iter (fun c -> col c false) [ "out_off"; "in_off" ];
          List.iter (fun c -> col c true) [ "out_adj"; "in_adj" ];
          let extend off =
            Array.init (n1 + 1) (fun v -> if v <= n0 then off.(v) else off.(n0))
          in
          ( extend s.Snapshot.out_off, s.Snapshot.out_eid, s.Snapshot.out_nbr,
            extend s.Snapshot.in_off, s.Snapshot.in_eid, s.Snapshot.in_nbr )
        end
      else begin
        List.iter (fun c -> col c false) [ "out_off"; "out_adj"; "in_off"; "in_adj" ];
        Snapshot.pack_csr n1 esrc edst
      end
    in
    let stats =
      if (not node_struct) && not edge_struct then begin
        col "stats" true;
        s.Snapshot.stats
      end
      else begin
        col "stats" false;
        Snapshot.stats_of_columns ~num_nodes:n1 ~out_off ~in_off ~edge_label_counts
          ~node_label_counts
      end
    in
    let label_sat =
      if edge_label_univ == b.edge_label_univ then s.Snapshot.label_sat
      else Snapshot.const_label_sat edge_label_univ
    in
    let node_label_sat =
      if node_label_univ == b.node_label_univ then s.Snapshot.node_label_sat
      else Snapshot.const_label_sat node_label_univ
    in
    let node_atom v = function
      | Atom.Label l -> Const.equal node_labels.(v) l
      | Atom.Prop (p, c) -> (
          match Property_graph.lookup node_props.(v) p with
          | Some w -> Const.equal c w
          | None -> false)
      | Atom.Feature _ -> false
    in
    let edge_atom e = function
      | Atom.Label l -> Const.equal edge_labels.(e) l
      | Atom.Prop (p, c) -> (
          match Property_graph.lookup edge_props.(e) p with
          | Some w -> Const.equal c w
          | None -> false)
      | Atom.Feature _ -> false
    in
    let snap' =
      {
        Snapshot.num_nodes = n1;
        num_edges = m1;
        esrc;
        edst;
        out_off;
        out_eid;
        out_nbr;
        in_off;
        in_eid;
        in_nbr;
        num_labels;
        elabel;
        label_names = Array.map Const.to_string edge_label_univ;
        label_sat;
        num_node_labels;
        node_label_names = Array.map Const.to_string node_label_univ;
        node_label_sat;
        node_label_bits;
        node_atom;
        edge_atom;
        node_name = (fun v -> Const.to_string node_ids.(v));
        edge_name = (fun e -> Const.to_string edge_ids.(e));
        stats;
        epoch = Snapshot.fresh_epoch ();
      }
    in
    ( {
        snap = snap';
        node_ids;
        node_labels;
        node_props;
        edge_ids;
        edge_labels;
        edge_props;
        edge_label_univ;
        node_label_univ;
      },
      { reused = List.rev !reused; rebuilt = List.rev !rebuilt } )
  end

(** Atomic tests of the Section 4 regular-expression grammars. *)

type t =
  | Label of Const.t  (** ℓ — the node/edge label equals ℓ *)
  | Prop of Const.t * Const.t  (** (p = v) — property graphs *)
  | Feature of int * Const.t  (** (f_i = v), 1-based — vector-labeled graphs *)

(** [label s] is [Label (Str s)]. *)
val label : string -> t

(** [prop p v] is [Prop (Str p, v)]. *)
val prop : string -> Const.t -> t

(** 1-based feature test; raises on [i < 1]. *)
val feature : int -> Const.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string

(** Like {!to_string} but in the concrete regex syntax: string constants
    that would not re-lex as themselves (spaces, operator characters,
    numeric-looking strings, feature-shaped property names) are
    single-quoted so the output round-trips through the regex parser. *)
val to_query_string : t -> string

val pp : Format.formatter -> t -> unit

(** Destination-blocked edge partition over a frozen {!Snapshot} — the
    cache-blocking layout and the stepping stone to sharding.

    Nodes are grouped into contiguous blocks of [2^block_bits] ids;
    every edge is filed under the block of its *destination*. Scanning
    one block's edges touches destination state confined to one block —
    a working set sized to stay cache-resident — which is the access
    pattern of blocked push-style traversals (and, one level up, the
    unit of work a sharded engine would assign per worker).

    Renumbering ({!Renumber}) composes: after a degree or BFS
    permutation the hot destinations share low ids, so the bulk of the
    edge mass lands in the first few blocks and a blocked sweep walks
    them sequentially.

    The partition is a view — it holds the snapshot and two index
    arrays; building is one O(n + m) counting sort. *)

type t

(** [build ?block_bits s] — default [block_bits] is 15 (32768 nodes per
    block: 8-byte-per-node state fits a 256 KiB L2). *)
val build : ?block_bits:int -> Snapshot.t -> t

val num_blocks : t -> int
val block_bits : t -> int

(** Nodes per block ([2^block_bits]). *)
val block_size : t -> int

(** Block holding node [v]. *)
val block_of_node : t -> int -> int

(** Edges filed under [block] (destination in the block), ascending
    edge id. *)
val edges_in_block : t -> int -> int

(** [iter_block p ~block f] calls [f e src dst] for every edge of the
    block, ascending edge id. *)
val iter_block : t -> block:int -> (int -> int -> int -> unit) -> unit

(** Every edge appears in exactly one block; [fold_blocks] visits the
    blocks ascending. *)
val fold_blocks : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** Summary for [gqkg stats]: block geometry, edge mass distribution
    over blocks (min/median/max edges per block), and the imbalance
    ratio max/mean — the number a sharding layer would watch. *)
val describe : t -> string

(* Typed mutations over property graphs: the write-path vocabulary shared
   by the journal (durable replay log), the delta overlay (in-memory
   accumulation) and the CLI mutation scripts.

   The surface follows the CREATE/MERGE/SET/REMOVE/DELETE cues of the
   openCypher grammar (Apache AGE; SNIPPETS.md): [Add_*] creates and
   fails on an existing id, [Merge_*] matches-or-creates (a no-op when a
   live object with that id already exists), [Set_*_prop] upserts one
   property, [Del_*_prop] removes one (absent properties are a no-op),
   and [Del_node] cascades over incident edges.

   One op per line, whitespace-separated tokens:

     node <id> <label>              create a node
     mergenode <id> <label>         create the node unless it exists
     edge <id> <src> <dst> <label>  create an edge
     mergeedge <id> <src> <dst> <label>
     nprop <id> <prop>=<value>      set a node property
     eprop <id> <prop>=<value>      set an edge property
     delnprop <id> <prop>           remove a node property
     deleprop <id> <prop>           remove an edge property
     delnode <id>                   delete a node (and incident edges)
     deledge <id>                   delete an edge *)

type t =
  | Add_node of { id : Const.t; label : Const.t }
  | Merge_node of { id : Const.t; label : Const.t }
  | Add_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Merge_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Set_node_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Set_edge_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Del_node_prop of { id : Const.t; prop : Const.t }
  | Del_edge_prop of { id : Const.t; prop : Const.t }
  | Del_node of { id : Const.t }
  | Del_edge of { id : Const.t }

exception Op_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Op_error { line; message })) fmt

let to_line = function
  | Add_node { id; label } -> Printf.sprintf "node %s %s" (Const.to_string id) (Const.to_string label)
  | Merge_node { id; label } ->
      Printf.sprintf "mergenode %s %s" (Const.to_string id) (Const.to_string label)
  | Add_edge { id; src; dst; label } ->
      Printf.sprintf "edge %s %s %s %s" (Const.to_string id) (Const.to_string src)
        (Const.to_string dst) (Const.to_string label)
  | Merge_edge { id; src; dst; label } ->
      Printf.sprintf "mergeedge %s %s %s %s" (Const.to_string id) (Const.to_string src)
        (Const.to_string dst) (Const.to_string label)
  | Set_node_prop { id; prop; value } ->
      Printf.sprintf "nprop %s %s=%s" (Const.to_string id) (Const.to_string prop) (Const.to_string value)
  | Set_edge_prop { id; prop; value } ->
      Printf.sprintf "eprop %s %s=%s" (Const.to_string id) (Const.to_string prop) (Const.to_string value)
  | Del_node_prop { id; prop } ->
      Printf.sprintf "delnprop %s %s" (Const.to_string id) (Const.to_string prop)
  | Del_edge_prop { id; prop } ->
      Printf.sprintf "deleprop %s %s" (Const.to_string id) (Const.to_string prop)
  | Del_node { id } -> Printf.sprintf "delnode %s" (Const.to_string id)
  | Del_edge { id } -> Printf.sprintf "deledge %s" (Const.to_string id)

let parse_prop ~line token =
  match String.index_opt token '=' with
  | Some i when i > 0 && i < String.length token - 1 ->
      ( Const.of_string (String.sub token 0 i),
        Const.of_string (String.sub token (i + 1) (String.length token - i - 1)) )
  | _ -> fail line "malformed property %S" token

let of_line ~line text =
  let tokens = String.split_on_char ' ' text |> List.filter (fun t -> t <> "") in
  match tokens with
  | [] -> None
  | [ "node"; id; label ] -> Some (Add_node { id = Const.of_string id; label = Const.of_string label })
  | [ "mergenode"; id; label ] ->
      Some (Merge_node { id = Const.of_string id; label = Const.of_string label })
  | [ "edge"; id; src; dst; label ] ->
      Some
        (Add_edge
           {
             id = Const.of_string id;
             src = Const.of_string src;
             dst = Const.of_string dst;
             label = Const.of_string label;
           })
  | [ "mergeedge"; id; src; dst; label ] ->
      Some
        (Merge_edge
           {
             id = Const.of_string id;
             src = Const.of_string src;
             dst = Const.of_string dst;
             label = Const.of_string label;
           })
  | [ "nprop"; id; kv ] ->
      let prop, value = parse_prop ~line kv in
      Some (Set_node_prop { id = Const.of_string id; prop; value })
  | [ "eprop"; id; kv ] ->
      let prop, value = parse_prop ~line kv in
      Some (Set_edge_prop { id = Const.of_string id; prop; value })
  | [ "delnprop"; id; prop ] ->
      Some (Del_node_prop { id = Const.of_string id; prop = Const.of_string prop })
  | [ "deleprop"; id; prop ] ->
      Some (Del_edge_prop { id = Const.of_string id; prop = Const.of_string prop })
  | [ "delnode"; id ] -> Some (Del_node { id = Const.of_string id })
  | [ "deledge"; id ] -> Some (Del_edge { id = Const.of_string id })
  | keyword :: _ -> fail line "unknown or malformed operation %S" keyword

(* Classification used by overlay/commit bookkeeping: does the op (when
   accepted) touch graph topology, or only the property store? *)
let is_structural = function
  | Add_node _ | Merge_node _ | Add_edge _ | Merge_edge _ | Del_node _ | Del_edge _ -> true
  | Set_node_prop _ | Set_edge_prop _ | Del_node_prop _ | Del_edge_prop _ -> false

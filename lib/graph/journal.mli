(** Append-only journal (write-ahead log) for property graphs: the
    storage lifecycle of Section 2.1 — durable, growing and shrinking by
    explicit operations, rebuildable by replay.

    The op type is {!Mutation.t} re-exported (same constructors), so the
    journal, the delta overlay and the CLI mutation scripts share one
    vocabulary; replay here is the from-scratch reference semantics the
    incremental epoch-commit path is property-tested against. *)

type op = Mutation.t =
  | Add_node of { id : Const.t; label : Const.t }
  | Merge_node of { id : Const.t; label : Const.t }  (** create unless a live node exists *)
  | Add_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Merge_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Set_node_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Set_edge_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Del_node_prop of { id : Const.t; prop : Const.t }  (** absent property: no-op *)
  | Del_edge_prop of { id : Const.t; prop : Const.t }
  | Del_node of { id : Const.t }  (** deletes incident edges too *)
  | Del_edge of { id : Const.t }

(** [file] is the journal path when the error was raised while reading
    or validating against a file-backed store, [None] for in-memory
    text — the CLI renders ["file:line: message"] GQ048 diagnostics
    from it. *)
exception Replay_error of { file : string option; line : int; message : string }

(** One line per op, no trailing newline. *)
val op_to_line : op -> string

(** [None] on blank lines; raises {!Replay_error} on malformed input. *)
val op_of_line : ?file:string -> line:int -> string -> op option

(** Replay a history into a graph. Raises {!Replay_error} on invalid
    sequences (duplicate adds, references to missing objects). *)
val replay_ops : ?file:string -> op list -> Property_graph.t

(** Parse a journal text; [tolerate_partial] ignores a torn final line
    (crash recovery). *)
val ops_of_string : ?file:string -> ?tolerate_partial:bool -> string -> op list

val ops_to_string : op list -> string

(** Read and parse a journal file; {!Replay_error}s carry the path.
    Without [tolerate_partial] a torn final line (the only damage an
    append-only crash can cause) is an error pointing at that line. *)
val load_ops : ?tolerate_partial:bool -> string -> op list

(** [load_ops] followed by {!replay_ops}: the materialized state of a
    journal file. *)
val load : ?tolerate_partial:bool -> string -> Property_graph.t

(** The minimal history recreating the graph's current state. *)
val ops_of_graph : Property_graph.t -> op list

(** {2 The durable store} *)

type store

(** Open (or create) a journal file, validating it by replay. Raises
    {!Replay_error} with file context on malformed or torn input
    ([tolerate_partial] skips a torn final line). *)
val open_store : ?tolerate_partial:bool -> string -> store

(** Validate the operation against the current state, append it durably
    (flushed), and invalidate the cached graph. Raises {!Replay_error}
    on invalid operations — nothing is written in that case. *)
val append : store -> op -> unit

(** The materialized current state (cached between mutations). *)
val graph : store -> Property_graph.t

val num_ops : store -> int

(** Rewrite the journal as the minimal history of the current state. *)
val checkpoint : store -> unit

val close_store : store -> unit

(** Labeled graphs L = (N, E, ρ, λ): multigraphs where every node and
    edge carries one label from Const (Section 3; Figure 2(a)). *)

type t

(** The underlying multigraph. *)
val base : t -> Multigraph.t

val num_nodes : t -> int
val num_edges : t -> int

(** λ(n) for a node. *)
val node_label : t -> int -> Const.t

(** λ(e) for an edge. *)
val edge_label : t -> int -> Const.t

val node_id : t -> int -> Const.t
val edge_id : t -> int -> Const.t
val endpoints : t -> int -> int * int
val out_edges : t -> int -> (int * int) array
val in_edges : t -> int -> (int * int) array
val find_node : t -> Const.t -> int option
val node_of_exn : t -> Const.t -> int

(** Node indexes carrying the label, ascending. *)
val nodes_with_label : t -> Const.t -> int list

val edges_with_label : t -> Const.t -> int list

(** Distinct labels with multiplicities, sorted by label. *)
val node_label_histogram : t -> (Const.t * int) list

val edge_label_histogram : t -> (Const.t * int) list

(** Atomic-test oracle: only [Label] atoms can hold on this model. *)
val node_satisfies_atom : t -> int -> Atom.t -> bool

val edge_satisfies_atom : t -> int -> Atom.t -> bool

module Builder : sig
  type graph = t
  type t

  val create : unit -> t

  (** Add (or find) a node; a re-added identifier keeps its first label. *)
  val add_node : t -> Const.t -> label:Const.t -> int

  val relabel_node : t -> int -> label:Const.t -> unit
  val add_edge : t -> Const.t -> src:int -> dst:int -> label:Const.t -> int
  val fresh_edge : t -> src:int -> dst:int -> label:Const.t -> int
  val find_node : t -> Const.t -> int option
  val freeze : t -> graph
end

(** Build from (id, label) nodes and (id, src-id, dst-id, label) edges;
    endpoints must be declared as nodes. *)
val of_lists :
  nodes:(Const.t * Const.t) list -> edges:(Const.t * Const.t * Const.t * Const.t) list -> t

(** Assemble from a multigraph and label arrays (lengths must match). *)
val make : base:Multigraph.t -> node_labels:Const.t array -> edge_labels:Const.t array -> t

(** Versioned, checksummed binary persistence for {!Snapshot}.

    A `.gqs` file is a direct image of the snapshot's flat columns:

    {v
    "GQKGSNAP"  magic (8 bytes)
    u32 version, u32 flags          (bit 0: permutation present,
                                     bit 1: synthetic names)
    i64 num_nodes, i64 num_edges
    u32 num_labels, u32 num_node_labels
    u32 section_count, u32 reserved
    i64 checksum, i64 reserved      (64-byte header total)
    section table: section_count x (u32 id, u32 elem_width,
                                    i64 byte offset, i64 byte length)
    section payloads, little-endian fixed-width elements
    v}

    Sections carry the endpoint columns (esrc/edst), the edge-label
    column, both CSR directions as offset+edge-id pairs (the neighbour
    columns are a gather [nbr.(i) = edst.(eid.(i))] recomputed at load
    — 8 bytes/edge cheaper on disk), interned label-name string tables,
    node-label membership bitmaps, freeze-time stats, optional node and
    edge name tables, and the optional renumbering permutation.

    Integer sections pick their element width per section (4 bytes when
    every value fits, 8 otherwise), so bytes-per-edge tracks the graph's
    actual id range rather than the worst case.

    Loading reads the file in one buffered pass and materializes each
    section with a bounds-checked fixed-width decode — no parsing, no
    hashing, no CSR rebuild; it is O(file size) with small constants
    where parse + freeze is O(text) with string-machinery constants.

    {2 What does not persist}

    Closures cannot be serialized, so a loaded snapshot answers [Label]
    atoms only (via the interned tables and
    {!Snapshot.const_label_sat} over names re-parsed with
    [Const.of_string]); [Prop] and [Feature] atoms test false. The RDF
    model's full-IRI label rule degrades to local-name equality — the
    local names in the interned tables still round-trip. Name closures
    are persisted as string tables unless they are the synthetic
    ["n<id>"]/["e<id>"] generator names, which are detected (or forced
    with [`Drop]) and re-synthesized at load through the permutation. *)

(** Structured load failure: every malformed input — short file, bad
    magic, unsupported version, out-of-bounds section, inconsistent
    column, checksum mismatch — raises this, never an [Invalid_argument]
    or a segfault. The CLI maps it to diagnostic GQ047, exit 2. *)
exception Corrupt of string

val magic : string
val version : int

(** Cheap sniff: does the file start with the snapshot magic? False on
    unreadable/short files. *)
val is_snapshot_file : string -> bool

type report = {
  file_bytes : int;
  sections : int;
  bytes_per_edge : float;  (** file size / max(1, edges) *)
  checksum : int;
  renumbered : bool;  (** a non-identity permutation was stored *)
  names_kept : bool;  (** name string tables were written *)
}

(** [save ?names ?perm ~path s] writes [s]. [perm] (from
    {!Renumber.renumber}) records how [s]'s internal ids map back to
    the pre-renumbering ids; identity permutations are elided. [names]:
    [`Auto] (default) detects synthetic generator names and drops the
    tables when lossless to do so, [`Keep] always writes them, [`Drop]
    never does (loaded names become ["n<old-id>"]). *)
val save :
  ?names:[ `Auto | `Keep | `Drop ] ->
  ?perm:Renumber.permutation ->
  path:string ->
  Snapshot.t ->
  report

(** Load a snapshot; raises {!Corrupt} on any malformed input. *)
val load : string -> Snapshot.t

(** Like {!load}, also returning the stored permutation (None when the
    file was saved unrenumbered) — tests and benches use it to map
    internal ids across layouts. *)
val load_with_perm : string -> Snapshot.t * Renumber.permutation option

type info = {
  i_version : int;
  i_nodes : int;
  i_edges : int;
  i_labels : int;
  i_node_labels : int;
  i_renumbered : bool;
  i_synthetic_names : bool;
  i_sections : int;
  i_file_bytes : int;
}

(** Header peek without decoding payloads; raises {!Corrupt} on a file
    that is not a snapshot. *)
val read_info : string -> info

(** Typed mutations over property graphs — the write-path vocabulary of
    the Section 2.1 storage lifecycle, shared by the durable journal
    ({!Journal}), the in-memory delta overlay ({!Overlay}) and the CLI's
    [gqkg mutate] scripts.

    Semantics (openCypher CREATE/MERGE/SET/REMOVE/DELETE cues):
    [Add_*] creates and is invalid when a live object with that id
    already exists; [Merge_*] matches-or-creates by id (a no-op on a
    live match, even when the labels differ); [Set_*_prop] upserts;
    [Del_*_prop] removes (absent property: no-op); [Del_node] cascades
    over incident edges. Deleting an object frees its id for re-use. *)

type t =
  | Add_node of { id : Const.t; label : Const.t }
  | Merge_node of { id : Const.t; label : Const.t }
  | Add_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Merge_edge of { id : Const.t; src : Const.t; dst : Const.t; label : Const.t }
  | Set_node_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Set_edge_prop of { id : Const.t; prop : Const.t; value : Const.t }
  | Del_node_prop of { id : Const.t; prop : Const.t }
  | Del_edge_prop of { id : Const.t; prop : Const.t }
  | Del_node of { id : Const.t }
  | Del_edge of { id : Const.t }

(** Raised by {!of_line} on malformed text; the journal wraps it with
    file context. *)
exception Op_error of { line : int; message : string }

(** One line per op, no trailing newline. *)
val to_line : t -> string

(** [None] on blank lines; raises {!Op_error} on malformed input. *)
val of_line : line:int -> string -> t option

(** [true] iff the op (when accepted) changes graph topology — node or
    edge membership — rather than only the property store. *)
val is_structural : t -> bool

(* Property graphs P = (N, E, ρ, λ, σ) of Section 3: a labeled graph
   extended with a partial function σ : (N ∪ E) × Const → Const giving the
   value of property p for object o.  Each object has finitely many
   properties (stored as sorted association arrays).  Figure 2(b) is an
   instance. *)

type properties = (Const.t * Const.t) array

type t = { labeled : Labeled_graph.t; node_props : properties array; edge_props : properties array }

let labeled g = g.labeled
let base g = Labeled_graph.base g.labeled
let num_nodes g = Labeled_graph.num_nodes g.labeled
let num_edges g = Labeled_graph.num_edges g.labeled
let node_label g n = Labeled_graph.node_label g.labeled n
let edge_label g e = Labeled_graph.edge_label g.labeled e
let node_id g n = Labeled_graph.node_id g.labeled n
let edge_id g e = Labeled_graph.edge_id g.labeled e
let endpoints g e = Labeled_graph.endpoints g.labeled e
let out_edges g n = Labeled_graph.out_edges g.labeled n
let in_edges g n = Labeled_graph.in_edges g.labeled n
let find_node g id = Labeled_graph.find_node g.labeled id
let node_of_exn g id = Labeled_graph.node_of_exn g.labeled id

let lookup props p =
  let n = Array.length props in
  let rec loop i = if i = n then None else begin
      let q, v = props.(i) in
      if Const.equal p q then Some v else loop (i + 1)
    end
  in
  loop 0

(* σ(o, p) for a node object. *)
let node_property g n p = lookup g.node_props.(n) p

(* σ(o, p) for an edge object. *)
let edge_property g e p = lookup g.edge_props.(e) p

let node_properties g n = g.node_props.(n)
let edge_properties g e = g.edge_props.(e)

let node_satisfies_atom g n = function
  | Atom.Label l -> Const.equal (node_label g n) l
  | Atom.Prop (p, v) -> ( match node_property g n p with Some w -> Const.equal v w | None -> false)
  | Atom.Feature _ -> false

let edge_satisfies_atom g e = function
  | Atom.Label l -> Const.equal (edge_label g e) l
  | Atom.Prop (p, v) -> ( match edge_property g e p with Some w -> Const.equal v w | None -> false)
  | Atom.Feature _ -> false

(* Distinct property names appearing on nodes and on edges, in a canonical
   order: this is the schema used when flattening to a vector-labeled
   graph (Section 3's unification). *)
let property_schema g =
  let module S = Set.Make (Const) in
  let collect props_array =
    Array.fold_left
      (fun acc props -> Array.fold_left (fun acc (p, _) -> S.add p acc) acc props)
      S.empty props_array
  in
  let node_set = collect g.node_props and edge_set = collect g.edge_props in
  (S.elements node_set, S.elements edge_set)

module Builder = struct
  type graph = t

  type t = {
    labeled : Labeled_graph.Builder.t;
    node_props : (int, (Const.t * Const.t) list) Hashtbl.t;
    edge_props : (int, (Const.t * Const.t) list) Hashtbl.t;
  }

  let create () =
    { labeled = Labeled_graph.Builder.create (); node_props = Hashtbl.create 64; edge_props = Hashtbl.create 64 }

  let add_node b id ~label = Labeled_graph.Builder.add_node b.labeled id ~label
  let add_edge b id ~src ~dst ~label = Labeled_graph.Builder.add_edge b.labeled id ~src ~dst ~label
  let fresh_edge b ~src ~dst ~label = Labeled_graph.Builder.fresh_edge b.labeled ~src ~dst ~label
  let find_node b id = Labeled_graph.Builder.find_node b.labeled id

  let set tbl i p v =
    let existing = Option.value (Hashtbl.find_opt tbl i) ~default:[] in
    let without = List.filter (fun (q, _) -> not (Const.equal p q)) existing in
    Hashtbl.replace tbl i ((p, v) :: without)

  let set_node_property b n ~prop ~value = set b.node_props n prop value
  let set_edge_property b e ~prop ~value = set b.edge_props e prop value

  let freeze b =
    let labeled = Labeled_graph.Builder.freeze b.labeled in
    let fetch tbl i =
      match Hashtbl.find_opt tbl i with
      | None -> [||]
      | Some props ->
          let arr = Array.of_list props in
          Array.sort (fun (p, _) (q, _) -> Const.compare p q) arr;
          arr
    in
    ({
       labeled;
       node_props = Array.init (Labeled_graph.num_nodes labeled) (fetch b.node_props);
       edge_props = Array.init (Labeled_graph.num_edges labeled) (fetch b.edge_props);
     }
      : graph)
end

(* A labeled graph is a property graph with empty σ (the hierarchy of
   Section 3). *)
let of_labeled labeled =
  {
    labeled;
    node_props = Array.make (Labeled_graph.num_nodes labeled) [||];
    edge_props = Array.make (Labeled_graph.num_edges labeled) [||];
  }

(* Forgetting σ projects back to the labeled model. *)
let to_labeled g = g.labeled

(* The uniform query-engine view is {!Snapshot.of_property}. *)

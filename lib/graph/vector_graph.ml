(* Vector-labeled graphs V = (N, E, ρ, λ) of dimension d (Section 3):
   λ assigns to every node and edge a vector of d values from Const, with
   ⊥ marking absent entries.  This is the model that unifies labels and
   properties and feeds message-passing algorithms (WL, GNNs); Figure 2(c)
   is an instance.

   Feature indexes are 1-based in the public API, following the paper's
   (f_i = v) notation. *)

type t = {
  base : Multigraph.t;
  dimension : int;
  node_features : Const.t array array;
  edge_features : Const.t array array;
}

let base g = g.base
let dimension g = g.dimension
let num_nodes g = Multigraph.num_nodes g.base
let num_edges g = Multigraph.num_edges g.base
let node_id g n = Multigraph.node_id g.base n
let edge_id g e = Multigraph.edge_id g.base e
let endpoints g e = Multigraph.endpoints g.base e
let out_edges g n = Multigraph.out_edges g.base n
let in_edges g n = Multigraph.in_edges g.base n
let find_node g id = Multigraph.find_node g.base id

let node_vector g n = g.node_features.(n)
let edge_vector g e = g.edge_features.(e)

let check_index g i =
  if i < 1 || i > g.dimension then
    invalid_arg (Printf.sprintf "Vector_graph: feature index %d outside 1..%d" i g.dimension)

(* λ(n)_i with the paper's 1-based indexing. *)
let node_feature g n i =
  check_index g i;
  g.node_features.(n).(i - 1)

let edge_feature g e i =
  check_index g i;
  g.edge_features.(e).(i - 1)

let node_satisfies_atom g n = function
  | Atom.Feature (i, v) -> i >= 1 && i <= g.dimension && Const.equal g.node_features.(n).(i - 1) v
  | Atom.Label l ->
      (* Labels survive flattening as feature 1 (see [of_property]); keeping
         label tests meaningful makes the three models answer the same
         queries, which E3 checks. *)
      g.dimension >= 1 && Const.equal g.node_features.(n).(0) l
  | Atom.Prop _ -> false

let edge_satisfies_atom g e = function
  | Atom.Feature (i, v) -> i >= 1 && i <= g.dimension && Const.equal g.edge_features.(e).(i - 1) v
  | Atom.Label l -> g.dimension >= 1 && Const.equal g.edge_features.(e).(0) l
  | Atom.Prop _ -> false

let make ~base ~dimension ~node_features ~edge_features =
  if dimension < 1 then invalid_arg "Vector_graph.make: dimension must be >= 1";
  if Array.length node_features <> Multigraph.num_nodes base then
    invalid_arg "Vector_graph.make: node feature count";
  if Array.length edge_features <> Multigraph.num_edges base then
    invalid_arg "Vector_graph.make: edge feature count";
  let check v = if Array.length v <> dimension then invalid_arg "Vector_graph.make: bad vector width" in
  Array.iter check node_features;
  Array.iter check edge_features;
  { base; dimension; node_features; edge_features }

(* Flatten a property graph to a vector-labeled graph: feature 1 is the
   label; the remaining features are the property values under a fixed
   schema (the union of node and edge property names, nodes first), with ⊥
   where σ is undefined — exactly the construction visible in Figure 2(c).
   Returns the graph together with the schema so tests can be rewritten
   (the paper rewrites query (3) this way). *)
type schema = { feature_names : Const.t array }

let schema_feature_index schema name =
  let n = Array.length schema.feature_names in
  let rec loop i =
    if i = n then None
    else if Const.equal schema.feature_names.(i) name then Some (i + 2) (* 1-based, after label *)
    else loop (i + 1)
  in
  loop 0

let of_property pg =
  let node_names, edge_names = Property_graph.property_schema pg in
  let module S = Set.Make (Const) in
  let all = S.elements (S.union (S.of_list node_names) (S.of_list edge_names)) in
  let feature_names = Array.of_list all in
  let dimension = 1 + Array.length feature_names in
  let flatten label props =
    let v = Array.make dimension Const.bottom in
    v.(0) <- label;
    Array.iteri
      (fun i name ->
        match Property_graph.lookup props name with Some value -> v.(i + 1) <- value | None -> ())
      feature_names;
    v
  in
  let node_features =
    Array.init (Property_graph.num_nodes pg) (fun n ->
        flatten (Property_graph.node_label pg n) (Property_graph.node_properties pg n))
  in
  let edge_features =
    Array.init (Property_graph.num_edges pg) (fun e ->
        flatten (Property_graph.edge_label pg e) (Property_graph.edge_properties pg e))
  in
  ( { base = Property_graph.base pg; dimension; node_features; edge_features },
    { feature_names } )

(* Inverse of [of_property] for graphs built by it: feature 1 becomes the
   label, non-⊥ features become properties under the schema. *)
let to_property g schema =
  if g.dimension <> 1 + Array.length schema.feature_names then
    invalid_arg "Vector_graph.to_property: schema does not match dimension";
  let b = Property_graph.Builder.create () in
  for n = 0 to num_nodes g - 1 do
    ignore (Property_graph.Builder.add_node b (node_id g n) ~label:g.node_features.(n).(0))
  done;
  for e = 0 to num_edges g - 1 do
    let s, d = endpoints g e in
    ignore (Property_graph.Builder.add_edge b (edge_id g e) ~src:s ~dst:d ~label:g.edge_features.(e).(0))
  done;
  let restore set i features =
    Array.iteri
      (fun j name ->
        let v = features.(j + 1) in
        if not (Const.equal v Const.bottom) then set i ~prop:name ~value:v)
      schema.feature_names
  in
  for n = 0 to num_nodes g - 1 do
    restore (Property_graph.Builder.set_node_property b) n g.node_features.(n)
  done;
  for e = 0 to num_edges g - 1 do
    restore (Property_graph.Builder.set_edge_property b) e g.edge_features.(e)
  done;
  Property_graph.Builder.freeze b

(* A labeled graph is a 1-dimensional vector-labeled graph. *)
let of_labeled lg =
  let base = Labeled_graph.base lg in
  {
    base;
    dimension = 1;
    node_features = Array.init (Labeled_graph.num_nodes lg) (fun n -> [| Labeled_graph.node_label lg n |]);
    edge_features = Array.init (Labeled_graph.num_edges lg) (fun e -> [| Labeled_graph.edge_label lg e |]);
  }

(* The uniform query-engine view is {!Snapshot.of_vector}. *)

(** Plain-text serialization of property graphs and Graphviz DOT export.

    Format (one declaration per line; ['#'] starts a comment):
    {v
    node <id> <label> [<prop>=<value> ...]
    edge <id> <src-id> <dst-id> <label> [<prop>=<value> ...]
    v}
    Tokens are whitespace-separated and parsed with {!Const.of_string};
    edges may reference nodes declared later. *)

exception Parse_error of { file : string option; line : int; message : string }

(** ["file:line: message"] (or ["line N: message"] without a file) — the
    rendering the CLI shows for malformed input. *)
val error_to_string : file:string option -> line:int -> message:string -> string

(** Raises {!Parse_error} with a 1-based line number ([file = None]).
    Rejects re-declared node and edge ids (the builder would silently
    merge them) and edges referencing undeclared endpoints. *)
val property_graph_of_string : string -> Property_graph.t

val labeled_graph_of_string : string -> Labeled_graph.t

(** Deterministic rendering in declaration (index) order; a fixed point
    of parse ∘ render. *)
val property_graph_to_string : Property_graph.t -> string

val labeled_graph_to_string : Labeled_graph.t -> string

(** Order-insensitive canonical form (node and edge declarations
    sorted): the right equality after set-based round-trips (RDF). *)
val canonical_string : Property_graph.t -> string

(** Like {!property_graph_of_string}; {!Parse_error}s carry the path in
    [file]. *)
val load_property_graph : string -> Property_graph.t
val save_property_graph : string -> Property_graph.t -> unit

(** Graphviz digraph of the labeled view. *)
val to_dot : ?name:string -> Property_graph.t -> string

(* Atomic tests of the regular-expression grammars of Section 4:
   - [Label ℓ]      over labeled graphs (grammar (1));
   - [Prop (p, v)]  the (p = v) extension for property graphs;
   - [Feature (i, v)] the (f_i = v) extension for vector-labeled graphs,
     with the paper's 1-based feature indexing.
   Boolean combinations live in the regex layer; each data model only has
   to say whether a node or an edge satisfies an atom. *)

type t =
  | Label of Const.t
  | Prop of Const.t * Const.t
  | Feature of int * Const.t

let label s = Label (Const.str s)
let prop p v = Prop (Const.str p, v)

let feature i v =
  if i < 1 then invalid_arg "Atom.feature: features are 1-based";
  Feature (i, v)

let equal a b =
  match (a, b) with
  | Label x, Label y -> Const.equal x y
  | Prop (p, v), Prop (q, w) -> Const.equal p q && Const.equal v w
  | Feature (i, v), Feature (j, w) -> i = j && Const.equal v w
  | (Label _ | Prop _ | Feature _), _ -> false

let compare a b =
  let tag = function Label _ -> 0 | Prop _ -> 1 | Feature _ -> 2 in
  match (a, b) with
  | Label x, Label y -> Const.compare x y
  | Prop (p, v), Prop (q, w) ->
      let c = Const.compare p q in
      if c <> 0 then c else Const.compare v w
  | Feature (i, v), Feature (j, w) ->
      let c = Int.compare i j in
      if c <> 0 then c else Const.compare v w
  | _ -> Int.compare (tag a) (tag b)

let to_string = function
  | Label l -> Const.to_string l
  | Prop (p, v) -> Printf.sprintf "%s=%s" (Const.to_string p) (Const.to_string v)
  | Feature (i, v) -> Printf.sprintf "f%d=%s" i (Const.to_string v)

let pp ppf a = Fmt.string ppf (to_string a)

(* Concrete regex syntax with quoting, so printed atoms re-lex: a string
   constant is emitted bare only when it lexes as a single word AND
   [Const.of_string] maps it back to the same string (e.g. "30" or "3.5"
   would re-parse as numbers); everything else is single-quoted, which
   the parser reads back as a verbatim [Str].  Non-string constants use
   the plain rendering, which the parser's value lexer already accepts.
   A property name that looks like a feature test ("f2") is quoted so it
   is not re-parsed as one. *)
let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-' || c = ':'

let looks_like_feature s =
  String.length s >= 2
  && s.[0] = 'f'
  && (match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
     | Some i -> i >= 1
     | None -> false)

let quote_str s =
  if String.contains s '\'' then s (* unrepresentable; stay readable *)
  else "'" ^ s ^ "'"

let query_const ?(name_position = false) c =
  match c with
  | Const.Str s ->
      let bare =
        s <> ""
        && String.for_all is_word_char s
        && (match Const.of_string s with Const.Str s' -> String.equal s s' | _ -> false)
        && not (name_position && looks_like_feature s)
      in
      if bare then s else quote_str s
  | _ -> Const.to_string c

let to_query_string = function
  | Label l -> query_const l
  | Prop (p, v) -> Printf.sprintf "%s=%s" (query_const ~name_position:true p) (query_const v)
  | Feature (i, v) -> Printf.sprintf "f%d=%s" i (query_const v)

(** Delta overlay: a mutable batch of {!Mutation} ops over a frozen
    {!Snapshot}, answering membership/label/property/adjacency lookups
    as base ∪ additions ∖ deletions, and committing into a new snapshot
    epoch by incremental re-freeze — untouched columns are physically
    shared with the base instead of rebuilt.

    The overlay is single-writer: apply mutations from one thread, then
    {!commit}. Readers never see the overlay — they query the immutable
    base (or any pinned older epoch, see {!Epochs}).

    Numbering invariant (what makes incremental ≡ from-scratch): base
    survivors keep their base order, new objects are appended in
    insertion order — exactly the order {!Journal.replay_ops} produces,
    so a committed snapshot and a scratch rebuild of the same history
    number nodes and edges identically. Only the interned label
    universes may differ (a commit keeps stale entries at count 0 where
    a scratch freeze forgets them); query answers are unaffected. *)

type base
(** A snapshot plus the identity columns (ids, labels, properties as
    {!Const}s) a re-freeze needs. *)

val base_of_property : Property_graph.t -> base

(** From a bare snapshot (e.g. loaded from [.gqs]): ids come from the
    name closures, properties are empty (closures do not persist —
    matching reload semantics). Raises [Invalid_argument] when node
    labels are not exclusive (one per node), i.e. the snapshot did not
    come from a property/labeled/vector freeze. *)
val base_of_snapshot : Snapshot.t -> base

val snapshot : base -> Snapshot.t

(** Minimal {!Mutation} history recreating the base's state by replay
    (same shape as {!Journal.ops_of_graph}) — what [gqkg mutate
    --journal] persists. *)
val history : base -> Mutation.t list

type t

(** An empty overlay over [base]. *)
val create : base -> t

val base : t -> base

(** Ops applied so far (the overlay size reported by [gqkg stats]). *)
val size : t -> int

val live_nodes : t -> int
val live_edges : t -> int

(** Apply one mutation ({!Mutation} semantics: [Add_*] fails on a live
    id, [Merge_*] is match-or-create, [Del_node] cascades). Raises
    {!Journal.Replay_error} — with [file]/[line] context when given —
    on invalid ops; the overlay is unchanged in that case. *)
val apply : ?file:string -> ?line:int -> t -> Mutation.t -> unit

(** {2 Reads through the overlay (base ∪ adds ∖ deletes)} *)

val mem_node : t -> Const.t -> bool
val mem_edge : t -> Const.t -> bool
val node_label : t -> Const.t -> Const.t option
val node_prop : t -> Const.t -> Const.t -> Const.t option
val edge_prop : t -> Const.t -> Const.t -> Const.t option

(** Live out-edges of a node as [(edge id, label, dst id)], surviving
    base edges first (base order) then new edges (insertion order);
    [None] if the node is not live. [in_edges] mirrors it with src. *)
val out_edges : t -> Const.t -> (Const.t * Const.t * Const.t) list option

val in_edges : t -> Const.t -> (Const.t * Const.t * Const.t) list option

(** {2 Commit: incremental re-freeze} *)

(** Which of the snapshot's named columns the commit physically shared
    with the base and which it had to rebuild. *)
type reuse = { reused : string list; rebuilt : string list }

val reuse_ratio : reuse -> float

(** Freeze the overlay into a new snapshot (fresh epoch), sharing every
    column the delta did not touch: a props-only delta keeps the whole
    topology (CSR, endpoints, ids, bitmaps, stats); an adds-only delta
    keeps node columns it only extends; node deletions renumber and
    rebuild. An empty overlay returns the base itself (same epoch) with
    every column reused. The overlay must not be used afterwards. *)
val commit : t -> base * reuse

(** The uniform query-engine view over all Section 3 data models.

    Every model (labeled, property, vector-labeled, RDF) exposes itself
    as a value of this record: dense node/edge indexes, ρ, adjacency in
    both directions, and an oracle answering atomic tests. The entire
    Section 4 machinery is written once against it. *)

(** Optional label-interning fast path: maps each edge to a dense label
    id such that [Atom.Label] satisfaction is a pure function of the id
    ([edge_atom e (Label c) = label_sat (edge_label_id e) (Label c)]).
    The product kernel uses it to evaluate label-only tests once per
    label instead of once per edge. *)
type label_index = {
  num_labels : int;  (** label ids are [0 .. num_labels-1] *)
  edge_label_id : int -> int;
  label_sat : int -> Atom.t -> bool;
}

type t = {
  num_nodes : int;
  num_edges : int;
  endpoints : int -> int * int;  (** ρ(e) = (source, target) *)
  out_edges : int -> (int * int) array;  (** node → [(edge, head)] *)
  in_edges : int -> (int * int) array;  (** node → [(edge, tail)] *)
  node_atom : int -> Atom.t -> bool;
  edge_atom : int -> Atom.t -> bool;
  node_name : int -> string;  (** display name *)
  edge_name : int -> string;
  labels : label_index option;
}

val src : t -> int -> int
val dst : t -> int -> int

(** Intern the labels of [edge_label] over the dense edge range;
    [label_sat] receives the interned label and the atom. *)
val index_edge_labels :
  num_edges:int ->
  edge_label:(int -> 'l) ->
  label_sat:('l -> Atom.t -> bool) ->
  label_index

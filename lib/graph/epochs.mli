(** Epoch manager: the MVCC read side. Holds the current committed
    {!Overlay.base} and lets in-flight queries pin the snapshot they
    started on — commits swing the current pointer without touching
    pinned epochs, so readers never block writers and never see a
    half-applied delta. Old epochs retire (become unreachable) when
    their pin count drops to zero.

    Thread-safe: [pin]/[unpin]/[commit] take a short internal lock;
    queries run lock-free on the pinned immutable snapshot. Writing is
    single-writer by construction — [commit] refuses an overlay that
    was not built on the current epoch. *)

type t

val create : Overlay.base -> t

(** The current committed base / snapshot (unpinned peek). *)
val base : t -> Overlay.base

val snapshot : t -> Snapshot.t

(** Pin the current epoch: the returned snapshot stays valid (and its
    semantic-cache entries stay retained) until {!unpin}. *)
val pin : t -> Snapshot.t

(** Release a pinned snapshot. Unpinning a snapshot that is not the
    current epoch and has no other pins retires it. Unknown epochs are
    ignored (idempotent). *)
val unpin : t -> Snapshot.t -> unit

(** [with_pinned t f] pins, runs [f] on the pinned snapshot, and
    unpins — exception-safe. *)
val with_pinned : t -> (Snapshot.t -> 'a) -> 'a

(** Commit an overlay built on the current epoch (raises
    [Invalid_argument] otherwise — single-writer discipline): installs
    the incrementally re-frozen base as current and returns it with the
    column-reuse report. An empty overlay is a no-op returning the
    current base. *)
val commit : t -> Overlay.t -> Overlay.base * Overlay.reuse

(** Epoch stamps still reachable: the current epoch plus every pinned
    older one — what {!val-commit} survivors look like to cache
    retention. *)
val live_epochs : t -> int list

(** Number of commits performed through this manager. *)
val commits : t -> int

(** Epochs that have fully retired (superseded and unpinned). *)
val retired : t -> int

(** Outstanding pins across all live epochs — 0 after a clean drain;
    the server's leak assertions and /metrics read it. *)
val pins : t -> int

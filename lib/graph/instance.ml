(* The uniform query-engine view over all data models of Section 3.

   Every model (labeled, property, vector-labeled, and RDF via gqkg_kg)
   exposes itself as an [Instance.t]: dense node/edge indexes, ρ,
   adjacency in both directions, and an oracle answering atomic tests on
   nodes and edges.  The whole Section 4 machinery (path semantics,
   counting, generation, enumeration, regex-constrained centrality) is
   written once against this record — this is the "unified and simple
   view" the tutorial advocates. *)

(* Optional label-interning fast path.  When a model can map each edge to
   a dense label id such that every [Atom.Label] test on the edge is a
   pure function of that id, the product kernel evaluates label-only
   tests once per label instead of once per edge.  The contract:

     edge_atom e (Label c)  =  label_sat (edge_label_id e) (Label c)

   for every edge [e].  Atoms that are not label-determined (Prop,
   Feature) keep going through [edge_atom]. *)
type label_index = {
  num_labels : int; (* label ids are 0 .. num_labels-1 *)
  edge_label_id : int -> int;
  label_sat : int -> Atom.t -> bool;
}

type t = {
  num_nodes : int;
  num_edges : int;
  endpoints : int -> int * int;
  out_edges : int -> (int * int) array; (* node -> [(edge, head)] *)
  in_edges : int -> (int * int) array; (* node -> [(edge, tail)] *)
  node_atom : int -> Atom.t -> bool;
  edge_atom : int -> Atom.t -> bool;
  node_name : int -> string;
  edge_name : int -> string;
  labels : label_index option;
}

let src t e = fst (t.endpoints e)
let dst t e = snd (t.endpoints e)

(* Build a label index by interning the labels of [edge_label] over the
   dense edge range; [Atom.Label] satisfaction per id is then equality
   against the interned label (the common case for the concrete
   models — RDF overrides [label_sat] for its IRI/local-name rule). *)
let index_edge_labels ~num_edges ~edge_label ~label_sat =
  let ids = Hashtbl.create 16 in
  let distinct = ref [] in
  let table =
    Array.init num_edges (fun e ->
        let l = edge_label e in
        match Hashtbl.find_opt ids l with
        | Some id -> id
        | None ->
            let id = Hashtbl.length ids in
            Hashtbl.add ids l id;
            distinct := l :: !distinct;
            id)
  in
  let distinct = Array.of_list (List.rev !distinct) in
  {
    num_labels = Array.length distinct;
    edge_label_id = (fun e -> table.(e));
    label_sat = (fun id atom -> label_sat distinct.(id) atom);
  }

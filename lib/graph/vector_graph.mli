(** Vector-labeled graphs V = (N, E, ρ, λ) of dimension d: every node and
    edge carries a d-vector over Const, with ⊥ for absent entries
    (Section 3; Figure 2(c)). Feature indexes are 1-based, following the
    paper's (f_i = v) notation. *)

type t

val base : t -> Multigraph.t
val dimension : t -> int
val num_nodes : t -> int
val num_edges : t -> int
val node_id : t -> int -> Const.t
val edge_id : t -> int -> Const.t
val endpoints : t -> int -> int * int
val out_edges : t -> int -> (int * int) array
val in_edges : t -> int -> (int * int) array
val find_node : t -> Const.t -> int option

(** λ(n): the full feature vector. Do not mutate. *)
val node_vector : t -> int -> Const.t array

val edge_vector : t -> int -> Const.t array

(** λ(n)_i, 1-based; raises on out-of-range indexes. *)
val node_feature : t -> int -> int -> Const.t

val edge_feature : t -> int -> int -> Const.t

(** Atomic-test oracle: [Feature] atoms, plus [Label] delegated to
    feature 1 (where {!of_property} puts the label). *)
val node_satisfies_atom : t -> int -> Atom.t -> bool

val edge_satisfies_atom : t -> int -> Atom.t -> bool

(** Assemble from a multigraph and feature vectors of width [dimension]. *)
val make :
  base:Multigraph.t ->
  dimension:int ->
  node_features:Const.t array array ->
  edge_features:Const.t array array ->
  t

(** The flattening schema: feature 1 is the label, the rest property
    names in a fixed order. *)
type schema = { feature_names : Const.t array }

(** 1-based feature index of a property name under the schema. *)
val schema_feature_index : schema -> Const.t -> int option

(** Flatten a property graph (the unification of Section 3): feature 1 =
    label, then the property schema with ⊥ for missing values. *)
val of_property : Property_graph.t -> t * schema

(** Inverse of {!of_property} on its image; raises if the schema does
    not match the dimension. *)
val to_property : t -> schema -> Property_graph.t

(** A labeled graph is a 1-dimensional vector-labeled graph. *)
val of_labeled : Labeled_graph.t -> t

(** The frozen, columnar query-engine view over all Section 3 data models.

    A snapshot is a fully materialized compressed-sparse-row image of a
    graph: flat int arrays for edge endpoints, offset-packed adjacency in
    both directions, interned edge-label ids, per-node-label membership
    bitmaps, and precomputed statistics. Every model (labeled, property,
    vector-labeled, and RDF via [Gqkg_kg.Rdf_graph.to_snapshot]) freezes
    to this one physical layout once; the entire Section 4 machinery runs
    against it.

    All array fields are plain immutable int arrays — a snapshot can be
    shared across OCaml 5 domains without synchronization. Hot paths
    (the product kernel, Brandes) index the arrays directly; the closure
    fields ([node_atom], [edge_atom], names) serve the cold oracle
    paths only. *)

(** Degree and label statistics, computed at freeze time. *)
type stats = {
  out_degree_p50 : int;
  out_degree_p99 : int;
  out_degree_max : int;
  in_degree_p50 : int;
  in_degree_p99 : int;
  in_degree_max : int;
  degree_p50 : int;  (** total (out + in) degree percentiles *)
  degree_p99 : int;
  degree_max : int;
  edge_label_counts : int array;  (** edge-label id → multiplicity *)
  node_label_counts : int array;  (** node-label id → member count *)
}

type t = {
  num_nodes : int;
  num_edges : int;
  (* Columnar ρ: edge e runs esrc.(e) → edst.(e). *)
  esrc : int array;
  edst : int array;
  (* CSR out-adjacency: the moves of node v are entries
     out_off.(v) .. out_off.(v+1) - 1 of out_eid/out_nbr (edge id and
     head node), in ascending edge order. out_off has num_nodes + 1
     entries. Same layout for in-adjacency (neighbor = tail node). *)
  out_off : int array;
  out_eid : int array;
  out_nbr : int array;
  in_off : int array;
  in_eid : int array;
  in_nbr : int array;
  (* Interned edge labels: elabel.(e) is the dense label id of edge e,
     satisfying the label_sat contract
       edge_atom e (Label c) = label_sat elabel.(e) (Label c).
     num_labels = 0 means the model provides no label index (label tests
     then go through edge_atom). *)
  num_labels : int;
  elabel : int array;
  label_names : string array;
  label_sat : int -> Atom.t -> bool;
  (* Interned node labels as membership bitmaps: node_label_bits.(l) is
     a raw Bitset over nodes (see Gqkg_util.Bitset raw layer). A node
     may belong to several label bitmaps (RDF types); in the other
     models membership is exclusive. Contract:
       node_atom v (Label c) = ∃ l. raw_mem node_label_bits.(l) v
                                    ∧ node_label_sat l (Label c). *)
  num_node_labels : int;
  node_label_names : string array;
  node_label_sat : int -> Atom.t -> bool;
  node_label_bits : int array array;
  (* Cold oracle paths: full atomic tests and display names. *)
  node_atom : int -> Atom.t -> bool;
  edge_atom : int -> Atom.t -> bool;
  node_name : int -> string;
  edge_name : int -> string;
  stats : stats;
  epoch : int;
      (** Process-unique freeze stamp: every constructed snapshot gets a
          fresh value, so (epoch, canonical query key) identifies a
          result set — the semantic cache key of the Governor. *)
}

(** [make] builds the CSR image, label bitmaps and stats from columnar
    endpoint arrays and pre-interned labels. [esrc], [edst] and [elabel]
    must have equal lengths (the edge count); [elabel] entries must lie
    in [0, num_labels) when [num_labels > 0]. [node_labels.(v)] lists
    the node-label ids of node [v] (empty, one, or several). *)
val make :
  num_nodes:int ->
  esrc:int array ->
  edst:int array ->
  num_labels:int ->
  elabel:int array ->
  label_names:string array ->
  label_sat:(int -> Atom.t -> bool) ->
  num_node_labels:int ->
  node_labels:int list array ->
  node_label_names:string array ->
  node_label_sat:(int -> Atom.t -> bool) ->
  node_atom:(int -> Atom.t -> bool) ->
  edge_atom:(int -> Atom.t -> bool) ->
  node_name:(int -> string) ->
  edge_name:(int -> string) ->
  t

(** Intern the values of [get] over [0 .. n-1] into dense first-occurrence
    ids; returns the id table and the distinct values in id order. *)
val intern : n:int -> get:(int -> 'a) -> int array * 'a array

(** CSR adjacency from endpoint columns (counting sort):
    [(out_off, out_eid, out_nbr, in_off, in_eid, in_nbr)], each node's
    entries in ascending edge order — the primitive [make] and the
    incremental re-freeze ({!Overlay.commit}) share. *)
val pack_csr :
  int -> int array -> int array -> int array * int array * int array * int array * int array * int array

(** Degree/label statistics from packed offsets and label-count columns
    — lets the incremental re-freeze refresh stats while physically
    reusing unchanged count arrays. *)
val stats_of_columns :
  num_nodes:int ->
  out_off:int array ->
  in_off:int array ->
  edge_label_counts:int array ->
  node_label_counts:int array ->
  stats

(** Next value of the process-wide epoch counter — for code that builds
    the record directly instead of through {!make} (snapshot loading). *)
val fresh_epoch : unit -> int

(** Label satisfaction by [Const] equality against an interned universe
    — the rule shared by the labeled, property and vector models, and
    the rule a snapshot reloaded from disk falls back to (closures do
    not persist; see {!Snapshot_io}). [Prop] and [Feature] atoms are
    never satisfied. *)
val const_label_sat : Const.t array -> int -> Atom.t -> bool

(** {1 Freezing the Section 3 models} *)

val of_labeled : Labeled_graph.t -> t
val of_property : Property_graph.t -> t
val of_vector : Vector_graph.t -> t

(** {1 Accessors}

    Thin wrappers over the flat arrays; inner loops should index the
    arrays directly instead. *)

val endpoints : t -> int -> int * int
val src : t -> int -> int
val dst : t -> int -> int
val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** [iter_out s v f] calls [f edge head] for every out-edge of [v] in
    ascending edge order; [iter_in] the same over in-edges. *)
val iter_out : t -> int -> (int -> int -> unit) -> unit

val iter_in : t -> int -> (int -> int -> unit) -> unit

(** Materialized [(edge, neighbor)] views of one node's adjacency, in
    ascending edge order — compatibility helpers for cold call sites;
    each call allocates a fresh array. *)
val out_pairs : t -> int -> (int * int) array

val in_pairs : t -> int -> (int * int) array

(** Nodes carrying node-label id [l], in ascending order. *)
val nodes_with_label : t -> int -> int array

(** Side-by-side disjoint union (second graph's nodes and edges shifted
    past the first's), label-free: the joint-refinement substrate of the
    WL isomorphism test and subtree kernel. Atoms and names delegate to
    the matching side. *)
val disjoint_union : t -> t -> t

(** Human-readable snapshot summary: node/edge counts, the label
    universe with multiplicities, and degree percentiles (p50/p99/max)
    — what [gqkg explain] and [gqkg stats] print. *)
val describe : t -> string

(** Thin compatibility shim onto the legacy closure record. The
    resulting instance shares the snapshot's arrays; adjacency closures
    materialize fresh pair arrays per call. *)
val to_instance : t -> Instance.t

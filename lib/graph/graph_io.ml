(* Plain-text serialization of property graphs (labeled graphs are the
   σ-free special case), plus Graphviz DOT export.

   Format (one declaration per line, '#' starts a comment):

     node <id> <label> [<prop>=<value> ...]
     edge <id> <src-id> <dst-id> <label> [<prop>=<value> ...]

   Tokens are whitespace-separated and parsed with {!Const.of_string};
   identifiers, labels and values therefore cannot contain whitespace or
   '='.  Edges may reference nodes declared later. *)

exception Parse_error of { file : string option; line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { file = None; line; message })) fmt

(* "file:line: message" when the file is known, "line N: message"
   otherwise — the rendering the CLI shows for malformed input. *)
let error_to_string ~file ~line ~message =
  match file with
  | Some f -> Printf.sprintf "%s:%d: %s" f line message
  | None -> Printf.sprintf "line %d: %s" line message

let split_tokens line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse_props ~line tokens =
  List.map
    (fun token ->
      match String.index_opt token '=' with
      | Some i when i > 0 && i < String.length token - 1 ->
          ( Const.of_string (String.sub token 0 i),
            Const.of_string (String.sub token (i + 1) (String.length token - i - 1)) )
      | _ -> fail line "malformed property %S (expected prop=value)" token)
    tokens

type decl =
  | Node of Const.t * Const.t * (Const.t * Const.t) list
  | Edge of Const.t * Const.t * Const.t * Const.t * (Const.t * Const.t) list

let parse_line ~line text =
  let text = match String.index_opt text '#' with Some i -> String.sub text 0 i | None -> text in
  match split_tokens text with
  | [] -> None
  | "node" :: rest -> (
      match rest with
      | id :: label :: props ->
          Some (Node (Const.of_string id, Const.of_string label, parse_props ~line props))
      | _ -> fail line "node needs: node <id> <label> [props...]")
  | "edge" :: rest -> (
      match rest with
      | id :: src :: dst :: label :: props ->
          Some
            (Edge
               ( Const.of_string id,
                 Const.of_string src,
                 Const.of_string dst,
                 Const.of_string label,
                 parse_props ~line props ))
      | _ -> fail line "edge needs: edge <id> <src> <dst> <label> [props...]")
  | keyword :: _ -> fail line "unknown declaration %S" keyword

let property_graph_of_string text =
  (* Declarations keep their source line so second-pass errors (and the
     duplicate-id check) can point at the offending line even when the
     file has comments or blank lines. *)
  let decls = ref [] in
  List.iteri
    (fun i line ->
      match parse_line ~line:(i + 1) line with
      | Some d -> decls := (i + 1, d) :: !decls
      | None -> ())
    (String.split_on_char '\n' text);
  let decls = List.rev !decls in
  let b = Property_graph.Builder.create () in
  (* First pass: declare all nodes so edges can reference any of them.
     A re-declared node id is rejected here — the builder would silently
     merge the two declarations, which is never what a hand-written file
     means. *)
  let node_lines = Hashtbl.create 16 in
  let edge_lines = Hashtbl.create 16 in
  List.iter
    (fun (line, decl) ->
      match decl with
      | Node (id, label, props) ->
          (match Hashtbl.find_opt node_lines id with
          | Some first ->
              fail line "duplicate node id %s (first declared on line %d)" (Const.to_string id)
                first
          | None -> Hashtbl.add node_lines id line);
          let n = Property_graph.Builder.add_node b id ~label in
          List.iter (fun (p, v) -> Property_graph.Builder.set_node_property b n ~prop:p ~value:v) props
      | Edge (id, _, _, _, _) -> (
          match Hashtbl.find_opt edge_lines id with
          | Some first ->
              fail line "duplicate edge id %s (first declared on line %d)" (Const.to_string id)
                first
          | None -> Hashtbl.add edge_lines id line))
    decls;
  List.iter
    (fun (line, decl) ->
      match decl with
      | Node _ -> ()
      | Edge (id, src, dst, label, props) -> (
          match (Property_graph.Builder.find_node b src, Property_graph.Builder.find_node b dst) with
          | Some src, Some dst ->
              let e = Property_graph.Builder.add_edge b id ~src ~dst ~label in
              List.iter (fun (p, v) -> Property_graph.Builder.set_edge_property b e ~prop:p ~value:v) props
          | None, _ ->
              fail line "edge %s references undeclared source %s" (Const.to_string id)
                (Const.to_string src)
          | _, None ->
              fail line "edge %s references undeclared target %s" (Const.to_string id)
                (Const.to_string dst)))
    decls;
  Property_graph.Builder.freeze b

let labeled_graph_of_string text = Property_graph.to_labeled (property_graph_of_string text)

let render_props buf props =
  Array.iter
    (fun (p, v) -> Buffer.add_string buf (Printf.sprintf " %s=%s" (Const.to_string p) (Const.to_string v)))
    props

let property_graph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# gqkg property graph\n";
  for n = 0 to Property_graph.num_nodes g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "node %s %s"
         (Const.to_string (Property_graph.node_id g n))
         (Const.to_string (Property_graph.node_label g n)));
    render_props buf (Property_graph.node_properties g n);
    Buffer.add_char buf '\n'
  done;
  for e = 0 to Property_graph.num_edges g - 1 do
    let s, d = Property_graph.endpoints g e in
    Buffer.add_string buf
      (Printf.sprintf "edge %s %s %s %s"
         (Const.to_string (Property_graph.edge_id g e))
         (Const.to_string (Property_graph.node_id g s))
         (Const.to_string (Property_graph.node_id g d))
         (Const.to_string (Property_graph.edge_label g e)));
    render_props buf (Property_graph.edge_properties g e);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let labeled_graph_to_string g = property_graph_to_string (Property_graph.of_labeled g)

let load_property_graph path =
  let ic = open_in path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with exn ->
      close_in ic;
      raise exn
  in
  close_in ic;
  try property_graph_of_string text
  with Parse_error { file = None; line; message } ->
    raise (Parse_error { file = Some path; line; message })

let save_property_graph path g =
  let oc = open_out path in
  output_string oc (property_graph_to_string g);
  close_out oc

(* Graphviz DOT export of the labeled view; properties become tooltips. *)
let to_dot ?(name = "gqkg") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for n = 0 to Property_graph.num_nodes g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %S [label=%S];\n"
         (Const.to_string (Property_graph.node_id g n))
         (Printf.sprintf "%s:%s"
            (Const.to_string (Property_graph.node_id g n))
            (Const.to_string (Property_graph.node_label g n))))
  done;
  for e = 0 to Property_graph.num_edges g - 1 do
    let s, d = Property_graph.endpoints g e in
    Buffer.add_string buf
      (Printf.sprintf "  %S -> %S [label=%S];\n"
         (Const.to_string (Property_graph.node_id g s))
         (Const.to_string (Property_graph.node_id g d))
         (Const.to_string (Property_graph.edge_label g e)))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Order-insensitive canonical form: the node and edge declarations are
   sorted, so two property graphs with the same identifiers, labels,
   properties and incidences render identically regardless of insertion
   order.  This is the right equality after passing through set-based
   representations (e.g. RDF). *)
let canonical_string g =
  let lines = String.split_on_char '\n' (property_graph_to_string g) in
  let nodes = List.filter (fun l -> String.length l > 5 && String.sub l 0 5 = "node ") lines in
  let edges = List.filter (fun l -> String.length l > 5 && String.sub l 0 5 = "edge ") lines in
  String.concat "\n" (List.sort compare nodes @ List.sort compare edges) ^ "\n"

type t = {
  snapshot : Snapshot.t;
  block_bits : int;
  num_blocks : int;
  blk_off : int array;  (* num_blocks + 1 offsets into blk_eid *)
  blk_eid : int array;  (* edge ids, ascending within each block *)
}

let build ?(block_bits = 15) (s : Snapshot.t) =
  if block_bits < 1 || block_bits > 30 then invalid_arg "Partition.build: block_bits in [1,30]";
  let n = s.num_nodes and m = s.num_edges in
  let num_blocks = max 1 ((n + (1 lsl block_bits) - 1) lsr block_bits) in
  let blk_off = Array.make (num_blocks + 1) 0 in
  for e = 0 to m - 1 do
    let b = s.edst.(e) lsr block_bits in
    blk_off.(b + 1) <- blk_off.(b + 1) + 1
  done;
  for b = 1 to num_blocks do
    blk_off.(b) <- blk_off.(b) + blk_off.(b - 1)
  done;
  let blk_eid = Array.make m 0 in
  let cursor = Array.copy blk_off in
  (* ascending e keeps each block's list in ascending edge id *)
  for e = 0 to m - 1 do
    let b = s.edst.(e) lsr block_bits in
    blk_eid.(cursor.(b)) <- e;
    cursor.(b) <- cursor.(b) + 1
  done;
  { snapshot = s; block_bits; num_blocks; blk_off; blk_eid }

let num_blocks p = p.num_blocks
let block_bits p = p.block_bits
let block_size p = 1 lsl p.block_bits
let block_of_node p v = v lsr p.block_bits
let edges_in_block p b = p.blk_off.(b + 1) - p.blk_off.(b)

let iter_block p ~block f =
  let s = p.snapshot in
  for i = p.blk_off.(block) to p.blk_off.(block + 1) - 1 do
    let e = p.blk_eid.(i) in
    f e s.Snapshot.esrc.(e) s.Snapshot.edst.(e)
  done

let fold_blocks p ~init ~f =
  let acc = ref init in
  for b = 0 to p.num_blocks - 1 do
    acc := f !acc b
  done;
  !acc

let describe p =
  let sizes = Array.init p.num_blocks (fun b -> edges_in_block p b) in
  let sorted = Array.copy sizes in
  Array.sort compare sorted;
  let m = Array.fold_left ( + ) 0 sizes in
  let mean = float_of_int m /. float_of_int p.num_blocks in
  let median = sorted.(p.num_blocks / 2) in
  let mx = if p.num_blocks = 0 then 0 else sorted.(p.num_blocks - 1) in
  let mn = if p.num_blocks = 0 then 0 else sorted.(0) in
  let imbalance = if mean > 0.0 then float_of_int mx /. mean else 1.0 in
  Printf.sprintf
    "partition: %d block%s x %d nodes; edges/block min %d median %d max %d (imbalance %.2f)"
    p.num_blocks
    (if p.num_blocks = 1 then "" else "s")
    (block_size p) mn median mx imbalance

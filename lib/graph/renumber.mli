(** Cache-conscious node renumbering over a frozen {!Snapshot}.

    The product kernel and the analytics spend their time walking CSR
    adjacency; on large graphs the walk's cache behaviour is set by how
    node ids map to memory. Renumbering permutes the *internal* ids so
    that hot nodes (high degree, or BFS-close neighbourhoods) land on
    adjacent offsets, while every user-facing surface — names, atoms,
    Graph_io text, diagnostics, [explain] — is preserved by composing
    the snapshot's oracle closures with the permutation.

    Edges are renumbered too: the new edge order sorts by
    (new source, new destination, old edge id), which makes every
    adjacency row neighbour-sorted — sequential runs of destinations —
    while keeping the ascending-edge-id determinism contract the
    product kernel relies on (rows are ascending in the *new* ids).

    The permutation is answer-invariant by construction: a query's
    answer set maps node-for-node through [new_of_old], and the
    name-level answers (what the CLI prints) are bit-identical. *)

type order =
  | Identity  (** keep ids as frozen — the no-op plan *)
  | Degree
      (** total-degree descending, ties by ascending old id: hub rows
          first, packed together — the default for skewed graphs *)
  | Bfs
      (** breadth-first from the highest-degree node of each component
          (components in degree order): neighbourhood locality for
          traversal-heavy workloads *)

type permutation = {
  old_of_new : int array;  (** node: new id → old id *)
  new_of_old : int array;  (** node: old id → new id *)
  edge_old_of_new : int array;  (** edge: new id → old id *)
}

val order_of_string : string -> order option
val order_to_string : order -> string

(** Plan a permutation without touching the snapshot. *)
val plan : order -> Snapshot.t -> permutation

(** [is_identity p] — both node and edge maps are identities (saving
    can then skip the permutation sections). *)
val is_identity : permutation -> bool

(** Rebuild the snapshot under the permutation. Adjacency, label
    bitmaps and stats are recomputed over the new ids; name and atom
    closures are wrapped so user-facing output is unchanged. *)
val apply : Snapshot.t -> permutation -> Snapshot.t

(** [renumber order s] = plan + apply, returning the permutation used. *)
val renumber : order -> Snapshot.t -> Snapshot.t * permutation

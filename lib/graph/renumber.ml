module B = Gqkg_util.Bitset

type order = Identity | Degree | Bfs

type permutation = {
  old_of_new : int array;
  new_of_old : int array;
  edge_old_of_new : int array;
}

let order_of_string = function
  | "none" | "identity" -> Some Identity
  | "degree" -> Some Degree
  | "bfs" -> Some Bfs
  | _ -> None

let order_to_string = function Identity -> "none" | Degree -> "degree" | Bfs -> "bfs"

let total_degree (s : Snapshot.t) v =
  s.out_off.(v + 1) - s.out_off.(v) + s.in_off.(v + 1) - s.in_off.(v)

(* Counting sort by total degree, descending, ties ascending old id —
   O(n + max_degree), no comparison closure at 10^7 nodes. *)
let degree_order (s : Snapshot.t) =
  let n = s.num_nodes in
  let maxd = ref 0 in
  for v = 0 to n - 1 do
    let d = total_degree s v in
    if d > !maxd then maxd := d
  done;
  (* bucket.(d) = number of nodes of degree (maxd - d), so ascending
     bucket index is descending degree *)
  let buckets = Array.make (!maxd + 2) 0 in
  for v = 0 to n - 1 do
    let b = !maxd - total_degree s v in
    buckets.(b + 1) <- buckets.(b + 1) + 1
  done;
  for b = 1 to !maxd + 1 do
    buckets.(b) <- buckets.(b) + buckets.(b - 1)
  done;
  let old_of_new = Array.make n 0 in
  for v = 0 to n - 1 do
    (* ascending v within a bucket keeps ties in old-id order *)
    let b = !maxd - total_degree s v in
    old_of_new.(buckets.(b)) <- v;
    buckets.(b) <- buckets.(b) + 1
  done;
  old_of_new

(* BFS numbering: roots are taken in degree order (hubs first), each
   unvisited root starts a level-synchronous traversal over out-edges;
   unreached nodes of the component are not special-cased — they become
   roots themselves later in the degree order. *)
let bfs_order (s : Snapshot.t) =
  let n = s.num_nodes in
  let by_degree = degree_order s in
  let old_of_new = Array.make n 0 in
  let seen = Array.make n false in
  let queue = Array.make n 0 in
  let filled = ref 0 in
  let push v =
    if not seen.(v) then begin
      seen.(v) <- true;
      queue.(!filled) <- v;
      old_of_new.(!filled) <- v;
      incr filled
    end
  in
  let head = ref 0 in
  Array.iter
    (fun root ->
      push root;
      while !head < !filled do
        let v = queue.(!head) in
        incr head;
        for i = s.out_off.(v) to s.out_off.(v + 1) - 1 do
          push s.out_nbr.(i)
        done
      done)
    by_degree;
  old_of_new

let invert old_of_new =
  let n = Array.length old_of_new in
  let new_of_old = Array.make n 0 in
  for v' = 0 to n - 1 do
    new_of_old.(old_of_new.(v')) <- v'
  done;
  new_of_old

(* New edge order: group by new source (walking new nodes in order and
   their old out-rows), then sort each row by (new destination, old
   edge id).  Per-row sorts keep the whole plan O(m log max_out). *)
let edge_plan (s : Snapshot.t) ~old_of_new ~new_of_old =
  let m = s.num_edges in
  let edge_old_of_new = Array.make m 0 in
  let row = ref (Array.make 16 (0, 0)) in
  let cursor = ref 0 in
  let n = s.num_nodes in
  for v' = 0 to n - 1 do
    let v = old_of_new.(v') in
    let first = s.out_off.(v) and last = s.out_off.(v + 1) in
    let deg = last - first in
    if deg > 0 then begin
      if Array.length !row < deg then row := Array.make deg (0, 0);
      let r = !row in
      for i = 0 to deg - 1 do
        let e = s.out_eid.(first + i) in
        r.(i) <- (new_of_old.(s.edst.(e)), e)
      done;
      let sub = Array.sub r 0 deg in
      Array.sort compare sub;
      for i = 0 to deg - 1 do
        edge_old_of_new.(!cursor) <- snd sub.(i);
        incr cursor
      done
    end
  done;
  edge_old_of_new

let identity_plan (s : Snapshot.t) =
  {
    old_of_new = Array.init s.num_nodes (fun i -> i);
    new_of_old = Array.init s.num_nodes (fun i -> i);
    edge_old_of_new = Array.init s.num_edges (fun i -> i);
  }

let plan order (s : Snapshot.t) =
  match order with
  | Identity -> identity_plan s
  | Degree | Bfs ->
      let old_of_new = (match order with Bfs -> bfs_order s | _ -> degree_order s) in
      let new_of_old = invert old_of_new in
      let edge_old_of_new = edge_plan s ~old_of_new ~new_of_old in
      { old_of_new; new_of_old; edge_old_of_new }

let is_identity p =
  let id a = try Array.iteri (fun i x -> if i <> x then raise Exit) a; true with Exit -> false in
  id p.old_of_new && id p.edge_old_of_new

let apply (s : Snapshot.t) p =
  let n = s.num_nodes and m = s.num_edges in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  let elabel = Array.make m 0 in
  for e' = 0 to m - 1 do
    let e = p.edge_old_of_new.(e') in
    esrc.(e') <- p.new_of_old.(s.esrc.(e));
    edst.(e') <- p.new_of_old.(s.edst.(e));
    if s.num_labels > 0 then elabel.(e') <- s.elabel.(e)
  done;
  let node_labels = Array.make n [] in
  (* descending label ids cons into ascending per-node lists *)
  for l = s.num_node_labels - 1 downto 0 do
    B.raw_iter s.node_label_bits.(l) (fun v ->
        let v' = p.new_of_old.(v) in
        node_labels.(v') <- l :: node_labels.(v'))
  done;
  let old_node = p.old_of_new and old_edge = p.edge_old_of_new in
  Snapshot.make ~num_nodes:n ~esrc ~edst ~num_labels:s.num_labels ~elabel
    ~label_names:s.label_names ~label_sat:s.label_sat
    ~num_node_labels:s.num_node_labels ~node_labels
    ~node_label_names:s.node_label_names ~node_label_sat:s.node_label_sat
    ~node_atom:(fun v a -> s.node_atom old_node.(v) a)
    ~edge_atom:(fun e a -> s.edge_atom old_edge.(e) a)
    ~node_name:(fun v -> s.node_name old_node.(v))
    ~edge_name:(fun e -> s.edge_name old_edge.(e))

let renumber order s =
  let p = plan order s in
  match order with
  | Identity -> (s, p)
  | _ -> (apply s p, p)

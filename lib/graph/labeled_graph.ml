(* Labeled graphs L = (N, E, ρ, λ) of Section 3: a multigraph where every
   node and every edge carries one label from Const ("heterogeneous
   graphs").  Figure 2(a) is an instance. *)

type t = {
  base : Multigraph.t;
  node_labels : Const.t array;
  edge_labels : Const.t array;
  (* label -> ascending member ids, built on first use so that
     [nodes_with_label] / [edges_with_label] answer in O(|answer|)
     instead of scanning every node/edge. *)
  node_index : (Const.t, int list) Hashtbl.t Lazy.t;
  edge_index : (Const.t, int list) Hashtbl.t Lazy.t;
}

let index_of_labels labels =
  let tbl = Hashtbl.create 16 in
  for i = Array.length labels - 1 downto 0 do
    let l = labels.(i) in
    Hashtbl.replace tbl l (i :: Option.value (Hashtbl.find_opt tbl l) ~default:[])
  done;
  tbl

let v ~base ~node_labels ~edge_labels =
  {
    base;
    node_labels;
    edge_labels;
    node_index = lazy (index_of_labels node_labels);
    edge_index = lazy (index_of_labels edge_labels);
  }

let base g = g.base
let num_nodes g = Multigraph.num_nodes g.base
let num_edges g = Multigraph.num_edges g.base
let node_label g n = g.node_labels.(n)
let edge_label g e = g.edge_labels.(e)
let node_id g n = Multigraph.node_id g.base n
let edge_id g e = Multigraph.edge_id g.base e
let endpoints g e = Multigraph.endpoints g.base e
let out_edges g n = Multigraph.out_edges g.base n
let in_edges g n = Multigraph.in_edges g.base n
let find_node g id = Multigraph.find_node g.base id
let node_of_exn g id = Multigraph.node_of_exn g.base id

let nodes_with_label g l =
  Option.value (Hashtbl.find_opt (Lazy.force g.node_index) l) ~default:[]

let edges_with_label g l =
  Option.value (Hashtbl.find_opt (Lazy.force g.edge_index) l) ~default:[]

(* Distinct labels in use, each with its multiplicity. *)
let label_histogram labels =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun l ->
      let count = Option.value (Hashtbl.find_opt tbl l) ~default:0 in
      Hashtbl.replace tbl l (count + 1))
    labels;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl [] |> List.sort (fun (a, _) (b, _) -> Const.compare a b)

let node_label_histogram g = label_histogram g.node_labels
let edge_label_histogram g = label_histogram g.edge_labels

let node_satisfies_atom g n = function
  | Atom.Label l -> Const.equal g.node_labels.(n) l
  | Atom.Prop _ | Atom.Feature _ -> false

let edge_satisfies_atom g e = function
  | Atom.Label l -> Const.equal g.edge_labels.(e) l
  | Atom.Prop _ | Atom.Feature _ -> false

module Builder = struct
  type graph = t

  type t = {
    base : Multigraph.Builder.t;
    node_labels : (int, Const.t) Hashtbl.t;
    edge_labels : (int, Const.t) Hashtbl.t;
  }

  let create () =
    { base = Multigraph.Builder.create (); node_labels = Hashtbl.create 64; edge_labels = Hashtbl.create 64 }

  (* Re-adding a node keeps its first label unless [relabel] is used. *)
  let add_node b id ~label =
    let n = Multigraph.Builder.add_node b.base id in
    if not (Hashtbl.mem b.node_labels n) then Hashtbl.replace b.node_labels n label;
    n

  let relabel_node b n ~label = Hashtbl.replace b.node_labels n label

  let add_edge b id ~src ~dst ~label =
    let e = Multigraph.Builder.add_edge b.base id ~src ~dst in
    Hashtbl.replace b.edge_labels e label;
    e

  let fresh_edge b ~src ~dst ~label =
    let e = Multigraph.Builder.fresh_edge b.base ~src ~dst in
    Hashtbl.replace b.edge_labels e label;
    e

  let find_node b id = Multigraph.Builder.find_node b.base id

  let freeze b =
    let base = Multigraph.Builder.freeze b.base in
    let fetch tbl i =
      match Hashtbl.find_opt tbl i with Some l -> l | None -> Const.bottom
    in
    (v ~base
       ~node_labels:(Array.init (Multigraph.num_nodes base) (fetch b.node_labels))
       ~edge_labels:(Array.init (Multigraph.num_edges base) (fetch b.edge_labels))
      : graph)
end

(* Build from explicit lists: nodes as (id, label), edges as
   (id, src-id, dst-id, label); endpoints must be declared as nodes. *)
let of_lists ~nodes ~edges =
  let b = Builder.create () in
  List.iter (fun (id, label) -> ignore (Builder.add_node b id ~label)) nodes;
  List.iter
    (fun (id, s, d, label) ->
      match (Builder.find_node b s, Builder.find_node b d) with
      | Some s, Some d -> ignore (Builder.add_edge b id ~src:s ~dst:d ~label)
      | _ -> invalid_arg "Labeled_graph.of_lists: edge endpoint not declared")
    edges;
  Builder.freeze b

let make ~base ~node_labels ~edge_labels =
  if Array.length node_labels <> Multigraph.num_nodes base then
    invalid_arg "Labeled_graph.make: node label count";
  if Array.length edge_labels <> Multigraph.num_edges base then
    invalid_arg "Labeled_graph.make: edge label count";
  v ~base ~node_labels ~edge_labels

(* The uniform query-engine view is {!Snapshot.of_labeled}. *)

(* Binary snapshot persistence. See the .mli for the file layout.

   Design notes:

   - Everything integer is stored little-endian at a per-section width:
     1, 4 or 8 bytes per element, picked from the section's actual value
     range. On a 10^7-node graph every hot section fits width 4 (and
     elabel usually width 1), which is where the bytes-per-edge figure
     comes from.

   - The neighbour columns (out_nbr/in_nbr) are NOT stored: they are
     the gather nbr.(i) = dst(eid.(i)), recomputed at load in one O(m)
     pass — trading 8 bytes/edge of file for two array walks.

   - The checksum covers decoded logical values (ints and strings), not
     raw bytes, so both sides fold it in one cache-friendly pass; any
     bit flip in a payload changes some decoded element and breaks the
     product chain (see Gqkg_util.Checksum).

   - Width-8 elements are an int's low 63 bits; the decoder rebuilds
     the native int by oring bytes into bit positions 0..62, which
     reproduces negative ints (bitset words) exactly. *)

module B = Gqkg_util.Bitset
module C = Gqkg_util.Checksum

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let magic = "GQKGSNAP"
let version = 1
let header_bytes = 64
let table_entry_bytes = 24

(* flags *)
let flag_perm = 1
let flag_synthetic_names = 2

(* section ids *)
let sec_esrc = 1
let sec_edst = 2
let sec_elabel = 3
let sec_out_off = 4
let sec_out_eid = 5
let sec_in_off = 6
let sec_in_eid = 7
let sec_label_name_off = 8
let sec_label_name_blob = 9
let sec_nlabel_name_off = 10
let sec_nlabel_name_blob = 11
let sec_nlabel_bits = 12
let sec_stats = 13
let sec_elabel_counts = 14
let sec_nlabel_counts = 15
let sec_node_name_off = 16
let sec_node_name_blob = 17
let sec_edge_name_off = 18
let sec_edge_name_blob = 19
let sec_perm_node = 20
let sec_perm_edge = 21

type report = {
  file_bytes : int;
  sections : int;
  bytes_per_edge : float;
  checksum : int;
  renumbered : bool;
  names_kept : bool;
}

type payload = Ints of int array | Blob of string

type sec = { id : int; width : int; payload : payload }

let pick_width a =
  let mx = ref 0 and mn = ref 0 in
  Array.iter
    (fun x ->
      if x > !mx then mx := x;
      if x < !mn then mn := x)
    a;
  if !mn < 0 then 8 else if !mx <= 0xff then 1 else if !mx < 1 lsl 31 then 4 else 8

let ints a = { id = 0; width = pick_width a; payload = Ints a }
let blob s = { id = 0; width = 1; payload = Blob s }
let with_id id s = { s with id }

let payload_bytes s =
  match s.payload with
  | Ints a -> Array.length a * s.width
  | Blob b -> String.length b

(* ---- string tables ---------------------------------------------------- *)

let build_string_table n get =
  let off = Array.make (n + 1) 0 in
  let buf = Buffer.create (16 * n) in
  for i = 0 to n - 1 do
    off.(i) <- Buffer.length buf;
    Buffer.add_string buf (get i)
  done;
  off.(n) <- Buffer.length buf;
  (off, Buffer.contents buf)

(* ---- save -------------------------------------------------------------- *)

(* Canonical equality against the exact string the loader will
   re-synthesize — "n007" must NOT count as synthetic for old id 7. *)
let names_synthetic (s : Snapshot.t) ~old_node ~old_edge =
  let ok = ref true in
  (let v = ref 0 in
   while !ok && !v < s.num_nodes do
     if not (String.equal (s.node_name !v) ("n" ^ string_of_int (old_node !v))) then ok := false;
     incr v
   done);
  (let e = ref 0 in
   while !ok && !e < s.num_edges do
     if not (String.equal (s.edge_name !e) ("e" ^ string_of_int (old_edge !e))) then ok := false;
     incr e
   done);
  !ok

let flat_bits (s : Snapshot.t) =
  let w = B.words_for (max s.num_nodes 1) in
  let flat = Array.make (s.num_node_labels * w) 0 in
  Array.iteri
    (fun l row ->
      if Array.length row <> w then invalid_arg "Snapshot_io.save: bitmap width";
      Array.blit row 0 flat (l * w) w)
    s.node_label_bits;
  flat

let stats_fixed (st : Snapshot.stats) =
  [|
    st.out_degree_p50; st.out_degree_p99; st.out_degree_max;
    st.in_degree_p50; st.in_degree_p99; st.in_degree_max;
    st.degree_p50; st.degree_p99; st.degree_max;
  |]

let write_ints ch buf width a =
  let n = Array.length a in
  let cap = Bytes.length buf / width in
  let i = ref 0 in
  while !i < n do
    let k = min cap (n - !i) in
    (match width with
    | 1 ->
        for j = 0 to k - 1 do
          Bytes.unsafe_set buf j (Char.unsafe_chr a.(!i + j))
        done
    | 4 ->
        for j = 0 to k - 1 do
          Bytes.set_int32_le buf (4 * j) (Int32.of_int a.(!i + j))
        done
    | _ ->
        for j = 0 to k - 1 do
          Bytes.set_int64_le buf (8 * j) (Int64.of_int a.(!i + j))
        done);
    output_bytes ch (if k = cap then buf else Bytes.sub buf 0 (k * width));
    i := !i + k
  done

let save ?(names = `Auto) ?perm ~path (s : Snapshot.t) =
  let n = s.num_nodes and m = s.num_edges in
  let perm =
    match perm with
    | Some p when not (Renumber.is_identity p) -> Some p
    | _ -> None
  in
  let old_node v = match perm with Some p -> p.Renumber.old_of_new.(v) | None -> v in
  let old_edge e = match perm with Some p -> p.Renumber.edge_old_of_new.(e) | None -> e in
  let keep_names =
    match names with
    | `Keep -> true
    | `Drop -> false
    | `Auto -> not (names_synthetic s ~old_node ~old_edge)
  in
  let label_off, label_blob = build_string_table s.num_labels (fun l -> s.label_names.(l)) in
  let nlabel_off, nlabel_blob =
    build_string_table s.num_node_labels (fun l -> s.node_label_names.(l))
  in
  let secs = ref [] in
  let add id sec = secs := with_id id sec :: !secs in
  add sec_esrc (ints s.esrc);
  add sec_edst (ints s.edst);
  if s.num_labels > 0 then add sec_elabel (ints s.elabel);
  add sec_out_off (ints s.out_off);
  add sec_out_eid (ints s.out_eid);
  add sec_in_off (ints s.in_off);
  add sec_in_eid (ints s.in_eid);
  add sec_label_name_off (ints label_off);
  add sec_label_name_blob (blob label_blob);
  add sec_nlabel_name_off (ints nlabel_off);
  add sec_nlabel_name_blob (blob nlabel_blob);
  add sec_nlabel_bits { id = 0; width = 8; payload = Ints (flat_bits s) };
  add sec_stats (ints (stats_fixed s.stats));
  add sec_elabel_counts (ints s.stats.edge_label_counts);
  add sec_nlabel_counts (ints s.stats.node_label_counts);
  if keep_names then begin
    let noff, nblob = build_string_table n (fun v -> s.node_name v) in
    add sec_node_name_off (ints noff);
    add sec_node_name_blob (blob nblob);
    let eoff, eblob = build_string_table m (fun e -> s.edge_name e) in
    add sec_edge_name_off (ints eoff);
    add sec_edge_name_blob (blob eblob)
  end;
  (match perm with
  | Some p ->
      add sec_perm_node (ints p.Renumber.old_of_new);
      add sec_perm_edge (ints p.Renumber.edge_old_of_new)
  | None -> ());
  let secs = List.rev !secs in
  let flags =
    (if perm <> None then flag_perm else 0)
    lor if keep_names then 0 else flag_synthetic_names
  in
  let checksum =
    let h = ref C.empty in
    h := C.add_int !h version;
    h := C.add_int !h flags;
    h := C.add_int !h n;
    h := C.add_int !h m;
    h := C.add_int !h s.num_labels;
    h := C.add_int !h s.num_node_labels;
    List.iter
      (fun sec ->
        h := C.add_int !h sec.id;
        h := C.add_int !h sec.width;
        match sec.payload with
        | Ints a -> h := C.add_int_array !h a
        | Blob b -> h := C.add_string !h b)
      secs;
    C.finish !h
  in
  let count = List.length secs in
  let ch = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr ch)
    (fun () ->
      let hdr = Bytes.make header_bytes '\000' in
      Bytes.blit_string magic 0 hdr 0 8;
      Bytes.set_int32_le hdr 8 (Int32.of_int version);
      Bytes.set_int32_le hdr 12 (Int32.of_int flags);
      Bytes.set_int64_le hdr 16 (Int64.of_int n);
      Bytes.set_int64_le hdr 24 (Int64.of_int m);
      Bytes.set_int32_le hdr 32 (Int32.of_int s.num_labels);
      Bytes.set_int32_le hdr 36 (Int32.of_int s.num_node_labels);
      Bytes.set_int32_le hdr 40 (Int32.of_int count);
      Bytes.set_int64_le hdr 48 (Int64.of_int checksum);
      output_bytes ch hdr;
      let table = Bytes.make (count * table_entry_bytes) '\000' in
      let payload_base = header_bytes + (count * table_entry_bytes) in
      let off = ref payload_base in
      List.iteri
        (fun i sec ->
          let b = i * table_entry_bytes in
          Bytes.set_int32_le table b (Int32.of_int sec.id);
          Bytes.set_int32_le table (b + 4) (Int32.of_int sec.width);
          Bytes.set_int64_le table (b + 8) (Int64.of_int !off);
          Bytes.set_int64_le table (b + 16) (Int64.of_int (payload_bytes sec));
          off := !off + payload_bytes sec)
        secs;
      output_bytes ch table;
      let buf = Bytes.create (64 * 1024) in
      List.iter
        (fun sec ->
          match sec.payload with
          | Ints a -> write_ints ch buf sec.width a
          | Blob b -> output_string ch b)
        secs;
      let file_bytes = !off in
      {
        file_bytes;
        sections = count;
        bytes_per_edge = float_of_int file_bytes /. float_of_int (max m 1);
        checksum;
        renumbered = perm <> None;
        names_kept = keep_names;
      })

(* ---- load -------------------------------------------------------------- *)

(* The whole file, read in one buffered pass.  Every section is decoded
   into fresh OCaml arrays regardless, so a Bytes image beats mmap here:
   the fixed-width accessors below are compiler primitives that compile
   to direct loads, where per-byte Bigarray reads through a function
   call cost ~100x per element. *)
type view = Bytes.t

let map_view path : view * int =
  let ch = try open_in_bin path with Sys_error m -> corrupt "cannot open: %s" m in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ch)
    (fun () ->
      let size = in_channel_length ch in
      if size < header_bytes then corrupt "file too short (%d bytes) to be a snapshot" size;
      let g = Bytes.create size in
      really_input ch g 0 size;
      (g, size))

let byte (g : view) i = Char.code (Bytes.unsafe_get g i)

let read_u32 g off = Int32.to_int (Bytes.get_int32_le g off) land 0xffffffff

(* low 63 bits, reproducing the sign of the original native int
   ([Int64.to_int] is reduction modulo 2^63).  Writers sign-extend
   native ints to 64 bits, so bit 63 always equals bit 62 in a valid
   file; rejecting non-canonical values keeps every stored bit
   meaningful (a flipped top bit cannot slip past the checksum, which
   folds decoded values). *)
let read_i63 g off =
  let x = Bytes.get_int64_le g off in
  let v = Int64.to_int x in
  if not (Int64.equal (Int64.of_int v) x) then
    corrupt "non-canonical 64-bit value at byte %d" off;
  v

let is_snapshot_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ch ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ch)
        (fun () ->
          match really_input_string ch 8 with
          | s -> String.equal s magic
          | exception End_of_file -> false)

type raw_sec = { r_id : int; r_width : int; r_off : int; r_len : int }

let read_header g size =
  for i = 0 to 7 do
    if byte g i <> Char.code magic.[i] then corrupt "bad magic: not a gqkg snapshot"
  done;
  let v = read_u32 g 8 in
  if v <> version then corrupt "unsupported snapshot version %d (expected %d)" v version;
  let flags = read_u32 g 12 in
  let n = read_i63 g 16 and m = read_i63 g 24 in
  if n < 0 || m < 0 then corrupt "negative node/edge count";
  let num_labels = read_u32 g 32 and num_node_labels = read_u32 g 36 in
  let count = read_u32 g 40 in
  if count < 0 || count > 64 then corrupt "implausible section count %d" count;
  if read_u32 g 44 <> 0 then corrupt "nonzero reserved header field";
  let checksum = read_i63 g 48 in
  if read_i63 g 56 <> 0 then corrupt "nonzero reserved header field";
  let table_end = header_bytes + (count * table_entry_bytes) in
  if table_end > size then corrupt "section table runs past end of file";
  let secs =
    List.init count (fun i ->
        let b = header_bytes + (i * table_entry_bytes) in
        let r =
          {
            r_id = read_u32 g b;
            r_width = read_u32 g (b + 4);
            r_off = read_i63 g (b + 8);
            r_len = read_i63 g (b + 16);
          }
        in
        if r.r_off < table_end || r.r_len < 0 || r.r_off + r.r_len > size then
          corrupt "section %d out of bounds (offset %d, length %d, file %d)" r.r_id r.r_off
            r.r_len size;
        (match r.r_width with
        | 1 | 4 | 8 -> ()
        | w -> corrupt "section %d has unsupported element width %d" r.r_id w);
        if r.r_len mod r.r_width <> 0 then
          corrupt "section %d length %d not a multiple of width %d" r.r_id r.r_len r.r_width;
        r)
  in
  (flags, n, m, num_labels, num_node_labels, checksum, secs)

let decode_ints g r =
  let count = r.r_len / r.r_width in
  let a = Array.make count 0 in
  (match r.r_width with
  | 1 ->
      for i = 0 to count - 1 do
        a.(i) <- byte g (r.r_off + i)
      done
  | 4 ->
      for i = 0 to count - 1 do
        a.(i) <- read_u32 g (r.r_off + (4 * i))
      done
  | _ ->
      for i = 0 to count - 1 do
        a.(i) <- read_i63 g (r.r_off + (8 * i))
      done);
  a

let decode_blob g r = Bytes.sub_string g r.r_off r.r_len

let string_table ~off ~blob ~count ~what =
  if Array.length off <> count + 1 then
    corrupt "%s offsets: %d entries, expected %d" what (Array.length off) (count + 1);
  if off.(0) <> 0 || off.(count) <> String.length blob then
    corrupt "%s offsets do not span the blob" what;
  for i = 0 to count - 1 do
    if off.(i + 1) < off.(i) then corrupt "%s offsets not monotone at %d" what i
  done;
  Array.init count (fun i -> String.sub blob off.(i) (off.(i + 1) - off.(i)))

let check_offsets what off n m =
  if Array.length off <> n + 1 then
    corrupt "%s: %d entries, expected %d" what (Array.length off) (n + 1);
  if n >= 0 && Array.length off > 0 then begin
    if off.(0) <> 0 then corrupt "%s does not start at 0" what;
    if off.(n) <> m then corrupt "%s: total %d, expected %d edges" what off.(n) m;
    for v = 0 to n - 1 do
      if off.(v + 1) < off.(v) then corrupt "%s not monotone at node %d" what v
    done
  end

(* eids must be a permutation of [0, m) whose row assignment matches the
   endpoint column — the bounds check that makes a hostile file safe to
   traverse. *)
let check_csr what ~off ~eid ~endpoint ~n ~m =
  if Array.length eid <> m then corrupt "%s: %d edge ids, expected %d" what (Array.length eid) m;
  let seen = Bytes.make (max m 1) '\000' in
  for v = 0 to n - 1 do
    for i = off.(v) to off.(v + 1) - 1 do
      let e = eid.(i) in
      if e < 0 || e >= m then corrupt "%s: edge id %d out of range" what e;
      if Bytes.get seen e <> '\000' then corrupt "%s: edge id %d appears twice" what e;
      Bytes.set seen e '\001';
      if endpoint.(e) <> v then corrupt "%s: edge %d filed under node %d but endpoint is %d" what e v endpoint.(e)
    done
  done

let load_with_perm path =
  let g, size = map_view path in
  let flags, n, m, num_labels, num_node_labels, stored_checksum, secs = read_header g size in
  (* decode every listed section once, folding the checksum in table
     order — the same order save wrote and folded them *)
  let h = ref C.empty in
  h := C.add_int !h version;
  h := C.add_int !h flags;
  h := C.add_int !h n;
  h := C.add_int !h m;
  h := C.add_int !h num_labels;
  h := C.add_int !h num_node_labels;
  let decoded = Hashtbl.create 32 in
  List.iter
    (fun r ->
      h := C.add_int !h r.r_id;
      h := C.add_int !h r.r_width;
      match r.r_id with
      | id
        when id = sec_label_name_blob || id = sec_nlabel_name_blob || id = sec_node_name_blob
             || id = sec_edge_name_blob ->
          let b = decode_blob g r in
          h := C.add_string !h b;
          Hashtbl.replace decoded r.r_id (Blob b)
      | _ ->
          let a = decode_ints g r in
          h := C.add_int_array !h a;
          Hashtbl.replace decoded r.r_id (Ints a))
    secs;
  if C.finish !h <> stored_checksum then
    corrupt "checksum mismatch: file is corrupt (stored %d, computed %d)" stored_checksum
      (C.finish !h);
  let get_ints id what =
    match Hashtbl.find_opt decoded id with
    | Some (Ints a) -> a
    | _ -> corrupt "missing required section %d (%s)" id what
  in
  let get_blob id what =
    match Hashtbl.find_opt decoded id with
    | Some (Blob b) -> b
    | _ -> corrupt "missing required section %d (%s)" id what
  in
  let esrc = get_ints sec_esrc "esrc" in
  let edst = get_ints sec_edst "edst" in
  if Array.length esrc <> m || Array.length edst <> m then
    corrupt "endpoint columns: %d/%d entries, expected %d" (Array.length esrc)
      (Array.length edst) m;
  for e = 0 to m - 1 do
    if esrc.(e) < 0 || esrc.(e) >= n then corrupt "edge %d: source %d out of range" e esrc.(e);
    if edst.(e) < 0 || edst.(e) >= n then corrupt "edge %d: target %d out of range" e edst.(e)
  done;
  let elabel =
    if num_labels > 0 then begin
      let a = get_ints sec_elabel "elabel" in
      if Array.length a <> m then corrupt "elabel: %d entries, expected %d" (Array.length a) m;
      Array.iteri
        (fun e l -> if l < 0 || l >= num_labels then corrupt "edge %d: label id %d out of range" e l)
        a;
      a
    end
    else Array.make m 0
  in
  let out_off = get_ints sec_out_off "out_off" in
  let out_eid = get_ints sec_out_eid "out_eid" in
  let in_off = get_ints sec_in_off "in_off" in
  let in_eid = get_ints sec_in_eid "in_eid" in
  check_offsets "out_off" out_off n m;
  check_offsets "in_off" in_off n m;
  check_csr "out CSR" ~off:out_off ~eid:out_eid ~endpoint:esrc ~n ~m;
  check_csr "in CSR" ~off:in_off ~eid:in_eid ~endpoint:edst ~n ~m;
  (* the gather that replaces 8 bytes/edge of file *)
  let out_nbr = Array.make m 0 and in_nbr = Array.make m 0 in
  for i = 0 to m - 1 do
    out_nbr.(i) <- edst.(out_eid.(i));
    in_nbr.(i) <- esrc.(in_eid.(i))
  done;
  let label_names =
    string_table ~off:(get_ints sec_label_name_off "label name offsets")
      ~blob:(get_blob sec_label_name_blob "label name blob") ~count:num_labels
      ~what:"label names"
  in
  let node_label_names =
    string_table ~off:(get_ints sec_nlabel_name_off "node label name offsets")
      ~blob:(get_blob sec_nlabel_name_blob "node label name blob") ~count:num_node_labels
      ~what:"node label names"
  in
  let words = B.words_for (max n 1) in
  let flat = get_ints sec_nlabel_bits "node label bitmaps" in
  if Array.length flat <> num_node_labels * words then
    corrupt "node label bitmaps: %d words, expected %d" (Array.length flat)
      (num_node_labels * words);
  let node_label_bits = Array.init num_node_labels (fun l -> Array.sub flat (l * words) words) in
  let sf = get_ints sec_stats "stats" in
  if Array.length sf <> 9 then corrupt "stats: %d fields, expected 9" (Array.length sf);
  let edge_label_counts = get_ints sec_elabel_counts "edge label counts" in
  let node_label_counts = get_ints sec_nlabel_counts "node label counts" in
  if Array.length edge_label_counts <> num_labels then corrupt "edge label counts length";
  if Array.length node_label_counts <> num_node_labels then corrupt "node label counts length";
  let perm =
    if flags land flag_perm <> 0 then begin
      let old_node = get_ints sec_perm_node "node permutation" in
      let old_edge = get_ints sec_perm_edge "edge permutation" in
      if Array.length old_node <> n then corrupt "node permutation length";
      if Array.length old_edge <> m then corrupt "edge permutation length";
      let seen = Bytes.make (max n 1) '\000' in
      Array.iter
        (fun v ->
          if v < 0 || v >= n then corrupt "node permutation entry %d out of range" v;
          if Bytes.get seen v <> '\000' then corrupt "node permutation entry %d repeated" v;
          Bytes.set seen v '\001')
        old_node;
      let new_of_old = Array.make n 0 in
      Array.iteri (fun v' v -> new_of_old.(v) <- v') old_node;
      Some
        {
          Renumber.old_of_new = old_node;
          new_of_old;
          edge_old_of_new = old_edge;
        }
    end
    else None
  in
  let old_node v = match perm with Some p -> p.Renumber.old_of_new.(v) | None -> v in
  let old_edge e = match perm with Some p -> p.Renumber.edge_old_of_new.(e) | None -> e in
  let node_name, edge_name =
    if flags land flag_synthetic_names <> 0 then
      ( (fun v -> "n" ^ string_of_int (old_node v)),
        fun e -> "e" ^ string_of_int (old_edge e) )
    else begin
      let nn =
        string_table ~off:(get_ints sec_node_name_off "node name offsets")
          ~blob:(get_blob sec_node_name_blob "node name blob") ~count:n ~what:"node names"
      in
      let en =
        string_table ~off:(get_ints sec_edge_name_off "edge name offsets")
          ~blob:(get_blob sec_edge_name_blob "edge name blob") ~count:m ~what:"edge names"
      in
      ((fun v -> nn.(v)), fun e -> en.(e))
    end
  in
  (* Closures are rebuilt from the interned tables: Label atoms answer
     by Const equality over the persisted names; Prop/Feature atoms do
     not persist and test false (see the .mli lossiness contract). *)
  let label_universe = Array.map Const.of_string label_names in
  let node_label_universe = Array.map Const.of_string node_label_names in
  let label_sat =
    if num_labels > 0 then Snapshot.const_label_sat label_universe
    else fun _ _ -> false
  in
  let node_label_sat = Snapshot.const_label_sat node_label_universe in
  let node_atom v a =
    match a with
    | Atom.Label _ ->
        let hit = ref false in
        let l = ref 0 in
        while (not !hit) && !l < num_node_labels do
          if B.raw_mem node_label_bits.(!l) v && node_label_sat !l a then hit := true;
          incr l
        done;
        !hit
    | Atom.Prop _ | Atom.Feature _ -> false
  in
  let edge_atom e a =
    match a with
    | Atom.Label _ -> num_labels > 0 && label_sat elabel.(e) a
    | Atom.Prop _ | Atom.Feature _ -> false
  in
  let snapshot : Snapshot.t =
    {
      num_nodes = n;
      num_edges = m;
      esrc;
      edst;
      out_off;
      out_eid;
      out_nbr;
      in_off;
      in_eid;
      in_nbr;
      num_labels;
      elabel;
      label_names;
      label_sat;
      num_node_labels;
      node_label_names;
      node_label_sat;
      node_label_bits;
      node_atom;
      edge_atom;
      node_name;
      edge_name;
      stats =
        {
          out_degree_p50 = sf.(0);
          out_degree_p99 = sf.(1);
          out_degree_max = sf.(2);
          in_degree_p50 = sf.(3);
          in_degree_p99 = sf.(4);
          in_degree_max = sf.(5);
          degree_p50 = sf.(6);
          degree_p99 = sf.(7);
          degree_max = sf.(8);
          edge_label_counts;
          node_label_counts;
        };
      epoch = Snapshot.fresh_epoch ();
    }
  in
  (snapshot, perm)

let load path = fst (load_with_perm path)

type info = {
  i_version : int;
  i_nodes : int;
  i_edges : int;
  i_labels : int;
  i_node_labels : int;
  i_renumbered : bool;
  i_synthetic_names : bool;
  i_sections : int;
  i_file_bytes : int;
}

let read_info path =
  let g, size = map_view path in
  let flags, n, m, num_labels, num_node_labels, _, secs = read_header g size in
  {
    i_version = version;
    i_nodes = n;
    i_edges = m;
    i_labels = num_labels;
    i_node_labels = num_node_labels;
    i_renumbered = flags land flag_perm <> 0;
    i_synthetic_names = flags land flag_synthetic_names <> 0;
    i_sections = List.length secs;
    i_file_bytes = size;
  }

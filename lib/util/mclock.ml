external raw_ns : unit -> int64 = "gqkg_monotonic_ns"

(* CLOCK_MONOTONIC is monotone by contract; the watermark additionally
   hardens the REALTIME fallback path (exotic hosts) so callers can rely
   on non-decreasing reads unconditionally.  Lock-free: a CAS loop that
   only ever raises the watermark. *)
let watermark = Atomic.make 0L

let rec now_ns () =
  let t = raw_ns () in
  let seen = Atomic.get watermark in
  if Int64.compare t seen >= 0 then
    if Atomic.compare_and_set watermark seen t then t else now_ns ()
  else seen

let ns_to_ms ns = Int64.to_float ns /. 1_000_000.
let now_ms () = ns_to_ms (now_ns ())

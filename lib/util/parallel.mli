(** Fork-join domain pool for embarrassingly-parallel index loops.

    Workers are spawned lazily once and parked between joins, so a join
    after the first pays a mutex/signal handshake per helper rather
    than a [Domain.spawn] — small (sub-millisecond) workloads amortize.
    Nested joins and single-core machines degrade to inline sequential
    execution; a join can never deadlock.

    Deterministic by construction: for a fixed (n, domains, grain)
    triple the slices and the merge order are always the same, so
    floating-point reductions reproduce exactly. *)

(** Domains worth using on this machine: [recommended_domain_count () - 1]
    clamped to [1, 8]. Returns 1 on single-core machines (sequential
    fallback). *)
val default_domains : unit -> int

(** Contiguous half-open slices covering [0, n), at most [domains], all
    non-empty. *)
val slices : domains:int -> n:int -> (int * int) list

(** [map_slices ?domains ?grain n f] runs [f first last] per slice
    (slice 0 on the calling domain, the rest on pool workers) and
    returns results in slice order. [grain] (default 1) is the minimum
    indices per slice — joins smaller than [2 * grain] stay sequential.
    [f] must not mutate shared state. Exceptions from any slice are
    re-raised in the caller, earliest slice first. *)
val map_slices : ?domains:int -> ?grain:int -> int -> (int -> int -> 'a) -> 'a list

(** Parallel for over [0, n); per-index work must be independent. *)
val iter : ?domains:int -> ?grain:int -> int -> (int -> unit) -> unit

(** Per-slice accumulators folded with [body], merged left-to-right in
    slice order with [merge]. *)
val map_reduce :
  ?domains:int ->
  ?grain:int ->
  int ->
  init:(unit -> 'a) ->
  body:('a -> int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  'a

(** Element-wise sum of [partial] into [into]; returns [into]. *)
val sum_float_arrays : into:float array -> float array -> float array

(** {1 Pool introspection and warm-up} *)

(** Pre-spawn up to [n] parked workers (clamped to the pool cap) so the
    first timed join does not pay domain-spawn latency — bench harness
    warm-up. *)
val ensure_workers : int -> unit

(** Workers currently alive (parked or running). *)
val live_workers : unit -> int

(** Total domains ever spawned by the pool — stays flat across repeated
    joins once the pool is warm. *)
val spawned_total : unit -> int

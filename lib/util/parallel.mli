(** Fork-join domain pool for embarrassingly-parallel index loops.

    Deterministic by construction: for a fixed (n, domains) pair the
    slices and the merge order are always the same, so floating-point
    reductions reproduce exactly. Sequential fallback when the machine
    reports a single core. *)

(** Domains worth using on this machine: [recommended_domain_count () - 1]
    clamped to [1, 8]. Returns 1 on single-core machines (sequential
    fallback). *)
val default_domains : unit -> int

(** Contiguous half-open slices covering [0, n), at most [domains], all
    non-empty. *)
val slices : domains:int -> n:int -> (int * int) list

(** [map_slices ?domains n f] runs [f first last] per slice (slice 0 on
    the calling domain, the rest on spawned domains) and returns results
    in slice order. [f] must not mutate shared state. *)
val map_slices : ?domains:int -> int -> (int -> int -> 'a) -> 'a list

(** Parallel for over [0, n); per-index work must be independent. *)
val iter : ?domains:int -> int -> (int -> unit) -> unit

(** Per-slice accumulators folded with [body], merged left-to-right in
    slice order with [merge]. *)
val map_reduce :
  ?domains:int -> int -> init:(unit -> 'a) -> body:('a -> int -> 'a) -> merge:('a -> 'a -> 'a) -> 'a

(** Element-wise sum of [partial] into [into]; returns [into]. *)
val sum_float_arrays : into:float array -> float array -> float array

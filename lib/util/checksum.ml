(* FNV-1a folded over native 63-bit ints. Multiplication wraps in
   native int arithmetic, which is exactly what a rolling product hash
   wants; [land max_int] keeps every intermediate non-negative so the
   value round-trips through an i64 file field unchanged. *)

let prime = 0x100000001b3 (* the 64-bit FNV prime, in 63-bit range *)

let empty = 0x3243f6a8885a308d (* pi, as tradition demands *)

let add_int h x = (h lxor x) * prime land max_int

let add_int_array h a =
  let h = ref (add_int h (Array.length a)) in
  for i = 0 to Array.length a - 1 do
    h := (!h lxor Array.unsafe_get a i) * prime land max_int
  done;
  !h

(* Pack up to 8 chars per multiplication: one fold step per word, not
   per byte, keeps name-table hashing off the profile. *)
let add_string h s =
  let n = String.length s in
  let h = ref (add_int h n) in
  let i = ref 0 in
  while n - !i >= 8 do
    let w = ref 0 in
    for k = 0 to 7 do
      w := !w lor (Char.code (String.unsafe_get s (!i + k)) lsl (8 * k))
    done;
    h := (!h lxor !w) * prime land max_int;
    i := !i + 8
  done;
  let w = ref 0 in
  while !i < n do
    w := (!w lsl 8) lor Char.code (String.unsafe_get s !i);
    incr i
  done;
  add_int !h !w

let finish h =
  (* splitmix-style avalanche so short inputs still spread bits *)
  let h = h lxor (h lsr 30) in
  let h = h * 0x2545f4914f6cdd1d land max_int in
  let h = h lxor (h lsr 27) in
  let h = h * 0x369dea0f31a53f85 land max_int in
  (h lxor (h lsr 31)) land max_int

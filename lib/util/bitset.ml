(* Packed bitsets over small int universes.

   Two layers share the bit layout ([Sys.int_size] bits per word, so a
   word is an immediate — no boxing anywhere):

   - "raw" operations act on caller-allocated [int array] words of a
     fixed width.  The RPQ product kernel stores NFA state sets this
     way: equality, hashing and closure become O(words) instead of
     O(set size) sorted-array scans, and the word array itself is the
     interning key.
   - [t] wraps a growable word array for seen-sets over universes whose
     size is discovered on the fly (e.g. product state ids). *)

let bits_per_word = Sys.int_size

(* Words needed to cover [n] bits (at least one, so the empty universe
   still has a valid — all-zero — representation). *)
let words_for n = if n <= 0 then 1 else ((n - 1) / bits_per_word) + 1

(* ---------------- raw fixed-width operations ---------------- *)

let raw_create n = Array.make (words_for n) 0
let raw_mem ws i = ws.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0
let raw_add ws i = ws.(i / bits_per_word) <- ws.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let raw_clear ws = Array.fill ws 0 (Array.length ws) 0

let raw_union_into ~into ws =
  for k = 0 to Array.length ws - 1 do
    into.(k) <- into.(k) lor ws.(k)
  done

let raw_is_empty ws =
  let rec loop k = k = Array.length ws || (ws.(k) = 0 && loop (k + 1)) in
  loop 0

(* Iterate the set bit positions of a single word, ascending — the
   per-slot decode step of the multi-source frontier engines, where one
   word carries a batch of BFS sources.  [lsr] is a logical shift, so a
   word with the top (sign) bit set still terminates. *)
let word_iter w f =
  let w = ref w and i = ref 0 in
  while !w <> 0 do
    if !w land 1 <> 0 then f !i;
    incr i;
    w := !w lsr 1
  done

(* Monomorphic word-wise comparison; widths must match (they do inside
   one kernel, where the width is fixed by the automaton). *)
let raw_equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop k = k = n || (a.(k) = b.(k) && loop (k + 1)) in
  loop 0

(* FNV-1a-style hash over the words, folding each 63-bit word in three
   31-bit chunks to keep the multiplies in immediate-int range. *)
let raw_hash ws =
  let h = ref 0x811c9dc5 in
  for k = 0 to Array.length ws - 1 do
    let w = ws.(k) in
    h := (!h lxor (w land 0x7fffffff)) * 0x01000193;
    h := (!h lxor ((w lsr 31) land 0x7fffffff)) * 0x01000193;
    h := (!h lxor (w lsr 62)) * 0x01000193
  done;
  !h land max_int

let raw_iter ws f =
  for k = 0 to Array.length ws - 1 do
    let w = ref ws.(k) in
    let base = k * bits_per_word in
    while !w <> 0 do
      (* Isolate and strip the lowest set bit. *)
      let bit = !w land - !w in
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      f (base + log2 bit 0);
      w := !w lxor bit
    done
  done

let raw_cardinal ws =
  let c = ref 0 in
  raw_iter ws (fun _ -> incr c);
  !c

(* Members in ascending order (bits are iterated low to high). *)
let raw_to_array ws =
  let n = raw_cardinal ws in
  let out = Array.make n 0 in
  let k = ref 0 in
  raw_iter ws (fun i ->
      out.(!k) <- i;
      incr k);
  out

let raw_of_array n members =
  let ws = raw_create n in
  Array.iter (fun i -> raw_add ws i) members;
  ws

(* ---------------- growable set ---------------- *)

type t = { mutable words : int array }

let create ?(capacity = bits_per_word) () = { words = Array.make (words_for capacity) 0 }

let ensure t i =
  let need = (i / bits_per_word) + 1 in
  if need > Array.length t.words then begin
    let bigger = Array.make (max need (2 * Array.length t.words)) 0 in
    Array.blit t.words 0 bigger 0 (Array.length t.words);
    t.words <- bigger
  end

let add t i =
  ensure t i;
  raw_add t.words i

let mem t i = i / bits_per_word < Array.length t.words && raw_mem t.words i
let clear t = raw_clear t.words
let is_empty t = raw_is_empty t.words
let cardinal t = raw_cardinal t.words
let iter t f = raw_iter t.words f
let to_sorted_array t = raw_to_array t.words

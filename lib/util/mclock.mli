(** Monotonic time source for deadline arithmetic.

    [now_ns] reads [CLOCK_MONOTONIC]: it advances steadily and never
    jumps backwards (or forwards) when the host wall clock is stepped by
    NTP or an operator.  Budgets ({!Budget}) anchor their deadlines
    here, so a long-running process — notably [gqkg serve] — cannot
    spuriously trip (or never trip) an in-flight query because the wall
    clock moved.  The absolute value is meaningless (typically boot
    time); only differences are. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock.  Guaranteed non-decreasing
    across calls within a process. *)

val now_ms : unit -> float
(** [now_ns] in milliseconds (float). *)

val ns_to_ms : int64 -> float
(** Convert a nanosecond difference to milliseconds. *)

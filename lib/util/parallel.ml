(* Fork-join domain pool for the embarrassingly-parallel source loops
   (per-source Brandes passes, per-source bc_r DAG replays, product
   frontier expansion).  OCaml 5 domains are heavyweight — one system
   thread plus a minor heap each, and spawning costs hundreds of
   microseconds — so workers are spawned lazily ONCE and parked on a
   condition variable between joins.  A join that arrives after the
   first one pays a mutex/signal handshake per helper, not a spawn, so
   the pool amortizes even for sub-millisecond workloads.

   The API is deliberately deterministic: [map_slices] always splits
   [0, n) into the same contiguous slices for a given (n, domains, grain)
   triple and returns the per-slice results in slice order, so
   floating-point reductions merge in a fixed order and results are
   reproducible for a fixed domain count.

   Nested joins are safe by construction: a join acquires helpers from
   the shared free list, and when none are available (single core, or a
   join already running inside a worker) it simply runs every slice
   inline on the calling domain — no deadlock, no second-level spawn. *)

(* Leave one core for the rest of the process; cap at 8 — the source
   loops saturate memory bandwidth long before they run out of cores. *)
let default_domains () = min 8 (max 1 (Domain.recommended_domain_count () - 1))

(* ---- the worker pool --------------------------------------------------- *)

type worker = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
}

(* Most helpers a single join can hold: [default_domains] is capped at 8
   and the caller runs one slice itself. *)
let max_workers = 7

let pool_lock = Mutex.create ()
let free : worker list ref = ref []
let live = ref 0
let spawned_counter = Atomic.make 0

let worker_loop w =
  let rec loop () =
    Mutex.lock w.lock;
    while w.job = None do
      Condition.wait w.cond w.lock
    done;
    let job = Option.get w.job in
    w.job <- None;
    Mutex.unlock w.lock;
    (* The job closure is completion-signalled and exception-safe by the
       dispatcher; nothing escapes into the loop. *)
    job ();
    loop ()
  in
  loop ()

let spawn_worker () =
  let w = { lock = Mutex.create (); cond = Condition.create (); job = None } in
  ignore (Domain.spawn (fun () -> worker_loop w) : unit Domain.t);
  Atomic.incr spawned_counter;
  w

(* Pop up to [want] parked workers, spawning fresh ones while under the
   cap; returns possibly fewer (even none) when the pool is saturated —
   the caller then runs the unassigned slices inline. *)
let acquire want =
  if want <= 0 then []
  else begin
    Mutex.lock pool_lock;
    let got = ref [] and n = ref 0 in
    while !n < want && !free <> [] do
      (match !free with
      | w :: rest ->
          free := rest;
          got := w :: !got;
          incr n
      | [] -> ());
    done;
    while !n < want && !live < max_workers do
      got := spawn_worker () :: !got;
      incr live;
      incr n
    done;
    Mutex.unlock pool_lock;
    !got
  end

let release ws =
  if ws <> [] then begin
    Mutex.lock pool_lock;
    free := List.rev_append ws !free;
    Mutex.unlock pool_lock
  end

let ensure_workers n =
  let n = min (max 0 n) max_workers in
  let extra = acquire n in
  release extra

let live_workers () = !live
let spawned_total () = Atomic.get spawned_counter

let dispatch w thunk =
  Mutex.lock w.lock;
  w.job <- Some thunk;
  Condition.signal w.cond;
  Mutex.unlock w.lock

(* ---- deterministic slicing -------------------------------------------- *)

(* Contiguous half-open slices [first, last) covering [0, n), at most
   [domains] of them, never empty. *)
let slices ~domains ~n =
  if n <= 0 then []
  else begin
    let domains = max 1 (min domains n) in
    let chunk = (n + domains - 1) / domains in
    List.init domains (fun i -> (i * chunk, min n ((i + 1) * chunk)))
    |> List.filter (fun (first, last) -> first < last)
  end

(* [map_slices ?domains ?grain n f] evaluates [f first last] on every
   slice and returns the results in slice order.  [grain] is the minimum
   indices per slice: a join over fewer than [2 * grain] indices stays
   sequential, so per-helper handshake overhead can never dominate a
   tiny workload.  Slice 0 runs on the calling domain while the others
   run on pool workers.  [f] must not mutate state shared between
   slices. *)
let map_slices ?domains ?(grain = 1) n f =
  let domains = match domains with Some d when d > 0 -> d | Some _ | None -> default_domains () in
  let domains = if grain > 1 then min domains (max 1 (n / grain)) else domains in
  match slices ~domains ~n with
  | [] -> []
  | [ (first, last) ] -> [ f first last ]
  | ss ->
      let k = List.length ss in
      let helpers = acquire (k - 1) in
      let h = List.length helpers in
      if h = 0 then List.map (fun (first, last) -> f first last) ss
      else begin
        (* Deal slices round-robin over the caller (executor 0) and the
           helpers; results land in slice order regardless of which
           executor ran them. *)
        let results = Array.make k None in
        let exec i (first, last) =
          results.(i) <-
            Some (match f first last with r -> Ok r | exception e -> Error e)
        in
        let latch_lock = Mutex.create () in
        let latch_cond = Condition.create () in
        let remaining = ref h in
        let indexed = List.mapi (fun i s -> (i, s)) ss in
        List.iteri
          (fun j w ->
            let mine = List.filter (fun (i, _) -> i mod (h + 1) = j + 1) indexed in
            dispatch w (fun () ->
                List.iter (fun (i, s) -> exec i s) mine;
                Mutex.lock latch_lock;
                decr remaining;
                if !remaining = 0 then Condition.signal latch_cond;
                Mutex.unlock latch_lock))
          helpers;
        List.iter (fun (i, s) -> if i mod (h + 1) = 0 then exec i s) indexed;
        Mutex.lock latch_lock;
        while !remaining > 0 do
          Condition.wait latch_cond latch_lock
        done;
        Mutex.unlock latch_lock;
        release helpers;
        Array.to_list results
        |> List.map (function
             | Some (Ok r) -> r
             | Some (Error e) -> raise e
             | None -> assert false)
      end

(* Parallel for over [0, n): each index handled exactly once, no result.
   Per-index closures must be independent. *)
let iter ?domains ?grain n f =
  ignore
    (map_slices ?domains ?grain n (fun first last ->
         for i = first to last - 1 do
           f i
         done))

(* Map-reduce over per-slice accumulators: [init ()] makes a private
   accumulator per slice, [body acc i] folds index [i] into it, [merge]
   combines the per-slice accumulators left to right (slice order, so
   the reduction order is deterministic). *)
let map_reduce ?domains ?grain n ~init ~body ~merge =
  let partials =
    map_slices ?domains ?grain n (fun first last ->
        let acc = init () in
        let acc = ref acc in
        for i = first to last - 1 do
          acc := body !acc i
        done;
        !acc)
  in
  match partials with
  | [] -> init ()
  | first :: rest -> List.fold_left merge first rest

(* Sum float arrays produced per slice into the first one — the common
   merge for per-source centrality accumulators. *)
let sum_float_arrays ~into partial =
  Array.iteri (fun i x -> into.(i) <- into.(i) +. x) partial;
  into

(* Fork-join domain pool for the embarrassingly-parallel source loops
   (per-source Brandes passes, per-source bc_r DAGs, product frontier
   expansion).  OCaml 5 domains are heavyweight (one system thread plus a
   minor heap each), so the pool spawns at most [default_domains ()] of
   them per join, runs the first slice on the calling domain, and falls
   back to plain sequential execution when the machine reports a single
   core or when a nested join is already saturating it.

   The API is deliberately deterministic: [map_slices] always splits
   [0, n) into the same contiguous slices for a given (n, domains) pair
   and returns the per-slice results in slice order, so floating-point
   reductions merge in a fixed order and results are reproducible for a
   fixed domain count. *)

(* Leave one core for the rest of the process; cap at 8 — the source
   loops saturate memory bandwidth long before they run out of cores. *)
let default_domains () = min 8 (max 1 (Domain.recommended_domain_count () - 1))

(* Contiguous half-open slices [first, last) covering [0, n), at most
   [domains] of them, never empty. *)
let slices ~domains ~n =
  if n <= 0 then []
  else begin
    let domains = max 1 (min domains n) in
    let chunk = (n + domains - 1) / domains in
    List.init domains (fun i -> (i * chunk, min n ((i + 1) * chunk)))
    |> List.filter (fun (first, last) -> first < last)
  end

(* [map_slices ?domains n f] evaluates [f first last] on every slice and
   returns the results in slice order.  Slice 0 runs on the calling
   domain while the others run on freshly spawned domains, so a join
   never deadlocks even when nested.  [f] must not mutate state shared
   between slices. *)
let map_slices ?domains n f =
  let domains = match domains with Some d when d > 0 -> d | Some _ | None -> default_domains () in
  match slices ~domains ~n with
  | [] -> []
  | [ (first, last) ] -> [ f first last ]
  | (first0, last0) :: rest ->
      let spawned = List.map (fun (first, last) -> Domain.spawn (fun () -> f first last)) rest in
      let head = f first0 last0 in
      head :: List.map Domain.join spawned

(* Parallel for over [0, n): each index handled exactly once, no result.
   Per-index closures must be independent. *)
let iter ?domains n f =
  ignore
    (map_slices ?domains n (fun first last ->
         for i = first to last - 1 do
           f i
         done))

(* Map-reduce over per-slice accumulators: [init ()] makes a private
   accumulator per slice, [body acc i] folds index [i] into it, [merge]
   combines the per-slice accumulators left to right (slice order, so
   the reduction order is deterministic). *)
let map_reduce ?domains n ~init ~body ~merge =
  let partials =
    map_slices ?domains n (fun first last ->
        let acc = init () in
        let acc = ref acc in
        for i = first to last - 1 do
          acc := body !acc i
        done;
        !acc)
  in
  match partials with
  | [] -> init ()
  | first :: rest -> List.fold_left merge first rest

(* Sum float arrays produced per slice into the first one — the common
   merge for per-source centrality accumulators. *)
let sum_float_arrays ~into partial =
  Array.iteri (fun i x -> into.(i) <- into.(i) +. x) partial;
  into

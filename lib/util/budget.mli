(** Cooperative resource budgets for query evaluation.

    A budget bounds an evaluation along three axes — wall-clock time,
    interned product states, and visited/step count — and supports
    deterministic fault injection for tests.  Kernels call {!check} (or
    the more specific {!charge_steps} / {!note_states}) at coarse
    granularity: once per BFS level, per batch, or per few hundred DFS
    steps, never per edge.  A budget that has tripped stays tripped
    ([check] is sticky), so a kernel that misses one check site still
    stops at the next.

    Budgets are shareable across OCaml domains: all mutable state is
    held in [Atomic.t] cells, so the parallel slices of
    [Regex_centrality] can charge against one budget.

    Deadlines are computed on the monotonic clock ({!Mclock}), not wall
    time: stepping the host clock (NTP jump, operator reset) can
    neither trip an in-flight budget spuriously nor keep it alive past
    its allotment — the invariant a long-lived daemon depends on. *)

type reason =
  | Timeout  (** the monotonic deadline passed *)
  | State_limit  (** too many product states were interned *)
  | Step_limit  (** too many nodes/configurations were visited *)
  | Injected  (** tripped by the fault-injection harness *)
  | Cancelled  (** tripped externally via {!cancel} (signal, drain) *)

type completeness =
  | Complete
  | Partial of reason
      (** [Partial r] promises soundness: every answer reported is an
          answer of the unbudgeted evaluation (a subset, never a
          superset). *)

type 'a outcome = { value : 'a; completeness : completeness }

type t

val unlimited : t
(** A shared budget that never trips.  [check unlimited] is a cheap
    constant-false; kernels may use it as the default. *)

val create :
  ?clock_ns:(unit -> int64) ->
  ?timeout_ms:int ->
  ?max_states:int ->
  ?max_steps:int ->
  ?trip_after_checks:int ->
  unit ->
  t
(** [create ()] with no limits behaves like {!unlimited} but is a fresh
    budget (its counters still accumulate, and [trip_after_checks] can
    still fire).  [trip_after_checks n] arms the deterministic fault
    injector: the [n]-th call to {!check} trips the budget with reason
    {!Injected}.  [n = 0] trips on the first check.  [clock_ns]
    (default {!Mclock.now_ns}) is the monotonic time source deadlines
    are anchored to — injectable so tests can pin the invariant that
    deadline decisions depend only on this source, never wall time. *)

val is_unlimited : t -> bool
(** True for budgets with no limits and no injector armed — kernels may
    skip bookkeeping entirely for these. *)

val check : t -> bool
(** [check b] returns [true] if the budget is exhausted.  Sticky: once
    true, always true.  Each call counts toward the fault injector and
    is recorded in {!checks_performed}. *)

val cancel : t -> unit
(** Trip the budget now with reason {!Cancelled} (idempotent; an
    earlier trip keeps its reason).  Used by signal handlers and server
    drain to stop in-flight work at its next check site — the
    evaluation returns a sound [Partial Cancelled] instead of being
    killed mid-write.  Cancelling a budget with no limits still bites:
    {!check} consults the trip flag first.  Never cancel the shared
    {!unlimited} value. *)

val charge_steps : t -> int -> unit
(** Add [n] to the visited/step counter.  Does not itself trip the
    budget — the next {!check} observes the new total. *)

val note_states : t -> int -> unit
(** Record the current number of interned product states (an absolute
    gauge, not an increment). *)

val exhausted : t -> reason option
(** [Some r] once the budget has tripped. *)

val completeness : t -> completeness
(** [Complete] if the budget never tripped, [Partial r] otherwise. *)

val checks_performed : t -> int
(** Total calls to {!check} so far — used by the fault-injection suite
    to count check sites before replaying with [trip_after_checks]. *)

val steps_charged : t -> int
(** Total steps charged via {!charge_steps}. *)

val states_noted : t -> int
(** Latest gauge recorded via {!note_states}. *)

val elapsed_ms : t -> float
(** Milliseconds since the budget was created (0.0 for {!unlimited}). *)

val similar : t -> t
(** A fresh budget with the same limits, counters reset and deadline
    re-anchored at now — used by degradation ladders that retry a
    cheaper algorithm under the same constraints.  The fault injector is
    NOT copied (a retry should not re-trip deterministically). *)

val describe : t -> string
(** One-line human-readable consumption summary for [explain]. *)

val reason_to_string : reason -> string

/* Monotonic clock for deadline arithmetic: CLOCK_MONOTONIC is immune
   to host wall-clock steps (NTP jumps, manual resets), which matters
   for budgets living inside a long-running daemon.  Falls back to
   CLOCK_REALTIME only where the monotonic clock is unavailable. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value gqkg_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    clock_gettime(CLOCK_REALTIME, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

(** Packed bitsets over small int universes.

    The "raw" layer operates on caller-allocated [int array] words of a
    fixed width — the representation the RPQ product kernel interns NFA
    state sets under (O(words) equality/hash, and the array doubles as
    the hash key). [t] wraps a growable word array for seen-sets whose
    universe grows on the fly. *)

val bits_per_word : int

(** Words needed to cover [n] bits; at least 1. *)
val words_for : int -> int

(** Fresh all-zero raw words for an [n]-bit universe. *)
val raw_create : int -> int array

val raw_mem : int array -> int -> bool
val raw_add : int array -> int -> unit
val raw_clear : int array -> unit

(** [raw_union_into ~into ws] ors [ws] into [into] (widths must match). *)
val raw_union_into : into:int array -> int array -> unit

val raw_is_empty : int array -> bool

(** Monomorphic word-wise equality. *)
val raw_equal : int array -> int array -> bool

(** FNV-1a-style hash of the words, in immediate-int range. *)
val raw_hash : int array -> int

(** Iterate set members in ascending order. *)
val raw_iter : int array -> (int -> unit) -> unit

(** [word_iter w f] calls [f] on the set bit positions of the single
    word [w], ascending — decoding a packed batch of BFS source slots. *)
val word_iter : int -> (int -> unit) -> unit

val raw_cardinal : int array -> int

(** Members in ascending order. *)
val raw_to_array : int array -> int array

(** [raw_of_array n members] packs [members] (all < [n]) into raw words. *)
val raw_of_array : int -> int array -> int array

(** Growable bitset. *)
type t

val create : ?capacity:int -> unit -> t
val add : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val is_empty : t -> bool
val cardinal : t -> int
val iter : t -> (int -> unit) -> unit
val to_sorted_array : t -> int array

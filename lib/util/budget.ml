type reason = Timeout | State_limit | Step_limit | Injected
type completeness = Complete | Partial of reason
type 'a outcome = { value : 'a; completeness : completeness }

type t = {
  deadline : float option;  (** absolute [Unix.gettimeofday] seconds *)
  max_states : int option;
  max_steps : int option;
  trip_after_checks : int option;
  started : float;
  tripped : reason option Atomic.t;
  checks : int Atomic.t;
  steps : int Atomic.t;
  states : int Atomic.t;
  limited : bool;  (** false = nothing to enforce, checks are free *)
}

let make ?timeout_ms ?max_states ?max_steps ?trip_after_checks ~now () =
  let deadline =
    Option.map (fun ms -> now +. (float_of_int ms /. 1000.)) timeout_ms
  in
  {
    deadline;
    max_states;
    max_steps;
    trip_after_checks;
    started = now;
    tripped = Atomic.make None;
    checks = Atomic.make 0;
    steps = Atomic.make 0;
    states = Atomic.make 0;
    limited =
      Option.is_some timeout_ms || Option.is_some max_states
      || Option.is_some max_steps
      || Option.is_some trip_after_checks;
  }

let unlimited = make ~now:0.0 ()

let create ?timeout_ms ?max_states ?max_steps ?trip_after_checks () =
  make ?timeout_ms ?max_states ?max_steps ?trip_after_checks
    ~now:(Unix.gettimeofday ()) ()

let is_unlimited t = not t.limited

let trip t reason =
  (* First writer wins; later trips keep the original reason. *)
  ignore (Atomic.compare_and_set t.tripped None (Some reason))

let check t =
  if not t.limited then false
  else begin
    let n = Atomic.fetch_and_add t.checks 1 in
    (match t.trip_after_checks with
    | Some k when n >= k -> trip t Injected
    | _ -> ());
    (match Atomic.get t.tripped with
    | Some _ -> ()
    | None ->
        (match t.max_states with
        | Some k when Atomic.get t.states > k -> trip t State_limit
        | _ -> ());
        (match t.max_steps with
        | Some k when Atomic.get t.steps > k -> trip t Step_limit
        | _ -> ());
        (match t.deadline with
        | Some d when Unix.gettimeofday () > d -> trip t Timeout
        | _ -> ()));
    Atomic.get t.tripped <> None
  end

let charge_steps t n = if t.limited then ignore (Atomic.fetch_and_add t.steps n)
let note_states t n = if t.limited then Atomic.set t.states n
let exhausted t = Atomic.get t.tripped

let completeness t =
  match Atomic.get t.tripped with None -> Complete | Some r -> Partial r

let checks_performed t = Atomic.get t.checks
let steps_charged t = Atomic.get t.steps
let states_noted t = Atomic.get t.states

let elapsed_ms t =
  if t.started = 0.0 then 0.0
  else (Unix.gettimeofday () -. t.started) *. 1000.

let similar t =
  let timeout_ms =
    Option.map
      (fun d -> int_of_float (Float.max 1. ((d -. t.started) *. 1000.)))
      t.deadline
  in
  create ?timeout_ms ?max_states:t.max_states ?max_steps:t.max_steps ()

let reason_to_string = function
  | Timeout -> "timeout"
  | State_limit -> "state-limit"
  | Step_limit -> "step-limit"
  | Injected -> "injected"

let describe t =
  let limit name = function
    | Some k -> Printf.sprintf "%s<=%d" name k
    | None -> Printf.sprintf "%s=unlimited" name
  in
  let deadline =
    match t.deadline with
    | Some d ->
        Printf.sprintf "timeout<=%.0fms" ((d -. t.started) *. 1000.)
    | None -> "timeout=unlimited"
  in
  Printf.sprintf "%s %s %s | spent: %.1fms, %d steps, %d states, %d checks%s"
    deadline
    (limit "states" t.max_states)
    (limit "steps" t.max_steps)
    (elapsed_ms t) (steps_charged t) (states_noted t) (checks_performed t)
    (match Atomic.get t.tripped with
    | None -> ""
    | Some r -> Printf.sprintf " | exhausted (%s)" (reason_to_string r))

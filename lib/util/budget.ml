type reason = Timeout | State_limit | Step_limit | Injected | Cancelled
type completeness = Complete | Partial of reason
type 'a outcome = { value : 'a; completeness : completeness }

(* Deadlines are anchored on the monotonic clock ({!Mclock}), never the
   wall clock: a long-running process (gqkg serve) must not trip an
   in-flight query because NTP stepped the host clock, nor keep one
   alive forever because the clock stepped backwards.  All time fields
   are monotonic nanoseconds. *)
type t = {
  clock_ns : unit -> int64;  (** monotonic source; injectable for tests *)
  deadline : int64 option;  (** absolute monotonic ns *)
  max_states : int option;
  max_steps : int option;
  trip_after_checks : int option;
  started : int64;
  tripped : reason option Atomic.t;
  checks : int Atomic.t;
  steps : int Atomic.t;
  states : int Atomic.t;
  limited : bool;  (** false = nothing to enforce, checks are free *)
}

let zero_clock () = 0L

let make ?timeout_ms ?max_states ?max_steps ?trip_after_checks ~clock_ns ~now
    () =
  let deadline =
    Option.map
      (fun ms -> Int64.add now (Int64.mul (Int64.of_int ms) 1_000_000L))
      timeout_ms
  in
  {
    clock_ns;
    deadline;
    max_states;
    max_steps;
    trip_after_checks;
    started = now;
    tripped = Atomic.make None;
    checks = Atomic.make 0;
    steps = Atomic.make 0;
    states = Atomic.make 0;
    limited =
      Option.is_some timeout_ms || Option.is_some max_states
      || Option.is_some max_steps
      || Option.is_some trip_after_checks;
  }

let unlimited = make ~clock_ns:zero_clock ~now:0L ()

let create ?(clock_ns = Mclock.now_ns) ?timeout_ms ?max_states ?max_steps
    ?trip_after_checks () =
  make ?timeout_ms ?max_states ?max_steps ?trip_after_checks ~clock_ns
    ~now:(clock_ns ()) ()

let is_unlimited t = not t.limited

let trip t reason =
  (* First writer wins; later trips keep the original reason. *)
  ignore (Atomic.compare_and_set t.tripped None (Some reason))

let cancel t = trip t Cancelled

let check t =
  (* The tripped flag is consulted before the limited fast path so that
     an external [cancel] bites even on a budget with no limits. *)
  if Atomic.get t.tripped <> None then begin
    if t.limited then ignore (Atomic.fetch_and_add t.checks 1);
    true
  end
  else if not t.limited then false
  else begin
    let n = Atomic.fetch_and_add t.checks 1 in
    (match t.trip_after_checks with
    | Some k when n >= k -> trip t Injected
    | _ -> ());
    (match Atomic.get t.tripped with
    | Some _ -> ()
    | None ->
        (match t.max_states with
        | Some k when Atomic.get t.states > k -> trip t State_limit
        | _ -> ());
        (match t.max_steps with
        | Some k when Atomic.get t.steps > k -> trip t Step_limit
        | _ -> ());
        (match t.deadline with
        | Some d when Int64.compare (t.clock_ns ()) d > 0 -> trip t Timeout
        | _ -> ()));
    Atomic.get t.tripped <> None
  end

let charge_steps t n = if t.limited then ignore (Atomic.fetch_and_add t.steps n)
let note_states t n = if t.limited then Atomic.set t.states n
let exhausted t = Atomic.get t.tripped

let completeness t =
  match Atomic.get t.tripped with None -> Complete | Some r -> Partial r

let checks_performed t = Atomic.get t.checks
let steps_charged t = Atomic.get t.steps
let states_noted t = Atomic.get t.states

let elapsed_ms t =
  if t.clock_ns == zero_clock then 0.0
  else Mclock.ns_to_ms (Int64.sub (t.clock_ns ()) t.started)

let timeout_ms_of t =
  Option.map
    (fun d ->
      max 1 (Int64.to_int (Int64.div (Int64.sub d t.started) 1_000_000L)))
    t.deadline

let similar t =
  create ~clock_ns:t.clock_ns ?timeout_ms:(timeout_ms_of t)
    ?max_states:t.max_states ?max_steps:t.max_steps ()

let reason_to_string = function
  | Timeout -> "timeout"
  | State_limit -> "state-limit"
  | Step_limit -> "step-limit"
  | Injected -> "injected"
  | Cancelled -> "cancelled"

let describe t =
  let limit name = function
    | Some k -> Printf.sprintf "%s<=%d" name k
    | None -> Printf.sprintf "%s=unlimited" name
  in
  let deadline =
    match timeout_ms_of t with
    | Some ms -> Printf.sprintf "timeout<=%dms" ms
    | None -> "timeout=unlimited"
  in
  Printf.sprintf "%s %s %s | spent: %.1fms, %d steps, %d states, %d checks%s"
    deadline
    (limit "states" t.max_states)
    (limit "steps" t.max_steps)
    (elapsed_ms t) (steps_charged t) (states_noted t) (checks_performed t)
    (match Atomic.get t.tripped with
    | None -> ""
    | Some r -> Printf.sprintf " | exhausted (%s)" (reason_to_string r))

(** Fast non-cryptographic integrity checksum over logical content.

    The binary snapshot format ({!Gqkg_graph.Snapshot_io}) checksums the
    *decoded* values — ints, strings, section shapes — rather than raw
    file bytes, so both the writer (folding from live arrays) and the
    reader (folding from freshly decoded arrays) compute it in one cache-
    friendly pass over native ints with no byte-at-a-time loop. Any
    flipped bit in a stored element changes the decoded value and
    therefore the folded product chain (FNV-1a over 63-bit ints).

    Deterministic across runs and platforms with 64-bit OCaml ints; not
    collision-resistant against an adversary — it detects corruption,
    not tampering. *)

(** Fold seed. *)
val empty : int

(** Fold one int (full 63-bit range accepted). *)
val add_int : int -> int -> int

(** Fold an int array: length, then every element. *)
val add_int_array : int -> int array -> int

(** Fold a string: length, then 8 chars per multiplication. *)
val add_string : int -> string -> int

(** Final avalanche; result is non-negative (storable as an i64 field
    and comparable after reload). *)
val finish : int -> int

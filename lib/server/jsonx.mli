(** Minimal self-contained JSON codec for the wire protocol.

    The container ships no JSON library, and the daemon's needs are
    small: parse one request object per line, print one response object
    per line.  The parser is strict enough to reject garbage (the fuzz
    suite feeds it arbitrary bytes) and total — it never raises; every
    failure is a [Error message] with a position. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON value (leading/trailing whitespace allowed;
    trailing garbage is an error). *)

val to_string : t -> string
(** Compact one-line rendering with full string escaping — safe to
    write as one NDJSON frame. *)

(** {2 Accessors} — [None] on missing member or wrong shape. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val int_opt : t -> int option
val arr : t -> t list option

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

(* Recursive-descent parser over the raw string; positions in error
   messages are byte offsets.  Depth is bounded so a pathological
   [[[[... line cannot blow the stack. *)
let max_depth = 64

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub text !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let utf8_encode buf cp =
    (* Code point to UTF-8; surrogate pairs are handled by the caller. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match text.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents buf
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match text.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               let cp =
                 (* High surrogate: consume the low half if present. *)
                 if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
                    && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   else lo (* unpaired: keep the second unit as-is *)
                 end
                 else cp
               in
               utf8_encode buf cp
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control byte in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ()
  in
  let number () =
    let start = !pos in
    let consume pred =
      while !pos < n && pred text.[!pos] do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume (function '0' .. '9' -> true | _ -> false);
    if peek () = Some '.' then begin
      advance ();
      consume (function '0' .. '9' -> true | _ -> false)
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume (function '0' .. '9' -> true | _ -> false)
    | _ -> ());
    let span = String.sub text start (!pos - start) in
    match float_of_string_opt span with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" span)
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value (depth + 1) in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) -> Error (Printf.sprintf "at byte %d: %s" p msg)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.0f" f)
        else Buffer.add_string buf (Printf.sprintf "%g" f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            go v)
          members;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_opt = function
  | Num f when Float.is_integer f && Float.abs f <= 1e9 -> Some (int_of_float f)
  | _ -> None

let arr = function Arr items -> Some items | _ -> None

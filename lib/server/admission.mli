(** Admission controller: a bounded request queue with fair per-client
    scheduling.

    The queue is the server's overload valve.  Each connected client
    gets its own FIFO, and workers drain the FIFOs round-robin, so a
    client pipelining a thousand requests cannot starve the others —
    per-client order is preserved while cross-client service is fair.

    Both capacities are hard: when the global queue is full, or one
    client's FIFO is full, {!submit} refuses immediately ([`Shed_...])
    instead of queueing unboundedly — the caller answers GQ060 with a
    retry hint and the client backs off.  This bounds memory and keeps
    tail latency finite under overload (load shedding beats collapse).

    Thread-safe; one mutex around a few list/queue operations. *)

type 'a t

(** [create ~depth ~per_client] — [depth] bounds the total queued
    requests across all clients, [per_client] bounds one client's
    share. *)
val create : depth:int -> per_client:int -> 'a t

type outcome =
  | Accepted
  | Shed_full  (** global queue at capacity — overloaded *)
  | Shed_client  (** this client's FIFO at capacity — unfair pipeliner *)
  | Draining  (** server is shutting down; no new work accepted *)

val submit : 'a t -> client:int -> 'a -> outcome

(** Blocking take for workers: the next job in round-robin client
    order; [None] once the queue is draining AND empty — the worker's
    signal to exit. *)
val take : 'a t -> 'a option

(** Stop accepting and wake every blocked worker; already-queued jobs
    are still handed out (graceful drain finishes accepted work). *)
val drain : 'a t -> unit

val depth : 'a t -> int
(** Jobs currently queued. *)

val peak : 'a t -> int
(** High-water mark of {!depth}. *)

(** Drop a disconnected client's pending jobs (their responses could
    never be delivered); returns how many were discarded. *)
val forget_client : 'a t -> client:int -> int

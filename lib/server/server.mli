(** [gqkg serve]: a fault-tolerant concurrent multi-tenant query daemon.

    Newline-delimited JSON over TCP: each request is one JSON object on
    one line, each response one JSON object on one line.  Many clients
    share one immutable {!Gqkg_graph.Snapshot} through the MVCC epoch
    manager — every query pins the epoch it starts on
    ({!Gqkg_graph.Epochs.pin}), so in-flight queries keep answering
    consistently while [mutate] requests commit new epochs; readers
    never block the writer and vice versa.

    Robustness model (DESIGN.md §5j):
    - {b Admission control}: a bounded queue with fair round-robin
      per-client scheduling and strict per-client order (one in-flight
      request per client).  When full, requests are refused immediately
      with a structured GQ060 "overloaded, retry-after" diagnostic —
      load sheds instead of queueing unboundedly.
    - {b Graceful degradation}: every request runs under a
      {!Gqkg_util.Budget} (request fields overriding server defaults),
      so overload and deadlines degrade to sound [Partial] answers
      (["complete": false] plus a GQ03x diagnostic), never failures.
    - {b Wire fault tolerance}: malformed or oversized frames answer
      GQ062 and the connection recovers on the next well-formed line
      (mirroring GQ048 torn-journal semantics); idle connections are
      closed with a GQ064 notice; blocked writes to slow clients time
      out instead of wedging a worker.
    - {b Graceful drain}: {!stop} stops accepting, finishes (or trips,
      after a grace period) in-flight work, flushes every response, and
      joins all threads; afterwards no epoch stays pinned.
    - {b Fault injection}: deterministic budget trips and injected
      connection drops for the soak suite.

    Request ops: [ping], [metrics] (answered inline, responsive even
    under full queues), [query], [count], [mutate] (scheduled through
    admission).  Responses echo the request's ["id"] member verbatim.

    Wire error codes introduced here: GQ060 overloaded (shed), GQ061
    connection refused (max-clients), GQ062 malformed request, GQ063
    draining, GQ064 idle timeout, GQ069 internal error.  The full table
    lives in README.md. *)

open Gqkg_graph

type config = {
  max_clients : int;  (** concurrent connections; beyond: GQ061 + close *)
  workers : int;  (** request-execution threads over the shared domain pool *)
  queue_depth : int;  (** global admission capacity *)
  per_client_depth : int;  (** one client's share of the queue *)
  default_timeout_ms : int option;  (** per-request deadline unless overridden *)
  default_max_states : int option;
  idle_timeout_ms : int;
      (** close connections with no reads, no delivered responses and no
          queued/in-flight requests for this long (GQ064) *)
  write_timeout_ms : int;  (** give up on a blocked write (slow client) *)
  max_line_bytes : int;  (** frames above this answer GQ062 and are skipped *)
  drain_grace_ms : int;  (** drain: wait this long before tripping in-flight budgets *)
  answer_limit : int;  (** cap on pairs per response (["truncated"] flags more) *)
  fault_trip_after_checks : int option;  (** injector: arm every request budget *)
  fault_drop_after : int option;  (** injector: hard-drop a connection every N responses *)
}

val default_config : config

type t

(** Bind, listen and start accepting.  [port] 0 picks an ephemeral
    port (see {!port}).  The epoch manager is shared with the caller:
    commits from elsewhere are visible to subsequent queries. *)
val start : ?host:string -> port:int -> config:config -> Epochs.t -> t

val port : t -> int

val clients : t -> int
(** Currently connected clients. *)

val metrics : t -> Jsonx.t
(** The same object [{"op":"metrics"}] returns on the wire. *)

(** Graceful drain: stop accepting, refuse new requests (GQ063), finish
    queued and in-flight work (tripping budgets still running after
    [drain_grace_ms] — their clients receive sound partial answers),
    flush responses, join every thread, close every socket.
    Idempotent; blocks until fully drained. *)
val stop : t -> unit

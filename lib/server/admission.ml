type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  depth_cap : int;
  per_client : int;
  queues : (int, 'a Queue.t) Hashtbl.t;
  mutable rotation : int list;
      (** clients with pending work, head served next; a served client
          re-enters at the tail — round-robin fairness *)
  mutable total : int;
  mutable peak : int;
  mutable draining : bool;
}

type outcome = Accepted | Shed_full | Shed_client | Draining

let create ~depth ~per_client =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    depth_cap = max 1 depth;
    per_client = max 1 per_client;
    queues = Hashtbl.create 16;
    rotation = [];
    total = 0;
    peak = 0;
    draining = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let submit t ~client job =
  locked t (fun () ->
      if t.draining then Draining
      else if t.total >= t.depth_cap then Shed_full
      else begin
        let q =
          match Hashtbl.find_opt t.queues client with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace t.queues client q;
              q
        in
        if Queue.length q >= t.per_client then Shed_client
        else begin
          if Queue.is_empty q then t.rotation <- t.rotation @ [ client ];
          Queue.push job q;
          t.total <- t.total + 1;
          if t.total > t.peak then t.peak <- t.total;
          Condition.signal t.nonempty;
          Accepted
        end
      end)

let take t =
  locked t (fun () ->
      while t.total = 0 && not t.draining do
        Condition.wait t.nonempty t.lock
      done;
      if t.total = 0 then None
      else begin
        match t.rotation with
        | [] -> assert false
        | client :: rest ->
            let q = Hashtbl.find t.queues client in
            let job = Queue.pop q in
            t.total <- t.total - 1;
            t.rotation <-
              (if Queue.is_empty q then rest else rest @ [ client ]);
            Some job
      end)

let drain t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> t.total)
let peak t = locked t (fun () -> t.peak)

let forget_client t ~client =
  locked t (fun () ->
      match Hashtbl.find_opt t.queues client with
      | None -> 0
      | Some q ->
          let dropped = Queue.length q in
          t.total <- t.total - dropped;
          t.rotation <- List.filter (fun c -> c <> client) t.rotation;
          Hashtbl.remove t.queues client;
          dropped)

module Budget = Gqkg_util.Budget
module Mclock = Gqkg_util.Mclock
module Epochs = Gqkg_graph.Epochs
module Snapshot = Gqkg_graph.Snapshot
module Overlay = Gqkg_graph.Overlay
module Journal = Gqkg_graph.Journal
module Governor = Gqkg_core.Governor
module Semcache = Gqkg_core.Semcache
module Diagnostic = Gqkg_analysis.Diagnostic
module Regex_parser = Gqkg_automata.Regex_parser

type config = {
  max_clients : int;
  workers : int;
  queue_depth : int;
  per_client_depth : int;
  default_timeout_ms : int option;
  default_max_states : int option;
  idle_timeout_ms : int;
  write_timeout_ms : int;
  max_line_bytes : int;
  drain_grace_ms : int;
  answer_limit : int;
  fault_trip_after_checks : int option;
  fault_drop_after : int option;
}

let default_config =
  {
    max_clients = 32;
    workers = 4;
    queue_depth = 64;
    per_client_depth = 8;
    default_timeout_ms = Some 10_000;
    default_max_states = None;
    idle_timeout_ms = 30_000;
    write_timeout_ms = 5_000;
    max_line_bytes = 1_048_576;
    drain_grace_ms = 2_000;
    answer_limit = 10_000;
    fault_trip_after_checks = None;
    fault_drop_after = None;
  }

type conn = {
  fd : Unix.file_descr;
  client : int;
  wlock : Mutex.t;
  dead : bool Atomic.t;
      (* set by whoever hits a write error / drop injection / drain;
         only the connection's own reader thread ever closes [fd] *)
  sent : int Atomic.t;
  inflight : int Atomic.t;
      (* requests admitted but not yet taken to completion by a worker;
         the idle reaper leaves the connection alone while > 0 *)
  last_activity : int64 Atomic.t;
      (* monotonic ns of the last read or delivered response — quiet
         clients awaiting a long answer are not "idle" *)
}

type job = { conn : conn; req : Jsonx.t; submitted_ns : int64 }

type t = {
  config : config;
  mgr : Epochs.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics : Metrics.t;
  queue : job Admission.t;
  stopping : bool Atomic.t;  (** drain requested: accept loop exits *)
  stopped : bool Atomic.t;  (** [stop] ran to completion *)
  conns_lock : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  conn_threads : (int, Thread.t) Hashtbl.t;
      (** reader threads still running (or just about to exit); each
          entry is removed by its own thread's cleanup so a long-lived
          daemon does not retain one Thread.t per connection ever
          accepted.  [stop] joins whatever is still registered. *)
  mutable workers : Thread.t list;
  mutable accept_thread : Thread.t option;
  writer_lock : Mutex.t;  (** single-writer mutation discipline *)
  act_lock : Mutex.t;
  active : (int, Budget.t) Hashtbl.t;  (** budgets of in-flight requests *)
  next_client : int Atomic.t;
  next_req : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                        *)

let json_of_diag (d : Diagnostic.t) =
  Jsonx.Obj
    [
      ("code", Jsonx.Str d.code);
      ("severity", Jsonx.Str (Diagnostic.severity_to_string d.severity));
      ("subterm", Jsonx.Str d.subterm);
      ("message", Jsonx.Str d.message);
    ]

let echo_id req =
  match Jsonx.member "id" req with Some v -> [ ("id", v) ] | None -> []

let error_json ?(extra = []) ?(id = []) ~code ~message () =
  Jsonx.Obj
    ([ ("ok", Jsonx.Bool false); ("code", Jsonx.Str code);
       ("message", Jsonx.Str message) ]
    @ id @ extra)

(* Whole-line writes under the connection's write lock so concurrent
   worker / reader responses never interleave mid-line.  A blocked
   write on a slow client fails via SO_SNDTIMEO instead of wedging the
   worker; any write error marks the connection dead (its reader thread
   notices and cleans up). *)
let write_json t conn json =
  let s = Jsonx.to_string json ^ "\n" in
  Mutex.lock conn.wlock;
  let ok =
    if Atomic.get conn.dead then false
    else
      try
        let b = Bytes.unsafe_of_string s in
        let len = Bytes.length b in
        let off = ref 0 in
        while !off < len do
          let n = Unix.write conn.fd b !off (len - !off) in
          if n <= 0 then raise Exit;
          off := !off + n
        done;
        true
      with _ ->
        Atomic.set conn.dead true;
        false
  in
  if ok then begin
    Atomic.set conn.last_activity (Mclock.now_ns ());
    let sent = Atomic.fetch_and_add conn.sent 1 + 1 in
    match t.config.fault_drop_after with
    | Some k when k > 0 && sent mod k = 0 ->
        (* deterministic fault injection: hard-drop the connection the
           way a crashing client would — no goodbye, reader wakes on
           EOF.  The soak test asserts the server survives this.  Still
           under [wlock]: the reader's close also takes it, so the fd
           cannot be closed and its number reused mid-shutdown. *)
        Metrics.incr_injected_drops t.metrics;
        Atomic.set conn.dead true;
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ())
    | _ -> ()
  end;
  Mutex.unlock conn.wlock;
  if ok then Metrics.incr_responses t.metrics;
  ok

(* ------------------------------------------------------------------ *)
(* Request execution (worker side)                                     *)

let int_field req name =
  match Jsonx.member name req with None -> None | Some v -> Jsonx.int_opt v

let budget_of t req =
  let timeout_ms =
    match int_field req "timeout_ms" with
    | Some v -> Some v
    | None -> t.config.default_timeout_ms
  in
  let max_states =
    match int_field req "max_states" with
    | Some v -> Some v
    | None -> t.config.default_max_states
  in
  let max_steps = int_field req "max_steps" in
  Budget.create ?timeout_ms ?max_states ?max_steps
    ?trip_after_checks:t.config.fault_trip_after_checks ()

(* Register the budget while the request runs so a graceful drain can
   cancel stragglers (they come back as sound Partial answers). *)
let with_active t budget f =
  let key = Atomic.fetch_and_add t.next_req 1 in
  Mutex.lock t.act_lock;
  Hashtbl.replace t.active key budget;
  Mutex.unlock t.act_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.act_lock;
      Hashtbl.remove t.active key;
      Mutex.unlock t.act_lock)
    f

let completeness_fields t budget (completeness : Budget.completeness) =
  match completeness with
  | Budget.Complete -> [ ("complete", Jsonx.Bool true) ]
  | Budget.Partial _ ->
      Metrics.incr_trips t.metrics;
      let diag =
        match Diagnostic.of_budget budget with
        | Some d -> [ ("diagnostic", json_of_diag d) ]
        | None -> []
      in
      ("complete", Jsonx.Bool false) :: diag

let rec take_pairs n = function
  | [] -> []
  | _ when n <= 0 -> []
  | p :: rest -> p :: take_pairs (n - 1) rest

let handle_query t req ~id =
  match Option.bind (Jsonx.member "q" req) Jsonx.str with
  | None -> error_json ~id ~code:"GQ062" ~message:{|query needs a "q" string field|} ()
  | Some qtext -> (
      match Regex_parser.parse qtext with
      | exception Regex_parser.Error { position; message } ->
          error_json ~id ~code:"GQ042"
            ~message:(Printf.sprintf "parse error at %d: %s" position message)
            ()
      | regex ->
          let budget = budget_of t req in
          let max_length = int_field req "max_length" in
          let limit =
            match int_field req "limit" with
            | Some v -> min (max 0 v) t.config.answer_limit
            | None -> t.config.answer_limit
          in
          with_active t budget (fun () ->
              Epochs.with_pinned t.mgr (fun snap ->
                  let o =
                    Governor.eval_pairs ~use_cache:true ~budget ?max_length snap
                      regex
                  in
                  let total = List.length o.Budget.value in
                  let shown = take_pairs limit o.Budget.value in
                  let pairs =
                    Jsonx.Arr
                      (List.map
                         (fun (a, b) ->
                           Jsonx.Arr
                             [ Jsonx.Str (snap.Snapshot.node_name a);
                               Jsonx.Str (snap.Snapshot.node_name b) ])
                         shown)
                  in
                  Jsonx.Obj
                    ([ ("ok", Jsonx.Bool true); ("op", Jsonx.Str "query") ]
                    @ id
                    @ [
                        ("epoch", Jsonx.Num (float_of_int snap.Snapshot.epoch));
                        ("total", Jsonx.Num (float_of_int total));
                        ("truncated", Jsonx.Bool (total > limit));
                        ("pairs", pairs);
                        ("elapsed_ms", Jsonx.Num (Budget.elapsed_ms budget));
                      ]
                    @ completeness_fields t budget o.Budget.completeness))))

let handle_count t req ~id =
  match Option.bind (Jsonx.member "q" req) Jsonx.str with
  | None -> error_json ~id ~code:"GQ062" ~message:{|count needs a "q" string field|} ()
  | Some qtext -> (
      match Regex_parser.parse qtext with
      | exception Regex_parser.Error { position; message } ->
          error_json ~id ~code:"GQ042"
            ~message:(Printf.sprintf "parse error at %d: %s" position message)
            ()
      | regex ->
          let length =
            match int_field req "length" with Some v -> max 0 v | None -> 3
          in
          let budget = budget_of t req in
          with_active t budget (fun () ->
              Epochs.with_pinned t.mgr (fun snap ->
                  let o = Governor.count ~budget snap regex ~length in
                  Jsonx.Obj
                    ([ ("ok", Jsonx.Bool true); ("op", Jsonx.Str "count") ]
                    @ id
                    @ [
                        ("epoch", Jsonx.Num (float_of_int snap.Snapshot.epoch));
                        ("length", Jsonx.Num (float_of_int length));
                        ("count", Jsonx.Num o.Budget.value);
                      ]
                    @ completeness_fields t budget o.Budget.completeness))))

(* Mutations are atomic per request: either every op applies and one
   epoch is committed, or (on the first bad op) the whole overlay is
   abandoned — GQ048, base untouched, exactly the journal's replay
   semantics.  [writer_lock] serializes writers so every overlay is
   built on the current epoch (Epochs.commit enforces it). *)
let handle_mutate t req ~id =
  let ops =
    match Jsonx.member "ops" req with
    | Some (Jsonx.Arr items) ->
        Some
          (List.filter_map
             (fun v -> match Jsonx.str v with Some s -> Some s | None -> None)
             items)
    | _ -> None
  in
  match ops with
  | None ->
      error_json ~id ~code:"GQ062"
        ~message:{|mutate needs an "ops" array of script lines|} ()
  | Some lines ->
      Mutex.lock t.writer_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.writer_lock)
        (fun () ->
          let overlay = Overlay.create (Epochs.base t.mgr) in
          let result =
            try
              List.iteri
                (fun i line ->
                  match Journal.op_of_line ~line:(i + 1) line with
                  | None -> ()
                  | Some op -> Overlay.apply ~line:(i + 1) overlay op)
                lines;
              Ok (Overlay.size overlay)
            with Journal.Replay_error { line; message; _ } ->
              Error (Printf.sprintf "ops[%d]: %s" (line - 1) message)
          in
          match result with
          | Error message -> error_json ~id ~code:"GQ048" ~message ()
          | Ok 0 ->
              let snap = Epochs.snapshot t.mgr in
              Jsonx.Obj
                ([ ("ok", Jsonx.Bool true); ("op", Jsonx.Str "mutate") ]
                @ id
                @ [
                    ("applied", Jsonx.Num 0.0);
                    ("epoch", Jsonx.Num (float_of_int snap.Snapshot.epoch));
                  ])
          | Ok applied ->
              let base, reuse = Governor.commit t.mgr overlay in
              let snap = Overlay.snapshot base in
              Jsonx.Obj
                ([ ("ok", Jsonx.Bool true); ("op", Jsonx.Str "mutate") ]
                @ id
                @ [
                    ("applied", Jsonx.Num (float_of_int applied));
                    ("epoch", Jsonx.Num (float_of_int snap.Snapshot.epoch));
                    ( "columns_reused",
                      Jsonx.Num (float_of_int (List.length reuse.Overlay.reused)) );
                    ( "columns_rebuilt",
                      Jsonx.Num (float_of_int (List.length reuse.Overlay.rebuilt)) );
                    ( "live_epochs",
                      Jsonx.Num
                        (float_of_int (List.length (Epochs.live_epochs t.mgr))) );
                  ]))

(* Anything unexpected becomes a structured GQ069 — a worker never
   crashes and a client never sees a backtrace. *)
let handle_job t (job : job) =
  let id = echo_id job.req in
  let resp =
    try
      match Option.bind (Jsonx.member "op" job.req) Jsonx.str with
      | Some "query" -> handle_query t job.req ~id
      | Some "count" -> handle_count t job.req ~id
      | Some "mutate" -> handle_mutate t job.req ~id
      | Some op ->
          error_json ~id ~code:"GQ062"
            ~message:(Printf.sprintf "unknown op %S" op)
            ()
      | None ->
          error_json ~id ~code:"GQ062" ~message:{|request needs an "op" field|}
            ()
    with exn ->
      error_json ~id ~code:"GQ069"
        ~message:("internal error: " ^ Printexc.to_string exn)
        ()
  in
  let delivered = write_json t job.conn resp in
  if delivered then
    Metrics.observe_latency_ms t.metrics
      (Mclock.ns_to_ms (Int64.sub (Mclock.now_ns ()) job.submitted_ns))

let worker_loop t =
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some job ->
        Fun.protect
          ~finally:(fun () -> Atomic.decr job.conn.inflight)
          (fun () ->
            if not (Atomic.get job.conn.dead) then handle_job t job);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let num_clients t =
  Mutex.lock t.conns_lock;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_lock;
  n

let metrics t =
  let s = Semcache.stats () in
  let snap = Epochs.snapshot t.mgr in
  Metrics.to_json t.metrics
    ~queue_depth:(Admission.depth t.queue)
    ~queue_peak:(Admission.peak t.queue)
    ~clients:(num_clients t) ~workers:t.config.workers
    ~epoch:snap.Snapshot.epoch
    ~live_epochs:(List.length (Epochs.live_epochs t.mgr))
    ~pins:(Epochs.pins t.mgr) ~cache_hits:s.Semcache.result_hits
    ~cache_lookups:(s.Semcache.result_hits + s.Semcache.result_misses)

(* ------------------------------------------------------------------ *)
(* Connection reader                                                   *)

(* One well-formed line in, one response out; ping/metrics answer
   inline (responsive even when the queue is full), everything else
   goes through admission. *)
let handle_line t conn line =
  if String.trim line = "" then ()
  else
    match Jsonx.parse line with
    | Error msg ->
        Metrics.incr_malformed t.metrics;
        ignore
          (write_json t conn
             (error_json ~code:"GQ062" ~message:("malformed request: " ^ msg) ()))
    | Ok req -> (
        let id = echo_id req in
        match Option.bind (Jsonx.member "op" req) Jsonx.str with
        | Some "ping" ->
            ignore
              (write_json t conn
                 (Jsonx.Obj
                    ([ ("ok", Jsonx.Bool true); ("op", Jsonx.Str "pong") ] @ id)))
        | Some "metrics" -> ignore (write_json t conn (metrics t))
        | _ -> (
            let job = { conn; req; submitted_ns = Mclock.now_ns () } in
            Atomic.incr conn.inflight;
            match Admission.submit t.queue ~client:conn.client job with
            | Admission.Accepted -> Metrics.incr_requests t.metrics
            | Admission.Shed_full | Admission.Shed_client ->
                Atomic.decr conn.inflight;
                Metrics.incr_shed t.metrics;
                ignore
                  (write_json t conn
                     (error_json ~id ~code:"GQ060"
                        ~message:"overloaded, request shed — retry later"
                        ~extra:[ ("retry_after_ms", Jsonx.Num 100.0) ]
                        ()))
            | Admission.Draining ->
                Atomic.decr conn.inflight;
                Metrics.incr_shed t.metrics;
                ignore
                  (write_json t conn
                     (error_json ~id ~code:"GQ063"
                        ~message:"server is draining, no new requests" ()))))

let conn_loop t conn =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let discarding = ref false in
  (* torn/oversized frames: skip to the next newline and recover, the
     wire-level mirror of the journal's GQ048 tolerate-partial rule *)
  let idle_ns = Int64.mul (Int64.of_int t.config.idle_timeout_ms) 1_000_000L in
  let rec drain_lines () =
    let data = Buffer.contents buf in
    match String.index_opt data '\n' with
    | Some i ->
        let line = String.sub data 0 i in
        Buffer.clear buf;
        Buffer.add_substring buf data (i + 1) (String.length data - i - 1);
        if !discarding then begin
          discarding := false;
          Metrics.incr_malformed t.metrics;
          ignore
            (write_json t conn
               (error_json ~code:"GQ062"
                  ~message:
                    (Printf.sprintf "request line exceeds %d bytes, discarded"
                       t.config.max_line_bytes)
                  ()))
        end
        else handle_line t conn line;
        drain_lines ()
    | None ->
        (* while discarding, drop every chunk as it arrives: an endless
           line must cost O(chunk), not grow the buffer without bound *)
        if !discarding then Buffer.clear buf
        else if Buffer.length buf > t.config.max_line_bytes then begin
          Buffer.clear buf;
          discarding := true
        end
  in
  let rec loop () =
    if Atomic.get conn.dead then ()
    else begin
      match Unix.select [ conn.fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception _ -> ()
      | [], _, _ ->
          (* idle means no reads, no delivered responses AND nothing
             queued or executing — a client silently awaiting a slow
             answer must not be reaped mid-request *)
          if
            Atomic.get conn.inflight = 0
            && Int64.compare
                 (Int64.sub (Mclock.now_ns ()) (Atomic.get conn.last_activity))
                 idle_ns > 0
          then begin
            Metrics.incr_idle_closes t.metrics;
            ignore
              (write_json t conn
                 (error_json ~code:"GQ064"
                    ~message:
                      (Printf.sprintf "idle for %dms, closing"
                         t.config.idle_timeout_ms)
                    ()))
          end
          else loop ()
      | _ -> (
          match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception _ -> ()
          | 0 ->
              (* EOF; a torn trailing fragment is simply discarded *)
              if Buffer.length buf > 0 then Metrics.incr_malformed t.metrics
          | n ->
              Atomic.set conn.last_activity (Mclock.now_ns ());
              Buffer.add_subbytes buf chunk 0 n;
              drain_lines ();
              loop ())
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set conn.dead true;
      ignore (Admission.forget_client t.queue ~client:conn.client);
      Mutex.lock t.conns_lock;
      Hashtbl.remove t.conns conn.client;
      Mutex.unlock t.conns_lock;
      (* the reader owns the fd: this is the only close *)
      Mutex.lock conn.wlock;
      (try Unix.close conn.fd with _ -> ());
      Mutex.unlock conn.wlock;
      (* last act: deregister our own thread so the table only ever
         holds live readers (a thread [stop] snapshots just before this
         line is joined; one deregistered here has nothing left to do) *)
      Mutex.lock t.conns_lock;
      Hashtbl.remove t.conn_threads conn.client;
      Mutex.unlock t.conns_lock)
    loop

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)

let refuse_and_close t fd ~code ~message =
  Metrics.incr_rejected_clients t.metrics;
  let s = Jsonx.to_string (error_json ~code ~message ()) ^ "\n" in
  (try ignore (Unix.write fd (Bytes.unsafe_of_string s) 0 (String.length s))
   with _ -> ());
  try Unix.close fd with _ -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception _ -> ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception _ -> ()
          | fd, _addr ->
              if Atomic.get t.stopping then
                refuse_and_close t fd ~code:"GQ063"
                  ~message:"server is draining, connection refused"
              else if num_clients t >= t.config.max_clients then
                refuse_and_close t fd ~code:"GQ061"
                  ~message:
                    (Printf.sprintf "too many clients (max %d), try later"
                       t.config.max_clients)
              else begin
                (try
                   Unix.setsockopt_float fd Unix.SO_SNDTIMEO
                     (float_of_int t.config.write_timeout_ms /. 1000.)
                 with _ -> ());
                (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
                let conn =
                  {
                    fd;
                    client = Atomic.fetch_and_add t.next_client 1;
                    wlock = Mutex.create ();
                    dead = Atomic.make false;
                    sent = Atomic.make 0;
                    inflight = Atomic.make 0;
                    last_activity = Atomic.make (Mclock.now_ns ());
                  }
                in
                Mutex.lock t.conns_lock;
                Hashtbl.replace t.conns conn.client conn;
                let th = Thread.create (fun () -> conn_loop t conn) () in
                Hashtbl.replace t.conn_threads conn.client th;
                Mutex.unlock t.conns_lock
              end;
              loop ())
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start ?(host = "127.0.0.1") ~port ~config mgr =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind listen_fd addr
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      config;
      mgr;
      listen_fd;
      bound_port;
      metrics = Metrics.create ();
      queue =
        Admission.create ~depth:config.queue_depth
          ~per_client:config.per_client_depth;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      conns_lock = Mutex.create ();
      conns = Hashtbl.create 16;
      conn_threads = Hashtbl.create 16;
      workers = [];
      accept_thread = None;
      writer_lock = Mutex.create ();
      act_lock = Mutex.create ();
      active = Hashtbl.create 16;
      next_client = Atomic.make 0;
      next_req = Atomic.make 0;
    }
  in
  t.workers <-
    List.init (max 1 config.workers) (fun _ ->
        Thread.create (fun () -> worker_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port
let clients t = num_clients t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* 1. stop accepting *)
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* 2. refuse new requests, let workers finish the queue *)
    Admission.drain t.queue;
    (* 3. grace period for in-flight work... *)
    let deadline =
      Int64.add (Mclock.now_ns ())
        (Int64.mul (Int64.of_int t.config.drain_grace_ms) 1_000_000L)
    in
    let busy () =
      Mutex.lock t.act_lock;
      let n = Hashtbl.length t.active in
      Mutex.unlock t.act_lock;
      n > 0 || Admission.depth t.queue > 0
    in
    while busy () && Int64.compare (Mclock.now_ns ()) deadline < 0 do
      Thread.delay 0.01
    done;
    (* ...then trip stragglers: they return sound Partial answers *)
    Mutex.lock t.act_lock;
    Hashtbl.iter (fun _ b -> Budget.cancel b) t.active;
    Mutex.unlock t.act_lock;
    List.iter Thread.join t.workers;
    (* 4. all responses flushed — now close connections *)
    Mutex.lock t.conns_lock;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    let threads = Hashtbl.fold (fun _ th acc -> th :: acc) t.conn_threads [] in
    Mutex.unlock t.conns_lock;
    List.iter
      (fun c ->
        Atomic.set c.dead true;
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    List.iter Thread.join threads;
    Atomic.set t.stopped true
  end
  else
    (* concurrent/second call: wait for the first to finish *)
    while not (Atomic.get t.stopped) do
      Thread.delay 0.01
    done

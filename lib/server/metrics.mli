(** Server-side observability: lock-cheap counters plus a bounded
    latency reservoir, rendered as the [/metrics] JSON object.

    All counters are [Atomic.t] so every thread (connection readers,
    workers, the accept loop) can bump them without a lock; only the
    latency reservoir takes a mutex, and only for a few stores per
    request. *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr_requests : t -> unit
(** A request was admitted to the queue. *)

val incr_responses : t -> unit
(** A response line was written (success or structured error). *)

val incr_shed : t -> unit
(** A request was rejected with GQ060/GQ063 instead of queued. *)

val incr_malformed : t -> unit
(** A wire frame failed to parse (GQ062): fuzz bullets, torn lines. *)

val incr_trips : t -> unit
(** A request finished [Partial] — its budget tripped. *)

val incr_rejected_clients : t -> unit
(** A connection was refused (GQ061: max-clients, or draining). *)

val incr_idle_closes : t -> unit
(** A connection was closed for idling past the read timeout (GQ064). *)

val incr_injected_drops : t -> unit
(** The fault injector dropped a connection on purpose. *)

val observe_latency_ms : t -> float -> unit
(** Record one request's service latency. *)

val requests : t -> int
val responses : t -> int
val shed : t -> int
val trips : t -> int

(** {2 Snapshot} *)

(** [to_json t ~queue_depth ~queue_peak ~clients ~workers ~epoch
    ~live_epochs ~pins ~cache_hits ~cache_lookups] renders the full
    metrics object: uptime, qps, p50/p99 latency, every counter, queue
    and epoch gauges, and the semantic-cache hit rate. *)
val to_json :
  t ->
  queue_depth:int ->
  queue_peak:int ->
  clients:int ->
  workers:int ->
  epoch:int ->
  live_epochs:int ->
  pins:int ->
  cache_hits:int ->
  cache_lookups:int ->
  Jsonx.t

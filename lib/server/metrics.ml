module Mclock = Gqkg_util.Mclock

(* Latencies go into a fixed ring: percentiles are computed over the
   last [reservoir_size] requests, which is what an operator wants from
   /metrics anyway (recent behavior, not a lifetime average). *)
let reservoir_size = 4096

type t = {
  started_ns : int64;
  requests : int Atomic.t;
  responses : int Atomic.t;
  shed : int Atomic.t;
  malformed : int Atomic.t;
  trips : int Atomic.t;
  rejected_clients : int Atomic.t;
  idle_closes : int Atomic.t;
  injected_drops : int Atomic.t;
  lat_lock : Mutex.t;
  lats : float array;
  mutable lat_count : int;  (** total observations ever *)
}

let create () =
  {
    started_ns = Mclock.now_ns ();
    requests = Atomic.make 0;
    responses = Atomic.make 0;
    shed = Atomic.make 0;
    malformed = Atomic.make 0;
    trips = Atomic.make 0;
    rejected_clients = Atomic.make 0;
    idle_closes = Atomic.make 0;
    injected_drops = Atomic.make 0;
    lat_lock = Mutex.create ();
    lats = Array.make reservoir_size 0.0;
    lat_count = 0;
  }

let incr_requests t = Atomic.incr t.requests
let incr_responses t = Atomic.incr t.responses
let incr_shed t = Atomic.incr t.shed
let incr_malformed t = Atomic.incr t.malformed
let incr_trips t = Atomic.incr t.trips
let incr_rejected_clients t = Atomic.incr t.rejected_clients
let incr_idle_closes t = Atomic.incr t.idle_closes
let incr_injected_drops t = Atomic.incr t.injected_drops

let observe_latency_ms t ms =
  Mutex.lock t.lat_lock;
  t.lats.(t.lat_count mod reservoir_size) <- ms;
  t.lat_count <- t.lat_count + 1;
  Mutex.unlock t.lat_lock

let requests t = Atomic.get t.requests
let responses t = Atomic.get t.responses
let shed t = Atomic.get t.shed
let trips t = Atomic.get t.trips

(* Percentile by nearest-rank over a sorted copy of the filled part of
   the ring; 0.0 when nothing has been observed yet. *)
let percentiles t ps =
  Mutex.lock t.lat_lock;
  let filled = min t.lat_count reservoir_size in
  let copy = Array.sub t.lats 0 filled in
  Mutex.unlock t.lat_lock;
  if filled = 0 then List.map (fun _ -> 0.0) ps
  else begin
    Array.sort compare copy;
    List.map
      (fun p ->
        let rank =
          min (filled - 1) (int_of_float (Float.of_int filled *. p /. 100.))
        in
        copy.(rank))
      ps
  end

let to_json t ~queue_depth ~queue_peak ~clients ~workers ~epoch ~live_epochs
    ~pins ~cache_hits ~cache_lookups =
  let uptime_ms = Mclock.ns_to_ms (Int64.sub (Mclock.now_ns ()) t.started_ns) in
  let responses = Atomic.get t.responses in
  let qps =
    if uptime_ms <= 0.0 then 0.0 else float_of_int responses /. (uptime_ms /. 1000.)
  in
  let p50, p99 =
    match percentiles t [ 50.0; 99.0 ] with
    | [ a; b ] -> (a, b)
    | _ -> (0.0, 0.0)
  in
  let requests = Atomic.get t.requests in
  let trip_rate =
    if responses = 0 then 0.0
    else float_of_int (Atomic.get t.trips) /. float_of_int responses
  in
  Jsonx.Obj
    [
      ("ok", Jsonx.Bool true);
      ("op", Jsonx.Str "metrics");
      ("uptime_ms", Jsonx.Num uptime_ms);
      ("qps", Jsonx.Num qps);
      ("p50_ms", Jsonx.Num p50);
      ("p99_ms", Jsonx.Num p99);
      ("requests", Jsonx.Num (float_of_int requests));
      ("responses", Jsonx.Num (float_of_int responses));
      ("queue_depth", Jsonx.Num (float_of_int queue_depth));
      ("queue_peak", Jsonx.Num (float_of_int queue_peak));
      ("shed", Jsonx.Num (float_of_int (Atomic.get t.shed)));
      ("malformed", Jsonx.Num (float_of_int (Atomic.get t.malformed)));
      ("budget_trips", Jsonx.Num (float_of_int (Atomic.get t.trips)));
      ("budget_trip_rate", Jsonx.Num trip_rate);
      ("rejected_clients", Jsonx.Num (float_of_int (Atomic.get t.rejected_clients)));
      ("idle_closes", Jsonx.Num (float_of_int (Atomic.get t.idle_closes)));
      ("injected_drops", Jsonx.Num (float_of_int (Atomic.get t.injected_drops)));
      ("clients", Jsonx.Num (float_of_int clients));
      ("workers", Jsonx.Num (float_of_int workers));
      ("epoch", Jsonx.Num (float_of_int epoch));
      ("live_epochs", Jsonx.Num (float_of_int live_epochs));
      ("pinned", Jsonx.Num (float_of_int pins));
      ( "cache",
        Jsonx.Obj
          [
            ("hits", Jsonx.Num (float_of_int cache_hits));
            ("lookups", Jsonx.Num (float_of_int cache_lookups));
            ( "hit_rate",
              Jsonx.Num
                (if cache_lookups = 0 then 0.0
                 else float_of_int cache_hits /. float_of_int cache_lookups) );
          ] );
    ]

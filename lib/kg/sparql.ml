(* SPARQL-lite: a concrete query syntax for the triple store, covering
   the SELECT / basic-graph-pattern fragment the paper treats as the
   declarative face of RDF querying, plus property paths:

     SELECT ?x ?y
     WHERE {
       ?x <http://ex.org/knows> ?y .
       ?y a <http://ex.org/Person> .
       ?x (knows/likes) ?z        # property path, regex syntax
     }
     LIMIT 10

   Terms: [<iri>], [?var], ["literal"] (with optional [^^<dt>] / [@lang]),
   integers (xsd:integer literals), and [a] for rdf:type.  A parenthesized
   predicate position holds a path expression in the {!Regex_parser}
   syntax over predicate local names, evaluated with the RPQ engine.
   Prefix declarations are not supported (write full IRIs) — this is a
   teaching/experiment surface, not a W3C implementation. *)

exception Error of { position : int; message : string }

let fail position fmt = Printf.ksprintf (fun message -> raise (Error { position; message })) fmt

type state = { input : string; mutable pos : int }

let skip_ws st =
  let continue = ref true in
  while !continue do
    if
      st.pos < String.length st.input
      && (match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then st.pos <- st.pos + 1
    else if st.pos < String.length st.input && st.input.[st.pos] = '#' then begin
      (* comment to end of line *)
      while st.pos < String.length st.input && st.input.[st.pos] <> '\n' do
        st.pos <- st.pos + 1
      done
    end
    else continue := false
  done

let looking_at st text =
  let n = String.length text in
  st.pos + n <= String.length st.input
  && String.lowercase_ascii (String.sub st.input st.pos n) = String.lowercase_ascii text

let try_consume st text =
  skip_ws st;
  if looking_at st text then begin
    st.pos <- st.pos + String.length text;
    true
  end
  else false

let expect st text = if not (try_consume st text) then fail st.pos "expected %S" text

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let name st =
  let start = st.pos in
  while st.pos < String.length st.input && is_name_char st.input.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail start "expected a name";
  String.sub st.input start (st.pos - start)

let variable st =
  expect st "?";
  name st

(* A term in subject/object position. *)
let term st =
  skip_ws st;
  if st.pos >= String.length st.input then fail st.pos "expected a term";
  match st.input.[st.pos] with
  | '?' -> Bgp.v (variable st)
  | '<' -> begin
      match String.index_from_opt st.input st.pos '>' with
      | None -> fail st.pos "unterminated IRI"
      | Some close ->
          let iri = String.sub st.input (st.pos + 1) (close - st.pos - 1) in
          st.pos <- close + 1;
          Bgp.c (Term.Iri iri)
    end
  | '"' -> begin
      (* Reuse the N-Triples literal lexer on the rest of the line. *)
      let rest = String.sub st.input st.pos (String.length st.input - st.pos) in
      let cursor = { Ntriples.text = rest; pos = 0; line = 1 } in
      match Ntriples.parse_literal cursor with
      | literal ->
          st.pos <- st.pos + cursor.Ntriples.pos;
          Bgp.c literal
      | exception Ntriples.Parse_error _ -> fail st.pos "malformed literal"
    end
  | c when c >= '0' && c <= '9' ->
      let start = st.pos in
      while st.pos < String.length st.input && st.input.[st.pos] >= '0' && st.input.[st.pos] <= '9' do
        st.pos <- st.pos + 1
      done;
      Bgp.c (Term.of_int (int_of_string (String.sub st.input start (st.pos - start))))
  | _ -> fail st.pos "expected ?var, <iri>, \"literal\" or integer"

(* Predicate position: 'a', an IRI, a variable, or a parenthesized path
   expression. *)
type predicate = Plain of Bgp.component | Path of Gqkg_automata.Regex.t

let predicate st =
  skip_ws st;
  if st.pos >= String.length st.input then fail st.pos "expected a predicate";
  match st.input.[st.pos] with
  | 'a' when st.pos + 1 >= String.length st.input || not (is_name_char st.input.[st.pos + 1]) ->
      st.pos <- st.pos + 1;
      Plain (Bgp.c Rdfs.rdf_type)
  | '(' -> begin
      (* Path expression up to the matching close paren (the regex syntax
         itself uses parens, so track depth). *)
      let depth = ref 0 and i = ref st.pos in
      let close = ref (-1) in
      while !close < 0 && !i < String.length st.input do
        (match st.input.[!i] with
        | '(' -> incr depth
        | ')' ->
            decr depth;
            if !depth = 0 then close := !i
        | _ -> ());
        incr i
      done;
      if !close < 0 then fail st.pos "unterminated path expression";
      let text = String.sub st.input (st.pos + 1) (!close - st.pos - 1) in
      let path =
        match Gqkg_automata.Regex_parser.parse text with
        | r -> r
        | exception Gqkg_automata.Regex_parser.Error { position; message } ->
            fail (st.pos + 1 + position) "in path expression: %s" message
      in
      st.pos <- !close + 1;
      Path path
    end
  | _ -> Plain (term st)

let parse input =
  let st = { input; pos = 0 } in
  expect st "select";
  skip_ws st;
  let select = ref [] in
  let star = try_consume st "*" in
  if not star then begin
    skip_ws st;
    while st.pos < String.length st.input && st.input.[st.pos] = '?' do
      select := variable st :: !select;
      skip_ws st
    done;
    if !select = [] then fail st.pos "expected ?variables or *"
  end;
  expect st "where";
  expect st "{";
  let patterns = ref [] in
  let continue = ref true in
  while !continue do
    skip_ws st;
    if try_consume st "}" then continue := false
    else begin
      let s = term st in
      let p = predicate st in
      let o = term st in
      (match p with
      | Plain p -> patterns := Bgp.pattern s p o :: !patterns
      | Path path -> patterns := Bgp.path_pattern s path o :: !patterns);
      (* '.' separators are optional before '}'. *)
      ignore (try_consume st ".")
    end
  done;
  let limit =
    if try_consume st "limit" then begin
      skip_ws st;
      let start = st.pos in
      while st.pos < String.length st.input && st.input.[st.pos] >= '0' && st.input.[st.pos] <= '9' do
        st.pos <- st.pos + 1
      done;
      if st.pos = start then fail st.pos "expected a number after LIMIT";
      Some (int_of_string (String.sub st.input start (st.pos - start)))
    end
    else None
  in
  skip_ws st;
  if st.pos <> String.length st.input then fail st.pos "trailing input";
  let where = List.rev !patterns in
  let select =
    if star then
      (* All variables, in order of first appearance. *)
      List.concat_map Bgp.pattern_vars where
      |> List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) []
      |> List.rev
    else List.rev !select
  in
  ({ Bgp.select; where }, limit)

(* Parse and evaluate; LIMIT truncates the sorted projection. *)
(* Evaluation rides on {!Bgp.select}, i.e. on the worst-case-optimal
   join engine; [budget] governs path materialization and the join. *)
let run ?budget store input =
  let query, limit = parse input in
  let rows = Bgp.select ?budget store query in
  match limit with
  | None -> rows
  | Some l -> List.filteri (fun i _ -> i < l) rows

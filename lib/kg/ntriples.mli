(** N-Triples parsing and serialization: one triple per line, IRIs in
    angle brackets, literals with optional [^^<datatype>] or [@lang],
    [_:name] blank nodes, full-line ['#'] comments. *)

exception Parse_error of { file : string option; line : int; message : string }

(** Lexing cursor over a single line, exposed for embedders (the
    SPARQL-lite parser reuses the literal lexer). *)
type cursor = { text : string; mutable pos : int; line : int }

(** Parse a ["..."] literal (with optional [^^<dt>] / [@lang]) starting
    at the cursor's opening quote, advancing it. *)
val parse_literal : cursor -> Term.t

(** Raises {!Parse_error} with a 1-based line number. *)
val parse_string : string -> Triple_store.t

(** Deterministic (sorted) rendering; a fixed point of parse ∘ render. *)
val to_string : Triple_store.t -> string

val load : string -> Triple_store.t
val save : string -> Triple_store.t -> unit

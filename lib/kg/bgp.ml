(* Basic graph pattern (BGP) matching: the conjunctive core of SPARQL
   [Harris & Seaborne 2013], which Section 4 treats as the declarative
   face of node/pattern extraction over RDF.

   A pattern component is a constant term or a variable; a query is a
   list of triple patterns with a SELECT head.  Evaluation is greedy
   index-backed backtracking (same planning idea as {!Gqkg_logic.Cq},
   but over the SPO/POS/OSP indexes). *)

type component = Const of Term.t | Var of string

type triple_pattern = { ps : component; pp : component; po : component }

(* A pattern is a plain triple pattern, or a SPARQL-1.1-style property
   path: subject and object joined by a Section 4 regular expression over
   predicates (evaluated by the RPQ product engine over the RDF graph
   view). *)
type pattern =
  | Triple of triple_pattern
  | Path of { src : component; path : Gqkg_automata.Regex.t; dst : component }

let pattern ps pp po = Triple { ps; pp; po }
let path_pattern src path dst = Path { src; path; dst }

let v name = Var name
let c term = Const term
let iri s = Const (Term.Iri s)

type query = { select : string list; where : pattern list }

type binding = (string * Term.t) list

let component_vars cs = List.filter_map (function Var x -> Some x | Const _ -> None) cs

let pattern_vars = function
  | Triple { ps; pp; po } -> component_vars [ ps; pp; po ]
  | Path { src; dst; _ } -> component_vars [ src; dst ]

(* Resolve a component under the bindings: a bound variable behaves like
   a constant. *)
let resolve env = function
  | Const t -> Some t
  | Var x -> List.assoc_opt x env

(* Materialized relation of a property-path pattern: endpoint term pairs
   of matching paths, indexed both ways.  Built once per distinct path
   expression and shared by the backtracking join. *)
type path_relation = {
  path_pairs : (Term.t * Term.t) list;
  path_forward : (Term.t, Term.t list) Hashtbl.t;
  path_backward : (Term.t, Term.t list) Hashtbl.t;
  path_pair_set : (Term.t * Term.t, unit) Hashtbl.t;
}

type context = {
  store : Triple_store.t;
  mutable rdf : Rdf_graph.t option; (* built on first path pattern *)
  path_relations : (string, path_relation) Hashtbl.t;
}

let make_context store = { store; rdf = None; path_relations = Hashtbl.create 4 }

let rdf_view ctx =
  match ctx.rdf with
  | Some g -> g
  | None ->
      let g = Rdf_graph.of_store ctx.store in
      ctx.rdf <- Some g;
      g

let path_relation ctx path =
  let key = Gqkg_automata.Regex.to_string ~top:true path in
  match Hashtbl.find_opt ctx.path_relations key with
  | Some rel -> rel
  | None ->
      let g = rdf_view ctx in
      let inst = Rdf_graph.to_snapshot g in
      let pairs =
        List.map
          (fun (a, b) -> (Rdf_graph.node_term g a, Rdf_graph.node_term g b))
          (Gqkg_core.Rpq.eval_pairs inst path)
      in
      let path_forward = Hashtbl.create 64 and path_backward = Hashtbl.create 64 in
      let path_pair_set = Hashtbl.create 256 in
      let push tbl k value =
        Hashtbl.replace tbl k (value :: Option.value (Hashtbl.find_opt tbl k) ~default:[])
      in
      List.iter
        (fun (a, b) ->
          push path_forward a b;
          push path_backward b a;
          Hashtbl.replace path_pair_set (a, b) ())
        pairs;
      let rel = { path_pairs = pairs; path_forward; path_backward; path_pair_set } in
      Hashtbl.add ctx.path_relations key rel;
      rel

(* Estimated result size of a triple pattern under the current bindings. *)
let triple_cost store env pat =
  let to_id component =
    match resolve env component with
    | None -> Some None (* wildcard *)
    | Some term -> (
        match Triple_store.id_of store term with
        | Some id -> Some (Some id)
        | None -> None (* constant not present: empty *))
  in
  match (to_id pat.ps, to_id pat.pp, to_id pat.po) with
  | Some s, Some p, Some o -> Triple_store.count_matching_ids store ~s ~p ~o
  | _ -> 0

let triple_matches store env pat k =
  let to_id component =
    match resolve env component with
    | None -> Some None
    | Some term -> (
        match Triple_store.id_of store term with Some id -> Some (Some id) | None -> None)
  in
  match (to_id pat.ps, to_id pat.pp, to_id pat.po) with
  | Some s, Some p, Some o ->
      Triple_store.iter_matching_ids store ~s ~p ~o (fun si pi oi ->
          (* Bind unbound variables; reject on conflicting repeated vars
             within the pattern (e.g. ?x ?p ?x). *)
          let bind env component id =
            match (component, env) with
            | Const _, Some env -> Some env
            | Var x, Some env -> begin
                let term = Triple_store.term_of store id in
                match List.assoc_opt x env with
                | Some existing -> if Term.equal existing term then Some env else None
                | None -> Some ((x, term) :: env)
              end
            | _, None -> None
          in
          match bind (bind (bind (Some env) pat.po oi) pat.pp pi) pat.ps si with
          | Some env' -> k env'
          | None -> ())
  | _ -> ()

let path_cost ctx env src path dst =
  let rel = path_relation ctx path in
  match (resolve env src, resolve env dst) with
  | Some _, Some _ -> 1
  | Some s, None -> List.length (Option.value (Hashtbl.find_opt rel.path_forward s) ~default:[])
  | None, Some d -> List.length (Option.value (Hashtbl.find_opt rel.path_backward d) ~default:[])
  | None, None -> List.length rel.path_pairs

let path_matches ctx env src path dst k =
  let rel = path_relation ctx path in
  let bind env component term =
    match component with
    | Const _ -> Some env
    | Var x -> (
        match List.assoc_opt x env with
        | Some existing -> if Term.equal existing term then Some env else None
        | None -> Some ((x, term) :: env))
  in
  match (resolve env src, resolve env dst) with
  | Some s, Some d -> if Hashtbl.mem rel.path_pair_set (s, d) then k env
  | Some s, None ->
      List.iter
        (fun d -> match bind env dst d with Some env' -> k env' | None -> ())
        (Option.value (Hashtbl.find_opt rel.path_forward s) ~default:[])
  | None, Some d ->
      List.iter
        (fun s -> match bind env src s with Some env' -> k env' | None -> ())
        (Option.value (Hashtbl.find_opt rel.path_backward d) ~default:[])
  | None, None ->
      List.iter
        (fun (s, d) ->
          match bind env src s with
          | Some env' -> ( match bind env' dst d with Some env'' -> k env'' | None -> ())
          | None -> ())
        rel.path_pairs

let pattern_cost ctx env = function
  | Triple pat -> triple_cost ctx.store env pat
  | Path { src; path; dst } -> path_cost ctx env src path dst

let pattern_matches ctx env pat k =
  match pat with
  | Triple pat -> triple_matches ctx.store env pat k
  | Path { src; path; dst } -> path_matches ctx env src path dst k

let iter_solutions store query ~yield =
  let ctx = make_context store in
  let rec solve env remaining =
    match remaining with
    | [] -> yield env
    | _ ->
        let best = ref None in
        List.iter
          (fun pat ->
            let cost = pattern_cost ctx env pat in
            match !best with
            | Some (_, best_cost) when best_cost <= cost -> ()
            | _ -> best := Some (pat, cost))
          remaining;
        (match !best with
        | None -> ()
        | Some (pat, _) ->
            let rest = List.filter (fun p -> p != pat) remaining in
            pattern_matches ctx env pat (fun env' -> solve env' rest))
  in
  solve [] query.where

(* SELECT evaluation: the distinct projections of the solutions onto the
   selected variables (unbound selected variables are an error). *)
let select store query =
  List.iter
    (fun x ->
      if not (List.exists (fun pat -> List.mem x (pattern_vars pat)) query.where) then
        invalid_arg (Printf.sprintf "Bgp.select: variable ?%s not used in the pattern" x))
    query.select;
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  iter_solutions store query ~yield:(fun env ->
      let row = List.map (fun x -> List.assoc x env) query.select in
      let key = List.map Term.to_string row in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := row :: !out
      end);
  List.sort (fun a b -> List.compare Term.compare a b) !out

(* COUNT of all solution mappings, without projection or dedup. *)
let count_solutions store query =
  let n = ref 0 in
  iter_solutions store query ~yield:(fun _ -> incr n);
  !n

(* ASK. *)
let ask store query =
  let exception Found in
  match iter_solutions store query ~yield:(fun _ -> raise Found) with
  | () -> false
  | exception Found -> true

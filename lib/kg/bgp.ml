(* Basic graph pattern (BGP) matching: the conjunctive core of SPARQL
   [Harris & Seaborne 2013], which Section 4 treats as the declarative
   face of node/pattern extraction over RDF.

   A pattern component is a constant term or a variable; a query is a
   list of triple patterns (or SPARQL-1.1-style property-path patterns)
   with a SELECT head.  Evaluation goes through the worst-case-optimal
   multiway join engine ({!Gqkg_core.Join}) over interned term ids:
   each triple pattern's matching triples are scanned once through the
   SPO/POS/OSP indexes into a sorted relation over its variable columns,
   property paths are materialized once per distinct expression by the
   batched Frontier-backed product engine, and the conjunction is solved
   variable-by-variable under a planned global order.

   The previous greedy backtracking join survives as
   {!iter_solutions_backtrack} (the reference oracle), with int-slot
   environments under a prepass variable numbering instead of the old
   O(vars) assoc lists. *)

module Join = Gqkg_core.Join

type component = Const of Term.t | Var of string

type triple_pattern = { ps : component; pp : component; po : component }

(* A pattern is a plain triple pattern, or a SPARQL-1.1-style property
   path: subject and object joined by a Section 4 regular expression over
   predicates (evaluated by the RPQ product engine over the RDF graph
   view). *)
type pattern =
  | Triple of triple_pattern
  | Path of { src : component; path : Gqkg_automata.Regex.t; dst : component }

let pattern ps pp po = Triple { ps; pp; po }
let path_pattern src path dst = Path { src; path; dst }

let v name = Var name
let c term = Const term
let iri s = Const (Term.Iri s)

type query = { select : string list; where : pattern list }

type binding = (string * Term.t) list

let component_vars cs = List.filter_map (function Var x -> Some x | Const _ -> None) cs

let pattern_vars = function
  | Triple { ps; pp; po } -> component_vars [ ps; pp; po ]
  | Path { src; dst; _ } -> component_vars [ src; dst ]

let query_vars query =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun pat ->
      List.iter
        (fun x ->
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.add seen x ();
            out := x :: !out
          end)
        (pattern_vars pat))
    query.where;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Property-path endpoint pairs over interned term ids                *)
(* ------------------------------------------------------------------ *)

(* Lazy RDF graph view + per-regex endpoint-pair cache, shared by the
   WCOJ compile and the oracle. *)
type context = {
  store : Triple_store.t;
  mutable rdf : (Rdf_graph.t * Gqkg_graph.Snapshot.t) option;
  path_cache : (string, (int * int) list) Hashtbl.t; (* term-id pairs *)
}

let make_context store = { store; rdf = None; path_cache = Hashtbl.create 4 }

let rdf_view ctx =
  match ctx.rdf with
  | Some gi -> gi
  | None ->
      let g = Rdf_graph.of_store ctx.store in
      let gi = (g, Rdf_graph.to_snapshot g) in
      ctx.rdf <- Some gi;
      gi

(* Endpoint pairs of a path expression as interned term ids: the one
   materialization both evaluators share (built by the batched Frontier
   engine via {!Gqkg_core.Join.path_pairs}). *)
let path_id_pairs ?budget ctx path =
  let key = Gqkg_automata.Regex.to_string ~top:true path in
  match Hashtbl.find_opt ctx.path_cache key with
  | Some pairs -> pairs
  | None ->
      let g, inst = rdf_view ctx in
      let term_id n = Triple_store.id_of ctx.store (Rdf_graph.node_term g n) in
      let pairs =
        List.filter_map
          (fun (a, b) ->
            match (term_id a, term_id b) with
            | Some ia, Some ib -> Some (ia, ib)
            | _ -> None (* defensive: every graph node comes from the store *))
          (Join.path_pairs ?budget inst path)
      in
      Hashtbl.add ctx.path_cache key pairs;
      pairs

(* ------------------------------------------------------------------ *)
(* WCOJ path: compile patterns to join specs                          *)
(* ------------------------------------------------------------------ *)

let component_name = function
  | Const t -> Term.to_string t
  | Var x -> "?" ^ x

let pattern_name = function
  | Triple { ps; pp; po } ->
      Printf.sprintf "%s %s %s" (component_name ps) (component_name pp) (component_name po)
  | Path { src; path; dst } ->
      Printf.sprintf "%s (%s) %s" (component_name src)
        (Gqkg_automata.Regex.to_string ~top:true path)
        (component_name dst)

(* Compile one pattern into a join atom over its variable columns, with
   constants substituted away.  Returns [None] when the pattern has no
   variables: [Some spec] otherwise; all-constant patterns instead
   report through [constant_sat] (false short-circuits the query). *)
let compile_pattern ?budget ctx pat =
  let store = ctx.store in
  let id_of = Triple_store.id_of store in
  match pat with
  | Triple { ps; pp; po } -> begin
      let comp = function
        | Const t -> (match id_of t with Some id -> `Id id | None -> `Missing)
        | Var x -> `Var x
      in
      match (comp ps, comp pp, comp po) with
      | `Missing, _, _ | _, `Missing, _ | _, _, `Missing ->
          (* A constant term absent from the store: nothing matches. *)
          if pattern_vars pat = [] then `Unsat
          else
            `Atom
              (Join.atom ~name:(pattern_name pat)
                 (Array.of_list (pattern_vars pat))
                 (match List.length (pattern_vars pat) with
                 | 1 -> Join.Set [||]
                 | 2 -> Join.Pairs []
                 | _ -> Join.Rows3 []))
      | `Id s, `Id p, `Id o ->
          if Triple_store.mem_ids store ~s ~p ~o then `Sat else `Unsat
      | cs, cp, co ->
          let fixed = function `Id id -> Some id | _ -> None in
          let s = fixed cs and p = fixed cp and o = fixed co in
          let vars =
            List.filter_map (function `Var x -> Some x | _ -> None) [ cs; cp; co ]
          in
          let rows = ref [] in
          Triple_store.iter_matching_ids store ~s ~p ~o (fun si pi oi ->
              let row =
                List.filter_map
                  (fun (c, i) -> match c with `Var _ -> Some i | _ -> None)
                  [ (cs, si); (cp, pi); (co, oi) ]
              in
              rows := row :: !rows);
          let rel =
            match List.length vars with
            | 1 -> Join.Set (Array.of_list (List.map List.hd !rows))
            | 2 -> Join.Pairs (List.map (function [ a; b ] -> (a, b) | _ -> assert false) !rows)
            | _ ->
                Join.Rows3
                  (List.map (function [ a; b; c ] -> (a, b, c) | _ -> assert false) !rows)
          in
          `Atom (Join.atom ~name:(pattern_name pat) (Array.of_list vars) rel)
    end
  | Path { src; path; dst } -> begin
      let pairs = path_id_pairs ?budget ctx path in
      let comp c = match c with
        | Const t -> (match id_of t with Some id -> `Id id | None -> `Missing)
        | Var x -> `Var x
      in
      match (comp src, comp dst) with
      | `Missing, _ | _, `Missing ->
          if pattern_vars pat = [] then `Unsat
          else
            `Atom
              (Join.atom ~name:(pattern_name pat)
                 (Array.of_list (pattern_vars pat))
                 (if List.length (pattern_vars pat) = 1 then Join.Set [||] else Join.Pairs []))
      | `Id a, `Id b -> if List.mem (a, b) pairs then `Sat else `Unsat
      | `Id a, `Var y ->
          `Atom
            (Join.atom ~name:(pattern_name pat) [| y |]
               (Join.Set (Array.of_list (List.filter_map (fun (s, d) -> if s = a then Some d else None) pairs))))
      | `Var x, `Id b ->
          `Atom
            (Join.atom ~name:(pattern_name pat) [| x |]
               (Join.Set (Array.of_list (List.filter_map (fun (s, d) -> if d = b then Some s else None) pairs))))
      | `Var x, `Var y -> `Atom (Join.atom ~name:(pattern_name pat) [| x; y |] (Join.Pairs pairs))
    end

let compile_query ?budget ctx query =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | pat :: rest -> (
        match compile_pattern ?budget ctx pat with
        | `Unsat -> None
        | `Sat -> go acc rest
        | `Atom spec -> go (spec :: acc) rest)
  in
  go [] query.where

let iter_solutions ?budget store query ~yield =
  let ctx = make_context store in
  match compile_query ?budget ctx query with
  | None -> ()
  | Some specs ->
      let vars = query_vars query in
      Join.solve ?budget specs ~vars ~yield:(fun row ->
          let env = List.mapi (fun i x -> (x, Triple_store.term_of store row.(i))) vars in
          yield env)

(* The join plan for a query (variable order + per-atom estimates). *)
let explain store query =
  let ctx = make_context store in
  match compile_query ctx query with
  | None -> "statically empty: a constant pattern matches nothing"
  | Some [] -> "no variable patterns: at most the empty solution"
  | Some specs -> (Join.plan specs).Join.rendered

(* SELECT evaluation: the distinct projections of the solutions onto the
   selected variables (unbound selected variables are an error). *)
let select ?budget store query =
  List.iter
    (fun x ->
      if not (List.exists (fun pat -> List.mem x (pattern_vars pat)) query.where) then
        invalid_arg (Printf.sprintf "Bgp.select: variable ?%s not used in the pattern" x))
    query.select;
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  iter_solutions ?budget store query ~yield:(fun env ->
      let row = List.map (fun x -> List.assoc x env) query.select in
      let key = List.map Term.to_string row in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := row :: !out
      end);
  List.sort (fun a b -> List.compare Term.compare a b) !out

(* COUNT of all solution mappings, without projection or dedup. *)
let count_solutions ?budget store query =
  let n = ref 0 in
  iter_solutions ?budget store query ~yield:(fun _ -> incr n);
  !n

(* ASK. *)
let ask ?budget store query =
  let exception Found in
  match iter_solutions ?budget store query ~yield:(fun _ -> raise Found) with
  | () -> false
  | exception Found -> true

(* ------------------------------------------------------------------ *)
(* Reference oracle: greedy backtracking join                         *)
(* ------------------------------------------------------------------ *)

(* Components resolved against the store and the slot numbering:
   constants become interned ids ([RMissing] when absent — matches
   nothing), variables become slot indexes into an int env array. *)
type rcomp = RId of int | RVar of int | RMissing

(* Materialized relation of a property-path pattern over term ids,
   indexed both ways for the oracle's directional probes. *)
type path_relation = {
  rel_pairs : (int * int) list;
  rel_forward : (int, int list) Hashtbl.t;
  rel_backward : (int, int list) Hashtbl.t;
  rel_pair_set : (int * int, unit) Hashtbl.t;
}

let path_relation ctx path =
  let pairs = path_id_pairs ctx path in
  let rel_forward = Hashtbl.create 64 and rel_backward = Hashtbl.create 64 in
  let rel_pair_set = Hashtbl.create 256 in
  let push tbl k value =
    Hashtbl.replace tbl k (value :: Option.value (Hashtbl.find_opt tbl k) ~default:[])
  in
  List.iter
    (fun (a, b) ->
      push rel_forward a b;
      push rel_backward b a;
      Hashtbl.replace rel_pair_set (a, b) ())
    pairs;
  { rel_pairs = pairs; rel_forward; rel_backward; rel_pair_set }

type rpattern =
  | RTriple of rcomp * rcomp * rcomp
  | RPath of rcomp * path_relation * rcomp

let iter_solutions_backtrack store query ~yield =
  let ctx = make_context store in
  (* Prepass variable numbering: int-slot environments. *)
  let vars = query_vars query in
  let slots = Hashtbl.create 16 in
  List.iteri (fun i x -> Hashtbl.add slots x i) vars;
  let env = Array.make (max 1 (List.length vars)) (-1) in
  let rcomp = function
    | Const t -> (
        match Triple_store.id_of store t with Some id -> RId id | None -> RMissing)
    | Var x -> RVar (Hashtbl.find slots x)
  in
  let patterns =
    List.map
      (function
        | Triple { ps; pp; po } -> RTriple (rcomp ps, rcomp pp, rcomp po)
        | Path { src; path; dst } -> RPath (rcomp src, path_relation ctx path, rcomp dst))
      query.where
  in
  (* A bound slot behaves like a constant. *)
  let resolve = function
    | RId id -> `Id id
    | RMissing -> `Missing
    | RVar s -> if env.(s) >= 0 then `Id env.(s) else `Open s
  in
  let to_opt = function `Id id -> Some (Some id) | `Open _ -> Some None | `Missing -> None in
  let pattern_cost = function
    | RTriple (cs, cp, co) -> begin
        match (to_opt (resolve cs), to_opt (resolve cp), to_opt (resolve co)) with
        | Some s, Some p, Some o -> Triple_store.count_matching_ids store ~s ~p ~o
        | _ -> 0
      end
    | RPath (cs, rel, cd) -> begin
        match (resolve cs, resolve cd) with
        | `Missing, _ | _, `Missing -> 0
        | `Id _, `Id _ -> 1
        | `Id s, `Open _ ->
            List.length (Option.value (Hashtbl.find_opt rel.rel_forward s) ~default:[])
        | `Open _, `Id d ->
            List.length (Option.value (Hashtbl.find_opt rel.rel_backward d) ~default:[])
        | `Open _, `Open _ -> List.length rel.rel_pairs
      end
  in
  (* Bind any open slots to the tuple's ids (checking repeated-variable
     consistency), run [k], restore. *)
  let bind_tuple comps ids k =
    let bound = ref [] in
    let ok =
      List.for_all2
        (fun c id ->
          match resolve c with
          | `Id existing -> existing = id
          | `Missing -> false
          | `Open s ->
              env.(s) <- id;
              bound := s :: !bound;
              true)
        comps ids
    in
    if ok then k ();
    List.iter (fun s -> env.(s) <- -1) !bound
  in
  let pattern_matches pat k =
    match pat with
    | RTriple (cs, cp, co) -> begin
        match (to_opt (resolve cs), to_opt (resolve cp), to_opt (resolve co)) with
        | Some s, Some p, Some o ->
            Triple_store.iter_matching_ids store ~s ~p ~o (fun si pi oi ->
                bind_tuple [ cs; cp; co ] [ si; pi; oi ] k)
        | _ -> ()
      end
    | RPath (cs, rel, cd) -> begin
        match (resolve cs, resolve cd) with
        | `Missing, _ | _, `Missing -> ()
        | `Id s, `Id d -> if Hashtbl.mem rel.rel_pair_set (s, d) then k ()
        | `Id s, `Open _ ->
            List.iter
              (fun d -> bind_tuple [ cd ] [ d ] k)
              (Option.value (Hashtbl.find_opt rel.rel_forward s) ~default:[])
        | `Open _, `Id d ->
            List.iter
              (fun s -> bind_tuple [ cs ] [ s ] k)
              (Option.value (Hashtbl.find_opt rel.rel_backward d) ~default:[])
        | `Open _, `Open _ ->
            List.iter (fun (s, d) -> bind_tuple [ cs; cd ] [ s; d ] k) rel.rel_pairs
      end
  in
  let rec solve remaining =
    match remaining with
    | [] -> yield (List.mapi (fun i x -> (x, Triple_store.term_of store env.(i))) vars)
    | _ ->
        let best = ref None in
        List.iter
          (fun pat ->
            let cost = pattern_cost pat in
            match !best with
            | Some (_, best_cost) when best_cost <= cost -> ()
            | _ -> best := Some (pat, cost))
          remaining;
        (match !best with
        | None -> ()
        | Some (pat, _) ->
            let rest = List.filter (fun p -> p != pat) remaining in
            pattern_matches pat (fun () -> solve rest))
  in
  solve patterns

let select_backtrack store query =
  List.iter
    (fun x ->
      if not (List.exists (fun pat -> List.mem x (pattern_vars pat)) query.where) then
        invalid_arg (Printf.sprintf "Bgp.select: variable ?%s not used in the pattern" x))
    query.select;
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  iter_solutions_backtrack store query ~yield:(fun env ->
      let row = List.map (fun x -> List.assoc x env) query.select in
      let key = List.map Term.to_string row in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := row :: !out
      end);
  List.sort (fun a b -> List.compare Term.compare a b) !out

let count_solutions_backtrack store query =
  let n = ref 0 in
  iter_solutions_backtrack store query ~yield:(fun _ -> incr n);
  !n

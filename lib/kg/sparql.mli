(** SPARQL-lite: a concrete SELECT / basic-graph-pattern syntax for the
    triple store, with property paths in parenthesized predicate
    position (the {!Gqkg_automata.Regex_parser} syntax over predicate
    local names). [a] abbreviates rdf:type; [SELECT *] selects every
    variable in order of first appearance; LIMIT truncates. Full IRIs
    only (no prefix declarations). *)

exception Error of { position : int; message : string }

(** Parse into a BGP query and an optional LIMIT. Raises {!Error}. *)
val parse : string -> Bgp.query * int option

(** Parse and evaluate (sorted distinct rows, LIMIT applied) through the
    worst-case-optimal join engine; a tripped [budget] yields a sound
    subset of the rows. *)
val run : ?budget:Gqkg_util.Budget.t -> Triple_store.t -> string -> Term.t list list

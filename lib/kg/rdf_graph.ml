(* RDF graphs as labeled graphs (Section 3): "an RDF graph is a set of
   triples (s, p, o) … so that (s, p, o) represents an edge from s to o
   with label p", with edges unnamed (identified by their triple).

   This module exposes a triple store through the uniform Instance view,
   which lets every Section 4 algorithm — regular path queries, counting,
   sampling, regex-constrained centrality — run unchanged over RDF.
   Atomic tests are interpreted RDF-style:

   - an edge satisfies label ℓ when its predicate IRI is ℓ or has local
     name ℓ;
   - a node satisfies label ℓ when it has an rdf:type whose IRI is ℓ or
     has local name ℓ (the idiomatic RDF reading of "node label");
   - a node satisfies (p = v) when a triple (node, p, "v") exists with a
     literal object. *)

open Gqkg_graph

type t = {
  store : Triple_store.t;
  node_terms : Term.t array; (* node index -> term *)
  node_ids : (Term.t, int) Hashtbl.t;
  edges : (int * int * Term.t) array; (* edge index -> (src, dst, predicate) *)
  out_adj : (int * int) array array;
  in_adj : (int * int) array array;
  types : (int, Term.t list) Hashtbl.t; (* node -> its rdf:type objects *)
}

let rdf_type = Rdfs.rdf_type

let of_store store =
  let node_ids = Hashtbl.create 256 in
  let node_list = ref [] in
  let node_of term =
    match Hashtbl.find_opt node_ids term with
    | Some id -> id
    | None ->
        let id = Hashtbl.length node_ids in
        Hashtbl.add node_ids term id;
        node_list := term :: !node_list;
        id
  in
  let edge_list = ref [] in
  Triple_store.iter store (fun { Triple_store.s; p; o } ->
      let si = node_of s and oi = node_of o in
      edge_list := (si, oi, p) :: !edge_list);
  let node_terms = Array.of_list (List.rev !node_list) in
  let edges = Array.of_list (List.rev !edge_list) in
  let n = Array.length node_terms in
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  Array.iter
    (fun (s, d, _) ->
      out_count.(s) <- out_count.(s) + 1;
      in_count.(d) <- in_count.(d) + 1)
    edges;
  let out_adj = Array.init n (fun v -> Array.make out_count.(v) (0, 0)) in
  let in_adj = Array.init n (fun v -> Array.make in_count.(v) (0, 0)) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  Array.iteri
    (fun e (s, d, _) ->
      out_adj.(s).(out_fill.(s)) <- (e, d);
      out_fill.(s) <- out_fill.(s) + 1;
      in_adj.(d).(in_fill.(d)) <- (e, s);
      in_fill.(d) <- in_fill.(d) + 1)
    edges;
  let types = Hashtbl.create 64 in
  Triple_store.iter_matching store ~s:None ~p:(Some rdf_type) ~o:None (fun tr ->
      match Hashtbl.find_opt node_ids tr.Triple_store.s with
      | Some id ->
          Hashtbl.replace types id (tr.o :: Option.value (Hashtbl.find_opt types id) ~default:[])
      | None -> ());
  { store; node_terms; node_ids; edges; out_adj; in_adj; types }

let num_nodes g = Array.length g.node_terms
let num_edges g = Array.length g.edges
let node_term g n = g.node_terms.(n)
let find_node g term = Hashtbl.find_opt g.node_ids term

(* ℓ names an IRI when it equals the full IRI or its local name. *)
let names_iri label term =
  match term with
  | Term.Iri iri -> String.equal label iri || String.equal label (Term.local_name term)
  | Term.Literal _ | Term.Bnode _ -> false

let node_satisfies_atom g n = function
  | Atom.Label l -> begin
      let label = Const.to_string l in
      match Hashtbl.find_opt g.types n with
      | Some types -> List.exists (names_iri label) types
      | None -> false
    end
  | Atom.Prop (p, v) -> begin
      let pname = Const.to_string p and value = Const.to_string v in
      let found = ref false in
      Array.iter
        (fun (e, _) ->
          let _, _, pred = g.edges.(e) in
          if names_iri pname pred then begin
            let _, o, _ = g.edges.(e) in
            match g.node_terms.(o) with
            | Term.Literal { value = lit; _ } -> if String.equal lit value then found := true
            | Term.Iri _ | Term.Bnode _ -> ()
          end)
        g.out_adj.(n);
      !found
    end
  | Atom.Feature _ -> false

let edge_satisfies_atom g e = function
  | Atom.Label l ->
      let _, _, pred = g.edges.(e) in
      names_iri (Const.to_string l) pred
  | Atom.Prop _ | Atom.Feature _ -> false

(* Freeze to the columnar snapshot.  A Label atom on an edge is a pure
   function of the predicate (full IRI or local name), so interning
   predicates preserves the RDF reading; node labels intern the rdf:type
   objects, and a node may carry several (one bitmap membership per
   type). *)
let to_snapshot g =
  let m = num_edges g in
  let rdf_label_sat universe id = function
    | Atom.Label l -> names_iri (Const.to_string l) universe.(id)
    | Atom.Prop _ | Atom.Feature _ -> false
  in
  let elabel, predicates =
    Snapshot.intern ~n:m ~get:(fun e ->
        let _, _, pred = g.edges.(e) in
        pred)
  in
  let type_ids = Hashtbl.create 16 in
  let type_list = ref [] in
  let type_id term =
    match Hashtbl.find_opt type_ids term with
    | Some id -> id
    | None ->
        let id = Hashtbl.length type_ids in
        Hashtbl.add type_ids term id;
        type_list := term :: !type_list;
        id
  in
  let node_labels =
    Array.init (num_nodes g) (fun n ->
        match Hashtbl.find_opt g.types n with
        | Some types -> List.sort_uniq Int.compare (List.map type_id types)
        | None -> [])
  in
  let type_universe = Array.of_list (List.rev !type_list) in
  Snapshot.make ~num_nodes:(num_nodes g)
    ~esrc:(Array.map (fun (s, _, _) -> s) g.edges)
    ~edst:(Array.map (fun (_, d, _) -> d) g.edges)
    ~num_labels:(Array.length predicates) ~elabel
    ~label_names:(Array.map Term.local_name predicates)
    ~label_sat:(rdf_label_sat predicates)
    ~num_node_labels:(Array.length type_universe) ~node_labels
    ~node_label_names:(Array.map Term.local_name type_universe)
    ~node_label_sat:(rdf_label_sat type_universe)
    ~node_atom:(node_satisfies_atom g) ~edge_atom:(edge_satisfies_atom g)
    ~node_name:(fun n -> Term.to_string g.node_terms.(n))
    ~edge_name:(fun e ->
      let _, _, pred = g.edges.(e) in
      Term.local_name pred)

(** RDF graphs as labeled graphs (Section 3): each triple (s, p, o) is
    an edge from s to o labeled p. Exposing a triple store through the
    uniform Instance view lets every Section 4 algorithm run unchanged
    over RDF. Atomic tests: an edge satisfies label ℓ when its predicate
    is ℓ or has local name ℓ; a node satisfies ℓ when it has a matching
    rdf:type; (p = v) holds when a literal-valued triple exists. *)

type t

val of_store : Triple_store.t -> t
val num_nodes : t -> int
val num_edges : t -> int

(** The RDF term at a node index. *)
val node_term : t -> int -> Term.t

val find_node : t -> Term.t -> int option
val node_satisfies_atom : t -> int -> Gqkg_graph.Atom.t -> bool
val edge_satisfies_atom : t -> int -> Gqkg_graph.Atom.t -> bool

(** Freeze to the columnar snapshot: predicates become interned edge
    labels (satisfaction by full IRI or local name), rdf:type objects
    become node-label bitmaps (a node may carry several). *)
val to_snapshot : t -> Gqkg_graph.Snapshot.t

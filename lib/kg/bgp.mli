(** Basic graph pattern matching — the conjunctive core of SPARQL — with
    SPARQL-1.1-style property-path patterns (Section 4's declarative
    face of pattern extraction over RDF).  Evaluation goes through the
    worst-case-optimal multiway join engine ({!Gqkg_core.Join}) over
    interned term ids: triple patterns are scanned once into sorted
    relations over their variable columns, path patterns are
    materialized once each by the RPQ product engine, and the
    conjunction is solved variable-by-variable under a planned order.
    The previous greedy backtracking join remains as the reference
    oracle {!iter_solutions_backtrack}. *)

type component = Const of Term.t | Var of string

type triple_pattern = { ps : component; pp : component; po : component }

type pattern =
  | Triple of triple_pattern
  | Path of { src : component; path : Gqkg_automata.Regex.t; dst : component }

(** A plain triple pattern. *)
val pattern : component -> component -> component -> pattern

(** A property-path pattern: endpoints joined by a regular expression
    over predicates. *)
val path_pattern : component -> Gqkg_automata.Regex.t -> component -> pattern

val v : string -> component
val c : Term.t -> component
val iri : string -> component

type query = { select : string list; where : pattern list }
type binding = (string * Term.t) list

val pattern_vars : pattern -> string list

(** Call [yield] once per solution mapping (not deduplicated; the join
    engine enumerates each full assignment exactly once).  A tripped
    [budget] stops both path-atom materialization and the join: the
    yielded mappings are a sound subset of the complete answer. *)
val iter_solutions :
  ?budget:Gqkg_util.Budget.t -> Triple_store.t -> query -> yield:(binding -> unit) -> unit

(** Distinct projections onto the selected variables, sorted. Raises if
    a selected variable is unused. *)
val select : ?budget:Gqkg_util.Budget.t -> Triple_store.t -> query -> Term.t list list

(** Number of solution mappings (no projection or dedup). *)
val count_solutions : ?budget:Gqkg_util.Budget.t -> Triple_store.t -> query -> int

val ask : ?budget:Gqkg_util.Budget.t -> Triple_store.t -> query -> bool

(** The join plan: chosen variable order and per-atom estimates. *)
val explain : Triple_store.t -> query -> string

(** {1 Reference oracle}

    The pre-WCOJ greedy backtracking join (cheapest pattern first under
    the current bindings, int-slot environments over term ids), kept as
    the equivalence oracle for tests and the bench A/B. *)

val iter_solutions_backtrack : Triple_store.t -> query -> yield:(binding -> unit) -> unit
val select_backtrack : Triple_store.t -> query -> Term.t list list
val count_solutions_backtrack : Triple_store.t -> query -> int

(* N-Triples parsing and serialization (the line-oriented RDF exchange
   syntax): one triple per line, subject predicate object '.', with
   IRIs in angle brackets, literals in quotes with optional ^^<datatype>
   or @lang, and _:name blank nodes.  Full-line comments start with #. *)

exception Parse_error of { file : string option; line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { file = None; line; message })) fmt

type cursor = { text : string; mutable pos : int; line : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text && (c.text.[c.pos] = ' ' || c.text.[c.pos] = '\t')
  do
    c.pos <- c.pos + 1
  done

let parse_iri c =
  (* c.pos at '<' *)
  match String.index_from_opt c.text c.pos '>' with
  | None -> fail c.line "unterminated IRI"
  | Some close ->
      let iri = String.sub c.text (c.pos + 1) (close - c.pos - 1) in
      c.pos <- close + 1;
      Term.Iri iri

let parse_bnode c =
  (* c.pos at '_' *)
  if c.pos + 1 >= String.length c.text || c.text.[c.pos + 1] <> ':' then
    fail c.line "malformed blank node";
  let start = c.pos + 2 in
  let finish = ref start in
  while
    !finish < String.length c.text
    && (match c.text.[!finish] with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
       | _ -> false)
  do
    incr finish
  done;
  if !finish = start then fail c.line "empty blank node label";
  let label = String.sub c.text start (!finish - start) in
  c.pos <- !finish;
  Term.Bnode label

let parse_literal c =
  (* c.pos at opening quote *)
  let buf = Buffer.create 16 in
  let i = ref (c.pos + 1) in
  let closed = ref false in
  while (not !closed) && !i < String.length c.text do
    (match c.text.[!i] with
    | '\\' ->
        if !i + 1 >= String.length c.text then fail c.line "dangling escape";
        (match c.text.[!i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | e -> fail c.line "unknown escape \\%c" e);
        incr i
    | '"' -> closed := true
    | ch -> Buffer.add_char buf ch);
    incr i
  done;
  if not !closed then fail c.line "unterminated literal";
  c.pos <- !i;
  let value = Buffer.contents buf in
  match peek c with
  | Some '^' ->
      if c.pos + 1 >= String.length c.text || c.text.[c.pos + 1] <> '^' then
        fail c.line "malformed datatype marker";
      c.pos <- c.pos + 2;
      (match peek c with
      | Some '<' -> begin
          match parse_iri c with
          | Term.Iri dt -> Term.literal ~datatype:dt value
          | _ -> assert false
        end
      | _ -> fail c.line "datatype must be an IRI")
  | Some '@' ->
      let start = c.pos + 1 in
      let finish = ref start in
      while
        !finish < String.length c.text
        && (match c.text.[!finish] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> true | _ -> false)
      do
        incr finish
      done;
      if !finish = start then fail c.line "empty language tag";
      let lang = String.sub c.text start (!finish - start) in
      c.pos <- !finish;
      Term.literal ~lang value
  | _ -> Term.literal value

let parse_term c =
  skip_ws c;
  match peek c with
  | Some '<' -> parse_iri c
  | Some '_' -> parse_bnode c
  | Some '"' -> parse_literal c
  | Some ch -> fail c.line "unexpected character %C" ch
  | None -> fail c.line "unexpected end of line"

let parse_line ~line text =
  let trimmed = String.trim text in
  if trimmed = "" || trimmed.[0] = '#' then None
  else begin
    let c = { text = trimmed; pos = 0; line } in
    let s = parse_term c in
    let p = parse_term c in
    let o = parse_term c in
    skip_ws c;
    (match peek c with
    | Some '.' -> c.pos <- c.pos + 1
    | _ -> fail line "expected terminating '.'");
    skip_ws c;
    (match peek c with
    | None -> ()
    | Some '#' -> ()
    | Some ch -> fail line "trailing garbage %C" ch);
    (match p with
    | Term.Iri _ -> ()
    | _ -> fail line "predicate must be an IRI");
    Some (Triple_store.triple s p o)
  end

let parse_string text =
  let store = Triple_store.create () in
  List.iteri
    (fun i line ->
      match parse_line ~line:(i + 1) line with
      | Some tr -> ignore (Triple_store.add store tr)
      | None -> ())
    (String.split_on_char '\n' text);
  store

let to_string store =
  let buf = Buffer.create 1024 in
  let triples = List.sort compare (List.map (fun { Triple_store.s; p; o } -> (Term.to_string s, Term.to_string p, Term.to_string o)) (Triple_store.to_list store)) in
  List.iter (fun (s, p, o) -> Buffer.add_string buf (Printf.sprintf "%s %s %s .\n" s p o)) triples;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let text =
    try really_input_string ic (in_channel_length ic)
    with exn ->
      close_in ic;
      raise exn
  in
  close_in ic;
  try parse_string text
  with Parse_error { file = None; line; message } ->
    raise (Parse_error { file = Some path; line; message })

let save path store =
  let oc = open_out path in
  output_string oc (to_string store);
  close_out oc

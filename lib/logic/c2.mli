(** C²: two-variable first-order logic with counting quantifiers — the
    logic matching the Weisfeiler-Lehman test's distinguishing power
    [Cai, Fürer & Immerman 1992]; the third corner of the Section 4.3
    correspondence. *)

open Gqkg_graph

type formula =
  | Node_pred of Const.t * string
  | Edge_pred of Const.t * string * string  (** labeled edge x→y *)
  | Adjacent of string * string  (** any edge between x and y, either way *)
  | Eq of string * string
  | Neg of formula
  | And of formula * formula
  | Or of formula * formula
  | Count_exists of int * string * formula  (** ∃≥k x φ *)

val node_pred : string -> string -> formula
val edge_pred : string -> string -> string -> formula

(** ∃≥k; raises on k < 1. *)
val exists : ?at_least:int -> string -> formula -> formula

module Vars : Set.S with type elt = string

val free_vars : formula -> Vars.t
val all_vars : formula -> Vars.t
val width : formula -> int

(** At most two variable names in the whole formula? *)
val is_c2 : formula -> bool

val to_string : formula -> string

(** Unary query in [free]; rejects formulas outside C² or with stray
    free variables. Sorted answers. *)
val eval : Snapshot.t -> formula -> free:string -> int list

(** Embed graded modal logic: ◇≥k φ ↦ ∃≥k y (adj(x,y) ∧ φ(y)). Agrees
    with {!Gml.eval} on simple graphs (no parallel edges). Raises on
    non-label atoms. *)
val of_gml : Gml.t -> formula

(* Reachability logic: first-order logic extended with the transitive
   closure of a binary definable relation — the "efficient fragment of
   transitive closure logic" thread the paper cites [Alechina & Immerman
   2000].  This is the declarative counterpart of the Kleene star: a
   star-free step expression defines the base relation, TC closes it.

     tc ::= TC(step)(x, y)        reach by >= 1 step
          | TC0(step)(x, y)       reach by >= 0 steps

   A step is any regex translatable to FO (the chain fragment of
   {!Fo_regex}); its relation is computed once with the RPQ engine and
   closed by breadth-first search, so evaluation stays O(n·(n+m)) — the
   bounded-variable promise extended to recursion. *)

open Gqkg_graph
open Gqkg_automata

type formula =
  | Fo of Fo.formula  (** an ordinary FO formula *)
  | Tc of { step : Regex.t; reflexive : bool; src : string; dst : string }
      (** TC(step)(src, dst): dst reachable from src by ≥1 (or ≥0 when
          [reflexive]) step-paths *)
  | And of formula * formula
  | Or of formula * formula
  | Neg of formula
  | Exists of string * formula

let tc ?(reflexive = false) step ~src ~dst = Tc { step; reflexive; src; dst }

module Vars = Fo.Vars

let rec free_vars = function
  | Fo f -> Fo.free_vars f
  | Tc { src; dst; _ } -> Vars.add src (Vars.singleton dst)
  | And (f, g) | Or (f, g) -> Vars.union (free_vars f) (free_vars g)
  | Neg f -> free_vars f
  | Exists (x, f) -> Vars.remove x (free_vars f)

(* The closure of a step relation: reach.(a) = set of b with a step-path
   a ->+ b (or ->* when reflexive).  One BFS per source over the
   step-pair adjacency. *)
let closure_relation ?max_length inst step ~reflexive =
  let n = inst.Snapshot.num_nodes in
  let successors = Array.make n [] in
  List.iter
    (fun (a, b) -> successors.(a) <- b :: successors.(a))
    (Gqkg_core.Rpq.eval_pairs ?max_length inst step);
  let reach = Array.init n (fun _ -> Hashtbl.create 4) in
  for source = 0 to n - 1 do
    let visited = reach.(source) in
    let queue = Queue.create () in
    let push v =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        Queue.push v queue
      end
    in
    List.iter push successors.(source);
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter push successors.(v)
    done;
    if reflexive then Hashtbl.replace visited source ()
  done;
  reach

(* Evaluate as a unary query in the free variable [free]; every other
   variable must be bound by Exists.  TC atoms become precomputed
   reachability tables; the rest is Tarskian evaluation with the same
   environment discipline as {!Fo.eval_naive}. *)
let eval ?max_length inst formula ~free =
  if not (Vars.subset (free_vars formula) (Vars.singleton free)) then
    invalid_arg "Fo_tc.eval: formula has free variables beyond the query variable";
  (* Cache one closure per distinct (step, reflexive). *)
  let closures = Hashtbl.create 4 in
  let closure step reflexive =
    let key = (Regex.to_string ~top:true step, reflexive) in
    match Hashtbl.find_opt closures key with
    | Some c -> c
    | None ->
        let c = closure_relation ?max_length inst step ~reflexive in
        Hashtbl.add closures key c;
        c
  in
  let db = Fo.db_of_instance inst in
  let n = inst.Snapshot.num_nodes in
  let rec holds env = function
    | Fo f -> Fo.holds db env f
    | Tc { step; reflexive; src; dst } ->
        let a = List.assoc src env and b = List.assoc dst env in
        Hashtbl.mem (closure step reflexive).(a) b
    | And (f, g) -> holds env f && holds env g
    | Or (f, g) -> holds env f || holds env g
    | Neg f -> not (holds env f)
    | Exists (x, f) ->
        let rec loop v = v < n && (holds ((x, v) :: env) f || loop (v + 1)) in
        loop 0
  in
  let out = ref [] in
  for v = n - 1 downto 0 do
    if holds [ (free, v) ] formula then out := v :: !out
  done;
  !out

(** Graded modal logic — the declarative counterpart of AC-GNNs
    (Section 4.3, Barceló et al. 2020). ◇≥n φ holds at a node with at
    least n neighbors (undirected, with multiplicity) satisfying φ. *)

open Gqkg_graph

type t =
  | Atom of Atom.t
  | True
  | Not of t
  | And of t * t
  | Or of t * t
  | Diamond of int * t  (** ◇≥n φ *)

val label : string -> t
val feature : int -> Const.t -> t

(** [diamond ~at_least:n φ] is ◇≥n φ; raises on n < 1. *)
val diamond : ?at_least:int -> t -> t

(** Maximum ◇-nesting. *)
val depth : t -> int

val size : t -> int

(** Subformulas, children before parents, duplicates collapsed — the
    coordinate order of the logic→GNN compiler. *)
val subformulas : t -> t list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Truth value at every node, O(size · (n + m)). *)
val eval : Snapshot.t -> t -> bool array

(** The satisfying nodes, ascending. *)
val models : Snapshot.t -> t -> int list

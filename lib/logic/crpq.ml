(* Conjunctive regular path queries (CRPQs): the closure of conjunctive
   queries under regular path atoms — the backbone of modern graph query
   languages (SPARQL property paths, Cypher patterns, G-CORE; the paper's
   reference model [Angles et al. 2017]).

     Q(x̄) :- (x₁, r₁, y₁), ..., (x_m, r_m, y_m)

   where every rᵢ is a full Section 4 regular expression with tests.
   Each atom's relation is computed once with the product engine (one
   breadth-first search per source node) and indexed in both directions;
   the conjunction is then solved by greedy backtracking join, smallest
   candidate set first — the same planning discipline as {!Cq} and
   {!Gqkg_kg.Bgp}, lifted to path atoms.

   [max_length] bounds path length per atom (needed only to tame costs on
   star-heavy patterns; answers are complete regardless because the
   product is finite). *)

open Gqkg_graph
open Gqkg_automata

type atom = { src : string; regex : Regex.t; dst : string }

type t = { head : string list; body : atom list; limit : int option }

let atom ~src ~regex ~dst = { src; regex; dst }

let query ?limit ~head ~body () =
  (match limit with
  | Some l when l < 0 -> invalid_arg "Crpq.query: negative limit"
  | _ -> ());
  { head; body; limit }

module Vars = Set.Make (String)

let atom_vars a = Vars.add a.src (Vars.singleton a.dst)
let body_vars body = List.fold_left (fun acc a -> Vars.union acc (atom_vars a)) Vars.empty body

let to_string q =
  Printf.sprintf "SELECT %s WHERE %s%s" (String.concat ", " q.head)
    (String.concat ", "
       (List.map
          (fun a -> Printf.sprintf "(%s)-[%s]->(%s)" a.src (Regex.to_string ~top:true a.regex) a.dst)
          q.body))
    (match q.limit with Some l -> Printf.sprintf " LIMIT %d" l | None -> "")

(* The materialized relation of one path atom. *)
type atom_relation = {
  pairs : (int * int) list;
  forward : (int, int list) Hashtbl.t; (* src -> dsts *)
  backward : (int, int list) Hashtbl.t; (* dst -> srcs *)
  pair_set : (int * int, unit) Hashtbl.t;
}

let materialize_atom ?max_length inst regex =
  let pairs = Gqkg_core.Rpq.eval_pairs ?max_length inst regex in
  let forward = Hashtbl.create 64 and backward = Hashtbl.create 64 in
  let pair_set = Hashtbl.create 256 in
  let push tbl k v = Hashtbl.replace tbl k (v :: Option.value (Hashtbl.find_opt tbl k) ~default:[]) in
  List.iter
    (fun (a, b) ->
      push forward a b;
      push backward b a;
      Hashtbl.replace pair_set (a, b) ())
    pairs;
  { pairs; forward; backward; pair_set }

(* Candidate count of an atom under the current bindings. *)
let atom_cost rel env a =
  match (List.assoc_opt a.src env, List.assoc_opt a.dst env) with
  | Some _, Some _ -> 1
  | Some s, None -> List.length (Option.value (Hashtbl.find_opt rel.forward s) ~default:[])
  | None, Some d -> List.length (Option.value (Hashtbl.find_opt rel.backward d) ~default:[])
  | None, None -> List.length rel.pairs

let atom_matches rel env a k =
  match (List.assoc_opt a.src env, List.assoc_opt a.dst env) with
  | Some s, Some d -> if Hashtbl.mem rel.pair_set (s, d) then k env
  | Some s, None ->
      List.iter
        (fun d -> k ((a.dst, d) :: env))
        (Option.value (Hashtbl.find_opt rel.forward s) ~default:[])
  | None, Some d ->
      List.iter
        (fun s -> k ((a.src, s) :: env))
        (Option.value (Hashtbl.find_opt rel.backward d) ~default:[])
  | None, None ->
      List.iter
        (fun (s, d) ->
          if a.src = a.dst then begin
            if s = d then k ((a.src, s) :: env)
          end
          else k ((a.src, s) :: (a.dst, d) :: env))
        rel.pairs

(* Evaluate, calling [yield] once per distinct head tuple. *)
let iter_answers ?max_length inst q ~yield =
  List.iter
    (fun v ->
      if not (Vars.mem v (body_vars q.body)) then
        invalid_arg (Printf.sprintf "Crpq: head variable %s not bound by the body" v))
    q.head;
  (* One materialized relation per atom; identical regexes share work
     through a small cache keyed by the printed form. *)
  let cache = Hashtbl.create 8 in
  let relations =
    List.map
      (fun a ->
        let key = Regex.to_string ~top:true a.regex in
        let rel =
          match Hashtbl.find_opt cache key with
          | Some rel -> rel
          | None ->
              let rel = materialize_atom ?max_length inst a.regex in
              Hashtbl.add cache key rel;
              rel
        in
        (a, rel))
      q.body
  in
  let seen = Hashtbl.create 64 in
  let exception Enough in
  let rec solve env remaining =
    match remaining with
    | [] ->
        let answer = List.map (fun v -> List.assoc v env) q.head in
        if not (Hashtbl.mem seen answer) then begin
          Hashtbl.replace seen answer ();
          yield answer;
          match q.limit with
          | Some l when Hashtbl.length seen >= l -> raise Enough
          | _ -> ()
        end
    | _ ->
        let best = ref None in
        List.iter
          (fun ((a, rel) as entry) ->
            let cost = atom_cost rel env a in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> best := Some (entry, cost))
          remaining;
        (match !best with
        | None -> ()
        | Some (((a, rel) as entry), _) ->
            let rest = List.filter (fun e -> e != entry) remaining in
            atom_matches rel env a (fun env' -> solve env' rest))
  in
  (try solve [] relations with Enough -> ())

let answers ?max_length inst q =
  let out = ref [] in
  iter_answers ?max_length inst q ~yield:(fun row -> out := row :: !out);
  List.sort compare !out

let answer_nodes ?max_length inst q =
  List.filter_map (function [ v ] -> Some v | _ -> None) (answers ?max_length inst q)

(* Reference evaluator: enumerate all assignments of body variables and
   check every atom — exponential, the oracle for tests. *)
let answers_naive ?max_length inst q =
  let vars = Vars.elements (body_vars q.body) in
  let relations =
    List.map (fun a -> (a, materialize_atom ?max_length inst a.regex)) q.body
  in
  let n = inst.Snapshot.num_nodes in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec assign env = function
    | [] ->
        if
          List.for_all
            (fun (a, rel) -> Hashtbl.mem rel.pair_set (List.assoc a.src env, List.assoc a.dst env))
            relations
        then begin
          let answer = List.map (fun v -> List.assoc v env) q.head in
          if not (Hashtbl.mem seen answer) then begin
            Hashtbl.replace seen answer ();
            out := answer :: !out
          end
        end
    | v :: rest ->
        for node = 0 to n - 1 do
          assign ((v, node) :: env) rest
        done
  in
  assign [] vars;
  List.sort compare !out

(* Full solution mappings (every body variable bound), deduplicated. *)
let solutions ?max_length inst q =
  let vars = Vars.elements (body_vars q.body) in
  let out = ref [] in
  (* Selecting every body variable makes iter_answers' dedup a dedup of
     full solution mappings. *)
  iter_answers ?max_length inst { q with head = vars } ~yield:(fun row ->
      out := List.combine vars row :: !out);
  List.rev !out

(* Solutions with one shortest witness path per atom — paths as
   first-class results, the G-CORE idea the paper's reference [5]
   advocates.  Witness search is memoized per (atom regex, endpoints). *)
let solutions_with_witnesses ?max_length inst q =
  let cache = Hashtbl.create 64 in
  let witness regex s d =
    let key = (Regex.to_string ~top:true regex, s, d) in
    match Hashtbl.find_opt cache key with
    | Some w -> w
    | None ->
        let w = Gqkg_core.Rpq.shortest_witness ?max_length inst regex ~source:s ~target:d in
        Hashtbl.add cache key w;
        w
  in
  List.filter_map
    (fun env ->
      let witnesses =
        List.map
          (fun a ->
            match witness a.regex (List.assoc a.src env) (List.assoc a.dst env) with
            | Some p -> Some (a, p)
            | None -> None)
          q.body
      in
      if List.for_all Option.is_some witnesses then
        Some (env, List.map Option.get witnesses)
      else None (* cannot happen for genuine solutions; defensive *))
    (solutions ?max_length inst q)

(* Plan explanation: the materialized relation sizes and the static
   greedy order (the dynamic order refines per partial binding). *)
let explain ?max_length inst q =
  let relations = List.map (fun a -> (a, materialize_atom ?max_length inst a.regex)) q.body in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (to_string q);
  Buffer.add_string buf "\nmaterialized path atoms:\n";
  List.iter
    (fun (a, rel) ->
      Buffer.add_string buf
        (Printf.sprintf "  (%s)-[%s]->(%s): %d endpoint pairs\n" a.src
           (Regex.to_string ~top:true a.regex)
           a.dst (List.length rel.pairs)))
    relations;
  let ordered =
    List.sort (fun (_, r1) (_, r2) -> compare (List.length r1.pairs) (List.length r2.pairs)) relations
  in
  Buffer.add_string buf "static greedy order (smallest relation first):\n";
  List.iteri
    (fun i (a, rel) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d. (%s)-[...]->(%s)  ~%d candidates\n" (i + 1) a.src a.dst
           (List.length rel.pairs)))
    ordered;
  Buffer.contents buf

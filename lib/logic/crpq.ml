(* Conjunctive regular path queries (CRPQs): the closure of conjunctive
   queries under regular path atoms — the backbone of modern graph query
   languages (SPARQL property paths, Cypher patterns, G-CORE; the paper's
   reference model [Angles et al. 2017]).

     Q(x̄) :- (x₁, r₁, y₁), ..., (x_m, r_m, y_m)

   where every rᵢ is a full Section 4 regular expression with tests.
   Evaluation goes through the worst-case-optimal multiway join engine
   ({!Gqkg_core.Join}): single-edge-label atoms are zero-copy views over
   the label-sorted CSR index (no materialization), every other atom's
   endpoint relation is computed once by the batched Frontier-backed
   product engine ({!Gqkg_core.Join.path_pairs}) and shared across
   identical regexes, and the conjunction is solved variable-by-variable
   under a planned global order.

   [max_length] bounds path length per atom (needed only to tame costs on
   star-heavy patterns; answers are complete regardless because the
   product is finite). *)

open Gqkg_graph
open Gqkg_automata
module Join = Gqkg_core.Join

type atom = { src : string; regex : Regex.t; dst : string }

type t = { head : string list; body : atom list; limit : int option }

let atom ~src ~regex ~dst = { src; regex; dst }

let query ?limit ~head ~body () =
  (match limit with
  | Some l when l < 0 -> invalid_arg "Crpq.query: negative limit"
  | _ -> ());
  { head; body; limit }

module Vars = Set.Make (String)

let atom_vars a = Vars.add a.src (Vars.singleton a.dst)
let body_vars body = List.fold_left (fun acc a -> Vars.union acc (atom_vars a)) Vars.empty body

let validate_head q =
  List.iter
    (fun v ->
      if not (Vars.mem v (body_vars q.body)) then
        invalid_arg (Printf.sprintf "Crpq: head variable %s not bound by the body" v))
    q.head

let to_string q =
  Printf.sprintf "SELECT %s WHERE %s%s" (String.concat ", " q.head)
    (String.concat ", "
       (List.map
          (fun a -> Printf.sprintf "(%s)-[%s]->(%s)" a.src (Regex.to_string ~top:true a.regex) a.dst)
          q.body))
    (match q.limit with Some l -> Printf.sprintf " LIMIT %d" l | None -> "")

(* ------------------------------------------------------------------ *)
(* WCOJ path: compile atoms to join specs                             *)
(* ------------------------------------------------------------------ *)

(* A single-edge-label atom needs no materialization: its relation IS
   the label's CSR adjacency.  [Bwd] flips the endpoint roles (a
   backward step from x lands on the edge's source). *)
let csr_label inst ?max_length regex =
  if inst.Snapshot.num_labels = 0 then None
  else if (match max_length with Some k -> k < 1 | None -> false) then None
  else
    match regex with
    | Regex.Fwd (Regex.Atom (Atom.Label c)) -> Some (c, false)
    | Regex.Bwd (Regex.Atom (Atom.Label c)) -> Some (c, true)
    | _ -> None

let atom_display a =
  Printf.sprintf "(%s)-[%s]->(%s)" a.src (Regex.to_string ~top:true a.regex) a.dst

(* One spec per atom; identical regexes share one materialization
   through [cache] (keyed by the printed form). *)
let join_specs ?budget ?max_length inst body =
  let idx = Join.Index.get inst in
  let cache = Hashtbl.create 8 in
  List.map
    (fun a ->
      match csr_label inst ?max_length a.regex with
      | Some (c, flipped) ->
          let vars = if flipped then [| a.dst; a.src |] else [| a.src; a.dst |] in
          Join.atom ~name:(atom_display a) vars
            (Join.Edges (Join.Index.edge_label_ids idx c))
      | None ->
          let key = Regex.to_string ~top:true a.regex in
          let pairs =
            match Hashtbl.find_opt cache key with
            | Some pairs -> pairs
            | None ->
                let pairs = Join.path_pairs ?budget ?max_length inst a.regex in
                Hashtbl.add cache key pairs;
                pairs
          in
          Join.atom ~name:(atom_display a) [| a.src; a.dst |] (Join.Pairs pairs))
    body

(* Evaluate, calling [yield] once per distinct head tuple. *)
let iter_answers ?budget ?max_length inst q ~yield =
  validate_head q;
  let specs = join_specs ?budget ?max_length inst q.body in
  let count = ref 0 in
  let exception Enough in
  try
    Join.solve ?budget ~snapshot:inst specs ~vars:q.head ~yield:(fun row ->
        yield (Array.to_list row);
        incr count;
        match q.limit with Some l when !count >= l -> raise Enough | _ -> ())
  with Enough -> ()

let answers ?budget ?max_length inst q =
  let out = ref [] in
  iter_answers ?budget ?max_length inst q ~yield:(fun row -> out := row :: !out);
  List.sort compare !out

let answer_nodes ?budget ?max_length inst q =
  List.filter_map (function [ v ] -> Some v | _ -> None) (answers ?budget ?max_length inst q)

(* ------------------------------------------------------------------ *)
(* Materialized relations for the oracles                             *)
(* ------------------------------------------------------------------ *)

(* The fully-indexed relation of one path atom (oracle machinery; the
   WCOJ path uses sorted pair arrays instead). *)
type atom_relation = {
  pairs : (int * int) list;
  forward : (int, int list) Hashtbl.t; (* src -> dsts *)
  backward : (int, int list) Hashtbl.t; (* dst -> srcs *)
  pair_set : (int * int, unit) Hashtbl.t;
}

let materialize_atom ?max_length inst regex =
  let pairs = Join.path_pairs ?max_length inst regex in
  let forward = Hashtbl.create 64 and backward = Hashtbl.create 64 in
  let pair_set = Hashtbl.create 256 in
  let push tbl k v = Hashtbl.replace tbl k (v :: Option.value (Hashtbl.find_opt tbl k) ~default:[]) in
  List.iter
    (fun (a, b) ->
      push forward a b;
      push backward b a;
      Hashtbl.replace pair_set (a, b) ())
    pairs;
  { pairs; forward; backward; pair_set }

(* Prepass variable numbering: oracle environments are int slot arrays
   (-1 unbound), constant-time lookup instead of List.assoc. *)
let number_vars body =
  let ids = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem ids v) then begin
            Hashtbl.add ids v !next;
            incr next
          end)
        [ a.src; a.dst ])
    body;
  (ids, max 1 !next)

(* Candidate count of an atom under the current bindings. *)
let atom_cost rel env ~ssrc ~sdst =
  match (env.(ssrc), env.(sdst)) with
  | s, d when s >= 0 && d >= 0 -> 1
  | s, _ when s >= 0 -> List.length (Option.value (Hashtbl.find_opt rel.forward s) ~default:[])
  | _, d when d >= 0 -> List.length (Option.value (Hashtbl.find_opt rel.backward d) ~default:[])
  | _ -> List.length rel.pairs

let atom_matches rel env ~ssrc ~sdst k =
  let with_binding v value k =
    env.(v) <- value;
    k ();
    env.(v) <- -1
  in
  match (env.(ssrc) >= 0, env.(sdst) >= 0) with
  | true, true -> if Hashtbl.mem rel.pair_set (env.(ssrc), env.(sdst)) then k ()
  | true, false ->
      List.iter
        (fun d -> with_binding sdst d k)
        (Option.value (Hashtbl.find_opt rel.forward env.(ssrc)) ~default:[])
  | false, true ->
      List.iter
        (fun s -> with_binding ssrc s k)
        (Option.value (Hashtbl.find_opt rel.backward env.(sdst)) ~default:[])
  | false, false ->
      List.iter
        (fun (s, d) ->
          if ssrc = sdst then begin
            if s = d then with_binding ssrc s k
          end
          else with_binding ssrc s (fun () -> with_binding sdst d k))
        rel.pairs

(* Reference oracle: the pre-WCOJ greedy backtracking join (cheapest
   atom first under the current bindings), yielding distinct head
   tuples with LIMIT applied. *)
let iter_answers_backtrack ?max_length inst q ~yield =
  validate_head q;
  let cache = Hashtbl.create 8 in
  let ids, num_vars = number_vars q.body in
  let env = Array.make num_vars (-1) in
  let relations =
    List.map
      (fun a ->
        let key = Regex.to_string ~top:true a.regex in
        let rel =
          match Hashtbl.find_opt cache key with
          | Some rel -> rel
          | None ->
              let rel = materialize_atom ?max_length inst a.regex in
              Hashtbl.add cache key rel;
              rel
        in
        (Hashtbl.find ids a.src, Hashtbl.find ids a.dst, rel))
      q.body
  in
  let head_slots = List.map (Hashtbl.find ids) q.head in
  let seen = Hashtbl.create 64 in
  let exception Enough in
  let rec solve remaining =
    match remaining with
    | [] ->
        let answer = List.map (fun v -> env.(v)) head_slots in
        if not (Hashtbl.mem seen answer) then begin
          Hashtbl.replace seen answer ();
          yield answer;
          match q.limit with
          | Some l when Hashtbl.length seen >= l -> raise Enough
          | _ -> ()
        end
    | _ ->
        let best = ref None in
        List.iter
          (fun ((ssrc, sdst, rel) as entry) ->
            let cost = atom_cost rel env ~ssrc ~sdst in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> best := Some (entry, cost))
          remaining;
        (match !best with
        | None -> ()
        | Some (((ssrc, sdst, rel) as entry), _) ->
            let rest = List.filter (fun e -> e != entry) remaining in
            atom_matches rel env ~ssrc ~sdst (fun () -> solve rest))
  in
  (try solve relations with Enough -> ())

let answers_backtrack ?max_length inst q =
  let out = ref [] in
  iter_answers_backtrack ?max_length inst q ~yield:(fun row -> out := row :: !out);
  List.sort compare !out

(* Reference evaluator: enumerate all assignments of body variables and
   check every atom — exponential, the oracle for tests. *)
let answers_naive ?max_length inst q =
  let vars = Vars.elements (body_vars q.body) in
  let relations =
    List.map (fun a -> (a, materialize_atom ?max_length inst a.regex)) q.body
  in
  let n = inst.Snapshot.num_nodes in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec assign env = function
    | [] ->
        if
          List.for_all
            (fun (a, rel) -> Hashtbl.mem rel.pair_set (List.assoc a.src env, List.assoc a.dst env))
            relations
        then begin
          let answer = List.map (fun v -> List.assoc v env) q.head in
          if not (Hashtbl.mem seen answer) then begin
            Hashtbl.replace seen answer ();
            out := answer :: !out
          end
        end
    | v :: rest ->
        for node = 0 to n - 1 do
          assign ((v, node) :: env) rest
        done
  in
  assign [] vars;
  List.sort compare !out

(* Full solution mappings (every body variable bound), deduplicated. *)
let solutions ?budget ?max_length inst q =
  let vars = Vars.elements (body_vars q.body) in
  let out = ref [] in
  (* Selecting every body variable makes iter_answers' dedup a dedup of
     full solution mappings. *)
  iter_answers ?budget ?max_length inst { q with head = vars } ~yield:(fun row ->
      out := List.combine vars row :: !out);
  List.rev !out

(* Solutions with one shortest witness path per atom — paths as
   first-class results, the G-CORE idea the paper's reference [5]
   advocates.  Witness search is memoized per (atom regex, endpoints). *)
let solutions_with_witnesses ?max_length inst q =
  let cache = Hashtbl.create 64 in
  let witness regex s d =
    let key = (Regex.to_string ~top:true regex, s, d) in
    match Hashtbl.find_opt cache key with
    | Some w -> w
    | None ->
        let w = Gqkg_core.Rpq.shortest_witness ?max_length inst regex ~source:s ~target:d in
        Hashtbl.add cache key w;
        w
  in
  List.filter_map
    (fun env ->
      let witnesses =
        List.map
          (fun a ->
            match witness a.regex (List.assoc a.src env) (List.assoc a.dst env) with
            | Some p -> Some (a, p)
            | None -> None)
          q.body
      in
      if List.for_all Option.is_some witnesses then
        Some (env, List.map Option.get witnesses)
      else None (* cannot happen for genuine solutions; defensive *))
    (solutions ?max_length inst q)

(* Plan explanation: per-atom relation sizes/kinds and the chosen
   global variable order with its estimates. *)
let explain ?max_length inst q =
  let specs = join_specs ?max_length inst q.body in
  let plan = Join.plan ~snapshot:inst specs in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (to_string q);
  Buffer.add_string buf "\npath atoms (csr = zero-copy adjacency view):\n";
  List.iter
    (fun (name, kind, rows) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d endpoint pairs [%s]\n" name rows kind))
    plan.Join.atom_summary;
  Buffer.add_string buf (plan.Join.rendered);
  Buffer.contents buf

(* First-order logic over graph vocabularies (Section 4.3): node labels as
   unary predicates, edge labels as binary predicates.  The φ(x) / ψ(x)
   example of the paper lives here, together with the two evaluation
   strategies it contrasts:

   - {!eval_naive}: direct Tarskian evaluation, looping over all nodes at
     every quantifier — O(n^q) for quantifier rank q;
   - {!eval_bounded}: bottom-up relational evaluation in which every
     subformula's extension is a table over its free variables.  When the
     formula reuses a bounded number of variables (the point of ψ(x)),
     every intermediate table is at most binary and evaluation is
     polynomial with a small exponent [Vardi 1995]. *)

open Gqkg_graph

type formula =
  | Node_pred of Const.t * string  (** label(x) *)
  | Edge_pred of Const.t * string * string  (** label(x, y): an edge x→y so labeled *)
  | Eq of string * string
  | Neg of formula
  | And of formula * formula
  | Or of formula * formula
  | Exists of string * formula
  | Forall of string * formula


let node_pred l x = Node_pred (Const.str l, x)
let edge_pred l x y = Edge_pred (Const.str l, x, y)

let rec and_of = function
  | [] -> invalid_arg "Fo.and_of: empty"
  | [ f ] -> f
  | f :: rest -> And (f, and_of rest)

module Vars = Set.Make (String)

let rec free_vars = function
  | Node_pred (_, x) -> Vars.singleton x
  | Edge_pred (_, x, y) -> Vars.add x (Vars.singleton y)
  | Eq (x, y) -> Vars.add x (Vars.singleton y)
  | Neg f -> free_vars f
  | And (f, g) | Or (f, g) -> Vars.union (free_vars f) (free_vars g)
  | Exists (x, f) | Forall (x, f) -> Vars.remove x (free_vars f)

(* Total number of distinct variable names used: the "number of variables"
   resource the paper's ψ(x) example economizes. *)
let rec all_vars = function
  | Node_pred (_, x) -> Vars.singleton x
  | Edge_pred (_, x, y) | Eq (x, y) -> Vars.add x (Vars.singleton y)
  | Neg f -> all_vars f
  | And (f, g) | Or (f, g) -> Vars.union (all_vars f) (all_vars g)
  | Exists (x, f) | Forall (x, f) -> Vars.add x (all_vars f)

let width f = Vars.cardinal (all_vars f)

let rec quantifier_rank = function
  | Node_pred _ | Edge_pred _ | Eq _ -> 0
  | Neg f -> quantifier_rank f
  | And (f, g) | Or (f, g) -> max (quantifier_rank f) (quantifier_rank g)
  | Exists (_, f) | Forall (_, f) -> 1 + quantifier_rank f

let rec to_string = function
  | Node_pred (l, x) -> Printf.sprintf "%s(%s)" (Const.to_string l) x
  | Edge_pred (l, x, y) -> Printf.sprintf "%s(%s,%s)" (Const.to_string l) x y
  | Eq (x, y) -> Printf.sprintf "%s=%s" x y
  | Neg f -> Printf.sprintf "~%s" (to_string f)
  | And (f, g) -> Printf.sprintf "(%s & %s)" (to_string f) (to_string g)
  | Or (f, g) -> Printf.sprintf "(%s | %s)" (to_string f) (to_string g)
  | Exists (x, f) -> Printf.sprintf "E%s.%s" x (to_string f)
  | Forall (x, f) -> Printf.sprintf "A%s.%s" x (to_string f)

let pp ppf f = Fmt.string ppf (to_string f)

(* Edge-label lookup structures shared by both evaluators. *)
type db = {
  inst : Snapshot.t;
  has_edge : (Const.t * int * int, unit) Hashtbl.t;
  pairs_with_label : (Const.t, (int * int) list) Hashtbl.t;
}

let db_of_instance inst =
  let has_edge = Hashtbl.create 256 in
  let pairs_with_label = Hashtbl.create 16 in
  (* Every label whose atom an edge satisfies; with Instance we can only
     test atoms, so we collect the label vocabulary by probing is left to
     the caller.  Instead we require models where edge labels are
     enumerable: we reconstruct by testing each edge against the labels
     that occur syntactically in formulas, lazily (see [ensure_label]). *)
  { inst; has_edge; pairs_with_label }

let ensure_label db label =
  if not (Hashtbl.mem db.pairs_with_label label) then begin
    let pairs = ref [] in
    for e = db.inst.Snapshot.num_edges - 1 downto 0 do
      if db.inst.Snapshot.edge_atom e (Atom.Label label) then begin
        let s, d = (Snapshot.endpoints db.inst) e in
        if not (Hashtbl.mem db.has_edge (label, s, d)) then begin
          Hashtbl.replace db.has_edge (label, s, d) ();
          pairs := (s, d) :: !pairs
        end
      end
    done;
    Hashtbl.replace db.pairs_with_label label !pairs
  end

let db_instance db = db.inst

let edge_holds db label s d =
  ensure_label db label;
  Hashtbl.mem db.has_edge (label, s, d)

let pairs_with_label db label =
  ensure_label db label;
  Hashtbl.find db.pairs_with_label label

(* ---------------- Naive Tarskian evaluation --------------------------- *)

let rec holds db env = function
  | Node_pred (l, x) -> db.inst.Snapshot.node_atom (List.assoc x env) (Atom.Label l)
  | Edge_pred (l, x, y) -> edge_holds db l (List.assoc x env) (List.assoc y env)
  | Eq (x, y) -> List.assoc x env = List.assoc y env
  | Neg f -> not (holds db env f)
  | And (f, g) -> holds db env f && holds db env g
  | Or (f, g) -> holds db env f || holds db env g
  | Exists (x, f) ->
      let n = db.inst.Snapshot.num_nodes in
      let rec loop v = v < n && (holds db ((x, v) :: env) f || loop (v + 1)) in
      loop 0
  | Forall (x, f) ->
      let n = db.inst.Snapshot.num_nodes in
      let rec loop v = v >= n || (holds db ((x, v) :: env) f && loop (v + 1)) in
      loop 0

let check_unary formula ~free =
  if not (Vars.subset (free_vars formula) (Vars.singleton free)) then
    invalid_arg
      (Printf.sprintf "Fo: formula has free variables beyond %s: %s" free
         (String.concat ", " (Vars.elements (Vars.remove free (free_vars formula)))))

(* Unary query: the nodes x satisfying φ(x).  The formula must have no
   free variables other than [free]. *)
let eval_naive inst formula ~free =
  check_unary formula ~free;
  let db = db_of_instance inst in
  let out = ref [] in
  for v = inst.Snapshot.num_nodes - 1 downto 0 do
    if holds db [ (free, v) ] formula then out := v :: !out
  done;
  !out

(* ---------------- Bounded-variable relational evaluation -------------- *)

(* A relation: a set of tuples over a sorted list of variables.  The
   closed-world complement needs the full assignment space, so arity is
   capped — the cap *is* the bounded-variable discipline. *)
type rel = { vars : string list; tuples : (int list, unit) Hashtbl.t }

let arity_cap = 3

let rel_create vars = { vars; tuples = Hashtbl.create 64 }

let rel_add rel tuple = Hashtbl.replace rel.tuples tuple ()

(* Reorder/extend a tuple over [from_vars] to [to_vars] given bindings. *)
let project_tuple ~from_vars tuple ~to_vars =
  let env = List.combine from_vars tuple in
  List.map (fun v -> List.assoc v env) to_vars

(* Extend a relation to a superset of variables by crossing with the full
   node domain for the missing ones. *)
let extend inst rel to_vars =
  if rel.vars = to_vars then rel
  else begin
    let missing = List.filter (fun v -> not (List.mem v rel.vars)) to_vars in
    if List.length to_vars > arity_cap then
      invalid_arg "Fo.eval_bounded: intermediate arity exceeds the variable bound";
    let out = rel_create to_vars in
    let n = inst.Snapshot.num_nodes in
    let rec assignments acc = function
      | [] ->
          Hashtbl.iter
            (fun tuple () ->
              let env = List.combine rel.vars tuple @ acc in
              rel_add out (List.map (fun v -> List.assoc v env) to_vars))
            rel.tuples
      | m :: rest ->
          for v = 0 to n - 1 do
            assignments ((m, v) :: acc) rest
          done
    in
    assignments [] missing;
    out
  end

let union_vars a b = List.sort_uniq compare (a @ b)

let rel_and inst r1 r2 =
  (* Natural join; implemented by extending both to the union of their
     variables then intersecting (fine at arity <= 3 scale). *)
  let vars = union_vars r1.vars r2.vars in
  let shared = List.filter (fun v -> List.mem v r2.vars) r1.vars in
  if shared = [] || List.length vars > arity_cap then begin
    let e1 = extend inst r1 vars and e2 = extend inst r2 vars in
    let small, large = if Hashtbl.length e1.tuples <= Hashtbl.length e2.tuples then (e1, e2) else (e2, e1) in
    let out = rel_create vars in
    Hashtbl.iter (fun t () -> if Hashtbl.mem large.tuples t then rel_add out t) small.tuples;
    out
  end
  else begin
    (* Hash join on the shared variables to avoid materializing the
       extension cross-products. *)
    let key_of rel_vars tuple = project_tuple ~from_vars:rel_vars tuple ~to_vars:shared in
    let index = Hashtbl.create 64 in
    Hashtbl.iter
      (fun t () ->
        let k = key_of r2.vars t in
        Hashtbl.replace index k (t :: Option.value (Hashtbl.find_opt index k) ~default:[]))
      r2.tuples;
    let out = rel_create vars in
    Hashtbl.iter
      (fun t1 () ->
        match Hashtbl.find_opt index (key_of r1.vars t1) with
        | None -> ()
        | Some matches ->
            List.iter
              (fun t2 ->
                let env = List.combine r1.vars t1 @ List.combine r2.vars t2 in
                rel_add out (List.map (fun v -> List.assoc v env) vars))
              matches)
      r1.tuples;
    out
  end

let rel_or inst r1 r2 =
  let vars = union_vars r1.vars r2.vars in
  let e1 = extend inst r1 vars and e2 = extend inst r2 vars in
  let out = rel_create vars in
  Hashtbl.iter (fun t () -> rel_add out t) e1.tuples;
  Hashtbl.iter (fun t () -> rel_add out t) e2.tuples;
  out

let rel_neg inst rel =
  if List.length rel.vars > arity_cap then
    invalid_arg "Fo.eval_bounded: negation arity exceeds the variable bound";
  let out = rel_create rel.vars in
  let n = inst.Snapshot.num_nodes in
  let rec loop acc = function
    | [] -> begin
        let tuple = List.rev acc in
        if not (Hashtbl.mem rel.tuples tuple) then rel_add out tuple
      end
    | _ :: rest ->
        for v = 0 to n - 1 do
          loop (v :: acc) rest
        done
  in
  loop [] rel.vars;
  out

let rel_project rel keep_vars =
  let out = rel_create keep_vars in
  Hashtbl.iter
    (fun t () -> rel_add out (project_tuple ~from_vars:rel.vars t ~to_vars:keep_vars))
    rel.tuples;
  out

let rec eval_rel inst db = function
  | Node_pred (l, x) ->
      let out = rel_create [ x ] in
      for v = 0 to inst.Snapshot.num_nodes - 1 do
        if inst.Snapshot.node_atom v (Atom.Label l) then rel_add out [ v ]
      done;
      out
  | Edge_pred (l, x, y) ->
      if x = y then begin
        let out = rel_create [ x ] in
        List.iter (fun (s, d) -> if s = d then rel_add out [ s ]) (pairs_with_label db l);
        out
      end
      else begin
        let vars = List.sort compare [ x; y ] in
        let out = rel_create vars in
        List.iter
          (fun (s, d) ->
            let env = [ (x, s); (y, d) ] in
            rel_add out (List.map (fun v -> List.assoc v env) vars))
          (pairs_with_label db l);
        out
      end
  | Eq (x, y) ->
      if x = y then begin
        let out = rel_create [ x ] in
        for v = 0 to inst.Snapshot.num_nodes - 1 do
          rel_add out [ v ]
        done;
        out
      end
      else begin
        let vars = List.sort compare [ x; y ] in
        let out = rel_create vars in
        for v = 0 to inst.Snapshot.num_nodes - 1 do
          rel_add out [ v; v ]
        done;
        out
      end
  | Neg f -> rel_neg inst (eval_rel inst db f)
  | And (f, g) -> rel_and inst (eval_rel inst db f) (eval_rel inst db g)
  | Or (f, g) -> rel_or inst (eval_rel inst db f) (eval_rel inst db g)
  | Exists (x, f) ->
      let r = eval_rel inst db f in
      if List.mem x r.vars then rel_project r (List.filter (fun v -> v <> x) r.vars)
      else r (* vacuous quantification *)
  | Forall (x, f) -> eval_rel inst db (Neg (Exists (x, Neg f)))

(* Unary query via the relational pipeline. *)
let eval_bounded inst formula ~free =
  check_unary formula ~free;
  let db = db_of_instance inst in
  let rel = eval_rel inst db formula in
  let rel =
    if rel.vars = [ free ] then rel
    else if rel.vars = [] then extend inst rel [ free ]
    else rel_project rel [ free ]
  in
  Hashtbl.fold (fun t () acc -> match t with [ v ] -> v :: acc | _ -> acc) rel.tuples []
  |> List.sort compare

(* ---------------- The paper's worked formulas ------------------------- *)

(* φ(x) = person(x) ∧ ∃y∃z (rides(x,y) ∧ bus(y) ∧ rides(z,y) ∧ infected(z)) *)
let phi =
  And
    ( node_pred "person" "x",
      Exists
        ( "y",
          Exists
            ( "z",
              and_of
                [ edge_pred "rides" "x" "y"; node_pred "bus" "y"; edge_pred "rides" "z" "y";
                  node_pred "infected" "z" ] ) ) )

(* ψ(x) = person(x) ∧ ∃y (rides(x,y) ∧ bus(y) ∧ ∃x (rides(x,y) ∧ infected(x)))
   — the equivalent 2-variable rewriting. *)
let psi =
  And
    ( node_pred "person" "x",
      Exists
        ( "y",
          and_of
            [ edge_pred "rides" "x" "y"; node_pred "bus" "y";
              Exists ("x", And (edge_pred "rides" "x" "y", node_pred "infected" "x")) ] ) )

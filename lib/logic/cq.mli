(** Conjunctive queries over labeled graphs: node-label and edge-label
    atoms over variables, evaluated by greedy index-backed backtracking
    (the basic pattern matching of Sections 2.1 and 4.3). *)

open Gqkg_graph

type atom =
  | Node of Const.t * string  (** label(x) *)
  | Edge of Const.t * string * string  (** label(x, y) *)

type t = { head : string list; body : atom list }

val query : head:string list -> body:atom list -> t
val node_atom : string -> string -> atom
val edge_atom : string -> string -> string -> atom

(** Precomputed label indexes, shareable across queries on the same
    instance. *)
type indexes

val make_indexes : Snapshot.t -> indexes

(** Call [yield] once per distinct head tuple. Raises if a head variable
    is not bound by the body. *)
val iter_answers : ?indexes:indexes -> Snapshot.t -> t -> yield:(int list -> unit) -> unit

(** Distinct head tuples, sorted. *)
val answers : ?indexes:indexes -> Snapshot.t -> t -> int list list

(** Single-head-variable convenience. *)
val answer_nodes : ?indexes:indexes -> Snapshot.t -> t -> int list

(** Conjunctive queries over labeled graphs: node-label and edge-label
    atoms over variables (the basic pattern matching of Sections 2.1 and
    4.3), evaluated by the worst-case-optimal multiway join engine
    ({!Gqkg_core.Join}) — edge atoms as zero-copy CSR trie views, the
    conjunction solved variable-by-variable under a planned order.  The
    previous greedy backtracking join remains as the reference oracle
    {!answers_backtrack}. *)

open Gqkg_graph

type atom =
  | Node of Const.t * string  (** label(x) *)
  | Edge of Const.t * string * string  (** label(x, y) *)

type t = { head : string list; body : atom list }

val query : head:string list -> body:atom list -> t
val node_atom : string -> string -> atom
val edge_atom : string -> string -> string -> atom

(** Call [yield] once per distinct head tuple. Raises if a head variable
    is not bound by the body.  A tripped [budget] stops the enumeration:
    the yielded tuples are a sound subset of the complete answer. *)
val iter_answers :
  ?budget:Gqkg_util.Budget.t -> Snapshot.t -> t -> yield:(int list -> unit) -> unit

(** Distinct head tuples, sorted. *)
val answers : ?budget:Gqkg_util.Budget.t -> Snapshot.t -> t -> int list list

(** Single-head-variable convenience. *)
val answer_nodes : ?budget:Gqkg_util.Budget.t -> Snapshot.t -> t -> int list

(** The join plan: chosen variable order and per-atom estimates. *)
val explain : Snapshot.t -> t -> string

(** {1 Reference oracle}

    The pre-WCOJ greedy backtracking join (cheapest atom first under the
    current bindings, int-slot environments), kept as the equivalence
    oracle for tests and the bench A/B. *)

(** Precomputed label indexes, shareable across oracle runs on the same
    instance. *)
type indexes

val make_indexes : Snapshot.t -> indexes
val answers_backtrack : ?indexes:indexes -> Snapshot.t -> t -> int list list

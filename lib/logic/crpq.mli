(** Conjunctive regular path queries (CRPQs): conjunctions of path atoms
    (x, r, y) where r is a full Section 4 regular expression — the
    backbone of modern graph query languages [Angles et al. 2017].

    Evaluation goes through the worst-case-optimal multiway join engine
    ({!Gqkg_core.Join}): single-edge-label atoms are zero-copy CSR trie
    views, other atoms' endpoint relations are materialized once by the
    batched Frontier-backed product engine and shared across identical
    regexes, and the conjunction is solved variable-by-variable under a
    planned global order.  The previous greedy backtracking join remains
    as the reference oracle {!answers_backtrack}. *)

open Gqkg_graph
open Gqkg_automata

type atom = { src : string; regex : Regex.t; dst : string }

type t = { head : string list; body : atom list; limit : int option }

val atom : src:string -> regex:Regex.t -> dst:string -> atom

(** [limit] caps the number of distinct answers (SQL-style LIMIT). *)
val query : ?limit:int -> head:string list -> body:atom list -> unit -> t

(** Concrete-syntax rendering (parse-compatible with {!Crpq_parser} up
    to node-label sugar). *)
val to_string : t -> string

(** Call [yield] once per distinct head tuple. [max_length] bounds path
    length per atom (cost control for star-heavy patterns). Raises if a
    head variable is not bound by the body.  A tripped [budget] stops
    both atom materialization and the join: the yielded tuples are a
    sound subset of the complete answer. *)
val iter_answers :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  Snapshot.t ->
  t ->
  yield:(int list -> unit) ->
  unit

(** Distinct head tuples, sorted. *)
val answers : ?budget:Gqkg_util.Budget.t -> ?max_length:int -> Snapshot.t -> t -> int list list

val answer_nodes :
  ?budget:Gqkg_util.Budget.t -> ?max_length:int -> Snapshot.t -> t -> int list

(** The pre-WCOJ greedy backtracking join over fully-indexed
    materialized relations — the reference oracle for tests and the
    bench A/B (int-slot environments, LIMIT honored).  [yield] fires
    once per distinct head tuple, in discovery order. *)
val iter_answers_backtrack :
  ?max_length:int -> Snapshot.t -> t -> yield:(int list -> unit) -> unit

val answers_backtrack : ?max_length:int -> Snapshot.t -> t -> int list list

(** Oracle: enumerate all variable assignments and filter. Exponential;
    for tests and the E13 ablation. *)
val answers_naive : ?max_length:int -> Snapshot.t -> t -> int list list

(** Full solution mappings (every body variable bound), deduplicated. *)
val solutions :
  ?budget:Gqkg_util.Budget.t -> ?max_length:int -> Snapshot.t -> t -> (string * int) list list

(** Solutions with one shortest witness path per atom — paths as
    first-class results (the G-CORE idea of the paper's reference [5]). *)
val solutions_with_witnesses :
  ?max_length:int -> Snapshot.t -> t -> ((string * int) list * (atom * Gqkg_core.Path.t) list) list

(** Human-readable evaluation plan: per-atom relation sizes/kinds and
    the chosen variable order with estimates. *)
val explain : ?max_length:int -> Snapshot.t -> t -> string

(** Conjunctive regular path queries (CRPQs): conjunctions of path atoms
    (x, r, y) where r is a full Section 4 regular expression — the
    backbone of modern graph query languages [Angles et al. 2017].

    Each atom's endpoint relation is computed once with the product
    engine and indexed both ways; the conjunction is solved by greedy
    smallest-first backtracking join. *)

open Gqkg_graph
open Gqkg_automata

type atom = { src : string; regex : Regex.t; dst : string }

type t = { head : string list; body : atom list; limit : int option }

val atom : src:string -> regex:Regex.t -> dst:string -> atom

(** [limit] caps the number of distinct answers (SQL-style LIMIT). *)
val query : ?limit:int -> head:string list -> body:atom list -> unit -> t

(** Concrete-syntax rendering (parse-compatible with {!Crpq_parser} up
    to node-label sugar). *)
val to_string : t -> string

(** Call [yield] once per distinct head tuple. [max_length] bounds path
    length per atom (cost control for star-heavy patterns). Raises if a
    head variable is not bound by the body. *)
val iter_answers : ?max_length:int -> Snapshot.t -> t -> yield:(int list -> unit) -> unit

(** Distinct head tuples, sorted. *)
val answers : ?max_length:int -> Snapshot.t -> t -> int list list

val answer_nodes : ?max_length:int -> Snapshot.t -> t -> int list

(** Oracle: enumerate all variable assignments and filter. Exponential;
    for tests and the E13 ablation. *)
val answers_naive : ?max_length:int -> Snapshot.t -> t -> int list list

(** Full solution mappings (every body variable bound), deduplicated. *)
val solutions : ?max_length:int -> Snapshot.t -> t -> (string * int) list list

(** Solutions with one shortest witness path per atom — paths as
    first-class results (the G-CORE idea of the paper's reference [5]). *)
val solutions_with_witnesses :
  ?max_length:int -> Snapshot.t -> t -> ((string * int) list * (atom * Gqkg_core.Path.t) list) list

(** Human-readable evaluation plan: per-atom relation sizes and the
    static greedy order. *)
val explain : ?max_length:int -> Snapshot.t -> t -> string

(* C²: two-variable first-order logic with counting quantifiers — the
   logic whose distinguishing power equals the Weisfeiler-Lehman test
   [Cai, Fürer & Immerman 1992], the third corner of the Section 4.3
   triangle (WL = AC-GNN = graded modal logic ⊆ C²).

     φ ::= label(x) | edge(x,y) | adj(x,y) | x=y
         | ¬φ | φ∧φ | φ∨φ | ∃≥k x φ

   adj(x,y) holds when any edge connects x and y in either direction
   (the undirected view of WL and the GNNs).  The width checker enforces
   the two-variable discipline; evaluation is Tarskian with counting. *)

open Gqkg_graph

type formula =
  | Node_pred of Const.t * string
  | Edge_pred of Const.t * string * string  (** a labeled edge x→y *)
  | Adjacent of string * string  (** any edge between x and y, either way *)
  | Eq of string * string
  | Neg of formula
  | And of formula * formula
  | Or of formula * formula
  | Count_exists of int * string * formula  (** ∃≥k x φ *)

let node_pred l x = Node_pred (Const.str l, x)
let edge_pred l x y = Edge_pred (Const.str l, x, y)

let exists ?(at_least = 1) x f =
  if at_least < 1 then invalid_arg "C2.exists: threshold must be >= 1";
  Count_exists (at_least, x, f)

module Vars = Set.Make (String)

let rec free_vars = function
  | Node_pred (_, x) -> Vars.singleton x
  | Edge_pred (_, x, y) | Adjacent (x, y) | Eq (x, y) -> Vars.add x (Vars.singleton y)
  | Neg f -> free_vars f
  | And (f, g) | Or (f, g) -> Vars.union (free_vars f) (free_vars g)
  | Count_exists (_, x, f) -> Vars.remove x (free_vars f)

let rec all_vars = function
  | Node_pred (_, x) -> Vars.singleton x
  | Edge_pred (_, x, y) | Adjacent (x, y) | Eq (x, y) -> Vars.add x (Vars.singleton y)
  | Neg f -> all_vars f
  | And (f, g) | Or (f, g) -> Vars.union (all_vars f) (all_vars g)
  | Count_exists (_, x, f) -> Vars.add x (all_vars f)

let width f = Vars.cardinal (all_vars f)

(* The C² discipline: at most two variable names in the whole formula. *)
let is_c2 f = width f <= 2

let rec to_string = function
  | Node_pred (l, x) -> Printf.sprintf "%s(%s)" (Const.to_string l) x
  | Edge_pred (l, x, y) -> Printf.sprintf "%s(%s,%s)" (Const.to_string l) x y
  | Adjacent (x, y) -> Printf.sprintf "adj(%s,%s)" x y
  | Eq (x, y) -> Printf.sprintf "%s=%s" x y
  | Neg f -> "~" ^ to_string f
  | And (f, g) -> Printf.sprintf "(%s & %s)" (to_string f) (to_string g)
  | Or (f, g) -> Printf.sprintf "(%s | %s)" (to_string f) (to_string g)
  | Count_exists (k, x, f) -> Printf.sprintf "E>=%d %s.%s" k x (to_string f)

(* Adjacency set (undirected, deduplicated): the semantics of [adj]. *)
let adjacency inst =
  let table = Hashtbl.create 256 in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    Hashtbl.replace table (s, d) ();
    Hashtbl.replace table (d, s) ()
  done;
  table

let rec holds db adj env = function
  | Node_pred (l, x) -> (Fo.db_instance db).Snapshot.node_atom (List.assoc x env) (Atom.Label l)
  | Edge_pred (l, x, y) -> Fo.edge_holds db l (List.assoc x env) (List.assoc y env)
  | Adjacent (x, y) -> Hashtbl.mem adj (List.assoc x env, List.assoc y env)
  | Eq (x, y) -> List.assoc x env = List.assoc y env
  | Neg f -> not (holds db adj env f)
  | And (f, g) -> holds db adj env f && holds db adj env g
  | Or (f, g) -> holds db adj env f || holds db adj env g
  | Count_exists (k, x, f) ->
      let n = (Fo.db_instance db).Snapshot.num_nodes in
      let count = ref 0 in
      let v = ref 0 in
      (* Early exit once the threshold is reached. *)
      while !count < k && !v < n do
        if holds db adj ((x, !v) :: env) f then incr count;
        incr v
      done;
      !count >= k

(* Unary query in [free]; rejects formulas outside C² or with stray free
   variables. *)
let eval inst formula ~free =
  if not (is_c2 formula) then invalid_arg "C2.eval: more than two variables";
  if not (Vars.subset (free_vars formula) (Vars.singleton free)) then
    invalid_arg "C2.eval: formula has free variables beyond the query variable";
  let db = Fo.db_of_instance inst in
  let adj = adjacency inst in
  let out = ref [] in
  for v = inst.Snapshot.num_nodes - 1 downto 0 do
    if holds db adj [ (free, v) ] formula then out := v :: !out
  done;
  !out

(* Graded modal logic embeds in C² (on simple graphs, where counting
   neighbor NODES agrees with counting incident edges): ◇≥k φ(x)
   becomes ∃≥k y (adj(x,y) ∧ φ(y)), alternating the two variables. *)
let of_gml formula =
  let other = function "x" -> "y" | _ -> "x" in
  let rec go current = function
    | Gml.Atom (Atom.Label l) -> Node_pred (l, current)
    | Gml.Atom _ -> invalid_arg "C2.of_gml: only label atoms translate"
    | Gml.True -> Eq (current, current)
    | Gml.Not f -> Neg (go current f)
    | Gml.And (f, g) -> And (go current f, go current g)
    | Gml.Or (f, g) -> Or (go current f, go current g)
    | Gml.Diamond (k, f) ->
        let next = other current in
        Count_exists (k, next, And (Adjacent (current, next), go next f))
  in
  go "x" formula

(** First-order logic with transitive closure of definable steps
    (reachability logic, the paper's [Alechina & Immerman] thread). *)

open Gqkg_automata

type formula =
  | Fo of Fo.formula
  | Tc of { step : Regex.t; reflexive : bool; src : string; dst : string }
  | And of formula * formula
  | Or of formula * formula
  | Neg of formula
  | Exists of string * formula

(** TC(step)(src, dst): dst reachable from src by ≥1 (or ≥0 when
    [reflexive]) step-paths. *)
val tc : ?reflexive:bool -> Regex.t -> src:string -> dst:string -> formula

module Vars : Set.S with type elt = string

val free_vars : formula -> Vars.t

(** Unary query in [free]; every other variable must be bound. Each
    distinct step relation is materialized once (RPQ engine) and closed
    by BFS, so TC atoms cost O(n·(n+m)) total. Sorted answers. *)
val eval : ?max_length:int -> Gqkg_graph.Snapshot.t -> formula -> free:string -> int list

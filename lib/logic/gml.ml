(* Graded modal logic: the declarative counterpart of aggregate-combine
   graph neural networks (Section 4.3).  Barceló et al. (2020) prove that
   a unary query is expressible by an AC-GNN iff it is expressible in
   graded modal logic; {!Gqkg_gnn.Logic_gnn} implements the constructive
   direction and the tests check agreement with this evaluator.

     φ ::= atom | ⊤ | ¬φ | φ∧φ | φ∨φ | ◇≥n φ

   ◇≥n φ holds at a node with at least n neighbors satisfying φ.  We use
   the undirected neighborhood (out- plus in-neighbors, with edge
   multiplicity), matching the aggregation of the GNN layer. *)

open Gqkg_graph

type t =
  | Atom of Atom.t  (** a node test, e.g. label or feature equality *)
  | True
  | Not of t
  | And of t * t
  | Or of t * t
  | Diamond of int * t  (** ◇≥n φ: at least n neighbors satisfy φ *)

let label l = Atom (Atom.label l)
let feature i v = Atom (Atom.feature i v)

let diamond ?(at_least = 1) f =
  if at_least < 1 then invalid_arg "Gml.diamond: threshold must be >= 1";
  Diamond (at_least, f)

let rec depth = function
  | Atom _ | True -> 0
  | Not f -> depth f
  | And (f, g) | Or (f, g) -> max (depth f) (depth g)
  | Diamond (_, f) -> 1 + depth f

let rec size = function
  | Atom _ | True -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) -> 1 + size f + size g
  | Diamond (_, f) -> 1 + size f

(* All subformulas, children before parents, without duplicates (physical
   sharing not required); this is the enumeration order the logic→GNN
   compiler assigns to feature coordinates. *)
let subformulas formula =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit f =
    if not (Hashtbl.mem seen f) then begin
      (match f with
      | Atom _ | True -> ()
      | Not g | Diamond (_, g) -> visit g
      | And (g, h) | Or (g, h) ->
          visit g;
          visit h);
      Hashtbl.replace seen f ();
      out := f :: !out
    end
  in
  visit formula;
  List.rev !out

let rec to_string = function
  | Atom a -> Atom.to_string a
  | True -> "T"
  | Not f -> "~" ^ to_string f
  | And (f, g) -> Printf.sprintf "(%s & %s)" (to_string f) (to_string g)
  | Or (f, g) -> Printf.sprintf "(%s | %s)" (to_string f) (to_string g)
  | Diamond (k, f) -> Printf.sprintf "<>%d %s" k (to_string f)

let pp ppf f = Fmt.string ppf (to_string f)

(* Bottom-up evaluation: one boolean array per subformula, each Diamond a
   single pass over the adjacency — O(size(φ) · (n + m)). *)
let eval inst formula =
  let n = inst.Snapshot.num_nodes in
  let cache : (t, bool array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let row =
        match f with
        | Atom a -> Array.init n (fun v -> inst.Snapshot.node_atom v a)
        | True -> Array.make n true
        | Not g ->
            let gr = Hashtbl.find cache g in
            Array.map not gr
        | And (g, h) ->
            let gr = Hashtbl.find cache g and hr = Hashtbl.find cache h in
            Array.init n (fun v -> gr.(v) && hr.(v))
        | Or (g, h) ->
            let gr = Hashtbl.find cache g and hr = Hashtbl.find cache h in
            Array.init n (fun v -> gr.(v) || hr.(v))
        | Diamond (k, g) ->
            let gr = Hashtbl.find cache g in
            Array.init n (fun v ->
                let count = ref 0 in
                Array.iter (fun (_e, w) -> if gr.(w) then incr count) ((Snapshot.out_pairs inst) v);
                Array.iter (fun (_e, u) -> if gr.(u) then incr count) ((Snapshot.in_pairs inst) v);
                !count >= k)
      in
      Hashtbl.replace cache f row)
    (subformulas formula);
  Hashtbl.find cache formula

(* The nodes satisfying the formula. *)
let models inst formula =
  let row = eval inst formula in
  let out = ref [] in
  Array.iteri (fun v b -> if b then out := v :: !out) row;
  List.rev !out

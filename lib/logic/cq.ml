(* Conjunctive queries over labeled graphs: the basic pattern-matching
   formalism behind "extracting nodes satisfying a pattern" (Sections 2.1
   and 4.3).  A query is a set of node-label and edge-label atoms over
   variables; answers are the assignments of graph nodes to the free
   (head) variables that satisfy every atom.

   Evaluation is backtracking search with a greedy join order: at every
   step the next atom is the one with the fewest candidate matches given
   the bindings so far, and already-bound edge atoms become constant-time
   index probes.  This is a small but real query optimizer — enough to
   make pattern matching usable as the substrate for the higher layers. *)

open Gqkg_graph

type atom =
  | Node of Const.t * string  (** label(x) *)
  | Edge of Const.t * string * string  (** label(x, y) *)

type t = { head : string list; body : atom list }

let query ~head ~body = { head; body }

let node_atom l x = Node (Const.str l, x)
let edge_atom l x y = Edge (Const.str l, x, y)

module Vars = Set.Make (String)

let atom_vars = function
  | Node (_, x) -> Vars.singleton x
  | Edge (_, x, y) -> Vars.add x (Vars.singleton y)

let body_vars body = List.fold_left (fun acc a -> Vars.union acc (atom_vars a)) Vars.empty body

(* Precomputed label indexes. *)
type indexes = {
  inst : Snapshot.t;
  nodes_by_label : (Const.t, int array) Hashtbl.t;
  edges_by_label : (Const.t, (int * int) array) Hashtbl.t; (* (src, dst) pairs *)
  out_by_label : (Const.t * int, int array) Hashtbl.t; (* (label, src) -> dsts *)
  in_by_label : (Const.t * int, int array) Hashtbl.t; (* (label, dst) -> srcs *)
  pair_set : (Const.t * int * int, unit) Hashtbl.t;
}

let index_nodes_by_label idx label =
  match Hashtbl.find_opt idx.nodes_by_label label with
  | Some a -> a
  | None ->
      let out = ref [] in
      for v = idx.inst.Snapshot.num_nodes - 1 downto 0 do
        if idx.inst.Snapshot.node_atom v (Atom.Label label) then out := v :: !out
      done;
      let arr = Array.of_list !out in
      Hashtbl.replace idx.nodes_by_label label arr;
      arr

let index_edges_by_label idx label =
  match Hashtbl.find_opt idx.edges_by_label label with
  | Some a -> a
  | None ->
      let pairs = ref [] in
      let outs = Hashtbl.create 16 and ins = Hashtbl.create 16 in
      for e = idx.inst.Snapshot.num_edges - 1 downto 0 do
        if idx.inst.Snapshot.edge_atom e (Atom.Label label) then begin
          let s, d = (Snapshot.endpoints idx.inst) e in
          pairs := (s, d) :: !pairs;
          Hashtbl.replace idx.pair_set (label, s, d) ();
          Hashtbl.replace outs s (d :: Option.value (Hashtbl.find_opt outs s) ~default:[]);
          Hashtbl.replace ins d (s :: Option.value (Hashtbl.find_opt ins d) ~default:[])
        end
      done;
      let arr = Array.of_list !pairs in
      Hashtbl.replace idx.edges_by_label label arr;
      Hashtbl.iter (fun s ds -> Hashtbl.replace idx.out_by_label (label, s) (Array.of_list ds)) outs;
      Hashtbl.iter (fun d ss -> Hashtbl.replace idx.in_by_label (label, d) (Array.of_list ss)) ins;
      arr

let make_indexes inst =
  {
    inst;
    nodes_by_label = Hashtbl.create 16;
    edges_by_label = Hashtbl.create 16;
    out_by_label = Hashtbl.create 64;
    in_by_label = Hashtbl.create 64;
    pair_set = Hashtbl.create 256;
  }

(* Estimated number of candidate bindings an atom contributes, under the
   current partial assignment: the greedy cost function of the planner. *)
let atom_cost idx env = function
  | Node (l, x) ->
      if List.mem_assoc x env then 1 else Array.length (index_nodes_by_label idx l)
  | Edge (l, x, y) -> begin
      let all () = Array.length (index_edges_by_label idx l) in
      match (List.assoc_opt x env, List.assoc_opt y env) with
      | Some _, Some _ -> 1
      | Some s, None ->
          ignore (index_edges_by_label idx l);
          Array.length (Option.value (Hashtbl.find_opt idx.out_by_label (l, s)) ~default:[||])
      | None, Some d ->
          ignore (index_edges_by_label idx l);
          Array.length (Option.value (Hashtbl.find_opt idx.in_by_label (l, d)) ~default:[||])
      | None, None -> all ()
    end

(* All extensions of [env] satisfying the atom, passed to [k]. *)
let atom_matches idx env atom k =
  match atom with
  | Node (l, x) -> begin
      match List.assoc_opt x env with
      | Some v -> if idx.inst.Snapshot.node_atom v (Atom.Label l) then k env
      | None -> Array.iter (fun v -> k ((x, v) :: env)) (index_nodes_by_label idx l)
    end
  | Edge (l, x, y) -> begin
      ignore (index_edges_by_label idx l);
      match (List.assoc_opt x env, List.assoc_opt y env) with
      | Some s, Some d -> if Hashtbl.mem idx.pair_set (l, s, d) then k env
      | Some s, None ->
          Array.iter
            (fun d -> k ((y, d) :: env))
            (Option.value (Hashtbl.find_opt idx.out_by_label (l, s)) ~default:[||])
      | None, Some d ->
          Array.iter
            (fun s -> k ((x, s) :: env))
            (Option.value (Hashtbl.find_opt idx.in_by_label (l, d)) ~default:[||])
      | None, None ->
          Array.iter (fun (s, d) -> if x = y then (if s = d then k ((x, s) :: env)) else k ((x, s) :: (y, d) :: env)) (index_edges_by_label idx l)
    end

(* Evaluate, invoking [yield] once per answer (head-variable tuple);
   duplicate answers from different witnesses are deduplicated. *)
let iter_answers ?indexes inst q ~yield =
  let idx = match indexes with Some i -> i | None -> make_indexes inst in
  List.iter
    (fun v ->
      if not (Vars.mem v (body_vars q.body)) then
        invalid_arg (Printf.sprintf "Cq: head variable %s not bound by the body" v))
    q.head;
  let seen = Hashtbl.create 64 in
  let rec solve env remaining =
    match remaining with
    | [] ->
        let answer = List.map (fun v -> List.assoc v env) q.head in
        if not (Hashtbl.mem seen answer) then begin
          Hashtbl.replace seen answer ();
          yield answer
        end
    | _ ->
        (* Greedy: pick the cheapest atom under the current bindings. *)
        let best = ref None in
        List.iter
          (fun atom ->
            let cost = atom_cost idx env atom in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> best := Some (atom, cost))
          remaining;
        (match !best with
        | None -> ()
        | Some (atom, _) ->
            let rest = List.filter (fun a -> a != atom) remaining in
            atom_matches idx env atom (fun env' -> solve env' rest))
  in
  solve [] q.body

let answers ?indexes inst q =
  let out = ref [] in
  iter_answers ?indexes inst q ~yield:(fun a -> out := a :: !out);
  List.sort compare !out

(* Unary convenience: answers of a single-head-variable query. *)
let answer_nodes ?indexes inst q =
  List.filter_map (function [ v ] -> Some v | _ -> None) (answers ?indexes inst q)

(* Conjunctive queries over labeled graphs: the basic pattern-matching
   formalism behind "extracting nodes satisfying a pattern" (Sections 2.1
   and 4.3).  A query is a set of node-label and edge-label atoms over
   variables; answers are the assignments of graph nodes to the free
   (head) variables that satisfy every atom.

   Evaluation goes through the worst-case-optimal multiway join engine
   ({!Gqkg_core.Join}): node-label atoms become sorted node sets,
   edge-label atoms are served zero-copy from the per-snapshot
   label-sorted CSR index, and the conjunction is solved
   variable-by-variable under a planned global order — O(n^1.5) on the
   triangle query where binary joins pay O(n²) intermediates.

   The previous greedy backtracking join survives as
   {!answers_backtrack}, the reference oracle for tests and the bench
   A/B; its environments are int-slot arrays under a prepass variable
   numbering (constant-time lookup, trail-based undo). *)

open Gqkg_graph
module Join = Gqkg_core.Join

type atom =
  | Node of Const.t * string  (** label(x) *)
  | Edge of Const.t * string * string  (** label(x, y) *)

type t = { head : string list; body : atom list }

let query ~head ~body = { head; body }

let node_atom l x = Node (Const.str l, x)
let edge_atom l x y = Edge (Const.str l, x, y)

module Vars = Set.Make (String)

let atom_vars = function
  | Node (_, x) -> Vars.singleton x
  | Edge (_, x, y) -> Vars.add x (Vars.singleton y)

let body_vars body = List.fold_left (fun acc a -> Vars.union acc (atom_vars a)) Vars.empty body

let validate_head q =
  List.iter
    (fun v ->
      if not (Vars.mem v (body_vars q.body)) then
        invalid_arg (Printf.sprintf "Cq: head variable %s not bound by the body" v))
    q.head

(* ------------------------------------------------------------------ *)
(* WCOJ path: compile atoms to join specs                             *)
(* ------------------------------------------------------------------ *)

let atom_name = function
  | Node (l, x) -> Printf.sprintf "%s(%s)" (Const.to_string l) x
  | Edge (l, x, y) -> Printf.sprintf "%s(%s,%s)" (Const.to_string l) x y

(* Edge atoms with an interned label are zero-copy CSR views; without a
   label index (num_labels = 0) the relation is scanned once per label
   constant.  Node atoms use the index's cached label->nodes sets. *)
let join_specs inst body =
  let idx = Join.Index.get inst in
  List.map
    (fun a ->
      match a with
      | Node (l, x) ->
          Join.atom ~name:(atom_name a) [| x |]
            (Join.Set (Join.Index.nodes_with_const_label idx l))
      | Edge (l, x, y) ->
          let rel =
            if inst.Snapshot.num_labels > 0 then Join.Edges (Join.Index.edge_label_ids idx l)
            else begin
              let pairs = ref [] in
              for e = inst.Snapshot.num_edges - 1 downto 0 do
                if inst.Snapshot.edge_atom e (Atom.Label l) then
                  pairs := (Snapshot.endpoints inst) e :: !pairs
              done;
              Join.Pairs !pairs
            end
          in
          Join.atom ~name:(atom_name a) [| x; y |] rel)
    body

let iter_answers ?budget inst q ~yield =
  validate_head q;
  Join.solve ?budget ~snapshot:inst (join_specs inst q.body) ~vars:q.head
    ~yield:(fun row -> yield (Array.to_list row))

let answers ?budget inst q =
  let out = ref [] in
  iter_answers ?budget inst q ~yield:(fun a -> out := a :: !out);
  List.sort compare !out

(* Unary convenience: answers of a single-head-variable query. *)
let answer_nodes ?budget inst q =
  List.filter_map (function [ v ] -> Some v | _ -> None) (answers ?budget inst q)

(* The join plan (variable order + per-atom estimates) for explain. *)
let explain inst q =
  Printf.sprintf "CQ(%s) :- %s\n%s" (String.concat ", " q.head)
    (String.concat ", " (List.map atom_name q.body))
    (Join.plan ~snapshot:inst (join_specs inst q.body)).Join.rendered

(* ------------------------------------------------------------------ *)
(* Reference oracle: greedy backtracking join                         *)
(* ------------------------------------------------------------------ *)

(* Precomputed label indexes. *)
type indexes = {
  inst : Snapshot.t;
  nodes_by_label : (Const.t, int array) Hashtbl.t;
  edges_by_label : (Const.t, (int * int) array) Hashtbl.t; (* (src, dst) pairs *)
  out_by_label : (Const.t * int, int array) Hashtbl.t; (* (label, src) -> dsts *)
  in_by_label : (Const.t * int, int array) Hashtbl.t; (* (label, dst) -> srcs *)
  pair_set : (Const.t * int * int, unit) Hashtbl.t;
}

let index_nodes_by_label idx label =
  match Hashtbl.find_opt idx.nodes_by_label label with
  | Some a -> a
  | None ->
      let out = ref [] in
      for v = idx.inst.Snapshot.num_nodes - 1 downto 0 do
        if idx.inst.Snapshot.node_atom v (Atom.Label label) then out := v :: !out
      done;
      let arr = Array.of_list !out in
      Hashtbl.replace idx.nodes_by_label label arr;
      arr

let index_edges_by_label idx label =
  match Hashtbl.find_opt idx.edges_by_label label with
  | Some a -> a
  | None ->
      let pairs = ref [] in
      let outs = Hashtbl.create 16 and ins = Hashtbl.create 16 in
      for e = idx.inst.Snapshot.num_edges - 1 downto 0 do
        if idx.inst.Snapshot.edge_atom e (Atom.Label label) then begin
          let s, d = (Snapshot.endpoints idx.inst) e in
          pairs := (s, d) :: !pairs;
          Hashtbl.replace idx.pair_set (label, s, d) ();
          Hashtbl.replace outs s (d :: Option.value (Hashtbl.find_opt outs s) ~default:[]);
          Hashtbl.replace ins d (s :: Option.value (Hashtbl.find_opt ins d) ~default:[])
        end
      done;
      let arr = Array.of_list !pairs in
      Hashtbl.replace idx.edges_by_label label arr;
      Hashtbl.iter (fun s ds -> Hashtbl.replace idx.out_by_label (label, s) (Array.of_list ds)) outs;
      Hashtbl.iter (fun d ss -> Hashtbl.replace idx.in_by_label (label, d) (Array.of_list ss)) ins;
      arr

let make_indexes inst =
  {
    inst;
    nodes_by_label = Hashtbl.create 16;
    edges_by_label = Hashtbl.create 16;
    out_by_label = Hashtbl.create 64;
    in_by_label = Hashtbl.create 64;
    pair_set = Hashtbl.create 256;
  }

(* The oracle's environments are int-slot arrays under a prepass
   variable numbering: slot v = -1 while unbound, constant-time lookup
   and trail-free undo (each atom binds at most two slots and resets
   them after exploring the branch). *)
type slots = { ids : (string, int) Hashtbl.t; env : int array }

let number_vars body =
  let ids = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun a ->
      Vars.iter
        (fun v ->
          if not (Hashtbl.mem ids v) then begin
            Hashtbl.add ids v !next;
            incr next
          end)
        (atom_vars a))
    body;
  { ids; env = Array.make (max 1 !next) (-1) }

let slot s v = Hashtbl.find s.ids v

(* Estimated number of candidate bindings an atom contributes, under the
   current partial assignment: the greedy cost function of the planner. *)
let atom_cost idx s = function
  | Node (l, x) ->
      if s.env.(slot s x) >= 0 then 1 else Array.length (index_nodes_by_label idx l)
  | Edge (l, x, y) -> begin
      let all () = Array.length (index_edges_by_label idx l) in
      match (s.env.(slot s x), s.env.(slot s y)) with
      | sx, sy when sx >= 0 && sy >= 0 -> 1
      | sx, _ when sx >= 0 ->
          ignore (index_edges_by_label idx l);
          Array.length (Option.value (Hashtbl.find_opt idx.out_by_label (l, sx)) ~default:[||])
      | _, sy when sy >= 0 ->
          ignore (index_edges_by_label idx l);
          Array.length (Option.value (Hashtbl.find_opt idx.in_by_label (l, sy)) ~default:[||])
      | _ -> all ()
    end

(* All extensions of the environment satisfying the atom: bind the
   slots, call [k], restore. *)
let atom_matches idx s atom k =
  let bound v = s.env.(v) >= 0 in
  let with_binding v value k =
    s.env.(v) <- value;
    k ();
    s.env.(v) <- -1
  in
  match atom with
  | Node (l, x) ->
      let sx = slot s x in
      if bound sx then begin
        if idx.inst.Snapshot.node_atom s.env.(sx) (Atom.Label l) then k ()
      end
      else Array.iter (fun v -> with_binding sx v k) (index_nodes_by_label idx l)
  | Edge (l, x, y) -> begin
      ignore (index_edges_by_label idx l);
      let sx = slot s x and sy = slot s y in
      match (bound sx, bound sy) with
      | true, true -> if Hashtbl.mem idx.pair_set (l, s.env.(sx), s.env.(sy)) then k ()
      | true, false ->
          Array.iter
            (fun d -> with_binding sy d k)
            (Option.value (Hashtbl.find_opt idx.out_by_label (l, s.env.(sx))) ~default:[||])
      | false, true ->
          Array.iter
            (fun src -> with_binding sx src k)
            (Option.value (Hashtbl.find_opt idx.in_by_label (l, s.env.(sy))) ~default:[||])
      | false, false ->
          Array.iter
            (fun (src, d) ->
              if sx = sy then begin
                if src = d then with_binding sx src k
              end
              else with_binding sx src (fun () -> with_binding sy d k))
            (index_edges_by_label idx l)
    end

(* Reference evaluation: greedy backtracking (cheapest atom first under
   the current bindings), yielding distinct head tuples. *)
let iter_answers_backtrack ?indexes inst q ~yield =
  let idx = match indexes with Some i -> i | None -> make_indexes inst in
  validate_head q;
  let s = number_vars q.body in
  let head_slots = List.map (slot s) q.head in
  let seen = Hashtbl.create 64 in
  let rec solve remaining =
    match remaining with
    | [] ->
        let answer = List.map (fun v -> s.env.(v)) head_slots in
        if not (Hashtbl.mem seen answer) then begin
          Hashtbl.replace seen answer ();
          yield answer
        end
    | _ ->
        (* Greedy: pick the cheapest atom under the current bindings. *)
        let best = ref None in
        List.iter
          (fun atom ->
            let cost = atom_cost idx s atom in
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> best := Some (atom, cost))
          remaining;
        (match !best with
        | None -> ()
        | Some (atom, _) ->
            let rest = List.filter (fun a -> a != atom) remaining in
            atom_matches idx s atom (fun () -> solve rest))
  in
  solve q.body

let answers_backtrack ?indexes inst q =
  let out = ref [] in
  iter_answers_backtrack ?indexes inst q ~yield:(fun a -> out := a :: !out);
  List.sort compare !out

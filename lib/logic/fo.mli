(** First-order logic over graph vocabularies (Section 4.3): node labels
    as unary predicates, edge labels as binary predicates; the φ(x)/ψ(x)
    example and its two evaluation strategies. *)

open Gqkg_graph

type formula =
  | Node_pred of Const.t * string  (** label(x) *)
  | Edge_pred of Const.t * string * string  (** label(x, y) *)
  | Eq of string * string
  | Neg of formula
  | And of formula * formula
  | Or of formula * formula
  | Exists of string * formula
  | Forall of string * formula

val node_pred : string -> string -> formula
val edge_pred : string -> string -> string -> formula

(** Right-nested conjunction; raises on []. *)
val and_of : formula list -> formula

module Vars : Set.S with type elt = string

val free_vars : formula -> Vars.t

(** All variable names used — the "number of variables" resource the
    bounded-variable rewriting economizes. *)
val all_vars : formula -> Vars.t

val width : formula -> int
val quantifier_rank : formula -> int
val to_string : formula -> string
val pp : Format.formatter -> formula -> unit

(** {2 Evaluation} *)

(** Shared edge-label lookup structures. *)
type db

val db_of_instance : Snapshot.t -> db

(** The instance a db was built from. *)
val db_instance : db -> Snapshot.t

(** Is there an edge so labeled from the first node to the second? *)
val edge_holds : db -> Const.t -> int -> int -> bool

(** Tarskian truth under an environment (innermost binding wins). *)
val holds : db -> (string * int) list -> formula -> bool

(** Unary query by direct evaluation, O(n^quantifier-rank); the formula
    must have no free variables beyond [free]. Sorted answers. *)
val eval_naive : Snapshot.t -> formula -> free:string -> int list

(** Unary query by bottom-up relational evaluation; every subformula's
    extension is a table over its free variables. Raises when an
    intermediate arity exceeds the variable bound (3) — that cap is the
    bounded-variable discipline [Vardi 1995]. *)
val eval_bounded : Snapshot.t -> formula -> free:string -> int list

(** {2 The paper's worked formulas} *)

(** φ(x) = person(x) ∧ ∃y∃z (rides(x,y) ∧ bus(y) ∧ rides(z,y) ∧ infected(z)) *)
val phi : formula

(** ψ(x): the equivalent 2-variable rewriting. *)
val psi : formula

(* Random regular-expression generator over a label vocabulary: the
   input distribution for the property tests that cross-check the
   product-based engine against the naive denotational evaluator. *)

open Gqkg_graph
open Gqkg_automata
open Gqkg_util

type params = {
  node_labels : string list;
  edge_labels : string list;
  properties : (string * string list) list; (* property name -> candidate values *)
  features : (int * string list) list; (* feature index -> candidate values *)
  max_depth : int;
  star_probability : float;
}

let default =
  {
    node_labels = [ "a"; "b"; "c" ];
    edge_labels = [ "x"; "y"; "z" ];
    properties = [];
    features = [];
    max_depth = 4;
    star_probability = 0.2;
  }

(* A candidate value as a constant: half the time through the natural
   [Const.of_string] typing, half as a forced string — the latter only
   round-trips through the printer's quoting, which is the point of the
   printer/parser property tests. *)
let random_const rng v =
  if Splitmix.bernoulli rng 0.5 then Const.of_string v else Const.str v

let random_atom rng labels params =
  let props = Array.of_list params.properties and feats = Array.of_list params.features in
  let extra = Array.length props + Array.length feats in
  if extra > 0 && Splitmix.bernoulli rng 0.3 then begin
    let i = Splitmix.int rng extra in
    if i < Array.length props then begin
      let name, values = props.(i) in
      Atom.Prop (Const.str name, random_const rng (Splitmix.choose rng (Array.of_list values)))
    end
    else begin
      let idx, values = feats.(i - Array.length props) in
      Atom.Feature (idx, random_const rng (Splitmix.choose rng (Array.of_list values)))
    end
  end
  else Atom.Label (Const.str (Splitmix.choose rng (Array.of_list labels)))

let random_test_of ~atom rng ~depth =
  let rec go depth =
    if depth = 0 || Splitmix.bernoulli rng 0.6 then Regex.Atom (atom ())
    else begin
      match Splitmix.int rng 3 with
      | 0 -> Regex.Not (go (depth - 1))
      | 1 -> Regex.Or (go (depth - 1), go (depth - 1))
      | _ -> Regex.And (go (depth - 1), go (depth - 1))
    end
  in
  go depth

let random_test rng labels ~depth =
  let labels = Array.of_list labels in
  random_test_of rng ~depth ~atom:(fun () -> Atom.Label (Const.str (Splitmix.choose rng labels)))

let generate ?(params = default) rng =
  let test labels = random_test_of rng ~depth:2 ~atom:(fun () -> random_atom rng labels params) in
  let rec go depth =
    if depth = 0 then leaf ()
    else begin
      match Splitmix.int rng 10 with
      | 0 | 1 | 2 -> Regex.Seq (go (depth - 1), go (depth - 1))
      | 3 | 4 -> Regex.Alt (go (depth - 1), go (depth - 1))
      | 5 when Splitmix.bernoulli rng params.star_probability -> Regex.Star (go (depth - 1))
      | _ -> leaf ()
    end
  and leaf () =
    match Splitmix.int rng 4 with
    | 0 -> Regex.Node_test (test params.node_labels)
    | 1 -> Regex.Bwd (test params.edge_labels)
    | _ -> Regex.Fwd (test params.edge_labels)
  in
  go params.max_depth

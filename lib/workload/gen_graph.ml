(* Random and structured graph generators: the workload substrate for
   benchmarks and property tests.  All are deterministic in the supplied
   PRNG.  Generators produce labeled graphs (with a single default label
   unless stated), the lowest model every experiment can lift from. *)

open Gqkg_graph
open Gqkg_util

let default_label = Const.str "node"
let default_edge_label = Const.str "edge"

let builder_with_nodes n =
  let b = Labeled_graph.Builder.create () in
  for i = 0 to n - 1 do
    ignore (Labeled_graph.Builder.add_node b (Const.str (Printf.sprintf "n%d" i)) ~label:default_label)
  done;
  b

let add_edge b ~index ~src ~dst =
  ignore
    (Labeled_graph.Builder.add_edge b
       (Const.str (Printf.sprintf "e%d" index))
       ~src ~dst ~label:default_edge_label)

(* Erdős–Rényi G(n, m): m directed edges drawn uniformly (self-loops
   allowed, parallel edges allowed — it is a multigraph model). *)
let erdos_renyi_gnm rng ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Gen_graph.erdos_renyi_gnm: need nodes";
  let b = builder_with_nodes nodes in
  for i = 0 to edges - 1 do
    add_edge b ~index:i ~src:(Splitmix.int rng nodes) ~dst:(Splitmix.int rng nodes)
  done;
  Labeled_graph.Builder.freeze b

(* Erdős–Rényi G(n, p): each ordered pair (u ≠ v) independently. *)
let erdos_renyi_gnp rng ~nodes ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen_graph.erdos_renyi_gnp: p in [0,1]";
  let b = builder_with_nodes nodes in
  let index = ref 0 in
  for u = 0 to nodes - 1 do
    for v = 0 to nodes - 1 do
      if u <> v && Splitmix.bernoulli rng p then begin
        add_edge b ~index:!index ~src:u ~dst:v;
        incr index
      end
    done
  done;
  Labeled_graph.Builder.freeze b

(* Barabási–Albert preferential attachment: each new node attaches
   [attach] edges to existing nodes with probability proportional to
   their degree (implemented with the repeated-endpoints trick). *)
let barabasi_albert rng ~nodes ~attach =
  if nodes < 2 || attach < 1 then invalid_arg "Gen_graph.barabasi_albert: need nodes >= 2, attach >= 1";
  let b = builder_with_nodes nodes in
  let endpoints = ref [ 0; 1 ] in
  let count = ref 2 in
  add_edge b ~index:0 ~src:1 ~dst:0;
  let index = ref 1 in
  for v = 2 to nodes - 1 do
    let pool = Array.of_list !endpoints in
    let chosen = Hashtbl.create attach in
    let tries = ref 0 in
    while Hashtbl.length chosen < min attach v && !tries < 50 * attach do
      incr tries;
      let t = pool.(Splitmix.int rng (Array.length pool)) in
      if t <> v then Hashtbl.replace chosen t ()
    done;
    Hashtbl.iter
      (fun t () ->
        add_edge b ~index:!index ~src:v ~dst:t;
        incr index;
        endpoints := v :: t :: !endpoints;
        count := !count + 2)
      chosen
  done;
  Labeled_graph.Builder.freeze b

(* Watts–Strogatz small world: ring of [nodes] each wired to [k]/2
   clockwise neighbors, each edge rewired with probability [beta]. *)
let watts_strogatz rng ~nodes ~k ~beta =
  if k < 2 || k mod 2 <> 0 || k >= nodes then invalid_arg "Gen_graph.watts_strogatz: bad k";
  let b = builder_with_nodes nodes in
  let index = ref 0 in
  for v = 0 to nodes - 1 do
    for j = 1 to k / 2 do
      let target = if Splitmix.bernoulli rng beta then Splitmix.int rng nodes else (v + j) mod nodes in
      if target <> v then begin
        add_edge b ~index:!index ~src:v ~dst:target;
        incr index
      end
    done
  done;
  Labeled_graph.Builder.freeze b

(* Directed path 0 → 1 → ... → n-1. *)
let path ~nodes =
  let b = builder_with_nodes nodes in
  for v = 0 to nodes - 2 do
    add_edge b ~index:v ~src:v ~dst:(v + 1)
  done;
  Labeled_graph.Builder.freeze b

(* Directed cycle. *)
let cycle ~nodes =
  let b = builder_with_nodes nodes in
  for v = 0 to nodes - 1 do
    add_edge b ~index:v ~src:v ~dst:((v + 1) mod nodes)
  done;
  Labeled_graph.Builder.freeze b

(* Star: center 0 pointing at each leaf. *)
let star ~leaves =
  let b = builder_with_nodes (leaves + 1) in
  for v = 1 to leaves do
    add_edge b ~index:(v - 1) ~src:0 ~dst:v
  done;
  Labeled_graph.Builder.freeze b

(* Complete directed graph (no self-loops). *)
let complete ~nodes =
  let b = builder_with_nodes nodes in
  let index = ref 0 in
  for u = 0 to nodes - 1 do
    for v = 0 to nodes - 1 do
      if u <> v then begin
        add_edge b ~index:!index ~src:u ~dst:v;
        incr index
      end
    done
  done;
  Labeled_graph.Builder.freeze b

(* 2D grid with rightward and downward edges. *)
let grid ~rows ~cols =
  let b = builder_with_nodes (rows * cols) in
  let id r c = (r * cols) + c in
  let index = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then begin
        add_edge b ~index:!index ~src:(id r c) ~dst:(id r (c + 1));
        incr index
      end;
      if r + 1 < rows then begin
        add_edge b ~index:!index ~src:(id r c) ~dst:(id (r + 1) c);
        incr index
      end
    done
  done;
  Labeled_graph.Builder.freeze b

(* ---- streaming generators (snapshot-direct) ---------------------------

   The Builder-based generators above allocate a Const name per node and
   edge — fine at 10^4, prohibitive at 10^7.  The streaming generators
   write endpoint/label columns into flat int arrays and freeze them
   straight into a Snapshot: memory is O(columns), names are the
   synthetic "n<id>"/"e<id>" closures (which Snapshot_io detects and
   elides from disk), and generation is a single pass over the edges. *)

let stream_freeze ~nodes ~esrc ~edst ~elabel ~edge_label_names =
  let num_labels = Array.length edge_label_names in
  let label_universe = Array.map Const.str edge_label_names in
  let node_universe = [| default_label |] in
  let label_sat = Snapshot.const_label_sat label_universe in
  let node_label_sat = Snapshot.const_label_sat node_universe in
  Snapshot.make ~num_nodes:nodes ~esrc ~edst ~num_labels ~elabel
    ~label_names:(Array.map Const.to_string label_universe)
    ~label_sat ~num_node_labels:1 ~node_labels:(Array.make nodes [ 0 ])
    ~node_label_names:[| Const.to_string default_label |]
    ~node_label_sat
    ~node_atom:(fun _ a -> node_label_sat 0 a)
    ~edge_atom:(fun e a -> num_labels > 0 && label_sat elabel.(e) a)
    ~node_name:(fun v -> "n" ^ string_of_int v)
    ~edge_name:(fun e -> "e" ^ string_of_int e)

(* Streaming G(n, m) with labels drawn uniformly from [edge_labels]
   (default: the single "edge" label). *)
let stream_gnm ?(edge_labels = [ "edge" ]) rng ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Gen_graph.stream_gnm: need nodes";
  if edge_labels = [] then invalid_arg "Gen_graph.stream_gnm: empty vocabulary";
  let names = Array.of_list edge_labels in
  let k = Array.length names in
  let esrc = Array.make edges 0 and edst = Array.make edges 0 in
  let elabel = Array.make edges 0 in
  for e = 0 to edges - 1 do
    esrc.(e) <- Splitmix.int rng nodes;
    edst.(e) <- Splitmix.int rng nodes;
    if k > 1 then elabel.(e) <- Splitmix.int rng k
  done;
  stream_freeze ~nodes ~esrc ~edst ~elabel ~edge_label_names:names

(* Streaming preferential attachment (the repeated-endpoints trick over
   a flat pool — no hash table, so a multigraph: duplicate targets are
   kept).  Node v >= 1 attaches min(attach, v) edges to earlier nodes,
   preferentially by current degree. *)
let stream_preferential ?(edge_labels = [ "edge" ]) rng ~nodes ~attach =
  if nodes < 2 || attach < 1 then
    invalid_arg "Gen_graph.stream_preferential: need nodes >= 2, attach >= 1";
  if edge_labels = [] then invalid_arg "Gen_graph.stream_preferential: empty vocabulary";
  let names = Array.of_list edge_labels in
  let k = Array.length names in
  let edges = ref 0 in
  for v = 1 to nodes - 1 do
    edges := !edges + min attach v
  done;
  let m = !edges in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  let elabel = Array.make m 0 in
  let pool = Array.make (2 * m) 0 in
  let filled = ref 0 in
  let cursor = ref 0 in
  for v = 1 to nodes - 1 do
    for _ = 1 to min attach v do
      let t =
        if !filled = 0 then 0 else
        if Splitmix.bernoulli rng 0.5 then pool.(Splitmix.int rng !filled)
        else Splitmix.int rng v
      in
      let t = if t = v then 0 else t in
      esrc.(!cursor) <- v;
      edst.(!cursor) <- t;
      if k > 1 then elabel.(!cursor) <- Splitmix.int rng k;
      pool.(!filled) <- v;
      pool.(!filled + 1) <- t;
      filled := !filled + 2;
      incr cursor
    done
  done;
  stream_freeze ~nodes ~esrc ~edst ~elabel ~edge_label_names:names

(* Random labeled graph: ER topology with labels drawn uniformly from the
   given vocabularies — the workhorse of the property-test suites. *)
let random_labeled rng ~nodes ~edges ~node_labels ~edge_labels =
  if node_labels = [] || edge_labels = [] then invalid_arg "Gen_graph.random_labeled: empty vocabulary";
  let node_labels = Array.of_list (List.map Const.str node_labels) in
  let edge_labels = Array.of_list (List.map Const.str edge_labels) in
  let b = Labeled_graph.Builder.create () in
  for i = 0 to nodes - 1 do
    ignore
      (Labeled_graph.Builder.add_node b
         (Const.str (Printf.sprintf "n%d" i))
         ~label:(Splitmix.choose rng node_labels))
  done;
  for i = 0 to edges - 1 do
    ignore
      (Labeled_graph.Builder.add_edge b
         (Const.str (Printf.sprintf "e%d" i))
         ~src:(Splitmix.int rng nodes) ~dst:(Splitmix.int rng nodes)
         ~label:(Splitmix.choose rng edge_labels))
  done;
  Labeled_graph.Builder.freeze b

(** Random regular-expression generator over a label vocabulary: the
    input distribution of the engine-vs-oracle property tests. *)

open Gqkg_automata
open Gqkg_util

type params = {
  node_labels : string list;
  edge_labels : string list;
  properties : (string * string list) list;
      (** property name -> candidate values; values are emitted half
          naturally typed, half as forced strings (exercising the
          printer's quoting) *)
  features : (int * string list) list;  (** feature index -> candidate values *)
  max_depth : int;
  star_probability : float;
}

val default : params

(** Random boolean test over the labels. *)
val random_test : Splitmix.t -> string list -> depth:int -> Regex.test

val generate : ?params:params -> Splitmix.t -> Regex.t

(** Random and structured graph generators, deterministic in the PRNG.
    All produce labeled graphs (single default label unless stated). *)

open Gqkg_graph
open Gqkg_util

(** G(n, m): m uniform directed edges (self-loops and parallels allowed). *)
val erdos_renyi_gnm : Splitmix.t -> nodes:int -> edges:int -> Labeled_graph.t

(** G(n, p): each ordered pair independently. *)
val erdos_renyi_gnp : Splitmix.t -> nodes:int -> p:float -> Labeled_graph.t

(** Preferential attachment with [attach] edges per new node. *)
val barabasi_albert : Splitmix.t -> nodes:int -> attach:int -> Labeled_graph.t

(** Ring of degree [k] rewired with probability [beta]. *)
val watts_strogatz : Splitmix.t -> nodes:int -> k:int -> beta:float -> Labeled_graph.t

val path : nodes:int -> Labeled_graph.t
val cycle : nodes:int -> Labeled_graph.t
val star : leaves:int -> Labeled_graph.t
val complete : nodes:int -> Labeled_graph.t

(** 2D grid with rightward and downward edges. *)
val grid : rows:int -> cols:int -> Labeled_graph.t

(** ER topology with node/edge labels drawn uniformly from the given
    vocabularies — the property-test workhorse. *)
val random_labeled :
  Splitmix.t ->
  nodes:int ->
  edges:int ->
  node_labels:string list ->
  edge_labels:string list ->
  Labeled_graph.t

(** {1 Streaming generators}

    Snapshot-direct: endpoint and label columns are written into flat
    int arrays and frozen without per-element Const names or Builder
    closures, so 10^6–10^7 nodes fit in O(columns) memory. Node and
    edge names are the synthetic ["n<id>"]/["e<id>"] closures, which
    {!Snapshot_io.save} detects and elides from disk. *)

(** Freeze endpoint/label columns directly — the shared back end of the
    streaming generators (single ["node"] node label, synthetic names).
    [elabel] entries index [edge_label_names]. *)
val stream_freeze :
  nodes:int ->
  esrc:int array ->
  edst:int array ->
  elabel:int array ->
  edge_label_names:string array ->
  Snapshot.t

(** Streaming G(n, m); edge labels drawn uniformly from [edge_labels]
    (default a single ["edge"] label). *)
val stream_gnm :
  ?edge_labels:string list -> Splitmix.t -> nodes:int -> edges:int -> Snapshot.t

(** Streaming preferential attachment: node [v >= 1] attaches
    [min attach v] edges to earlier nodes proportionally to degree
    (repeated-endpoints pool; duplicate targets kept — a multigraph). *)
val stream_preferential :
  ?edge_labels:string list -> Splitmix.t -> nodes:int -> attach:int -> Snapshot.t

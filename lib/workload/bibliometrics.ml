(* Synthetic bibliographic knowledge graph for reproducing Figure 1.

   The paper counts DBLP publications (2010-2020) whose titles contain
   one of five keywords, and observes: "knowledge graph" inflects upward
   after the 2012 Google announcement and dominates by 2020; "RDF" and
   "SPARQL" stay stable with a mild decline; "graph database" is
   comparatively small with no significant growth; "property graph" is
   negligible.  It also reports that the share of knowledge-graph papers
   about RDF/SPARQL fell from ~70% (2015) to ~14% (2020).

   We do not have DBLP in this sealed environment (DESIGN.md §2), so we
   generate a corpus whose per-keyword yearly volumes follow growth
   models with those qualitative shapes (Poisson noise on top), and tag
   publications with keyword resources.  The Figure 1 experiment then
   *queries the knowledge graph itself* for the counts — same pipeline as
   the paper's analysis, synthetic raw data. *)

open Gqkg_util
open Gqkg_kg

let keywords = [ "knowledge_graph"; "rdf"; "sparql"; "graph_database"; "property_graph" ]

let first_year = 2010
let last_year = 2020

(* Expected publication volume per keyword and year — the calibrated
   growth models. *)
let expected_volume keyword year =
  let y = float_of_int (year - 2010) in
  match keyword with
  | "knowledge_graph" ->
      (* Quiet until the 2012 announcement, then exponential takeoff
         saturating around ~900/year by 2020. *)
      if year <= 2012 then 15.0 else Float.min 900.0 (22.0 *. exp (0.48 *. (y -. 2.0)))
  | "rdf" -> 330.0 -. (8.0 *. y) (* stable, mild decline *)
  | "sparql" -> 150.0 -. (4.0 *. y)
  | "graph_database" -> 35.0 +. (1.5 *. y) (* comparatively small, no real growth *)
  | "property_graph" -> 2.0 +. (0.8 *. y) (* negligible *)
  | _ -> invalid_arg "Bibliometrics.expected_volume: unknown keyword"

(* Fraction of knowledge-graph papers that are *also* about RDF/SPARQL:
   ~70% in 2015 falling to ~14% in 2020 (and assumed high before). *)
let kg_rdf_share year =
  if year <= 2013 then 0.80
  else Float.max 0.14 (0.70 -. (0.112 *. float_of_int (year - 2015)))

let ns = "urn:bib:"
let publication_class = Term.Iri (ns ^ "Publication")
let keyword_pred = Term.Iri (ns ^ "keyword")
let year_pred = Term.Iri (ns ^ "year")
let venue_pred = Term.Iri (ns ^ "venue")
let author_pred = Term.Iri (ns ^ "author")
let keyword_iri k = Term.Iri (ns ^ "kw/" ^ k)

let venues = [| "sigmod"; "vldb"; "iswc"; "www"; "kdd"; "eswc" |]

(* Generate the corpus as an RDF knowledge graph.  [volume_scale] shrinks
   the corpus for fast tests (1.0 reproduces the full calibrated sizes). *)
let generate ?(volume_scale = 1.0) rng =
  let store = Triple_store.create () in
  let add s p o = ignore (Triple_store.add store (Triple_store.triple s p o)) in
  let pub_counter = ref 0 in
  let publish year keyword_list =
    let id = !pub_counter in
    incr pub_counter;
    let pub = Term.Iri (Printf.sprintf "%spub/%d" ns id) in
    add pub Rdfs.rdf_type publication_class;
    add pub year_pred (Term.of_int year);
    add pub venue_pred (Term.Iri (ns ^ "venue/" ^ Splitmix.choose rng venues));
    (* One to four authors drawn from a pool; enough structure for the
       example applications to join over. *)
    for _ = 1 to Splitmix.int_in_range rng ~lo:1 ~hi:4 do
      add pub author_pred (Term.Iri (Printf.sprintf "%sauthor/%d" ns (Splitmix.int rng 2000)))
    done;
    List.iter (fun k -> add pub keyword_pred (keyword_iri k)) keyword_list
  in
  for year = first_year to last_year do
    List.iter
      (fun keyword ->
        let expected = volume_scale *. expected_volume keyword year in
        let count = Splitmix.poisson rng expected in
        for _ = 1 to count do
          match keyword with
          | "knowledge_graph" ->
              (* A share of KG papers also carries rdf or sparql. *)
              if Splitmix.bernoulli rng (kg_rdf_share year) then begin
                let second = if Splitmix.bool rng then "rdf" else "sparql" in
                publish year [ "knowledge_graph"; second ]
              end
              else publish year [ "knowledge_graph" ]
          | keyword -> publish year [ keyword ]
        done)
      keywords
  done;
  store

(* The Figure 1 query: publications tagged [keyword] in [year], counted
   through the BGP engine (the data-management code path under test). *)
let count_keyword_year store ~keyword ~year =
  Bgp.count_solutions store
    {
      Bgp.select = [ "p" ];
      where =
        [
          Bgp.pattern (Bgp.v "p") (Bgp.c Rdfs.rdf_type) (Bgp.c publication_class);
          Bgp.pattern (Bgp.v "p") (Bgp.c keyword_pred) (Bgp.c (keyword_iri keyword));
          Bgp.pattern (Bgp.v "p") (Bgp.c year_pred) (Bgp.c (Term.of_int year));
        ];
    }

(* Publications carrying both the KG keyword and rdf-or-sparql in [year]:
   the numerator of the falling-share statistic. *)
let count_kg_with_rdf store ~year =
  let count second =
    Bgp.count_solutions store
      {
        Bgp.select = [ "p" ];
        where =
          [
            Bgp.pattern (Bgp.v "p") (Bgp.c keyword_pred) (Bgp.c (keyword_iri "knowledge_graph"));
            Bgp.pattern (Bgp.v "p") (Bgp.c keyword_pred) (Bgp.c (keyword_iri second));
            Bgp.pattern (Bgp.v "p") (Bgp.c year_pred) (Bgp.c (Term.of_int year));
          ];
      }
  in
  count "rdf" + count "sparql"

type series = { keyword : string; counts : (int * int) list (* year, count *) }

(* The full Figure 1 dataset, one series per keyword. *)
let figure1_series store =
  List.map
    (fun keyword ->
      {
        keyword;
        counts =
          List.init (last_year - first_year + 1) (fun i ->
              let year = first_year + i in
              (year, count_keyword_year store ~keyword ~year));
      })
    keywords

let share_statistics store =
  List.filter_map
    (fun year ->
      let kg = count_keyword_year store ~keyword:"knowledge_graph" ~year in
      if kg = 0 then None
      else Some (year, float_of_int (count_kg_with_rdf store ~year) /. float_of_int kg))
    [ 2015; 2020 ]

(* ---- streaming citation graph (snapshot-direct) ------------------------

   The scale-tier companion of [generate]: where the triple-store corpus
   carries full per-paper metadata at 10^3-10^4 papers, this builds only
   the citation topology — papers in publication order, each citing
   [refs] earlier papers with a recency-biased preferential rule — as
   flat columns frozen straight into a snapshot.  Labels: "cites"
   (most), "extends" (a minority follow-up link).  At 10^6-10^7 papers
   this is the E16 bench substrate. *)

let citation_snapshot ?(refs = 5) ?(recency_window = 50_000) rng ~papers =
  if papers < 2 || refs < 1 then
    invalid_arg "Bibliometrics.citation_snapshot: need papers >= 2, refs >= 1";
  let m = ref 0 in
  for v = 1 to papers - 1 do
    m := !m + min refs v
  done;
  let m = !m in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  let elabel = Array.make m 0 in
  (* endpoint pool: cited papers enter once per citation received, so a
     pool draw is degree-proportional over past citations *)
  let pool = Array.make m 0 in
  let filled = ref 0 in
  let cursor = ref 0 in
  for v = 1 to papers - 1 do
    for _ = 1 to min refs v do
      let t =
        if !filled > 0 && Splitmix.bernoulli rng 0.4 then pool.(Splitmix.int rng !filled)
        else begin
          (* recent-literature bias: uniform over the trailing window *)
          let lo = max 0 (v - recency_window) in
          lo + Splitmix.int rng (v - lo)
        end
      in
      let t = if t >= v then v - 1 else t in
      esrc.(!cursor) <- v;
      edst.(!cursor) <- t;
      elabel.(!cursor) <- (if Splitmix.bernoulli rng 0.1 then 1 else 0);
      pool.(!filled) <- t;
      incr filled;
      incr cursor
    done
  done;
  Gen_graph.stream_freeze ~nodes:papers ~esrc ~edst ~elabel
    ~edge_label_names:[| "cites"; "extends" |]

(** Synthetic bibliographic knowledge graph for Figure 1 (the DBLP
    substitution, DESIGN.md §2): per-keyword yearly publication volumes
    follow growth models calibrated to the paper's described shape; the
    bench then queries the KG for the counts. *)

open Gqkg_util
open Gqkg_kg

val keywords : string list
val first_year : int
val last_year : int

(** Expected volume of a keyword in a year (the calibrated model). *)
val expected_volume : string -> int -> float

(** Modeled share of KG papers also about RDF/SPARQL. *)
val kg_rdf_share : int -> float

val publication_class : Term.t
val keyword_pred : Term.t
val year_pred : Term.t
val venue_pred : Term.t
val author_pred : Term.t
val keyword_iri : string -> Term.t

(** Generate the corpus; [volume_scale] shrinks it for fast tests. *)
val generate : ?volume_scale:float -> Splitmix.t -> Triple_store.t

(** Publications tagged [keyword] in [year], counted through the BGP
    engine. *)
val count_keyword_year : Triple_store.t -> keyword:string -> year:int -> int

(** Publications carrying both the KG keyword and rdf-or-sparql. *)
val count_kg_with_rdf : Triple_store.t -> year:int -> int

type series = { keyword : string; counts : (int * int) list  (** (year, count) *) }

(** One series per keyword — the Figure 1 dataset. *)
val figure1_series : Triple_store.t -> series list

(** (year, share) for 2015 and 2020 — the falling KG∩RDF statistic. *)
val share_statistics : Triple_store.t -> (int * float) list

(** Streaming citation graph for the 10^6–10^7 scale tier: papers in
    publication order, each citing [refs] earlier papers under a
    recency-biased preferential rule; edge labels ["cites"] /
    ["extends"]. Snapshot-direct (flat columns, synthetic names) — see
    {!Gen_graph} streaming generators. *)
val citation_snapshot :
  ?refs:int -> ?recency_window:int -> Splitmix.t -> papers:int -> Gqkg_graph.Snapshot.t

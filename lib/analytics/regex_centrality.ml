(* Regex-constrained betweenness centrality (Section 4.2):

     bc_r(x) = Σ_{a,b : a≠x, b≠x} |S_{a,b,r}(x)| / |S_{a,b,r}|

   where S_{a,b,r} is the set of *shortest* paths from a to b conforming
   to the regular expression r, and S_{a,b,r}(x) those that contain x.
   This is how "knowledge" (the labels) enters a classical analytics
   primitive: only the paths that mean the right thing — a bus used as
   transport, an infection chain — count towards centrality.

   Both algorithms run on the deterministic product, where matching paths
   correspond one-to-one to product paths:

   - [exact]: per source, a BFS of the product gives distances and the
     shortest-path DAG; per (source, target) pair the members of
     S_{a,b,r} are materialized by walking the DAG backwards from the
     accepting states and each path credits its distinct intermediate
     nodes.  Exact, but |S| can be exponential — the point the paper
     makes about intractability.

   - [approximate]: the randomized algorithm the tutorial builds from the
     Section 4.1 toolbox.  Instead of materializing S_{a,b,r}, it draws
     [samples] uniform members per pair (backward sampling weighted by
     shortest-path counts — the same preprocessing/generation split as
     uniform path generation) and estimates the inclusion fractions. *)

open Gqkg_graph
open Gqkg_core
open Gqkg_util

(* Per-source shortest-path structure over the product: distances, path
   counts σ, and DAG predecessors of every product state — flat arrays
   indexed by product state id ([dist] = -1 for unreached states). *)
type source_dag = {
  dist : int array;
  sigma : float array;
  preds : int list array; (* DAG edges backwards *)
  (* Per target node: best distance and accepting states at it. *)
  targets : (int, int * int list) Hashtbl.t;
  (* Target nodes in ascending order.  Consumers iterate this list, not
     the hash table: the iteration order is then a function of the graph
     and query alone (product state ids depend on exploration history,
     which differs between the shared sequential product and per-domain
     copies), keeping accumulation and sampling order reproducible. *)
  target_nodes : int list;
}

(* Per-source FIFO replay over the (frontier-warmed) product.  The walk
   is structurally identical to a hash-table BFS — same pop order, same
   σ accumulation order, same predecessor list order — so dist/σ/preds
   and everything sampled or summed from them are bit-identical to the
   pre-batching per-source code; only the bookkeeping moved from hash
   tables to arrays.  The batch pass in {!exact}/{!approximate} has
   already expanded every state this replay can expand, so the
   iter_successors calls below are memoized CSR reads. *)
let build_dag product ~source ~max_length =
  let cap = ref (max 16 (Product.num_states product)) in
  let dist = ref (Array.make !cap (-1)) in
  let sigma = ref (Array.make !cap 0.0) in
  let preds = ref (Array.make !cap []) in
  let grow n =
    if n > !cap then begin
      let c = max n (2 * !cap) in
      let d = Array.make c (-1) and s = Array.make c 0.0 in
      let p = Array.make c [] in
      Array.blit !dist 0 d 0 !cap;
      Array.blit !sigma 0 s 0 !cap;
      Array.blit !preds 0 p 0 !cap;
      dist := d;
      sigma := s;
      preds := p;
      cap := c
    end
  in
  let targets = Hashtbl.create 16 in
  (* Accepting states in discovery order — a structural (id-independent)
     order because BFS follows the deterministic successor lists. *)
  let accepting_in_order = ref [] in
  let discover state d =
    !dist.(state) <- d;
    if Product.is_accepting product state then
      accepting_in_order := (state, Product.node_of product state, d) :: !accepting_in_order
  in
  (match Product.start_state product source with
  | None -> ()
  | Some s0 ->
      grow (Product.num_states product);
      discover s0 0;
      !sigma.(s0) <- 1.0;
      let queue = Queue.create () in
      Queue.push s0 queue;
      (* Budget check site: every 128 dequeues, like the Rpq BFS.  An
         early stop truncates the DAG; paths materialized or sampled
         from it are still genuine shortest matching paths, only fewer
         pairs contribute. *)
      let budget = Product.budget product in
      let pops = ref 0 in
      let stop = ref false in
      while (not !stop) && not (Queue.is_empty queue) do
        incr pops;
        if !pops land 127 = 0 then begin
          Budget.charge_steps budget 128;
          Budget.note_states budget (Product.num_states product);
          if Budget.check budget then stop := true
        end;
        if not !stop then begin
        let v = Queue.pop queue in
        let dv = !dist.(v) in
        let expand = match max_length with Some m -> dv < m | None -> true in
        if expand then begin
          ignore (Product.degree product v);
          grow (Product.num_states product);
          Product.iter_successors product v (fun _e w ->
              if !dist.(w) < 0 then begin
                discover w (dv + 1);
                Queue.push w queue
              end;
              if !dist.(w) = dv + 1 then begin
                !sigma.(w) <- !sigma.(w) +. !sigma.(v);
                !preds.(w) <- v :: !preds.(w)
              end)
        end
        end
      done;
      (* Per graph node, keep the closest accepting states (discovery
         order within each node). *)
      List.iter
        (fun (state, node, d) ->
          match Hashtbl.find_opt targets node with
          | Some (best, states) ->
              if d < best then Hashtbl.replace targets node (d, [ state ])
              else if d = best then Hashtbl.replace targets node (best, state :: states)
          | None -> Hashtbl.replace targets node (d, [ state ]))
        (List.rev !accepting_in_order));
  let target_nodes =
    Hashtbl.fold (fun node _ acc -> node :: acc) targets [] |> List.sort Int.compare
  in
  { dist = !dist; sigma = !sigma; preds = !preds; targets; target_nodes }

(* All shortest matching paths from the source to [target], as node
   sequences (graph nodes), by backward DFS through the DAG.  [limit]
   caps the number of materialized paths (safety valve for the exact
   algorithm; [None] in tests). *)
let materialize_paths product dag ~target ~limit =
  match Hashtbl.find_opt dag.targets target with
  | None -> []
  | Some (_d, states) ->
      let out = ref [] and count = ref 0 in
      let exception Done in
      (try
         List.iter
           (fun final ->
             let rec back state suffix =
               let node = Product.node_of product state in
               match dag.preds.(state) with
               | [] ->
                   (* Reached the source start state (distance 0). *)
                   if dag.dist.(state) = 0 then begin
                     out := (node :: suffix) :: !out;
                     incr count;
                     match limit with Some l when !count >= l -> raise Done | _ -> ()
                   end
               | preds -> List.iter (fun p -> back p (node :: suffix)) preds
             in
             back final [])
           states
       with Done -> ());
      !out

(* Plan the query once, before sources are sliced across domains: [None]
   when statically empty (bc_r is all zeros — no matching path exists),
   otherwise a product factory the per-domain workers call.  The trimmed
   NFA is immutable and shared read-only across the copies. *)
let plan_products ?budget inst regex =
  let module Analyze = Gqkg_analysis.Analyze in
  match Analyze.plan_if_enabled inst regex with
  | None -> Some (fun () -> Product.create ?budget inst regex)
  | Some r -> (
      match r.Analyze.nfa with
      | None -> None
      | Some nfa ->
          let hints =
            { Product.fwd_seed_cost = r.Analyze.fwd_cost; bwd_seed_cost = r.Analyze.bwd_cost }
          in
          (* One budget shared by every per-domain product copy: its
             counters are atomics, so concurrent slices charge it
             together and trip together. *)
          Some (fun () -> Product.create ?budget ~nfa ~hints inst r.Analyze.regex))

(* Per-source exact contribution, accumulated into [bc]. *)
let exact_source product ~max_length ~pair_limit bc a =
  let dag = build_dag product ~source:a ~max_length in
  List.iter
    (fun b ->
      if b <> a then begin
        let paths = materialize_paths product dag ~target:b ~limit:pair_limit in
        let total = List.length paths in
        if total > 0 then begin
          let weight = 1.0 /. float_of_int total in
          List.iter
            (fun nodes ->
              let distinct = List.sort_uniq Int.compare nodes in
              List.iter (fun x -> if x <> a && x <> b then bc.(x) <- bc.(x) +. weight) distinct)
            paths
        end
      end)
    dag.target_nodes

(* Shared slice runner: sources [first, last) against one product copy,
   in batches of [Frontier.word_bits].  Each batch first runs one
   multi-source frontier pass whose only job is to *warm* the product —
   every state any source of the batch can expand gets its CSR row
   committed once, for the whole batch — then replays the per-source
   DAG builds over the memoized rows.  The replay, not the batch pass,
   produces the per-source structure, so results stay bit-identical to
   the one-source-at-a-time loop regardless of batch composition (and
   hence of the domain count). *)
let run_slice mk_product ~max_length per_source n first last =
  let product = mk_product () in
  let budget = Product.budget product in
  let fr = Frontier.create product in
  let bc = Array.make n 0.0 in
  let a = ref first in
  (* Budget check sites: per batch and per source.  A skipped source
     contributes nothing, so partial bc scores are undercounts. *)
  while !a < last && not (Budget.check budget) do
    let width = min Frontier.word_bits (last - !a) in
    Frontier.run_batch ?max_length fr ~sources:(Array.init width (fun i -> !a + i));
    let i = ref 0 in
    while !i < width && not (Budget.check budget) do
      per_source product bc (!a + !i);
      incr i
    done;
    a := !a + width
  done;
  bc

(* Warm ONE product over every source: after these batch passes, every
   state any per-source replay can touch is expanded, every lazy memo
   (move tables, start states, acceptance) is filled, and the product is
   effectively read-only — see the safety argument in Frontier: both the
   top-down and the bottom-up step expand the whole frontier at every
   level below the bound, so batch coverage equals per-source BFS
   coverage exactly. *)
let warm_product product ~max_length n =
  let budget = Product.budget product in
  let fr = Frontier.create product in
  let a = ref 0 in
  while !a < n && not (Budget.check budget) do
    let width = min Frontier.word_bits (n - !a) in
    Frontier.run_batch ?max_length fr ~sources:(Array.init width (fun i -> !a + i));
    a := !a + width
  done

(* Parallel strategy: warm the shared product once (sequential — the
   lazy product is not safe for concurrent interning), then replay the
   per-source DAG builds concurrently over the memoized rows.  Replays
   only read: expansion, start-state and acceptance caches were all
   filled by the warm pass, and the budget's counters are atomics.  The
   old per-domain-product-copy design expanded the product once per
   domain — duplicated work that made parallel bc_r *slower* than
   sequential on small workloads; sharing the warm removes exactly that
   duplication.  Per-slice partial scores merge in slice order, so the
   result is deterministic for a fixed domain count. *)
let run_sliced mk_product ~max_length ~domains per_source n =
  if domains <= 1 || n < 8 then run_slice mk_product ~max_length per_source n 0 n
  else begin
    let product = mk_product () in
    warm_product product ~max_length n;
    let budget = Product.budget product in
    let partials =
      Parallel.map_slices ~domains ~grain:4 n (fun first last ->
          let bc = Array.make n 0.0 in
          let a = ref first in
          (* Budget check site: per source; a skipped source contributes
             nothing, so partial bc scores are undercounts. *)
          while !a < last && not (Budget.check budget) do
            per_source product bc !a;
            incr a
          done;
          bc)
    in
    match partials with
    | [] -> Array.make n 0.0
    | first :: rest -> List.fold_left (fun into p -> Parallel.sum_float_arrays ~into p) first rest
  end

(* The exact bc_r of every node.  [max_length] bounds the product search
   for star-heavy expressions; [pair_limit] caps per-pair materialization
   (when hit, the pair contributes its sampled prefix — the log warns).

   Per-source passes are independent, so with [domains > 1] the sources
   are sliced across OCaml 5 domains: one shared product is warmed by
   [Frontier.word_bits]-wide batch passes, then the slices replay their
   sources over the memoized (read-only) rows.  Per-domain partial
   scores are summed in slice order, keeping the result deterministic
   for a fixed domain count. *)
let exact ?budget ?max_length ?pair_limit ?(domains = 0) inst regex =
  let n = inst.Snapshot.num_nodes in
  let domains = if domains > 0 then domains else Parallel.default_domains () in
  match plan_products ?budget inst regex with
  | None -> Array.make n 0.0
  | Some mk_product ->
      run_sliced mk_product ~max_length ~domains
        (fun product bc a -> exact_source product ~max_length ~pair_limit bc a)
        n

(* Uniform draw of one shortest matching path to [target] (as the list of
   its graph nodes): pick the accepting state proportionally to σ, then
   walk predecessors proportionally to σ. *)
let sample_path product dag rng ~target =
  match Hashtbl.find_opt dag.targets target with
  | None -> None
  | Some (_d, states) ->
      let states = Array.of_list states in
      let weights = Array.map (fun s -> dag.sigma.(s)) states in
      let final = states.(Alias.sample_weights weights rng) in
      let rec back state suffix =
        let node = Product.node_of product state in
        match dag.preds.(state) with
        | [] -> node :: suffix
        | preds ->
            let preds = Array.of_list preds in
            let weights = Array.map (fun s -> dag.sigma.(s)) preds in
            back preds.(Alias.sample_weights weights rng) (node :: suffix)
      in
      Some (back final [])

(* Per-source sampled contribution.  The RNG is derived from (seed,
   source), so the estimate is a pure function of the inputs no matter
   how sources are sliced across domains. *)
let approximate_source product ~max_length ~samples ~seed bc a =
  let rng = Splitmix.create (seed + (0x9e3779b9 * (a + 1))) in
  let share = 1.0 /. float_of_int samples in
  let dag = build_dag product ~source:a ~max_length in
  List.iter
    (fun b ->
      if b <> a then
        for _ = 1 to samples do
          match sample_path product dag rng ~target:b with
          | None -> ()
          | Some nodes ->
              let distinct = List.sort_uniq Int.compare nodes in
              List.iter (fun x -> if x <> a && x <> b then bc.(x) <- bc.(x) +. share) distinct
        done)
    dag.target_nodes

(* Randomized approximation of bc_r: per reachable pair, [samples] uniform
   members of S_{a,b,r} estimate the inclusion fractions.  Sources are
   sliced across domains and batched exactly as in {!exact}. *)
let approximate ?budget ?max_length ?(samples = 16) ?(seed = 7) ?(domains = 0) inst regex =
  let n = inst.Snapshot.num_nodes in
  let domains = if domains > 0 then domains else Parallel.default_domains () in
  match plan_products ?budget inst regex with
  | None -> Array.make n 0.0
  | Some mk_product ->
      run_sliced mk_product ~max_length ~domains
        (fun product bc a -> approximate_source product ~max_length ~samples ~seed bc a)
        n

(* The degradation ladder: exact bc_r under the caller's budget; if the
   exact pass trips, fall back to the sampling approximation under a
   fresh budget with the same limits ([Budget.similar] — the injector is
   deliberately not copied).  The outcome's completeness reflects the
   pass that produced the returned scores. *)
let governed ~budget ?max_length ?pair_limit ?(samples = 16) ?(seed = 7) ?(domains = 0) inst
    regex =
  let scores = exact ~budget ?max_length ?pair_limit ~domains inst regex in
  match Budget.exhausted budget with
  | None -> { Budget.value = (scores, `Exact); completeness = Budget.Complete }
  | Some _ ->
      let retry = Budget.similar budget in
      let scores = approximate ~budget:retry ?max_length ~samples ~seed ~domains inst regex in
      { Budget.value = (scores, `Approximate); completeness = Budget.completeness retry }

(** Densest-subgraph discovery (Section 4.2 cites it as a flagship
    community analytic): maximize |E(S)| / |S| over node sets S,
    direction ignored, self-loops dropped. *)

open Gqkg_graph

(** |E(S)| / |S| for explicit members. *)
val exact_density : Snapshot.t -> int list -> float

(** Charikar's greedy peeling 2-approximation: (members, density). *)
val charikar : Snapshot.t -> int list * float

(** Goldberg's exact algorithm (binary search over min-cuts via
    {!Maxflow}): (members, density). *)
val goldberg : Snapshot.t -> int list * float

(** Clustering coefficients and community structure (Section 4.2). All
    functions use the undirected simple view (self-loops and parallel
    edges collapsed). *)

open Gqkg_graph

(** Fraction of each node's neighbor pairs that are adjacent. *)
val local_clustering : Snapshot.t -> float array

val average_clustering : Snapshot.t -> float

(** Global transitivity: 3 × triangles / connected triples. *)
val transitivity : Snapshot.t -> float

(** Asynchronous label propagation; deterministic given the seed.
    Returns dense community labels. *)
val label_propagation : ?seed:int -> ?max_rounds:int -> Snapshot.t -> int array

(** Newman's modularity of a community assignment. *)
val modularity : Snapshot.t -> int array -> float

(** Girvan–Newman divisive community detection: remove highest
    edge-betweenness edges, keep the dendrogram level with the best
    modularity. Returns (labels, modularity). O(m²n); small/medium
    graphs. *)
val girvan_newman : ?max_removals:int -> Snapshot.t -> int array * float

(* Descriptive whole-graph statistics: the numbers any graph-database
   paper's "datasets" table reports, and quick structure diagnostics for
   the generators. *)

open Gqkg_graph

(* (degree, node count) pairs, ascending degree; undirected by default. *)
let degree_histogram ?(directed = false) inst =
  let degrees = Centrality.degree ~directed inst in
  let tbl = Hashtbl.create 16 in
  Array.iter (fun d -> Hashtbl.replace tbl d (1 + Option.value (Hashtbl.find_opt tbl d) ~default:0)) degrees;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

(* Fraction of directed edges whose reverse also exists (self-loops
   ignored). *)
let reciprocity inst =
  let pairs = Hashtbl.create 256 in
  let m = ref 0 in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s <> d then begin
      Hashtbl.replace pairs (s, d) ();
      incr m
    end
  done;
  if !m = 0 then 0.0
  else begin
    let reciprocated = ref 0 in
    Hashtbl.iter (fun (s, d) () -> if Hashtbl.mem pairs (d, s) then incr reciprocated) pairs;
    float_of_int !reciprocated /. float_of_int (Hashtbl.length pairs)
  end

(* Pearson degree assortativity over undirected edges: do high-degree
   nodes attach to high-degree nodes?  [Newman 2002] *)
let degree_assortativity inst =
  let degrees = Centrality.degree ~directed:false inst in
  let xs = ref [] and ys = ref [] in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s <> d then begin
      (* Each undirected edge contributes both orientations, making the
         correlation symmetric. *)
      xs := float_of_int degrees.(s) :: float_of_int degrees.(d) :: !xs;
      ys := float_of_int degrees.(d) :: float_of_int degrees.(s) :: !ys
    end
  done;
  let xs = Array.of_list !xs and ys = Array.of_list !ys in
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean xs and my = mean ys in
    let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy)
    done;
    if !vx = 0.0 || !vy = 0.0 then 0.0 else !cov /. sqrt (!vx *. !vy)
  end

type summary = {
  nodes : int;
  edges : int;
  self_loops : int;
  density : float; (* m / n(n-1), directed convention *)
  mean_degree : float;
  max_degree : int;
  reciprocity : float;
  assortativity : float;
  components : int;
  transitivity : float;
}

let summarize inst =
  let n = inst.Snapshot.num_nodes and m = inst.Snapshot.num_edges in
  let self_loops = ref 0 in
  for e = 0 to m - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s = d then incr self_loops
  done;
  let degrees = Centrality.degree ~directed:false inst in
  let _, components = Traversal.weakly_connected_components inst in
  {
    nodes = n;
    edges = m;
    self_loops = !self_loops;
    density = (if n < 2 then 0.0 else float_of_int m /. (float_of_int n *. float_of_int (n - 1)));
    mean_degree = (if n = 0 then 0.0 else float_of_int (Array.fold_left ( + ) 0 degrees) /. float_of_int n);
    max_degree = Array.fold_left max 0 degrees;
    reciprocity = reciprocity inst;
    assortativity = degree_assortativity inst;
    components;
    transitivity = Clustering.transitivity inst;
  }

let pp_summary ppf s =
  Fmt.pf ppf
    "nodes=%d edges=%d (self-loops %d) density=%.4f mean-degree=%.2f max-degree=%d reciprocity=%.3f assortativity=%.3f components=%d transitivity=%.3f"
    s.nodes s.edges s.self_loops s.density s.mean_degree s.max_degree s.reciprocity s.assortativity
    s.components s.transitivity

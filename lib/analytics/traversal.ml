(* Basic graph traversals over the frozen columnar snapshot: breadth-
   first and depth-first orders, weakly connected components, and
   Tarjan's strongly connected components.  These are the "global
   properties" substrate of Section 2.1(iii) on which the analytics of
   Section 4.2 build.  Inner loops index the snapshot's CSR arrays
   directly — no per-node array materialization. *)

open Gqkg_graph

let out_neighbors inst v =
  let off = inst.Snapshot.out_off in
  Array.sub inst.Snapshot.out_nbr off.(v) (off.(v + 1) - off.(v))

let in_neighbors inst v =
  let off = inst.Snapshot.in_off in
  Array.sub inst.Snapshot.in_nbr off.(v) (off.(v + 1) - off.(v))

let all_neighbors inst v = Array.append (out_neighbors inst v) (in_neighbors inst v)

(* BFS order and distances from [source]; [directed] chooses whether to
   respect edge direction (default) or treat edges as symmetric. *)
let bfs ?(directed = true) inst ~source =
  let n = inst.Snapshot.num_nodes in
  let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
  let in_off = inst.Snapshot.in_off and in_nbr = inst.Snapshot.in_nbr in
  let dist = Array.make n (-1) in
  let order = ref [] in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    let d = dist.(v) + 1 in
    for i = out_off.(v) to out_off.(v + 1) - 1 do
      let w = out_nbr.(i) in
      if dist.(w) < 0 then begin
        dist.(w) <- d;
        Queue.push w queue
      end
    done;
    if not directed then
      for i = in_off.(v) to in_off.(v + 1) - 1 do
        let w = in_nbr.(i) in
        if dist.(w) < 0 then begin
          dist.(w) <- d;
          Queue.push w queue
        end
      done
  done;
  (dist, List.rev !order)

let bfs_distances ?directed inst ~source = fst (bfs ?directed inst ~source)

(* Batched multi-source BFS, MS-BFS style: up to [Bitset.bits_per_word]
   sources per pass share one visited/frontier word per node, so a node's
   adjacency is scanned once per level for the whole batch.  Levels may
   also expand bottom-up (Beamer): scan the nodes some slot has not
   reached yet and pull through the snapshot's in-CSR (both CSRs when
   [directed] is false), with an early exit once a node has gathered
   every batch bit; the top-down/bottom-up switch compares the frontier's
   summed degree against an average-degree estimate of the pull scan,
   with the threshold relaxed on graphs whose freeze-time median degree
   is high (denser graphs profit from pulling earlier).  Distances are
   bit-identical to per-source {!bfs_distances}; [direction] forces one
   expansion mode for tests. *)
let bfs_distances_many ?(budget = Gqkg_util.Budget.unlimited) ?(direction = `Auto)
    ?(directed = true) inst ~sources =
  let n = inst.Snapshot.num_nodes in
  let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
  let in_off = inst.Snapshot.in_off and in_nbr = inst.Snapshot.in_nbr in
  let word_bits = Gqkg_util.Bitset.bits_per_word in
  let k_total = Array.length sources in
  let results = Array.make k_total [||] in
  let base = ref 0 in
  while !base < k_total do
    let k = min word_bits (k_total - !base) in
    let full = if k = word_bits then -1 else (1 lsl k) - 1 in
    let dists = Array.init k (fun _ -> Array.make n (-1)) in
    let visited = Array.make n 0 in
    let cur_word = ref (Array.make n 0) and next_word = ref (Array.make n 0) in
    let cur = ref (Array.make (max 1 n) 0) and next = ref (Array.make (max 1 n) 0) in
    let cur_n = ref 0 and next_n = ref 0 in
    let covered = ref 0 in
    for s = 0 to k - 1 do
      let v = sources.(!base + s) in
      let bit = 1 lsl s in
      if visited.(v) land bit = 0 then begin
        if !cur_word.(v) = 0 then begin
          !cur.(!cur_n) <- v;
          incr cur_n
        end;
        visited.(v) <- visited.(v) lor bit;
        if visited.(v) = full then incr covered;
        !cur_word.(v) <- !cur_word.(v) lor bit
      end;
      dists.(s).(v) <- 0
    done;
    let d = ref 0 in
    (* Budget check site: once per level per batch.  Stopping early
       leaves the unreached distances at -1; the distances already
       written are exact, so consumers only lose coverage. *)
    while
      !cur_n > 0
      &&
      (Gqkg_util.Budget.charge_steps budget !cur_n;
       not (Gqkg_util.Budget.check budget))
    do
      incr d;
      let td_cost = ref 0 in
      for i = 0 to !cur_n - 1 do
        let v = !cur.(i) in
        td_cost :=
          !td_cost
          + (out_off.(v + 1) - out_off.(v))
          + if directed then 0 else in_off.(v + 1) - in_off.(v)
      done;
      let bottom_up =
        match direction with
        | `Top_down -> false
        | `Bottom_up -> true
        | `Auto ->
            let m = inst.Snapshot.num_edges in
            let avg = max 1 ((if directed then m else 2 * m) / max 1 n) in
            let bu_cost = (n - !covered) * avg in
            let alpha = if inst.Snapshot.stats.Snapshot.degree_p50 >= 8 then 2 else 4 in
            !td_cost > alpha * bu_cost
      in
      next_n := 0;
      let discover u fresh =
        let now = visited.(u) lor fresh in
        visited.(u) <- now;
        if now = full then incr covered;
        !next_word.(u) <- !next_word.(u) lor fresh;
        Gqkg_util.Bitset.word_iter fresh (fun s -> dists.(s).(u) <- !d)
      in
      if bottom_up then begin
        let cw = !cur_word in
        for u = 0 to n - 1 do
          let vis = visited.(u) in
          if vis land full <> full then begin
            let gain = ref 0 in
            (* Pull through the edges that point *at* u in the traversal:
               in-edges always, out-edges too when direction is ignored. *)
            let i = ref in_off.(u) in
            let fin = in_off.(u + 1) in
            while !i < fin && (!gain lor vis) land full <> full do
              gain := !gain lor cw.(in_nbr.(!i));
              incr i
            done;
            if not directed then begin
              let j = ref out_off.(u) in
              let fin = out_off.(u + 1) in
              while !j < fin && (!gain lor vis) land full <> full do
                gain := !gain lor cw.(out_nbr.(!j));
                incr j
              done
            end;
            let fresh = !gain land lnot vis land full in
            if fresh <> 0 then begin
              !next.(!next_n) <- u;
              incr next_n;
              discover u fresh
            end
          end
        done
      end
      else
        for i = 0 to !cur_n - 1 do
          let v = !cur.(i) in
          let w = !cur_word.(v) in
          let push u =
            let fresh = w land lnot visited.(u) land full in
            if fresh <> 0 then begin
              if !next_word.(u) = 0 then begin
                !next.(!next_n) <- u;
                incr next_n
              end;
              discover u fresh
            end
          in
          for j = out_off.(v) to out_off.(v + 1) - 1 do
            push out_nbr.(j)
          done;
          if not directed then
            for j = in_off.(v) to in_off.(v + 1) - 1 do
              push in_nbr.(j)
            done
        done;
      for i = 0 to !cur_n - 1 do
        !cur_word.(!cur.(i)) <- 0
      done;
      let t = !cur in
      cur := !next;
      next := t;
      cur_n := !next_n;
      let tw = !cur_word in
      cur_word := !next_word;
      next_word := tw
    done;
    for s = 0 to k - 1 do
      results.(!base + s) <- dists.(s)
    done;
    base := !base + k
  done;
  results

(* The [i]-th neighbor of [v] in the directed (out) or symmetric
   (out-then-in) neighborhood, or -1 past the end — lets the iterative
   DFS walk adjacency without materializing neighbor arrays. *)
let nth_neighbor inst ~directed v i =
  let out_off = inst.Snapshot.out_off in
  let odeg = out_off.(v + 1) - out_off.(v) in
  if i < odeg then inst.Snapshot.out_nbr.(out_off.(v) + i)
  else if directed then -1
  else begin
    let in_off = inst.Snapshot.in_off in
    let j = i - odeg in
    if j < in_off.(v + 1) - in_off.(v) then inst.Snapshot.in_nbr.(in_off.(v) + j) else -1
  end

(* Depth-first finishing order (used by SCC variants and as a generic
   traversal); iterative to survive deep graphs. *)
let dfs_finish_order ?(directed = true) inst =
  let n = inst.Snapshot.num_nodes in
  let visited = Array.make n false in
  let order = ref [] in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      let stack = Stack.create () in
      Stack.push (root, 0) stack;
      visited.(root) <- true;
      while not (Stack.is_empty stack) do
        let v, i = Stack.pop stack in
        let w = nth_neighbor inst ~directed v i in
        if w >= 0 then begin
          Stack.push (v, i + 1) stack;
          if not visited.(w) then begin
            visited.(w) <- true;
            Stack.push (w, 0) stack
          end
        end
        else order := v :: !order
      done
    end
  done;
  !order (* reverse finishing order: last finished first *)

(* Weakly connected components: labels in [0, count). *)
let weakly_connected_components inst =
  let n = inst.Snapshot.num_nodes in
  let uf = Gqkg_util.Union_find.create n in
  let esrc = inst.Snapshot.esrc and edst = inst.Snapshot.edst in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    ignore (Gqkg_util.Union_find.union uf esrc.(e) edst.(e))
  done;
  (Gqkg_util.Union_find.labeling uf, Gqkg_util.Union_find.components uf)

(* Tarjan's strongly connected components, iterative.  Returns component
   labels (in reverse topological order of the condensation) and count. *)
let strongly_connected_components inst =
  let n = inst.Snapshot.num_nodes in
  let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let scc_stack = Stack.create () in
  let counter = ref 0 and comp_count = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* Explicit DFS stack of (node, next-neighbor-index). *)
      let call_stack = Stack.create () in
      let start v =
        index.(v) <- !counter;
        lowlink.(v) <- !counter;
        incr counter;
        Stack.push v scc_stack;
        on_stack.(v) <- true;
        Stack.push (v, 0) call_stack
      in
      start root;
      while not (Stack.is_empty call_stack) do
        let v, i = Stack.pop call_stack in
        if i < out_off.(v + 1) - out_off.(v) then begin
          Stack.push (v, i + 1) call_stack;
          let w = out_nbr.(out_off.(v) + i) in
          if index.(w) < 0 then start w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          (* v is finished: propagate lowlink to the caller, pop an SCC
             if v is a root. *)
          (match Stack.top_opt call_stack with
          | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | None -> ());
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop scc_stack in
              on_stack.(w) <- false;
              comp.(w) <- !comp_count;
              if w = v then continue := false
            done;
            incr comp_count
          end
        end
      done
    end
  done;
  (comp, !comp_count)

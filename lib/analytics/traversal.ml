(* Basic graph traversals over the frozen columnar snapshot: breadth-
   first and depth-first orders, weakly connected components, and
   Tarjan's strongly connected components.  These are the "global
   properties" substrate of Section 2.1(iii) on which the analytics of
   Section 4.2 build.  Inner loops index the snapshot's CSR arrays
   directly — no per-node array materialization. *)

open Gqkg_graph

let out_neighbors inst v =
  let off = inst.Snapshot.out_off in
  Array.sub inst.Snapshot.out_nbr off.(v) (off.(v + 1) - off.(v))

let in_neighbors inst v =
  let off = inst.Snapshot.in_off in
  Array.sub inst.Snapshot.in_nbr off.(v) (off.(v + 1) - off.(v))

let all_neighbors inst v = Array.append (out_neighbors inst v) (in_neighbors inst v)

(* BFS order and distances from [source]; [directed] chooses whether to
   respect edge direction (default) or treat edges as symmetric. *)
let bfs ?(directed = true) inst ~source =
  let n = inst.Snapshot.num_nodes in
  let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
  let in_off = inst.Snapshot.in_off and in_nbr = inst.Snapshot.in_nbr in
  let dist = Array.make n (-1) in
  let order = ref [] in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    let d = dist.(v) + 1 in
    for i = out_off.(v) to out_off.(v + 1) - 1 do
      let w = out_nbr.(i) in
      if dist.(w) < 0 then begin
        dist.(w) <- d;
        Queue.push w queue
      end
    done;
    if not directed then
      for i = in_off.(v) to in_off.(v + 1) - 1 do
        let w = in_nbr.(i) in
        if dist.(w) < 0 then begin
          dist.(w) <- d;
          Queue.push w queue
        end
      done
  done;
  (dist, List.rev !order)

let bfs_distances ?directed inst ~source = fst (bfs ?directed inst ~source)

(* The [i]-th neighbor of [v] in the directed (out) or symmetric
   (out-then-in) neighborhood, or -1 past the end — lets the iterative
   DFS walk adjacency without materializing neighbor arrays. *)
let nth_neighbor inst ~directed v i =
  let out_off = inst.Snapshot.out_off in
  let odeg = out_off.(v + 1) - out_off.(v) in
  if i < odeg then inst.Snapshot.out_nbr.(out_off.(v) + i)
  else if directed then -1
  else begin
    let in_off = inst.Snapshot.in_off in
    let j = i - odeg in
    if j < in_off.(v + 1) - in_off.(v) then inst.Snapshot.in_nbr.(in_off.(v) + j) else -1
  end

(* Depth-first finishing order (used by SCC variants and as a generic
   traversal); iterative to survive deep graphs. *)
let dfs_finish_order ?(directed = true) inst =
  let n = inst.Snapshot.num_nodes in
  let visited = Array.make n false in
  let order = ref [] in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      let stack = Stack.create () in
      Stack.push (root, 0) stack;
      visited.(root) <- true;
      while not (Stack.is_empty stack) do
        let v, i = Stack.pop stack in
        let w = nth_neighbor inst ~directed v i in
        if w >= 0 then begin
          Stack.push (v, i + 1) stack;
          if not visited.(w) then begin
            visited.(w) <- true;
            Stack.push (w, 0) stack
          end
        end
        else order := v :: !order
      done
    end
  done;
  !order (* reverse finishing order: last finished first *)

(* Weakly connected components: labels in [0, count). *)
let weakly_connected_components inst =
  let n = inst.Snapshot.num_nodes in
  let uf = Gqkg_util.Union_find.create n in
  let esrc = inst.Snapshot.esrc and edst = inst.Snapshot.edst in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    ignore (Gqkg_util.Union_find.union uf esrc.(e) edst.(e))
  done;
  (Gqkg_util.Union_find.labeling uf, Gqkg_util.Union_find.components uf)

(* Tarjan's strongly connected components, iterative.  Returns component
   labels (in reverse topological order of the condensation) and count. *)
let strongly_connected_components inst =
  let n = inst.Snapshot.num_nodes in
  let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let scc_stack = Stack.create () in
  let counter = ref 0 and comp_count = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* Explicit DFS stack of (node, next-neighbor-index). *)
      let call_stack = Stack.create () in
      let start v =
        index.(v) <- !counter;
        lowlink.(v) <- !counter;
        incr counter;
        Stack.push v scc_stack;
        on_stack.(v) <- true;
        Stack.push (v, 0) call_stack
      in
      start root;
      while not (Stack.is_empty call_stack) do
        let v, i = Stack.pop call_stack in
        if i < out_off.(v + 1) - out_off.(v) then begin
          Stack.push (v, i + 1) call_stack;
          let w = out_nbr.(out_off.(v) + i) in
          if index.(w) < 0 then start w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          (* v is finished: propagate lowlink to the caller, pop an SCC
             if v is a root. *)
          (match Stack.top_opt call_stack with
          | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          | None -> ());
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop scc_stack in
              on_stack.(w) <- false;
              comp.(w) <- !comp_count;
              if w = v then continue := false
            done;
            incr comp_count
          end
        end
      done
    end
  done;
  (comp, !comp_count)

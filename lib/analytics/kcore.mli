(** k-core decomposition (Batagelj–Zaversnik peeling), undirected view
    with self-loops dropped. *)

open Gqkg_graph

(** Core number of every node: the largest k whose k-core contains it. *)
val core_numbers : Snapshot.t -> int array

(** Members of the k-core (possibly empty), ascending. *)
val core : Snapshot.t -> k:int -> int list

(** The largest k with a non-empty k-core. *)
val degeneracy : Snapshot.t -> int

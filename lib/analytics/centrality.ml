(* Centrality measures of Section 4.2: betweenness centrality bc(x)
   [Freeman 1977] computed with Brandes' algorithm, plus the PageRank,
   HITS, degree and closeness measures the section cites as typical
   analytics.  The regex-constrained bc_r lives in {!Regex_centrality}. *)

open Gqkg_graph

(* Brandes' algorithm.  For every source s, one BFS computes the shortest-
   path counts σ and the shortest-path DAG; a reverse sweep accumulates
   the pair dependencies δ onto intermediate nodes.  With [directed:false]
   edges are treated as symmetric and, following convention, each
   unordered pair is counted once (the directed sum is halved).

   [brandes_range] runs the passes for sources in [first, last) with
   private scratch state, returning the partial scores — the unit of
   work both the sequential driver and the domain pool slice over. *)
let brandes_range ~directed inst first last =
  let n = inst.Snapshot.num_nodes in
  let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
  let in_off = inst.Snapshot.in_off and in_nbr = inst.Snapshot.in_nbr in
  let bc = Array.make n 0.0 in
  let dist = Array.make n (-1) in
  let sigma = Array.make n 0.0 in
  let delta = Array.make n 0.0 in
  let preds = Array.make n [] in
  for s = first to last - 1 do
    Array.fill dist 0 n (-1);
    Array.fill sigma 0 n 0.0;
    Array.fill delta 0 n 0.0;
    Array.fill preds 0 n [];
    dist.(s) <- 0;
    sigma.(s) <- 1.0;
    let order = ref [] in
    let queue = Queue.create () in
    Queue.push s queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      order := v :: !order;
      (* The per-edge relaxation indexes the CSR arrays directly — no
         closure call and no neighbor-array allocation on this path. *)
      let dv1 = dist.(v) + 1 and sv = sigma.(v) in
      for i = out_off.(v) to out_off.(v + 1) - 1 do
        let w = out_nbr.(i) in
        if dist.(w) < 0 then begin
          dist.(w) <- dv1;
          Queue.push w queue
        end;
        if dist.(w) = dv1 then begin
          sigma.(w) <- sigma.(w) +. sv;
          preds.(w) <- v :: preds.(w)
        end
      done;
      if not directed then
        for i = in_off.(v) to in_off.(v + 1) - 1 do
          let w = in_nbr.(i) in
          if dist.(w) < 0 then begin
            dist.(w) <- dv1;
            Queue.push w queue
          end;
          if dist.(w) = dv1 then begin
            sigma.(w) <- sigma.(w) +. sv;
            preds.(w) <- v :: preds.(w)
          end
        done
    done;
    (* Reverse BFS order: accumulate dependencies. *)
    List.iter
      (fun w ->
        List.iter
          (fun v -> delta.(v) <- delta.(v) +. (sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w))))
          preds.(w);
        if w <> s then bc.(w) <- bc.(w) +. delta.(w))
      !order
  done;
  bc

let betweenness ?(directed = true) inst =
  let n = inst.Snapshot.num_nodes in
  let bc = brandes_range ~directed inst 0 n in
  if not directed then Array.map (fun x -> x /. 2.0) bc else bc

(* Naive betweenness straight from Freeman's formula, by enumerating all
   shortest paths pair by pair; exponential in the worst case, used as
   the test oracle for Brandes. *)
let betweenness_naive ?(directed = true) inst =
  let n = inst.Snapshot.num_nodes in
  let neighbors v =
    if directed then Traversal.out_neighbors inst v else Traversal.all_neighbors inst v
  in
  let bc = Array.make n 0.0 in
  for a = 0 to n - 1 do
    let dist = Traversal.bfs_distances ~directed inst ~source:a in
    for b = 0 to n - 1 do
      if b <> a && dist.(b) > 0 then begin
        (* All shortest a→b paths by DFS descending the BFS levels. *)
        let through = Array.make n 0 in
        let total = ref 0 in
        let rec walk v visited =
          if v = b then begin
            incr total;
            List.iter (fun x -> through.(x) <- through.(x) + 1) visited
          end
          else
            Array.iter
              (fun w -> if dist.(w) = dist.(v) + 1 && dist.(w) <= dist.(b) then
                  walk w (if w <> b then w :: visited else visited))
              (neighbors v)
        in
        walk a [];
        if !total > 0 then
          for x = 0 to n - 1 do
            if x <> a && x <> b && through.(x) > 0 then
              bc.(x) <- bc.(x) +. (float_of_int through.(x) /. float_of_int !total)
          done
      end
    done
  done;
  if not directed then Array.map (fun x -> x /. 2.0) bc else bc

(* PageRank by power iteration with uniform teleportation; dangling mass
   is redistributed uniformly.  Converges when the L1 change drops below
   [tolerance]. *)
let pagerank ?(damping = 0.85) ?(tolerance = 1e-10) ?(max_iterations = 200) inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then [||]
  else begin
    let rank = Array.make n (1.0 /. float_of_int n) in
    let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
    let next = Array.make n 0.0 in
    let iteration = ref 0 and converged = ref false in
    while (not !converged) && !iteration < max_iterations do
      Array.fill next 0 n 0.0;
      let dangling = ref 0.0 in
      for v = 0 to n - 1 do
        let deg = out_off.(v + 1) - out_off.(v) in
        if deg = 0 then dangling := !dangling +. rank.(v)
        else begin
          let share = rank.(v) /. float_of_int deg in
          for i = out_off.(v) to out_off.(v + 1) - 1 do
            let w = out_nbr.(i) in
            next.(w) <- next.(w) +. share
          done
        end
      done;
      let teleport = ((1.0 -. damping) +. (damping *. !dangling)) /. float_of_int n in
      let change = ref 0.0 in
      for v = 0 to n - 1 do
        let updated = teleport +. (damping *. next.(v)) in
        change := !change +. Float.abs (updated -. rank.(v));
        rank.(v) <- updated
      done;
      incr iteration;
      if !change < tolerance then converged := true
    done;
    rank
  end

(* HITS hubs and authorities [Kleinberg 1999], power iteration with L2
   normalization. *)
let hits ?(iterations = 50) inst =
  let n = inst.Snapshot.num_nodes in
  let hubs = Array.make n 1.0 and auth = Array.make n 1.0 in
  let normalize a =
    let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a) in
    if norm > 0.0 then Array.iteri (fun i x -> a.(i) <- x /. norm) a
  in
  let out_off = inst.Snapshot.out_off and out_nbr = inst.Snapshot.out_nbr in
  let in_off = inst.Snapshot.in_off and in_nbr = inst.Snapshot.in_nbr in
  for _ = 1 to iterations do
    for v = 0 to n - 1 do
      let acc = ref 0.0 in
      for i = in_off.(v) to in_off.(v + 1) - 1 do
        acc := !acc +. hubs.(in_nbr.(i))
      done;
      auth.(v) <- !acc
    done;
    normalize auth;
    for v = 0 to n - 1 do
      let acc = ref 0.0 in
      for i = out_off.(v) to out_off.(v + 1) - 1 do
        acc := !acc +. auth.(out_nbr.(i))
      done;
      hubs.(v) <- !acc
    done;
    normalize hubs
  done;
  (hubs, auth)

let degree ?(directed = true) inst =
  Array.init inst.Snapshot.num_nodes (fun v ->
      let out = Snapshot.out_degree inst v in
      if directed then out else out + Snapshot.in_degree inst v)

(* Closeness centrality: (reachable count - 1)² / (n-1) / total distance,
   the Wasserman–Faust generalization that handles disconnected graphs. *)
let closeness ?(directed = false) inst =
  let n = inst.Snapshot.num_nodes in
  Array.init n (fun v ->
      let dist = Traversal.bfs_distances ~directed inst ~source:v in
      let reachable = ref 0 and total = ref 0 in
      Array.iter
        (fun d ->
          if d > 0 then begin
            incr reachable;
            total := !total + d
          end)
        dist;
      if !total = 0 || n <= 1 then 0.0
      else begin
        let r = float_of_int !reachable in
        r *. r /. (float_of_int (n - 1) *. float_of_int !total)
      end)

(* Rank nodes by score, descending, ties by index. *)
let ranking scores =
  let order = Array.init (Array.length scores) Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare scores.(b) scores.(a) in
      if c <> 0 then c else Int.compare a b)
    order;
  order

(* Eigenvector centrality: the dominant eigenvector of the (undirected)
   adjacency operator, by power iteration with L2 normalization. *)
let eigenvector ?(iterations = 100) ?(tolerance = 1e-10) inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then [||]
  else begin
    let x = Array.make n (1.0 /. sqrt (float_of_int n)) in
    let esrc = inst.Snapshot.esrc and edst = inst.Snapshot.edst in
    let next = Array.make n 0.0 in
    let i = ref 0 and converged = ref false in
    while (not !converged) && !i < iterations do
      Array.fill next 0 n 0.0;
      for e = 0 to inst.Snapshot.num_edges - 1 do
        let s = esrc.(e) and d = edst.(e) in
        next.(d) <- next.(d) +. x.(s);
        next.(s) <- next.(s) +. x.(d)
      done;
      let norm = sqrt (Array.fold_left (fun acc y -> acc +. (y *. y)) 0.0 next) in
      if norm = 0.0 then converged := true
      else begin
        let change = ref 0.0 in
        for v = 0 to n - 1 do
          let y = next.(v) /. norm in
          change := !change +. Float.abs (y -. x.(v));
          x.(v) <- y
        done;
        if !change < tolerance then converged := true
      end;
      incr i
    done;
    x
  end

(* Katz centrality: x = alpha * A^T x + beta, by fixed-point iteration.
   Converges when alpha is below 1 / (spectral radius); the default is
   conservative for our sparse workloads. *)
let katz ?(alpha = 0.05) ?(beta = 1.0) ?(iterations = 200) ?(tolerance = 1e-10) inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then [||]
  else begin
    let x = Array.make n beta in
    let in_off = inst.Snapshot.in_off and in_nbr = inst.Snapshot.in_nbr in
    let next = Array.make n 0.0 in
    let i = ref 0 and converged = ref false in
    while (not !converged) && !i < iterations do
      Array.fill next 0 n beta;
      for v = 0 to n - 1 do
        (* Katz credits a node for its in-neighbors' scores. *)
        for i = in_off.(v) to in_off.(v + 1) - 1 do
          next.(v) <- next.(v) +. (alpha *. x.(in_nbr.(i)))
        done
      done;
      let change = ref 0.0 in
      for v = 0 to n - 1 do
        change := !change +. Float.abs (next.(v) -. x.(v));
        x.(v) <- next.(v)
      done;
      if !change < tolerance then converged := true;
      incr i
    done;
    x
  end

(* Multicore Brandes: per-source passes are independent, so sources are
   sliced across the {!Gqkg_util.Parallel} domain pool and the per-slice
   partial scores are summed in slice order (deterministic float
   reduction).  The instance must be safe for concurrent reads (all
   builtin models are immutable once frozen). *)
let betweenness_parallel ?(domains = 0) ?(directed = true) inst =
  let n = inst.Snapshot.num_nodes in
  let domains = if domains > 0 then domains else Gqkg_util.Parallel.default_domains () in
  if domains <= 1 || n < 64 then betweenness ~directed inst
  else begin
    let partials = Gqkg_util.Parallel.map_slices ~domains n (brandes_range ~directed inst) in
    let total =
      List.fold_left
        (fun into partial -> Gqkg_util.Parallel.sum_float_arrays ~into partial)
        (Array.make n 0.0) partials
    in
    if not directed then Array.map (fun x -> x /. 2.0) total else total
  end

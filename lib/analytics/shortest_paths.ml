(* Shortest-path computations named in Section 4.2's analytics toolbox:
   single-source unweighted (BFS) and weighted (Dijkstra) distances,
   all-pairs distances, and the exact and two-sweep-approximate diameter. *)

open Gqkg_graph
open Gqkg_util

let single_source ?(directed = true) inst ~source = Traversal.bfs_distances ~directed inst ~source

(* Dijkstra with a caller-supplied non-negative edge weight. *)
let dijkstra ?(directed = true) inst ~source ~weight =
  let n = inst.Snapshot.num_nodes in
  let dist = Array.make n infinity in
  let heap = Heap.create (-1) in
  dist.(source) <- 0.0;
  Heap.add heap ~key:0.0 source;
  while not (Heap.is_empty heap) do
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if d <= dist.(v) then begin
          let relax e w =
            let weight_e = weight e in
            if weight_e < 0.0 then invalid_arg "Shortest_paths.dijkstra: negative weight";
            let candidate = dist.(v) +. weight_e in
            if candidate < dist.(w) then begin
              dist.(w) <- candidate;
              Heap.add heap ~key:candidate w
            end
          in
          Array.iter (fun (e, w) -> relax e w) ((Snapshot.out_pairs inst) v);
          if not directed then Array.iter (fun (e, w) -> relax e w) ((Snapshot.in_pairs inst) v)
        end
  done;
  dist

(* All-pairs BFS; O(n·(n+m)) but batched [Bitset.bits_per_word] sources
   per adjacency sweep through the multi-source frontier engine — the
   right tool at our graph scales. *)
let all_pairs ?budget ?(directed = true) inst =
  Traversal.bfs_distances_many ?budget ~directed inst
    ~sources:(Array.init inst.Snapshot.num_nodes Fun.id)

(* Exact diameter: the maximum finite eccentricity (ignoring unreachable
   pairs); [None] for the empty graph. *)
let diameter ?budget ?(directed = false) inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then None
  else begin
    let best = ref 0 in
    Array.iter
      (Array.iter (fun d -> if d > !best then best := d))
      (Traversal.bfs_distances_many ?budget ~directed inst ~sources:(Array.init n Fun.id));
    Some !best
  end

(* Double-sweep lower bound on the diameter: BFS from a seed, then BFS
   from the farthest node found.  Classic, cheap and usually tight on
   real-world graphs. *)
let diameter_double_sweep ?(directed = false) ?(seed = 0) inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then None
  else begin
    let farthest dist =
      let best = ref 0 and best_d = ref (-1) in
      Array.iteri
        (fun v d ->
          if d > !best_d then begin
            best := v;
            best_d := d
          end)
        dist;
      (!best, !best_d)
    in
    let d1 = single_source ~directed inst ~source:(seed mod n) in
    let far, _ = farthest d1 in
    let d2 = single_source ~directed inst ~source:far in
    let _, ecc = farthest d2 in
    Some ecc
  end

(* Average distance over reachable ordered pairs. *)
let average_distance ?budget ?(directed = false) inst =
  let n = inst.Snapshot.num_nodes in
  let total = ref 0 and pairs = ref 0 in
  let dists = Traversal.bfs_distances_many ?budget ~directed inst ~sources:(Array.init n Fun.id) in
  for source = 0 to n - 1 do
    Array.iteri
      (fun v d ->
        if v <> source && d >= 0 then begin
          total := !total + d;
          incr pairs
        end)
      dists.(source)
  done;
  if !pairs = 0 then None else Some (float_of_int !total /. float_of_int !pairs)

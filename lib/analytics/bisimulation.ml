(* Forward bisimulation and its quotient over labeled graphs: the
   classic structural index of semi-structured databases (the "1-index").
   Two nodes are equivalent when they have the same label and, for every
   edge label, reach the same set of equivalence classes.  Forward
   regular path queries (node tests, forward label steps, + / ∘ / star)
   cannot distinguish bisimilar nodes, so they can be answered on the
   (often much smaller) quotient and expanded — checked by the tests.

   Computed by naive partition refinement (Kanellakis-Smolka style):
   refine each block by the signature {(edge label, successor block)}
   until stable. *)

open Gqkg_graph

type t = {
  block_of : int array; (* node -> block *)
  num_blocks : int;
  members : int list array; (* block -> nodes, ascending *)
  quotient : Labeled_graph.t; (* one node per block, one edge per (block, label, block) *)
}

let compute lg =
  let n = Labeled_graph.num_nodes lg in
  let normalize keys =
    let palette = Hashtbl.create 16 in
    let out =
      Array.map
        (fun key ->
          match Hashtbl.find_opt palette key with
          | Some id -> id
          | None ->
              let id = Hashtbl.length palette in
              Hashtbl.add palette key id;
              id)
        keys
    in
    (out, Hashtbl.length palette)
  in
  (* Initial partition: by node label. *)
  let block, count = normalize (Array.init n (fun v -> Labeled_graph.node_label lg v)) in
  let block = ref block and count = ref count in
  let stable = ref (n = 0) in
  while not !stable do
    let signatures =
      Array.init n (fun v ->
          let succ = ref [] in
          Array.iter
            (fun (e, w) -> succ := (Labeled_graph.edge_label lg e, !block.(w)) :: !succ)
            (Labeled_graph.out_edges lg v);
          (!block.(v), List.sort_uniq compare !succ))
    in
    let next, next_count = normalize signatures in
    if next_count = !count then stable := true
    else begin
      block := next;
      count := next_count
    end
  done;
  let block = !block and num_blocks = !count in
  let members = Array.make (max num_blocks 1) [] in
  for v = n - 1 downto 0 do
    members.(block.(v)) <- v :: members.(block.(v))
  done;
  (* The quotient graph: blocks keep their members' (shared) label; one
     edge per distinct (source block, edge label, target block). *)
  let b = Labeled_graph.Builder.create () in
  let block_node =
    Array.init num_blocks (fun i ->
        let witness = List.hd members.(i) in
        Labeled_graph.Builder.add_node b
          (Const.str (Printf.sprintf "B%d" i))
          ~label:(Labeled_graph.node_label lg witness))
  in
  let seen = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    Array.iter
      (fun (e, w) ->
        let key = (block.(v), Labeled_graph.edge_label lg e, block.(w)) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          let _, label, _ = key in
          ignore
            (Labeled_graph.Builder.fresh_edge b ~src:block_node.(block.(v)) ~dst:block_node.(block.(w))
               ~label)
        end)
      (Labeled_graph.out_edges lg v)
  done;
  { block_of = block; num_blocks; members; quotient = Labeled_graph.Builder.freeze b }

(* Is the regex in the forward fragment the index is sound for?  Node
   tests are block-consistent (blocks are label-uniform) as long as they
   only test labels; backward steps break forward bisimulation. *)
let rec forward_fragment = function
  | Gqkg_automata.Regex.Node_test t | Gqkg_automata.Regex.Fwd t -> label_test_only t
  | Gqkg_automata.Regex.Bwd _ -> false
  | Gqkg_automata.Regex.Alt (a, b) | Gqkg_automata.Regex.Seq (a, b) ->
      forward_fragment a && forward_fragment b
  | Gqkg_automata.Regex.Star r -> forward_fragment r

and label_test_only = function
  | Gqkg_automata.Regex.Atom (Atom.Label _) -> true
  | Gqkg_automata.Regex.Atom (Atom.Prop _ | Atom.Feature _) -> false
  | Gqkg_automata.Regex.Not t -> label_test_only t
  | Gqkg_automata.Regex.Or (a, b) | Gqkg_automata.Regex.And (a, b) ->
      label_test_only a && label_test_only b

(* Node extraction through the index: bisimilar nodes have identical
   forward path languages, so whether a node can start an r-path is a
   property of its block.  Evaluate source blocks on the quotient and
   expand — exact for the forward fragment (raises outside it). *)
let source_nodes_via_quotient ?max_length index regex =
  if not (forward_fragment regex) then
    invalid_arg "Bisimulation: regex outside the forward label fragment";
  let source_blocks =
    Gqkg_core.Rpq.source_nodes ?max_length (Snapshot.of_labeled index.quotient) regex
  in
  List.concat_map (fun b -> index.members.(b)) source_blocks |> List.sort_uniq compare

(** Whole-graph descriptive statistics (the "datasets table" numbers). *)

open Gqkg_graph

(** (degree, node count) pairs, ascending. *)
val degree_histogram : ?directed:bool -> Snapshot.t -> (int * int) list

(** Fraction of directed edges whose reverse exists (self-loops
    ignored). *)
val reciprocity : Snapshot.t -> float

(** Pearson degree assortativity over undirected edges [Newman 2002]. *)
val degree_assortativity : Snapshot.t -> float

type summary = {
  nodes : int;
  edges : int;
  self_loops : int;
  density : float;
  mean_degree : float;
  max_degree : int;
  reciprocity : float;
  assortativity : float;
  components : int;
  transitivity : float;
}

val summarize : Snapshot.t -> summary
val pp_summary : Format.formatter -> summary -> unit

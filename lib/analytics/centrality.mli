(** Centrality measures (Section 4.2): Brandes betweenness, PageRank,
    HITS, degree, closeness, eigenvector and Katz. The regex-constrained
    bc_r lives in {!Regex_centrality}. *)

open Gqkg_graph

(** Brandes' betweenness. With [directed:false] edges are symmetric and
    each unordered pair is counted once. *)
val betweenness : ?directed:bool -> Snapshot.t -> float array

(** Freeman's formula by brute-force shortest-path enumeration: the test
    oracle for {!betweenness}. *)
val betweenness_naive : ?directed:bool -> Snapshot.t -> float array

(** Power iteration with uniform teleportation; dangling mass
    redistributed uniformly. Sums to 1. *)
val pagerank : ?damping:float -> ?tolerance:float -> ?max_iterations:int -> Snapshot.t -> float array

(** Kleinberg's (hubs, authorities), L2-normalized. *)
val hits : ?iterations:int -> Snapshot.t -> float array * float array

(** Out-degree, or total degree with [directed:false]. *)
val degree : ?directed:bool -> Snapshot.t -> int array

(** Wasserman–Faust closeness (handles disconnected graphs). *)
val closeness : ?directed:bool -> Snapshot.t -> float array

(** Node indexes sorted by score descending, ties by index. *)
val ranking : float array -> int array

(** Dominant eigenvector of the undirected adjacency operator. *)
val eigenvector : ?iterations:int -> ?tolerance:float -> Snapshot.t -> float array

(** Katz centrality x = α·Aᵀx + β; converges for α below the inverse
    spectral radius. *)
val katz : ?alpha:float -> ?beta:float -> ?iterations:int -> ?tolerance:float -> Snapshot.t -> float array

(** {!betweenness} with sources sliced across OCaml 5 domains
    ([domains] 0 = auto). The instance must tolerate concurrent reads
    (all builtin models do — they are immutable once frozen). Falls back
    to the sequential pass on small graphs. *)
val betweenness_parallel : ?domains:int -> ?directed:bool -> Snapshot.t -> float array

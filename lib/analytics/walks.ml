(* Walk counting: Section 4.2 notes that "given a labeled graph L, a pair
   of nodes a, b and a length k, count the number of paths of length k
   from a to b" is efficiently solvable — it is the k-step walk count,
   computed by dynamic programming (equivalently, powers of the adjacency
   matrix).  The contrast with the regex-constrained variant (intractable,
   Section 4.1) is experiment E4's backdrop. *)

open Gqkg_graph

(* walks.(v) after the call = number of directed walks of length k from
   [source] ending at v.  Floats, as counts grow exponentially. *)
let counts_from ?(directed = true) inst ~source ~length =
  let n = inst.Snapshot.num_nodes in
  let current = Array.make n 0.0 in
  current.(source) <- 1.0;
  let next = Array.make n 0.0 in
  for _ = 1 to length do
    Array.fill next 0 n 0.0;
    for v = 0 to n - 1 do
      if current.(v) > 0.0 then begin
        Array.iter (fun (_e, w) -> next.(w) <- next.(w) +. current.(v)) ((Snapshot.out_pairs inst) v);
        if not directed then
          Array.iter (fun (_e, u) -> next.(u) <- next.(u) +. current.(v)) ((Snapshot.in_pairs inst) v)
      end
    done;
    Array.blit next 0 current 0 n
  done;
  current

(* Number of length-k walks from a to b. *)
let count ?directed inst ~source ~target ~length =
  (counts_from ?directed inst ~source ~length).(target)

(* Total number of length-k walks in the graph. *)
let total ?directed inst ~length =
  let acc = ref 0.0 in
  for source = 0 to inst.Snapshot.num_nodes - 1 do
    Array.iter (fun c -> acc := !acc +. c) (counts_from ?directed inst ~source ~length)
  done;
  !acc

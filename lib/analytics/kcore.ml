(* k-core decomposition: the standard density-stratification analytic
   (community detection's workhorse alongside densest subgraph,
   Section 4.2).  The k-core is the maximal subgraph where every node has
   degree >= k (undirected view); the core number of a node is the
   largest k whose core contains it.  Computed by the peeling algorithm
   of Batagelj & Zaversnik with a lazy bucket queue: decrease-key is
   emulated by reinsertion, stale entries are skipped. *)

open Gqkg_graph

(* Core number of every node. *)
let core_numbers inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then [||]
  else begin
    (* Undirected degrees; self-loops dropped (a loop cannot keep a node
       in a core by itself). *)
    let adj = Array.make n [] in
    for e = 0 to inst.Snapshot.num_edges - 1 do
      let s, d = (Snapshot.endpoints inst) e in
      if s <> d then begin
        adj.(s) <- d :: adj.(s);
        adj.(d) <- s :: adj.(d)
      end
    done;
    let degree = Array.map List.length adj in
    let max_degree = Array.fold_left max 0 degree in
    let buckets = Array.make (max_degree + 1) [] in
    Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) degree;
    let core = Array.make n 0 in
    let removed = Array.make n false in
    let watermark = ref 0 in
    let processed = ref 0 in
    let cursor = ref 0 in
    while !processed < n do
      (* Smallest non-empty bucket; it can fall below the cursor when
         degrees decrease, so rescan from 0 cheaply via the cursor only
         as a lower bound heuristic. *)
      cursor := 0;
      while buckets.(!cursor) = [] do
        incr cursor
      done;
      let b = !cursor in
      match buckets.(b) with
      | [] -> assert false
      | v :: rest ->
          buckets.(b) <- rest;
          (* Skip stale entries: already removed, or reinserted lower. *)
          if (not removed.(v)) && degree.(v) = b then begin
            removed.(v) <- true;
            incr processed;
            if b > !watermark then watermark := b;
            core.(v) <- !watermark;
            List.iter
              (fun w ->
                if (not removed.(w)) && degree.(w) > b then begin
                  degree.(w) <- degree.(w) - 1;
                  buckets.(degree.(w)) <- w :: buckets.(degree.(w))
                end)
              adj.(v)
          end
    done;
    core
  end

(* Nodes of the k-core (possibly empty). *)
let core inst ~k =
  let numbers = core_numbers inst in
  let out = ref [] in
  Array.iteri (fun v c -> if c >= k then out := v :: !out) numbers;
  List.rev !out

(* The largest k with a non-empty k-core (the graph's degeneracy). *)
let degeneracy inst =
  let numbers = core_numbers inst in
  Array.fold_left max 0 numbers

(** Regex-constrained betweenness centrality (Section 4.2):

    bc_r(x) = Σ over pairs (a,b), a≠x≠b, of |S_{a,b,r}(x)| / |S_{a,b,r}|

    where S_{a,b,r} is the set of shortest paths from a to b conforming
    to r and S_{a,b,r}(x) those containing x.

    Both algorithms accept an optional [budget]; a tripped budget skips
    the remaining sources, so partial scores are undercounts of the
    unbudgeted scores.  {!governed} adds the degradation ladder: exact
    first, falling back to the approximation when exact trips. *)

open Gqkg_graph

(** Exact bc_r by materializing every shortest matching path per pair
    (|S| can be exponential — that is the paper's point). [max_length]
    bounds the product search; [pair_limit] caps per-pair
    materialization as a safety valve. [domains] slices the independent
    per-source passes across OCaml domains over one shared,
    frontier-warmed product (replays are read-only); 0 or absent means
    {!Gqkg_util.Parallel.default_domains}. *)
val exact :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  ?pair_limit:int ->
  ?domains:int ->
  Snapshot.t ->
  Gqkg_automata.Regex.t ->
  float array

(** The randomized approximation the paper builds from the Section 4.1
    toolbox: [samples] uniform members of each S_{a,b,r} (backward
    sampling weighted by shortest-path counts) estimate the inclusion
    fractions. The RNG is derived per source from [seed], so the
    estimate does not depend on [domains] (up to float summation
    order). *)
val approximate :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  ?samples:int ->
  ?seed:int ->
  ?domains:int ->
  Snapshot.t ->
  Gqkg_automata.Regex.t ->
  float array

(** Budget-governed bc_r with graceful degradation: run {!exact} under
    [budget]; when it trips, rerun {!approximate} under a fresh budget
    with the same limits ({!Gqkg_util.Budget.similar}).  The tag says
    which pass produced the scores; completeness is [Complete] only if
    the pass that answered ran to completion. *)
val governed :
  budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  ?pair_limit:int ->
  ?samples:int ->
  ?seed:int ->
  ?domains:int ->
  Snapshot.t ->
  Gqkg_automata.Regex.t ->
  (float array * [ `Exact | `Approximate ]) Gqkg_util.Budget.outcome

(** Regex-constrained betweenness centrality (Section 4.2):

    bc_r(x) = Σ over pairs (a,b), a≠x≠b, of |S_{a,b,r}(x)| / |S_{a,b,r}|

    where S_{a,b,r} is the set of shortest paths from a to b conforming
    to r and S_{a,b,r}(x) those containing x. *)

open Gqkg_graph

(** Exact bc_r by materializing every shortest matching path per pair
    (|S| can be exponential — that is the paper's point). [max_length]
    bounds the product search; [pair_limit] caps per-pair
    materialization as a safety valve. [domains] slices the independent
    per-source passes across OCaml domains (each with its own product
    copy); 0 or absent means {!Gqkg_util.Parallel.default_domains}. *)
val exact :
  ?max_length:int ->
  ?pair_limit:int ->
  ?domains:int ->
  Snapshot.t ->
  Gqkg_automata.Regex.t ->
  float array

(** The randomized approximation the paper builds from the Section 4.1
    toolbox: [samples] uniform members of each S_{a,b,r} (backward
    sampling weighted by shortest-path counts) estimate the inclusion
    fractions. The RNG is derived per source from [seed], so the
    estimate does not depend on [domains] (up to float summation
    order). *)
val approximate :
  ?max_length:int ->
  ?samples:int ->
  ?seed:int ->
  ?domains:int ->
  Snapshot.t ->
  Gqkg_automata.Regex.t ->
  float array

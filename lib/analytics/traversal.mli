(** Basic traversals: BFS, DFS, weakly and strongly connected
    components — the "global properties" substrate of Section 2.1. *)

open Gqkg_graph

val out_neighbors : Snapshot.t -> int -> int array
val in_neighbors : Snapshot.t -> int -> int array

(** Out- and in-neighbors concatenated (undirected view). *)
val all_neighbors : Snapshot.t -> int -> int array

(** Distances (-1 = unreachable) and visit order from a source.
    [directed] (default true) selects whether edge direction matters. *)
val bfs : ?directed:bool -> Snapshot.t -> source:int -> int array * int list

val bfs_distances : ?directed:bool -> Snapshot.t -> source:int -> int array

(** Reverse finishing order of a full DFS (last finished first). *)
val dfs_finish_order : ?directed:bool -> Snapshot.t -> int list

(** Component labels in [\[0, count)] and the component count. *)
val weakly_connected_components : Snapshot.t -> int array * int

(** Tarjan; labels are in reverse topological order of the
    condensation. *)
val strongly_connected_components : Snapshot.t -> int array * int

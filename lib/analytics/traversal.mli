(** Basic traversals: BFS, DFS, weakly and strongly connected
    components — the "global properties" substrate of Section 2.1. *)

open Gqkg_graph

val out_neighbors : Snapshot.t -> int -> int array
val in_neighbors : Snapshot.t -> int -> int array

(** Out- and in-neighbors concatenated (undirected view). *)
val all_neighbors : Snapshot.t -> int -> int array

(** Distances (-1 = unreachable) and visit order from a source.
    [directed] (default true) selects whether edge direction matters. *)
val bfs : ?directed:bool -> Snapshot.t -> source:int -> int array * int list

val bfs_distances : ?directed:bool -> Snapshot.t -> source:int -> int array

(** Batched multi-source BFS (MS-BFS): up to
    {!Gqkg_util.Bitset.bits_per_word} sources per pass share one
    visited/frontier word per node, and levels expand top-down or
    bottom-up (Beamer) over the snapshot's CSRs.  [result.(i)] is
    bit-identical to [bfs_distances ~directed ~source:sources.(i)];
    [direction] forces one expansion mode for tests (default [`Auto]
    picks per level by a degree-stat cost heuristic).  A tripped
    [budget] stops between levels: unreached cells stay -1, written
    distances are exact. *)
val bfs_distances_many :
  ?budget:Gqkg_util.Budget.t ->
  ?direction:[ `Auto | `Bottom_up | `Top_down ] ->
  ?directed:bool ->
  Snapshot.t ->
  sources:int array ->
  int array array

(** Reverse finishing order of a full DFS (last finished first). *)
val dfs_finish_order : ?directed:bool -> Snapshot.t -> int list

(** Component labels in [\[0, count)] and the component count. *)
val weakly_connected_components : Snapshot.t -> int array * int

(** Tarjan; labels are in reverse topological order of the
    condensation. *)
val strongly_connected_components : Snapshot.t -> int array * int

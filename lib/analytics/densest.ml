(* Densest-subgraph discovery (Section 4.2 cites it as the flagship
   community-detection analytic [Goldberg 1984; Ma et al. 2020]):
   find S ⊆ N maximizing density(S) = |E(S)| / |S|, where E(S) are the
   edges with both endpoints in S (direction ignored, as standard).

   Two algorithms:
   - [charikar]: the greedy 2-approximation — repeatedly peel the node of
     minimum degree, remember the best prefix.  O((n+m) log n).
   - [goldberg]: the exact algorithm — binary search on the density g,
     each step deciding "is there S with density > g?" via a min-cut on
     Goldberg's network.  Since densities are rationals with denominator
     ≤ n·(n-1) apart, O(log(n·m)) cut computations suffice. *)

open Gqkg_graph

let density ~edges ~nodes = if nodes = 0 then 0.0 else float_of_int edges /. float_of_int nodes

(* Undirected simple view: for each node the multiset of neighbors
   (self-loops dropped, as they do not affect |E(S)|/|S| conventions). *)
let neighbor_lists inst =
  let n = inst.Snapshot.num_nodes in
  let adj = Array.make n [] in
  let m = ref 0 in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s <> d then begin
      adj.(s) <- d :: adj.(s);
      adj.(d) <- s :: adj.(d);
      incr m
    end
  done;
  (adj, !m)

let charikar inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then ([], 0.0)
  else begin
    let adj, m = neighbor_lists inst in
    let degree = Array.map List.length adj in
    let removed = Array.make n false in
    let heap = Gqkg_util.Heap.create (-1) in
    for v = 0 to n - 1 do
      Gqkg_util.Heap.add heap ~key:(float_of_int degree.(v)) v
    done;
    let remaining_nodes = ref n and remaining_edges = ref m in
    let best_density = ref (density ~edges:m ~nodes:n) in
    let best_cutoff = ref 0 (* number of removals before the best prefix *) in
    let removal_order = Array.make n (-1) in
    let removals = ref 0 in
    while !remaining_nodes > 0 do
      match Gqkg_util.Heap.pop heap with
      | None -> remaining_nodes := 0
      | Some (key, v) ->
          if (not removed.(v)) && int_of_float key = degree.(v) then begin
            removed.(v) <- true;
            removal_order.(!removals) <- v;
            incr removals;
            remaining_edges := !remaining_edges - degree.(v);
            decr remaining_nodes;
            List.iter
              (fun w ->
                if not removed.(w) then begin
                  degree.(w) <- degree.(w) - 1;
                  Gqkg_util.Heap.add heap ~key:(float_of_int degree.(w)) w
                end)
              adj.(v);
            let d = density ~edges:!remaining_edges ~nodes:!remaining_nodes in
            if !remaining_nodes > 0 && d > !best_density then begin
              best_density := d;
              best_cutoff := !removals
            end
          end
    done;
    (* The best subgraph: every node not removed within the first
       [best_cutoff] removals. *)
    let in_best = Array.make n true in
    for i = 0 to !best_cutoff - 1 do
      in_best.(removal_order.(i)) <- false
    done;
    let members = ref [] in
    for v = n - 1 downto 0 do
      if in_best.(v) then members := v :: !members
    done;
    (!members, !best_density)
  end

(* Is there a subgraph of density strictly above [g]?  Goldberg's network:
   source → each edge-node with capacity 1, edge-node → its endpoints
   with capacity ∞, each node → sink with capacity g.  The min cut equals
   m - max_S (|E(S)| - g·|S|); S recovers from the source side. *)
let goldberg_test inst ~g =
  let n = inst.Snapshot.num_nodes in
  let edges = ref [] in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s <> d then edges := (s, d) :: !edges
  done;
  let edges = Array.of_list !edges in
  let m = Array.length edges in
  if m = 0 then None
  else begin
    let source = n + m and sink = n + m + 1 in
    let net = Maxflow.create (n + m + 2) in
    Array.iteri
      (fun i (s, d) ->
        Maxflow.add_edge net ~src:source ~dst:(n + i) ~capacity:1.0;
        Maxflow.add_edge net ~src:(n + i) ~dst:s ~capacity:infinity;
        Maxflow.add_edge net ~src:(n + i) ~dst:d ~capacity:infinity)
      edges;
    for v = 0 to n - 1 do
      Maxflow.add_edge net ~src:v ~dst:sink ~capacity:g
    done;
    let flow = Maxflow.max_flow net ~source ~sink in
    if flow >= float_of_int m -. 1e-9 then None (* no subgraph beats density g *)
    else begin
      let side = Maxflow.min_cut_source_side net ~source in
      let members = ref [] in
      for v = n - 1 downto 0 do
        if side.(v) then members := v :: !members
      done;
      Some !members
    end
  end

let exact_density inst members =
  let in_set = Array.make inst.Snapshot.num_nodes false in
  List.iter (fun v -> in_set.(v) <- true) members;
  let edges = ref 0 in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s <> d && in_set.(s) && in_set.(d) then incr edges
  done;
  density ~edges:!edges ~nodes:(List.length members)

let goldberg inst =
  let n = inst.Snapshot.num_nodes in
  if n = 0 then ([], 0.0)
  else begin
    (* Binary search on g; stop when the interval is below the minimal
       gap 1/(n(n-1)) between distinct densities. *)
    let _, m = neighbor_lists inst in
    let lo = ref 0.0 and hi = ref (float_of_int m) in
    let best = ref (List.init n Fun.id) in
    (match goldberg_test inst ~g:0.0 with Some s when s <> [] -> best := s | _ -> ());
    let gap = 1.0 /. (float_of_int n *. float_of_int (max 1 (n - 1))) in
    while !hi -. !lo > gap /. 2.0 do
      let g = (!lo +. !hi) /. 2.0 in
      match goldberg_test inst ~g with
      | Some s when s <> [] ->
          best := s;
          lo := g
      | Some _ | None -> hi := g
    done;
    (!best, exact_density inst !best)
  end

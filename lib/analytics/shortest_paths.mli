(** Shortest-path computations (Section 4.2 analytics toolbox). *)

open Gqkg_graph

(** Unweighted single-source distances (BFS); -1 = unreachable. *)
val single_source : ?directed:bool -> Snapshot.t -> source:int -> int array

(** Dijkstra with a caller-supplied non-negative edge weight;
    [infinity] = unreachable. Raises on negative weights. *)
val dijkstra : ?directed:bool -> Snapshot.t -> source:int -> weight:(int -> float) -> float array

(** All-pairs BFS distances.  A tripped [budget] leaves unreached
    cells at -1; written distances are exact. *)
val all_pairs : ?budget:Gqkg_util.Budget.t -> ?directed:bool -> Snapshot.t -> int array array

(** Exact diameter over reachable pairs; [None] on the empty graph.
    Under a tripped [budget] the value is a lower bound. *)
val diameter : ?budget:Gqkg_util.Budget.t -> ?directed:bool -> Snapshot.t -> int option

(** Double-sweep lower bound (exact on trees, usually tight). *)
val diameter_double_sweep : ?directed:bool -> ?seed:int -> Snapshot.t -> int option

(** Mean distance over reachable ordered pairs. *)
val average_distance : ?budget:Gqkg_util.Budget.t -> ?directed:bool -> Snapshot.t -> float option

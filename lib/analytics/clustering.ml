(* Clustering and community structure (Section 4.2 cites clustering
   [Schaeffer 2007] and community detection among the typical analytic
   applications): local and global clustering coefficients and
   label-propagation community detection. *)

open Gqkg_graph
open Gqkg_util

(* Undirected simple adjacency sets (self-loops and parallel edges
   collapsed), the standard setting for clustering coefficients. *)
let simple_adjacency inst =
  let n = inst.Snapshot.num_nodes in
  let sets = Array.init n (fun _ -> Hashtbl.create 4) in
  for e = 0 to inst.Snapshot.num_edges - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s <> d then begin
      Hashtbl.replace sets.(s) d ();
      Hashtbl.replace sets.(d) s ()
    end
  done;
  Array.map (fun set -> Hashtbl.fold (fun v () acc -> v :: acc) set [] |> Array.of_list) sets

(* Local clustering coefficient of every node: the fraction of its
   neighbor pairs that are themselves adjacent. *)
let local_clustering inst =
  let adj = simple_adjacency inst in
  let member = Array.map (fun neigh -> let t = Hashtbl.create 4 in Array.iter (fun v -> Hashtbl.replace t v ()) neigh; t) adj in
  Array.map
    (fun neighbors ->
      let k = Array.length neighbors in
      if k < 2 then 0.0
      else begin
        let links = ref 0 in
        for i = 0 to k - 1 do
          for j = i + 1 to k - 1 do
            if Hashtbl.mem member.(neighbors.(i)) neighbors.(j) then incr links
          done
        done;
        2.0 *. float_of_int !links /. (float_of_int k *. float_of_int (k - 1))
      end)
    adj

let average_clustering inst =
  let local = local_clustering inst in
  if Array.length local = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 local /. float_of_int (Array.length local)

(* Transitivity: 3 × triangles / connected triples. *)
let transitivity inst =
  let adj = simple_adjacency inst in
  let member = Array.map (fun neigh -> let t = Hashtbl.create 4 in Array.iter (fun v -> Hashtbl.replace t v ()) neigh; t) adj in
  let closed = ref 0 and triples = ref 0 in
  Array.iteri
    (fun _v neighbors ->
      let k = Array.length neighbors in
      triples := !triples + (k * (k - 1) / 2);
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          if Hashtbl.mem member.(neighbors.(i)) neighbors.(j) then incr closed
        done
      done)
    adj;
  if !triples = 0 then 0.0 else float_of_int !closed /. float_of_int !triples

(* Asynchronous label propagation [Raghavan et al.]: each node adopts the
   majority label among its neighbors until a fixpoint (or the round
   limit).  Deterministic given the seed. *)
let label_propagation ?(seed = 1) ?(max_rounds = 100) inst =
  let n = inst.Snapshot.num_nodes in
  let adj = simple_adjacency inst in
  let labels = Array.init n Fun.id in
  let rng = Splitmix.create seed in
  let order = Array.init n Fun.id in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    Splitmix.shuffle_in_place rng order;
    Array.iter
      (fun v ->
        if Array.length adj.(v) > 0 then begin
          let votes = Hashtbl.create 4 in
          Array.iter
            (fun w ->
              let l = labels.(w) in
              Hashtbl.replace votes l (1 + Option.value (Hashtbl.find_opt votes l) ~default:0))
            adj.(v);
          (* Highest vote count; ties broken towards the smallest label for
             determinism. *)
          let best = ref labels.(v) and best_count = ref (-1) in
          Hashtbl.iter
            (fun l c ->
              if c > !best_count || (c = !best_count && l < !best) then begin
                best := l;
                best_count := c
              end)
            votes;
          if !best <> labels.(v) then begin
            labels.(v) <- !best;
            changed := true
          end
        end)
      order
  done;
  (* Re-number labels densely. *)
  let ids = Hashtbl.create 16 in
  Array.map
    (fun l ->
      match Hashtbl.find_opt ids l with
      | Some id -> id
      | None ->
          let id = Hashtbl.length ids in
          Hashtbl.add ids l id;
          id)
    labels

(* Newman's modularity of a node→community assignment, undirected view. *)
let modularity inst labels =
  let adj = simple_adjacency inst in
  let two_m = Array.fold_left (fun acc neigh -> acc + Array.length neigh) 0 adj in
  if two_m = 0 then 0.0
  else begin
    let inside = Hashtbl.create 16 and degree_sum = Hashtbl.create 16 in
    let bump tbl key v = Hashtbl.replace tbl key (v + Option.value (Hashtbl.find_opt tbl key) ~default:0) in
    Array.iteri
      (fun v neighbors ->
        bump degree_sum labels.(v) (Array.length neighbors);
        Array.iter (fun w -> if labels.(v) = labels.(w) then bump inside labels.(v) 1) neighbors)
      adj;
    let m2 = float_of_int two_m in
    Hashtbl.fold
      (fun community d acc ->
        let i = float_of_int (Option.value (Hashtbl.find_opt inside community) ~default:0) in
        let d = float_of_int d in
        acc +. ((i /. m2) -. (d /. m2 *. (d /. m2))))
      degree_sum 0.0
  end

(* Edge betweenness over an undirected adjacency restricted to active
   edges: Brandes' accumulation on edges instead of nodes.  [adj] maps a
   node to its (edge, neighbor) pairs. *)
let edge_betweenness_on ~num_nodes ~num_edges adj =
  let eb = Array.make num_edges 0.0 in
  let dist = Array.make num_nodes (-1) in
  let sigma = Array.make num_nodes 0.0 in
  let delta = Array.make num_nodes 0.0 in
  let preds = Array.make num_nodes [] in
  for s = 0 to num_nodes - 1 do
    Array.fill dist 0 num_nodes (-1);
    Array.fill sigma 0 num_nodes 0.0;
    Array.fill delta 0 num_nodes 0.0;
    Array.fill preds 0 num_nodes [];
    dist.(s) <- 0;
    sigma.(s) <- 1.0;
    let order = ref [] in
    let queue = Queue.create () in
    Queue.push s queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      order := v :: !order;
      List.iter
        (fun (e, w) ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.push w queue
          end;
          if dist.(w) = dist.(v) + 1 then begin
            sigma.(w) <- sigma.(w) +. sigma.(v);
            preds.(w) <- (v, e) :: preds.(w)
          end)
        adj.(v)
    done;
    List.iter
      (fun w ->
        List.iter
          (fun (v, e) ->
            let credit = sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w)) in
            eb.(e) <- eb.(e) +. credit;
            delta.(v) <- delta.(v) +. credit)
          preds.(w))
      !order
  done;
  (* Each unordered pair counted from both endpoints. *)
  Array.map (fun x -> x /. 2.0) eb

(* Girvan-Newman community detection: repeatedly remove the highest
   edge-betweenness edge; return the component labeling with the best
   modularity seen along the dendrogram.  O(m² n) — the classic
   divisive algorithm, for small and medium graphs. *)
let girvan_newman ?(max_removals = max_int) inst =
  let n = inst.Snapshot.num_nodes in
  let m = inst.Snapshot.num_edges in
  let removed = Array.make m false in
  (* Self-loops never separate anything; ignore them. *)
  for e = 0 to m - 1 do
    let s, d = (Snapshot.endpoints inst) e in
    if s = d then removed.(e) <- true
  done;
  let active_adjacency () =
    let adj = Array.make n [] in
    for e = 0 to m - 1 do
      if not removed.(e) then begin
        let s, d = (Snapshot.endpoints inst) e in
        adj.(s) <- (e, d) :: adj.(s);
        adj.(d) <- (e, s) :: adj.(d)
      end
    done;
    adj
  in
  let components () =
    let uf = Gqkg_util.Union_find.create n in
    for e = 0 to m - 1 do
      if not removed.(e) then begin
        let s, d = (Snapshot.endpoints inst) e in
        ignore (Gqkg_util.Union_find.union uf s d)
      end
    done;
    Gqkg_util.Union_find.labeling uf
  in
  let best_labels = ref (components ()) in
  let best_modularity = ref (modularity inst !best_labels) in
  let remaining = ref (Array.fold_left (fun acc r -> if r then acc else acc + 1) 0 removed) in
  let removals = ref 0 in
  while !remaining > 0 && !removals < max_removals do
    let eb = edge_betweenness_on ~num_nodes:n ~num_edges:m (active_adjacency ()) in
    (* Highest-betweenness active edge. *)
    let top = ref (-1) in
    Array.iteri (fun e score -> if (not removed.(e)) && (!top < 0 || score > eb.(!top)) then top := e) eb;
    if !top < 0 then remaining := 0
    else begin
      removed.(!top) <- true;
      decr remaining;
      incr removals;
      let labels = components () in
      let q = modularity inst labels in
      if q > !best_modularity then begin
        best_modularity := q;
        best_labels := labels
      end
    end
  done;
  (!best_labels, !best_modularity)

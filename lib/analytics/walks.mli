(** Walk counting — the tractable baseline of Section 4.2: the number of
    length-k walks between nodes is an easy dynamic program, in contrast
    to the SpanL-complete regex-constrained Count. Floats, as counts grow
    exponentially. *)

open Gqkg_graph

(** Walks of exactly [length] steps from [source], per end node. *)
val counts_from : ?directed:bool -> Snapshot.t -> source:int -> length:int -> float array

(** Number of length-k walks from a to b. *)
val count : ?directed:bool -> Snapshot.t -> source:int -> target:int -> length:int -> float

(** Total number of length-k walks. *)
val total : ?directed:bool -> Snapshot.t -> length:int -> float

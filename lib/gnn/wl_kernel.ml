(* The Weisfeiler-Lehman subtree kernel (Shervashidze et al.): graph
   similarity from the WL color refinement of Section 4.3.  Two graphs
   are compared by counting, at every refinement round, how many nodes
   carry each color; the kernel is the inner product of those count
   vectors across rounds.

   Colors must mean the same thing on both graphs, so refinement runs on
   the disjoint union (exactly like {!Wl.isomorphism_test}), for a fixed
   number of rounds [h]. *)

open Gqkg_graph

(* Per-round color histograms of a pair of graphs under joint
   refinement. *)
let joint_histograms ?(rounds = 3) ?(init1 = fun _ -> 0) ?(init2 = fun _ -> 0) inst1 inst2 =
  let open Snapshot in
  let n1 = inst1.num_nodes in
  let union = Snapshot.disjoint_union inst1 inst2 in
  let init v = if v < n1 then init1 v else init2 (v - n1) in
  (* Round-by-round refinement capped at [rounds], keeping every round's
     coloring (Wl.refine only returns the fixpoint, so redo the loop
     here with its signature discipline). *)
  let histograms = ref [] in
  let record colors =
    let h1 = Hashtbl.create 16 and h2 = Hashtbl.create 16 in
    Array.iteri
      (fun v c ->
        let h = if v < n1 then h1 else h2 in
        Hashtbl.replace h c (1 + Option.value (Hashtbl.find_opt h c) ~default:0))
      colors;
    histograms := (h1, h2) :: !histograms
  in
  let current = ref (Array.init union.num_nodes init) in
  let normalize colors =
    let palette = Hashtbl.create 16 in
    Array.map
      (fun c ->
        match Hashtbl.find_opt palette c with
        | Some id -> id
        | None ->
            let id = Hashtbl.length palette in
            Hashtbl.add palette c id;
            id)
      colors
  in
  current := normalize !current;
  record !current;
  for _ = 1 to rounds do
    let signatures =
      Array.init union.num_nodes (fun v ->
          let neigh = ref [] in
          Snapshot.iter_out union v (fun _e w -> neigh := !current.(w) :: !neigh);
          Snapshot.iter_in union v (fun _e u -> neigh := !current.(u) :: !neigh);
          (!current.(v), List.sort compare !neigh))
    in
    current := normalize signatures;
    record !current
  done;
  List.rev !histograms

(* The WL subtree kernel value: sum over rounds of the histogram inner
   products. *)
let kernel ?rounds ?init1 ?init2 inst1 inst2 =
  let histograms = joint_histograms ?rounds ?init1 ?init2 inst1 inst2 in
  List.fold_left
    (fun acc (h1, h2) ->
      Hashtbl.fold
        (fun color c1 acc ->
          match Hashtbl.find_opt h2 color with
          | Some c2 -> acc +. float_of_int (c1 * c2)
          | None -> acc)
        h1 acc)
    0.0 histograms

(* Normalized to [0, 1]: k(a,b) / sqrt(k(a,a) k(b,b)); 1.0 whenever WL
   cannot tell the graphs apart. *)
let similarity ?rounds ?init1 ?init2 inst1 inst2 =
  let k_ab = kernel ?rounds ?init1 ?init2 inst1 inst2 in
  let k_aa = kernel ?rounds ?init1 ?init2:init1 inst1 inst1 in
  let k_bb = kernel ?rounds ?init1:init2 ?init2 inst2 inst2 in
  if k_aa = 0.0 || k_bb = 0.0 then 0.0 else k_ab /. sqrt (k_aa *. k_bb)

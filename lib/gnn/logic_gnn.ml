(* The constructive half of the Section 4.3 correspondence: every graded
   modal logic formula is computed by an AC-GNN [Barceló et al. 2020,
   Proposition 4.1].

   The compilation assigns one embedding coordinate to every subformula
   (children before parents).  The input features put the truth value of
   the atomic subformulas in their coordinates; every layer then applies
   the same weights, which compute each operator from its children using
   the truncated ReLU σ:

     ¬g        σ(1 - x_g)
     g ∧ h     σ(x_g + x_h - 1)
     g ∨ h     σ(x_g + x_h)
     ◇≥k g     σ(Σ_{u∈N(v)} x_g(u) - (k - 1))
     atoms/⊤   preserved by the identity / constant bias

   With boolean inputs every coordinate stays in {0,1}, and after
   operator-depth(φ) layers the coordinate of φ holds its truth value at
   every node.  The classifier reads that coordinate.  Agreement with the
   direct evaluator {!Gqkg_logic.Gml.eval} is checked by property tests
   (E10), which is precisely the declarative-vs-procedural equivalence
   the tutorial highlights. *)

open Gqkg_graph
open Gqkg_logic
open Gqkg_util

type compiled = { gnn : Gnn.t; features : Snapshot.t -> int -> float array; formula : Gml.t }

let rec operator_depth = function
  | Gml.Atom _ | Gml.True -> 0
  | Gml.Not g -> 1 + operator_depth g
  | Gml.And (g, h) | Gml.Or (g, h) -> 1 + max (operator_depth g) (operator_depth h)
  | Gml.Diamond (_, g) -> 1 + operator_depth g

let compile formula =
  let subs = Array.of_list (Gml.subformulas formula) in
  let d = Array.length subs in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace index f i) subs;
  let coord f = Hashtbl.find index f in
  let combine = Vec.mat_create ~rows:d ~cols:d in
  let aggregate = Vec.mat_create ~rows:d ~cols:d in
  let bias = Array.make d 0.0 in
  Array.iteri
    (fun i f ->
      match f with
      | Gml.Atom _ -> Vec.set combine i i 1.0 (* copy forward *)
      | Gml.True -> bias.(i) <- 1.0
      | Gml.Not g ->
          Vec.set combine (coord g) i (-1.0);
          bias.(i) <- 1.0
      | Gml.And (g, h) ->
          (* g = h would need weight 2 on the shared coordinate; but then
             the subformula is equal to g and hash-consing in
             [subformulas] cannot produce it twice with distinct coords,
             so accumulate additively. *)
          Vec.set combine (coord g) i (Vec.get combine (coord g) i +. 1.0);
          Vec.set combine (coord h) i (Vec.get combine (coord h) i +. 1.0);
          bias.(i) <- -1.0
      | Gml.Or (g, h) ->
          Vec.set combine (coord g) i (Vec.get combine (coord g) i +. 1.0);
          Vec.set combine (coord h) i (Vec.get combine (coord h) i +. 1.0)
      | Gml.Diamond (k, g) ->
          Vec.set aggregate (coord g) i 1.0;
          bias.(i) <- -.float_of_int (k - 1))
    subs;
  let layer = { Gnn.combine; aggregate; bias } in
  let layers = List.init (max 1 (operator_depth formula)) (fun _ -> layer) in
  let classifier = Array.make d 0.0 in
  classifier.(coord formula) <- 1.0;
  let gnn = Gnn.make ~input_dim:d ~layers ~classifier ~threshold:0.5 in
  let features inst v =
    let x = Array.make d 0.0 in
    Array.iteri
      (fun i f ->
        match f with
        | Gml.Atom a -> if inst.Snapshot.node_atom v a then x.(i) <- 1.0
        | Gml.True -> x.(i) <- 1.0
        | Gml.Not _ | Gml.And _ | Gml.Or _ | Gml.Diamond _ -> ())
      subs;
    x
  in
  { gnn; features; formula }

(* Evaluate the compiled network as a unary query. *)
let classify compiled inst = Gnn.classify compiled.gnn inst ~features:(compiled.features inst)

let classified_nodes compiled inst =
  Gnn.classified_nodes compiled.gnn inst ~features:(compiled.features inst)

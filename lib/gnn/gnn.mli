(** Aggregate-combine graph neural networks (AC-GNNs) as unary queries
    (Section 4.3): x'_v = σ(x_v·C + (Σ_{u∈N(v)} x_u)·A + b) with σ the
    truncated ReLU, N(v) the undirected neighborhood, followed by a
    linear threshold classifier. *)

open Gqkg_graph
open Gqkg_util

type layer = { combine : Vec.mat; aggregate : Vec.mat; bias : Vec.vec }
type t

(** Validates all dimensions; raises on mismatch. *)
val make : input_dim:int -> layers:layer list -> classifier:Vec.vec -> threshold:float -> t

val num_layers : t -> int

(** Forward pass: final embedding of every node. [features v] must have
    [input_dim] entries. *)
val embeddings : t -> Snapshot.t -> features:(int -> float array) -> float array array

(** The network as a boolean unary query. *)
val classify : t -> Snapshot.t -> features:(int -> float array) -> bool array

val classified_nodes : t -> Snapshot.t -> features:(int -> float array) -> int list

(** Random AC-GNN with Gaussian weights (benchmark workloads). *)
val random : Splitmix.t -> input_dim:int -> widths:int list -> scale:float -> t

(** One-hot input features over the value palettes of a vector-labeled
    graph: (feature function, width). *)
val one_hot_features : Vector_graph.t -> (int -> float array) * int

(** Mean of the node embeddings: permutation-invariant graph-level
    readout. *)
val mean_pool : float array array -> float array

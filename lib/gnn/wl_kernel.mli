(** The Weisfeiler-Lehman subtree kernel (Shervashidze et al.): graph
    similarity from joint color refinement — rounds-wise inner products
    of color histograms. *)

open Gqkg_graph

(** Per-round (histogram₁, histogram₂) under joint refinement of the
    disjoint union, for rounds 0..[rounds]. *)
val joint_histograms :
  ?rounds:int ->
  ?init1:(int -> int) ->
  ?init2:(int -> int) ->
  Snapshot.t ->
  Snapshot.t ->
  ((int, int) Hashtbl.t * (int, int) Hashtbl.t) list

(** The raw kernel value. *)
val kernel : ?rounds:int -> ?init1:(int -> int) -> ?init2:(int -> int) -> Snapshot.t -> Snapshot.t -> float

(** Normalized to [0, 1]; exactly 1.0 when WL cannot tell the graphs
    apart. *)
val similarity :
  ?rounds:int -> ?init1:(int -> int) -> ?init2:(int -> int) -> Snapshot.t -> Snapshot.t -> float

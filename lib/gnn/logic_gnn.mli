(** The constructive half of the Section 4.3 correspondence: compile any
    graded modal logic formula to an AC-GNN computing it exactly
    (Barceló et al. 2020, Proposition 4.1). One embedding coordinate per
    subformula; operator-depth many identical layers; the classifier
    reads the root's coordinate. *)

open Gqkg_graph
open Gqkg_logic

type compiled = {
  gnn : Gnn.t;
  features : Snapshot.t -> int -> float array;  (** atomic truth values *)
  formula : Gml.t;
}

val operator_depth : Gml.t -> int
val compile : Gml.t -> compiled

(** The compiled network as a unary query — provably equal to
    {!Gqkg_logic.Gml.eval} (checked by the E10 property tests). *)
val classify : compiled -> Snapshot.t -> bool array

val classified_nodes : compiled -> Snapshot.t -> int list

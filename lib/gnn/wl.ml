(* The Weisfeiler-Lehman test (color refinement), Section 4.3's bridge
   between procedural and declarative node extraction: 1-WL has exactly
   the distinguishing power of AC-GNNs [Morris et al. 2019, Xu et al.
   2019] and of C² counting logic [Cai, Fürer & Immerman 1992].

   Each round recolors every node by its own color together with the
   multiset of its neighbors' colors; colors are interned to dense ints.
   The neighborhood is undirected (out- plus in-edges, multiplicity
   preserved), matching the aggregation of {!Gnn} and the ◇ of
   {!Gqkg_logic.Gml}. *)

open Gqkg_graph

type coloring = { colors : int array; rounds : int; num_colors : int }

(* Refine until stable (the partition stops splitting) or [max_rounds].
   [init] gives initial colors, e.g. from labels or feature vectors. *)
let refine ?(max_rounds = max_int) inst ~init =
  let n = inst.Snapshot.num_nodes in
  let colors = Array.init n init in
  (* Normalize initial colors to a dense palette. *)
  let normalize colors =
    let palette = Hashtbl.create 16 in
    let out =
      Array.map
        (fun c ->
          match Hashtbl.find_opt palette c with
          | Some id -> id
          | None ->
              let id = Hashtbl.length palette in
              Hashtbl.add palette c id;
              id)
        colors
    in
    (out, Hashtbl.length palette)
  in
  let colors, initial_count = normalize colors in
  let current = ref colors and count = ref initial_count and rounds = ref 0 in
  let stable = ref false in
  while (not !stable) && !rounds < max_rounds do
    let signatures =
      Array.init n (fun v ->
          let neigh = ref [] in
          Array.iter (fun (_e, w) -> neigh := !current.(w) :: !neigh) ((Snapshot.out_pairs inst) v);
          Array.iter (fun (_e, u) -> neigh := !current.(u) :: !neigh) ((Snapshot.in_pairs inst) v);
          (!current.(v), List.sort compare !neigh))
    in
    let next, next_count = normalize signatures in
    if next_count = !count then stable := true
    else begin
      current := next;
      count := next_count;
      incr rounds
    end
  done;
  { colors = !current; rounds = !rounds; num_colors = !count }

(* Uniform initial coloring: pure structure, no labels. *)
let refine_unlabeled ?max_rounds inst = refine ?max_rounds inst ~init:(fun _ -> 0)

(* Initial colors from the node's full feature vector (vector-labeled
   graphs): the setting of the GNN correspondence. *)
let refine_vector ?max_rounds vg =
  let inst = Snapshot.of_vector vg in
  refine ?max_rounds inst ~init:(fun v -> Hashtbl.hash (Vector_graph.node_vector vg v))

let color_histogram coloring =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    coloring.colors;
  Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [] |> List.sort compare

(* The WL graph-isomorphism test: refine the disjoint union and compare
   the color histograms of the two sides.  [`Distinguished] certifies
   non-isomorphism; [`Possibly_isomorphic] is WL's "maybe" (famously
   wrong on e.g. pairs of regular graphs — covered in tests). *)
let isomorphism_test ?(init1 = fun _ -> 0) ?(init2 = fun _ -> 0) inst1 inst2 =
  let open Snapshot in
  if inst1.num_nodes <> inst2.num_nodes || inst1.num_edges <> inst2.num_edges then `Distinguished
  else begin
    let n1 = inst1.num_nodes in
    let union = Snapshot.disjoint_union inst1 inst2 in
    let coloring = refine union ~init:(fun v -> if v < n1 then init1 v else init2 (v - n1)) in
    let hist side =
      let tbl = Hashtbl.create 16 in
      Array.iteri
        (fun v c ->
          if (side = 0 && v < n1) || (side = 1 && v >= n1) then
            Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
        coloring.colors;
      Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [] |> List.sort compare
    in
    if hist 0 = hist 1 then `Possibly_isomorphic else `Distinguished
  end

(* The Weisfeiler-Lehman test (color refinement), Section 4.3's bridge
   between procedural and declarative node extraction: 1-WL has exactly
   the distinguishing power of AC-GNNs [Morris et al. 2019, Xu et al.
   2019] and of C² counting logic [Cai, Fürer & Immerman 1992].

   Each round recolors every node by its own color together with the
   multiset of its neighbors' colors; colors are interned to dense ints.
   The neighborhood is undirected (out- plus in-edges, multiplicity
   preserved), matching the aggregation of {!Gnn} and the ◇ of
   {!Gqkg_logic.Gml}. *)

open Gqkg_graph

type coloring = { colors : int array; rounds : int; num_colors : int }

(* Refine until stable (the partition stops splitting) or [max_rounds].
   [init] gives initial colors, e.g. from labels or feature vectors. *)
let refine ?(max_rounds = max_int) inst ~init =
  let n = inst.Instance.num_nodes in
  let colors = Array.init n init in
  (* Normalize initial colors to a dense palette. *)
  let normalize colors =
    let palette = Hashtbl.create 16 in
    let out =
      Array.map
        (fun c ->
          match Hashtbl.find_opt palette c with
          | Some id -> id
          | None ->
              let id = Hashtbl.length palette in
              Hashtbl.add palette c id;
              id)
        colors
    in
    (out, Hashtbl.length palette)
  in
  let colors, initial_count = normalize colors in
  let current = ref colors and count = ref initial_count and rounds = ref 0 in
  let stable = ref false in
  while (not !stable) && !rounds < max_rounds do
    let signatures =
      Array.init n (fun v ->
          let neigh = ref [] in
          Array.iter (fun (_e, w) -> neigh := !current.(w) :: !neigh) (inst.Instance.out_edges v);
          Array.iter (fun (_e, u) -> neigh := !current.(u) :: !neigh) (inst.Instance.in_edges v);
          (!current.(v), List.sort compare !neigh))
    in
    let next, next_count = normalize signatures in
    if next_count = !count then stable := true
    else begin
      current := next;
      count := next_count;
      incr rounds
    end
  done;
  { colors = !current; rounds = !rounds; num_colors = !count }

(* Uniform initial coloring: pure structure, no labels. *)
let refine_unlabeled ?max_rounds inst = refine ?max_rounds inst ~init:(fun _ -> 0)

(* Initial colors from the node's full feature vector (vector-labeled
   graphs): the setting of the GNN correspondence. *)
let refine_vector ?max_rounds vg =
  let inst = Vector_graph.to_instance vg in
  refine ?max_rounds inst ~init:(fun v -> Hashtbl.hash (Vector_graph.node_vector vg v))

let color_histogram coloring =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    coloring.colors;
  Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [] |> List.sort compare

(* The WL graph-isomorphism test: refine the disjoint union and compare
   the color histograms of the two sides.  [`Distinguished] certifies
   non-isomorphism; [`Possibly_isomorphic] is WL's "maybe" (famously
   wrong on e.g. pairs of regular graphs — covered in tests). *)
let isomorphism_test ?(init1 = fun _ -> 0) ?(init2 = fun _ -> 0) inst1 inst2 =
  let open Instance in
  if inst1.num_nodes <> inst2.num_nodes || inst1.num_edges <> inst2.num_edges then `Distinguished
  else begin
    let n1 = inst1.num_nodes in
    let union =
      {
        num_nodes = n1 + inst2.num_nodes;
        num_edges = inst1.num_edges + inst2.num_edges;
        endpoints =
          (fun e ->
            if e < inst1.num_edges then inst1.endpoints e
            else begin
              let s, d = inst2.endpoints (e - inst1.num_edges) in
              (s + n1, d + n1)
            end);
        out_edges =
          (fun v ->
            if v < n1 then inst1.out_edges v
            else
              Array.map (fun (e, w) -> (e + inst1.num_edges, w + n1)) (inst2.out_edges (v - n1)));
        in_edges =
          (fun v ->
            if v < n1 then inst1.in_edges v
            else Array.map (fun (e, w) -> (e + inst1.num_edges, w + n1)) (inst2.in_edges (v - n1)));
        node_atom = (fun v a -> if v < n1 then inst1.node_atom v a else inst2.node_atom (v - n1) a);
        edge_atom =
          (fun e a ->
            if e < inst1.num_edges then inst1.edge_atom e a else inst2.edge_atom (e - inst1.num_edges) a);
        node_name = (fun v -> if v < n1 then inst1.node_name v else inst2.node_name (v - n1));
        edge_name =
          (fun e -> if e < inst1.num_edges then inst1.edge_name e else inst2.edge_name (e - inst1.num_edges));
        labels = None;
      }
    in
    let coloring = refine union ~init:(fun v -> if v < n1 then init1 v else init2 (v - n1)) in
    let hist side =
      let tbl = Hashtbl.create 16 in
      Array.iteri
        (fun v c ->
          if (side = 0 && v < n1) || (side = 1 && v >= n1) then
            Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
        coloring.colors;
      Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [] |> List.sort compare
    in
    if hist 0 = hist 1 then `Possibly_isomorphic else `Distinguished
  end

(** The Weisfeiler-Lehman test (1-WL color refinement) — Section 4.3's
    yardstick for AC-GNN expressiveness. The neighborhood is undirected
    with multiplicity, matching {!Gnn} aggregation and the ◇ of
    {!Gqkg_logic.Gml}. *)

open Gqkg_graph

type coloring = {
  colors : int array;  (** stable color per node, dense ids *)
  rounds : int;  (** refinement rounds until stability *)
  num_colors : int;
}

(** Refine to stability (or [max_rounds]); [init] gives initial colors
    (labels, feature hashes, ...). *)
val refine : ?max_rounds:int -> Snapshot.t -> init:(int -> int) -> coloring

(** Uniform initial coloring: pure structure. *)
val refine_unlabeled : ?max_rounds:int -> Snapshot.t -> coloring

(** Initial colors from the node's full feature vector. *)
val refine_vector : ?max_rounds:int -> Vector_graph.t -> coloring

(** (color, count) pairs, sorted by color. *)
val color_histogram : coloring -> (int * int) list

(** The WL isomorphism test on the disjoint union. [`Distinguished]
    certifies non-isomorphism; [`Possibly_isomorphic] is WL's "maybe"
    (wrong on e.g. pairs of regular graphs). *)
val isomorphism_test :
  ?init1:(int -> int) ->
  ?init2:(int -> int) ->
  Snapshot.t ->
  Snapshot.t ->
  [ `Distinguished | `Possibly_isomorphic ]

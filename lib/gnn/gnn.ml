(* Aggregate-combine graph neural networks (AC-GNNs) as unary queries
   (Section 4.3).  A layer computes, for every node v,

     x'_v = σ( x_v · C  +  (Σ_{u ∈ N(v)} x_u) · A  +  b )

   with σ the truncated ReLU (min(max(x,0),1)) — the activation of
   Barceló et al.'s logic-capturing construction.  N(v) is the undirected
   neighborhood (multiset, multiplicity by parallel edges), matching the
   ◇ of graded modal logic and the WL refinement.  After the layers, a
   linear classifier thresholds the final embedding: the network *is* a
   boolean unary query over vector-labeled graphs. *)

open Gqkg_graph
open Gqkg_util

type layer = { combine : Vec.mat; aggregate : Vec.mat; bias : Vec.vec }

type t = {
  input_dim : int;
  layers : layer list;
  classifier : Vec.vec; (* weight on the final embedding *)
  threshold : float; (* output true iff w·x >= threshold *)
}

let make ~input_dim ~layers ~classifier ~threshold =
  let dims_ok =
    List.fold_left
      (fun expected { combine; aggregate; bias } ->
        match expected with
        | None -> None
        | Some d ->
            if
              combine.Vec.rows = d && aggregate.Vec.rows = d
              && combine.Vec.cols = aggregate.Vec.cols
              && Array.length bias = combine.Vec.cols
            then Some combine.Vec.cols
            else None)
      (Some input_dim) layers
  in
  match dims_ok with
  | Some final when Array.length classifier = final -> { input_dim; layers; classifier; threshold }
  | Some _ -> invalid_arg "Gnn.make: classifier dimension mismatch"
  | None -> invalid_arg "Gnn.make: layer dimension mismatch"

let num_layers t = List.length t.layers

(* Forward pass: final embeddings of every node. [features v] must have
   [input_dim] entries. *)
let embeddings t inst ~features =
  let n = inst.Snapshot.num_nodes in
  let current =
    ref
      (Array.init n (fun v ->
           let x = features v in
           if Array.length x <> t.input_dim then invalid_arg "Gnn.embeddings: bad input width";
           x))
  in
  List.iter
    (fun { combine; aggregate; bias } ->
      let prev = !current in
      let next =
        Array.init n (fun v ->
            (* Sum of neighbor embeddings (undirected, with multiplicity). *)
            let agg = Array.make (Array.length prev.(v)) 0.0 in
            Array.iter (fun (_e, w) -> Vec.vec_add_in_place ~into:agg prev.(w)) ((Snapshot.out_pairs inst) v);
            Array.iter (fun (_e, u) -> Vec.vec_add_in_place ~into:agg prev.(u)) ((Snapshot.in_pairs inst) v);
            let own = Vec.vec_mat prev.(v) combine in
            let nbr = Vec.vec_mat agg aggregate in
            Array.mapi (fun i x -> Vec.truncated_relu (x +. nbr.(i) +. bias.(i))) own)
      in
      current := next)
    t.layers;
  !current

(* The network as a unary query: the set of nodes classified true. *)
let classify t inst ~features =
  let emb = embeddings t inst ~features in
  Array.map (fun x -> Vec.dot t.classifier x >= t.threshold) emb

let classified_nodes t inst ~features =
  let mask = classify t inst ~features in
  let out = ref [] in
  Array.iteri (fun v b -> if b then out := v :: !out) mask;
  List.rev !out

(* Random AC-GNN with the given layer widths (benchmark workloads; the
   paper's networks are not trained, they are studied as queries). *)
let random rng ~input_dim ~widths ~scale =
  let mat rows cols =
    let m = Vec.mat_create ~rows ~cols in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        Vec.set m r c (Splitmix.gaussian rng ~mu:0.0 ~sigma:scale)
      done
    done;
    m
  in
  let rec build prev = function
    | [] -> []
    | w :: rest ->
        { combine = mat prev w; aggregate = mat prev w; bias = Array.init w (fun _ -> Splitmix.gaussian rng ~mu:0.0 ~sigma:scale) }
        :: build w rest
  in
  let layers = build input_dim widths in
  let final = match List.rev widths with [] -> input_dim | w :: _ -> w in
  {
    input_dim;
    layers;
    classifier = Array.init final (fun _ -> Splitmix.gaussian rng ~mu:0.0 ~sigma:scale);
    threshold = 0.0;
  }

(* Standard input features for a vector-labeled graph: one-hot over the
   distinct constants appearing in each feature coordinate.  Returns the
   feature function and its width. *)
let one_hot_features vg =
  let d = Vector_graph.dimension vg in
  let n = Vector_graph.num_nodes vg in
  (* Per coordinate, the palette of values in use. *)
  let palettes = Array.init d (fun _ -> Hashtbl.create 8) in
  for v = 0 to n - 1 do
    let vec = Vector_graph.node_vector vg v in
    for i = 0 to d - 1 do
      let p = palettes.(i) in
      if not (Hashtbl.mem p vec.(i)) then Hashtbl.add p vec.(i) (Hashtbl.length p)
    done
  done;
  let offsets = Array.make (d + 1) 0 in
  for i = 0 to d - 1 do
    offsets.(i + 1) <- offsets.(i) + Hashtbl.length palettes.(i)
  done;
  let width = offsets.(d) in
  let features v =
    let x = Array.make width 0.0 in
    let vec = Vector_graph.node_vector vg v in
    for i = 0 to d - 1 do
      match Hashtbl.find_opt palettes.(i) vec.(i) with
      | Some slot -> x.(offsets.(i) + slot) <- 1.0
      | None -> ()
    done;
    x
  in
  (features, width)

(* Graph-level readout: the mean of the node embeddings (the simplest
   permutation-invariant pooling; graph classification extensions build
   on it). *)
let mean_pool embeddings =
  match Array.length embeddings with
  | 0 -> [||]
  | n ->
      let width = Array.length embeddings.(0) in
      let acc = Array.make width 0.0 in
      Array.iter (fun e -> Vec.vec_add_in_place ~into:acc e) embeddings;
      Array.map (fun x -> x /. float_of_int n) acc

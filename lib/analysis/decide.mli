(** Decision procedures for RPQs: emptiness, containment, equivalence,
    and minimization to a canonical automaton.

    The theory (Section 5 of the tutorial; complexity landscape in
    "Foundations of Modern Query Languages for Graph Databases") works
    over a finite alphabet. Guarded NFAs instead carry boolean tests, so
    the procedures first compile the test vocabulary into a finite
    alphabet of {e satisfiability signatures}: one letter per observable
    outcome vector of the distinct tests, enumerated against the schema
    vocabulary. Edge [Label] atoms are enumerated exactly (an edge
    carries exactly one label; a closed schema universe closes the
    choice set), node [Label] atoms are independent bits (nodes may
    carry several labels), and [Prop]/[Feature] atoms are free bits —
    an over-approximation, since value constraints can link them. The
    [exact] flag records whether any over-approximation happened:

    - [True] verdicts ([contains], [empty]) are always sound: they
      quantify over a superset of the realizable letters.
    - [False] verdicts are definitive only when the alphabet is exact
      (all tests label-pure); otherwise they degrade to [Unknown].

    Atoms are pinned true/false against the schema exactly as the
    GQ001/002/003 lint pass would ({!Analyze.schema_atom_verdict}), so
    containment and lint agree on out-of-vocabulary labels.

    Every procedure runs under an optional {!Budget} plus a state cap
    and degrades to [Unknown] (or [None] for {!canonicalize}) rather
    than hanging or raising. *)

open Gqkg_graph
open Gqkg_automata
module Budget = Gqkg_util.Budget

type verdict =
  | True
  | False
  | Unknown of string  (** why no definitive answer (budget, cap, bucketing) *)

val verdict_to_string : verdict -> string

(** A path matching [r1] but not [r2], reconstructed from the product
    search: [nodes] gives each path node's label set (length = edges
    + 1), [steps] each edge's orientation (true = forward) and label
    ([None]: any label outside the tested vocabulary works). Only
    produced when every letter on the refuting word is realizable by a
    plain labeled graph. *)
type witness = { nodes : Const.t list list; steps : (bool * Const.t option) list }

val witness_to_string : witness -> string

(** Is [[r]] empty on every graph over the (schema-restricted)
    vocabulary? *)
val empty : ?schema:Schema.t -> ?budget:Budget.t -> ?max_states:int -> Regex.t -> verdict

(** Does every path matching [r1] match [r2], on every graph over the
    vocabulary? *)
val contains :
  ?schema:Schema.t -> ?budget:Budget.t -> ?max_states:int -> Regex.t -> Regex.t -> verdict

(** Like {!contains}, with a refuting path when the answer is [False]
    (and one is realizable). *)
val contains_witness :
  ?schema:Schema.t ->
  ?budget:Budget.t ->
  ?max_states:int ->
  Regex.t ->
  Regex.t ->
  verdict * witness option

val equiv :
  ?schema:Schema.t -> ?budget:Budget.t -> ?max_states:int -> Regex.t -> Regex.t -> verdict

(** Containment directly on guarded automata (the planner's and the
    property tests' entry point). *)
val contains_nfa :
  ?schema:Schema.t ->
  ?budget:Budget.t ->
  ?max_states:int ->
  Nfa.t ->
  Nfa.t ->
  verdict * witness option

(** The canonical form of a query: determinize over the signature
    alphabet, trim, minimize (Moore partition refinement), number
    states breadth-first over canonically ordered letters, and convert
    back to a guarded NFA the product kernel can run. Two queries get
    equal [key]s iff their minimal DFAs over the shared signature
    alphabet are isomorphic — so alternation order, duplicated
    branches, flattened stars and the like all collapse. [hash] is the
    FNV-1a digest of [key] (cache buckets; equality always compares
    [key] itself). *)
type canonical = {
  nfa : Nfa.t;  (** runnable canonical automaton (fresh accept state) *)
  dfa_states : int;  (** live states of the minimal DFA *)
  states : int;  (** states of [nfa] = [dfa_states] + 1 *)
  hash : int64;
  key : string;
  exact : bool;  (** no over-approximated (non-label-pure) test atoms *)
}

val canonicalize :
  ?schema:Schema.t -> ?budget:Budget.t -> ?max_states:int -> Regex.t -> canonical option

val canonicalize_nfa :
  ?schema:Schema.t -> ?budget:Budget.t -> ?max_states:int -> Nfa.t -> canonical option

(** 16-hex-digit rendering of a canonical hash. *)
val hash_hex : int64 -> string

(** The GQ05x redundancy lint pass, built on {!contains}/{!empty}:

    - GQ050 (Warning): an alternation branch is subsumed by a sibling
      (only reported for branches that are themselves satisfiable — an
      unsatisfiable branch is GQ0xx territory, and out-of-vocabulary
      labels must not read as "subsumed").
    - GQ051 (Info): a disjunct of a boolean test can never hold while
      its sibling can (the test quietly reduces to the sibling).
    - GQ052 (Warning): a closure adjacent to a wider closure is
      absorbed ([r*/s* = s*] when [L(r) ⊆ L(s)]).

    All verdicts share [budget]; once it trips the remaining checks
    answer [Unknown] and report nothing. *)
val lint :
  ?schema:Schema.t -> ?budget:Budget.t -> ?max_states:int -> Regex.t -> Diagnostic.t list

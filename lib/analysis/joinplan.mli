(** Variable-order selection for the worst-case-optimal join engine.

    The Leapfrog-Triejoin kernel ({!Gqkg_core.Join}) binds variables one
    at a time in a single global order; every atom's trie must then be
    laid out with its variables in that order.  This module is the pure
    planning half: given per-atom cardinality statistics (relation sizes
    and per-column distinct counts, derived from freeze-time Snapshot
    label stats or from materialized relations), pick the order.

    The heuristic is greedy smallest-estimate-first, preferring
    variables connected to the prefix already chosen: at each step the
    candidate's score is the cheapest way any atom can enumerate it —
    its distinct count when the atom is untouched, or its expected
    fan-out (size / product of bound-column distincts) once sibling
    columns are bound.  Ties break toward lower variable ids so plans
    are deterministic. *)

type atom_stat = {
  vars : int array;  (** distinct variable ids, one per column *)
  size : float;  (** (estimated) number of tuples *)
  distinct : float array;  (** per column: distinct values of [vars.(i)] *)
  label : string;  (** display name for {!describe} *)
}

(** Evaluation order over variable ids [0 .. num_vars-1]; every id
    appears exactly once.  Variables mentioned by no atom come last.
    Raises [Invalid_argument] on out-of-range ids. *)
val choose_order : num_vars:int -> atom_stat list -> int array

(** Render the chosen order and the per-atom estimates — the plan text
    behind [gqkg explain] for conjunctive queries. *)
val describe :
  var_name:(int -> string) -> atom_stat list -> order:int array -> string

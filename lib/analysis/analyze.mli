(** The static query analyzer: simplification, pruning, NFA trimming and
    seed-cost estimation run before a query touches the product kernel.

    Pass order and diagnostic codes are documented in DESIGN.md §"Static
    analysis". All rewrites preserve [[r]] on the instance analyzed, so
    evaluation with analysis on and off is observationally identical
    (property-tested); the payoff is that statically-empty queries are
    answered without constructing any product state, and the kernel gets
    a trimmed automaton plus a forward/backward seeding hint. *)

open Gqkg_graph
open Gqkg_automata

type verdict =
  | Empty  (** no path can ever match; skip execution entirely *)
  | Possibly_nonempty

type report = {
  verdict : verdict;
  regex : Regex.t;  (** pruned + simplified expression ([Empty]: the original) *)
  nfa : Nfa.t option;  (** trimmed automaton; [None] iff [Empty] *)
  diagnostics : Diagnostic.t list;  (** sorted errors-first *)
  fwd_cost : float;  (** estimated edges scanned by forward seeding *)
  bwd_cost : float;  (** estimated edges scanned by backward seeding *)
  states_before : int;  (** Thompson states before trimming (0 if [Empty]) *)
  states_after : int;  (** states the kernel actually sees *)
}

(** Global switch consulted by {!plan_if_enabled}; default [true]. The
    off position restores pre-analyzer behavior exactly (untrimmed
    Thompson automaton of the original expression, no hints). *)
val enabled : bool ref

val is_empty : report -> bool

(** Lint path: analyze against an optional {!Schema.t} vocabulary.
    Without a schema only graph-independent reasoning (contradictions,
    tautologies) applies. *)
val run : ?schema:Schema.t -> Regex.t -> report

(** Execution path: analyze against the instance the query is about to
    run on. Atom verdicts come from the data itself (exists/forall
    scans, memoized per distinct atom; label atoms use the interned
    label index when present). *)
val plan : Snapshot.t -> Regex.t -> report

(** [plan] when {!enabled}, [None] otherwise. *)
val plan_if_enabled : Snapshot.t -> Regex.t -> report option

(** Static verdict of one atom against a schema vocabulary — the same
    interpretation the GQ001/002/003 pass applies (atoms outside a
    closed universe are statically false, atoms carried by every object
    are true). Exposed so {!Decide} buckets test atoms consistently
    with lint. *)
val schema_atom_verdict :
  Schema.t option -> edge:bool -> Atom.t -> [ `True | `False | `Unknown ]

(** Boolean-only test simplification (no vocabulary): three-valued
    constant folding plus an exhaustive truth table over up to 12
    distinct atoms. [`F] means unsatisfiable, [`T] tautological. *)
val simplify_test : Regex.test -> [ `T | `F | `Test of Regex.test ]

(** Rebuild an automaton keeping only states reachable from the start
    and co-reachable from the accept over moves that [alive] admits;
    [None] when the trimmed language is empty. *)
val trim : Nfa.t -> alive:(Nfa.move -> bool) -> Nfa.t option

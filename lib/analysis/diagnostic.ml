(* Structured findings of the static query analyzer.  Each diagnostic
   carries a stable code (documented in DESIGN.md §"Static analysis"), a
   severity, the concrete-syntax subterm it is anchored to, and a
   human-readable message.  The CLI renders them either as text or as
   JSON; the engine itself only ever looks at the final verdict. *)

type severity = Error | Warning | Info

type t = { code : string; severity : severity; subterm : string; message : string }

let make ~code ~severity ~subterm ~message = { code; severity; subterm; message }

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let to_string d =
  if d.subterm = "" then Printf.sprintf "%s %s: %s" (severity_to_string d.severity) d.code d.message
  else
    Printf.sprintf "%s %s at `%s`: %s" (severity_to_string d.severity) d.code d.subterm d.message

let pp ppf d = Fmt.string ppf (to_string d)

(* Minimal JSON string escaping: quotes, backslashes and control bytes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"subterm\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_escape d.subterm) (json_escape d.message)

(* Errors first, then warnings, then infos; stable within a class. *)
let rank = function Error -> 0 | Warning -> 1 | Info -> 2
let sort ds = List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* --- Resource-governor diagnostics (GQ03x) ---------------------------

   Emitted when an evaluation returns a partial result because its
   budget tripped.  Warnings, not errors: the partial answer is sound
   (a subset of the unbudgeted answer), the caller just needs to know it
   may be incomplete.  The CLI maps their presence to exit code 3. *)

let budget_code = function
  | Gqkg_util.Budget.Timeout -> "GQ030"
  | Gqkg_util.Budget.State_limit -> "GQ031"
  | Gqkg_util.Budget.Step_limit -> "GQ032"
  | Gqkg_util.Budget.Injected -> "GQ033"
  | Gqkg_util.Budget.Cancelled -> "GQ034"

let of_budget b =
  match Gqkg_util.Budget.exhausted b with
  | None -> None
  | Some reason ->
      Some
        (make ~code:(budget_code reason) ~severity:Warning ~subterm:""
           ~message:
             (Printf.sprintf
                "evaluation stopped early (%s); the result is a sound subset of the full answer \
                 [%s]"
                (Gqkg_util.Budget.reason_to_string reason)
                (Gqkg_util.Budget.describe b)))

(* --- User-input diagnostics (GQ04x) ----------------------------------

   Structured reports for malformed user input (files, queries, CLI
   arguments): always errors, rendered by the CLI instead of a raw
   OCaml exception backtrace, with exit code 2. *)

let user_error ~code ~subterm ~message = make ~code ~severity:Error ~subterm ~message

(* Structured findings of the static query analyzer.  Each diagnostic
   carries a stable code (documented in DESIGN.md §"Static analysis"), a
   severity, the concrete-syntax subterm it is anchored to, and a
   human-readable message.  The CLI renders them either as text or as
   JSON; the engine itself only ever looks at the final verdict. *)

type severity = Error | Warning | Info

type t = { code : string; severity : severity; subterm : string; message : string }

let make ~code ~severity ~subterm ~message = { code; severity; subterm; message }

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let to_string d =
  if d.subterm = "" then Printf.sprintf "%s %s: %s" (severity_to_string d.severity) d.code d.message
  else
    Printf.sprintf "%s %s at `%s`: %s" (severity_to_string d.severity) d.code d.subterm d.message

let pp ppf d = Fmt.string ppf (to_string d)

(* Minimal JSON string escaping: quotes, backslashes and control bytes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"subterm\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_escape d.subterm) (json_escape d.message)

(* Errors first, then warnings, then infos; stable within a class. *)
let rank = function Error -> 0 | Warning -> 1 | Info -> 2
let sort ds = List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(** Static vocabulary summary of a graph, extracted from any of the four
    Section 3 data models and consumed by the analyzer's lint pass.

    Every field is an option: [None] means the model gives no static
    information (the analyzer answers Unknown); [Some] is a closed
    summary — an atom outside it is statically false. *)

open Gqkg_graph

type t = {
  num_nodes : int;
  num_edges : int;
  node_labels : (Const.t * int) list option;  (** distinct labels with multiplicities *)
  edge_labels : (Const.t * int) list option;
  node_props : Const.t list option;  (** property names occurring on some node *)
  edge_props : Const.t list option;
  feature_dim : int option;  (** vector width; 0 = feature atoms never hold *)
}

val of_multigraph : Multigraph.t -> t
val of_labeled : Labeled_graph.t -> t
val of_property : Property_graph.t -> t

(** [Label] atoms go through feature 1 on vector-labeled graphs, so the
    label vocabulary is the set of distinct first-feature values. *)
val of_vector : Vector_graph.t -> t

(** Vocabulary straight from a snapshot's freeze-time label stats — no
    graph scan. Property names and the feature width are not recorded
    in the snapshot, so those fields are [None] (Unknown). *)
val of_snapshot : Snapshot.t -> t

(** Lookup in a label histogram. *)
val find_label : (Const.t * int) list -> Const.t -> (Const.t * int) option

(** Human-readable multi-line summary. *)
val to_string : t -> string

(* Decision procedures over guarded NFAs: emptiness, containment,
   equivalence, canonicalization.

   The classical constructions (subset construction, product emptiness,
   Moore minimization) need a finite alphabet; guarded NFAs carry
   boolean tests instead.  The bridge is the satisfiability-signature
   alphabet: enumerate every observable outcome vector of the distinct
   tests against the schema vocabulary and treat each vector as one
   letter.  A path then reads as an interleaved word

      nu0 (a1 nu1) (a2 nu2) ... (ak nuk)

   where nu_i is the node letter of path node i and a_j is a direction
   (forward/backward) paired with the edge letter of path edge j.  The
   subset construction alternates node-phase states (about to read a
   node letter; the transition is the epsilon+check closure under that
   letter) and edge-phase states (about to read a direction/edge-letter
   pair); acceptance is tested on edge-phase (post-closure) sets, and
   zero-length paths are the words consisting of nu0 alone.

   Soundness of the bucketing (see the .mli): edge Label atoms are
   enumerated exactly under the one-label-per-edge rule, node Label
   atoms are exact independent bits (multi-label nodes are part of the
   snapshot model), and Prop/Feature atoms are free bits — an
   over-approximation.  Every letter a real node or edge can exhibit is
   among the enumerated ones, so [True] verdicts always hold on real
   graphs; [False] verdicts are kept only when backed by a realizable
   witness (or an exact alphabet) and degrade to [Unknown] otherwise.

   Everything runs under an optional budget plus a hard state cap and
   degrades to Unknown / None instead of hanging or raising. *)

open Gqkg_graph
open Gqkg_automata
module Budget = Gqkg_util.Budget

type verdict = True | False | Unknown of string

let verdict_to_string = function
  | True -> "true"
  | False -> "false"
  | Unknown why -> "unknown (" ^ why ^ ")"

type witness = { nodes : Const.t list list; steps : (bool * Const.t option) list }

let witness_to_string w =
  let buf = Buffer.create 64 in
  let node ls =
    Buffer.add_char buf '(';
    Buffer.add_string buf (String.concat " " (List.map Const.to_string ls));
    Buffer.add_char buf ')'
  in
  (match w.nodes with
  | [] -> ()
  | first :: rest ->
      node first;
      List.iter2
        (fun (fwd, lbl) ls ->
          let l = match lbl with Some c -> Const.to_string c | None -> "~" in
          Buffer.add_string buf (if fwd then " -[" ^ l ^ "]-> " else " <-[" ^ l ^ "]- ");
          node ls)
        w.steps rest);
  Buffer.contents buf

exception Gave_up of string

let default_pair_states = 4096
let default_dfa_states = 2048
let free_atom_cap = 8
let enum_cap = 4096

(* ---- The satisfiability-signature alphabet --------------------------- *)

type nletter = {
  nvec : bool array;  (* outcome per node test: dedup key and formula input *)
  nkey : string;  (* canonical rendering of the generating assignment *)
  nsat : Atom.t -> bool;  (* the assignment itself, for closures *)
  nrep : Const.t list option;  (* labels realizing the letter on a plain node *)
}

type eletter = {
  evec : bool array;
  ekey : string;
  esat : Atom.t -> bool;
  mutable erep : Const.t option option;
      (* [Some lbl] : a single edge labeled [lbl] (or, for [Some None],
         any label outside the tested vocabulary) realizes the letter *)
}

type alphabet = {
  ntests : Regex.test array;
  etests : Regex.test array;
  nl : nletter array;
  el : eletter array;
  exact : bool;
}

let rec test_atoms t acc =
  match t with
  | Regex.Atom a -> a :: acc
  | Regex.Not x -> test_atoms x acc
  | Regex.Or (x, y) | Regex.And (x, y) -> test_atoms x (test_atoms y acc)

let atoms_of_tests tests =
  List.sort_uniq Atom.compare (List.fold_left (fun acc t -> test_atoms t acc) [] tests)

let tests_of_nfa nfa =
  let nt = ref [] and et = ref [] in
  for s = 0 to Nfa.num_states nfa - 1 do
    List.iter
      (fun (mv, _) ->
        match mv with
        | Nfa.Eps -> ()
        | Nfa.Node_check t -> nt := t :: !nt
        | Nfa.Forward t | Nfa.Backward t -> et := t :: !et)
      (Nfa.transitions nfa s)
  done;
  (!nt, !et)

let dedup_tests ts =
  let sorted = List.sort (fun a b -> compare (Regex.test_to_string a) (Regex.test_to_string b)) ts in
  let rec uniq = function
    | a :: b :: rest when Regex.equal_test a b -> uniq (b :: rest)
    | a :: rest -> a :: uniq rest
    | [] -> []
  in
  Array.of_list (uniq sorted)

let is_label_atom = function Atom.Label _ -> true | Atom.Prop _ | Atom.Feature _ -> false

(* Assignment closure over an explicit (atom, value) table; atoms not in
   the table answer false (they do not occur in the tests, so the value
   never matters). *)
let sat_of_table table a =
  match List.find_opt (fun (a', _) -> Atom.equal a a') table with
  | Some (_, v) -> v
  | None -> false

let assignment_key table =
  String.concat ","
    (List.map (fun (a, v) -> Atom.to_query_string a ^ (if v then "=1" else "=0")) table)

(* Enumerate node letters: every atom is pinned by the schema verdict or
   a free bit.  Node Label bits are independent (multi-label nodes are
   realizable in the snapshot model), so the node side is exact exactly
   when no free Prop/Feature atom remains. *)
let node_letters schema ntests =
  let atoms = atoms_of_tests (Array.to_list ntests) in
  let fixed, free =
    List.fold_left
      (fun (fixed, free) a ->
        match Analyze.schema_atom_verdict schema ~edge:false a with
        | `True -> ((a, true) :: fixed, free)
        | `False -> ((a, false) :: fixed, free)
        | `Unknown -> (fixed, a :: free))
      ([], []) atoms
  in
  let free = List.rev free in
  let nfree = List.length free in
  if nfree > free_atom_cap then
    raise (Gave_up (Printf.sprintf "%d unconstrained node atoms (cap %d)" nfree free_atom_cap));
  let inexact =
    List.exists (fun a -> not (is_label_atom a)) free
    || List.exists (fun (a, v) -> v && not (is_label_atom a)) fixed
       (* a pinned-true Prop/Feature cannot be realized on a witness
          node, so treat it as lossy for the False direction too *)
  in
  let seen = Hashtbl.create 32 in
  let letters = ref [] in
  for mask = 0 to (1 lsl nfree) - 1 do
    let table =
      fixed @ List.mapi (fun i a -> (a, mask land (1 lsl i) <> 0)) free
      |> List.sort (fun (a, _) (b, _) -> Atom.compare a b)
    in
    let sat = sat_of_table table in
    let vec = Array.map (fun t -> Regex.eval_test sat t) ntests in
    if not (Hashtbl.mem seen vec) then begin
      Hashtbl.add seen vec ();
      let rep =
        if List.for_all (fun (a, v) -> is_label_atom a || not v) table then
          Some
            (List.filter_map
               (fun (a, v) -> match a with Atom.Label c when v -> Some c | _ -> None)
               table)
        else None
      in
      letters := { nvec = vec; nkey = assignment_key table; nsat = sat; nrep = rep } :: !letters
    end
  done;
  let arr = Array.of_list !letters in
  Array.sort (fun a b -> compare a.nkey b.nkey) arr;
  (arr, inexact)

(* Enumerate edge letters: an edge carries exactly one label, so Label
   atoms are enumerated by label choice — over the closed schema
   universe when one exists, otherwise over the tested labels plus one
   "anything else" bucket.  Prop/Feature atoms are pinned or free
   bits. *)
let edge_letters schema etests =
  let atoms = atoms_of_tests (Array.to_list etests) in
  let label_consts =
    List.filter_map (function Atom.Label c -> Some c | _ -> None) atoms
  in
  let others = List.filter (fun a -> not (is_label_atom a)) atoms in
  let fixed, free =
    List.fold_left
      (fun (fixed, free) a ->
        match Analyze.schema_atom_verdict schema ~edge:true a with
        | `True -> ((a, true) :: fixed, free)
        | `False -> ((a, false) :: fixed, free)
        | `Unknown -> (fixed, a :: free))
      ([], []) others
  in
  let free = List.rev free in
  let nfree = List.length free in
  if nfree > free_atom_cap then
    raise (Gave_up (Printf.sprintf "%d unconstrained edge atoms (cap %d)" nfree free_atom_cap));
  let inexact = free <> [] || List.exists (fun (_, v) -> v) fixed in
  let choices =
    match schema with
    | Some s -> (
        match s.Schema.edge_labels with
        | Some [] -> [ None ]  (* closed and label-free: edges carry no label *)
        | Some hist -> List.map (fun (l, _) -> Some l) hist
        | None -> List.map (fun c -> Some c) label_consts @ [ None ])
    | None -> List.map (fun c -> Some c) label_consts @ [ None ]
  in
  if List.length choices * (1 lsl nfree) > enum_cap then
    raise (Gave_up (Printf.sprintf "edge letter space exceeds %d" enum_cap));
  let seen : (bool array, eletter) Hashtbl.t = Hashtbl.create 32 in
  let letters = ref [] in
  List.iter
    (fun choice ->
      for mask = 0 to (1 lsl nfree) - 1 do
        let table =
          List.map
            (fun c ->
              (Atom.Label c, match choice with Some l -> Const.equal c l | None -> false))
            label_consts
          @ fixed
          @ List.mapi (fun i a -> (a, mask land (1 lsl i) <> 0)) free
          |> List.sort (fun (a, _) (b, _) -> Atom.compare a b)
        in
        let sat = sat_of_table table in
        let vec = Array.map (fun t -> Regex.eval_test sat t) etests in
        let realizable = mask = 0 && List.for_all (fun (_, v) -> not v) fixed in
        match Hashtbl.find_opt seen vec with
        | Some l -> if l.erep = None && realizable then l.erep <- Some choice
        | None ->
            let l =
              {
                evec = vec;
                ekey = assignment_key table;
                esat = sat;
                erep = (if realizable then Some choice else None);
              }
            in
            Hashtbl.add seen vec l;
            letters := l :: !letters
      done)
    choices;
  let arr = Array.of_list !letters in
  Array.sort (fun a b -> compare a.ekey b.ekey) arr;
  (arr, inexact)

let build_alphabet schema ~ntests ~etests =
  let nl, n_inexact = node_letters schema ntests in
  let el, e_inexact = edge_letters schema etests in
  { ntests; etests; nl; el; exact = (not n_inexact) && not e_inexact }

let alphabet_of_nfas schema nfas =
  let nt, et =
    List.fold_left
      (fun (nt, et) nfa ->
        let n, e = tests_of_nfa nfa in
        (n @ nt, e @ et))
      ([], []) nfas
  in
  build_alphabet schema ~ntests:(dedup_tests nt) ~etests:(dedup_tests et)

(* ---- Stepping a guarded NFA by letters ------------------------------- *)

let estep nfa dir esat set =
  let fwd, bwd = Nfa.edge_moves nfa set in
  let moves = if dir then fwd else bwd in
  let tgts =
    List.filter_map (fun (t, q) -> if Regex.eval_test esat t then Some q else None) moves
  in
  Array.of_list (List.sort_uniq compare tgts)

let closure nfa nl set = if Array.length set = 0 then set else Nfa.closure nfa ~node_sat:nl.nsat set

let budget_reason budget =
  match Budget.exhausted budget with
  | Some r -> "budget exhausted: " ^ Budget.reason_to_string r
  | None -> "budget exhausted"

(* ---- Containment: product emptiness with witness --------------------- *)

type parent = Init of int | Step of int * bool * int * int

let contains_search budget max_states alpha nfa_a nfa_b =
  let tbl : (int array * int array, int) Hashtbl.t = Hashtbl.create 64 in
  let parents : (int, parent) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  let count = ref 0 in
  let intern key parent =
    if not (Hashtbl.mem tbl key) then begin
      let id = !count in
      incr count;
      if !count > max_states then
        raise (Gave_up (Printf.sprintf "pair-state cap %d exceeded" max_states));
      Hashtbl.add tbl key id;
      Hashtbl.add parents id parent;
      Queue.add (id, key) q
    end
  in
  Array.iteri
    (fun i nl ->
      let sa = closure nfa_a nl [| Nfa.start nfa_a |] in
      let sb = closure nfa_b nl [| Nfa.start nfa_b |] in
      intern (sa, sb) (Init i))
    alpha.nl;
  let bad = ref None in
  while !bad = None && not (Queue.is_empty q) do
    if Budget.check budget then raise (Gave_up (budget_reason budget));
    Budget.note_states budget !count;
    let id, (sa, sb) = Queue.pop q in
    if Nfa.is_accepting nfa_a sa && not (Nfa.is_accepting nfa_b sb) then bad := Some id
    else
      List.iter
        (fun dir ->
          Array.iteri
            (fun j el ->
              let sa1 = estep nfa_a dir el.esat sa in
              if Array.length sa1 > 0 then begin
                let sb1 = estep nfa_b dir el.esat sb in
                Array.iteri
                  (fun i nl ->
                    let sa2 = closure nfa_a nl sa1 in
                    let sb2 = closure nfa_b nl sb1 in
                    intern (sa2, sb2) (Step (id, dir, j, i)))
                  alpha.nl
              end)
            alpha.el)
        [ true; false ]
  done;
  match !bad with
  | None -> (True, None)
  | Some id ->
      let rec unwind id acc =
        match Hashtbl.find parents id with
        | Init i -> (i, acc)
        | Step (p, dir, j, i) -> unwind p ((dir, j, i) :: acc)
      in
      let i0, steps = unwind id [] in
      let witness =
        let ( let* ) = Option.bind in
        let* first = alpha.nl.(i0).nrep in
        let* rev_nodes, rev_steps =
          List.fold_left
            (fun acc (dir, j, i) ->
              let* ns, ss = acc in
              let* lbl = alpha.el.(j).erep in
              let* n = alpha.nl.(i).nrep in
              Some (n :: ns, (dir, lbl) :: ss))
            (Some ([ first ], []))
            steps
        in
        Some { nodes = List.rev rev_nodes; steps = List.rev rev_steps }
      in
      (match witness with
      | Some w -> (False, Some w)
      | None ->
          if alpha.exact then (False, None)
          else
            ( Unknown
                "refuted only over the bucketed over-approximation (property/feature \
                 atoms); no realizable counterexample",
              None ))

let empty_nfa_automaton = lazy (Nfa.make ~num_states:2 ~start:0 ~accept:1 ~transitions:[])

let contains_nfa ?schema ?budget ?(max_states = default_pair_states) nfa_a nfa_b =
  let budget = Option.value budget ~default:Budget.unlimited in
  try
    let alpha = alphabet_of_nfas schema [ nfa_a; nfa_b ] in
    contains_search budget max_states alpha nfa_a nfa_b
  with
  | Gave_up why -> (Unknown why, None)
  | Stack_overflow -> (Unknown "stack overflow", None)

let to_nfa r = Nfa.of_regex (Regex.simplify r)

let contains_witness ?schema ?budget ?max_states r1 r2 =
  contains_nfa ?schema ?budget ?max_states (to_nfa r1) (to_nfa r2)

let contains ?schema ?budget ?max_states r1 r2 =
  fst (contains_witness ?schema ?budget ?max_states r1 r2)

let empty ?schema ?budget ?max_states r =
  fst (contains_nfa ?schema ?budget ?max_states (to_nfa r) (Lazy.force empty_nfa_automaton))

let equiv ?schema ?budget ?max_states r1 r2 =
  match contains ?schema ?budget ?max_states r1 r2 with
  | True -> contains ?schema ?budget ?max_states r2 r1
  | (False | Unknown _) as v -> v

(* ---- Canonicalization ------------------------------------------------ *)

type canonical = {
  nfa : Nfa.t;
  dfa_states : int;
  states : int;
  hash : int64;
  key : string;
  exact : bool;
}

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let hash_hex = Printf.sprintf "%016Lx"

type dstate = { sort_node : bool; set : int array; mutable succ : int array; acc : bool }

(* Full subset construction over the signature alphabet: node-phase
   states (about to read a node letter) alternate with edge-phase states
   (post-closure; acceptance lives here; about to read a direction/edge
   letter). *)
let determinize budget max_states alpha nfa =
  let tbl : (bool * int array, int) Hashtbl.t = Hashtbl.create 64 in
  let states : (int, dstate) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  let count = ref 0 in
  let intern sort_node set =
    let key = (sort_node, set) in
    match Hashtbl.find_opt tbl key with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        if !count > max_states then
          raise (Gave_up (Printf.sprintf "DFA state cap %d exceeded" max_states));
        Hashtbl.add tbl key id;
        Hashtbl.add states id
          {
            sort_node;
            set;
            succ = [||];
            acc = (not sort_node) && Nfa.is_accepting nfa set;
          };
        Queue.add id q;
        id
  in
  ignore (intern true [| Nfa.start nfa |]);
  while not (Queue.is_empty q) do
    if Budget.check budget then raise (Gave_up (budget_reason budget));
    Budget.note_states budget !count;
    let id = Queue.pop q in
    let st = Hashtbl.find states id in
    if st.sort_node then
      st.succ <- Array.map (fun nl -> intern false (closure nfa nl st.set)) alpha.nl
    else begin
      let step dir el =
        let tgt = estep nfa dir el.esat st.set in
        if Array.length tgt = 0 then -1 else intern true tgt
      in
      st.succ <-
        Array.append (Array.map (step true) alpha.el) (Array.map (step false) alpha.el)
    end
  done;
  Array.init !count (fun i -> Hashtbl.find states i)

(* Characterize a set of letters as a boolean test over the original
   test vocabulary: the whole alphabet, a single (possibly negated)
   test when one matches exactly, otherwise the exact DNF. *)
let letter_formula tests vecs sel =
  let total = Array.length vecs in
  let selected = Array.exists (fun b -> b) sel in
  assert selected;
  if Array.for_all (fun b -> b) sel || Array.length tests = 0 then `All
  else begin
    let found = ref None in
    Array.iteri
      (fun ti t ->
        if !found = None then begin
          let pos = ref true and neg = ref true in
          for s = 0 to total - 1 do
            if vecs.(s).(ti) <> sel.(s) then pos := false;
            if vecs.(s).(ti) = sel.(s) then neg := false
          done;
          if !pos then found := Some t else if !neg then found := Some (Regex.Not t)
        end)
      tests;
    match !found with
    | Some t -> `Test t
    | None ->
        let conj s =
          let parts =
            Array.to_list
              (Array.mapi (fun ti t -> if vecs.(s).(ti) then t else Regex.Not t) tests)
          in
          match parts with
          | [] -> assert false
          | p :: rest -> List.fold_left (fun a b -> Regex.And (a, b)) p rest
        in
        let sels = ref [] in
        for s = total - 1 downto 0 do
          if sel.(s) then sels := s :: !sels
        done;
        let d =
          match !sels with
          | [] -> assert false
          | s :: rest -> List.fold_left (fun a s' -> Regex.Or (a, conj s')) (conj s) rest
        in
        `Test d
  end

let canonicalize_nfa ?schema ?budget ?(max_states = default_dfa_states) input =
  let budget = Option.value budget ~default:Budget.unlimited in
  try
    let alpha = alphabet_of_nfas schema [ input ] in
    let st = determinize budget max_states alpha input in
    let n = Array.length st in
    (* Trim: keep only states co-reachable from an accepting state. *)
    let keep = Array.make n false in
    let rev = Array.make n [] in
    Array.iteri
      (fun i s -> Array.iter (fun t -> if t >= 0 then rev.(t) <- i :: rev.(t)) s.succ)
      st;
    let stack = ref [] in
    Array.iteri
      (fun i s ->
        if s.acc then begin
          keep.(i) <- true;
          stack := i :: !stack
        end)
      st;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | i :: rest ->
          stack := rest;
          List.iter
            (fun p ->
              if not keep.(p) then begin
                keep.(p) <- true;
                stack := p :: !stack
              end)
            rev.(i)
    done;
    if not keep.(0) then
      (* empty language: one shared canonical form *)
      Some
        {
          nfa = Nfa.make ~num_states:2 ~start:0 ~accept:1 ~transitions:[];
          dfa_states = 0;
          states = 2;
          hash = fnv1a64 "v1|empty";
          key = "v1|empty";
          exact = alpha.exact;
        }
    else begin
      (* Moore partition refinement; trimmed-away and dead targets form
         an implicit sink class (-1). *)
      let block = Array.make n (-1) in
      Array.iteri
        (fun i s -> if keep.(i) then block.(i) <- (if s.sort_node then 0 else if s.acc then 1 else 2))
        st;
      let changed = ref true in
      while !changed do
        if Budget.check budget then raise (Gave_up (budget_reason budget));
        (* Splitting only ever refines, so the partition is stable iff
           the class count is unchanged — but count the *occupied*
           classes: an empty seed class (e.g. no non-accepting edge
           state) would otherwise mask a split in the first round and
           stop refinement early. *)
        let occupied = Hashtbl.create 16 in
        for i = 0 to n - 1 do
          if keep.(i) then Hashtbl.replace occupied block.(i) ()
        done;
        let nblocks = Hashtbl.length occupied in
        let sigs = Hashtbl.create 64 in
        let next = Array.make n (-1) in
        let fresh = ref 0 in
        for i = 0 to n - 1 do
          if keep.(i) then begin
            let succ_blocks =
              Array.map (fun t -> if t >= 0 && keep.(t) then block.(t) else -1) st.(i).succ
            in
            let key = (block.(i), succ_blocks) in
            let b =
              match Hashtbl.find_opt sigs key with
              | Some b -> b
              | None ->
                  let b = !fresh in
                  incr fresh;
                  Hashtbl.add sigs key b;
                  b
            in
            next.(i) <- b
          end
        done;
        changed := !fresh <> nblocks;
        Array.blit next 0 block 0 n
      done;
      (* Canonical numbering: BFS over blocks from the start block,
         letters in canonical (key-sorted) order. *)
      let rep = Hashtbl.create 16 in
      for i = n - 1 downto 0 do
        if keep.(i) then Hashtbl.replace rep block.(i) i
      done;
      let canon = Hashtbl.create 16 in
      let order = ref [] in
      let next_id = ref 0 in
      let number b =
        if not (Hashtbl.mem canon b) then begin
          Hashtbl.add canon b !next_id;
          incr next_id;
          order := b :: !order
        end
      in
      number block.(0);
      let qq = Queue.create () in
      Queue.add block.(0) qq;
      let seen_b = Hashtbl.create 16 in
      Hashtbl.add seen_b block.(0) ();
      while not (Queue.is_empty qq) do
        let b = Queue.pop qq in
        let r = Hashtbl.find rep b in
        Array.iter
          (fun t ->
            if t >= 0 && keep.(t) then begin
              let tb = block.(t) in
              if not (Hashtbl.mem seen_b tb) then begin
                Hashtbl.add seen_b tb ();
                number tb;
                Queue.add tb qq
              end
            end)
          st.(r).succ
      done;
      let blocks_in_order = Array.of_list (List.rev !order) in
      let nb = Array.length blocks_in_order in
      (* Canonical key: the alphabet plus the transition table in
         canonical numbering — equal iff the minimal DFAs over the same
         signature alphabet are isomorphic. *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v1|N[";
      Array.iter
        (fun l ->
          Buffer.add_string buf l.nkey;
          Buffer.add_char buf ';')
        alpha.nl;
      Buffer.add_string buf "]E[";
      Array.iter
        (fun l ->
          Buffer.add_string buf l.ekey;
          Buffer.add_char buf ';')
        alpha.el;
      Buffer.add_string buf "]|";
      Array.iteri
        (fun ci b ->
          let r = Hashtbl.find rep b in
          Buffer.add_string buf (string_of_int ci);
          Buffer.add_char buf (if st.(r).sort_node then 'n' else if st.(r).acc then 'A' else 'e');
          Array.iter
            (fun t ->
              if t >= 0 && keep.(t) then
                Buffer.add_string buf (string_of_int (Hashtbl.find canon block.(t)))
              else Buffer.add_char buf '.';
              Buffer.add_char buf ',')
            st.(r).succ;
          Buffer.add_char buf '|')
        blocks_in_order;
      let key = Buffer.contents buf in
      (* Convert back to a guarded NFA the product kernel can run: block
         ci's moves group its letters by target block; the group's test
         characterizes exactly those letters. *)
      let transitions = ref [] in
      let nvecs = Array.map (fun l -> l.nvec) alpha.nl in
      let evecs = Array.map (fun l -> l.evec) alpha.el in
      Array.iteri
        (fun ci b ->
          let r = Hashtbl.find rep b in
          let s = st.(r) in
          if s.acc then transitions := (ci, Nfa.Eps, nb) :: !transitions;
          let groups = Hashtbl.create 8 in
          let add off width mk vecs tests =
            Hashtbl.reset groups;
            for li = 0 to width - 1 do
              let t = s.succ.(off + li) in
              if t >= 0 && keep.(t) then begin
                let tgt = Hashtbl.find canon block.(t) in
                let sel =
                  match Hashtbl.find_opt groups tgt with
                  | Some sel -> sel
                  | None ->
                      let sel = Array.make width false in
                      Hashtbl.add groups tgt sel;
                      sel
                in
                sel.(li) <- true
              end
            done;
            Hashtbl.iter
              (fun tgt sel ->
                let mv =
                  match letter_formula tests vecs sel with
                  | `All -> if s.sort_node then Nfa.Eps else mk Regex.any_test
                  | `Test t -> mk t
                in
                transitions := (ci, mv, tgt) :: !transitions)
              groups
          in
          if s.sort_node then
            add 0 (Array.length alpha.nl) (fun t -> Nfa.Node_check t) nvecs alpha.ntests
          else begin
            add 0 (Array.length alpha.el) (fun t -> Nfa.Forward t) evecs alpha.etests;
            add (Array.length alpha.el) (Array.length alpha.el)
              (fun t -> Nfa.Backward t)
              evecs alpha.etests
          end)
        blocks_in_order;
      (* Deterministic transition order (Hashtbl.iter order is not). *)
      let transitions = List.sort compare !transitions in
      let nfa = Nfa.make ~num_states:(nb + 1) ~start:0 ~accept:nb ~transitions in
      Some
        { nfa; dfa_states = nb; states = nb + 1; hash = fnv1a64 key; key; exact = alpha.exact }
    end
  with
  | Gave_up _ -> None
  | Stack_overflow -> None

let canonicalize ?schema ?budget ?max_states r =
  canonicalize_nfa ?schema ?budget ?max_states (to_nfa r)

(* ---- GQ05x redundancy lint ------------------------------------------- *)

(* Three-valued status of a boolean test under the schema pins — the
   same atom interpretation as the GQ0xx passes, then the analyzer's
   truth-table fold on what remains. *)
let test_status schema ~edge t =
  let rec fold t =
    match t with
    | Regex.Atom a -> (
        match Analyze.schema_atom_verdict schema ~edge a with
        | `True -> `T
        | `False -> `F
        | `Unknown -> `U t)
    | Regex.Not x -> (
        match fold x with `T -> `F | `F -> `T | `U x' -> `U (Regex.Not x'))
    | Regex.Or (x, y) -> (
        match (fold x, fold y) with
        | `T, _ | _, `T -> `T
        | `F, r | r, `F -> r
        | `U x', `U y' -> `U (Regex.Or (x', y')))
    | Regex.And (x, y) -> (
        match (fold x, fold y) with
        | `F, _ | _, `F -> `F
        | `T, r | r, `T -> r
        | `U x', `U y' -> `U (Regex.And (x', y')))
  in
  match fold t with
  | (`T | `F) as r -> r
  | `U t' -> ( match Analyze.simplify_test t' with `T -> `T | `F -> `F | `Test _ -> `U)

let rec flatten_alt r acc =
  match r with Regex.Alt (a, b) -> flatten_alt a (flatten_alt b acc) | _ -> r :: acc

let rec flatten_seq r acc =
  match r with Regex.Seq (a, b) -> flatten_seq a (flatten_seq b acc) | _ -> r :: acc

let alt_branch_cap = 6

let lint ?schema ?budget ?max_states r0 =
  let diags = ref [] in
  let emit code severity subterm message =
    let d = Diagnostic.make ~code ~severity ~subterm ~message in
    if not (List.exists (fun d' -> d' = d) !diags) then diags := d :: !diags
  in
  let contains_t a b =
    match contains ?schema ?budget ?max_states a b with True -> true | _ -> false
  in
  let nonempty a = match empty ?schema ?budget ?max_states a with False -> true | _ -> false in
  (* GQ051: a disjunct that can never hold while a sibling can — the
     test quietly reduces to the sibling.  Tautological tests (the
     ?_|_|!_|_ "any" idiom) are skipped: every disjunct of a tautology
     is doing its job. *)
  let scan_test ~edge t0 =
    if test_status schema ~edge t0 = `U then begin
      let rec scan t =
        match t with
        | Regex.Or (a, b) ->
            let da = test_status schema ~edge a = `F and db = test_status schema ~edge b = `F in
            if da && not db then
              emit "GQ051" Diagnostic.Info
                (Regex.test_to_string a)
                "disjunct can never hold here; the test reduces to the other alternative";
            if db && not da then
              emit "GQ051" Diagnostic.Info
                (Regex.test_to_string b)
                "disjunct can never hold here; the test reduces to the other alternative";
            scan a;
            scan b
        | Regex.And (a, b) ->
            scan a;
            scan b
        | Regex.Not a -> scan a
        | Regex.Atom _ -> ()
      in
      scan t0
    end
  in
  let rec walk r =
    match r with
    | Regex.Node_test t -> scan_test ~edge:false t
    | Regex.Fwd t | Regex.Bwd t -> scan_test ~edge:true t
    | Regex.Star body -> walk body
    | Regex.Alt _ ->
        let branches = flatten_alt r [] in
        List.iter walk branches;
        let arr = Array.of_list branches in
        let n = Array.length arr in
        (* GQ050: a branch subsumed by a sibling.  Only satisfiable
           branches are flagged (an unsatisfiable branch — e.g. an
           out-of-schema label — is GQ001/GQ012 territory, not
           redundancy), and only [True] verdicts fire, so bucketed or
           budget-tripped comparisons stay silent. *)
        if n <= alt_branch_cap then
          for j = 0 to n - 1 do
            let rec find i =
              if i >= n then ()
              else if
                i <> j
                && contains_t arr.(j) arr.(i)
                && ((not (contains_t arr.(i) arr.(j))) || i < j)
                && nonempty arr.(j)
              then
                emit "GQ050" Diagnostic.Warning
                  (Regex.to_string arr.(j))
                  (Printf.sprintf
                     "alternation branch is subsumed by sibling `%s`; removing it does not \
                      change the query"
                     (Regex.to_string ~top:true arr.(i)))
              else find (i + 1)
            in
            find 0
          done
    | Regex.Seq _ ->
        let factors = flatten_seq r [] in
        List.iter walk factors;
        (* GQ052: adjacent closures where one absorbs the other
           (r*/s* = s* when r ⊆ s). *)
        let rec adj = function
          | (Regex.Star _ as f) :: (Regex.Star _ as g) :: rest ->
              if contains_t f g then
                emit "GQ052" Diagnostic.Warning (Regex.to_string f)
                  (Printf.sprintf
                     "redundant closure: absorbed by the adjacent `%s` (r*/s* = s* when r \
                      is contained in s)"
                     (Regex.to_string ~top:true g))
              else if contains_t g f then
                emit "GQ052" Diagnostic.Warning (Regex.to_string g)
                  (Printf.sprintf
                     "redundant closure: absorbed by the adjacent `%s` (r*/s* = s* when r \
                      is contained in s)"
                     (Regex.to_string ~top:true f));
              adj (g :: rest)
          | _ :: rest -> adj rest
          | [] -> ()
        in
        adj factors
  in
  walk r0;
  Diagnostic.sort (List.rev !diags)

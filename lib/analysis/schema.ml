(* Vocabulary summary of a graph: which labels, property names and
   feature positions can possibly hold on nodes and edges.  This is the
   static counterpart of the Snapshot.t oracle — extracted once from any
   of the four Section 3 data models and consumed by the lint pass
   (Warren & Mulholland identify vocabulary mismatch as the dominant
   user error across edge-labelled and property graphs).

   Every field is an option: [None] means "this model gives no static
   information", so the analyzer must answer Unknown; [Some] is a closed
   summary — an atom outside it is statically false.  For example a
   labeled graph has [node_props = Some []] (no property can ever hold),
   while a model without label bookkeeping would have [node_labels =
   None]. *)

open Gqkg_graph

type t = {
  num_nodes : int;
  num_edges : int;
  node_labels : (Const.t * int) list option;  (** distinct labels with multiplicities *)
  edge_labels : (Const.t * int) list option;
  node_props : Const.t list option;  (** property names occurring on some node *)
  edge_props : Const.t list option;
  feature_dim : int option;  (** vector width; 0 = feature atoms never hold *)
}

let histogram consts =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c -> Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    consts;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Const.compare a b)

(* A bare multigraph carries no labels, properties or features: every
   atom is statically false on it. *)
let of_multigraph g =
  {
    num_nodes = Multigraph.num_nodes g;
    num_edges = Multigraph.num_edges g;
    node_labels = Some [];
    edge_labels = Some [];
    node_props = Some [];
    edge_props = Some [];
    feature_dim = Some 0;
  }

let of_labeled g =
  {
    num_nodes = Labeled_graph.num_nodes g;
    num_edges = Labeled_graph.num_edges g;
    node_labels = Some (Labeled_graph.node_label_histogram g);
    edge_labels = Some (Labeled_graph.edge_label_histogram g);
    node_props = Some [];
    edge_props = Some [];
    feature_dim = Some 0;
  }

let of_property g =
  let node_props, edge_props = Property_graph.property_schema g in
  let labeled = Property_graph.to_labeled g in
  {
    num_nodes = Property_graph.num_nodes g;
    num_edges = Property_graph.num_edges g;
    node_labels = Some (Labeled_graph.node_label_histogram labeled);
    edge_labels = Some (Labeled_graph.edge_label_histogram labeled);
    node_props = Some node_props;
    edge_props = Some edge_props;
    feature_dim = Some 0;
  }

(* Vector-labeled graphs answer [Label] atoms through feature 1 (the
   flattening convention of Section 3), so the label vocabulary is the
   set of distinct first-feature values. *)
let of_vector g =
  let dim = Vector_graph.dimension g in
  let feature1 num vec =
    if dim = 0 then []
    else List.init num (fun i -> (vec i).(0))
  in
  {
    num_nodes = Vector_graph.num_nodes g;
    num_edges = Vector_graph.num_edges g;
    node_labels = Some (histogram (feature1 (Vector_graph.num_nodes g) (Vector_graph.node_vector g)));
    edge_labels = Some (histogram (feature1 (Vector_graph.num_edges g) (Vector_graph.edge_vector g)));
    node_props = Some [];
    edge_props = Some [];
    feature_dim = Some dim;
  }

(* A frozen snapshot's vocabulary straight from its freeze-time stats:
   the interned label universes with their multiplicities, no graph
   scan.  Label names are stored as rendered strings, so constants are
   recovered with [Const.of_string] (the inverse of the rendering);
   property names and the feature width are not recorded in the
   snapshot, so those answer Unknown. *)
let of_snapshot (s : Snapshot.t) =
  let universe names counts =
    List.init (Array.length names) (fun i -> (Const.of_string names.(i), counts.(i)))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (a, _) (b, _) -> Const.compare a b)
  in
  {
    num_nodes = s.Snapshot.num_nodes;
    num_edges = s.Snapshot.num_edges;
    node_labels =
      Some (universe s.Snapshot.node_label_names s.Snapshot.stats.Snapshot.node_label_counts);
    edge_labels =
      Some (universe s.Snapshot.label_names s.Snapshot.stats.Snapshot.edge_label_counts);
    node_props = None;
    edge_props = None;
    feature_dim = None;
  }

let find_label hist l = List.find_opt (fun (c, _) -> Const.equal c l) hist

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d nodes, %d edges\n" s.num_nodes s.num_edges);
  let labels name = function
    | None -> Buffer.add_string buf (Printf.sprintf "%s: unknown\n" name)
    | Some hist ->
        Buffer.add_string buf
          (Printf.sprintf "%s: %s\n" name
             (String.concat ", "
                (List.map (fun (l, n) -> Printf.sprintf "%s (%d)" (Const.to_string l) n) hist)))
  in
  labels "node labels" s.node_labels;
  labels "edge labels" s.edge_labels;
  let props name = function
    | None -> Buffer.add_string buf (Printf.sprintf "%s: unknown\n" name)
    | Some ps ->
        Buffer.add_string buf
          (Printf.sprintf "%s: %s\n" name (String.concat ", " (List.map Const.to_string ps)))
  in
  props "node properties" s.node_props;
  props "edge properties" s.edge_props;
  (match s.feature_dim with
  | None -> Buffer.add_string buf "feature dimension: unknown\n"
  | Some d -> Buffer.add_string buf (Printf.sprintf "feature dimension: %d\n" d));
  Buffer.contents buf

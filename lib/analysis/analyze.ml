(* The static query analyzer: a pass pipeline over Regex.t / Nfa.t that
   runs before execution (Angles et al. treat RPQ analysis — emptiness,
   trimming — as the enabler for planning).

   Passes, in order:

     1. test simplification — three-valued evaluation of every test
        against an atom oracle (schema vocabulary or the instance
        itself), strengthened by label-exclusivity reasoning over a
        closed label universe and by an exhaustive truth table for small
        tests (catches pure contradictions like [l & !l]);
     2. regex pruning — statically-false tests propagate upwards
        ([Fwd false] branches disappear, [Seq] with an empty factor is
        empty, [Star] of an empty body is the empty path), followed by
        the Kleene-algebra {!Regex.simplify};
     3. NFA trimming — the Thompson automaton of the pruned expression
        is rebuilt keeping only states reachable from the start AND
        co-reachable from the accept over statically-alive moves;
     4. seed-cost hints — estimated sizes of the first forward frontier
        (edge moves out of the start closure) and first backward
        frontier (edge moves into the accept co-closure), from per-label
        edge multiplicities; the evaluator uses them to pick forward or
        backward seeding.

   The final verdict is [Empty] (no path can ever match: the evaluator
   answers without touching the product) or [Possibly_nonempty] (the
   trimmed automaton and hints feed the kernel).  All rewrites are
   instance-truth-preserving, so analysis on/off is observationally
   identical — checked by property tests. *)

open Gqkg_graph
open Gqkg_automata

type verdict = Empty | Possibly_nonempty

type report = {
  verdict : verdict;
  regex : Regex.t;
  nfa : Nfa.t option;
  diagnostics : Diagnostic.t list;
  fwd_cost : float;
  bwd_cost : float;
  states_before : int;
  states_after : int;
}

(* Global switch consulted by the core entry points (see Planner); the
   off position restores pre-analyzer behavior exactly, which is what
   the equivalence property tests and the bench comparisons toggle. *)
let enabled = ref true

let is_empty r = match r.verdict with Empty -> true | Possibly_nonempty -> false

(* ---- Atom oracles ---------------------------------------------------- *)

type context = Cnode | Cedge

type atom_verdict = V_true | V_false | V_unknown

(* A closed label universe: every label that actually occurs, as a pair
   of an evaluator for label-pure tests and the label's multiplicity.
   Works both over schema constants and over an instance's interned
   label ids, which is why the evaluator is abstract. *)
type universe = ((Regex.test -> bool) * int) list

type oracle = {
  atom : context -> Atom.t -> atom_verdict * Diagnostic.t option;
  node_universe : universe option;
  edge_universe : universe option;
  default_edge_cost : float;
}

let where = function Cnode -> "node" | Cedge -> "edge"

(* ---- Three-valued test simplification -------------------------------- *)

type tri = T | F | U of Regex.test

let rec tri_of av ctx t =
  match t with
  | Regex.Atom a -> ( match av ctx a with V_true -> T | V_false -> F | V_unknown -> U t)
  | Regex.Not t1 -> ( match tri_of av ctx t1 with T -> F | F -> T | U t' -> U (Regex.Not t'))
  | Regex.Or (a, b) -> (
      match (tri_of av ctx a, tri_of av ctx b) with
      | T, _ | _, T -> T
      | F, x | x, F -> x
      | U a', U b' -> U (Regex.Or (a', b')))
  | Regex.And (a, b) -> (
      match (tri_of av ctx a, tri_of av ctx b) with
      | F, _ | _, F -> F
      | T, x | x, T -> x
      | U a', U b' -> U (Regex.And (a', b')))

let distinct_atoms t =
  let rec go acc = function
    | Regex.Atom a -> if List.exists (Atom.equal a) acc then acc else a :: acc
    | Regex.Not t -> go acc t
    | Regex.Or (a, b) | Regex.And (a, b) -> go (go acc a) b
  in
  go [] t

(* Exhaustive truth table over the distinct atoms of a (small) test.
   Atoms are treated as independent, which is sound for both directions
   we use: unsatisfiable under free assignments implies unsatisfiable on
   any graph, and tautological under free assignments implies always
   true. *)
let truth_table_limit = 12

let truth_table t =
  let atoms = Array.of_list (distinct_atoms t) in
  let n = Array.length atoms in
  if n > truth_table_limit then `Open
  else begin
    let any = ref false and all = ref true in
    let mask = ref 0 in
    let limit = 1 lsl n in
    while (not !any || !all) && !mask < limit do
      let m = !mask in
      let sat a =
        let rec idx i = if Atom.equal atoms.(i) a then i else idx (i + 1) in
        m land (1 lsl idx 0) <> 0
      in
      if Regex.eval_test sat t then any := true else all := false;
      incr mask
    done;
    if not !any then `Never else if !all then `Always else `Open
  end

(* Boolean-only simplification (no vocabulary): what pass 1 does with an
   oracle that knows nothing.  Exposed for unit tests and the CLI. *)
let simplify_test t =
  match tri_of (fun _ _ -> V_unknown) Cnode t with
  | T -> `T
  | F -> `F
  | U t' -> ( match truth_table t' with `Never -> `F | `Always -> `T | `Open -> `Test t')

(* ---- NFA trimming ----------------------------------------------------- *)

let reachable n adj root =
  let seen = Array.make n false in
  let stack = ref [ root ] in
  seen.(root) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun q' ->
            if not seen.(q') then begin
              seen.(q') <- true;
              stack := q' :: !stack
            end)
          adj.(q)
  done;
  seen

(* Keep only states reachable from the start and co-reachable from the
   accept over moves the [alive] predicate admits, renumbering densely.
   [None] when the accept is unreachable — the automaton's language is
   empty. *)
let trim nfa ~alive =
  let n = Nfa.num_states nfa in
  let edges = ref [] in
  for q = n - 1 downto 0 do
    List.iter
      (fun (m, q') -> if alive m then edges := (q, m, q') :: !edges)
      (Nfa.transitions nfa q)
  done;
  let fwd_adj = Array.make n [] and bwd_adj = Array.make n [] in
  List.iter
    (fun (q, _, q') ->
      fwd_adj.(q) <- q' :: fwd_adj.(q);
      bwd_adj.(q') <- q :: bwd_adj.(q'))
    !edges;
  let reach = reachable n fwd_adj (Nfa.start nfa) in
  let coreach = reachable n bwd_adj (Nfa.accept nfa) in
  let keep = Array.init n (fun q -> reach.(q) && coreach.(q)) in
  if not (keep.(Nfa.start nfa) && keep.(Nfa.accept nfa)) then None
  else if
    (* Nothing removed: keep the original automaton object, preserving
       its transition order (and thus the kernel's exploration order)
       exactly — the analyzer must be free when it has nothing to say. *)
    Array.for_all Fun.id keep
    && List.length !edges
       = Array.fold_left ( + ) 0 (Array.init n (fun q -> List.length (Nfa.transitions nfa q)))
  then Some nfa
  else begin
    let remap = Array.make n (-1) in
    let count = ref 0 in
    for q = 0 to n - 1 do
      if keep.(q) then begin
        remap.(q) <- !count;
        incr count
      end
    done;
    let transitions =
      List.filter_map
        (fun (q, m, q') ->
          if keep.(q) && keep.(q') then Some (remap.(q), m, remap.(q')) else None)
        !edges
    in
    Some
      (Nfa.make ~num_states:!count ~start:remap.(Nfa.start nfa) ~accept:remap.(Nfa.accept nfa)
         ~transitions)
  end

(* ---- Seed-cost hints --------------------------------------------------- *)

(* Estimated number of edges examined by the first expansion when
   evaluating forwards (edge moves out of the start's spontaneous
   closure) vs backwards (edge moves into the accept's spontaneous
   co-closure).  Node-checks are optimistically assumed passable. *)
let seed_costs nfa ~edge_cost =
  let n = Nfa.num_states nfa in
  let spont = Array.make n [] and spont_rev = Array.make n [] in
  let edge_out = Array.make n [] in
  for q = 0 to n - 1 do
    List.iter
      (fun (m, q') ->
        match m with
        | Nfa.Eps | Nfa.Node_check _ ->
            spont.(q) <- q' :: spont.(q);
            spont_rev.(q') <- q :: spont_rev.(q')
        | Nfa.Forward t | Nfa.Backward t -> edge_out.(q) <- (t, q') :: edge_out.(q))
      (Nfa.transitions nfa q)
  done;
  let start_set = reachable n spont (Nfa.start nfa) in
  let accept_co = reachable n spont_rev (Nfa.accept nfa) in
  let fwd = ref 0.0 and bwd = ref 0.0 in
  for q = 0 to n - 1 do
    List.iter
      (fun (t, q') ->
        if start_set.(q) then fwd := !fwd +. edge_cost t;
        if accept_co.(q') then bwd := !bwd +. edge_cost t)
      edge_out.(q)
  done;
  (!fwd, !bwd)

(* ---- Vocabulary suggestions ------------------------------------------- *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (prev.(j) + 1) (cur.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* Closest vocabulary entry within edit distance 2, for "did you mean"
   hints on unknown labels. *)
let suggest name candidates =
  let target = Const.to_string name in
  List.fold_left
    (fun acc c ->
      let d = levenshtein target (Const.to_string c) in
      if d = 0 || d > 2 then acc
      else
        match acc with
        | Some (_, best) when best <= d -> acc
        | _ -> Some (c, d))
    None candidates
  |> Option.map fst

(* ---- Oracles ---------------------------------------------------------- *)

let universe_of_histogram hist =
  Option.map
    (List.map (fun (l, n) ->
         let sat = function Atom.Label c -> Const.equal c l | Atom.Prop _ | Atom.Feature _ -> false in
         ((fun t -> Regex.eval_test sat t), n)))
    hist

(* Schema-backed oracle: vocabulary misses are statically false and get
   a lint diagnostic; everything inside the vocabulary stays unknown
   (except labels carried by every object, which are true). *)
let of_schema = function
  | None ->
      {
        atom = (fun _ _ -> (V_unknown, None));
        node_universe = None;
        edge_universe = None;
        default_edge_cost = 1.0;
      }
  | Some (s : Schema.t) ->
      let atom ctx a =
        let sub = Atom.to_query_string a in
        match a with
        | Atom.Label l -> begin
            let hist, total =
              match ctx with
              | Cnode -> (s.node_labels, s.num_nodes)
              | Cedge -> (s.edge_labels, s.num_edges)
            in
            match hist with
            | None -> (V_unknown, None)
            | Some hist -> (
                match Schema.find_label hist l with
                | Some (_, n) when n = total && total > 0 -> (V_true, None)
                | Some _ -> (V_unknown, None)
                | None ->
                    let hint =
                      match suggest l (List.map fst hist) with
                      | Some c -> Printf.sprintf " (did you mean `%s`?)" (Const.to_string c)
                      | None -> ""
                    in
                    ( V_false,
                      Some
                        (Diagnostic.make ~code:"GQ001" ~severity:Warning ~subterm:sub
                           ~message:
                             (Printf.sprintf "label `%s` does not occur on any %s%s"
                                (Const.to_string l) (where ctx) hint)) ))
          end
        | Atom.Prop (p, _) -> begin
            let props = match ctx with Cnode -> s.node_props | Cedge -> s.edge_props in
            match props with
            | None -> (V_unknown, None)
            | Some ps when List.exists (Const.equal p) ps -> (V_unknown, None)
            | Some _ ->
                ( V_false,
                  Some
                    (Diagnostic.make ~code:"GQ002" ~severity:Warning ~subterm:sub
                       ~message:
                         (Printf.sprintf "property `%s` never occurs on a %s" (Const.to_string p)
                            (where ctx))) )
          end
        | Atom.Feature (i, _) -> (
            match s.feature_dim with
            | None -> (V_unknown, None)
            | Some d when i <= d -> (V_unknown, None)
            | Some d ->
                ( V_false,
                  Some
                    (Diagnostic.make ~code:"GQ003" ~severity:Warning ~subterm:sub
                       ~message:
                         (Printf.sprintf "feature index %d exceeds the graph dimension %d" i d)) ))
      in
      {
        atom;
        node_universe = universe_of_histogram s.node_labels;
        edge_universe = universe_of_histogram s.edge_labels;
        default_edge_cost = float_of_int (max s.num_edges 1);
      }

(* Snapshot-backed oracle (the execution path): per-atom exists/forall
   answers from the data itself.  Label atoms on edges read the
   snapshot's precomputed label-frequency stats (O(labels), no edge
   scan at all); other atoms fall back to a single scan, memoized per
   distinct atom. *)
let of_snapshot (inst : Snapshot.t) =
  let edge_universe =
    lazy
      (if inst.Snapshot.num_labels = 0 then None
       else begin
         let counts = inst.Snapshot.stats.Snapshot.edge_label_counts in
         let label_sat = inst.Snapshot.label_sat in
         let out = ref [] in
         for id = inst.Snapshot.num_labels - 1 downto 0 do
           if counts.(id) > 0 then
             out := ((fun t -> Regex.eval_test (label_sat id) t), counts.(id)) :: !out
         done;
         Some !out
       end)
  in
  let scan n sat =
    let exists = ref false and forall = ref true in
    let i = ref 0 in
    while !i < n && not (!exists && not !forall) do
      if sat !i then exists := true else forall := false;
      incr i
    done;
    (!exists, !forall && n > 0)
  in
  let memo = Hashtbl.create 16 in
  let info ctx a =
    let key = (ctx = Cedge, a) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
        let v =
          match (ctx, a, Lazy.force edge_universe) with
          | Cedge, Atom.Label _, Some u ->
              let t = Regex.Atom a in
              let exists = List.exists (fun (ev, _) -> ev t) u in
              let forall = u <> [] && List.for_all (fun (ev, _) -> ev t) u in
              (exists, forall)
          | Cnode, _, _ -> scan inst.Snapshot.num_nodes (fun v -> inst.Snapshot.node_atom v a)
          | Cedge, _, _ -> scan inst.Snapshot.num_edges (fun e -> inst.Snapshot.edge_atom e a)
        in
        Hashtbl.add memo key v;
        v
  in
  let atom ctx a =
    let exists, forall = info ctx a in
    if not exists then begin
      let code, what =
        match a with
        | Atom.Label l -> ("GQ001", Printf.sprintf "label `%s`" (Const.to_string l))
        | Atom.Prop (p, _) -> ("GQ002", Printf.sprintf "property test `%s`" (Atom.to_query_string a) ^ Printf.sprintf " (property `%s`)" (Const.to_string p))
        | Atom.Feature _ -> ("GQ003", Printf.sprintf "feature test `%s`" (Atom.to_query_string a))
      in
      ( V_false,
        Some
          (Diagnostic.make ~code ~severity:Warning ~subterm:(Atom.to_query_string a)
             ~message:(Printf.sprintf "%s matches no %s in the graph" what (where ctx))) )
    end
    else if forall then (V_true, None)
    else (V_unknown, None)
  in
  {
    atom;
    node_universe = None;
    edge_universe = Lazy.force edge_universe;
    default_edge_cost = float_of_int (max inst.Snapshot.num_edges 1);
  }

(* Static atom verdict against a schema vocabulary, shared with the
   decision procedures in Decide: an atom outside a closed universe is
   statically false there exactly when the GQ001/002/003 pass would say
   so, which is what keeps containment verdicts consistent with lint
   (no false "subsumed" reports on out-of-vocabulary labels). *)
let schema_atom_verdict schema ~edge a =
  let o = of_schema schema in
  match fst (o.atom (if edge then Cedge else Cnode) a) with
  | V_true -> `True
  | V_false -> `False
  | V_unknown -> `Unknown

(* ---- The pipeline ----------------------------------------------------- *)

let analyze_with (o : oracle) regex =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let atom_memo = Hashtbl.create 16 in
  (* Memoized atom verdicts; the vocabulary diagnostic of an atom is
     emitted once, on first use. *)
  let av ctx a =
    let key = (ctx = Cedge, a) in
    match Hashtbl.find_opt atom_memo key with
    | Some v -> v
    | None ->
        let v, d = o.atom ctx a in
        Option.iter add d;
        Hashtbl.add atom_memo key v;
        v
  in
  let universe_for = function Cnode -> o.node_universe | Cedge -> o.edge_universe in
  (* Label exclusivity: every node/edge carries exactly one label, so a
     label-pure test holds on an object iff it holds on the object's
     label; a closed universe then decides the test. *)
  let universe_verdict ctx t =
    match universe_for ctx with
    | Some u when Regex.label_pure t ->
        let sats = List.length (List.filter (fun (ev, _) -> ev t) u) in
        if sats = 0 then `Never else if sats = List.length u then `Always else `Open
    | _ -> `Open
  in
  let tautology_info t0 =
    if not (Regex.equal_test t0 Regex.any_test) then
      add
        (Diagnostic.make ~code:"GQ011" ~severity:Info
           ~subterm:(Regex.test_to_string ~top:true t0)
           ~message:"test always holds; equivalent to the any-test")
  in
  let analyze_test ctx t0 =
    match tri_of av ctx t0 with
    | T -> `T
    | F -> `F
    | U t -> (
        match universe_verdict ctx t with
        | `Never ->
            add
              (Diagnostic.make ~code:"GQ013" ~severity:Warning
                 ~subterm:(Regex.test_to_string ~top:true t0)
                 ~message:
                   (Printf.sprintf "no occurring %s label satisfies this test" (where ctx)));
            `F
        | `Always ->
            tautology_info t0;
            `T
        | `Open -> (
            match truth_table t with
            | `Never ->
                add
                  (Diagnostic.make ~code:"GQ010" ~severity:Warning
                     ~subterm:(Regex.test_to_string ~top:true t0)
                     ~message:"test is unsatisfiable (contradiction)");
                `F
            | `Always ->
                tautology_info t0;
                `T
            | `Open -> `Test t))
  in
  (* Quiet variant for the trimming pass: same verdicts, no duplicate
     diagnostics (the atom memo already holds the answers). *)
  let statically_false ctx t =
    match tri_of av ctx t with
    | F -> true
    | T -> false
    | U t' -> (
        match universe_verdict ctx t' with
        | `Never -> true
        | `Always -> false
        | `Open -> ( match truth_table t' with `Never -> true | `Always | `Open -> false))
  in
  let alive = function
    | Nfa.Eps -> true
    | Nfa.Node_check t -> not (statically_false Cnode t)
    | Nfa.Forward t | Nfa.Backward t -> not (statically_false Cedge t)
  in
  let prune_diag sub reason = add (Diagnostic.make ~code:"GQ012" ~severity:Info ~subterm:sub ~message:reason) in
  let rec prune r =
    match r with
    | Regex.Node_test t -> (
        match analyze_test Cnode t with
        | `F -> None
        | `T -> Some (Regex.Node_test Regex.any_test)
        | `Test t' -> Some (Regex.Node_test t'))
    | Regex.Fwd t -> (
        match analyze_test Cedge t with
        | `F -> None
        | `T -> Some (Regex.Fwd Regex.any_test)
        | `Test t' -> Some (Regex.Fwd t'))
    | Regex.Bwd t -> (
        match analyze_test Cedge t with
        | `F -> None
        | `T -> Some (Regex.Bwd Regex.any_test)
        | `Test t' -> Some (Regex.Bwd t'))
    | Regex.Alt (a, b) -> (
        match (prune a, prune b) with
        | None, None -> None
        | None, Some b' ->
            prune_diag (Regex.to_string ~top:true a) "alternation branch can never match; pruned";
            Some b'
        | Some a', None ->
            prune_diag (Regex.to_string ~top:true b) "alternation branch can never match; pruned";
            Some a'
        | Some a', Some b' -> Some (Regex.Alt (a', b')))
    | Regex.Seq (a, b) -> (
        match (prune a, prune b) with Some a', Some b' -> Some (Regex.Seq (a', b')) | _ -> None)
    | Regex.Star body -> (
        match prune body with
        | None ->
            prune_diag
              (Regex.to_string ~top:true r)
              "iterated expression can never match; (r)* reduces to the empty path";
            Some (Regex.Node_test Regex.any_test)
        | Some body' -> Some (Regex.Star body'))
  in
  let edge_cost t =
    match o.edge_universe with
    | Some u when Regex.label_pure t ->
        List.fold_left (fun acc (ev, n) -> if ev t then acc +. float_of_int n else acc) 0.0 u
    | _ -> o.default_edge_cost
  in
  let finish_empty () =
    add
      (Diagnostic.make ~code:"GQ000" ~severity:Error ~subterm:(Regex.to_string ~top:true regex)
         ~message:"query is statically empty: no path can ever match");
    {
      verdict = Empty;
      regex;
      nfa = None;
      diagnostics = Diagnostic.sort (List.rev !diags);
      fwd_cost = 0.0;
      bwd_cost = 0.0;
      states_before = 0;
      states_after = 0;
    }
  in
  match prune regex with
  | None -> finish_empty ()
  | Some pruned -> (
      let simplified = Regex.simplify pruned in
      let nfa0 = Nfa.of_regex simplified in
      let before = Nfa.num_states nfa0 in
      match trim nfa0 ~alive with
      | None -> finish_empty ()
      | Some nfa ->
          let after = Nfa.num_states nfa in
          if after < before then
            add
              (Diagnostic.make ~code:"GQ020" ~severity:Info ~subterm:""
                 ~message:(Printf.sprintf "NFA trimming removed %d of %d states" (before - after) before));
          let fwd_cost, bwd_cost = seed_costs nfa ~edge_cost in
          {
            verdict = Possibly_nonempty;
            regex = simplified;
            nfa = Some nfa;
            diagnostics = Diagnostic.sort (List.rev !diags);
            fwd_cost;
            bwd_cost;
            states_before = before;
            states_after = after;
          })

(* ---- Entry points ----------------------------------------------------- *)

(* Lint path: static, against an (optional) schema vocabulary. *)
let run ?schema regex = analyze_with (of_schema schema) regex

(* Execution path: against the instance the query is about to run on. *)
let plan inst regex = analyze_with (of_snapshot inst) regex

let plan_if_enabled inst regex = if !enabled then Some (plan inst regex) else None

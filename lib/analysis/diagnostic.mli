(** Structured findings of the static query analyzer: a stable code, a
    severity, the concrete-syntax subterm the finding is anchored to,
    and a message. Codes are documented in DESIGN.md §"Static analysis". *)

type severity = Error | Warning | Info

type t = { code : string; severity : severity; subterm : string; message : string }

val make : code:string -> severity:severity -> subterm:string -> message:string -> t
val severity_to_string : severity -> string

(** One-line human rendering: [severity CODE at `subterm`: message]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Minimal JSON string escaping (quotes, backslashes, control bytes);
    shared by the CLI's JSON emitters. *)
val json_escape : string -> string

(** One JSON object with code/severity/subterm/message fields. *)
val to_json : t -> string

(** Errors first, then warnings, then infos (stable). *)
val sort : t list -> t list

val has_errors : t list -> bool

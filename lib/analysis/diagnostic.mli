(** Structured findings of the static query analyzer: a stable code, a
    severity, the concrete-syntax subterm the finding is anchored to,
    and a message. Codes are documented in DESIGN.md §"Static analysis". *)

type severity = Error | Warning | Info

type t = { code : string; severity : severity; subterm : string; message : string }

val make : code:string -> severity:severity -> subterm:string -> message:string -> t
val severity_to_string : severity -> string

(** One-line human rendering: [severity CODE at `subterm`: message]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Minimal JSON string escaping (quotes, backslashes, control bytes);
    shared by the CLI's JSON emitters. *)
val json_escape : string -> string

(** One JSON object with code/severity/subterm/message fields. *)
val to_json : t -> string

(** Errors first, then warnings, then infos (stable). *)
val sort : t list -> t list

val has_errors : t list -> bool

(** Stable code for a budget-exhaustion reason: GQ030 timeout, GQ031
    state limit, GQ032 step limit, GQ033 injected (fault harness),
    GQ034 cancelled (signal or server drain). *)
val budget_code : Gqkg_util.Budget.reason -> string

(** The GQ03x warning describing why (and after how much consumption) an
    evaluation under this budget returned a partial result; [None] while
    the budget has not tripped.  The CLI maps its presence to exit
    code 3. *)
val of_budget : Gqkg_util.Budget.t -> t option

(** A GQ04x user-input error (malformed file, unparsable query, bad
    argument): rendered structurally by the CLI with exit code 2 instead
    of a raw exception backtrace. *)
val user_error : code:string -> subterm:string -> message:string -> t

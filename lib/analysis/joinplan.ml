(* Variable-order selection for the worst-case-optimal join engine: the
   pure planning half of lib/core/join.  Greedy smallest-estimate-first,
   staying connected to the chosen prefix when possible. *)

type atom_stat = {
  vars : int array;
  size : float;
  distinct : float array;
  label : string;
}

let validate ~num_vars atoms =
  List.iter
    (fun a ->
      if Array.length a.vars <> Array.length a.distinct then
        invalid_arg "Joinplan: vars/distinct length mismatch";
      Array.iter
        (fun v ->
          if v < 0 || v >= num_vars then invalid_arg "Joinplan: variable id out of range")
        a.vars)
    atoms

(* Cheapest way atom [a] can enumerate candidate values for [v], given
   the set of already-chosen variables: with nothing bound it is the
   column's distinct count; with siblings bound it is the expected
   fan-out size / prod(distinct of bound siblings), floored at 1. *)
let atom_score chosen a v =
  let bound_product = ref 1.0 and any_bound = ref false and mine = ref infinity in
  Array.iteri
    (fun i w ->
      if w = v then mine := a.distinct.(i)
      else if chosen.(w) then begin
        any_bound := true;
        bound_product := !bound_product *. Float.max 1.0 a.distinct.(i)
      end)
    a.vars;
  if !mine = infinity then infinity (* atom does not mention v *)
  else if !any_bound then Float.max 1.0 (a.size /. !bound_product)
  else !mine

let score chosen atoms v =
  List.fold_left (fun acc a -> Float.min acc (atom_score chosen a v)) infinity atoms

let choose_order ~num_vars atoms =
  validate ~num_vars atoms;
  let chosen = Array.make num_vars false in
  let order = ref [] and picked = ref 0 in
  let mentioned = Array.make num_vars false in
  List.iter (fun a -> Array.iter (fun v -> mentioned.(v) <- true) a.vars) atoms;
  let adjacent v =
    List.exists
      (fun a ->
        Array.exists (( = ) v) a.vars && Array.exists (fun w -> chosen.(w)) a.vars)
      atoms
  in
  let num_mentioned = Array.fold_left (fun n m -> if m then n + 1 else n) 0 mentioned in
  while !picked < num_mentioned do
    let best = ref (-1) and best_score = ref infinity and best_adj = ref false in
    for v = num_vars - 1 downto 0 do
      if mentioned.(v) && not chosen.(v) then begin
        let s = score chosen atoms v in
        let adj = !picked > 0 && adjacent v in
        (* Connected candidates always beat disconnected ones; within a
           class, smaller estimate wins, then smaller id (the downto loop
           makes the last assignment the smallest id on ties). *)
        let better =
          match (adj, !best_adj) with
          | true, false -> !picked > 0
          | false, true -> false
          | _ -> s <= !best_score || !best < 0
        in
        if better then begin
          best := v;
          best_score := s;
          best_adj := adj
        end
      end
    done;
    chosen.(!best) <- true;
    order := !best :: !order;
    incr picked
  done;
  (* Unmentioned variables last, in id order. *)
  for v = num_vars - 1 downto 0 do
    if not mentioned.(v) then order := v :: !order
  done;
  Array.of_list (List.rev !order)

let describe ~var_name atoms ~order =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "variable order: ";
  Buffer.add_string buf
    (String.concat " -> " (Array.to_list (Array.map var_name order)));
  Buffer.add_string buf "\nper-atom estimates:\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: ~%.0f tuples, distinct %s\n" a.label a.size
           (String.concat "/"
              (Array.to_list
                 (Array.mapi
                    (fun i v -> Printf.sprintf "%s:%.0f" (var_name v) a.distinct.(i))
                    a.vars)))))
    atoms;
  Buffer.contents buf

(* Regular expressions over graphs, grammar (1) of Section 4 together with
   its property-graph and vector-labeled extensions:

     test ::= ℓ | (p = v) | (f_i = v) | (¬test) | (test ∨ test) | (test ∧ test)
     r    ::= ?test | test | test⁻ | (r + r) | (r / r) | (r)*

   A test is a boolean combination of atomic tests (Atom.t); which atoms a
   given data model supports is the model's business (Snapshot.t oracle). *)

open Gqkg_graph

type test = Atom of Atom.t | Not of test | Or of test * test | And of test * test

type t =
  | Node_test of test  (** [?test] — zero-length paths at satisfying nodes *)
  | Fwd of test  (** [test] — one forward edge whose label/properties satisfy it *)
  | Bwd of test  (** [test⁻] — one edge traversed against its direction *)
  | Alt of t * t  (** [(r + r)] *)
  | Seq of t * t  (** [(r / r)] *)
  | Star of t  (** [(r)*] — Kleene iteration *)

(* Smart constructors for the derived forms. *)
let label l = Fwd (Atom (Atom.label l))
let node_label l = Node_test (Atom (Atom.label l))

(* A tautological test: satisfied by every node and edge. *)
let any_test = Or (Atom (Atom.Label Const.bottom), Not (Atom (Atom.Label Const.bottom)))
let any_edge = Fwd any_test
let opt r = Alt (Node_test any_test, r)
let plus r = Seq (r, Star r)

let rec seq_of_list = function
  | [] -> invalid_arg "Regex.seq_of_list: empty"
  | [ r ] -> r
  | r :: rest -> Seq (r, seq_of_list rest)

let rec alt_of_list = function
  | [] -> invalid_arg "Regex.alt_of_list: empty"
  | [ r ] -> r
  | r :: rest -> Alt (r, alt_of_list rest)

(* Evaluate a test given an oracle for its atoms (the usual interpretation
   of the boolean connectives, omitted in the paper). *)
let rec eval_test sat = function
  | Atom a -> sat a
  | Not t -> not (eval_test sat t)
  | Or (t1, t2) -> eval_test sat t1 || eval_test sat t2
  | And (t1, t2) -> eval_test sat t1 && eval_test sat t2

(* Does the test only mention [Label] atoms?  Such a test is a pure
   function of an edge's label, so the product kernel can evaluate it
   once per interned label instead of once per edge. *)
let rec label_pure = function
  | Atom (Atom.Label _) -> true
  | Atom (Atom.Prop _ | Atom.Feature _) -> false
  | Not t -> label_pure t
  | Or (t1, t2) | And (t1, t2) -> label_pure t1 && label_pure t2

let rec test_size = function
  | Atom _ -> 1
  | Not t -> 1 + test_size t
  | Or (t1, t2) | And (t1, t2) -> 1 + test_size t1 + test_size t2

let rec size = function
  | Node_test t | Fwd t | Bwd t -> 1 + test_size t
  | Alt (r1, r2) | Seq (r1, r2) -> 1 + size r1 + size r2
  | Star r -> 1 + size r

(* Shortest possible length (number of edges) of a matching path; used by
   the enumeration pruning and as a sanity bound. *)
let rec min_path_length = function
  | Node_test _ -> 0
  | Fwd _ | Bwd _ -> 1
  | Alt (r1, r2) -> min (min_path_length r1) (min_path_length r2)
  | Seq (r1, r2) -> min_path_length r1 + min_path_length r2
  | Star _ -> 0

(* Can the expression match a path of unbounded length? *)
let rec unbounded = function
  | Node_test _ | Fwd _ | Bwd _ -> false
  | Alt (r1, r2) -> unbounded r1 || unbounded r2
  | Seq (r1, r2) -> unbounded r1 || unbounded r2
  | Star r -> not (only_node_tests r)

and only_node_tests = function
  | Node_test _ -> true
  | Fwd _ | Bwd _ -> false
  | Alt (r1, r2) | Seq (r1, r2) -> only_node_tests r1 && only_node_tests r2
  | Star r -> only_node_tests r

(* Maximum length of a matching path, when bounded. *)
let max_path_length r =
  let rec go = function
    | Node_test _ -> Some 0
    | Fwd _ | Bwd _ -> Some 1
    | Alt (r1, r2) -> (
        match (go r1, go r2) with Some a, Some b -> Some (max a b) | _ -> None)
    | Seq (r1, r2) -> ( match (go r1, go r2) with Some a, Some b -> Some (a + b) | _ -> None)
    | Star r -> if only_node_tests r then Some 0 else None
  in
  go r

(* Reversal: [[reverse r]] is [[r]] with every path read back to front.
   Edge steps swap direction, concatenations swap order, node tests stay
   (a zero-length path is its own reverse).  Used by the evaluator to run
   a query from its targets when the analyzer's seed-cost hints say the
   backward frontier is cheaper. *)
let rec reverse = function
  | Node_test t -> Node_test t
  | Fwd t -> Bwd t
  | Bwd t -> Fwd t
  | Alt (r1, r2) -> Alt (reverse r1, reverse r2)
  | Seq (r1, r2) -> Seq (reverse r2, reverse r1)
  | Star r -> Star (reverse r)

(* Concrete syntax, matching what the parser accepts (ASCII for ¬ ∨ ∧). *)
let rec test_to_string ?(top = false) t =
  let wrap s = if top then s else "(" ^ s ^ ")" in
  match t with
  | Atom a -> Atom.to_query_string a
  | Not t -> "!" ^ test_to_string t
  | Or (t1, t2) -> wrap (test_to_string t1 ^ " | " ^ test_to_string t2)
  | And (t1, t2) -> wrap (test_to_string t1 ^ " & " ^ test_to_string t2)

let rec to_string ?(top = false) r =
  let wrap s = if top then s else "(" ^ s ^ ")" in
  match r with
  | Node_test t -> "?" ^ test_to_string t
  | Fwd t -> test_to_string t
  | Bwd t -> test_to_string t ^ "^-"
  | Alt (r1, r2) -> wrap (to_string r1 ^ " + " ^ to_string r2)
  | Seq (r1, r2) -> wrap (to_string r1 ^ "/" ^ to_string r2)
  | Star r -> to_string r ^ "*"

let pp ppf r = Fmt.string ppf (to_string ~top:true r)

let rec equal_test a b =
  match (a, b) with
  | Atom x, Atom y -> Atom.equal x y
  | Not x, Not y -> equal_test x y
  | Or (x1, x2), Or (y1, y2) | And (x1, x2), And (y1, y2) -> equal_test x1 y1 && equal_test x2 y2
  | (Atom _ | Not _ | Or _ | And _), _ -> false

let rec equal a b =
  match (a, b) with
  | Node_test x, Node_test y | Fwd x, Fwd y | Bwd x, Bwd y -> equal_test x y
  | Alt (x1, x2), Alt (y1, y2) | Seq (x1, x2), Seq (y1, y2) -> equal x1 y1 && equal x2 y2
  | Star x, Star y -> equal x y
  | (Node_test _ | Fwd _ | Bwd _ | Alt _ | Seq _ | Star _), _ -> false

(* Algebraic simplification: a bottom-up rewriting pass applying the
   Kleene-algebra identities that shrink the Thompson automaton without
   changing [[r]]:

     r + r = r          star of star = star     (?any)/r = r = r/(?any)
     star of opt = star     star/star = star     Alt/Seq deduplication

   ?any is the tautological node test (matched by every node), the unit
   of concatenation.  Equivalence is checked by property tests against
   the unsimplified expression on random graphs. *)

let is_any_node_test = function
  | Node_test (Or (Atom a, Not (Atom b))) -> Gqkg_graph.Atom.equal a b
  | Node_test _ | Fwd _ | Bwd _ | Alt _ | Seq _ | Star _ -> false

let rec simplify r =
  match r with
  | Node_test _ | Fwd _ | Bwd _ -> r
  | Alt (a, b) -> begin
      let a = simplify a and b = simplify b in
      (* Deduplicate across the whole alternation, preserving order. *)
      let rec branches = function Alt (x, y) -> branches x @ branches y | r -> [ r ] in
      let all = branches (Alt (a, b)) in
      let distinct =
        List.fold_left (fun acc r -> if List.exists (equal r) acc then acc else r :: acc) [] all
        |> List.rev
      in
      alt_of_list distinct
    end
  | Seq (a, b) -> begin
      match (simplify a, simplify b) with
      | a, b when is_any_node_test a -> b (* unit elimination *)
      | a, b when is_any_node_test b -> a
      | Star x, Star y when equal x y -> Star x (* star/star = star *)
      | a, b -> Seq (a, b)
    end
  | Star r -> begin
      match simplify r with
      | Star inner -> Star inner (* star of star *)
      | Alt (x, inner) when is_any_node_test x -> begin
          (* star of opt = star *)
          match inner with Star deep -> Star deep | inner -> Star inner
        end
      | inner when is_any_node_test inner -> inner (* (?any)* = ?any *)
      | inner -> Star inner
    end

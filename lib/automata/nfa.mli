(** Guarded NFAs compiled from Section 4 regular expressions (Thompson's
    construction). Transitions are moves evaluated against a data-model
    oracle rather than letters of a fixed alphabet. *)

type move =
  | Eps  (** spontaneous *)
  | Node_check of Regex.test  (** spontaneous, if the current node passes *)
  | Forward of Regex.test  (** consume an edge along its direction *)
  | Backward of Regex.test  (** consume an edge against its direction *)

type t

(** Linear-size Thompson construction: single start, single accept. *)
val of_regex : Regex.t -> t

(** Assemble an automaton from an explicit transition list (used by the
    static analyzer to rebuild a trimmed automaton). States must lie in
    [0, num_states); raises [Invalid_argument] otherwise. The kernel
    tables are precomputed exactly as for {!of_regex}. *)
val make :
  num_states:int -> start:int -> accept:int -> transitions:(int * move * int) list -> t

(** Recognizer of the reversed language: transitions flip, edge moves
    swap direction, start and accept swap. Used by the planner to
    evaluate a query backwards when backward seeding is cheaper. *)
val reverse : t -> t

val num_states : t -> int
val start : t -> int
val accept : t -> int
val transitions : t -> int -> (move * int) list

(** [Bitset] words per state set ([Bitset.words_for (num_states a)]). *)
val words : t -> int

(** Number of node-check move occurrences in the automaton; each has a
    stable index in [0, num_checks), usable to cache check outcomes per
    graph node. *)
val num_checks : t -> int

(** The test of each check occurrence, indexed by its stable index.
    Evaluating all of them at a node yields the node's complete
    check-answer vector — everything a closure's outcome can depend on
    beyond the seed set. *)
val check_tests : t -> Regex.test array

(** Forward edge moves out of one state, as a precomputed array. *)
val fwd_moves : t -> int -> (Regex.test * int) array

(** Backward edge moves out of one state. *)
val bwd_moves : t -> int -> (Regex.test * int) array

(** Closure of a state set under ε and satisfied node-checks; [node_sat]
    answers atomic tests for the current node. Sorted and duplicate-free
    (the canonical key of the subset construction). *)
val closure : t -> node_sat:(Gqkg_graph.Atom.t -> bool) -> int array -> int array

(** In-place closure on raw {!Gqkg_util.Bitset} words of width
    [words a] — the kernel path: O(words) bookkeeping, no sorting. *)
val close_raw : t -> node_sat:(Gqkg_graph.Atom.t -> bool) -> int array -> unit

(** Like {!close_raw}, but node-checks are answered by
    [check_sat idx test] where [idx] is the check occurrence's index —
    the hook the product uses to cache check outcomes per node. *)
val close_raw_idx : t -> check_sat:(int -> Regex.test -> bool) -> int array -> unit

(** Does the (closed) set contain the accept state? *)
val is_accepting : t -> int array -> bool

(** Edge-consuming moves out of a state set: (test, target) pairs,
    (forward, backward). *)
val edge_moves : t -> int array -> (Regex.test * int) list * (Regex.test * int) list

(** Human-readable dump. *)
val to_string : t -> string

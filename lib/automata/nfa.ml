(* Guarded non-deterministic finite automata compiled from the Section 4
   regular expressions (Thompson's construction).

   The alphabet is not a fixed set of letters: transitions are *guarded
   moves* evaluated against a data-model oracle (Snapshot.t):

     - [Eps]           : spontaneous;
     - [Node_check t]  : spontaneous, allowed only when the current node
                         satisfies the test (compiles [?t]);
     - [Forward t]     : consume one edge e with ρ(e) = (current, next)
                         whose label/properties satisfy [t];
     - [Backward t]    : consume one edge e with ρ(e) = (next, current).

   A path n0 e1 n1 ... ek nk is accepted iff some run consumes e1..ek from
   the start state to the accept state, with every Node_check passed at the
   node where it fires.  This matches the denotational semantics [[r]] of
   the paper (proved by structural induction; the test suite checks the
   worked examples and random graphs against a reference evaluator). *)

type move =
  | Eps
  | Node_check of Regex.test
  | Forward of Regex.test
  | Backward of Regex.test

type t = {
  num_states : int;
  start : int;
  accept : int;
  transitions : (move * int) list array; (* state -> out-transitions *)
  (* Kernel tables, precomputed once per automaton so the product's hot
     loops index arrays instead of walking the transition lists: *)
  eps : int array array; (* state -> ε targets *)
  (* state -> node-check moves; the int is the check occurrence's global
     index in [0, num_checks), so results can be cached per node. *)
  checks : (int * Regex.test * int) array array;
  num_checks : int;
  fwd : (Regex.test * int) array array; (* state -> forward edge moves *)
  bwd : (Regex.test * int) array array; (* state -> backward edge moves *)
  check_tests : Regex.test array; (* check occurrence index -> its test *)
  words : int; (* Bitset words per state set *)
}

let num_states a = a.num_states
let start a = a.start
let accept a = a.accept
let transitions a q = a.transitions.(q)
let words a = a.words
let num_checks a = a.num_checks
let check_tests a = a.check_tests
let fwd_moves a q = a.fwd.(q)
let bwd_moves a q = a.bwd.(q)

(* Assemble an automaton from an explicit transition list, precomputing
   the kernel tables.  This is the single constructor: Thompson's
   construction below and the analyzer's trimming pass both go through
   it, so every [t] carries consistent tables. *)
let make ~num_states ~start ~accept ~transitions =
  if num_states <= 0 then invalid_arg "Nfa.make: num_states must be positive";
  let check q =
    if q < 0 || q >= num_states then invalid_arg "Nfa.make: state out of range"
  in
  check start;
  check accept;
  let table = Array.make num_states [] in
  List.iter
    (fun (q, move, q') ->
      check q;
      check q';
      table.(q) <- (move, q') :: table.(q))
    transitions;
  let select f =
    Array.map (fun moves -> Array.of_list (List.filter_map f moves)) table
  in
  let check_counter = ref 0 in
  let checks =
    Array.map
      (fun moves ->
        Array.of_list
          (List.filter_map
             (function
               | Node_check t, q' ->
                   let idx = !check_counter in
                   incr check_counter;
                   Some (idx, t, q')
               | _ -> None)
             moves))
      table
  in
  let check_tests =
    let out = Array.make !check_counter None in
    Array.iter (Array.iter (fun (idx, t, _) -> out.(idx) <- Some t)) checks;
    Array.map Option.get out
  in
  {
    num_states;
    start;
    accept;
    transitions = table;
    eps = select (function Eps, q' -> Some q' | _ -> None);
    checks;
    num_checks = !check_counter;
    fwd = select (function Forward t, q' -> Some (t, q') | _ -> None);
    bwd = select (function Backward t, q' -> Some (t, q') | _ -> None);
    check_tests;
    words = Gqkg_util.Bitset.words_for num_states;
  }

(* Thompson construction with one fresh start/accept pair per node of the
   regex; linear in the size of the expression. *)
let of_regex regex =
  let transitions = ref [] in
  let count = ref 0 in
  let fresh () =
    let q = !count in
    incr count;
    q
  in
  let add q move q' = transitions := (q, move, q') :: !transitions in
  let rec build = function
    | Regex.Node_test t ->
        let s = fresh () and a = fresh () in
        add s (Node_check t) a;
        (s, a)
    | Regex.Fwd t ->
        let s = fresh () and a = fresh () in
        add s (Forward t) a;
        (s, a)
    | Regex.Bwd t ->
        let s = fresh () and a = fresh () in
        add s (Backward t) a;
        (s, a)
    | Regex.Alt (r1, r2) ->
        let s = fresh () and a = fresh () in
        let s1, a1 = build r1 and s2, a2 = build r2 in
        add s Eps s1;
        add s Eps s2;
        add a1 Eps a;
        add a2 Eps a;
        (s, a)
    | Regex.Seq (r1, r2) ->
        let s1, a1 = build r1 and s2, a2 = build r2 in
        add a1 Eps s2;
        (s1, a2)
    | Regex.Star r ->
        let s = fresh () and a = fresh () in
        let s1, a1 = build r in
        add s Eps s1;
        add s Eps a;
        add a1 Eps s1;
        add a1 Eps a;
        (s, a)
  in
  let start, accept = build regex in
  make ~num_states:!count ~start ~accept ~transitions:!transitions

(* Recognizer of the reversed language: every transition arrow flips,
   edge moves swap direction (a path read back to front traverses each
   edge the other way), spontaneous moves keep their tests (they still
   fire at the same node of the mirrored run), start and accept swap.
   [reverse (reverse a)] recognizes the same language as [a]. *)
let reverse a =
  let rev_move = function
    | Eps -> Eps
    | Node_check t -> Node_check t
    | Forward t -> Backward t
    | Backward t -> Forward t
  in
  let transitions = ref [] in
  for q = a.num_states - 1 downto 0 do
    List.iter (fun (m, q') -> transitions := (q', rev_move m, q) :: !transitions) a.transitions.(q)
  done;
  make ~num_states:a.num_states ~start:a.accept ~accept:a.start ~transitions:!transitions

(* Closure of a set of states under Eps and under Node_check moves whose
   test the given node passes.  [node_sat] answers atomic tests for that
   node.  Returns a sorted, duplicate-free array — the canonical key used
   by the lazy subset construction in the product graph. *)
let closure a ~node_sat states =
  let seen = Array.make a.num_states false in
  let stack = Stack.create () in
  let push q =
    if not seen.(q) then begin
      seen.(q) <- true;
      Stack.push q stack
    end
  in
  Array.iter push states;
  while not (Stack.is_empty stack) do
    let q = Stack.pop stack in
    List.iter
      (fun (move, q') ->
        match move with
        | Eps -> push q'
        | Node_check t -> if Regex.eval_test node_sat t then push q'
        | Forward _ | Backward _ -> ())
      a.transitions.(q)
  done;
  let out = ref [] in
  for q = a.num_states - 1 downto 0 do
    if seen.(q) then out := q :: !out
  done;
  Array.of_list !out

(* In-place closure on raw bitset words (length [words a]): extend the
   set under ε moves and node-checks the node passes.  [check_sat idx t]
   answers check occurrence [idx] (whose test is [t]) for the node being
   closed at — indexing lets callers cache answers per (node, check).
   The kernel's counterpart of {!closure} — O(words) bookkeeping, no
   sorting, and the result array doubles as the product interning key. *)
let close_raw_idx a ~check_sat set =
  let module B = Gqkg_util.Bitset in
  let stack = Array.make a.num_states 0 in
  let top = ref 0 in
  let push q =
    if not (B.raw_mem set q) then begin
      B.raw_add set q;
      stack.(!top) <- q;
      incr top
    end
  in
  B.raw_iter set (fun q ->
      stack.(!top) <- q;
      incr top);
  while !top > 0 do
    decr top;
    let q = stack.(!top) in
    Array.iter push a.eps.(q);
    Array.iter (fun (idx, t, q') -> if check_sat idx t then push q') a.checks.(q)
  done

let close_raw a ~node_sat set =
  close_raw_idx a ~check_sat:(fun _ t -> Regex.eval_test node_sat t) set

let is_accepting a states = Array.exists (fun q -> q = a.accept) states

(* All (test, target) pairs for edge-consuming moves out of a state set,
   split by direction. *)
let edge_moves a states =
  let fwd = ref [] and bwd = ref [] in
  Array.iter
    (fun q ->
      List.iter
        (fun (move, q') ->
          match move with
          | Forward t -> fwd := (t, q') :: !fwd
          | Backward t -> bwd := (t, q') :: !bwd
          | Eps | Node_check _ -> ())
        a.transitions.(q))
    states;
  (!fwd, !bwd)

(* Human-readable dump for debugging and the CLI's --explain flag. *)
let to_string a =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "NFA: %d states, start=%d, accept=%d\n" a.num_states a.start a.accept);
  Array.iteri
    (fun q moves ->
      List.iter
        (fun (move, q') ->
          let label =
            match move with
            | Eps -> "eps"
            | Node_check t -> "?" ^ Regex.test_to_string ~top:true t
            | Forward t -> Regex.test_to_string ~top:true t
            | Backward t -> Regex.test_to_string ~top:true t ^ "^-"
          in
          Buffer.add_string buf (Printf.sprintf "  %d --%s--> %d\n" q label q'))
        moves)
    a.transitions;
  Buffer.contents buf

(** Regular expressions over graphs — grammar (1) of Section 4 with the
    property-graph and vector-labeled extensions:

    {v
    test ::= l | (p = v) | (f_i = v) | (!test) | (test | test) | (test & test)
    r    ::= ?test | test | test^- | (r + r) | (r / r) | (r)*
    v} *)

open Gqkg_graph

type test =
  | Atom of Atom.t
  | Not of test
  | Or of test * test
  | And of test * test

type t =
  | Node_test of test  (** [?test] — zero-length paths at satisfying nodes *)
  | Fwd of test  (** one forward edge satisfying the test *)
  | Bwd of test  (** one edge traversed against its direction *)
  | Alt of t * t
  | Seq of t * t
  | Star of t

(** Edge step on a label. *)
val label : string -> t

(** Node test on a label. *)
val node_label : string -> t

(** A test satisfied by every node and edge. *)
val any_test : test

(** Any single forward edge. *)
val any_edge : t

(** r? — the expression or the empty path. *)
val opt : t -> t

(** r+ = r/r*. *)
val plus : t -> t

(** Right-nested concatenation / alternation; raise on []. *)
val seq_of_list : t list -> t

val alt_of_list : t list -> t

(** Evaluate a test given an oracle for its atoms. *)
val eval_test : (Atom.t -> bool) -> test -> bool

(** Does the test only mention [Label] atoms (so its value on an edge is
    a pure function of the edge's label)? *)
val label_pure : test -> bool

val test_size : test -> int
val size : t -> int

(** Shortest possible matching-path length. *)
val min_path_length : t -> int

(** Can the expression match unboundedly long paths? *)
val unbounded : t -> bool

(** Longest matching-path length, when bounded. *)
val max_path_length : t -> int option

(** [[reverse r]] is [[r]] with every path read back to front: edge
    steps swap direction, concatenations swap order. An involution. *)
val reverse : t -> t

(** Concrete syntax accepted by {!Regex_parser}. [top] omits the
    outermost parentheses; values that would not re-lex (spaces,
    operator characters, numeric-looking strings) are quoted so the
    output round-trips through {!Regex_parser.parse}. *)
val test_to_string : ?top:bool -> test -> string

val to_string : ?top:bool -> t -> string
val pp : Format.formatter -> t -> unit
val equal_test : test -> test -> bool
val equal : t -> t -> bool

(** Is the expression exactly the [?any_test] unit? *)
val is_any_node_test : t -> bool

(** Bottom-up Kleene-algebra simplification: deduplicated alternations,
    unit elimination, star flattening. Preserves [[r]] (checked by
    property tests); never grows the expression. *)
val simplify : t -> t

(* Hand-written lexer and recursive-descent parser for the ASCII concrete
   syntax of the Section 4 regular expressions:

     ?person/(contact & date=3/4/21)/?infected
     ?infected/rides/?bus/rides^-/(?person/(lives + contact))*/?person

   Correspondence with the paper's notation: [!] is ¬, [&] is ∧, [|] is ∨,
   [+] alternation, [/] concatenation, [*] Kleene star, [?t] node test,
   [t^-] backward edge, [fN=v] the feature test (f_N = v), [p=v] the
   property test (p = v), a bare word a label test.

   Disambiguation of parentheses: tests never contain the operators
   [/ * ? ^- +], and regexes never contain [& | !] outside a test, so a
   parenthesized group is classified by scanning to its matching paren.
   Inside a value position (after [=]), [n/m/y] between digits lexes as one
   date token, so query (3) round-trips. *)

type token =
  | Word of string (* label / property-name / value piece *)
  | Quoted of string (* 'quoted' word: kept verbatim, never re-interpreted *)
  | Equals
  | Bang
  | Amp
  | Pipe
  | Plus
  | Slash
  | Star
  | Question
  | Caret_minus
  | Lparen
  | Rparen

exception Error of { position : int; message : string }

let fail position fmt = Printf.ksprintf (fun message -> raise (Error { position; message })) fmt

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-' || c = ':'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit position token = tokens := (position, token) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = input.[start] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '=' ->
        emit start Equals;
        incr i;
        (* Value position: lex greedily, letting '/' join digit groups so
           dates survive (they would otherwise split on the concatenation
           operator). *)
        while !i < n && (input.[!i] = ' ' || input.[!i] = '\t') do
          incr i
        done;
        if !i < n && input.[!i] = '\'' then begin
          (* Quoted value: anything up to the closing quote. *)
          let close =
            match String.index_from_opt input (!i + 1) '\'' with
            | Some j -> j
            | None -> fail !i "unterminated quoted value"
          in
          emit !i (Quoted (String.sub input (!i + 1) (close - !i - 1)));
          i := close + 1
        end
        else if
          (* ⊥ as a value: [_|_] would otherwise stop at the '|'. *)
          !i + 2 < n
          && input.[!i] = '_'
          && input.[!i + 1] = '|'
          && input.[!i + 2] = '_'
          && not (!i + 3 < n && is_word_char input.[!i + 3])
        then begin
          emit !i (Word "_|_");
          i := !i + 3
        end
        else begin
          let value_start = !i in
          let continue = ref true in
          while !continue && !i < n do
            let c = input.[!i] in
            if is_word_char c then incr i
            else if
              c = '/'
              && !i > value_start
              && !i + 1 < n
              && input.[!i - 1] >= '0'
              && input.[!i - 1] <= '9'
              && input.[!i + 1] >= '0'
              && input.[!i + 1] <= '9'
            then incr i
            else continue := false
          done;
          if !i = value_start then fail value_start "expected a value after '='";
          emit value_start (Word (String.sub input value_start (!i - value_start)))
        end
    | '!' -> emit start Bang; incr i
    | '&' -> emit start Amp; incr i
    | '|' -> emit start Pipe; incr i
    | '+' -> emit start Plus; incr i
    | '/' -> emit start Slash; incr i
    | '*' -> emit start Star; incr i
    | '?' -> emit start Question; incr i
    | '(' -> emit start Lparen; incr i
    | ')' -> emit start Rparen; incr i
    | '^' ->
        if start + 1 < n && input.[start + 1] = '-' then begin
          emit start Caret_minus;
          i := start + 2
        end
        else fail start "expected '^-'"
    | '\'' ->
        let close =
          match String.index_from_opt input (start + 1) '\'' with
          | Some j -> j
          | None -> fail start "unterminated quoted word"
        in
        emit start (Quoted (String.sub input (start + 1) (close - start - 1)));
        i := close + 1
    | c when is_word_char c ->
        while !i < n && is_word_char input.[!i] do
          incr i
        done;
        emit start (Word (String.sub input start (!i - start)))
    | c -> fail start "unexpected character %C" c);
    if !i = start then fail start "lexer stuck"
  done;
  Array.of_list (List.rev !tokens)

(* --- Parser state ------------------------------------------------------ *)

type state = { tokens : (int * token) array; mutable cursor : int }

let peek st = if st.cursor < Array.length st.tokens then Some (snd st.tokens.(st.cursor)) else None
let position st =
  if st.cursor < Array.length st.tokens then fst st.tokens.(st.cursor) else -1

let advance st = st.cursor <- st.cursor + 1

let expect st token message =
  match peek st with
  | Some t when t = token -> advance st
  | _ -> fail (position st) "expected %s" message

(* Classify the parenthesized group starting at the cursor (which points
   at Lparen): true if it is a *test* group.  Tests contain only words,
   =, !, &, |, parens. *)
let group_is_test st =
  let depth = ref 0 and i = ref st.cursor and verdict = ref None in
  let tokens = st.tokens in
  let n = Array.length tokens in
  while !verdict = None && !i < n do
    (match snd tokens.(!i) with
    | Lparen -> incr depth
    | Rparen ->
        decr depth;
        if !depth = 0 then verdict := Some true (* only test tokens seen *)
    | Slash | Star | Question | Caret_minus | Plus -> verdict := Some false
    | Amp | Pipe | Bang | Word _ | Quoted _ | Equals -> ());
    incr i
  done;
  match !verdict with Some v -> v | None -> fail (position st) "unbalanced parentheses"

(* A word, possibly followed by '=' value, makes an atom.  [fN=v] is the
   feature test of vector-labeled graphs. *)
let feature_index word =
  let n = String.length word in
  if n >= 2 && word.[0] = 'f' then begin
    let digits = String.sub word 1 (n - 1) in
    match int_of_string_opt digits with Some i when i >= 1 -> Some i | _ -> None
  end
  else None

open Gqkg_graph

(* A quoted word is always a verbatim [Str]: never a feature test, never
   re-interpreted as a number or date — the escape hatch the printer uses
   for values that would not re-lex as themselves. *)
let parse_atom st =
  match peek st with
  | Some (Word _ | Quoted _) -> begin
      let quoted_name, w =
        match peek st with
        | Some (Word w) -> (false, w)
        | Some (Quoted w) -> (true, w)
        | _ -> assert false
      in
      advance st;
      match peek st with
      | Some Equals -> begin
          advance st;
          match peek st with
          | Some (Word v | Quoted v) ->
              let value =
                match peek st with Some (Quoted _) -> Const.str v | _ -> Const.of_string v
              in
              advance st;
              (match (if quoted_name then None else feature_index w) with
              | Some i -> Atom.Feature (i, value)
              | None ->
                  Atom.Prop ((if quoted_name then Const.str w else Const.of_string w), value))
          | _ -> fail (position st) "expected a value after '='"
        end
      | _ -> Atom.Label (if quoted_name then Const.str w else Const.of_string w)
    end
  | _ -> fail (position st) "expected a label, property or feature test"

let rec parse_test st : Regex.test =
  let left = parse_test_and st in
  match peek st with
  | Some Pipe ->
      advance st;
      Regex.Or (left, parse_test st)
  | _ -> left

and parse_test_and st =
  let left = parse_test_not st in
  match peek st with
  | Some Amp ->
      advance st;
      Regex.And (left, parse_test_and st)
  | _ -> left

and parse_test_not st =
  match peek st with
  | Some Bang ->
      advance st;
      Regex.Not (parse_test_not st)
  | Some Lparen ->
      advance st;
      let t = parse_test st in
      expect st Rparen "')'";
      t
  | _ -> Regex.Atom (parse_atom st)

let rec parse_regex st =
  let left = parse_seq st in
  match peek st with
  | Some Plus ->
      advance st;
      Regex.Alt (left, parse_regex st)
  | _ -> left

and parse_seq st =
  let left = parse_postfix st in
  match peek st with
  | Some Slash ->
      advance st;
      Regex.Seq (left, parse_seq st)
  | _ -> left

and parse_postfix st =
  let base = parse_primary st in
  let rec loop r =
    match peek st with
    | Some Star ->
        advance st;
        loop (Regex.Star r)
    | _ -> r
  in
  loop base

(* A primary is ?test, a (possibly parenthesized) test used as an edge
   step (forward, or backward with ^-), or a parenthesized regex. *)
and parse_primary st =
  match peek st with
  | Some Question ->
      advance st;
      (* A node test takes a test primary: atom, !test or (test). *)
      Regex.Node_test (parse_test_not st)
  | Some Lparen ->
      if group_is_test st then begin
        advance st;
        let t = parse_test st in
        expect st Rparen "')'";
        parse_direction st t
      end
      else begin
        advance st;
        let r = parse_regex st in
        expect st Rparen "')'";
        r
      end
  | Some (Word _ | Quoted _) ->
      let atom = parse_atom st in
      parse_direction st (Regex.Atom atom)
  | Some Bang ->
      let t = parse_test_not st in
      parse_direction st t
  | _ -> fail (position st) "expected a test, '?test' or '(...)'"

and parse_direction st test =
  match peek st with
  | Some Caret_minus ->
      advance st;
      Regex.Bwd test
  | _ -> Regex.Fwd test

let parse input =
  let st = { tokens = tokenize input; cursor = 0 } in
  if Array.length st.tokens = 0 then fail 0 "empty regular expression";
  let r = parse_regex st in
  if st.cursor <> Array.length st.tokens then fail (position st) "trailing input";
  r

let parse_opt input = match parse input with r -> Some r | exception Error _ -> None

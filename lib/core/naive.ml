(* Reference evaluator: the denotational semantics [[r]] of Section 4
   transcribed literally, computing the actual set of paths up to a length
   bound.  Exponential — it exists to be obviously correct, serving as the
   oracle for the product-based engine in tests and for the "materialize
   everything" baseline in the enumeration experiment (E6). *)

open Gqkg_graph
open Gqkg_automata

module Path_set = Set.Make (struct
  type t = Path.t

  let compare = Path.compare
end)

(* [[r]] restricted to paths of length <= max_length.

   Budget check sites: once per regex constructor and once per Star
   fixpoint round.  Every operator is monotone in its operands, so
   answering the empty set for a tripped subterm (or the fixpoint's
   accumulator so far) keeps the overall result a subset of the
   unbudgeted denotation. *)
let eval ?(budget = Gqkg_util.Budget.unlimited) inst regex ~max_length =
  let all_nodes () =
    let acc = ref Path_set.empty in
    for n = 0 to inst.Snapshot.num_nodes - 1 do
      acc := Path_set.add (Path.trivial n) !acc
    done;
    !acc
  in
  let rec go r =
    if Gqkg_util.Budget.check budget then Path_set.empty
    else
    match r with
    | Regex.Node_test t ->
        let acc = ref Path_set.empty in
        for n = 0 to inst.Snapshot.num_nodes - 1 do
          if Regex.eval_test (inst.Snapshot.node_atom n) t then
            acc := Path_set.add (Path.trivial n) !acc
        done;
        !acc
    | Regex.Fwd t ->
        let acc = ref Path_set.empty in
        for e = 0 to inst.Snapshot.num_edges - 1 do
          if Regex.eval_test (inst.Snapshot.edge_atom e) t then begin
            let s, d = (Snapshot.endpoints inst) e in
            acc := Path_set.add (Path.make ~nodes:[| s; d |] ~edges:[| e |]) !acc
          end
        done;
        !acc
    | Regex.Bwd t ->
        let acc = ref Path_set.empty in
        for e = 0 to inst.Snapshot.num_edges - 1 do
          if Regex.eval_test (inst.Snapshot.edge_atom e) t then begin
            let s, d = (Snapshot.endpoints inst) e in
            acc := Path_set.add (Path.make ~nodes:[| d; s |] ~edges:[| e |]) !acc
          end
        done;
        !acc
    | Regex.Alt (r1, r2) -> Path_set.union (go r1) (go r2)
    | Regex.Seq (r1, r2) ->
        let left = go r1 and right = go r2 in
        (* Index right-hand paths by start node for the join. *)
        let by_start = Hashtbl.create 64 in
        Path_set.iter
          (fun p ->
            let s = Path.start_node p in
            Hashtbl.replace by_start s (p :: Option.value (Hashtbl.find_opt by_start s) ~default:[]))
          right;
        Path_set.fold
          (fun p acc ->
            List.fold_left
              (fun acc p' ->
                if Path.length p + Path.length p' <= max_length then Path_set.add (Path.cat p p') acc
                else acc)
              acc
              (Option.value (Hashtbl.find_opt by_start (Path.end_node p)) ~default:[]))
          left Path_set.empty
    | Regex.Star r ->
        (* Least fixpoint of X = triv ∪ (r · X), truncated at max_length. *)
        let base = go r in
        let by_start = Hashtbl.create 64 in
        Path_set.iter
          (fun p ->
            let s = Path.start_node p in
            Hashtbl.replace by_start s (p :: Option.value (Hashtbl.find_opt by_start s) ~default:[]))
          base;
        let grow current =
          Path_set.fold
            (fun p acc ->
              List.fold_left
                (fun acc p' ->
                  if Path.length p + Path.length p' <= max_length then
                    Path_set.add (Path.cat p p') acc
                  else acc)
                acc
                (Option.value (Hashtbl.find_opt by_start (Path.end_node p)) ~default:[]))
            current Path_set.empty
        in
        let rec fix acc frontier =
          if Gqkg_util.Budget.check budget then acc
          else
            let next = Path_set.diff (grow frontier) acc in
            if Path_set.is_empty next then acc else fix (Path_set.union acc next) next
        in
        let trivials = all_nodes () in
        fix trivials trivials
  in
  go regex

let paths ?budget inst regex ~max_length = Path_set.elements (eval ?budget inst regex ~max_length)

(* Count(G, r, k) by brute force. *)
let count ?budget inst regex ~length =
  Path_set.fold
    (fun p acc -> if Path.length p = length then acc + 1 else acc)
    (eval ?budget inst regex ~max_length:length)
    0

(* Pairs (start, end) of matching paths up to the bound. *)
let pairs ?budget inst regex ~max_length =
  let set = eval ?budget inst regex ~max_length in
  let out = Hashtbl.create 64 in
  Path_set.iter (fun p -> Hashtbl.replace out (Path.start_node p, Path.end_node p) ()) set;
  Hashtbl.fold (fun pair () acc -> pair :: acc) out [] |> List.sort compare

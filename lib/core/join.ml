(* Worst-case-optimal multiway join over Snapshot CSR (Leapfrog Triejoin).

   The engine binds variables one at a time in a single global order; at
   each level it leapfrogs the sorted iterators of every atom containing
   that variable to their common values.  Atom relations become tries —
   grouped sorted int columns of arity 1..3 — in three flavors:

   - zero-copy views over a per-snapshot label-sorted adjacency index
     (edge-label atoms need no per-query materialization),
   - sorted int arrays built from materialized relations (RPQ path
     atoms, triple-store scans),
   - unary sorted sets (node-label atoms, singleton constants).

   The variable order comes from Gqkg_analysis.Joinplan over per-atom
   cardinality estimates; tries are laid out column-by-column in that
   order (a pair atom picks its src- or dst-grouped orientation, the CSR
   index serves either direction).  Budget checks happen at
   variable-binding boundaries at coarse granularity, so an exhausted
   budget yields a sound subset of the bindings. *)

open Gqkg_graph
module Budget = Gqkg_util.Budget

(* ------------------------------------------------------------------ *)
(* Sorted-array primitives                                            *)
(* ------------------------------------------------------------------ *)

(* First index in [lo, hi) with a.(i) >= key. *)
let lower_bound (a : int array) lo hi key =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if a.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let pair_compare (a1, b1) (a2, b2) =
  if a1 <> a2 then compare (a1 : int) a2 else compare (b1 : int) b2

let row_compare (a1, b1, c1) (a2, b2, c2) =
  if a1 <> a2 then compare (a1 : int) a2
  else if b1 <> b2 then compare (b1 : int) b2
  else compare (c1 : int) c2

(* Stable counting sort of [perm] by [key] (values in [0, num_keys)). *)
let counting_sort ~key ~num_keys perm =
  let count = Array.make (num_keys + 1) 0 in
  Array.iter (fun e -> count.(key e + 1) <- count.(key e + 1) + 1) perm;
  for i = 1 to num_keys do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  let out = Array.make (Array.length perm) 0 in
  Array.iter
    (fun e ->
      let k = key e in
      out.(count.(k)) <- e;
      count.(k) <- count.(k) + 1)
    perm;
  out

(* ------------------------------------------------------------------ *)
(* Tries: grouped sorted int columns, arity 1..3                      *)
(* ------------------------------------------------------------------ *)

type trie =
  | T1 of int array (* sorted distinct values *)
  | T2 of { k0 : int array; off : int array; v1 : int array }
    (* distinct first-column keys; group [i] of sorted second-column
       values is v1.[off.(i) .. off.(i+1)) *)
  | T3 of {
      k0 : int array;
      off0 : int array; (* group of k0.(i) in k1: [off0.(i), off0.(i+1)) *)
      k1 : int array; (* second column, distinct within its group *)
      off1 : int array; (* group of k1.(j) in v2: [off1.(j), off1.(j+1)) *)
      v2 : int array;
    }

let t1_of_array a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || a.(i) <> a.(i - 1) then begin
      a.(!m) <- a.(i);
      incr m
    end
  done;
  T1 (Array.sub a 0 !m)

(* [pairs] must be sorted lexicographically and deduplicated. *)
let t2_of_sorted_pairs pairs =
  let n = Array.length pairs in
  let groups = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || fst pairs.(i) <> fst pairs.(i - 1) then incr groups
  done;
  let k0 = Array.make !groups 0 and off = Array.make (!groups + 1) 0 in
  let v1 = Array.make n 0 in
  let g = ref (-1) in
  for i = 0 to n - 1 do
    let a, b = pairs.(i) in
    if i = 0 || a <> fst pairs.(i - 1) then begin
      incr g;
      k0.(!g) <- a;
      off.(!g) <- i
    end;
    v1.(i) <- b
  done;
  off.(!groups) <- n;
  T2 { k0; off; v1 }

let sort_dedup_pairs pairs =
  let a = Array.of_list pairs in
  Array.sort pair_compare a;
  let n = Array.length a in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || a.(i) <> a.(i - 1) then begin
      a.(!m) <- a.(i);
      incr m
    end
  done;
  Array.sub a 0 !m

(* [rows] must be sorted lexicographically and deduplicated. *)
let t3_of_sorted_rows rows =
  let n = Array.length rows in
  let g01 = ref 0 and g0 = ref 0 in
  for i = 0 to n - 1 do
    let a, b, _ = rows.(i) in
    if i = 0 then begin
      incr g01;
      incr g0
    end
    else begin
      let a', b', _ = rows.(i - 1) in
      if a <> a' then incr g0;
      if a <> a' || b <> b' then incr g01
    end
  done;
  let k0 = Array.make !g0 0 and off0 = Array.make (!g0 + 1) 0 in
  let k1 = Array.make !g01 0 and off1 = Array.make (!g01 + 1) 0 in
  let v2 = Array.make n 0 in
  let i0 = ref (-1) and i1 = ref (-1) in
  for i = 0 to n - 1 do
    let a, b, c = rows.(i) in
    let new0 = i = 0 || (let a', _, _ = rows.(i - 1) in a <> a') in
    let new1 = new0 || (let _, b', _ = rows.(i - 1) in b <> b') in
    if new1 then begin
      incr i1;
      k1.(!i1) <- b;
      off1.(!i1) <- i
    end;
    if new0 then begin
      incr i0;
      k0.(!i0) <- a;
      off0.(!i0) <- !i1
    end;
    v2.(i) <- c
  done;
  off0.(!g0) <- !g01;
  off1.(!g01) <- n;
  T3 { k0; off0; k1; off1; v2 }

let trie_pairs = function
  | T2 { k0; off; v1 } ->
      let out = ref [] in
      for g = Array.length k0 - 1 downto 0 do
        for i = off.(g + 1) - 1 downto off.(g) do
          out := (k0.(g), v1.(i)) :: !out
        done
      done;
      !out
  | _ -> invalid_arg "Join.trie_pairs: not a binary trie"

(* ------------------------------------------------------------------ *)
(* Per-snapshot join index                                            *)
(* ------------------------------------------------------------------ *)

module Index = struct
  type label_stat = {
    name : string;
    pairs : int;
    distinct_src : int;
    distinct_dst : int;
    self_loops : int;
  }

  type t = {
    snap : Snapshot.t;
    out_tries : trie array; (* per edge-label id, grouped by src *)
    in_tries : trie array; (* grouped by dst *)
    self_tries : trie array; (* T1 of self-loop nodes *)
    stats : label_stat array;
    label_ids_cache : (Const.t, int list) Hashtbl.t;
    node_label_cache : (Const.t, int array) Hashtbl.t;
  }

  (* Build one orientation: edges of label [l] as a T2 keyed by
     [key0], grouped values from [key1], deduplicating parallel edges.
     [order] lists edge ids sorted by (label, key0, key1). *)
  let tries_of_order snap order ~key0 ~key1 =
    let num_labels = snap.Snapshot.num_labels in
    let m = Array.length order in
    let elabel = snap.Snapshot.elabel in
    let seg_start = Array.make (num_labels + 1) m in
    for i = m - 1 downto 0 do
      seg_start.(elabel.(order.(i))) <- i
    done;
    (* Empty labels inherit the next segment's start. *)
    for l = num_labels - 1 downto 0 do
      if seg_start.(l) > seg_start.(l + 1) then seg_start.(l) <- seg_start.(l + 1)
    done;
    Array.init num_labels (fun l ->
        let lo = seg_start.(l) and hi = seg_start.(l + 1) in
        (* Pass 1: distinct pairs and distinct keys in the segment. *)
        let pairs = ref 0 and keys = ref 0 in
        for i = lo to hi - 1 do
          let e = order.(i) in
          let fresh =
            i = lo
            ||
            let e' = order.(i - 1) in
            key0 e <> key0 e' || key1 e <> key1 e'
          in
          if fresh then begin
            incr pairs;
            if i = lo || key0 (order.(i - 1)) <> key0 e then incr keys
          end
        done;
        let k0 = Array.make !keys 0 and off = Array.make (!keys + 1) 0 in
        let v1 = Array.make !pairs 0 in
        let gi = ref (-1) and pi = ref 0 in
        for i = lo to hi - 1 do
          let e = order.(i) in
          let dup =
            i > lo
            &&
            let e' = order.(i - 1) in
            key0 e = key0 e' && key1 e = key1 e'
          in
          if not dup then begin
            if i = lo || key0 (order.(i - 1)) <> key0 e then begin
              incr gi;
              k0.(!gi) <- key0 e;
              off.(!gi) <- !pi
            end;
            v1.(!pi) <- key1 e;
            incr pi
          end
        done;
        off.(!keys) <- !pairs;
        T2 { k0; off; v1 })

  let build snap =
    let m = snap.Snapshot.num_edges and n = snap.Snapshot.num_nodes in
    let num_labels = snap.Snapshot.num_labels in
    let esrc = snap.Snapshot.esrc and edst = snap.Snapshot.edst in
    let elabel = snap.Snapshot.elabel in
    let out_tries, in_tries =
      if num_labels = 0 then ([||], [||])
      else begin
        let perm = Array.init m (fun e -> e) in
        let nn = max 1 n in
        let by_label p = counting_sort ~key:(fun e -> elabel.(e)) ~num_keys:num_labels p in
        let by_src p = counting_sort ~key:(fun e -> esrc.(e)) ~num_keys:nn p in
        let by_dst p = counting_sort ~key:(fun e -> edst.(e)) ~num_keys:nn p in
        let out_order = by_label (by_src (by_dst perm)) in
        let in_order = by_label (by_dst (by_src perm)) in
        ( tries_of_order snap out_order ~key0:(fun e -> esrc.(e)) ~key1:(fun e -> edst.(e)),
          tries_of_order snap in_order ~key0:(fun e -> edst.(e)) ~key1:(fun e -> esrc.(e)) )
      end
    in
    let self_tries =
      Array.init num_labels (fun l ->
          match out_tries.(l) with
          | T2 { k0; off; v1 } ->
              let loops = ref [] in
              for g = Array.length k0 - 1 downto 0 do
                let s = k0.(g) in
                let i = lower_bound v1 off.(g) off.(g + 1) s in
                if i < off.(g + 1) && v1.(i) = s then loops := s :: !loops
              done;
              T1 (Array.of_list !loops)
          | _ -> T1 [||])
    in
    let stats =
      Array.init num_labels (fun l ->
          let pairs, distinct_src =
            match out_tries.(l) with
            | T2 { k0; v1; _ } -> (Array.length v1, Array.length k0)
            | _ -> (0, 0)
          in
          let distinct_dst =
            match in_tries.(l) with T2 { k0; _ } -> Array.length k0 | _ -> 0
          in
          let self_loops =
            match self_tries.(l) with T1 a -> Array.length a | _ -> 0
          in
          {
            name = snap.Snapshot.label_names.(l);
            pairs;
            distinct_src;
            distinct_dst;
            self_loops;
          })
    in
    {
      snap;
      out_tries;
      in_tries;
      self_tries;
      stats;
      label_ids_cache = Hashtbl.create 8;
      node_label_cache = Hashtbl.create 8;
    }

  (* Epoch-keyed cache: snapshots are immutable and epochs
     process-unique, so the index of an epoch never goes stale.  Bounded
     so long-lived processes cycling through overlay commits don't leak. *)
  let cache : (int, t) Hashtbl.t = Hashtbl.create 8
  let cache_mutex = Mutex.create ()
  let max_cached = 8

  let get snap =
    Mutex.lock cache_mutex;
    let idx =
      match Hashtbl.find_opt cache snap.Snapshot.epoch with
      | Some idx -> idx
      | None ->
          let idx = build snap in
          if Hashtbl.length cache >= max_cached then Hashtbl.reset cache;
          Hashtbl.replace cache snap.Snapshot.epoch idx;
          idx
    in
    Mutex.unlock cache_mutex;
    idx

  let edge_label_ids idx c =
    match Hashtbl.find_opt idx.label_ids_cache c with
    | Some ids -> ids
    | None ->
        let ids = ref [] in
        for l = idx.snap.Snapshot.num_labels - 1 downto 0 do
          if idx.snap.Snapshot.label_sat l (Atom.Label c) then ids := l :: !ids
        done;
        Hashtbl.replace idx.label_ids_cache c !ids;
        !ids

  let nodes_with_const_label idx c =
    match Hashtbl.find_opt idx.node_label_cache c with
    | Some a -> a
    | None ->
        let snap = idx.snap in
        let out = ref [] in
        for v = snap.Snapshot.num_nodes - 1 downto 0 do
          if snap.Snapshot.node_atom v (Atom.Label c) then out := v :: !out
        done;
        let a = Array.of_list !out in
        Hashtbl.replace idx.node_label_cache c a;
        a

  let label_stats idx = Array.copy idx.stats

  let describe idx =
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      "per-edge-label join statistics (distinct pairs / srcs / dsts / self-loops):\n";
    if Array.length idx.stats = 0 then
      Buffer.add_string buf "  (no interned edge labels)\n"
    else
      Array.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  %-16s %8d pairs  %8d srcs  %8d dsts  %6d self-loops\n"
               s.name s.pairs s.distinct_src s.distinct_dst s.self_loops))
        idx.stats;
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Atom specification and normalization                               *)
(* ------------------------------------------------------------------ *)

type rel =
  | Edges of int list
  | Pairs of (int * int) list
  | Set of int array
  | Rows3 of (int * int * int) list

type atom_spec = { avars : string array; rel : rel; name : string }

let atom ?name avars rel =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "(%s)" (String.concat "," (Array.to_list avars))
  in
  { avars; rel; name }

let rel_arity = function Edges _ -> 2 | Pairs _ -> 2 | Set _ -> 1 | Rows3 _ -> 3

(* A normalized atom: distinct variables only, with a relation source
   ready for stats and (after ordering) trie construction. *)
type source =
  | SSet of int array (* sorted distinct *)
  | SPairs of (int * int) array * (int * int) array
    (* forward-sorted (by col0) and backward-sorted (swapped, by col1)
       copies; both deduplicated *)
  | SCsr of Index.t * int (* zero-copy: edge-label id in the index *)
  | SRows of (int * int * int) array (* deduplicated, forward-sorted *)

type pre = {
  pname : string;
  pkind : string;
  pvars : int array; (* distinct var ids, canonical column order *)
  psize : int;
  pdistinct : int array;
  psource : source;
}

(* Project rows with repeated variables down to their distinct columns,
   keeping only rows consistent on the repeats.  [vids] are the atom's
   variable ids per column (with repeats); rows are int arrays. *)
let project_repeats vids rows =
  let arity = Array.length vids in
  let first = Array.map (fun v ->
    let rec find i = if vids.(i) = v then i else find (i + 1) in
    find 0) vids in
  let keep = ref [] and cols = ref [] in
  for i = arity - 1 downto 0 do
    if first.(i) = i then cols := i :: !cols
  done;
  let cols = Array.of_list !cols in
  List.iter
    (fun (row : int array) ->
      let ok = ref true in
      for i = 0 to arity - 1 do
        if row.(i) <> row.(first.(i)) then ok := false
      done;
      if !ok then keep := Array.map (fun c -> row.(c)) cols :: !keep)
    rows;
  (Array.map (fun c -> vids.(c)) cols, !keep)

let distinct_count_of_column rows i =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (r : int array) -> Hashtbl.replace tbl r.(i) ()) rows;
  Hashtbl.length tbl

(* Build a [pre] from distinct-variable generic rows. *)
let pre_of_rows ~name ~kind vids rows =
  match Array.length vids with
  | 1 ->
      let set =
        match t1_of_array (Array.of_list (List.map (fun (r : int array) -> r.(0)) rows)) with
        | T1 a -> a
        | _ -> assert false
      in
      {
        pname = name;
        pkind = kind;
        pvars = vids;
        psize = Array.length set;
        pdistinct = [| Array.length set |];
        psource = SSet set;
      }
  | 2 ->
      let fwd = sort_dedup_pairs (List.map (fun (r : int array) -> (r.(0), r.(1))) rows) in
      let bwd = sort_dedup_pairs (List.map (fun (r : int array) -> (r.(1), r.(0))) rows) in
      let group_count a =
        let g = ref 0 in
        Array.iteri (fun i (x, _) -> if i = 0 || x <> fst a.(i - 1) then incr g) a;
        !g
      in
      {
        pname = name;
        pkind = kind;
        pvars = vids;
        psize = Array.length fwd;
        pdistinct = [| group_count fwd; group_count bwd |];
        psource = SPairs (fwd, bwd);
      }
  | 3 ->
      let a = Array.of_list (List.map (fun (r : int array) -> (r.(0), r.(1), r.(2))) rows) in
      Array.sort row_compare a;
      let n = Array.length a in
      let m = ref 0 in
      for i = 0 to n - 1 do
        if i = 0 || a.(i) <> a.(i - 1) then begin
          a.(!m) <- a.(i);
          incr m
        end
      done;
      let a = Array.sub a 0 !m in
      let rows' = List.map (fun (x, y, z) -> [| x; y; z |]) (Array.to_list a) in
      {
        pname = name;
        pkind = kind;
        pvars = vids;
        psize = Array.length a;
        pdistinct =
          [|
            distinct_count_of_column rows' 0;
            distinct_count_of_column rows' 1;
            distinct_count_of_column rows' 2;
          |];
        psource = SRows a;
      }
  | _ -> invalid_arg "Join: unsupported atom arity"

let normalize ?snapshot spec ~var_id =
  let arity = rel_arity spec.rel in
  if Array.length spec.avars <> arity then
    invalid_arg
      (Printf.sprintf "Join: atom %s has %d variables for an arity-%d relation" spec.name
         (Array.length spec.avars) arity);
  let vids = Array.map var_id spec.avars in
  let has_repeats =
    let seen = Hashtbl.create 4 in
    Array.exists
      (fun v ->
        if Hashtbl.mem seen v then true
        else begin
          Hashtbl.replace seen v ();
          false
        end)
      vids
  in
  match spec.rel with
  | Edges labels -> begin
      let idx =
        match snapshot with
        | Some snap -> Index.get snap
        | None -> invalid_arg "Join: Edges atom requires ~snapshot"
      in
      match (labels, has_repeats) with
      | [ l ], false ->
          let stat = idx.Index.stats.(l) in
          {
            pname = spec.name;
            pkind = "csr";
            pvars = vids;
            psize = stat.Index.pairs;
            pdistinct = [| stat.Index.distinct_src; stat.Index.distinct_dst |];
            psource = SCsr (idx, l);
          }
      | _, false ->
          (* Union of several labels: materialize the merged pairs. *)
          let pairs = List.concat_map (fun l -> trie_pairs idx.Index.out_tries.(l)) labels in
          pre_of_rows ~name:spec.name ~kind:"csr-union" vids
            (List.map (fun (s, d) -> [| s; d |]) pairs)
      | _, true ->
          (* (x, x): the self-loop node set. *)
          let loops =
            List.concat_map
              (fun l ->
                match idx.Index.self_tries.(l) with
                | T1 a -> Array.to_list a
                | _ -> [])
              labels
          in
          pre_of_rows ~name:spec.name ~kind:"self-loops" [| vids.(0) |]
            (List.map (fun v -> [| v |]) loops)
    end
  | Set a ->
      pre_of_rows ~name:spec.name ~kind:(if Array.length a = 1 then "singleton" else "set")
        vids
        (Array.to_list (Array.map (fun v -> [| v |]) a))
  | Pairs pairs ->
      let rows = List.map (fun (a, b) -> [| a; b |]) pairs in
      if has_repeats then
        let vids', rows' = project_repeats vids rows in
        pre_of_rows ~name:spec.name ~kind:"pairs" vids' rows'
      else pre_of_rows ~name:spec.name ~kind:"pairs" vids rows
  | Rows3 rows ->
      let rows = List.map (fun (a, b, c) -> [| a; b; c |]) rows in
      if has_repeats then
        let vids', rows' = project_repeats vids rows in
        pre_of_rows ~name:spec.name ~kind:"rows" vids' rows'
      else pre_of_rows ~name:spec.name ~kind:"rows" vids rows

(* ------------------------------------------------------------------ *)
(* Cursors and the leapfrog kernel                                    *)
(* ------------------------------------------------------------------ *)

type cursor = {
  trie : trie;
  ovars : int array; (* var ids in trie column order *)
  lo : int array;
  hi : int array;
  pos : int array;
}

let col c d =
  match (c.trie, d) with
  | T1 a, 0 -> a
  | T2 t, 0 -> t.k0
  | T2 t, 1 -> t.v1
  | T3 t, 0 -> t.k0
  | T3 t, 1 -> t.k1
  | T3 t, 2 -> t.v2
  | _ -> assert false

let start_root c =
  c.lo.(0) <- 0;
  c.hi.(0) <- Array.length (col c 0);
  c.pos.(0) <- 0

(* Set depth [d]'s range from the parent's position. *)
let open_child c d =
  (match (c.trie, d) with
  | T2 t, 1 ->
      let p = c.pos.(0) in
      c.lo.(1) <- t.off.(p);
      c.hi.(1) <- t.off.(p + 1)
  | T3 t, 1 ->
      let p = c.pos.(0) in
      c.lo.(1) <- t.off0.(p);
      c.hi.(1) <- t.off0.(p + 1)
  | T3 t, 2 ->
      let p = c.pos.(1) in
      c.lo.(2) <- t.off1.(p);
      c.hi.(2) <- t.off1.(p + 1)
  | _ -> assert false);
  c.pos.(d) <- c.lo.(d)

let cursor_of_trie trie ovars =
  let arity = Array.length ovars in
  { trie; ovars; lo = Array.make arity 0; hi = Array.make arity 0; pos = Array.make arity 0 }

(* Build the oriented trie of a normalized atom under the global order:
   columns sorted by the variables' positions in [level_of]. *)
let cursor_of_pre level_of p =
  let order_vars vids =
    let vs = Array.copy vids in
    Array.sort (fun a b -> compare (level_of a) (level_of b)) vs;
    vs
  in
  match p.psource with
  | SSet a -> cursor_of_trie (T1 a) p.pvars
  | SPairs (fwd, bwd) ->
      if level_of p.pvars.(0) < level_of p.pvars.(1) then
        cursor_of_trie (t2_of_sorted_pairs fwd) p.pvars
      else cursor_of_trie (t2_of_sorted_pairs bwd) [| p.pvars.(1); p.pvars.(0) |]
  | SCsr (idx, l) ->
      if level_of p.pvars.(0) < level_of p.pvars.(1) then
        cursor_of_trie idx.Index.out_tries.(l) p.pvars
      else cursor_of_trie idx.Index.in_tries.(l) [| p.pvars.(1); p.pvars.(0) |]
  | SRows rows ->
      let ovars = order_vars p.pvars in
      let posn v =
        let rec find i = if p.pvars.(i) = v then i else find (i + 1) in
        find 0
      in
      let c0 = posn ovars.(0) and c1 = posn ovars.(1) and c2 = posn ovars.(2) in
      let permuted =
        Array.map (fun (a, b, c) ->
          let r = [| a; b; c |] in
          (r.(c0), r.(c1), r.(c2))) rows
      in
      Array.sort row_compare permuted;
      cursor_of_trie (t3_of_sorted_rows permuted) ovars

exception Tripped

(* ------------------------------------------------------------------ *)
(* Compilation: specs -> variable table, normalized atoms, plan       *)
(* ------------------------------------------------------------------ *)

type compiled = {
  var_names : string array;
  var_tbl : (string, int) Hashtbl.t;
  pres : pre list;
}

let compile ?snapshot specs =
  let var_tbl = Hashtbl.create 16 in
  let names = ref [] and next = ref 0 in
  let var_id v =
    match Hashtbl.find_opt var_tbl v with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add var_tbl v i;
        names := v :: !names;
        i
  in
  let pres = List.map (fun s -> normalize ?snapshot s ~var_id) specs in
  { var_names = Array.of_list (List.rev !names); var_tbl; pres }

let stats_of_pres pres =
  List.map
    (fun p ->
      {
        Gqkg_analysis.Joinplan.vars = p.pvars;
        size = float_of_int p.psize;
        distinct = Array.map float_of_int p.pdistinct;
        label = Printf.sprintf "%s [%s]" p.pname p.pkind;
      })
    pres

type plan = {
  order : string array;
  atom_summary : (string * string * int) list;
  rendered : string;
}

let plan_of_compiled c ~order =
  let var_name i = c.var_names.(i) in
  let stats = stats_of_pres c.pres in
  {
    order = Array.map var_name order;
    atom_summary = List.map (fun p -> (p.pname, p.pkind, p.psize)) c.pres;
    rendered = Gqkg_analysis.Joinplan.describe ~var_name stats ~order;
  }

let choose ?order_hint c =
  let num_vars = Array.length c.var_names in
  match order_hint with
  | Some names ->
      if Array.length names <> num_vars then
        invalid_arg "Join: order_hint must mention every variable exactly once";
      let seen = Array.make num_vars false in
      let order =
        Array.map
          (fun n ->
            match Hashtbl.find_opt c.var_tbl n with
            | Some i when not seen.(i) ->
                seen.(i) <- true;
                i
            | _ -> invalid_arg "Join: order_hint must mention every variable exactly once")
          names
      in
      order
  | None -> Gqkg_analysis.Joinplan.choose_order ~num_vars (stats_of_pres c.pres)

let plan ?snapshot specs =
  let c = compile ?snapshot specs in
  let order = choose c in
  plan_of_compiled c ~order

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

let budget_check_interval = 64

let solve ?budget ?snapshot ?order_hint specs ~vars ~yield =
  match specs with
  | [] ->
      if vars <> [] then invalid_arg "Join.solve: variable used by no atom";
      yield [||]
  | _ ->
      let c = compile ?snapshot specs in
      let num_vars = Array.length c.var_names in
      let proj =
        List.map
          (fun v ->
            match Hashtbl.find_opt c.var_tbl v with
            | Some i -> i
            | None -> invalid_arg (Printf.sprintf "Join.solve: variable %s used by no atom" v))
          vars
      in
      let order = choose ?order_hint c in
      let level_of = Array.make num_vars 0 in
      Array.iteri (fun lvl v -> level_of.(v) <- lvl) order;
      let cursors = List.map (cursor_of_pre (fun v -> level_of.(v))) c.pres in
      (* Participants per level: (cursor, depth) for every trie column
         bound at that level. *)
      let levels = Array.make num_vars [] in
      List.iter
        (fun cu ->
          Array.iteri (fun d v -> levels.(level_of.(v)) <- (cu, d) :: levels.(level_of.(v))) cu.ovars)
        cursors;
      let levels = Array.map Array.of_list levels in
      Array.iter (fun parts -> assert (Array.length parts > 0)) levels;
      (* Projection / dedup setup. *)
      let proj = Array.of_list proj in
      let full_cover =
        let covered = Array.make num_vars false in
        Array.iter (fun v -> covered.(v) <- true) proj;
        Array.length proj = num_vars && Array.for_all (fun b -> b) covered
      in
      let seen = Hashtbl.create 64 in
      let bnd = Array.make num_vars (-1) in
      (* Reusable probe row: duplicates (the common case under a
         projection) cost one hash lookup and no allocation; only a
         genuinely new row is copied to become the table key. *)
      let probe = Array.make (Array.length proj) 0 in
      let emit () =
        if full_cover then yield (Array.map (fun v -> bnd.(v)) proj)
        else begin
          Array.iteri (fun i v -> probe.(i) <- bnd.(v)) proj;
          if not (Hashtbl.mem seen probe) then begin
            let row = Array.copy probe in
            Hashtbl.replace seen row ();
            yield row
          end
        end
      in
      (* Budget plumbing: one step per variable binding, polled coarsely. *)
      let pending = ref 0 in
      let tick =
        match budget with
        | Some b when not (Budget.is_unlimited b) ->
            fun () ->
              incr pending;
              if !pending land (budget_check_interval - 1) = 0 then begin
                Budget.charge_steps b budget_check_interval;
                if Budget.check b then raise Tripped
              end
        | _ -> fun () -> ()
      in
      let flush_pending () =
        match budget with
        | Some b when not (Budget.is_unlimited b) ->
            Budget.charge_steps b (!pending land (budget_check_interval - 1))
        | _ -> ()
      in
      let rec level g =
        if g = num_vars then emit ()
        else begin
          let parts = levels.(g) in
          let k = Array.length parts in
          Array.iter (fun (cu, d) -> if d = 0 then start_root cu else open_child cu d) parts;
          let dead = ref false in
          Array.iter (fun (cu, d) -> if cu.pos.(d) >= cu.hi.(d) then dead := true) parts;
          if not !dead then begin
            Array.sort
              (fun (c1, d1) (c2, d2) ->
                compare (col c1 d1).(c1.pos.(d1)) (col c2 d2).(c2.pos.(d2)))
              parts;
            let p = ref 0 in
            let x' =
              let cu, d = parts.(k - 1) in
              ref (col cu d).(cu.pos.(d))
            in
            let live = ref true in
            while !live do
              let cu, d = parts.(!p) in
              let x = (col cu d).(cu.pos.(d)) in
              if x = !x' then begin
                (* All k iterators agree on x: bind and descend. *)
                bnd.(order.(g)) <- x;
                tick ();
                level (g + 1);
                cu.pos.(d) <- cu.pos.(d) + 1;
                if cu.pos.(d) >= cu.hi.(d) then live := false
                else begin
                  x' := (col cu d).(cu.pos.(d));
                  p := (!p + 1) mod k
                end
              end
              else begin
                cu.pos.(d) <- lower_bound (col cu d) cu.pos.(d) cu.hi.(d) !x';
                if cu.pos.(d) >= cu.hi.(d) then live := false
                else begin
                  x' := (col cu d).(cu.pos.(d));
                  p := (!p + 1) mod k
                end
              end
            done
          end
        end
      in
      let run () =
        match budget with
        | Some b when Budget.check b -> () (* sticky: already exhausted *)
        | _ -> level 0
      in
      (try run () with Tripped -> ());
      flush_pending ()

(* ------------------------------------------------------------------ *)
(* Shared path-atom materialization                                   *)
(* ------------------------------------------------------------------ *)

let path_pairs ?budget ?max_length snap regex = Rpq.eval_pairs ?budget ?max_length snap regex

(* The bridge between the static analyzer and the product kernel: every
   core entry point plans its query here instead of calling
   [Product.create] directly.

   With analysis enabled (the default), the query is pruned, its NFA
   trimmed, and seed costs estimated; a statically-empty query yields
   [Empty] and the caller answers without constructing any product state
   at all.  With analysis disabled, [prepare] reproduces the
   pre-analyzer path bit for bit: the untrimmed Thompson automaton of
   the original expression, no hints.

   The optional [budget] is attached to the product here, so every
   kernel downstream of the planner shares one cooperative resource
   budget without further parameter threading. *)

module Analyze = Gqkg_analysis.Analyze

type prep = Empty | Ready of Product.t

let product_of_report ?budget inst (r : Analyze.report) =
  match r.Analyze.nfa with
  | None -> Empty
  | Some nfa ->
      let hints =
        { Product.fwd_seed_cost = r.Analyze.fwd_cost; bwd_seed_cost = r.Analyze.bwd_cost }
      in
      Ready (Product.create ?budget ~nfa ~hints inst r.Analyze.regex)

let prepare ?budget inst regex =
  match Analyze.plan_if_enabled inst regex with
  | None -> Ready (Product.create ?budget inst regex)
  | Some report -> product_of_report ?budget inst report

(* Like [prepare], but also exposes the report (for direction choice and
   diagnostics); [None] when analysis is disabled. *)
let prepare_with_report ?budget inst regex =
  match Analyze.plan_if_enabled inst regex with
  | None -> (Ready (Product.create ?budget inst regex), None)
  | Some report -> (product_of_report ?budget inst report, Some report)

(* Planning for all-pairs evaluation, where direction is free: when the
   analyzer estimates the backward frontier to be decisively cheaper
   (2x hysteresis — the estimates are coarse), the product is built over
   the reversed automaton and the caller swaps each result pair.  Second
   component: did we reverse? *)
let prepare_pairs ?budget inst regex =
  match Analyze.plan_if_enabled inst regex with
  | None -> (Ready (Product.create ?budget inst regex), false)
  | Some r -> (
      match r.Analyze.nfa with
      | None -> (Empty, false)
      | Some nfa ->
          let swap = r.Analyze.bwd_cost *. 2.0 < r.Analyze.fwd_cost in
          let nfa = if swap then Gqkg_automata.Nfa.reverse nfa else nfa in
          let fwd, bwd =
            if swap then (r.Analyze.bwd_cost, r.Analyze.fwd_cost)
            else (r.Analyze.fwd_cost, r.Analyze.bwd_cost)
          in
          let regex =
            if swap then Gqkg_automata.Regex.reverse r.Analyze.regex else r.Analyze.regex
          in
          let hints = { Product.fwd_seed_cost = fwd; bwd_seed_cost = bwd } in
          (Ready (Product.create ?budget ~nfa ~hints inst regex), swap))

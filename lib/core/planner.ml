(* The bridge between the static analyzer and the product kernel: every
   core entry point plans its query here instead of calling
   [Product.create] directly.

   With analysis enabled (the default), the query is pruned, its NFA
   trimmed, and seed costs estimated; a statically-empty query yields
   [Empty] and the caller answers without constructing any product state
   at all.  With analysis disabled, [prepare] reproduces the
   pre-analyzer path bit for bit: the untrimmed Thompson automaton of
   the original expression, no hints.

   On top of that, with [minimize] on (the default), the trimmed
   automaton is canonicalized by the decision procedures (Decide):
   when the minimal canonical automaton is strictly smaller it is
   evaluated instead of the trimmed one (identity-preserving when the
   automaton is already minimal), and its canonical key makes
   syntactically different but equivalent queries share one entry in
   the semantic plan cache (Semcache).  Canonicalization runs under a
   pure state cap — no wall clock — so planning stays deterministic;
   when it gives up, the trimmed automaton is used as before.

   The optional [budget] is attached to the product here, so every
   kernel downstream of the planner shares one cooperative resource
   budget without further parameter threading.  Cached plans are only
   looked up or stored for unlimited budgets: a product warmed under a
   tripped budget must never be served to an unbudgeted caller. *)

module Analyze = Gqkg_analysis.Analyze
module Decide = Gqkg_analysis.Decide
module Schema = Gqkg_analysis.Schema
module Budget = Gqkg_util.Budget
module Nfa = Gqkg_automata.Nfa
module Regex = Gqkg_automata.Regex

type prep = Empty | Ready of Product.t

(* Evaluate the minimized canonical automaton instead of the trimmed
   one?  Bench A/Bs this; [false] restores the pre-decision-procedure
   planner exactly. *)
let minimize = ref true

(* State cap for planning-time canonicalization: deterministic (no
   wall-clock component) and small — a query automaton that blows past
   this is evaluated untouched. *)
let canon_max_states = ref 256

type plan = {
  prep : prep;
  report : Analyze.report option;
  canon : Decide.canonical option;
  minimized : bool;  (** the canonical automaton is the one being evaluated *)
  plan_cache_hit : bool;
  swapped : bool;
}

(* Schema derivation is per epoch, not per query: the vocabulary summary
   of a snapshot is a pure function of its (immutable) columns, so one
   [Schema.of_snapshot] per committed epoch suffices.  A short memo list
   (not a single slot) keeps pinned older epochs warm while the writer
   commits new ones. *)
let schema_memo : (int * Schema.t) list ref = ref []
let schema_memo_cap = 8

let schema_for (inst : Gqkg_graph.Snapshot.t) =
  let epoch = inst.Gqkg_graph.Snapshot.epoch in
  match List.assoc_opt epoch !schema_memo with
  | Some s -> s
  | None ->
      let s = Schema.of_snapshot inst in
      let rec take n = function [] -> [] | _ when n <= 0 -> [] | x :: r -> x :: take (n - 1) r in
      schema_memo := (epoch, s) :: take (schema_memo_cap - 1) !schema_memo;
      s

let canonical_for inst nfa =
  if not !minimize then None
  else Decide.canonicalize_nfa ~schema:(schema_for inst) ~max_states:!canon_max_states nfa

let cacheable = function None -> true | Some b -> Budget.is_unlimited b

let plan_query ?budget ~for_pairs inst regex =
  match Analyze.plan_if_enabled inst regex with
  | None ->
      {
        prep = Ready (Product.create ?budget inst regex);
        report = None;
        canon = None;
        minimized = false;
        plan_cache_hit = false;
        swapped = false;
      }
  | Some r -> (
      match r.Analyze.nfa with
      | None ->
          {
            prep = Empty;
            report = Some r;
            canon = None;
            minimized = false;
            plan_cache_hit = false;
            swapped = false;
          }
      | Some nfa ->
          let swap = for_pairs && r.Analyze.bwd_cost *. 2.0 < r.Analyze.fwd_cost in
          let canon = canonical_for inst nfa in
          let minimized, base_nfa =
            match canon with
            | Some c when c.Decide.states < Nfa.num_states nfa -> (true, c.Decide.nfa)
            | _ -> (false, nfa)
          in
          let eval_nfa = if swap then Nfa.reverse base_nfa else base_nfa in
          let fwd, bwd =
            if swap then (r.Analyze.bwd_cost, r.Analyze.fwd_cost)
            else (r.Analyze.fwd_cost, r.Analyze.bwd_cost)
          in
          let eval_regex = if swap then Regex.reverse r.Analyze.regex else r.Analyze.regex in
          let hints = { Product.fwd_seed_cost = fwd; bwd_seed_cost = bwd } in
          let build () = Product.create ?budget ~nfa:eval_nfa ~hints inst eval_regex in
          let mk prep hit =
            {
              prep;
              report = Some r;
              canon;
              minimized;
              plan_cache_hit = hit;
              swapped = swap;
            }
          in
          let key =
            match canon with
            | Some c when cacheable budget ->
                Some (if swap then c.Decide.key ^ "|rev" else c.Decide.key)
            | _ -> None
          in
          (match key with
          | None -> mk (Ready (build ())) false
          | Some key -> (
              match Semcache.find_product inst ~key with
              | Some p -> mk (Ready p) true
              | None ->
                  let p = build () in
                  Semcache.store_product inst ~key p;
                  mk (Ready p) false)))

let prepare ?budget inst regex = (plan_query ?budget ~for_pairs:false inst regex).prep

let prepare_with_report ?budget inst regex =
  let p = plan_query ?budget ~for_pairs:false inst regex in
  (p.prep, p.report)

let prepare_pairs ?budget inst regex =
  let p = plan_query ?budget ~for_pairs:true inst regex in
  (p.prep, p.swapped)

let prepare_explained ?budget inst regex = plan_query ?budget ~for_pairs:false inst regex

(* The canonical key of a query on this snapshot, for semantic result
   caching: [None] when analysis or minimization is off, the query is
   statically empty (already O(1) — nothing to cache), or
   canonicalization gave up. *)
let semantic_key inst regex =
  if not !minimize then None
  else
    match Analyze.plan_if_enabled inst regex with
    | None -> None
    | Some r -> (
        match r.Analyze.nfa with
        | None -> None
        | Some nfa -> Option.map (fun c -> c.Decide.key) (canonical_for inst nfa))

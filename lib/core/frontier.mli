(** Batched multi-source BFS over the lazy deterministic product.

    Up to {!word_bits} sources run in one level-synchronous pass, with a
    single machine word of visited/frontier bits per product state — a
    state is expanded and scanned once per level for the whole batch.
    Per-slot discovery levels equal per-source BFS distances exactly, so
    every distance-or-reachability answer is bit-identical to the
    one-source-at-a-time loop this replaces.  Levels may expand top-down
    (push the frontier's out-moves) or bottom-up (pull unvisited states'
    in-moves through a reverse CSR over the committed product moves,
    Beamer style); the switch is a cost heuristic informed by the
    snapshot's freeze-time degree stats and never affects results. *)

(** Sources per batch: {!Gqkg_util.Bitset.bits_per_word}. *)
val word_bits : int

(** [`Auto] applies the cost heuristic per level; the forced modes exist
    for tests and diagnosis (results are identical in all three). *)
type direction = [ `Auto | `Bottom_up | `Top_down ]

type t

(** A frontier context wraps one product and caches the reverse CSR
    across batches.  Not safe for concurrent use — give each domain its
    own product and context, as the product itself requires. *)
val create : Product.t -> t

val product : t -> Product.t

(** [run_batch t ~sources] runs one MS-BFS pass over at most
    {!word_bits} sources (raises [Invalid_argument] beyond; duplicate
    sources are fine — slots are independent).  When given, [level
    ~dist ~states ~words] is called once per BFS level: [states] are
    the product states first reached by some slot at distance [dist],
    in discovery order (deterministic for a fixed direction policy, not
    sorted — aggregate into order-insensitive structures), and
    [words.(i)] has bit [s] set iff source slot [s] discovered
    [states.(i)] at this level.  Omitting [level] skips the per-level
    materialization entirely — the pass then only warms the product and
    fills the visited words.  [max_length] bounds the depth (levels
    [0..max_length] are emitted, as in per-source BFS). *)
val run_batch :
  ?direction:direction ->
  ?max_length:int ->
  ?level:(dist:int -> states:int array -> words:int array -> unit) ->
  t ->
  sources:int array ->
  unit

(** RPQ reachability for arbitrarily many sources, sliced internally
    into {!word_bits}-wide batches: [result.(i)] is the sorted list of
    nodes at accepting product states reached from [sources.(i)] —
    elementwise equal to per-source {!Rpq.reachable_from_product}. *)
val reachable :
  ?direction:direction -> ?max_length:int -> t -> sources:int array -> int list array

(** Process-wide usage counters (all products), for [gqkg explain] and
    the bench: batches run, and levels expanded each way. *)
val batches_total : unit -> int

val top_down_levels_total : unit -> int
val bottom_up_levels_total : unit -> int

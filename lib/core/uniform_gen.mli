(** Uniform generation of matching paths (the problem Gen, Section 4.1).

    [create] is the preprocessing phase (suffix-count tables over the
    deterministic product); [sample] the generation phase, drawing each
    path p ∈ [[r]] with |p| = k with probability exactly
    1 / Count(G, r, k). *)

type t

(** A [budget] that trips during preprocessing yields a sampler over the
    empty answer set (no skewed sampling over partial tables). *)
val create :
  ?budget:Gqkg_util.Budget.t -> Gqkg_graph.Snapshot.t -> Gqkg_automata.Regex.t -> length:int -> t

(** Count(G, r, k) as seen by this sampler. *)
val total_count : t -> float

(** One exactly-uniform draw; [None] when the answer set is empty. *)
val sample : t -> Gqkg_util.Splitmix.t -> Path.t option

(** [n] independent draws with replacement. *)
val samples : t -> Gqkg_util.Splitmix.t -> int -> Path.t list

(** The problem Count of Section 4.1: the number of paths p ∈ [[r]] with
    |p| = k, computed exactly by dynamic programming over the
    deterministic product.

    Counts are floats: they grow combinatorially, and every consumer
    (the uniform sampler's weights, FPRAS accuracy comparisons) needs
    ratios rather than exact big integers.

    Under a tripped budget every count is an {e undercount} (never an
    overcount): interrupted table construction zeroes the deeper suffix
    rows, and an interrupted pairwise DP answers 0.0. *)

type table
(** Suffix-count tables: for every product state reachable within the
    construction depth, the number of accepting completions of each
    residual length. The "data structure built in the preprocessing
    phase" of the paper's Gen algorithm. *)

(** [build product ~depth] materializes the product to [depth] moves and
    computes the suffix counts for residual lengths [0..depth]. *)
val build : Product.t -> depth:int -> table

(** [suffix_count t ~state ~length] is the number of accepting suffixes
    of exactly [length] moves from [state]. Reliable whenever
    [state]'s minimal distance from a start plus [length] is within the
    construction depth (always the case for the uses in this library);
    deeper queries undercount because the horizon was not materialized.
    Raises if [length] exceeds the depth. *)
val suffix_count : table -> state:int -> length:int -> float

(** Count(G, r, k) over all start nodes, for k ≤ depth. *)
val count_at : table -> length:int -> float

(** Paths of the given length starting at [source]. *)
val count_from : table -> source:int -> length:int -> float

(** One-shot Count(G, r, k). *)
val count :
  ?budget:Gqkg_util.Budget.t ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  length:int ->
  float

(** Counts for every length 0..max_length with one preprocessing pass. *)
val count_all :
  ?budget:Gqkg_util.Budget.t ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  max_length:int ->
  float array

(** Paths from [source] to [target] of exactly [length] — the pairwise
    count the regex-constrained centrality of Section 4.2 builds on. *)
val count_between :
  ?budget:Gqkg_util.Budget.t ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  source:int ->
  target:int ->
  length:int ->
  float

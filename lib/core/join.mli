(** Worst-case-optimal multiway join over Snapshot CSR: a
    Leapfrog-Triejoin engine shared by every conjunctive consumer (CQ,
    CRPQ, SPARQL BGP).

    Instead of joining relation-by-relation (whose intermediate results
    can be quadratically larger than the output — O(n²) on triangles), the
    engine binds variables one at a time: at each level it leapfrogs the
    sorted iterators of every atom containing that variable to their
    common values, achieving the AGM worst-case-optimal bound (O(n^1.5)
    on the triangle query).

    Atoms are specified over named variables with one of four relation
    sources; constants must be substituted away by the caller (or pinned
    with a singleton {!Set} atom).  Trie iterators come in three flavors:
    zero-copy views over a per-snapshot label-sorted CSR index
    ({!Edges}), sorted int arrays built from materialized relations
    ({!Pairs}, {!Rows3}), and unary sorted sets / singletons ({!Set}).
    The global variable order is chosen by
    {!Gqkg_analysis.Joinplan.choose_order} from per-atom cardinality
    estimates.

    Budget governance: [solve ?budget] charges one step per variable
    binding and polls {!Gqkg_util.Budget.check} at coarse granularity; a
    tripped budget stops the enumeration, so the yielded bindings are a
    sound subset of the complete answer (check
    [Budget.completeness budget] afterwards). *)

open Gqkg_graph
module Budget = Gqkg_util.Budget

(** {1 Per-snapshot join index} *)

module Index : sig
  (** Label-sorted adjacency: for every edge-label id, the distinct
      (src, dst) pairs grouped by src (out orientation) and by dst (in
      orientation), built once per snapshot by counting sorts and cached
      by {!Snapshot.epoch}.  Empty when the snapshot interns no edge
      labels ([num_labels = 0]). *)
  type t

  val get : Snapshot.t -> t

  (** Edge-label ids whose [label_sat] accepts the constant. *)
  val edge_label_ids : t -> Const.t -> int list

  (** Nodes whose node labels satisfy the constant, ascending. *)
  val nodes_with_const_label : t -> Const.t -> int array

  (** Per edge label: distinct (src, dst) pairs, distinct sources,
      distinct destinations, self-loop count. *)
  type label_stat = {
    name : string;
    pairs : int;
    distinct_src : int;
    distinct_dst : int;
    self_loops : int;
  }

  val label_stats : t -> label_stat array

  (** The per-label cardinality table [gqkg stats] prints. *)
  val describe : t -> string
end

(** {1 Atom specification} *)

type rel =
  | Edges of int list
      (** Union of edge-label ids, served zero-copy from the {!Index}
          when the list is a singleton.  Arity 2: (src, dst). *)
  | Pairs of (int * int) list  (** Materialized binary relation. *)
  | Set of int array  (** Unary relation (need not be sorted). *)
  | Rows3 of (int * int * int) list  (** Ternary relation. *)

type atom_spec = {
  avars : string array;
      (** One variable name per column; repeats allowed (the atom is
          projected to its distinct variables, e.g. an (x, x) edge atom
          becomes the self-loop node set). *)
  rel : rel;
  name : string;  (** Display name for plans. *)
}

val atom : ?name:string -> string array -> rel -> atom_spec

(** {1 Planning} *)

type plan = {
  order : string array;  (** global variable order *)
  atom_summary : (string * string * int) list;
      (** per atom: display name, iterator kind, rows *)
  rendered : string;  (** full plan text (order + estimates) *)
}

(** Plan without running — what [gqkg explain] surfaces.  [snapshot] is
    required when any atom is {!Edges}. *)
val plan : ?snapshot:Snapshot.t -> atom_spec list -> plan

(** {1 Evaluation} *)

(** Enumerate all satisfying assignments, yielding the values of [vars]
    (in the given order) once per distinct tuple.  When [vars] covers
    every variable each full assignment is yielded exactly once (no
    dedup table is kept); proper projections are deduplicated.

    Raises [Invalid_argument] if a requested variable appears in no
    atom, or an atom's arity disagrees with its relation.  Exceptions
    raised by [yield] (e.g. a LIMIT sentinel) propagate. *)
val solve :
  ?budget:Budget.t ->
  ?snapshot:Snapshot.t ->
  ?order_hint:string array ->
  atom_spec list ->
  vars:string list ->
  yield:(int array -> unit) ->
  unit

(** {1 Shared path-atom materialization}

    The one place CRPQ and BGP path atoms are materialized: endpoint
    pairs of the regex, computed by the batched {!Frontier}-backed
    product engine, sorted and deduplicated. *)
val path_pairs :
  ?budget:Budget.t ->
  ?max_length:int ->
  Snapshot.t ->
  Gqkg_automata.Regex.t ->
  (int * int) list

(* Paths in the sense of Section 4: a sequence p = n0 e1 n1 e2 ... ek nk
   of alternating nodes and edges, with start(p) = n0, end(p) = nk and
   |p| = k.  Stored as parallel index arrays; [nodes] always has one more
   element than [edges]. *)

open Gqkg_graph

type t = { nodes : int array; edges : int array }

let trivial node = { nodes = [| node |]; edges = [||] }

let make ~nodes ~edges =
  if Array.length nodes <> Array.length edges + 1 then
    invalid_arg "Path.make: need one more node than edges";
  if Array.length nodes = 0 then invalid_arg "Path.make: empty";
  { nodes; edges }

(* |p|: the number of edges. *)
let length p = Array.length p.edges

let start_node p = p.nodes.(0)
let end_node p = p.nodes.(Array.length p.nodes - 1)
let nodes p = p.nodes
let edges p = p.edges

let node p i =
  if i < 0 || i > length p then invalid_arg "Path.node: out of range";
  p.nodes.(i)

let edge p i =
  if i < 0 || i >= length p then invalid_arg "Path.edge: out of range";
  p.edges.(i)

(* cat(p, p'): defined when end(p) = start(p'), as in the paper. *)
let cat p p' =
  if end_node p <> start_node p' then invalid_arg "Path.cat: endpoints do not meet";
  {
    nodes = Array.append p.nodes (Array.sub p'.nodes 1 (Array.length p'.nodes - 1));
    edges = Array.append p.edges p'.edges;
  }

(* Extend by one step to [dst] via [edge]. *)
let snoc p ~edge ~dst = { nodes = Array.append p.nodes [| dst |]; edges = Array.append p.edges [| edge |] }

let equal p q = p.nodes = q.nodes && p.edges = q.edges

let compare p q =
  let c = Stdlib.compare p.nodes q.nodes in
  if c <> 0 then c else Stdlib.compare p.edges q.edges

let hash p = Hashtbl.hash (p.nodes, p.edges)

(* Structural consistency against a graph instance: every step uses an
   edge incident the right way (in either direction, as regexes may
   traverse backwards). *)
let well_formed inst p =
  let ok = ref (p.nodes.(0) >= 0 && p.nodes.(0) < inst.Snapshot.num_nodes) in
  for i = 0 to length p - 1 do
    let e = p.edges.(i) and a = p.nodes.(i) and b = p.nodes.(i + 1) in
    if e < 0 || e >= inst.Snapshot.num_edges then ok := false
    else begin
      let s, d = (Snapshot.endpoints inst) e in
      if not ((s = a && d = b) || (s = b && d = a)) then ok := false
    end
  done;
  !ok

let to_string inst p =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (inst.Snapshot.node_name p.nodes.(0));
  for i = 0 to length p - 1 do
    Buffer.add_string buf (Printf.sprintf " -%s-> %s" (inst.Snapshot.edge_name p.edges.(i))
                             (inst.Snapshot.node_name p.nodes.(i + 1)))
  done;
  Buffer.contents buf

let pp inst ppf p = Fmt.string ppf (to_string inst p)

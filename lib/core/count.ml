(* The problem Count of Section 4.1: given L, r and k, compute the number
   of paths p ∈ [[r]]_L with |p| = k.

   Count is SpanL-complete in general [Alvarez & Jenner 1993], which here
   surfaces as the worst-case exponential size of the determinized
   product; on real queries the product stays small and the dynamic
   program below is exact and fast.  It is the baseline the FPRAS of
   {!Approx_count} is compared against (experiment E4), and its tables
   are reused by the uniform generator and the pruned enumerator. *)

type table = {
  product : Product.t;
  depth : int;
  state_ids : int array; (* all states reachable within depth *)
  index_of : int array; (* state id -> dense index, -1 = beyond horizon *)
  suffix : float array array; (* suffix.(j).(i): # accepting suffixes of length j from state i *)
}

(* Number of accepting path-suffixes of length exactly j starting in each
   product state, for j = 0..depth.  Floats: path counts explode
   combinatorially and the consumers (sampler, estimator comparisons)
   need ratios, not exact big integers; an exact int variant is exposed
   separately for small counts. *)
let build product ~depth =
  (* Materialize every state reachable within [depth] steps from any start. *)
  let levels = Product.levels product ~depth in
  let seen = Gqkg_util.Bitset.create () in
  let ids = ref [] and count = ref 0 in
  Array.iter
    (List.iter (fun id ->
         if not (Gqkg_util.Bitset.mem seen id) then begin
           Gqkg_util.Bitset.add seen id;
           ids := id :: !ids;
           incr count
         end))
    levels;
  let state_ids = Array.of_list (List.rev !ids) in
  let n = !count in
  (* Expand every table state up front so all successor ids — including
     those just beyond the materialized horizon — are interned before the
     dense index is sized; out-of-horizon successors keep index -1. *)
  Array.iter (fun id -> ignore (Product.degree product id)) state_ids;
  let index_of = Array.make (max 1 (Product.num_states product)) (-1) in
  Array.iteri (fun i id -> index_of.(id) <- i) state_ids;
  (* Flatten each state's successors to dense indices once, so the DP
     inner loop is a plain array walk (-1 = beyond the horizon). *)
  let deg = Array.map (fun id -> Product.degree product id) state_ids in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let dense_succ = Array.make (max 1 off.(n)) (-1) in
  Array.iteri
    (fun i id ->
      for m = 0 to deg.(i) - 1 do
        dense_succ.(off.(i) + m) <- index_of.(Product.move_succ product id m)
      done)
    state_ids;
  let suffix = Array.init (depth + 1) (fun _ -> Array.make n 0.0) in
  Array.iteri
    (fun i id -> if Product.is_accepting product id then suffix.(0).(i) <- 1.0)
    state_ids;
  (* Budget check site: once per DP depth.  Stopping leaves the deeper
     suffix rows at 0.0 — an undercount, so every consumer (counts,
     pruned enumeration, sampling weights) only shrinks. *)
  let budget = Product.budget product in
  let jr = ref 1 in
  while !jr <= depth && not (Gqkg_util.Budget.check budget) do
    let j = !jr in
    let prev = suffix.(j - 1) and cur = suffix.(j) in
    for i = 0 to n - 1 do
      let total = ref 0.0 in
      for m = off.(i) to off.(i + 1) - 1 do
        let si = dense_succ.(m) in
        (* si < 0: beyond the materialized horizon; counted as 0. *)
        if si >= 0 then total := !total +. prev.(si)
      done;
      cur.(i) <- !total
    done;
    incr jr
  done;
  { product; depth; state_ids; index_of; suffix }

let suffix_count t ~state ~length =
  if length < 0 || length > t.depth then invalid_arg "Count.suffix_count: length out of range";
  if state < 0 || state >= Array.length t.index_of then 0.0
  else begin
    let i = t.index_of.(state) in
    if i < 0 then 0.0 else t.suffix.(length).(i)
  end

(* Count(G, r, k): total over all start nodes. *)
let count_at t ~length =
  if length < 0 || length > t.depth then invalid_arg "Count.count_at: length out of range";
  let total = ref 0.0 in
  for node = 0 to (Product.instance t.product).Gqkg_graph.Snapshot.num_nodes - 1 do
    match Product.start_state t.product node with
    | Some s0 -> total := !total +. suffix_count t ~state:s0 ~length
    | None -> ()
  done;
  !total

(* Counts restricted to paths from a given start node. *)
let count_from t ~source ~length =
  match Product.start_state t.product source with
  | Some s0 -> suffix_count t ~state:s0 ~length
  | None -> 0.0

(* One-shot: Count(G, r, k). *)
let count ?budget inst regex ~length =
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> 0.0
  | Planner.Ready product ->
      let t = build product ~depth:length in
      count_at t ~length

(* Counts for every length 0..k in one preprocessing pass. *)
let count_all ?budget inst regex ~max_length =
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> Array.make (max_length + 1) 0.0
  | Planner.Ready product ->
      let t = build product ~depth:max_length in
      Array.init (max_length + 1) (fun k -> count_at t ~length:k)

(* Count of paths from [source] to [target] of exactly [length] — the
   pairwise form the paper contrasts with plain walk counting in
   Section 4.2.  Forward DP over the product from the source's start
   state, accepting only at the target node. *)
let count_between_in product ~source ~target ~length =
  match Product.start_state product source with
  | None -> 0.0
  | Some s0 ->
      let current = Hashtbl.create 16 in
      Hashtbl.replace current s0 1.0;
      let current = ref current in
      (* Budget check site: once per DP step.  An interrupted DP holds
         weights of paths shorter than [length] — NOT a sound partial
         count for length [length] — so a trip here answers 0.0 (the
         only universally sound undercount). *)
      let budget = Product.budget product in
      let tripped = ref false in
      let step = ref 1 in
      while !step <= length && not !tripped do
        if Gqkg_util.Budget.check budget then tripped := true
        else begin
          let next = Hashtbl.create 16 in
          Hashtbl.iter
            (fun state weight ->
              Product.iter_successors product state (fun _e succ ->
                  Hashtbl.replace next succ
                    (weight +. Option.value (Hashtbl.find_opt next succ) ~default:0.0)))
            !current;
          current := next;
          incr step
        end
      done;
      if !tripped then 0.0
      else
      Hashtbl.fold
        (fun state weight acc ->
          if Product.is_accepting product state && Product.node_of product state = target then
            acc +. weight
          else acc)
        !current 0.0

let count_between ?budget inst regex ~source ~target ~length =
  if length < 0 then invalid_arg "Count.count_between: negative length";
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> 0.0
  | Planner.Ready product -> count_between_in product ~source ~target ~length

(** Polynomial-delay enumeration of the paths p ∈ [[r]] with |p| = k
    (Section 4.1).

    After preprocessing (the {!Count} tables), answers are produced one
    at a time by a pruned depth-first walk of the deterministic product:
    a branch is entered only if it has an accepting completion of the
    right residual length, so every descent emits a path and the delay
    between consecutive answers is polynomial. No path is emitted twice.

    A tripped [budget] ends the enumeration early: the paths emitted up
    to that point are a prefix of the unbudgeted enumeration order. *)

type t

(** [create inst r ~length] preprocesses; [sources] restricts the start
    nodes (default: all). *)
val create :
  ?budget:Gqkg_util.Budget.t ->
  ?sources:int list ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  length:int ->
  t

(** Next answer, or [None] when exhausted. *)
val next : t -> Path.t option

val iter : t -> (Path.t -> unit) -> unit
val to_list : t -> Path.t list

(** Largest number of internal steps between two consecutive answers so
    far (the delay instrumentation of experiment E6). *)
val max_delay : t -> int

(** Number of answers emitted so far. *)
val emitted : t -> int

(** All answers of exactly the given length. *)
val paths :
  ?budget:Gqkg_util.Budget.t ->
  ?sources:int list ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  length:int ->
  Path.t list

(** All answers of length ≤ the bound, by increasing length. *)
val paths_up_to :
  ?budget:Gqkg_util.Budget.t ->
  ?sources:int list ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  max_length:int ->
  Path.t list

(** Outcome-typed, budget-governed entry points for the Section 4
    algorithms.

    Each function runs the corresponding kernel under [budget] and wraps
    the answer in a {!Gqkg_util.Budget.outcome}: [completeness] is
    [Complete] when the budget never tripped and [Partial reason]
    otherwise.  Exhaustion never raises; a [Partial] value is always
    sound — answer sets are subsets of the unbudgeted answer, counts are
    undercounts, and samplers either produce genuine matching paths or
    nothing.

    The same budget must not be reused across calls: a tripped budget is
    sticky, so a second evaluation under it would return an empty
    [Partial] immediately.  Create one per evaluation (or use
    {!Gqkg_util.Budget.similar} to rearm). *)

open Gqkg_graph
open Gqkg_automata
module Budget = Gqkg_util.Budget

(** All pairs (a, b) joined by a matching path, sorted; a [Partial]
    result is a subset of the pairs.  [use_cache] (default false) lets
    a budgeted evaluation consult the semantic result cache too: a
    cached entry is always a Complete answer, so serving it under any
    budget is sound — the server's hot path.  Unbudgeted evaluations
    always consult the cache regardless. *)
val eval_pairs :
  ?use_cache:bool ->
  budget:Budget.t ->
  ?max_length:int ->
  Snapshot.t ->
  Regex.t ->
  (int * int) list Budget.outcome

(** Per-source reachability ([result.(i)] lists the targets of
    [sources.(i)], sorted); [Partial] rows are subsets. *)
val reachable_many :
  budget:Budget.t ->
  ?max_length:int ->
  Snapshot.t ->
  Regex.t ->
  sources:int array ->
  int list array Budget.outcome

(** Nodes with at least one matching path starting at them; [Partial]
    results are subsets. *)
val source_nodes :
  budget:Budget.t -> ?max_length:int -> Snapshot.t -> Regex.t -> int list Budget.outcome

(** Exact Count(G, r, k); [Partial] values are undercounts. *)
val count : budget:Budget.t -> Snapshot.t -> Regex.t -> length:int -> float Budget.outcome

(** Counts for every length 0..max_length; [Partial] entries are
    undercounts. *)
val count_all :
  budget:Budget.t -> Snapshot.t -> Regex.t -> max_length:int -> float array Budget.outcome

(** FPRAS estimate of Count(G, r, k); a [Partial] value is 0.0 (an
    interrupted level pass cannot vouch for length-[k] paths). *)
val approx_count :
  budget:Budget.t ->
  ?seed:int ->
  Snapshot.t ->
  Regex.t ->
  length:int ->
  epsilon:float ->
  float Budget.outcome

(** All answers of exactly the given length; a [Partial] list is a
    prefix of the unbudgeted enumeration order. *)
val paths :
  budget:Budget.t ->
  ?sources:int list ->
  Snapshot.t ->
  Regex.t ->
  length:int ->
  Path.t list Budget.outcome

(** Commit a mutation overlay through the epoch manager and notify the
    semantic cache: entries keyed by retired epochs are invalidated,
    entries of the new current epoch and any still-pinned older epochs
    are retained. The write-path entry point callers should use instead
    of raw {!Epochs.commit}. *)
val commit : Epochs.t -> Overlay.t -> Overlay.base * Overlay.reuse

(** d_r(a, b); [Some d] is always the true shortest length, [Partial
    None] means the search was cut before reaching the target. *)
val shortest_path_length :
  budget:Budget.t ->
  ?max_length:int ->
  Snapshot.t ->
  Regex.t ->
  source:int ->
  target:int ->
  int option Budget.outcome

(** Endpoint-oriented regular path query evaluation over the lazy
    deterministic product (the classic RPQ questions of Section 4).

    Every entry point takes an optional [budget]
    (default {!Gqkg_util.Budget.unlimited}): evaluation stops
    cooperatively when it trips and the answer returned is a subset of
    the unbudgeted answer — inspect {!Gqkg_util.Budget.completeness} (or
    use {!Governor} for outcome-typed wrappers). *)

(** Reference semantics: does the concrete path conform to the
    expression? Used as the oracle by tests and by the FPRAS. *)
val matches_path : Gqkg_graph.Snapshot.t -> Gqkg_automata.Regex.t -> Path.t -> bool

(** Nodes b reachable from [source] by a path in [[r]]; [max_length]
    bounds the search depth (reachability itself is complete without it,
    products being finite). Sorted. Runs as a batch of one through the
    {!Frontier} engine. *)
val reachable_from :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  source:int ->
  int list

(** Reachability from an explicit source set, batched
    {!Frontier.word_bits} sources per frontier pass: [result.(i)] lists
    the targets of [sources.(i)], sorted — elementwise equal to
    {!reachable_from}. Duplicate sources are allowed. *)
val reachable_many :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  sources:int array ->
  int list array

(** The per-source reference path over an already-built product: one
    hash-table BFS per call. The oracle the batched engine is tested and
    benchmarked against; hot multi-source paths use {!Frontier}. *)
val reachable_from_product : ?max_length:int -> Product.t -> source:int -> int list

(** All pairs (a, b) joined by a matching path, sorted. *)
val eval_pairs :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  (int * int) list

(** Nodes with at least one matching path starting at them (the node
    extraction of Section 4.3). Sorted. *)
val source_nodes :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  int list

(** d_r(a, b): length of the shortest matching path, if any — the metric
    of the regex-constrained centrality of Section 4.2. *)
val shortest_path_length :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  source:int ->
  target:int ->
  int option

(** A concrete shortest matching path from [source] to [target] — a
    witness in the G-CORE "paths as first-class results" sense; [None]
    when no matching path exists. *)
val shortest_witness :
  ?budget:Gqkg_util.Budget.t ->
  ?max_length:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  source:int ->
  target:int ->
  Path.t option

(* Enumeration of the answers to a path query with bounded delay
   (Section 4.1): after a preprocessing phase (the {!Count} tables), the
   paths p ∈ [[r]] with |p| = k are produced one by one.

   The enumerator is a depth-first walk of the deterministic product in
   which a successor is entered only if some accepting completion of the
   right residual length exists (suffix-count > 0).  Every descent
   therefore ends in an emitted path: between two consecutive answers the
   walk retreats and advances at most O(k · max-degree) steps, the
   polynomial-delay guarantee the paper describes.  Because the product
   is deterministic, no path is emitted twice. *)

open Gqkg_graph

type frame = { state : int; degree : int; mutable cursor : int }

(* The preprocessed machinery; absent when the planner proved the query
   statically empty (no product is ever built then). *)
type engine = { table : Count.table; product : Product.t }

type t = {
  engine : engine option;
  length : int;
  sources : int array;
  mutable source_cursor : int;
  nodes : int array; (* nodes.(d) = node at depth d *)
  edges : int array; (* edges.(d) = edge taken at step d *)
  mutable stack : frame list; (* innermost first; length = current depth + 1 *)
  mutable depth : int; (* depth of the top frame; -1 when stack empty *)
  mutable steps_since_last : int; (* instrumentation: delay measurement *)
  mutable max_delay : int;
  mutable emitted : int;
  mutable steps_total : int; (* budget accounting, checked every 256 *)
  mutable dead : bool; (* the budget tripped: no further answers *)
}

let create ?budget ?sources inst regex ~length =
  if length < 0 then invalid_arg "Enumerate.create: negative length";
  let engine =
    match Planner.prepare ?budget inst regex with
    | Planner.Empty -> None
    | Planner.Ready product -> Some { table = Count.build product ~depth:length; product }
  in
  let sources =
    match sources with
    | Some s -> Array.of_list s
    | None -> Array.init inst.Snapshot.num_nodes Fun.id
  in
  {
    engine;
    length;
    sources;
    source_cursor = 0;
    nodes = Array.make (length + 1) (-1);
    edges = Array.make (max length 1) (-1);
    stack = [];
    depth = -1;
    steps_since_last = 0;
    max_delay = 0;
    emitted = 0;
    steps_total = 0;
    dead = false;
  }

let push t eng state =
  let degree = if t.depth + 1 = t.length then 0 else Product.degree eng.product state in
  t.stack <- { state; degree; cursor = 0 } :: t.stack;
  t.depth <- t.depth + 1;
  t.nodes.(t.depth) <- Product.node_of eng.product state

let pop t =
  match t.stack with
  | [] -> ()
  | _ :: rest ->
      t.stack <- rest;
      t.depth <- t.depth - 1

let emit t =
  t.emitted <- t.emitted + 1;
  if t.steps_since_last > t.max_delay then t.max_delay <- t.steps_since_last;
  t.steps_since_last <- 0;
  Path.make ~nodes:(Array.sub t.nodes 0 (t.length + 1)) ~edges:(Array.sub t.edges 0 t.length)

(* Budget check site: every 256 DFS steps.  Tripping marks the
   enumerator dead — the paths already emitted are exactly a prefix of
   the unbudgeted enumeration order, hence a subset. *)
let budget_tripped t eng =
  t.steps_total <- t.steps_total + 1;
  t.dead
  ||
  t.steps_total land 255 = 0
  &&
  let budget = Product.budget eng.product in
  Gqkg_util.Budget.charge_steps budget 256;
  if Gqkg_util.Budget.check budget then begin
    t.dead <- true;
    true
  end
  else false

let rec step t eng =
  t.steps_since_last <- t.steps_since_last + 1;
  if budget_tripped t eng then None
  else
  match t.stack with
  | [] ->
      (* Start a new source, skipping those with no answers of this length. *)
      if t.source_cursor >= Array.length t.sources then None
      else begin
        let source = t.sources.(t.source_cursor) in
        t.source_cursor <- t.source_cursor + 1;
        (match Product.start_state eng.product source with
        | Some s0 when Count.suffix_count eng.table ~state:s0 ~length:t.length > 0.0 ->
            push t eng s0;
            if t.length = 0 then begin
              let p = emit t in
              pop t;
              Some p
            end
            else step t eng
        | Some _ | None -> step t eng)
      end
  | top :: _ ->
      if t.depth = t.length then begin
        (* A full-length state is accepting by construction of the pruning. *)
        let p = emit t in
        pop t;
        Some p
      end
      else begin
        let remaining = t.length - t.depth - 1 in
        let rec scan () =
          if top.cursor >= top.degree then begin
            pop t;
            step t eng
          end
          else begin
            let edge = Product.move_edge eng.product top.state top.cursor
            and succ = Product.move_succ eng.product top.state top.cursor in
            top.cursor <- top.cursor + 1;
            if Count.suffix_count eng.table ~state:succ ~length:remaining > 0.0 then begin
              t.edges.(t.depth) <- edge;
              push t eng succ;
              if t.depth = t.length then begin
                let p = emit t in
                pop t;
                Some p
              end
              else step t eng
            end
            else begin
              t.steps_since_last <- t.steps_since_last + 1;
              scan ()
            end
          end
        in
        scan ()
      end

(* Statically-empty queries have no engine and no answers. *)
let next t =
  match t.engine with
  | None -> None
  | Some _ when t.dead -> None
  | Some eng -> step t eng

let iter t f =
  let rec loop () =
    match next t with
    | Some p ->
        f p;
        loop ()
    | None -> ()
  in
  loop ()

let to_list t =
  let acc = ref [] in
  iter t (fun p -> acc := p :: !acc);
  List.rev !acc

(* Instrumentation for the delay experiment (E6). *)
let max_delay t = t.max_delay
let emitted t = t.emitted

(* Convenience: all answers of length exactly k. *)
let paths ?budget ?sources inst regex ~length =
  to_list (create ?budget ?sources inst regex ~length)

(* All answers of length at most k, by increasing length. *)
let paths_up_to ?budget ?sources inst regex ~max_length =
  List.concat_map
    (fun k -> paths ?budget ?sources inst regex ~length:k)
    (List.init (max_length + 1) Fun.id)

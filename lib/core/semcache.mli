(** The Governor's semantic cache: plans (warmed products) and full
    result sets keyed by (snapshot epoch, canonical-automaton key).

    The key contract (DESIGN.md §5g): two queries share a canonical key
    exactly when their minimal DFAs over the shared signature alphabet
    are isomorphic, which implies equal languages over that alphabet and
    therefore — because every realizable node/edge outcome vector is
    among the enumerated letters — equal answer sets on any snapshot.
    The snapshot {!Gqkg_graph.Snapshot.t.epoch} stamp is process-unique
    per constructed snapshot, so entries can never outlive or leak
    across graph versions. Only [Complete] results may be stored
    (callers enforce this); a partial answer under a tripped budget is
    never served back.

    Both caches are bounded (drop-oldest) and process-global; {!reset}
    clears entries and counters (tests, bench A/B runs). *)

open Gqkg_graph

type stats = {
  plan_hits : int;
  plan_misses : int;
  result_hits : int;
  result_misses : int;
  plan_entries : int;
  result_entries : int;
  commits : int;  (** epoch commits observed via {!note_commit} *)
  invalidated : int;  (** entries dropped across all commits (retired epochs) *)
}

(** Master switch; [false] makes every lookup miss silently (no
    counter movement) and every store a no-op. Default [true]. *)
val enabled : bool ref

val stats : unit -> stats
val reset : unit -> unit

(** Tell the cache an epoch commit happened: entries keyed by epochs
    not in [live_epochs] (the new current epoch plus any still-pinned
    older ones, see {!Gqkg_graph.Epochs.live_epochs}) are dropped and
    counted as [invalidated]; entries of pinned epochs are retained, so
    an in-flight reader pinned to epoch N keeps its cache hits while
    the writer commits N+1. *)
val note_commit : live_epochs:int list -> unit

(** Plan cache: warmed product automata, reusable because products are
    read-mostly and re-entrant across evaluations on the same snapshot. *)
val find_product : Snapshot.t -> key:string -> Product.t option

val store_product : Snapshot.t -> key:string -> Product.t -> unit

(** Result cache: full sorted pair sets of [eval_pairs] (the caller
    folds any [max_length] into the key). *)
val find_pairs : Snapshot.t -> key:string -> (int * int) list option

val store_pairs : Snapshot.t -> key:string -> (int * int) list -> unit

(* Regular path query evaluation: the endpoint-oriented views of [[r]].

   Besides full path extraction (Count / Gen / Enum in their own modules),
   the classic RPQ questions are: which nodes can start a matching path,
   which pairs (a, b) are joined by one, and what is the length of the
   shortest matching path between two nodes.  All of them are breadth-
   first searches over the lazy deterministic product. *)

open Gqkg_graph
open Gqkg_automata

(* Does the concrete path conform to the expression?  Evaluated by running
   the guarded NFA over the path — the reference semantics used by tests
   and by the FPRAS membership oracle. *)
let matches_path inst regex path =
  let nfa = Nfa.of_regex regex in
  let k = Path.length path in
  let current = ref (Nfa.closure nfa ~node_sat:(inst.Snapshot.node_atom (Path.node path 0)) [| Nfa.start nfa |]) in
  let alive = ref true in
  for i = 0 to k - 1 do
    if !alive then begin
      let e = Path.edge path i in
      let v = Path.node path i and w = Path.node path (i + 1) in
      let s, d = (Snapshot.endpoints inst) e in
      let edge_sat = inst.Snapshot.edge_atom e in
      let fwd_moves, bwd_moves = Nfa.edge_moves nfa !current in
      let targets = ref [] in
      let add tests =
        List.iter
          (fun (test, q') ->
            if Regex.eval_test edge_sat test && not (List.mem q' !targets) then targets := q' :: !targets)
          tests
      in
      if s = v && d = w then add fwd_moves;
      if s = w && d = v then add bwd_moves;
      let arr = Array.of_list !targets in
      Array.sort Int.compare arr;
      let closed = Nfa.closure nfa ~node_sat:(inst.Snapshot.node_atom w) arr in
      if Array.length closed = 0 then alive := false else current := closed
    end
  done;
  !alive && Nfa.is_accepting nfa !current

(* Product states reachable from [source], with the shortest number of
   steps to each; bounded by [max_length] steps when given.  Budget
   check site: every 128 dequeues (coarse — a dequeue expands at most
   one state).  An early stop leaves [dist] holding a prefix of the BFS
   order: a subset of the unbudgeted reachable set. *)
let bfs_product product ~source ~max_length =
  let dist = Hashtbl.create 64 in
  match Product.start_state product source with
  | None -> dist
  | Some s0 ->
      let budget = Product.budget product in
      let pops = ref 0 in
      let queue = Queue.create () in
      Hashtbl.replace dist s0 0;
      Queue.push s0 queue;
      let stop = ref false in
      while (not !stop) && not (Queue.is_empty queue) do
        incr pops;
        if !pops land 127 = 0 then begin
          Gqkg_util.Budget.charge_steps budget 128;
          Gqkg_util.Budget.note_states budget (Product.num_states product);
          if Gqkg_util.Budget.check budget then stop := true
        end;
        if not !stop then begin
          let id = Queue.pop queue in
          let d = Hashtbl.find dist id in
          let expand = match max_length with Some m -> d < m | None -> true in
          if expand then
            Product.iter_successors product id (fun _e succ ->
                if not (Hashtbl.mem dist succ) then begin
                  Hashtbl.replace dist succ (d + 1);
                  Queue.push succ queue
                end)
        end
      done;
      dist

(* Nodes b reachable from [source] by a path in [[r]], i.e. the standard
   RPQ semantics.  [max_length] bounds path length (mandatory only for
   queries where [[r]] is infinite and reachability is still complete
   without a bound, since products are finite; the bound is for cost
   control).  This is the per-source reference path — one hash-table BFS
   per source — kept as the oracle the batched frontier engine is tested
   and benchmarked against. *)
let reachable_from_product ?max_length product ~source =
  let dist = bfs_product product ~source ~max_length in
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id _d ->
      if Product.is_accepting product id then Hashtbl.replace seen (Product.node_of product id) ())
    dist;
  Hashtbl.fold (fun n () acc -> n :: acc) seen [] |> List.sort compare

(* Single-source queries ride the batched engine as a batch of one: the
   word-packed pass degenerates to a plain array BFS, still cheaper than
   the hash-table walk. *)
let reachable_from ?budget ?max_length inst regex ~source =
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> []
  | Planner.Ready product ->
      (Frontier.reachable ?max_length (Frontier.create product) ~sources:[| source |]).(0)

(* Reachability from an explicit source set, batched [Frontier.word_bits]
   sources per pass; [result.(i)] lists the targets of [sources.(i)],
   sorted.  Statically-empty queries answer without building a product. *)
let reachable_many ?budget ?max_length inst regex ~sources =
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> Array.map (fun _ -> []) sources
  | Planner.Ready product -> Frontier.reachable ?max_length (Frontier.create product) ~sources

(* All pairs (a, b) such that some path in [[r]] goes from a to b: one
   batched frontier run over every node as a source.  The planner may
   hand back the reversed automaton when backward seeding is cheaper;
   pairs are then swapped back and re-sorted, so the output is identical
   either way (ascending lexicographic). *)
let eval_pairs ?budget ?max_length inst regex =
  match Planner.prepare_pairs ?budget inst regex with
  | Planner.Empty, _ -> []
  | Planner.Ready product, swapped ->
      let n = inst.Snapshot.num_nodes in
      let per_source =
        Frontier.reachable ?max_length (Frontier.create product) ~sources:(Array.init n Fun.id)
      in
      let out = ref [] in
      for source = n - 1 downto 0 do
        List.iter
          (fun b -> out := (if swapped then (b, source) else (source, b)) :: !out)
          (List.rev per_source.(source))
      done;
      if swapped then List.sort compare !out else !out

(* Node extraction (Section 4.3): nodes a with at least one matching path
   starting at a (existentially quantified endpoint). *)
let source_nodes ?budget ?max_length inst regex =
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> []
  | Planner.Ready product ->
      let n = inst.Snapshot.num_nodes in
      let per_source =
        Frontier.reachable ?max_length (Frontier.create product) ~sources:(Array.init n Fun.id)
      in
      let out = ref [] in
      for source = n - 1 downto 0 do
        match per_source.(source) with [] -> () | _ :: _ -> out := source :: !out
      done;
      !out

(* Length of the shortest path in [[r]] from a to b, if any: the distance
   d_r(a, b) used by the regex-constrained centrality of Section 4.2. *)
let shortest_in_product product ~source ~target ~max_length =
  let dist = bfs_product product ~source ~max_length in
  let best = ref None in
  Hashtbl.iter
    (fun id d ->
      if Product.is_accepting product id && Product.node_of product id = target then
        match !best with Some b when b <= d -> () | _ -> best := Some d)
    dist;
  !best

(* Length of the shortest path in [[r]] from a to b, if any: the distance
   d_r(a, b) used by the regex-constrained centrality of Section 4.2. *)
let shortest_path_length ?budget ?max_length inst regex ~source ~target =
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> None
  | Planner.Ready product -> shortest_in_product product ~source ~target ~max_length

(* A concrete shortest matching path from a to b (a witness, in the
   G-CORE sense of paths as first-class results): BFS over the product
   with parent pointers, reconstructing the first accepting arrival. *)
let shortest_witness_in product ~source ~target ~max_length =
  match Product.start_state product source with
  | None -> None
  | Some s0 ->
      let parent = Hashtbl.create 64 in
      (* state -> (predecessor state, edge); s0 has no entry *)
      let dist = Hashtbl.create 64 in
      Hashtbl.replace dist s0 0;
      let queue = Queue.create () in
      Queue.push s0 queue;
      let found = ref None in
      let reconstruct final =
        let rec back state acc_nodes acc_edges =
          match Hashtbl.find_opt parent state with
          | None -> (Product.node_of product state :: acc_nodes, acc_edges)
          | Some (pred, edge) ->
              back pred (Product.node_of product state :: acc_nodes) (edge :: acc_edges)
        in
        let nodes, edges = back final [] [] in
        Path.make ~nodes:(Array.of_list nodes) ~edges:(Array.of_list edges)
      in
      if Product.is_accepting product s0 && Product.node_of product s0 = target then
        found := Some (Path.trivial source)
      else begin
        (* Budget check site: every 128 dequeues, like [bfs_product]. *)
        let budget = Product.budget product in
        let pops = ref 0 in
        let stop = ref false in
        while (not !stop) && !found = None && not (Queue.is_empty queue) do
          incr pops;
          if !pops land 127 = 0 then begin
            Gqkg_util.Budget.charge_steps budget 128;
            Gqkg_util.Budget.note_states budget (Product.num_states product);
            if Gqkg_util.Budget.check budget then stop := true
          end;
          if !stop then ()
          else
          let v = Queue.pop queue in
          let d = Hashtbl.find dist v in
          let expand = match max_length with Some m -> d < m | None -> true in
          if expand then
            Product.iter_successors product v (fun e succ ->
                if !found = None && not (Hashtbl.mem dist succ) then begin
                  Hashtbl.replace dist succ (d + 1);
                  Hashtbl.replace parent succ (v, e);
                  if Product.is_accepting product succ && Product.node_of product succ = target then
                    found := Some (reconstruct succ)
                  else Queue.push succ queue
                end)
        done
      end;
      !found

let shortest_witness ?budget ?max_length inst regex ~source ~target =
  match Planner.prepare ?budget inst regex with
  | Planner.Empty -> None
  | Planner.Ready product -> shortest_witness_in product ~source ~target ~max_length

(** Bridge between the static analyzer and the product kernel: plans a
    query (prune, trim, estimate seed costs) before building the
    product. With {!Gqkg_analysis.Analyze.enabled} off, reproduces the
    pre-analyzer path exactly.

    The optional [budget] is attached to the built product, so every
    kernel downstream shares one cooperative resource budget. *)

open Gqkg_graph
open Gqkg_automata

type prep =
  | Empty  (** statically empty: answer without building any product state *)
  | Ready of Product.t

val prepare : ?budget:Gqkg_util.Budget.t -> Snapshot.t -> Regex.t -> prep

(** Also expose the analyzer report ([None] when analysis is off). *)
val prepare_with_report :
  ?budget:Gqkg_util.Budget.t ->
  Snapshot.t ->
  Regex.t ->
  prep * Gqkg_analysis.Analyze.report option

(** Planning for all-pairs evaluation, where direction is free: when
    backward seeding is estimated decisively cheaper, builds the product
    over the reversed automaton; the boolean says whether the caller
    must swap each result pair. *)
val prepare_pairs : ?budget:Gqkg_util.Budget.t -> Snapshot.t -> Regex.t -> prep * bool

(** Evaluate the minimized canonical automaton when it is strictly
    smaller than the trimmed one (identity-preserving otherwise), and
    key the semantic plan cache by canonical-automaton key. Default
    [true]; [false] restores the pre-decision-procedure planner. *)
val minimize : bool ref

(** Deterministic state cap for planning-time canonicalization
    (default 256); past it the query is evaluated untouched. *)
val canon_max_states : int ref

(** Everything [explain] wants to show about a plan. *)
type plan = {
  prep : prep;
  report : Gqkg_analysis.Analyze.report option;  (** [None]: analysis off *)
  canon : Gqkg_analysis.Decide.canonical option;
      (** canonical form, when minimization is on and within its cap *)
  minimized : bool;  (** canonical automaton substituted for evaluation *)
  plan_cache_hit : bool;  (** product served from the semantic plan cache *)
  swapped : bool;
}

val prepare_explained : ?budget:Gqkg_util.Budget.t -> Snapshot.t -> Regex.t -> plan

(** Canonical cache key of the query on this snapshot ([None] when
    analysis/minimization is off, the query is statically empty, or
    canonicalization gave up) — the Governor's result-cache key
    ingredient. *)
val semantic_key : Snapshot.t -> Regex.t -> string option

(** The snapshot's vocabulary schema, memoized on the epoch stamp: one
    {!Gqkg_analysis.Schema.of_snapshot} derivation per committed epoch,
    shared by every plan on that epoch (pinned older epochs stay warm
    in a short memo). *)
val schema_for : Snapshot.t -> Gqkg_analysis.Schema.t

(** Bridge between the static analyzer and the product kernel: plans a
    query (prune, trim, estimate seed costs) before building the
    product. With {!Gqkg_analysis.Analyze.enabled} off, reproduces the
    pre-analyzer path exactly.

    The optional [budget] is attached to the built product, so every
    kernel downstream shares one cooperative resource budget. *)

open Gqkg_graph
open Gqkg_automata

type prep =
  | Empty  (** statically empty: answer without building any product state *)
  | Ready of Product.t

val prepare : ?budget:Gqkg_util.Budget.t -> Snapshot.t -> Regex.t -> prep

(** Also expose the analyzer report ([None] when analysis is off). *)
val prepare_with_report :
  ?budget:Gqkg_util.Budget.t ->
  Snapshot.t ->
  Regex.t ->
  prep * Gqkg_analysis.Analyze.report option

(** Planning for all-pairs evaluation, where direction is free: when
    backward seeding is estimated decisively cheaper, builds the product
    over the reversed automaton; the boolean says whether the caller
    must swap each result pair. *)
val prepare_pairs : ?budget:Gqkg_util.Budget.t -> Snapshot.t -> Regex.t -> prep * bool

(** Lazy deterministic product of a graph instance and a regex automaton.

    A product state pairs a graph node with a closed {e set} of NFA
    states, so every matching path has exactly one run — the property the
    Section 4.1 algorithms (counting, uniform generation, enumeration)
    rely on. States are discovered on demand and given dense ids. *)

type t

(** A product state: the node plus the sorted, ε/node-check-closed NFA
    state set. *)
type state = { node : int; nfa_states : int array }

(** Seeding hints computed by the static analyzer: estimated edges
    scanned by the first forward vs backward expansion. *)
type hints = { fwd_seed_cost : float; bwd_seed_cost : float }

(** [create ?budget ?nfa ?hints inst regex] — [nfa] substitutes a
    (trimmed) automaton for the Thompson construction of [regex]; it
    must recognize the same language on this instance.  [budget]
    (default {!Gqkg_util.Budget.unlimited}) rides along with the
    product: every kernel that walks it checks the budget cooperatively
    at coarse granularity and stops with a sound partial result when it
    trips. *)
val create :
  ?budget:Gqkg_util.Budget.t ->
  ?nfa:Gqkg_automata.Nfa.t ->
  ?hints:hints ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  t

val instance : t -> Gqkg_graph.Snapshot.t
val nfa : t -> Gqkg_automata.Nfa.t
val hints : t -> hints option

(** The budget attached at {!create} time ({!Gqkg_util.Budget.unlimited}
    when none was given). *)
val budget : t -> Gqkg_util.Budget.t

(** Process-wide count of product states ever interned (across all
    products); lets tests assert that statically-empty queries build no
    product state. *)
val states_interned_total : unit -> int

(** Number of states materialized so far (grows as the product is
    explored). *)
val num_states : t -> int

val state : t -> int -> state

(** Graph node of a product state. *)
val node_of : t -> int -> int

(** Does the state set contain the accept state (after closure)? *)
val is_accepting : t -> int -> bool

(** The unique start state at a node: the closure of the NFA start there.
    [None] only for degenerate automata with an empty closure. *)
val start_state : t -> int -> int option

(** [iter_successors p id f] calls [f edge succ] for every successor
    move, in a deterministic order (ascending edge id), reading the
    flat CSR buffer directly.  One entry per (edge, destination) move —
    a self-loop matched in both directions yields a single move. *)
val iter_successors : t -> int -> (int -> int -> unit) -> unit

(** Has the state's successor row been materialized yet?  Lets readers
    (e.g. the frontier engine's reverse-CSR builder) walk exactly the
    committed part of the CSR without triggering further expansion. *)
val is_expanded : t -> int -> bool

(** Total successor moves committed so far, across all expanded states.
    Grows monotonically — a cheap staleness stamp for derived views of
    the CSR. *)
val moves_total : t -> int

(** Number of successor moves of a state (expanding it if needed). *)
val degree : t -> int -> int

(** [move_edge p id i] / [move_succ p id i]: the [i]-th move's edge and
    successor id, [0 <= i < degree p id]. The state must already be
    expanded (any of {!degree}, {!successors}, {!iter_successors}
    expands it). *)
val move_edge : t -> int -> int -> int

val move_succ : t -> int -> int -> int

(** [levels p ~depth] materializes every state reachable from any node's
    start state within [depth] moves; [result.(i)] lists (sorted) the ids
    reachable by paths of length exactly [i]. [domains] (default
    {!Gqkg_util.Parallel.default_domains}) expands each level's frontier
    concurrently — move computation is pure, interning stays sequential
    in frontier order, so the result is identical to a sequential run. *)
val levels : ?domains:int -> t -> depth:int -> int list array

(** Randomized approximation of Count(G, r, k) — the FPRAS of Section 4.1
    (Arenas-Croquevielle-Jayaram-Riveros), implemented as a level-by-level
    Karp–Luby union estimator over the non-determinized product (see
    DESIGN.md §5). Estimates land within the requested relative error
    with high probability; when every union has uniform run-multiplicity
    the estimator is deterministic-exact. *)

type t

(** [create inst r ~epsilon] sizes the per-configuration sample pools at
    Θ(1/ε²). Raises unless 0 < ε < 1. *)
val create :
  ?budget:Gqkg_util.Budget.t ->
  ?seed:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  epsilon:float ->
  t

(** Estimate Count(G, r, k).  A tripped budget answers 0.0 — an
    interrupted level pass estimates shorter paths, which would not be a
    sound partial answer for length [k]. *)
val estimate : t -> length:int -> float

(** One-shot estimation. *)
val count :
  ?budget:Gqkg_util.Budget.t ->
  ?seed:int ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  length:int ->
  epsilon:float ->
  float

(** {2 Internals exposed for the ablation harness and white-box tests} *)

(** Configuration id: node × NFA state. *)
val config : t -> node:int -> state:int -> int

val config_node : t -> int -> int
val config_state : t -> int -> int

(** Single-state ε/node-check closure at a node. *)
val state_closure : t -> node:int -> int -> int array

(** One-step transitions of a configuration: (edge, successor) pairs. *)
val config_transitions : t -> int -> (int * int) list

(** Subset simulation of a concrete path (the membership oracle). *)
val simulate : t -> Path.t -> int array

(** Number of union branches generating [prefix]·[e] into NFA state
    [q'] — the Karp–Luby multiplicity. *)
val multiplicity : t -> prefix:Path.t -> e:int -> q':int -> int

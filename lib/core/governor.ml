(* Outcome-typed facade over the budget-aware kernels: run under the
   given budget, then read its completeness off the sticky trip flag.
   Soundness of each Partial value is the kernel's contract (subsets /
   undercounts / enumeration prefixes) — see the per-module notes. *)

module Budget = Gqkg_util.Budget

let outcome budget value = { Budget.value; completeness = Budget.completeness budget }

(* eval_pairs consults the semantic result cache: keyed by the query's
   canonical-automaton key (+ max_length) and the snapshot epoch, so
   syntactically different but equivalent queries share one entry.
   Only Complete results are stored, and by default only unlimited
   budgets look up — a Partial answer must never be served as if it
   were the whole truth, and a budgeted run must actually consume its
   budget (the fault-injection suites rely on that).  [use_cache]
   opts a budgeted caller in: serving a cached Complete result under a
   budget is sound (it IS the whole truth) and is how the server keeps
   hot queries cheap while every request still carries a deadline. *)
let eval_pairs ?(use_cache = false) ~budget ?max_length inst regex =
  let key =
    if (use_cache || Budget.is_unlimited budget) && !Semcache.enabled then
      Option.map
        (fun k ->
          match max_length with Some l -> k ^ "|len" ^ string_of_int l | None -> k)
        (Planner.semantic_key inst regex)
    else None
  in
  match key with
  | None -> outcome budget (Rpq.eval_pairs ~budget ?max_length inst regex)
  | Some key -> (
      match Semcache.find_pairs inst ~key with
      | Some v -> { Budget.value = v; completeness = Budget.Complete }
      | None ->
          let v = Rpq.eval_pairs ~budget ?max_length inst regex in
          (match Budget.completeness budget with
          | Budget.Complete -> Semcache.store_pairs inst ~key v
          | Budget.Partial _ -> ());
          outcome budget v)

let reachable_many ~budget ?max_length inst regex ~sources =
  outcome budget (Rpq.reachable_many ~budget ?max_length inst regex ~sources)

let source_nodes ~budget ?max_length inst regex =
  outcome budget (Rpq.source_nodes ~budget ?max_length inst regex)

let count ~budget inst regex ~length = outcome budget (Count.count ~budget inst regex ~length)

let count_all ~budget inst regex ~max_length =
  outcome budget (Count.count_all ~budget inst regex ~max_length)

let approx_count ~budget ?seed inst regex ~length ~epsilon =
  outcome budget (Approx_count.count ~budget ?seed inst regex ~length ~epsilon)

let paths ~budget ?sources inst regex ~length =
  outcome budget (Enumerate.paths ~budget ?sources inst regex ~length)

let shortest_path_length ~budget ?max_length inst regex ~source ~target =
  outcome budget (Rpq.shortest_path_length ~budget ?max_length inst regex ~source ~target)

(* The write path joins the governed surface here: commit the overlay
   through the epoch manager, then tell the semantic cache which epochs
   are still live — entries of retired epochs drop, entries of pinned
   ones are retained (a reader pinned to epoch N keeps its hits while
   the writer commits N+1). *)
let commit mgr overlay =
  let base, reuse = Gqkg_graph.Epochs.commit mgr overlay in
  Semcache.note_commit ~live_epochs:(Gqkg_graph.Epochs.live_epochs mgr);
  (base, reuse)

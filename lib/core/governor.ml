(* Outcome-typed facade over the budget-aware kernels: run under the
   given budget, then read its completeness off the sticky trip flag.
   Soundness of each Partial value is the kernel's contract (subsets /
   undercounts / enumeration prefixes) — see the per-module notes. *)

module Budget = Gqkg_util.Budget

let outcome budget value = { Budget.value; completeness = Budget.completeness budget }

let eval_pairs ~budget ?max_length inst regex =
  outcome budget (Rpq.eval_pairs ~budget ?max_length inst regex)

let reachable_many ~budget ?max_length inst regex ~sources =
  outcome budget (Rpq.reachable_many ~budget ?max_length inst regex ~sources)

let source_nodes ~budget ?max_length inst regex =
  outcome budget (Rpq.source_nodes ~budget ?max_length inst regex)

let count ~budget inst regex ~length = outcome budget (Count.count ~budget inst regex ~length)

let count_all ~budget inst regex ~max_length =
  outcome budget (Count.count_all ~budget inst regex ~max_length)

let approx_count ~budget ?seed inst regex ~length ~epsilon =
  outcome budget (Approx_count.count ~budget ?seed inst regex ~length ~epsilon)

let paths ~budget ?sources inst regex ~length =
  outcome budget (Enumerate.paths ~budget ?sources inst regex ~length)

let shortest_path_length ~budget ?max_length inst regex ~source ~target =
  outcome budget (Rpq.shortest_path_length ~budget ?max_length inst regex ~source ~target)

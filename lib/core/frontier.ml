(* Batched multi-source BFS over the lazy deterministic product.

   The Section 4 algorithms are inherently multi-source: RPQ pairs,
   source-node extraction and bc_r all run one breadth-first search of
   the product per graph node.  Each of those searches re-walks the same
   product states, so the per-source cost is dominated by traversal
   bookkeeping (a hash lookup per visited state per source), not by
   expansion — expansion is memoized in the product's CSR after the
   first source reaches a state.

   This engine amortizes the traversal itself, MS-BFS style: up to
   [word_bits] sources run in one level-synchronous pass, with a single
   machine word of visited bits per product state (bit s = source slot s
   has reached the state).  A frontier state is then expanded and
   scanned once per level for the whole batch, and discovering a
   successor for every live source is one [lor].  Per-slot levels equal
   the per-source BFS distances exactly, so any per-source answer that
   is a function of (state, distance) pairs — reachable sets, pair
   relations, shortest distances — is bit-identical to the one-source-
   at-a-time loop it replaces.

   Levels can also expand bottom-up (Beamer's direction-optimizing
   scheme): instead of pushing the frontier's out-moves, scan the states
   some slot has not visited yet and pull from their in-moves, stopping
   early once a state has gathered every batch bit.  The product is
   lazy, so the reverse adjacency is not free the way the snapshot's
   in-CSR is: a reverse CSR over the *committed* moves is (re)built on
   demand and stamped with {!Product.moves_total}; the rebuild cost is
   charged to the switch heuristic, which keeps bottom-up steps to the
   dense late levels where they pay.  Correctness does not depend on the
   heuristic: a bottom-up level first expands the current frontier, so
   every discoverable state is materialized and every discovering move
   committed before the pull scan runs. *)

module B = Gqkg_util.Bitset

let word_bits = B.bits_per_word

type direction = [ `Auto | `Top_down | `Bottom_up ]

(* Process-wide usage counters (for [gqkg explain] and the bench): how
   often the batched engine ran and which way each level expanded. *)
let batches_counter = Atomic.make 0
let top_down_counter = Atomic.make 0
let bottom_up_counter = Atomic.make 0
let batches_total () = Atomic.get batches_counter
let top_down_levels_total () = Atomic.get top_down_counter
let bottom_up_levels_total () = Atomic.get bottom_up_counter

type t = {
  product : Product.t;
  (* Reverse CSR over the product moves committed as of [rev_moves]
     (offsets into [rev_dat], predecessors of state u at
     rev_off.(u) .. rev_off.(u+1) - 1); rebuilt when the stamp or the
     state count has moved on. *)
  mutable rev_off : int array;
  mutable rev_dat : int array;
  mutable rev_moves : int;
  (* Per-state scratch words reused across batches (reset by a cheap
     [Array.fill], not reallocated): visited bits, and the discovery
     bits of the current and in-construction frontier. *)
  mutable visited : int array;
  mutable cur_word : int array;
  mutable next_word : int array;
  (* Accepting-state memo ('\000' unknown, '\001' yes, '\002' no):
     consulted once per frontier membership, computed once per state. *)
  mutable accept : Bytes.t;
}

let create product =
  {
    product;
    rev_off = [||];
    rev_dat = [||];
    rev_moves = -1;
    visited = [||];
    cur_word = [||];
    next_word = [||];
    accept = Bytes.empty;
  }

let product t = t.product

let is_accepting t id =
  match Bytes.unsafe_get t.accept id with
  | '\001' -> true
  | '\002' -> false
  | _ ->
      let r = Product.is_accepting t.product id in
      Bytes.unsafe_set t.accept id (if r then '\001' else '\002');
      r

(* Counting-sort the committed CSR rows into predecessor lists.  Only
   expanded states contribute (their rows are exactly the committed
   moves), so the result covers every edge a bottom-up scan can pull
   through once the frontier itself has been expanded. *)
let rebuild_rev t =
  let p = t.product in
  let ns = Product.num_states p in
  let off = Array.make (ns + 1) 0 in
  for id = 0 to ns - 1 do
    if Product.is_expanded p id then
      for m = 0 to Product.degree p id - 1 do
        let s = Product.move_succ p id m in
        off.(s + 1) <- off.(s + 1) + 1
      done
  done;
  for u = 1 to ns do
    off.(u) <- off.(u) + off.(u - 1)
  done;
  let dat = Array.make (max 1 off.(ns)) 0 in
  let cursor = Array.copy off in
  for id = 0 to ns - 1 do
    if Product.is_expanded p id then
      for m = 0 to Product.degree p id - 1 do
        let s = Product.move_succ p id m in
        dat.(cursor.(s)) <- id;
        cursor.(s) <- cursor.(s) + 1
      done
  done;
  t.rev_off <- off;
  t.rev_dat <- dat;
  t.rev_moves <- Product.moves_total p

(* Growable int vector for the per-level frontier lists. *)
type ivec = { mutable a : int array; mutable n : int }

let ivec () = { a = Array.make 64 0; n = 0 }

let ipush v x =
  if v.n = Array.length v.a then begin
    let b = Array.make (2 * v.n) 0 in
    Array.blit v.a 0 b 0 v.n;
    v.a <- b
  end;
  v.a.(v.n) <- x;
  v.n <- v.n + 1

let grow t n =
  let cap = Array.length t.visited in
  if n > cap then begin
    let c = max n (max 16 (2 * cap)) in
    let extend a =
      let b = Array.make c 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    t.visited <- extend t.visited;
    t.cur_word <- extend t.cur_word;
    t.next_word <- extend t.next_word;
    let acc = Bytes.make c '\000' in
    Bytes.blit t.accept 0 acc 0 cap;
    t.accept <- acc
  end

let run_batch ?(direction = `Auto) ?max_length ?level t ~sources =
  let p = t.product in
  let k = Array.length sources in
  if k > word_bits then invalid_arg "Frontier.run_batch: more sources than word bits";
  if k > 0 then begin
    Atomic.incr batches_counter;
    let full = if k = word_bits then -1 else (1 lsl k) - 1 in
    (* Per-state scratch words, persisted in [t] and grown as the
       product interns states: [visited] accumulates across levels;
       [cur_word]/[next_word] hold the discovery bits of the current and
       the in-construction level and are zeroed outside their frontier.
       A batch starts by wiping the prefix a previous batch may have
       touched — a memset, not a reallocation.  (The accepting memo is
       monotone and survives across batches.) *)
    grow t (Product.num_states p);
    let touched = Array.length t.visited in
    Array.fill t.visited 0 touched 0;
    Array.fill t.cur_word 0 touched 0;
    Array.fill t.next_word 0 touched 0;
    let visited = ref t.visited in
    let cur_word = ref t.cur_word in
    let next_word = ref t.next_word in
    let grow n =
      grow t n;
      visited := t.visited;
      cur_word := t.cur_word;
      next_word := t.next_word
    in
    (* States whose visited word covers the whole batch — the bottom-up
       scan's "done" set, kept as a count for the cost estimate. *)
    let covered = ref 0 in
    let mark id bits =
      let v = !visited in
      let fresh = bits land lnot v.(id) land full in
      if fresh <> 0 then begin
        let now = v.(id) lor fresh in
        v.(id) <- now;
        if now = full then incr covered
      end;
      fresh
    in
    let cur = ref (ivec ()) and next = ref (ivec ()) in
    for s = 0 to k - 1 do
      match Product.start_state p sources.(s) with
      | None -> ()
      | Some s0 ->
          grow (Product.num_states p);
          let fresh = mark s0 (1 lsl s) in
          if fresh <> 0 then begin
            if !cur_word.(s0) = 0 then ipush !cur s0;
            !cur_word.(s0) <- !cur_word.(s0) lor fresh
          end
    done;
    let dist = ref 0 in
    let stop = ref (!cur.n = 0) in
    while not !stop do
      (* Emit the level in discovery order — deterministic for a fixed
         direction policy, but *not* sorted: consumers that need a
         canonical order aggregate into order-insensitive structures
         (bit sets, per-slot arrays) instead, and a sort here measurably
         dominated the whole pass on pair workloads. *)
      (match level with
      | None -> ()
      | Some f ->
          let states = Array.sub !cur.a 0 !cur.n in
          let words = Array.map (fun id -> !cur_word.(id)) states in
          f ~dist:!dist ~states ~words);
      (* Budget check site: once per level for the whole batch.  Levels
         already emitted (and the visited words accumulated so far) stay
         valid — stopping early only shrinks downstream answer sets. *)
      let budget_stop =
        let b = Product.budget p in
        if not (Gqkg_util.Budget.is_unlimited b) then begin
          Gqkg_util.Budget.charge_steps b !cur.n;
          Gqkg_util.Budget.note_states b (Product.num_states p)
        end;
        Gqkg_util.Budget.check b
      in
      let expand =
        (not budget_stop) && match max_length with Some m -> !dist < m | None -> true
      in
      if not expand then stop := true
      else begin
        let ns = Product.num_states p in
        grow ns;
        let moves = Product.moves_total p in
        let stale = t.rev_moves <> moves || Array.length t.rev_off < ns + 1 in
        let bottom_up =
          match direction with
          | `Top_down -> false
          | `Bottom_up -> true
          | `Auto ->
              (* Push cost estimate: frontier size times the average
                 committed out-degree (exact degrees would force
                 expansion before the direction is even chosen).  Pull
                 cost: one averaged in-degree per not-yet-covered state,
                 plus the reverse-CSR rebuild when stale.  Dense
                 underlying graphs (high median degree) profit from
                 pulling earlier because the early-exit saves more. *)
              let avg = if ns > 0 then max 1 (moves / ns) else 1 in
              let td_cost = !cur.n * avg in
              let bu_cost = ((ns - !covered) * avg) + (if stale then moves else 0) in
              let snap = Product.instance p in
              let alpha = if snap.Gqkg_graph.Snapshot.stats.Gqkg_graph.Snapshot.degree_p50 >= 8 then 2 else 4 in
              td_cost > alpha * bu_cost
        in
        !next.n <- 0;
        if bottom_up then begin
          Atomic.incr bottom_up_counter;
          (* Expand the frontier before the pull scan: bottom-up can
             only discover through moves the reverse CSR has seen. *)
          for i = 0 to !cur.n - 1 do
            ignore (Product.degree p !cur.a.(i))
          done;
          let ns = Product.num_states p in
          grow ns;
          if t.rev_moves <> Product.moves_total p || Array.length t.rev_off < ns + 1 then
            rebuild_rev t;
          let rev_off = t.rev_off and rev_dat = t.rev_dat in
          let v = !visited and cw = !cur_word and nw = !next_word in
          for u = 0 to ns - 1 do
            let vis = v.(u) in
            if vis land full <> full then begin
              let gain = ref 0 in
              let i = ref rev_off.(u) in
              let fin = rev_off.(u + 1) in
              while !i < fin && (!gain lor vis) land full <> full do
                gain := !gain lor cw.(rev_dat.(!i));
                incr i
              done;
              let fresh = !gain land lnot vis land full in
              if fresh <> 0 then begin
                let now = vis lor fresh in
                v.(u) <- now;
                if now = full then incr covered;
                nw.(u) <- fresh;
                ipush !next u
              end
            end
          done
        end
        else begin
          Atomic.incr top_down_counter;
          for i = 0 to !cur.n - 1 do
            let id = !cur.a.(i) in
            let w = !cur_word.(id) in
            (* Manual CSR walk (not [iter_successors]): no closure call
               per move on the hottest loop in the engine.  [degree] may
               expand [id] and intern fresh successors, so grow (and
               re-read) the word arrays after it. *)
            let deg = Product.degree p id in
            grow (Product.num_states p);
            let v = !visited and nw = !next_word in
            for m = 0 to deg - 1 do
              let succ = Product.move_succ p id m in
              let fresh = w land lnot v.(succ) land full in
              if fresh <> 0 then begin
                let now = v.(succ) lor fresh in
                v.(succ) <- now;
                if now = full then incr covered;
                if nw.(succ) = 0 then ipush !next succ;
                nw.(succ) <- nw.(succ) lor fresh
              end
            done
          done
        end;
        for i = 0 to !cur.n - 1 do
          !cur_word.(!cur.a.(i)) <- 0
        done;
        let tmp = !cur in
        cur := !next;
        next := tmp;
        let tw = !cur_word in
        cur_word := !next_word;
        next_word := tw;
        (* Keep [t]'s fields in step with the swap, or the next [grow]
           would reload the pre-swap roles. *)
        t.cur_word <- !cur_word;
        t.next_word <- !next_word;
        incr dist;
        if !cur.n = 0 then stop := true
      end
    done
  end

let reachable ?direction ?max_length t ~sources =
  let p = t.product in
  let nn = (Product.instance p).Gqkg_graph.Snapshot.num_nodes in
  let n = Array.length sources in
  let results = Array.make n [] in
  (* Per-node slot words: reach.(v) bit s set iff slot s reaches an
     accepting state at node v.  Accepting states at the same node
     collapse here, so no per-slot set structure is needed. *)
  let reach = Array.make (max 1 nn) 0 in
  let off = ref 0 in
  while !off < n do
    let k = min word_bits (n - !off) in
    let batch = Array.sub sources !off k in
    run_batch ?direction ?max_length t ~sources:batch;
    (* Reachability only needs the final visited words, not the level
       structure: one scan over the states the batch touched.  [visited]
       is valid until the next [run_batch] on this context. *)
    let visited = t.visited in
    let ns = min (Array.length visited) (Product.num_states p) in
    for id = 0 to ns - 1 do
      let w = visited.(id) in
      if w <> 0 && is_accepting t id then begin
        let v = Product.node_of p id in
        reach.(v) <- reach.(v) lor w
      end
    done;
    (* Walk nodes descending, consing onto per-slot heads: each result
       list comes out sorted ascending with no intermediate set. *)
    let heads = Array.make k [] in
    for v = nn - 1 downto 0 do
      let w = reach.(v) in
      if w <> 0 then begin
        B.word_iter w (fun s -> heads.(s) <- v :: heads.(s));
        reach.(v) <- 0
      end
    done;
    Array.blit heads 0 results !off k;
    off := !off + k
  done;
  results

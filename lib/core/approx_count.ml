(* Randomized approximation of Count(G, r, k) — Section 4.1's FPRAS.

   Count is SpanL-complete [Alvarez & Jenner 1993], yet Arenas,
   Croquevielle, Jayaram and Riveros (PODS 2019) showed every SpanL
   problem admits an FPRAS.  We implement the self-reducibility structure
   of their algorithm as a level-by-level Karp–Luby union estimator over
   the NON-determinized product (see DESIGN.md §5):

   A configuration is a pair (node, NFA state); L_i(c) is the set of
   paths of length i having a run from some start configuration to c.
   The sets obey L_{i+1}(c') = ⋃ over product transitions (c --e--> c')
   of L_i(c)·e — a union of easily-sampled sets, the classic Karp–Luby
   setting.  For each level and configuration we keep (a) a cardinality
   estimate and (b) a pool of near-uniform sample paths; both are pushed
   one level forward by proportional sampling with multiplicity
   correction, where the multiplicity of a candidate path is computed by
   re-running its prefix through the NFA (the membership oracle).
   Acceptance needs no extra union step: accepted paths of length k are
   exactly ⋃_v L_k((v, accept)), and these sets are disjoint because the
   configuration fixes the end node.

   The per-configuration pool size is Θ(1/ε²); with the constants below
   the estimator lands within ε of the exact count with large probability
   on the experiment suite (checked against {!Count} in tests, E4). *)

open Gqkg_graph
open Gqkg_automata
open Gqkg_util

type config = int (* node * num_states + nfa_state *)

type level_entry = { estimate : float; pool : Path.t array }

type t = {
  inst : Snapshot.t;
  nfa : Nfa.t;
  pool_size : int;
  rng : Splitmix.t;
  budget : Budget.t;
}

let create ?(budget = Budget.unlimited) ?(seed = 0x5eed) inst regex ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Approx_count.create: epsilon in (0,1)";
  let nfa = Nfa.of_regex regex in
  let pool_size = max 16 (int_of_float (ceil (8.0 /. (epsilon *. epsilon)))) in
  { inst; nfa; pool_size; rng = Splitmix.create seed; budget }

let config t ~node ~state = (node * Nfa.num_states t.nfa) + state
let config_node t c = c / Nfa.num_states t.nfa
let config_state t c = c mod Nfa.num_states t.nfa

(* Single-state closure at a node: all NFA states reachable from [q] via
   ε and node-checks the node satisfies. *)
let state_closure t ~node q = Nfa.closure t.nfa ~node_sat:(t.inst.Snapshot.node_atom node) [| q |]

(* Transitions of a single configuration: consume one edge (either
   direction) and close at the destination. Returns (edge, dest-config)
   pairs, deduplicated. *)
let config_transitions t c =
  let v = config_node t c and q = config_state t c in
  let fwd, bwd = Nfa.edge_moves t.nfa [| q |] in
  let out = Hashtbl.create 8 in
  let step moves e w =
    let edge_sat = t.inst.Snapshot.edge_atom e in
    List.iter
      (fun (test, q') ->
        if Regex.eval_test edge_sat test then
          Array.iter
            (fun q'' -> Hashtbl.replace out (e, config t ~node:w ~state:q'') ())
            (state_closure t ~node:w q'))
      moves
  in
  if fwd <> [] then Array.iter (fun (e, w) -> step fwd e w) ((Snapshot.out_pairs t.inst) v);
  if bwd <> [] then Array.iter (fun (e, u) -> step bwd e u) ((Snapshot.in_pairs t.inst) v);
  Hashtbl.fold (fun key () acc -> key :: acc) out [] |> List.sort compare

(* Subset simulation of a concrete path: the closed set of NFA states
   after consuming it. Used as the membership oracle L_i(c) ∋ p. *)
let simulate t path =
  let k = Path.length path in
  let current = ref (state_closure t ~node:(Path.node path 0) (Nfa.start t.nfa)) in
  for i = 0 to k - 1 do
    let e = Path.edge path i in
    let v = Path.node path i and w = Path.node path (i + 1) in
    let s, d = (Snapshot.endpoints t.inst) e in
    let edge_sat = t.inst.Snapshot.edge_atom e in
    let fwd, bwd = Nfa.edge_moves t.nfa !current in
    let targets = Hashtbl.create 8 in
    let add moves =
      List.iter
        (fun (test, q') -> if Regex.eval_test edge_sat test then Hashtbl.replace targets q' ())
        moves
    in
    if s = v && d = w then add fwd;
    if s = w && d = v then add bwd;
    let raw = Hashtbl.fold (fun q () acc -> q :: acc) targets [] |> List.sort compare in
    current := Nfa.closure t.nfa ~node_sat:(t.inst.Snapshot.node_atom w) (Array.of_list raw)
  done;
  !current

(* Does NFA state [q], at the source node of this step, transition into
   [q'] when consuming [e] towards [w] (closure included)? *)
let step_reaches t ~q ~e ~v ~w ~q' =
  let fwd, bwd = Nfa.edge_moves t.nfa [| q |] in
  let s, d = (Snapshot.endpoints t.inst) e in
  let edge_sat = t.inst.Snapshot.edge_atom e in
  let check moves =
    List.exists
      (fun (test, q'') ->
        Regex.eval_test edge_sat test
        && Array.exists (fun q3 -> q3 = q') (state_closure t ~node:w q''))
      moves
  in
  (s = v && d = w && check fwd) || (s = w && d = v && check bwd)

(* The multiplicity of candidate path p·e ending in config (w, q'):
   the number of union branches producing it, i.e. the number of NFA
   states q in the subset-simulation of p that step into q' via e. *)
let multiplicity t ~prefix ~e ~q' =
  let v = Path.end_node prefix in
  let sim = simulate t prefix in
  let _, w =
    let s, d = (Snapshot.endpoints t.inst) e in
    if s = v then (s, d) else (d, s)
  in
  (* For a self-loop both orientations coincide; count states once. *)
  Array.fold_left (fun acc q -> if step_reaches t ~q ~e ~v ~w ~q' then acc + 1 else acc) 0 sim

let estimate t ~length =
  let num_nodes = t.inst.Snapshot.num_nodes in
  (* Level 0: one trivial path per start configuration. *)
  let level = Hashtbl.create 256 in
  for v = 0 to num_nodes - 1 do
    Array.iter
      (fun q ->
        Hashtbl.replace level (config t ~node:v ~state:q) { estimate = 1.0; pool = [| Path.trivial v |] })
      (state_closure t ~node:v (Nfa.start t.nfa))
  done;
  let current = ref level in
  (* Budget check site: once per level.  An interrupted run holds
     estimates for paths SHORTER than [length] — not a sound partial
     answer for length [length] — so a trip forfeits the whole estimate
     and answers 0.0 (the only universally sound undercount). *)
  let tripped = ref false in
  let i = ref 1 in
  while !i <= length && not !tripped do
    if Budget.check t.budget then tripped := true
    else begin
    (* Group union branches by destination configuration. *)
    let branches : (config, (config * int) list ref) Hashtbl.t = Hashtbl.create 256 in
    Hashtbl.iter
      (fun c entry ->
        if entry.estimate > 0.0 then
          List.iter
            (fun (e, c') ->
              match Hashtbl.find_opt branches c' with
              | Some acc -> acc := (c, e) :: !acc
              | None -> Hashtbl.add branches c' (ref [ (c, e) ]))
            (config_transitions t c))
      !current;
    let next = Hashtbl.create 256 in
    Hashtbl.iter
      (fun c' parts ->
        let parts = Array.of_list !parts in
        let weights =
          Array.map (fun (c, _e) -> (Hashtbl.find !current c).estimate) parts
        in
        let total = Array.fold_left ( +. ) 0.0 weights in
        if total > 0.0 then begin
          let q' = config_state t c' in
          let inv_sum = ref 0.0 in
          let pool = ref [] and pool_count = ref 0 in
          let draws = t.pool_size in
          for _ = 1 to draws do
            let b = Alias.sample_weights weights t.rng in
            let c, e = parts.(b) in
            let entry = Hashtbl.find !current c in
            let prefix = entry.pool.(Splitmix.int t.rng (Array.length entry.pool)) in
            let mult = multiplicity t ~prefix ~e ~q':q' in
            (* mult >= 1 always: branch b itself witnesses membership. *)
            let mult = max mult 1 in
            inv_sum := !inv_sum +. (1.0 /. float_of_int mult);
            (* Rejection with probability 1/mult makes the pool uniform
               over the union rather than over the multiset of branches. *)
            if Splitmix.int t.rng mult = 0 then begin
              let w =
                let s, d = (Snapshot.endpoints t.inst) e in
                let v = Path.end_node prefix in
                if s = v then d else s
              in
              pool := Path.snoc prefix ~edge:e ~dst:w :: !pool;
              incr pool_count
            end
          done;
          let estimate = total *. !inv_sum /. float_of_int draws in
          if estimate > 0.0 && !pool_count > 0 then
            Hashtbl.replace next c' { estimate; pool = Array.of_list !pool }
        end)
      branches;
    current := next;
    incr i
    end
  done;
  if !tripped then 0.0
  else begin
    (* Accepted paths of length k: configurations whose state is accept;
       disjoint across end nodes, so plain summation. *)
    let accept = Nfa.accept t.nfa in
    Hashtbl.fold
      (fun c entry acc -> if config_state t c = accept then acc +. entry.estimate else acc)
      !current 0.0
  end

(* One-shot estimation of Count(G, r, k) within relative error ~epsilon. *)
let count ?budget ?(seed = 0x5eed) inst regex ~length ~epsilon =
  (* Statically-empty queries need no estimator run: the exact answer is 0. *)
  match Gqkg_analysis.Analyze.plan_if_enabled inst regex with
  | Some report when Gqkg_analysis.Analyze.is_empty report -> 0.0
  | Some _ | None ->
      let t = create ?budget ~seed inst regex ~epsilon in
      estimate t ~length

(** Reference evaluator: the denotational semantics [[r]] transcribed
    literally, materializing the set of matching paths up to a length
    bound. Exponential — exists to be obviously correct: the oracle for
    the product engine in tests, and the "materialize everything"
    baseline of the enumeration experiment.

    A tripped [budget] shrinks the result (every operator is monotone,
    so a subterm answering the empty set only removes paths). *)

(** All paths in [[r]] of length ≤ the bound, sorted by {!Path.compare}. *)
val paths :
  ?budget:Gqkg_util.Budget.t ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  max_length:int ->
  Path.t list

(** Count(G, r, k) by brute force. *)
val count :
  ?budget:Gqkg_util.Budget.t -> Gqkg_graph.Snapshot.t -> Gqkg_automata.Regex.t -> length:int -> int

(** Distinct (start, end) pairs of matching paths up to the bound,
    sorted. *)
val pairs :
  ?budget:Gqkg_util.Budget.t ->
  Gqkg_graph.Snapshot.t ->
  Gqkg_automata.Regex.t ->
  max_length:int ->
  (int * int) list

(* Bounded drop-oldest association caches keyed by (snapshot epoch,
   canonical key).  Deliberately simple: entry counts are small (a
   repeated-query workload has few distinct canonical classes), so
   linear scans beat the bookkeeping of a real LRU here. *)

open Gqkg_graph

type stats = {
  plan_hits : int;
  plan_misses : int;
  result_hits : int;
  result_misses : int;
  plan_entries : int;
  result_entries : int;
  commits : int;
  invalidated : int;
}

let enabled = ref true

type 'a cache = { mutable entries : (int * string * 'a) list; cap : int }

let plan_cache : Product.t cache = { entries = []; cap = 32 }
let result_cache : (int * int) list cache = { entries = []; cap = 128 }
let plan_hits = ref 0
let plan_misses = ref 0
let result_hits = ref 0
let result_misses = ref 0
let commits = ref 0
let invalidated = ref 0

let stats () =
  {
    plan_hits = !plan_hits;
    plan_misses = !plan_misses;
    result_hits = !result_hits;
    result_misses = !result_misses;
    plan_entries = List.length plan_cache.entries;
    result_entries = List.length result_cache.entries;
    commits = !commits;
    invalidated = !invalidated;
  }

let reset () =
  plan_cache.entries <- [];
  result_cache.entries <- [];
  plan_hits := 0;
  plan_misses := 0;
  result_hits := 0;
  result_misses := 0;
  commits := 0;
  invalidated := 0

(* Epoch-keyed entries can never be *wrong* across commits — a new
   snapshot has a fresh epoch, so stale entries simply stop matching.
   Explicit invalidation is about memory and honest accounting: on
   commit, drop entries whose epoch is no longer live (retained entries
   are those of still-pinned epochs plus the new current one). *)
let note_commit ~live_epochs =
  incr commits;
  let drop cache =
    let keep, dead = List.partition (fun (e, _, _) -> List.mem e live_epochs) cache.entries in
    cache.entries <- keep;
    List.length dead
  in
  invalidated := !invalidated + drop plan_cache + drop result_cache

let rec take n = function [] -> [] | _ when n <= 0 -> [] | x :: rest -> x :: take (n - 1) rest

let find cache hits misses epoch key =
  if not !enabled then None
  else
    match
      List.find_opt (fun (e, k, _) -> e = epoch && String.equal k key) cache.entries
    with
    | Some (_, _, v) ->
        incr hits;
        Some v
    | None ->
        incr misses;
        None

let store cache epoch key v =
  if
    !enabled
    && not (List.exists (fun (e, k, _) -> e = epoch && String.equal k key) cache.entries)
  then cache.entries <- (epoch, key, v) :: take (cache.cap - 1) cache.entries

let find_product (s : Snapshot.t) ~key = find plan_cache plan_hits plan_misses s.epoch key
let store_product (s : Snapshot.t) ~key p = store plan_cache s.epoch key p
let find_pairs (s : Snapshot.t) ~key = find result_cache result_hits result_misses s.epoch key
let store_pairs (s : Snapshot.t) ~key v = store result_cache s.epoch key v
